#include "util/cli.hpp"

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

namespace scalparc::util {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.rfind("--", 0) != 0) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq != std::string_view::npos) {
      flags_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
      continue;
    }
    // "--name value" unless the next token is itself a flag (then boolean).
    if (i + 1 < argc && std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[std::string(arg)] = argv[i + 1];
      ++i;
    } else {
      flags_[std::string(arg)] = "true";
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return flags_.count(name) != 0;
}

std::string CliArgs::get_string(const std::string& name,
                                const std::string& default_value) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? default_value : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name,
                              std::int64_t default_value) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? default_value
                            : std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliArgs::get_double(const std::string& name,
                           double default_value) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? default_value
                            : std::strtod(it->second.c_str(), nullptr);
}

bool CliArgs::get_bool(const std::string& name, bool default_value) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::int64_t> CliArgs::get_int_list(
    const std::string& name,
    const std::vector<std::int64_t>& default_value) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  std::vector<std::int64_t> values;
  const std::string& text = it->second;
  std::size_t start = 0;
  while (start <= text.size()) {
    auto comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    if (comma > start) {
      values.push_back(std::strtoll(text.substr(start, comma - start).c_str(),
                                    nullptr, 10));
    }
    start = comma + 1;
  }
  return values;
}

}  // namespace scalparc::util
