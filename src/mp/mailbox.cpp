#include "mp/mailbox.hpp"

#include <algorithm>
#include <utility>

namespace scalparc::mp {

void Channel::push(Message message) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(message));
  }
  ready_.notify_all();
}

bool Channel::take_locked(std::int64_t tag, Message& out) {
  const auto it = std::find_if(queue_.begin(), queue_.end(), [tag](const Message& m) {
    return m.tag == tag;
  });
  if (it == queue_.end()) return false;
  out = std::move(*it);
  queue_.erase(it);
  return true;
}

Message Channel::pop(std::int64_t tag) {
  std::unique_lock<std::mutex> lock(mutex_);
  Message out;
  for (;;) {
    if (take_locked(tag, out)) return out;
    if (poisoned_) throw RankAborted{};
    ready_.wait(lock);
  }
}

Channel::PopStatus Channel::try_pop_until(
    std::int64_t tag, Message& out,
    std::chrono::steady_clock::time_point deadline) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (take_locked(tag, out)) return PopStatus::kOk;
    if (poisoned_) throw RankAborted{};
    if (ready_.wait_until(lock, deadline) == std::cv_status::timeout) {
      // One last look: the message may have landed with the notification
      // racing the deadline.
      if (take_locked(tag, out)) return PopStatus::kOk;
      if (poisoned_) throw RankAborted{};
      return PopStatus::kTimeout;
    }
  }
}

bool Channel::try_pop(std::int64_t tag, Message& out) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (take_locked(tag, out)) return true;
  if (poisoned_) throw RankAborted{};
  return false;
}

bool Channel::has_message(std::int64_t tag) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::any_of(queue_.begin(), queue_.end(),
                     [tag](const Message& m) { return m.tag == tag; });
}

void Channel::poison() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    poisoned_ = true;
  }
  ready_.notify_all();
}

bool Channel::empty() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.empty();
}

std::size_t Channel::drain() {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t count = queue_.size();
  queue_.clear();
  return count;
}

}  // namespace scalparc::mp
