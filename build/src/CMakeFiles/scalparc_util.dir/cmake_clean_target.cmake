file(REMOVE_RECURSE
  "libscalparc_util.a"
)
