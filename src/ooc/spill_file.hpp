// Disk-backed storage for out-of-core attribute lists.
//
// The SLIQ/SPRINT/ScalParC papers target training sets larger than main
// memory; §2 describes how a serial classifier whose rid -> child hash table
// does not fit must make "multiple passes over each of the attribute lists
// causing expensive disk I/O". This module provides the substrate for
// reproducing that regime on one machine:
//
//   TempFile        RAII temporary file (unlinked on destruction)
//   TypedWriter<T>  buffered sequential writer of trivially-copyable records
//   TypedReader<T>  buffered sequential reader
//   IoStats         byte/operation accounting shared by a whole computation
//
// All I/O is charged to an IoStats instance so benches can report exactly
// how much disk traffic a memory budget costs.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace scalparc::ooc {

struct IoStats {
  std::uint64_t bytes_written = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t files_created = 0;
  // Number of full re-reads of an attribute file forced by hash-table
  // passes (see MultiPassSplit in ooc_sprint).
  std::uint64_t extra_passes = 0;
};

// A uniquely named file under the system temp directory, removed on
// destruction. Movable, not copyable.
class TempFile {
 public:
  explicit TempFile(IoStats* stats = nullptr);
  TempFile(TempFile&& other) noexcept;
  TempFile& operator=(TempFile&& other) noexcept;
  TempFile(const TempFile&) = delete;
  TempFile& operator=(const TempFile&) = delete;
  ~TempFile();

  const std::string& path() const { return path_; }
  std::uint64_t size_bytes() const;

 private:
  void remove_file() noexcept;
  std::string path_;
};

namespace detail {
void write_bytes(const std::string& path, bool append, const void* data,
                 std::size_t bytes, IoStats* stats);
std::size_t read_bytes(std::FILE* file, void* data, std::size_t bytes,
                       IoStats* stats);
void create_or_truncate(const std::string& path);
std::uint32_t crc32_update(const void* data, std::size_t bytes,
                           std::uint32_t seed);
}  // namespace detail

// Appends records of T to a file with an in-memory staging buffer. Keeps a
// running CRC32 of everything written, so callers (e.g. the checkpoint
// layer) can record an integrity checksum without a second pass.
template <typename T>
class TypedWriter {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  explicit TypedWriter(const TempFile& file, IoStats* stats = nullptr,
                       std::size_t buffer_records = 4096)
      : path_(file.path()), stats_(stats), buffer_limit_(buffer_records) {
    buffer_.reserve(buffer_limit_);
  }
  // Path form for durable (non-temp) files; creates or truncates `path`.
  explicit TypedWriter(const std::string& path, IoStats* stats = nullptr,
                       std::size_t buffer_records = 4096)
      : path_(path), stats_(stats), buffer_limit_(buffer_records) {
    detail::create_or_truncate(path_);
    buffer_.reserve(buffer_limit_);
  }
  TypedWriter(const TypedWriter&) = delete;
  TypedWriter& operator=(const TypedWriter&) = delete;
  ~TypedWriter() { flush(); }

  void append(const T& record) {
    buffer_.push_back(record);
    ++count_;
    if (buffer_.size() >= buffer_limit_) flush();
  }
  void append(std::span<const T> records) {
    for (const T& r : records) append(r);
  }

  void flush() {
    if (buffer_.empty()) return;
    const std::size_t bytes = buffer_.size() * sizeof(T);
    detail::write_bytes(path_, /*append=*/true, buffer_.data(), bytes, stats_);
    crc_ = detail::crc32_update(buffer_.data(), bytes, crc_);
    buffer_.clear();
  }

  std::uint64_t count() const { return count_; }
  // CRC32 of all bytes written so far; call flush() first for completeness.
  std::uint32_t crc() const { return crc_; }

 private:
  std::string path_;
  IoStats* stats_;
  std::size_t buffer_limit_;
  std::vector<T> buffer_;
  std::uint64_t count_ = 0;
  std::uint32_t crc_ = 0;
};

// Sequentially reads records of T from a file with a staging buffer.
// Optionally reads only the window [start_record, start_record + max_records)
// so several cursors can merge runs stored in one file.
template <typename T>
class TypedReader {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  explicit TypedReader(const TempFile& file, IoStats* stats = nullptr,
                       std::size_t buffer_records = 4096,
                       std::uint64_t start_record = 0,
                       std::uint64_t max_records = UINT64_MAX)
      : TypedReader(file.path(), stats, buffer_records, start_record,
                    max_records) {}
  // Path form for durable (non-temp) files.
  explicit TypedReader(const std::string& path, IoStats* stats = nullptr,
                       std::size_t buffer_records = 4096,
                       std::uint64_t start_record = 0,
                       std::uint64_t max_records = UINT64_MAX)
      : stats_(stats), buffer_limit_(buffer_records), remaining_(max_records) {
    file_ = std::fopen(path.c_str(), "rb");
    // A never-written file is an empty stream, not an error.
    if (file_ != nullptr && start_record > 0) {
      if (std::fseek(file_, static_cast<long>(start_record * sizeof(T)),
                     SEEK_SET) != 0) {
        std::fclose(file_);
        file_ = nullptr;
      }
    }
  }
  TypedReader(const TypedReader&) = delete;
  TypedReader& operator=(const TypedReader&) = delete;
  ~TypedReader() {
    if (file_ != nullptr) std::fclose(file_);
  }

  // Returns false at end of stream.
  bool next(T& record) {
    if (cursor_ == buffer_.size() && !refill()) return false;
    record = buffer_[cursor_++];
    return true;
  }

  // Reads up to `max_records`; returns how many were read.
  std::size_t read_chunk(std::span<T> out) {
    std::size_t got = 0;
    while (got < out.size() && next(out[got])) ++got;
    return got;
  }

  // CRC32 of all bytes consumed from disk so far.
  std::uint32_t crc() const { return crc_; }

 private:
  bool refill() {
    if (file_ == nullptr || remaining_ == 0) return false;
    const std::size_t want =
        static_cast<std::size_t>(std::min<std::uint64_t>(buffer_limit_, remaining_));
    buffer_.resize(want);
    const std::size_t bytes =
        detail::read_bytes(file_, buffer_.data(), want * sizeof(T), stats_);
    if (bytes % sizeof(T) != 0) {
      throw std::runtime_error("TypedReader: truncated record on disk");
    }
    crc_ = detail::crc32_update(buffer_.data(), bytes, crc_);
    buffer_.resize(bytes / sizeof(T));
    remaining_ -= buffer_.size();
    cursor_ = 0;
    return !buffer_.empty();
  }

  std::FILE* file_ = nullptr;
  IoStats* stats_;
  std::size_t buffer_limit_;
  std::uint64_t remaining_;
  std::vector<T> buffer_;
  std::size_t cursor_ = 0;
  std::uint32_t crc_ = 0;
};

// Convenience: spill a vector to a fresh temp file.
template <typename T>
TempFile spill(std::span<const T> records, IoStats* stats = nullptr) {
  TempFile file(stats);
  TypedWriter<T> writer(file, stats);
  writer.append(records);
  return file;
}

// Convenience: slurp a whole file (tests only — defeats the point otherwise).
template <typename T>
std::vector<T> slurp(const TempFile& file, IoStats* stats = nullptr) {
  TypedReader<T> reader(file, stats);
  std::vector<T> out;
  T record;
  while (reader.next(record)) out.push_back(record);
  return out;
}

}  // namespace scalparc::ooc
