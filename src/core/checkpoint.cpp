#include "core/checkpoint.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "core/tree_io.hpp"
#include "mp/telemetry.hpp"
#include "util/crc32.hpp"

namespace scalparc::core {

namespace fs = std::filesystem;

namespace {

constexpr const char* kManifestHeader = "scalparc-ckpt v1";
constexpr const char* kRankManifestHeader = "scalparc-ckpt-rank v1";

// Injected by the test-only write-fault hook; a distinct type so the retry
// loop can tell "simulated transient failure" apart in diagnostics.
struct TransientWriteFault : std::runtime_error {
  explicit TransientWriteFault(const std::string& what)
      : std::runtime_error(what) {}
};

std::atomic<int> g_write_faults_armed{0};

void maybe_inject_write_fault(const std::string& what) {
  int armed = g_write_faults_armed.load(std::memory_order_relaxed);
  while (armed > 0) {
    if (g_write_faults_armed.compare_exchange_weak(
            armed, armed - 1, std::memory_order_relaxed)) {
      throw TransientWriteFault("injected transient write fault at " + what);
    }
  }
}

std::string read_whole_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw CheckpointCorruptError("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Writes `text` to `path` and fsyncs it, under the transient-I/O retry.
void write_text_file_durably(const std::string& path, const std::string& text,
                             const std::string& what) {
  detail::retry_transient_io(what, [&] {
    std::ofstream out(path, std::ios::binary);
    if (!out) throw CheckpointError("cannot write " + what);
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
    out.close();
    if (!out) throw CheckpointError("short write to " + what);
    detail::fsync_path(path);
  });
}

}  // namespace

std::string checkpoint_level_dir(const std::string& root, int level) {
  return (fs::path(root) / ("level_" + std::to_string(level))).string();
}

std::string checkpoint_staging_dir(const std::string& root, int level) {
  return (fs::path(root) / ("staging_level_" + std::to_string(level))).string();
}

void checkpoint_prepare_staging(const std::string& root, int level) {
  std::error_code ec;
  fs::create_directories(root, ec);
  if (ec) throw CheckpointIoError("cannot create root '" + root + "'");
  const fs::path staging = checkpoint_staging_dir(root, level);
  fs::remove_all(staging, ec);  // stale leftovers from an aborted write
  if (!fs::create_directory(staging, ec) || ec) {
    throw CheckpointIoError("cannot create staging '" + staging.string() +
                            "'");
  }
}

void checkpoint_write_globals(const std::string& staging,
                              const DecisionTree& tree,
                              std::span<const std::int64_t> active_flat,
                              CheckpointManifest manifest) {
  // Tree-so-far in the tree_io text format (exact round trip).
  std::ostringstream tree_text;
  save_tree(tree, tree_text);
  const std::string tree_bytes = tree_text.str();
  write_text_file_durably((fs::path(staging) / "tree.txt").string(),
                          tree_bytes, "tree.txt");
  manifest.tree_bytes = tree_bytes.size();
  manifest.tree_crc = util::crc32(tree_bytes.data(), tree_bytes.size());

  {
    const std::string active_path = (fs::path(staging) / "active.bin").string();
    detail::retry_transient_io("active.bin", [&] {
      ooc::TypedWriter<std::int64_t> writer(active_path);
      writer.append(active_flat);
      writer.flush();
      manifest.active_count = writer.count();
      manifest.active_crc = writer.crc();
      detail::fsync_path(active_path);
    });
  }

  std::ostringstream out;
  out << kManifestHeader << '\n';
  out << "level " << manifest.level << '\n';
  out << "ranks " << manifest.ranks << '\n';
  out << "classes " << manifest.num_classes << '\n';
  out << "records " << manifest.total_records << '\n';
  out << "fingerprint " << manifest.fingerprint << '\n';
  out << "active " << manifest.active_count << ' ' << manifest.active_crc
      << '\n';
  out << "tree " << manifest.tree_bytes << ' ' << manifest.tree_crc << '\n';
  out << "end\n";
  write_text_file_durably((fs::path(staging) / "MANIFEST").string(), out.str(),
                          "MANIFEST");
}

void checkpoint_commit(const std::string& root, int level) {
  const fs::path staging = checkpoint_staging_dir(root, level);
  const fs::path committed = checkpoint_level_dir(root, level);
  // The per-file writes fsynced their data; syncing the staging directory
  // pins the file *names* before the rename makes them reachable under the
  // committed name, and syncing the root afterwards pins the rename itself.
  detail::fsync_path(staging.string());
  detail::retry_transient_io("commit level " + std::to_string(level), [&] {
    std::error_code ec;
    fs::remove_all(committed, ec);  // replace a stale checkpoint of this level
    fs::rename(staging, committed, ec);
    if (ec) {
      throw CheckpointError("cannot commit level " + std::to_string(level) +
                            ": " + ec.message());
    }
  });
  detail::fsync_path(root);
}

CheckpointManifest checkpoint_read_manifest(const std::string& level_dir) {
  const std::string path = (fs::path(level_dir) / "MANIFEST").string();
  std::ifstream in(path);
  if (!in) throw CheckpointCorruptError("cannot open '" + path + "'");
  std::string line;
  if (!std::getline(in, line) || line != kManifestHeader) {
    throw CheckpointCorruptError("'" + path + "' has a bad header");
  }
  CheckpointManifest manifest;
  std::string key;
  bool complete = false;
  while (in >> key) {
    if (key == "level") {
      if (!(in >> manifest.level)) break;
    } else if (key == "ranks") {
      if (!(in >> manifest.ranks)) break;
    } else if (key == "classes") {
      if (!(in >> manifest.num_classes)) break;
    } else if (key == "records") {
      if (!(in >> manifest.total_records)) break;
    } else if (key == "fingerprint") {
      if (!(in >> manifest.fingerprint)) break;
    } else if (key == "active") {
      if (!(in >> manifest.active_count >> manifest.active_crc)) break;
    } else if (key == "tree") {
      if (!(in >> manifest.tree_bytes >> manifest.tree_crc)) break;
    } else if (key == "end") {
      complete = true;
      break;
    } else {
      throw CheckpointCorruptError("'" + path + "' has unknown key '" + key + "'");
    }
  }
  if (!complete) {
    throw CheckpointCorruptError("'" + path + "' is truncated (no 'end' marker)");
  }
  if (manifest.ranks <= 0 || manifest.level < 0 || manifest.num_classes < 2) {
    throw CheckpointCorruptError("'" + path + "' has implausible header fields");
  }
  return manifest;
}

DecisionTree checkpoint_read_tree(const std::string& level_dir,
                                  const CheckpointManifest& manifest) {
  const std::string path = (fs::path(level_dir) / "tree.txt").string();
  const std::string bytes = read_whole_file(path);
  if (bytes.size() != manifest.tree_bytes) {
    throw CheckpointCorruptError("tree.txt does not match its manifest size");
  }
  if (util::crc32(bytes.data(), bytes.size()) != manifest.tree_crc) {
    throw CheckpointCorruptError("tree.txt failed its CRC32 check");
  }
  std::istringstream in(bytes);
  try {
    return load_tree(in);
  } catch (const std::exception& e) {
    throw CheckpointCorruptError(std::string("tree.txt does not parse: ") + e.what());
  }
}

std::vector<std::int64_t> checkpoint_read_active(
    const std::string& level_dir, const CheckpointManifest& manifest) {
  const std::string path = (fs::path(level_dir) / "active.bin").string();
  if (detail::file_size_or_throw(path) !=
      manifest.active_count * sizeof(std::int64_t)) {
    throw CheckpointCorruptError("active.bin does not match its manifest size");
  }
  ooc::TypedReader<std::int64_t> reader(path, nullptr, 4096, 0,
                                        manifest.active_count);
  std::vector<std::int64_t> out(
      static_cast<std::size_t>(manifest.active_count));
  if (reader.read_chunk(std::span<std::int64_t>(out)) != out.size()) {
    throw CheckpointCorruptError("active.bin is truncated");
  }
  if (reader.crc() != manifest.active_crc) {
    throw CheckpointCorruptError("active.bin failed its CRC32 check");
  }
  return out;
}

std::optional<int> checkpoint_latest_level(const std::string& root) {
  std::error_code ec;
  if (!fs::is_directory(root, ec) || ec) return std::nullopt;
  std::optional<int> best;
  for (const fs::directory_entry& entry : fs::directory_iterator(root, ec)) {
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    constexpr const char* kPrefix = "level_";
    if (name.rfind(kPrefix, 0) != 0) continue;
    const std::string digits = name.substr(6);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    const int level = std::stoi(digits);
    try {
      (void)checkpoint_read_manifest(entry.path().string());
    } catch (const CheckpointError&) {
      continue;  // incomplete or damaged: not a candidate
    }
    if (!best || level > *best) best = level;
  }
  return best;
}

namespace detail {

std::string rank_manifest_path(const std::string& dir, int rank) {
  return (fs::path(dir) / ("rank" + std::to_string(rank) + ".manifest"))
      .string();
}

std::string section_path(const std::string& dir, int rank,
                         const std::string& name) {
  return (fs::path(dir) / ("rank" + std::to_string(rank) + "_" + name + ".bin"))
      .string();
}

void write_rank_manifest(const std::string& dir, int rank,
                         const std::vector<SectionInfo>& sections) {
  std::ostringstream out;
  out << kRankManifestHeader << '\n';
  out << "rank " << rank << '\n';
  out << "sections " << sections.size() << '\n';
  for (const SectionInfo& s : sections) {
    out << "section " << s.name << ' ' << s.count << ' ' << s.bytes << ' '
        << s.crc << '\n';
  }
  out << "end\n";
  write_text_file_durably(rank_manifest_path(dir, rank), out.str(),
                          "rank manifest");
}

std::vector<SectionInfo> read_rank_manifest(const std::string& dir, int rank) {
  const std::string path = rank_manifest_path(dir, rank);
  std::ifstream in(path);
  if (!in) throw CheckpointCorruptError("cannot open '" + path + "'");
  std::string line;
  if (!std::getline(in, line) || line != kRankManifestHeader) {
    throw CheckpointCorruptError("'" + path + "' has a bad header");
  }
  std::string key;
  int stored_rank = -1;
  std::size_t count = 0;
  if (!(in >> key >> stored_rank) || key != "rank" || stored_rank != rank) {
    throw CheckpointCorruptError("'" + path + "' names the wrong rank");
  }
  if (!(in >> key >> count) || key != "sections") {
    throw CheckpointCorruptError("'" + path + "' has a bad sections line");
  }
  std::vector<SectionInfo> sections;
  sections.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    SectionInfo info;
    if (!(in >> key >> info.name >> info.count >> info.bytes >> info.crc) ||
        key != "section") {
      throw CheckpointCorruptError("'" + path + "' has a bad section line");
    }
    sections.push_back(std::move(info));
  }
  if (!(in >> key) || key != "end") {
    throw CheckpointCorruptError("'" + path + "' is truncated (no 'end' marker)");
  }
  return sections;
}

std::uint64_t file_size_or_throw(const std::string& path) {
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  if (ec) throw CheckpointCorruptError("cannot stat '" + path + "'");
  return static_cast<std::uint64_t>(size);
}

void retry_transient_io(const std::string& what,
                        const std::function<void()>& attempt) {
  constexpr int kMaxAttempts = 4;
  double backoff_ms = 1.0;
  constexpr double kBackoffCapMs = 50.0;
  for (int tries = 1;; ++tries) {
    try {
      maybe_inject_write_fault(what);
      attempt();
      return;
    } catch (const CheckpointIoError&) {
      throw;  // a nested hardened write already spent its own budget
    } catch (const std::exception& e) {
      if (tries >= kMaxAttempts) {
        telemetry::record_event("checkpoint_io_error",
                                what + " failed after " +
                                    std::to_string(tries) +
                                    " attempts: " + e.what());
        throw CheckpointIoError(what + " failed after " +
                                std::to_string(tries) +
                                " attempts: " + e.what());
      }
      if (mp::MetricsSnapshot* sink = mp::metrics_sink()) {
        sink->add("checkpoint.write_retries", 1);
      }
      telemetry::record_event(
          "checkpoint_io_error",
          what + " attempt " + std::to_string(tries) + " failed (" + e.what() +
              "), retrying in " + std::to_string(backoff_ms) + "ms");
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff_ms));
      backoff_ms = std::min(backoff_ms * 4.0, kBackoffCapMs);
    }
  }
}

void fsync_path(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw CheckpointIoError("cannot open '" + path + "' for fsync");
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) throw CheckpointIoError("fsync('" + path + "') failed");
  if (mp::MetricsSnapshot* sink = mp::metrics_sink()) {
    sink->add("checkpoint.fsyncs", 1);
  }
#else
  (void)path;  // durability auditing is POSIX-only
#endif
}

void arm_checkpoint_write_fault(int failures) {
  g_write_faults_armed.store(failures, std::memory_order_relaxed);
}

void clear_checkpoint_write_fault() {
  g_write_faults_armed.store(0, std::memory_order_relaxed);
}

}  // namespace detail

}  // namespace scalparc::core
