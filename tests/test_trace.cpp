// The observability layer: per-rank span tracing (util/trace.hpp), the typed
// metrics registry (mp/metrics.hpp), and their integration with the
// induction loop — nesting/ordering, ring-buffer retention, merge
// associativity, Chrome trace_event export, the vtime-tiling invariant
// against InductionStats::total_seconds, and the differential guarantee that
// tracing changes nothing about the computed tree.
#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/scalparc.hpp"
#include "data/synthetic.hpp"
#include "mp/metrics.hpp"
#include "mp/runtime.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"
#include "util/trace.hpp"

namespace scalparc {
namespace {

using core::InductionControls;
using core::ScalParC;
using data::GeneratorConfig;
using data::QuestGenerator;
using mp::Histogram;
using mp::MetricsSnapshot;
using util::Json;
using util::TraceCollector;
using util::TraceConfig;
using util::TraceDump;
using util::TraceScope;

data::Dataset make_training(std::uint64_t records, std::uint64_t seed = 7) {
  GeneratorConfig config;
  config.seed = seed;
  config.function = data::LabelFunction::kF2;
  return QuestGenerator(config).generate(0, records);
}

// ---------------------------------------------------------------------------
// TraceScope mechanics
// ---------------------------------------------------------------------------

TEST(Trace, SpansRecordNestingAndCompletionOrder) {
  if (!util::trace_compiled_in()) GTEST_SKIP() << "tracing compiled out";
  ASSERT_TRUE(TraceCollector::instance().start(TraceConfig{}));
  {
    util::ThreadRankGuard rank(3);
    TraceScope outer("presort");
    {
      TraceScope inner("findsplit_i", /*level=*/2, /*nodes=*/5,
                       /*records=*/100);
      inner.set_bytes(4096);
    }
  }
  const TraceDump dump = TraceCollector::instance().stop();
  ASSERT_EQ(dump.spans.size(), 2u);
  EXPECT_TRUE(dump.complete());
  // Spans complete inner-first, so seq orders them inner, outer.
  const util::TraceSpan& inner = dump.spans[0];
  const util::TraceSpan& outer = dump.spans[1];
  EXPECT_STREQ(inner.name, "findsplit_i");
  EXPECT_STREQ(outer.name, "presort");
  EXPECT_EQ(inner.rank, 3);
  EXPECT_EQ(outer.rank, 3);
  EXPECT_EQ(outer.depth, 0);
  EXPECT_EQ(inner.depth, 1);
  EXPECT_LT(inner.seq, outer.seq);
  EXPECT_EQ(inner.level, 2);
  EXPECT_EQ(inner.nodes, 5);
  EXPECT_EQ(inner.records, 100);
  EXPECT_EQ(inner.bytes, 4096);
  EXPECT_GE(inner.ts_s, outer.ts_s);
  EXPECT_GE(inner.dur_s, 0.0);
}

TEST(Trace, RingKeepsNewestSpans) {
  if (!util::trace_compiled_in()) GTEST_SKIP() << "tracing compiled out";
  TraceConfig config;
  config.ring_capacity = 4;
  ASSERT_TRUE(TraceCollector::instance().start(config));
  static const char* const kNames[] = {"s0", "s1", "s2", "s3", "s4",
                                       "s5", "s6", "s7", "s8", "s9"};
  {
    util::ThreadRankGuard rank(0);
    for (int i = 0; i < 10; ++i) {
      TraceScope span(kNames[i], i);
    }
  }
  const TraceDump dump = TraceCollector::instance().stop();
  ASSERT_EQ(dump.spans.size(), 4u);
  EXPECT_EQ(dump.dropped, 6u);
  EXPECT_FALSE(dump.complete());
  // Oldest-first within the retained window: the newest four spans.
  EXPECT_EQ(dump.spans[0].level, 6);
  EXPECT_EQ(dump.spans[3].level, 9);
  for (std::size_t i = 1; i < dump.spans.size(); ++i) {
    EXPECT_LT(dump.spans[i - 1].seq, dump.spans[i].seq);
  }
}

TEST(Trace, SamplingKeepsEveryNth) {
  if (!util::trace_compiled_in()) GTEST_SKIP() << "tracing compiled out";
  TraceConfig config;
  config.sample_every = 3;
  ASSERT_TRUE(TraceCollector::instance().start(config));
  {
    util::ThreadRankGuard rank(0);
    for (int i = 0; i < 9; ++i) {
      TraceScope span("sampled", i);
    }
  }
  const TraceDump dump = TraceCollector::instance().stop();
  EXPECT_EQ(dump.spans.size(), 3u);
  EXPECT_EQ(dump.sampled_out, 6u);
  EXPECT_FALSE(dump.complete());
  EXPECT_EQ(dump.spans[0].level, 0);  // first span always kept
  EXPECT_EQ(dump.spans[1].level, 3);
  EXPECT_EQ(dump.spans[2].level, 6);
}

TEST(Trace, ScopeOutsideActiveCollectorRecordsNothing) {
  if (!util::trace_compiled_in()) GTEST_SKIP() << "tracing compiled out";
  {
    TraceScope span("ignored");
  }
  ASSERT_TRUE(TraceCollector::instance().start(TraceConfig{}));
  const TraceDump dump = TraceCollector::instance().stop();
  EXPECT_TRUE(dump.spans.empty());
}

TEST(Trace, ConcurrentRanksGetSeparateLanes) {
  if (!util::trace_compiled_in()) GTEST_SKIP() << "tracing compiled out";
  ASSERT_TRUE(TraceCollector::instance().start(TraceConfig{}));
  std::vector<std::thread> threads;
  for (int r = 0; r < 4; ++r) {
    threads.emplace_back([r] {
      util::ThreadRankGuard rank(r);
      for (int i = 0; i < 25; ++i) {
        TraceScope span("work", i);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const TraceDump dump = TraceCollector::instance().stop();
  ASSERT_EQ(dump.spans.size(), 100u);
  std::map<int, std::uint64_t> last_seq;
  std::map<int, int> count;
  for (const util::TraceSpan& span : dump.spans) {
    ++count[span.rank];
    if (count[span.rank] > 1) {
      EXPECT_LT(last_seq[span.rank], span.seq) << "rank " << span.rank;
    }
    last_seq[span.rank] = span.seq;
  }
  for (int r = 0; r < 4; ++r) EXPECT_EQ(count[r], 25) << "rank " << r;
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST(Metrics, HistogramBucketsArePowerOfTwoRanges) {
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(1024), 11u);
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), mp::kHistogramBuckets - 1);
  Histogram h;
  h.observe(0);
  h.observe(5);
  h.observe(5);
  EXPECT_EQ(h.count, 3u);
  EXPECT_EQ(h.sum, 10u);
  EXPECT_EQ(h.max, 5u);
  EXPECT_EQ(h.buckets[0], 1u);
  EXPECT_EQ(h.buckets[3], 2u);
}

MetricsSnapshot snapshot_of(double c, double g, std::uint64_t obs) {
  MetricsSnapshot s;
  s.add("family.counter", c);
  s.gauge_max("family.gauge", g);
  s.observe("family.histogram", obs);
  return s;
}

TEST(Metrics, MergeIsAssociativeAndCommutative) {
  const MetricsSnapshot a = snapshot_of(1, 10, 100);
  const MetricsSnapshot b = snapshot_of(2, 30, 5);
  const MetricsSnapshot c = snapshot_of(4, 20, 1000);

  MetricsSnapshot ab_c = a;
  ab_c.merge(b);
  ab_c.merge(c);
  MetricsSnapshot bc = b;
  bc.merge(c);
  MetricsSnapshot a_bc = a;
  a_bc.merge(bc);
  MetricsSnapshot cba = c;
  cba.merge(b);
  cba.merge(a);

  const std::string expected = ab_c.to_json().dump(0);
  EXPECT_EQ(a_bc.to_json().dump(0), expected);
  EXPECT_EQ(cba.to_json().dump(0), expected);
  EXPECT_DOUBLE_EQ(ab_c.value("family.counter"), 7.0);
  EXPECT_DOUBLE_EQ(ab_c.value("family.gauge"), 30.0);
  const mp::Metric* h = ab_c.find("family.histogram");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->histogram.count, 3u);
  EXPECT_EQ(h->histogram.max, 1000u);
}

TEST(Metrics, MergeRejectsKindMismatch) {
  MetricsSnapshot a;
  a.add("x", 1);
  MetricsSnapshot b;
  b.gauge_max("x", 1);
  EXPECT_THROW(a.merge(b), std::logic_error);
  EXPECT_THROW(a.gauge_max("x", 2), std::logic_error);
}

TEST(Metrics, JsonRoundTripPreservesEverything) {
  MetricsSnapshot s = snapshot_of(3.5, 7.25, 129);
  s.observe("family.histogram", 0);
  s.observe("family.histogram", 1u << 20);
  const Json doc = s.to_json();
  const MetricsSnapshot back =
      MetricsSnapshot::from_json(Json::parse(doc.dump(2)));
  EXPECT_EQ(back.to_json().dump(0), doc.dump(0));
}

// ---------------------------------------------------------------------------
// Integration with the induction loop
// ---------------------------------------------------------------------------

struct TracedRun {
  core::FitReport report;
  TraceDump dump;
};

TracedRun traced_fit(const data::Dataset& training, int ranks,
                     const mp::CostModel& model) {
  EXPECT_TRUE(TraceCollector::instance().start(TraceConfig{}));
  TracedRun run;
  run.report = ScalParC::fit(training, ranks, InductionControls{}, model);
  run.dump = TraceCollector::instance().stop();
  return run;
}

TEST(TraceInduction, ChromeExportHasOnePidPerRankAndAllPhases) {
  if (!util::trace_compiled_in()) GTEST_SKIP() << "tracing compiled out";
  const int p = 4;
  const TracedRun run =
      traced_fit(make_training(2000), p, mp::CostModel::cray_t3d());
  ASSERT_TRUE(run.dump.complete());

  Json metadata = Json::object();
  metadata["ranks"] = p;
  const Json doc = util::chrome_trace_json(run.dump, metadata);
  // Chrome JSON must survive its own serialization.
  const Json parsed = Json::parse(doc.dump(0));
  ASSERT_TRUE(parsed.find("traceEvents") != nullptr);
  EXPECT_EQ(parsed.at("otherData").at("ranks").as_int(), p);

  std::set<int> pids;
  std::map<int, std::set<std::string>> phases_by_pid;
  const Json& events = parsed.at("traceEvents");
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Json& event = events.at(i);
    if (event.at("ph").as_string() != "X") continue;
    const int pid = static_cast<int>(event.at("pid").as_int());
    pids.insert(pid);
    phases_by_pid[pid].insert(event.at("name").as_string());
    EXPECT_GE(event.at("ts").as_double(), 0.0);
    EXPECT_GE(event.at("dur").as_double(), 0.0);
  }
  ASSERT_EQ(static_cast<int>(pids.size()), p);
  for (int r = 0; r < p; ++r) {
    ASSERT_TRUE(pids.count(r)) << "rank " << r;
    const std::set<std::string>& phases = phases_by_pid[r];
    for (const char* phase :
         {"presort", "findsplit_i", "findsplit_ii", "performsplit_i",
          "performsplit_ii"}) {
      EXPECT_TRUE(phases.count(phase))
          << "rank " << r << " missing phase " << phase;
    }
  }
}

// The phase spans tile every vtime-advancing statement of the induction
// loop, so per rank the top-level span vtime deltas sum exactly to
// InductionStats::total_seconds (the report tool enforces 1%; here the
// modeled clock is deterministic, so the agreement is to rounding).
TEST(TraceInduction, SpanVtimesTileTotalSeconds) {
  if (!util::trace_compiled_in()) GTEST_SKIP() << "tracing compiled out";
  const int p = 4;
  const TracedRun run =
      traced_fit(make_training(2000), p, mp::CostModel::cray_t3d());
  ASSERT_TRUE(run.dump.complete());
  const double total = run.report.stats.total_seconds;
  ASSERT_GT(total, 0.0);

  std::map<int, double> rank_vtime;
  for (const util::TraceSpan& span : run.dump.spans) {
    if (span.depth == 0) {
      rank_vtime[span.rank] += span.vtime_end - span.vtime_begin;
    }
  }
  ASSERT_EQ(static_cast<int>(rank_vtime.size()), p);
  for (const auto& [rank, sum] : rank_vtime) {
    EXPECT_NEAR(sum, total, 0.01 * total) << "rank " << rank;
  }
}

TEST(TraceInduction, MergedRunMetricsCoverTheFamilies) {
  const int p = 4;
  const core::FitReport report = ScalParC::fit(
      make_training(2000), p, InductionControls{}, mp::CostModel::cray_t3d());
  const MetricsSnapshot& m = report.run.metrics;
  // Gauges are SPMD-identical, so the merged value is the per-run value.
  EXPECT_DOUBLE_EQ(m.value("runtime.ranks"), p);
  // The gauge max-merges the per-rank clocks; report.stats is rank 0's view,
  // so agreement is to the (small) end-of-run vtime skew, not exact.
  EXPECT_GE(m.value("induction.total_seconds"),
            report.stats.total_seconds - 1e-12);
  EXPECT_NEAR(m.value("induction.total_seconds"), report.stats.total_seconds,
              0.01 * report.stats.total_seconds);
  EXPECT_GT(m.value("comm.bytes_sent"), 0.0);
  EXPECT_GT(m.value("nodetable.updates"), 0.0);
  EXPECT_GT(m.value("memory.peak_bytes_per_rank"), 0.0);
  const mp::Metric* hist = m.find("comm.message_bytes");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->kind, mp::MetricKind::kHistogram);
  EXPECT_GT(hist->histogram.count, 0u);
  // Counters sum across ranks: messages balance globally.
  EXPECT_DOUBLE_EQ(m.value("comm.messages_sent"),
                   m.value("comm.messages_received"));
}

// Differential guarantee: tracing must observe, never perturb. The tree
// from a traced run is byte-identical to an untraced one, and the traced
// run's wall time stays within the <5% overhead budget (with an absolute
// slack so scheduler noise on tiny runs cannot flake the suite).
TEST(TraceInduction, TracingIsByteIdenticalAndCheap) {
  if (!util::trace_compiled_in()) GTEST_SKIP() << "tracing compiled out";
  const int p = 4;
  const data::Dataset training = make_training(4000);

  const auto timed_fit = [&](bool traced) {
    double best = 1e300;
    std::string tree_text;
    for (int attempt = 0; attempt < 3; ++attempt) {
      if (traced) {
        EXPECT_TRUE(TraceCollector::instance().start(TraceConfig{}));
      }
      const auto begin = std::chrono::steady_clock::now();
      const core::FitReport report = ScalParC::fit(
          training, p, InductionControls{}, mp::CostModel::zero());
      const auto end = std::chrono::steady_clock::now();
      if (traced) {
        const TraceDump dump = TraceCollector::instance().stop();
        EXPECT_FALSE(dump.spans.empty());
      }
      best = std::min(best, std::chrono::duration<double>(end - begin).count());
      tree_text = report.tree.to_string();
    }
    return std::pair<double, std::string>(best, tree_text);
  };

  const auto [untraced_s, untraced_tree] = timed_fit(false);
  const auto [traced_s, traced_tree] = timed_fit(true);
  EXPECT_EQ(traced_tree, untraced_tree);
  EXPECT_LT(traced_s, untraced_s * 1.05 + 0.05)
      << "tracing overhead above budget: " << untraced_s << "s -> "
      << traced_s << "s";
}

}  // namespace
}  // namespace scalparc
