// Attribute lists: the vertical fragmentation of the training set (§2).
//
// Each attribute's values are stored as a separate list of
// (value, record id, class label) triples. Continuous lists are sorted by
// (value, rid) once during Presort and stay sorted forever; categorical
// lists remain in record-id order. In a parallel run each rank holds a
// horizontal fragment of every list.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"

namespace scalparc::data {

struct ContinuousEntry {
  double value = 0.0;
  std::int64_t rid = 0;
  std::int32_t cls = 0;
  std::int32_t pad = 0;  // keeps the struct trivially hashable/copyable at 24B
};

struct CategoricalEntry {
  std::int64_t rid = 0;
  std::int32_t value = 0;
  std::int32_t cls = 0;
};

// Total order used for the presort: by value, ties broken by rid so that
// parallel and serial sorts agree exactly.
struct ContinuousEntryLess {
  bool operator()(const ContinuousEntry& a, const ContinuousEntry& b) const {
    if (a.value != b.value) return a.value < b.value;
    return a.rid < b.rid;
  }
};

// Builds the local fragment of attribute `attribute`'s list from a dataset
// block whose first record has global id `first_rid`.
std::vector<ContinuousEntry> build_continuous_list(const Dataset& block,
                                                   int attribute,
                                                   std::int64_t first_rid);
std::vector<CategoricalEntry> build_categorical_list(const Dataset& block,
                                                     int attribute,
                                                     std::int64_t first_rid);

}  // namespace scalparc::data
