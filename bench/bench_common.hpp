// Shared helpers for the paper-reproduction benches: workload construction,
// scaled paper parameters, and CSV emission alongside the stdout tables.
//
// Every bench accepts:
//   --scale X     multiply the paper's training-set sizes by X
//                 (default 1/16 so the full grid runs in ~a minute on a
//                 laptop; use --scale 1 for the paper's 0.2M..6.4M records)
//   --procs a,b,c override the processor counts
//   --csv DIR     where to drop the CSV (default ./bench_results)
#pragma once

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/scalparc.hpp"
#include "data/synthetic.hpp"
#include "util/cli.hpp"

namespace scalparc::bench {

// The paper's training-set sizes (records), reconstructed from §5: "up to
// 6.4 million records" with six curves in Figure 3.
inline std::vector<std::uint64_t> paper_sizes(double scale) {
  const std::uint64_t base[] = {200000, 400000, 800000,
                                1600000, 3200000, 6400000};
  std::vector<std::uint64_t> sizes;
  for (const std::uint64_t s : base) {
    sizes.push_back(static_cast<std::uint64_t>(static_cast<double>(s) * scale));
  }
  return sizes;
}

// The paper's processor counts (Cray T3D, up to 128 PEs).
inline std::vector<std::int64_t> paper_procs() { return {2, 4, 8, 16, 32, 64, 128}; }

// The evaluation workload: 7 attributes, 2 classes, SPRINT-style generator.
inline data::QuestGenerator paper_generator(std::uint64_t seed = 1) {
  data::GeneratorConfig config;
  config.seed = seed;
  config.function = data::LabelFunction::kF2;
  config.num_attributes = 7;
  return data::QuestGenerator(config);
}

// Induction options used for all paper benches: unlimited growth except for
// a generous depth cap, exactly as the algorithm description assumes.
inline core::InductionControls paper_controls() {
  core::InductionControls controls;
  controls.options.max_depth = 24;
  return controls;
}

class CsvWriter {
 public:
  CsvWriter(const util::CliArgs& args, const std::string& filename,
            const std::string& header) {
    const std::string dir = args.get_string("csv", "bench_results");
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    path_ = dir + "/" + filename;
    out_.open(path_);
    if (out_) out_ << header << '\n';
  }

  template <typename... Args>
  void row(const char* format, Args... values) {
    if (!out_) return;
    char line[512];
    std::snprintf(line, sizeof(line), format, values...);
    out_ << line << '\n';
  }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
};

// "0.2m"-style rendering of a record count, as the paper labels its curves.
inline std::string size_label(std::uint64_t records) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.4gk",
                static_cast<double>(records) / 1000.0);
  return buffer;
}

}  // namespace scalparc::bench
