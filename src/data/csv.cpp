#include "data/csv.hpp"

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <ostream>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace scalparc::data {

namespace {

std::vector<std::string> split(const std::string& line, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= line.size()) {
    auto pos = line.find(sep, start);
    if (pos == std::string::npos) pos = line.size();
    parts.push_back(line.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("csv: " + what);
}

}  // namespace

void write_csv(const Dataset& dataset, std::ostream& out) {
  const Schema& schema = dataset.schema();
  for (int a = 0; a < schema.num_attributes(); ++a) {
    const AttributeInfo& info = schema.attribute(a);
    out << info.name;
    if (info.kind == AttributeKind::kContinuous) {
      out << ":cont";
    } else {
      out << ":cat:" << info.cardinality;
    }
    out << ',';
  }
  out << "class:" << schema.num_classes() << '\n';

  std::ostringstream row;
  row.precision(17);  // round-trip exact doubles
  for (std::size_t r = 0; r < dataset.num_records(); ++r) {
    row.str({});
    for (int a = 0; a < schema.num_attributes(); ++a) {
      if (schema.attribute(a).kind == AttributeKind::kContinuous) {
        row << dataset.continuous_value(a, r);
      } else {
        row << dataset.categorical_value(a, r);
      }
      row << ',';
    }
    row << dataset.label(r) << '\n';
    out << row.str();
  }
}

void write_csv_file(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) fail("cannot open '" + path + "' for writing");
  write_csv(dataset, out);
}

Dataset read_csv(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) fail("empty input (missing header)");

  std::vector<AttributeInfo> attributes;
  std::int32_t num_classes = -1;
  for (const std::string& column : split(line, ',')) {
    const std::vector<std::string> parts = split(column, ':');
    if (parts.size() == 2 && parts[0] == "class") {
      num_classes = static_cast<std::int32_t>(std::strtol(parts[1].c_str(), nullptr, 10));
      continue;
    }
    if (num_classes != -1) fail("class column must be last");
    if (parts.size() == 2 && parts[1] == "cont") {
      attributes.push_back(Schema::continuous(parts[0]));
    } else if (parts.size() == 3 && parts[1] == "cat") {
      attributes.push_back(Schema::categorical(
          parts[0],
          static_cast<std::int32_t>(std::strtol(parts[2].c_str(), nullptr, 10))));
    } else {
      fail("malformed header column '" + column + "'");
    }
  }
  if (num_classes < 2) fail("header must end with class:<C>, C >= 2");

  Dataset dataset(Schema(std::move(attributes), num_classes));
  const Schema& schema = dataset.schema();
  std::vector<double> cont(static_cast<std::size_t>(schema.num_continuous()));
  std::vector<std::int32_t> cat(static_cast<std::size_t>(schema.num_categorical()));

  std::size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    const std::vector<std::string> cells = split(line, ',');
    if (static_cast<int>(cells.size()) != schema.num_attributes() + 1) {
      fail("row " + std::to_string(line_number) + " has " +
           std::to_string(cells.size()) + " cells, expected " +
           std::to_string(schema.num_attributes() + 1));
    }
    std::size_t c = 0;
    std::size_t g = 0;
    for (int a = 0; a < schema.num_attributes(); ++a) {
      const std::string& cell = cells[static_cast<std::size_t>(a)];
      char* end = nullptr;
      if (schema.attribute(a).kind == AttributeKind::kContinuous) {
        cont[c++] = std::strtod(cell.c_str(), &end);
      } else {
        cat[g++] = static_cast<std::int32_t>(std::strtol(cell.c_str(), &end, 10));
      }
      if (end == cell.c_str()) {
        fail("row " + std::to_string(line_number) + ": bad value '" + cell + "'");
      }
    }
    const std::int32_t label =
        static_cast<std::int32_t>(std::strtol(cells.back().c_str(), nullptr, 10));
    dataset.append(std::span<const double>(cont.data(), c),
                   std::span<const std::int32_t>(cat.data(), g), label);
  }
  try {
    dataset.validate();
  } catch (const std::exception& e) {
    fail(e.what());
  }
  return dataset;
}

Dataset read_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("cannot open '" + path + "' for reading");
  return read_csv(in);
}

}  // namespace scalparc::data
