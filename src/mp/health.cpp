#include "mp/health.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>

namespace scalparc::mp {

namespace {

// Grace window for liveness decisions while a heartbeat lane is unprimed:
// with no inter-arrival history yet, any silence shorter than this is
// treated as alive.
constexpr double kUnprimedAliveWindowS = 1.0;

double now_busy_s(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

[[noreturn]] void bad_health_field(const std::string& field,
                                   const std::string& why) {
  throw std::invalid_argument("HealthOptions: " + field + " " + why);
}

void require_positive(const std::string& field, double value) {
  if (!(value > 0.0) || !std::isfinite(value)) {
    bad_health_field(field, "must be a positive finite number, got " +
                                std::to_string(value));
  }
}

}  // namespace

void HealthOptions::validate() const {
  require_positive("phi_threshold", phi_threshold);
  require_positive("timeout_floor_s", timeout_floor_s);
  require_positive("sustain_s", sustain_s);
  require_positive("min_blocked_s", min_blocked_s);
  require_positive("slow_ratio", slow_ratio);
  if (slow_ratio < 1.0) {
    bad_health_field("slow_ratio", "must be >= 1, got " +
                                       std::to_string(slow_ratio));
  }
  if (window < 2) {
    bad_health_field("window", "must be >= 2, got " + std::to_string(window));
  }
  if (min_samples < 2 || min_samples > window) {
    bad_health_field("min_samples", "must be in [2, window], got " +
                                        std::to_string(min_samples));
  }
}

PhiAccrualEstimator::PhiAccrualEstimator(int window, int min_samples)
    : window_(window < 2 ? 2 : window),
      min_samples_(min_samples < 2 ? 2 : min_samples),
      ring_(static_cast<std::size_t>(window_), 0.0) {
  if (min_samples_ > window_) min_samples_ = window_;
}

void PhiAccrualEstimator::record(double interval_s) {
  if (!(interval_s >= 0.0) || !std::isfinite(interval_s)) return;
  if (count_ == window_) {
    const double evicted = ring_[static_cast<std::size_t>(next_)];
    sum_ -= evicted;
    sumsq_ -= evicted * evicted;
  } else {
    ++count_;
  }
  ring_[static_cast<std::size_t>(next_)] = interval_s;
  sum_ += interval_s;
  sumsq_ += interval_s * interval_s;
  next_ = (next_ + 1) % window_;
}

double PhiAccrualEstimator::mean() const {
  return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
}

double PhiAccrualEstimator::stddev() const {
  if (count_ < 2) return 0.0;
  const double m = mean();
  const double var =
      std::max(0.0, sumsq_ / static_cast<double>(count_) - m * m);
  // Floor: an ultra-regular stream must keep a nonzero spread, or phi
  // becomes a step function at the mean.
  return std::max({std::sqrt(var), 0.125 * m, 1e-4});
}

double PhiAccrualEstimator::phi(double silence_s) const {
  if (!primed()) return 0.0;
  const double z = (silence_s - mean()) / stddev();
  // P(interval > silence) under the fitted normal.
  const double p = 0.5 * std::erfc(z / std::sqrt(2.0));
  if (!(p > 0.0) || p < 1e-39) return kMaxPhi;
  return std::min(kMaxPhi, -std::log10(p));
}

double PhiAccrualEstimator::timeout_for_phi(double phi_threshold) const {
  const double m = mean();
  const double sd = stddev();
  // phi is monotone in t; bisect on the standardized deviate. erfc(12) is
  // ~1e-64, past kMaxPhi, so [0, 12] brackets every reachable threshold.
  double lo = 0.0, hi = 12.0;
  for (int i = 0; i < 64; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double p = 0.5 * std::erfc(mid);
    const double mid_phi = (!(p > 0.0) || p < 1e-39)
                               ? kMaxPhi
                               : -std::log10(p);
    if (mid_phi < phi_threshold) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return m + sd * std::sqrt(2.0) * hi;
}

HealthRegistry::HealthRegistry(int nranks, const HealthOptions& options)
    : options_(options), start_(std::chrono::steady_clock::now()) {
  options_.validate();
  lanes_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    lanes_.push_back(std::make_unique<RankLane>(options_));
  }
}

void HealthRegistry::heartbeat(int rank) {
  const auto now = std::chrono::steady_clock::now();
  const std::int64_t now_ns = now.time_since_epoch().count();
  RankLane& l = lane(rank);
  const std::int64_t prev =
      l.last_beat_ns.exchange(now_ns, std::memory_order_relaxed);
  heartbeats_.fetch_add(1, std::memory_order_relaxed);
  if (prev < 0) return;
  const double interval_s =
      std::chrono::duration<double>(
          std::chrono::steady_clock::duration(now_ns - prev))
          .count();
  std::lock_guard<std::mutex> lock(l.mu);
  l.beats.record(interval_s);
}

void HealthRegistry::heartbeat_cheap(int rank) {
  lane(rank).last_beat_ns.store(
      std::chrono::steady_clock::now().time_since_epoch().count(),
      std::memory_order_relaxed);
  heartbeats_.fetch_add(1, std::memory_order_relaxed);
}

void HealthRegistry::advance_watermark(int rank, int level) {
  RankLane& l = lane(rank);
  std::lock_guard<std::mutex> lock(l.mu);
  ++l.watermark;
  l.level = level;
  watermark_advances_.fetch_add(1, std::memory_order_relaxed);
}

void HealthRegistry::on_blocked(int rank) {
  const auto now = std::chrono::steady_clock::now();
  RankLane& l = lane(rank);
  std::lock_guard<std::mutex> lock(l.mu);
  if (!l.blocked) {
    l.blocked = true;
    l.blocked_since = now;
  }
}

void HealthRegistry::on_unblocked(int rank) {
  const auto now = std::chrono::steady_clock::now();
  RankLane& l = lane(rank);
  std::lock_guard<std::mutex> lock(l.mu);
  if (l.blocked) {
    l.blocked = false;
    l.blocked_accum_s += now_busy_s(l.blocked_since, now);
  }
}

void HealthRegistry::on_finished(int rank) {
  const auto now = std::chrono::steady_clock::now();
  RankLane& l = lane(rank);
  std::lock_guard<std::mutex> lock(l.mu);
  if (l.blocked) {
    l.blocked = false;
    l.blocked_accum_s += now_busy_s(l.blocked_since, now);
  }
  l.finished = true;
}

double HealthRegistry::suspicion(int rank) const {
  const RankLane& l = lane(rank);
  const std::int64_t last = l.last_beat_ns.load(std::memory_order_relaxed);
  if (last < 0) return 0.0;
  const std::int64_t now_ns =
      std::chrono::steady_clock::now().time_since_epoch().count();
  const double silence_s =
      std::chrono::duration<double>(
          std::chrono::steady_clock::duration(now_ns - last))
          .count();
  std::lock_guard<std::mutex> lock(l.mu);
  return l.beats.phi(silence_s);
}

bool HealthRegistry::alive(int rank, double* phi_out) const {
  const RankLane& l = lane(rank);
  const std::int64_t last = l.last_beat_ns.load(std::memory_order_relaxed);
  const std::int64_t now_ns =
      std::chrono::steady_clock::now().time_since_epoch().count();
  const double silence_s =
      last < 0 ? 0.0
               : std::chrono::duration<double>(
                     std::chrono::steady_clock::duration(now_ns - last))
                     .count();
  std::lock_guard<std::mutex> lock(l.mu);
  if (!l.beats.primed()) {
    if (phi_out != nullptr) *phi_out = 0.0;
    return silence_s < kUnprimedAliveWindowS;
  }
  const double phi = l.beats.phi(silence_s);
  if (phi_out != nullptr) *phi_out = phi;
  return phi < options_.phi_threshold;
}

HealthRegistry::Snapshot HealthRegistry::snapshot() const {
  const auto now = std::chrono::steady_clock::now();
  Snapshot snap;
  snap.elapsed_s = now_busy_s(start_, now);
  snap.watermarks.reserve(lanes_.size());
  snap.busy_seconds.reserve(lanes_.size());
  snap.finished.reserve(lanes_.size());
  for (const std::unique_ptr<RankLane>& l : lanes_) {
    std::lock_guard<std::mutex> lock(l->mu);
    snap.watermarks.push_back(l->watermark);
    double blocked = l->blocked_accum_s;
    if (l->blocked) blocked += now_busy_s(l->blocked_since, now);
    snap.busy_seconds.push_back(
        std::max(0.0, now_busy_s(start_, now) - blocked));
    snap.finished.push_back(l->finished ? 1 : 0);
  }
  return snap;
}

void HealthRegistry::note_straggler(int rank, double slowdown) {
  std::lock_guard<std::mutex> lock(straggler_mu_);
  if (straggler_rank_ < 0) {
    straggler_rank_ = rank;
    straggler_slowdown_ = slowdown;
  }
}

int HealthRegistry::straggler_rank() const {
  std::lock_guard<std::mutex> lock(straggler_mu_);
  return straggler_rank_;
}

double HealthRegistry::straggler_slowdown() const {
  std::lock_guard<std::mutex> lock(straggler_mu_);
  return straggler_slowdown_;
}

double parse_positive_health_value(const std::string& flag,
                                   const std::string& text) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || !std::isfinite(v) || v <= 0.0) {
    std::ostringstream msg;
    msg << flag << ": expected a positive finite number, got '" << text << "'";
    throw std::invalid_argument(msg.str());
  }
  return v;
}

}  // namespace scalparc::mp
