#include "sprint/serial_cart.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/count_matrix.hpp"
#include "core/gini.hpp"
#include "core/split_finder.hpp"
#include "core/splitter.hpp"
#include "data/attribute_list.hpp"

namespace scalparc::sprint {

namespace {

using core::CountMatrix;
using core::SplitCandidate;
using core::SplitKind;
using data::AttributeKind;

struct Builder {
  const data::Dataset& training;
  const core::InductionOptions& options;
  core::DecisionTree tree;
  CartStats* stats;

  std::vector<std::int64_t> class_counts(const std::vector<std::size_t>& rows) const {
    std::vector<std::int64_t> counts(
        static_cast<std::size_t>(training.schema().num_classes()), 0);
    for (const std::size_t row : rows) {
      ++counts[static_cast<std::size_t>(training.label(row))];
    }
    return counts;
  }

  static std::int32_t majority(std::span<const std::int64_t> counts) {
    std::size_t best = 0;
    for (std::size_t j = 1; j < counts.size(); ++j) {
      if (counts[j] > counts[best]) best = j;
    }
    return static_cast<std::int32_t>(best);
  }

  static bool pure(std::span<const std::int64_t> counts) {
    int non_zero = 0;
    for (const std::int64_t c : counts) non_zero += c > 0;
    return non_zero <= 1;
  }

  // Recursively builds the subtree over `rows`; returns its node id.
  int build(const std::vector<std::size_t>& rows, int depth) {
    const std::vector<std::int64_t> counts = class_counts(rows);
    core::TreeNode node;
    node.is_leaf = true;
    node.class_counts = counts;
    node.num_records = static_cast<std::int64_t>(rows.size());
    node.majority_class = majority(counts);
    node.depth = depth;
    const int id = tree.add_node(std::move(node));

    if (pure(counts) ||
        static_cast<std::int64_t>(rows.size()) < options.min_split_records ||
        depth >= options.max_depth) {
      return id;
    }

    const data::Schema& schema = training.schema();
    const int c = schema.num_classes();
    SplitCandidate best;
    std::vector<std::int32_t> best_mapping;

    for (int a = 0; a < schema.num_attributes(); ++a) {
      if (schema.attribute(a).kind == AttributeKind::kContinuous) {
        // Re-sort this attribute's values at this node — the cost CART pays.
        std::vector<data::ContinuousEntry> entries(rows.size());
        for (std::size_t k = 0; k < rows.size(); ++k) {
          entries[k].value = training.continuous_value(a, rows[k]);
          entries[k].rid = static_cast<std::int64_t>(rows[k]);
          entries[k].cls = training.label(rows[k]);
        }
        std::sort(entries.begin(), entries.end(), data::ContinuousEntryLess{});
        if (stats != nullptr) stats->sorted_elements += entries.size();
        const std::vector<std::int64_t> zeros(static_cast<std::size_t>(c), 0);
        core::IncrementalImpurityScanner scanner(counts, zeros,
                                                 options.criterion);
        core::scan_continuous_segment(entries, scanner, false, 0.0,
                                      static_cast<std::int32_t>(a), best);
      } else {
        CountMatrix matrix(schema.attribute(a).cardinality, c);
        for (const std::size_t row : rows) {
          matrix.increment(training.categorical_value(a, row), training.label(row));
        }
        const SplitCandidate candidate = core::best_categorical_split(
            matrix, static_cast<std::int32_t>(a), options.categorical_split,
            options.criterion);
        if (core::candidate_less(candidate, best)) {
          best = candidate;
          best_mapping = candidate.kind == SplitKind::kCategoricalMultiWay
                             ? core::value_to_child_multiway(matrix)
                             : core::value_to_child_subset(matrix, candidate.subset);
        }
      }
    }

    const double node_impurity =
        core::impurity_of_counts(counts, options.criterion);
    if (!best.valid() ||
        !(best.gini < node_impurity - options.min_gini_improvement)) {
      return id;
    }

    int num_children;
    if (best.kind == SplitKind::kContinuous) {
      num_children = 2;
    } else {
      num_children = core::num_children_of(best_mapping);
      if (num_children < 2) return id;
    }

    std::vector<std::vector<std::size_t>> partitions(
        static_cast<std::size_t>(num_children));
    for (const std::size_t row : rows) {
      std::int32_t slot;
      if (best.kind == SplitKind::kContinuous) {
        slot = training.continuous_value(best.attribute, row) < best.threshold ? 0 : 1;
      } else {
        slot = best_mapping[static_cast<std::size_t>(
            training.categorical_value(best.attribute, row))];
      }
      partitions[static_cast<std::size_t>(slot)].push_back(row);
    }

    {
      core::TreeNode& stored = tree.node(id);
      stored.is_leaf = false;
      stored.split.attribute = best.attribute;
      stored.split.num_children = num_children;
      if (best.kind == SplitKind::kContinuous) {
        stored.split.kind = AttributeKind::kContinuous;
        stored.split.threshold = best.threshold;
      } else {
        stored.split.kind = AttributeKind::kCategorical;
        stored.split.value_to_child = best_mapping;
      }
    }
    for (int slot = 0; slot < num_children; ++slot) {
      const int child =
          build(partitions[static_cast<std::size_t>(slot)], depth + 1);
      tree.node(id).children.push_back(child);
    }
    return id;
  }
};

}  // namespace

core::DecisionTree fit_serial_cart(const data::Dataset& training,
                                   const core::InductionOptions& options,
                                   CartStats* stats) {
  if (training.num_records() == 0) {
    throw std::invalid_argument("fit_serial_cart: empty training set");
  }
  Builder builder{training, options, core::DecisionTree(training.schema()), stats};
  std::vector<std::size_t> rows(training.num_records());
  std::iota(rows.begin(), rows.end(), std::size_t{0});
  builder.build(rows, 0);
  return std::move(builder.tree);
}

}  // namespace scalparc::sprint
