// Small helpers shared by the parallel sort and rebalance primitives.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace scalparc::sort {

// Sizes of the `parts` chunks of a block distribution of `total` elements:
// the first (total % parts) chunks get one extra element. This is the
// canonical "equal fragments" layout the paper assumes for attribute lists.
std::vector<std::size_t> equal_partition_sizes(std::size_t total, int parts);

// Weighted block distribution: chunk i targets total * weights[i] / sum(w)
// elements, rounded by largest-remainder apportionment (remainder ties break
// toward the lower index). Deterministic, sums exactly to `total`, and with
// uniform weights reproduces equal_partition_sizes bit for bit — so a
// weight-aware call site degrades to the canonical layout when no rank is
// being steered away from. Weights must be positive and finite.
std::vector<std::size_t> weighted_partition_sizes(std::size_t total,
                                                  std::span<const double> weights);

// Exclusive prefix (start offsets) of a size vector, plus the total as the
// final element; result has sizes.size() + 1 entries.
std::vector<std::size_t> offsets_from_sizes(const std::vector<std::size_t>& sizes);

}  // namespace scalparc::sort
