#include "core/compiled_tree.hpp"

#include <cstddef>
#include <cstdint>
#include <deque>
#include <limits>
#include <stdexcept>
#include <utility>

#include "mp/metrics.hpp"
#include "mp/telemetry.hpp"

namespace scalparc::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

CompiledTree CompiledTree::compile(const DecisionTree& tree) {
  if (tree.empty()) {
    throw std::logic_error("CompiledTree::compile: empty tree");
  }
  CompiledTree out;
  out.schema_ = tree.schema();
  out.source_nodes_ = tree.num_nodes();

  // Flat size: every source node plus one synthesized fallback leaf per
  // categorical split (the target of unseen / out-of-range value codes).
  int total = tree.num_nodes();
  for (int id = 0; id < tree.num_nodes(); ++id) {
    const TreeNode& n = tree.node(id);
    if (!n.is_leaf && n.split.kind == data::AttributeKind::kCategorical) {
      ++total;
      out.all_continuous_ = false;
    }
  }
  const auto size = static_cast<std::size_t>(total);
  out.attr_.resize(size);
  out.threshold_.resize(size);
  out.child_base_.resize(size);
  out.label_.resize(size);
  out.is_cat_.resize(size);
  out.cat_offset_.assign(size, -1);
  out.cat_card_.assign(size, 0);

  // The zero scratch lane's slot in the evaluation column table; leaves test
  // it against +inf so they self-loop without a branch.
  const std::int32_t zero_slot = out.schema_.num_attributes();
  const auto emit_leaf = [&](std::int32_t flat, std::int32_t majority) {
    out.attr_[static_cast<std::size_t>(flat)] = zero_slot;
    out.threshold_[static_cast<std::size_t>(flat)] = kInf;
    out.child_base_[static_cast<std::size_t>(flat)] = flat;
    out.label_[static_cast<std::size_t>(flat)] = majority;
    out.is_cat_[static_cast<std::size_t>(flat)] = 0;
  };

  // Breadth-first numbering: children of one node (and its fallback leaf,
  // when categorical) occupy consecutive flat ids, so the advance loop
  // reaches `child_base + slot` inside one cache line run.
  struct Pending {
    int orig;
    std::int32_t flat;
    int depth;
  };
  std::deque<Pending> queue{{tree.root(), 0, 0}};
  std::int32_t next = 1;
  while (!queue.empty()) {
    const Pending item = queue.front();
    queue.pop_front();
    if (item.depth > out.depth_) out.depth_ = item.depth;
    const TreeNode& n = tree.node(item.orig);
    const auto f = static_cast<std::size_t>(item.flat);
    out.label_[f] = n.majority_class;
    if (n.is_leaf) {
      emit_leaf(item.flat, n.majority_class);
      continue;
    }
    const int kids = n.split.num_children;
    if (kids < 2 || static_cast<std::size_t>(kids) != n.children.size()) {
      throw std::logic_error("CompiledTree::compile: malformed split node");
    }
    out.child_base_[f] = next;
    if (n.split.kind == data::AttributeKind::kContinuous) {
      out.attr_[f] = n.split.attribute;
      out.threshold_[f] = n.split.threshold;
      out.is_cat_[f] = 0;
      for (int slot = 0; slot < kids; ++slot) {
        queue.push_back({n.children[static_cast<std::size_t>(slot)],
                         next + slot, item.depth + 1});
      }
      next += kids;
    } else {
      out.attr_[f] = n.split.attribute;
      out.threshold_[f] = kInf;
      out.is_cat_[f] = 1;
      const std::int32_t fallback = next + kids;
      out.cat_offset_[f] = static_cast<std::int32_t>(out.cat_arena_.size());
      out.cat_card_[f] =
          static_cast<std::int32_t>(n.split.value_to_child.size());
      for (const std::int32_t slot : n.split.value_to_child) {
        if (slot >= kids) {
          throw std::logic_error("CompiledTree::compile: bad value_to_child");
        }
        out.cat_arena_.push_back(slot >= 0 ? next + slot : fallback);
      }
      // Sentinel slot for out-of-range codes (same fallback as unseen ones).
      out.cat_arena_.push_back(fallback);
      for (int slot = 0; slot < kids; ++slot) {
        queue.push_back({n.children[static_cast<std::size_t>(slot)],
                         next + slot, item.depth + 1});
      }
      emit_leaf(fallback, n.majority_class);
      if (item.depth + 1 > out.depth_) out.depth_ = item.depth + 1;
      next += kids + 1;
    }
  }
  if (next != total) {
    throw std::logic_error("CompiledTree::compile: node accounting mismatch");
  }
  return out;
}

std::size_t CompiledTree::payload_bytes() const {
  return attr_.size() * sizeof(std::int32_t) +
         threshold_.size() * sizeof(double) +
         child_base_.size() * sizeof(std::int32_t) +
         label_.size() * sizeof(std::int32_t) +
         is_cat_.size() * sizeof(std::int8_t) +
         cat_offset_.size() * sizeof(std::int32_t) +
         cat_card_.size() * sizeof(std::int32_t) +
         cat_arena_.size() * sizeof(std::int32_t);
}

void CompiledTree::advance_continuous(std::span<std::int32_t> cur,
                                      std::span<const double* const> cont,
                                      std::size_t rows) const {
  const std::int32_t* const attr = attr_.data();
  const double* const threshold = threshold_.data();
  const std::int32_t* const base = child_base_.data();
  const double* const* const columns = cont.data();
  std::int32_t* const nodes = cur.data();
  for (int step = 0; step < depth_; ++step) {
    for (std::size_t r = 0; r < rows; ++r) {
      const auto n = static_cast<std::size_t>(nodes[r]);
      const double v = columns[attr[n]][r];
      // Branchless: rows at leaves test the zero lane against +inf and
      // self-loop; NaN compares false and takes slot 1 like the recursive
      // walk.
      nodes[r] = base[n] + static_cast<std::int32_t>(!(v < threshold[n]));
    }
  }
}

void CompiledTree::advance_mixed(std::span<std::int32_t> cur,
                                 std::span<const double* const> cont,
                                 std::span<const std::int32_t* const> cat,
                                 std::size_t rows) const {
  for (int step = 0; step < depth_; ++step) {
    for (std::size_t r = 0; r < rows; ++r) {
      const auto n = static_cast<std::size_t>(cur[r]);
      const std::int32_t a = attr_[n];
      if (is_cat_[n] == 0) {
        const double v = cont[static_cast<std::size_t>(a)][r];
        cur[r] = child_base_[n] + static_cast<std::int32_t>(!(v < threshold_[n]));
      } else {
        const std::int32_t code = cat[static_cast<std::size_t>(a)][r];
        const auto card = static_cast<std::uint32_t>(cat_card_[n]);
        // Unsigned clamp folds negative and >= cardinality codes onto the
        // sentinel slot, whose arena entry is the fallback leaf.
        const std::uint32_t idx =
            static_cast<std::uint32_t>(code) < card
                ? static_cast<std::uint32_t>(code)
                : card;
        cur[r] = cat_arena_[static_cast<std::size_t>(cat_offset_[n]) + idx];
      }
    }
  }
}

void CompiledTree::predict_batch(const data::Dataset& dataset,
                                 std::size_t begin, std::size_t end,
                                 std::span<std::int32_t> out) const {
  if (empty()) {
    throw std::logic_error("CompiledTree::predict_batch: empty model");
  }
  if (begin > end || end > dataset.num_records()) {
    throw std::out_of_range("CompiledTree::predict_batch: bad row range");
  }
  if (out.size() != end - begin) {
    throw std::invalid_argument(
        "CompiledTree::predict_batch: output span size mismatch");
  }
  if (begin == end) return;

  // Reused per-thread scratch: cursor lane, the all-zeros leaf lane, and the
  // shifted column-pointer tables — zero steady-state allocation once warm.
  thread_local std::vector<std::int32_t> cur;
  thread_local std::vector<double> zero_lane;
  thread_local std::vector<const double*> cont_base;
  thread_local std::vector<const double*> cont;
  thread_local std::vector<const std::int32_t*> cat_base;
  thread_local std::vector<const std::int32_t*> cat;
  cur.resize(kChunk);
  zero_lane.assign(kChunk, 0.0);
  const auto num_attrs = static_cast<std::size_t>(schema_.num_attributes());
  cont_base.assign(num_attrs + 1, nullptr);
  cont.assign(num_attrs + 1, nullptr);
  cat_base.assign(num_attrs, nullptr);
  cat.assign(num_attrs, nullptr);
  for (int a = 0; a < schema_.num_attributes(); ++a) {
    if (schema_.attribute(a).kind == data::AttributeKind::kContinuous) {
      cont_base[static_cast<std::size_t>(a)] =
          dataset.continuous_column(a).data();
    } else {
      cat_base[static_cast<std::size_t>(a)] =
          dataset.categorical_column(a).data();
    }
  }

  for (std::size_t pos = begin; pos < end; pos += kChunk) {
    const std::size_t rows = std::min(kChunk, end - pos);
    for (std::size_t a = 0; a < num_attrs; ++a) {
      cont[a] = cont_base[a] == nullptr ? nullptr : cont_base[a] + pos;
      cat[a] = cat_base[a] == nullptr ? nullptr : cat_base[a] + pos;
    }
    cont[num_attrs] = zero_lane.data();
    for (std::size_t r = 0; r < rows; ++r) cur[r] = 0;
    if (all_continuous_) {
      advance_continuous(std::span<std::int32_t>(cur.data(), rows),
                         std::span<const double* const>(cont), rows);
    } else {
      advance_mixed(std::span<std::int32_t>(cur.data(), rows),
                    std::span<const double* const>(cont),
                    std::span<const std::int32_t* const>(cat), rows);
    }
    std::int32_t* const dst = out.data() + (pos - begin);
    for (std::size_t r = 0; r < rows; ++r) {
      dst[r] = label_[static_cast<std::size_t>(cur[r])];
    }
  }

  if (mp::MetricsSnapshot* sink = mp::metrics_sink()) {
    sink->add("predict.batches");
    sink->add("predict.records", static_cast<double>(end - begin));
    sink->observe("predict.depth", static_cast<std::uint64_t>(depth_));
  }
}

std::vector<std::int32_t> CompiledTree::predict_all(
    const data::Dataset& dataset) const {
  std::vector<std::int32_t> out(dataset.num_records());
  predict_batch(dataset, 0, dataset.num_records(), out);
  return out;
}

std::int32_t CompiledTree::predict(const data::Dataset& dataset,
                                   std::size_t row) const {
  if (empty()) {
    throw std::logic_error("CompiledTree::predict: empty model");
  }
  std::int32_t node = 0;
  for (;;) {
    const auto n = static_cast<std::size_t>(node);
    if (child_base_[n] == node) return label_[n];  // absorbing leaf
    if (is_cat_[n] == 0) {
      const double v = dataset.continuous_value(attr_[n], row);
      node = child_base_[n] + static_cast<std::int32_t>(!(v < threshold_[n]));
    } else {
      const std::int32_t code = dataset.categorical_value(attr_[n], row);
      const auto card = static_cast<std::uint32_t>(cat_card_[n]);
      const std::uint32_t idx = static_cast<std::uint32_t>(code) < card
                                    ? static_cast<std::uint32_t>(code)
                                    : card;
      node = cat_arena_[static_cast<std::size_t>(cat_offset_[n]) + idx];
    }
  }
}

void ModelHandle::swap(std::shared_ptr<const CompiledTree> next) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    model_ = std::move(next);
  }
  const std::uint64_t swap_no =
      swaps_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (mp::MetricsSnapshot* sink = mp::metrics_sink()) {
    sink->add("predict.swaps");
  }
  telemetry::record_event("model_swap",
                          "hot-swap #" + std::to_string(swap_no));
}

}  // namespace scalparc::core
