// Minimal leveled logger for the ScalParC library.
//
// The library itself is quiet by default (kWarn); examples and benches raise
// the level, and the SCALPARC_LOG environment variable ("trace".."off") sets
// the initial level so tests can raise verbosity without code changes.
// Logging is routed through a single sink so that multi-threaded rank output
// is not interleaved mid-line. Inside run_ranks every line is prefixed with
// the emitting rank and a monotonic timestamp (see set_thread_rank).
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace scalparc::util {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

// Global log level. Thread-safe to read/write (atomic underneath). The first
// read initializes the level from the SCALPARC_LOG environment variable; an
// explicit set_log_level overrides it for the rest of the process.
LogLevel log_level();
void set_log_level(LogLevel level);

// Parses "trace"/"debug"/"info"/"warn"/"error"/"off"; defaults to kWarn.
LogLevel parse_log_level(std::string_view name);

// Output shape of every log line. kText is the human prefix format; kJson
// emits one JSON object per line ({"ts":..,"rank":..,"level":..,"msg":..})
// for log shippers. The first read initializes from the SCALPARC_LOG_FORMAT
// environment variable ("text"/"json"); any other value throws loudly
// (std::invalid_argument naming the variable), matching the other env knobs.
enum class LogFormat : int { kText = 0, kJson = 1 };

LogFormat log_format();
void set_log_format(LogFormat format);
LogFormat parse_log_format(std::string_view name);

// Emits one complete line to stderr under a global mutex.
void log_line(LogLevel level, std::string_view message);

// --- per-thread rank context ----------------------------------------------
// run_ranks binds each rank thread to its rank id; log lines emitted while
// bound carry a "r<rank> +<seconds>s" prefix, and the tracer uses the same
// binding to route spans into per-rank lanes. -1 means "not a rank thread".
void set_thread_rank(int rank);
int thread_rank();

// Seconds since process start on the steady clock (the timestamp source for
// the log prefix and for trace spans).
double monotonic_seconds();

class ThreadRankGuard {
 public:
  explicit ThreadRankGuard(int rank) : saved_(thread_rank()) {
    set_thread_rank(rank);
  }
  ~ThreadRankGuard() { set_thread_rank(saved_); }
  ThreadRankGuard(const ThreadRankGuard&) = delete;
  ThreadRankGuard& operator=(const ThreadRankGuard&) = delete;

 private:
  int saved_;
};

namespace detail {

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream() { log_line(level_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace scalparc::util

#define SCALPARC_LOG(level)                                      \
  if (static_cast<int>(level) <                                  \
      static_cast<int>(::scalparc::util::log_level())) {         \
  } else                                                         \
    ::scalparc::util::detail::LogStream(level)

#define SCALPARC_LOG_TRACE SCALPARC_LOG(::scalparc::util::LogLevel::kTrace)
#define SCALPARC_LOG_DEBUG SCALPARC_LOG(::scalparc::util::LogLevel::kDebug)
#define SCALPARC_LOG_INFO SCALPARC_LOG(::scalparc::util::LogLevel::kInfo)
#define SCALPARC_LOG_WARN SCALPARC_LOG(::scalparc::util::LogLevel::kWarn)
#define SCALPARC_LOG_ERROR SCALPARC_LOG(::scalparc::util::LogLevel::kError)
