#include "mp/metrics.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>
#include <string>

#include "mp/mailbox.hpp"
#include "util/json.hpp"

namespace scalparc::mp {

namespace {

thread_local MetricsSnapshot* t_sink = nullptr;

}  // namespace

std::size_t Histogram::bucket_of(std::uint64_t value) {
  if (value == 0) return 0;
  const std::size_t bucket = static_cast<std::size_t>(std::bit_width(value));
  return bucket < kHistogramBuckets ? bucket : kHistogramBuckets - 1;
}

void Histogram::observe(std::uint64_t value) {
  ++buckets[bucket_of(value)];
  ++count;
  sum += value;
  if (value > max) max = value;
}

Histogram& Histogram::operator+=(const Histogram& other) {
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    buckets[i] += other.buckets[i];
  }
  count += other.count;
  sum += other.sum;
  if (other.max > max) max = other.max;
  return *this;
}

double histogram_quantile(const Histogram& histogram, double q) {
  if (histogram.count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target observation (1-based, ceil so p100 == last).
  const double target = q * static_cast<double>(histogram.count);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    if (histogram.buckets[b] == 0) continue;
    const std::uint64_t before = cumulative;
    cumulative += histogram.buckets[b];
    if (static_cast<double>(cumulative) < target) continue;
    if (b == 0) return 0.0;  // bucket 0 holds only zeros
    const double lo = std::ldexp(1.0, static_cast<int>(b) - 1);
    const double hi = std::ldexp(1.0, static_cast<int>(b));
    const double within =
        (target - static_cast<double>(before)) /
        static_cast<double>(histogram.buckets[b]);
    const double estimate = lo + (hi - lo) * within;
    const double observed_max = static_cast<double>(histogram.max);
    return estimate < observed_max ? estimate : observed_max;
  }
  return static_cast<double>(histogram.max);
}

std::string_view metric_kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

Metric& MetricsSnapshot::slot(std::string_view name, MetricKind kind) {
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    it = metrics_.emplace(std::string(name), Metric{kind, 0.0, {}}).first;
  } else if (it->second.kind != kind) {
    throw std::logic_error("MetricsSnapshot: metric '" + std::string(name) +
                           "' is a " +
                           std::string(metric_kind_name(it->second.kind)) +
                           ", not a " + std::string(metric_kind_name(kind)));
  }
  return it->second;
}

void MetricsSnapshot::add(std::string_view name, double delta) {
  slot(name, MetricKind::kCounter).value += delta;
}

void MetricsSnapshot::gauge_max(std::string_view name, double value) {
  Metric& metric = slot(name, MetricKind::kGauge);
  if (value > metric.value) metric.value = value;
}

void MetricsSnapshot::observe(std::string_view name, std::uint64_t value) {
  slot(name, MetricKind::kHistogram).histogram.observe(value);
}

void MetricsSnapshot::merge_histogram(std::string_view name,
                                      const Histogram& histogram) {
  slot(name, MetricKind::kHistogram).histogram += histogram;
}

const Metric* MetricsSnapshot::find(std::string_view name) const {
  const auto it = metrics_.find(name);
  return it == metrics_.end() ? nullptr : &it->second;
}

double MetricsSnapshot::value(std::string_view name, double fallback) const {
  const Metric* metric = find(name);
  return metric == nullptr ? fallback : metric->value;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, metric] : other.metrics_) {
    Metric& mine = slot(name, metric.kind);
    switch (metric.kind) {
      case MetricKind::kCounter:
        mine.value += metric.value;
        break;
      case MetricKind::kGauge:
        if (metric.value > mine.value) mine.value = metric.value;
        break;
      case MetricKind::kHistogram:
        mine.histogram += metric.histogram;
        break;
    }
  }
}

util::Json MetricsSnapshot::to_json() const {
  util::Json doc = util::Json::object();
  for (const auto& [name, metric] : metrics_) {
    util::Json entry = util::Json::object();
    entry["kind"] = std::string(metric_kind_name(metric.kind));
    if (metric.kind == MetricKind::kHistogram) {
      const Histogram& h = metric.histogram;
      entry["count"] = h.count;
      entry["sum"] = h.sum;
      entry["max"] = h.max;
      // Derived summaries so readers stop hand-interpolating log2 buckets.
      // from_json ignores unknown keys, and they are deterministic functions
      // of the buckets, so round-trips stay byte-identical.
      entry["p50"] = histogram_quantile(h, 0.50);
      entry["p95"] = histogram_quantile(h, 0.95);
      entry["p99"] = histogram_quantile(h, 0.99);
      // Sparse encoding: only non-empty buckets, as [index, count] pairs.
      util::Json buckets = util::Json::array();
      for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
        if (h.buckets[i] == 0) continue;
        util::Json pair = util::Json::array();
        pair.push_back(static_cast<std::uint64_t>(i));
        pair.push_back(h.buckets[i]);
        buckets.push_back(std::move(pair));
      }
      entry["buckets"] = std::move(buckets);
    } else {
      entry["value"] = metric.value;
    }
    doc[name] = std::move(entry);
  }
  return doc;
}

MetricsSnapshot MetricsSnapshot::from_json(const util::Json& doc) {
  MetricsSnapshot snapshot;
  for (const auto& [name, entry] : doc.as_object()) {
    const std::string& kind = entry.at("kind").as_string();
    if (kind == "counter") {
      snapshot.add(name, entry.at("value").as_double());
    } else if (kind == "gauge") {
      snapshot.gauge_max(name, entry.at("value").as_double());
    } else if (kind == "histogram") {
      Histogram h;
      h.count = static_cast<std::uint64_t>(entry.at("count").as_int());
      h.sum = static_cast<std::uint64_t>(entry.at("sum").as_int());
      h.max = static_cast<std::uint64_t>(entry.at("max").as_int());
      for (const util::Json& pair : entry.at("buckets").as_array()) {
        const auto index = static_cast<std::size_t>(pair.at(0).as_int());
        if (index >= kHistogramBuckets) {
          throw std::invalid_argument(
              "MetricsSnapshot: histogram bucket index out of range");
        }
        h.buckets[index] = static_cast<std::uint64_t>(pair.at(1).as_int());
      }
      snapshot.merge_histogram(name, h);
    } else {
      throw std::invalid_argument("MetricsSnapshot: unknown metric kind '" +
                                  kind + "'");
    }
  }
  return snapshot;
}

MetricsSnapshot* metrics_sink() { return t_sink; }

MetricsSinkGuard::MetricsSinkGuard(MetricsSnapshot* sink) : saved_(t_sink) {
  t_sink = sink;
}

MetricsSinkGuard::~MetricsSinkGuard() { t_sink = saved_; }

void absorb_comm_stats(MetricsSnapshot& snapshot, const CommStats& stats) {
  snapshot.add("comm.bytes_sent", static_cast<double>(stats.bytes_sent));
  snapshot.add("comm.bytes_received",
               static_cast<double>(stats.bytes_received));
  snapshot.add("comm.messages_sent", static_cast<double>(stats.messages_sent));
  snapshot.add("comm.messages_received",
               static_cast<double>(stats.messages_received));
  snapshot.add("comm.work_units", stats.work_units);
  for (int op = 0; op < kNumCommOps; ++op) {
    const std::string_view name = comm_op_name(static_cast<CommOp>(op));
    if (stats.calls_by_op[op] != 0) {
      snapshot.add("comm.calls." + std::string(name),
                   static_cast<double>(stats.calls_by_op[op]));
    }
    if (stats.bytes_sent_by_op[op] != 0) {
      snapshot.add("comm.bytes_sent." + std::string(name),
                   static_cast<double>(stats.bytes_sent_by_op[op]));
    }
  }
}

void absorb_channel_stats(MetricsSnapshot& snapshot,
                          const ChannelStats& stats) {
  snapshot.add("transport.retransmits",
               static_cast<double>(stats.retransmits));
  snapshot.add("transport.nacks", static_cast<double>(stats.nacks));
  snapshot.add("transport.duplicates",
               static_cast<double>(stats.duplicates));
}

void absorb_io_stats(MetricsSnapshot& snapshot, std::uint64_t bytes_written,
                     std::uint64_t bytes_read, std::uint64_t files_created,
                     std::uint64_t extra_passes) {
  snapshot.add("io.bytes_written", static_cast<double>(bytes_written));
  snapshot.add("io.bytes_read", static_cast<double>(bytes_read));
  snapshot.add("io.files_created", static_cast<double>(files_created));
  snapshot.add("io.extra_passes", static_cast<double>(extra_passes));
}

}  // namespace scalparc::mp
