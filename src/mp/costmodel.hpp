// LogP-style linear communication/computation cost model.
//
// The paper benchmarks the Cray T3D's tuned MPI "assuming a linear model of
// communication": a fixed latency plus a per-byte bandwidth term for
// point-to-point messages, and a per-processor latency for all-to-all
// collectives. We reproduce timing the same way: every rank carries a
// virtual clock; computation advances it by (work units x seconds/unit),
// every message advances the receiver to
//   max(receiver_clock, sender_clock_at_send + latency + bytes/bandwidth)
// and synchronizing collectives align all clocks to the participant maximum.
// All-to-all built from p-1 buffered sends naturally costs
// O(p x overhead + bytes/bandwidth) per rank — the paper's observed shape.
//
// Calibration (documented substitution, see DESIGN.md §2): the OCR of the
// paper garbles the exact constants; we use values consistent with published
// Cray T3D MPI measurements of that era:
//   point-to-point latency ~30 us, bandwidth ~35 MB/s,
//   per-message CPU overhead ~10 us,
//   per-processor all-to-all overhead ~20 us (emerges from p-1 sends),
//   ~150 MHz Alpha EV4 compute: 0.25 us per record-field visit.
// Only the *shape* of the curves depends on these, not correctness.
#pragma once

#include <cstddef>

namespace scalparc::mp {

struct CostModel {
  // CPU time a rank spends injecting one message (serializes its sends).
  double send_overhead_s = 10e-6;
  // Wire latency added to every message.
  double latency_s = 30e-6;
  // Inverse bandwidth.
  double seconds_per_byte = 1.0 / (35.0 * 1024.0 * 1024.0);
  // One work unit = one record-field visit in the induction loops.
  double seconds_per_work_unit = 0.25e-6;
  // Barrier/clock-sync cost per ceil(log2 p) round.
  double barrier_round_s = 25e-6;

  // Modeled in-flight time for a message of `bytes` payload.
  double wire_seconds(std::size_t bytes) const {
    return latency_s + static_cast<double>(bytes) * seconds_per_byte;
  }

  // The calibration used for all paper-reproduction benches.
  static CostModel cray_t3d() { return CostModel{}; }

  // All-zero model: virtual time stays 0. Useful in unit tests that assert
  // on functional behavior only.
  static CostModel zero() {
    CostModel m;
    m.send_overhead_s = 0.0;
    m.latency_s = 0.0;
    m.seconds_per_byte = 0.0;
    m.seconds_per_work_unit = 0.0;
    m.barrier_round_s = 0.0;
    return m;
  }
};

}  // namespace scalparc::mp
