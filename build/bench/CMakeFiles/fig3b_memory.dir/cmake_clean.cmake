file(REMOVE_RECURSE
  "CMakeFiles/fig3b_memory.dir/fig3b_memory.cpp.o"
  "CMakeFiles/fig3b_memory.dir/fig3b_memory.cpp.o.d"
  "fig3b_memory"
  "fig3b_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3b_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
