#include "core/predict.hpp"

#include <cstddef>
#include <cstdint>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "mp/collectives.hpp"

namespace scalparc::core {

ConfusionMatrix::ConfusionMatrix(std::int32_t num_classes)
    : num_classes_(num_classes),
      cells_(static_cast<std::size_t>(num_classes) *
                 static_cast<std::size_t>(num_classes),
             0) {
  if (num_classes < 2) {
    throw std::invalid_argument("ConfusionMatrix: need at least two classes");
  }
}

void ConfusionMatrix::record(std::int32_t actual, std::int32_t predicted) {
  if (actual < 0 || actual >= num_classes_ || predicted < 0 ||
      predicted >= num_classes_) {
    throw std::out_of_range("ConfusionMatrix::record: class out of range");
  }
  ++cells_[static_cast<std::size_t>(actual) *
               static_cast<std::size_t>(num_classes_) +
           static_cast<std::size_t>(predicted)];
  ++total_;
}

std::int64_t ConfusionMatrix::at(std::int32_t actual,
                                 std::int32_t predicted) const {
  return cells_.at(static_cast<std::size_t>(actual) *
                       static_cast<std::size_t>(num_classes_) +
                   static_cast<std::size_t>(predicted));
}

std::int64_t ConfusionMatrix::correct() const {
  std::int64_t sum = 0;
  for (std::int32_t k = 0; k < num_classes_; ++k) sum += at(k, k);
  return sum;
}

double ConfusionMatrix::accuracy() const {
  return total_ == 0 ? 0.0
                     : static_cast<double>(correct()) / static_cast<double>(total_);
}

double ConfusionMatrix::recall(std::int32_t cls) const {
  std::int64_t row = 0;
  for (std::int32_t j = 0; j < num_classes_; ++j) row += at(cls, j);
  return row == 0 ? 0.0 : static_cast<double>(at(cls, cls)) / static_cast<double>(row);
}

double ConfusionMatrix::precision(std::int32_t cls) const {
  std::int64_t column = 0;
  for (std::int32_t i = 0; i < num_classes_; ++i) column += at(i, cls);
  return column == 0
             ? 0.0
             : static_cast<double>(at(cls, cls)) / static_cast<double>(column);
}

double ConfusionMatrix::f1(std::int32_t cls) const {
  const double p = precision(cls);
  const double r = recall(cls);
  return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

std::string ConfusionMatrix::to_string() const {
  std::ostringstream out;
  out << "actual\\predicted";
  for (std::int32_t j = 0; j < num_classes_; ++j) out << '\t' << j;
  out << '\n';
  for (std::int32_t i = 0; i < num_classes_; ++i) {
    out << i;
    for (std::int32_t j = 0; j < num_classes_; ++j) out << '\t' << at(i, j);
    out << '\n';
  }
  return out.str();
}

ConfusionMatrix ConfusionMatrix::from_cells(std::int32_t num_classes,
                                            std::span<const std::int64_t> cells) {
  ConfusionMatrix matrix(num_classes);
  if (cells.size() != matrix.cells_.size()) {
    throw std::invalid_argument("ConfusionMatrix::from_cells: size mismatch");
  }
  matrix.cells_.assign(cells.begin(), cells.end());
  matrix.total_ = 0;
  for (const std::int64_t cell : matrix.cells_) {
    if (cell < 0) {
      throw std::invalid_argument("ConfusionMatrix::from_cells: negative cell");
    }
    matrix.total_ += cell;
  }
  return matrix;
}

ConfusionMatrix evaluate_distributed(mp::Comm& comm, const DecisionTree& tree,
                                     const data::Dataset& local_block) {
  const std::int32_t num_classes = tree.schema().num_classes();
  std::vector<std::int64_t> local(
      static_cast<std::size_t>(num_classes) * static_cast<std::size_t>(num_classes),
      0);
  if (!local_block.empty()) {
    const CompiledTree compiled = CompiledTree::compile(tree);
    const std::vector<std::int32_t> predicted = compiled.predict_all(local_block);
    for (std::size_t row = 0; row < local_block.num_records(); ++row) {
      const std::int32_t actual = local_block.label(row);
      ++local[static_cast<std::size_t>(actual) *
                  static_cast<std::size_t>(num_classes) +
              static_cast<std::size_t>(predicted[row])];
    }
  }
  comm.add_work(static_cast<double>(local_block.num_records()));
  const std::vector<std::int64_t> global = mp::allreduce_vec(
      comm, std::span<const std::int64_t>(local), mp::SumOp{});
  return ConfusionMatrix::from_cells(num_classes, global);
}

ConfusionMatrix evaluate(const DecisionTree& tree, const data::Dataset& dataset) {
  ConfusionMatrix matrix(dataset.schema().num_classes());
  for (std::size_t row = 0; row < dataset.num_records(); ++row) {
    matrix.record(dataset.label(row), tree.predict(dataset, row));
  }
  return matrix;
}

ConfusionMatrix evaluate(const CompiledTree& model, const data::Dataset& dataset) {
  ConfusionMatrix matrix(dataset.schema().num_classes());
  if (dataset.empty()) return matrix;
  const std::vector<std::int32_t> predicted = model.predict_all(dataset);
  for (std::size_t row = 0; row < dataset.num_records(); ++row) {
    matrix.record(dataset.label(row), predicted[row]);
  }
  return matrix;
}

double holdout_accuracy(const DecisionTree& tree,
                        const data::QuestGenerator& generator,
                        std::uint64_t first_rid, std::size_t count) {
  if (count == 0) return 0.0;
  constexpr std::size_t kBatch = 8192;
  const CompiledTree compiled = CompiledTree::compile(tree);
  std::vector<std::int32_t> predicted(kBatch);
  std::size_t correct = 0;
  std::uint64_t rid = first_rid;
  std::size_t remaining = count;
  while (remaining > 0) {
    const std::size_t n = remaining < kBatch ? remaining : kBatch;
    const data::Dataset batch = generator.generate(rid, n);
    compiled.predict_batch(batch, 0, n,
                           std::span<std::int32_t>(predicted.data(), n));
    for (std::size_t row = 0; row < n; ++row) {
      correct += predicted[row] == batch.label(row);
    }
    rid += n;
    remaining -= n;
  }
  return static_cast<double>(correct) / static_cast<double>(count);
}

}  // namespace scalparc::core
