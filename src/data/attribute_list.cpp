#include "data/attribute_list.hpp"

namespace scalparc::data {

std::vector<ContinuousEntry> build_continuous_list(const Dataset& block,
                                                   int attribute,
                                                   std::int64_t first_rid) {
  const auto column = block.continuous_column(attribute);
  std::vector<ContinuousEntry> list(block.num_records());
  for (std::size_t row = 0; row < block.num_records(); ++row) {
    list[row].value = column[row];
    list[row].rid = first_rid + static_cast<std::int64_t>(row);
    list[row].cls = block.label(row);
  }
  return list;
}

std::vector<CategoricalEntry> build_categorical_list(const Dataset& block,
                                                     int attribute,
                                                     std::int64_t first_rid) {
  const auto column = block.categorical_column(attribute);
  std::vector<CategoricalEntry> list(block.num_records());
  for (std::size_t row = 0; row < block.num_records(); ++row) {
    list[row].rid = first_rid + static_cast<std::int64_t>(row);
    list[row].value = column[row];
    list[row].cls = block.label(row);
  }
  return list;
}

}  // namespace scalparc::data
