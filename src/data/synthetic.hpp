// Synthetic training data: the IBM Quest classification generator.
//
// ScalParC's evaluation uses training sets "artificially generated using a
// scheme similar to that used in SPRINT" (§5); SPRINT in turn uses the
// classification-benchmark generator of Agrawal et al. ("An Interval
// Classifier for Database Mining Applications", and the series used by
// SLIQ/SPRINT): nine base attributes and ten labeling functions. We
// implement the attribute distributions and all ten labeling functions
// F1-F10 (F1-F7 are the ones the SLIQ/SPRINT/ScalParC line of papers
// evaluates on; F8-F10 follow the commonly reproduced disposable-income
// definitions), two class labels
// ("Group A" = 1, "Group B" = 0), optional label noise, and a configurable
// attribute-prefix count so the paper's 7-attribute setup is the default.
//
// Generation is *per-record deterministic*: record `rid`'s values depend
// only on (seed, rid), so each rank of a parallel run generates its own
// block of records with no communication, and any two runs agree exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "data/dataset.hpp"
#include "data/schema.hpp"
#include "util/random.hpp"

namespace scalparc::data {

// Raw values of the nine canonical Quest attributes.
struct QuestRecord {
  double salary = 0.0;      // uniform 20,000 .. 150,000
  double commission = 0.0;  // 0 if salary >= 75,000 else uniform 10,000 .. 75,000
  double age = 0.0;         // uniform 20 .. 80
  std::int32_t elevel = 0;  // uniform 0 .. 4
  std::int32_t car = 0;     // uniform 0 .. 19
  std::int32_t zipcode = 0; // uniform 0 .. 8
  double hvalue = 0.0;      // uniform k*50,000 .. k*150,000, k = zipcode + 1
  double hyears = 0.0;      // uniform 1 .. 30
  double loan = 0.0;        // uniform 0 .. 500,000
};

enum class LabelFunction : int {
  kF1 = 1,
  kF2 = 2,
  kF3 = 3,
  kF4 = 4,
  kF5 = 5,
  kF6 = 6,
  kF7 = 7,
  kF8 = 8,
  kF9 = 9,
  kF10 = 10,
};

LabelFunction parse_label_function(const std::string& name);

// Ground-truth group ("A" -> 1, "B" -> 0) of a record under a function.
std::int32_t quest_label(const QuestRecord& record, LabelFunction function);

struct GeneratorConfig {
  std::uint64_t seed = 1;
  LabelFunction function = LabelFunction::kF2;
  // Probability that a record's label is flipped (models the training noise
  // SPRINT's generator applies).
  double label_noise = 0.0;
  // Number of leading attributes (1..9) emitted into the dataset, in the
  // canonical order salary, commission, age, elevel, car, zipcode, hvalue,
  // hyears, loan. The paper's experiments use seven.
  int num_attributes = 7;
};

class QuestGenerator {
 public:
  explicit QuestGenerator(GeneratorConfig config);

  const GeneratorConfig& config() const { return config_; }
  const Schema& schema() const { return schema_; }

  // Deterministic raw record for a global record id.
  QuestRecord raw(std::uint64_t rid) const;

  // Label of record `rid` including the (deterministic) noise flip.
  std::int32_t label(std::uint64_t rid) const;
  // Noise-free ground truth, for accuracy floors in tests.
  std::int32_t clean_label(std::uint64_t rid) const;

  // Appends records [first_rid, first_rid + count) to `out` (whose schema
  // must equal schema()).
  void fill(Dataset& out, std::uint64_t first_rid, std::size_t count) const;

  // Convenience: a fresh dataset holding records [first_rid, first_rid+count).
  Dataset generate(std::uint64_t first_rid, std::size_t count) const;

 private:
  util::Rng record_rng(std::uint64_t rid) const;

  GeneratorConfig config_;
  Schema schema_;
};

}  // namespace scalparc::data
