// Wire-level message for the in-process message-passing runtime.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace scalparc::mp {

struct Message {
  // Matching key. Collectives tag messages with a per-communicator sequence
  // number so that a rank running ahead can never confuse two operations.
  std::int64_t tag = 0;
  // Modeled arrival time at the receiver (seconds on the virtual clock):
  // sender_vtime + latency + bytes * seconds_per_byte.
  double arrival_vtime = 0.0;
  // CRC32 frame checksum of `payload`, computed by the sender before the
  // message enters the wire; the receiver re-computes and throws
  // CorruptMessage on mismatch.
  std::uint32_t crc = 0;
  std::vector<std::byte> payload;
};

}  // namespace scalparc::mp
