// Tests for the parallel hashing paradigm: the generic distributed hash
// table (update / enquiry / blocked rounds) and the ScalParC node table
// (epoch-stamped child assignments) — validated against a serial map for a
// sweep of rank counts.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/node_table.hpp"
#include "mp/runtime.hpp"
#include "util/random.hpp"

namespace scalparc {
namespace {

const mp::CostModel kZero = mp::CostModel::zero();

struct Value {
  std::int64_t payload = 0;
};

using Table = core::DistributedHashTable<Value>;

class Dht : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(RankSweep, Dht, ::testing::Values(1, 2, 3, 4, 7, 8));

TEST_P(Dht, HashIsCollisionFreeBlockDistribution) {
  const int p = GetParam();
  constexpr std::uint64_t kKeys = 29;
  mp::run_ranks(p, kZero, [p](mp::Comm& comm) {
    Table table(comm, kKeys, Value{});
    // The paper's example: N = 9, p = 3 gives h(j) = (j div 3, j mod 3).
    std::vector<int> owner_count(static_cast<std::size_t>(p), 0);
    for (std::int64_t key = 0; key < static_cast<std::int64_t>(kKeys); ++key) {
      const int owner = table.owner_of(key);
      const std::uint64_t slot = table.slot_of(key);
      ASSERT_GE(owner, 0);
      ASSERT_LT(owner, p);
      EXPECT_EQ(static_cast<std::uint64_t>(key),
                static_cast<std::uint64_t>(owner) * table.block() + slot);
      ++owner_count[static_cast<std::size_t>(owner)];
    }
    // Block distribution: every owner holds at most ceil(N/p).
    for (const int count : owner_count) {
      EXPECT_LE(count, static_cast<int>(table.block()));
    }
  });
}

TEST_P(Dht, UpdateThenEnquireMatchesSerialMap) {
  const int p = GetParam();
  constexpr std::uint64_t kKeys = 200;
  mp::run_ranks(p, kZero, [p](mp::Comm& comm) {
    Table table(comm, kKeys, Value{-1});
    // Each rank updates a strided subset of keys.
    std::vector<Table::Update> updates;
    for (std::int64_t key = comm.rank(); key < static_cast<std::int64_t>(kKeys);
         key += p) {
      updates.push_back(Table::Update{key, Value{key * 10}});
    }
    table.update(updates);
    // Every rank enquires a different permutation of all keys.
    std::vector<std::int64_t> keys;
    for (std::int64_t key = 0; key < static_cast<std::int64_t>(kKeys); ++key) {
      keys.push_back((key * 7 + comm.rank()) % static_cast<std::int64_t>(kKeys));
    }
    const std::vector<Value> got = table.enquire(keys);
    ASSERT_EQ(got.size(), keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
      EXPECT_EQ(got[i].payload, keys[i] * 10);
    }
  });
}

TEST_P(Dht, LastWriterWinsWithinOneRound) {
  const int p = GetParam();
  mp::run_ranks(p, kZero, [](mp::Comm& comm) {
    Table table(comm, 10, Value{0});
    // Only rank 0 writes, twice to the same key: later entry wins (FIFO
    // application at the owner).
    std::vector<Table::Update> updates;
    if (comm.rank() == 0) {
      updates.push_back(Table::Update{3, Value{111}});
      updates.push_back(Table::Update{3, Value{222}});
    }
    table.update(updates);
    const auto got = table.enquire(std::vector<std::int64_t>{3});
    EXPECT_EQ(got[0].payload, 222);
  });
}

TEST_P(Dht, BlockedUpdatesMatchUnblocked) {
  const int p = GetParam();
  constexpr std::uint64_t kKeys = 150;
  mp::run_ranks(p, kZero, [p](mp::Comm& comm) {
    Table table(comm, kKeys, Value{-1});
    // Rank 0 sends ALL updates (the pathological skew §3.3.2 worries about);
    // a block limit of 16 forces ceil(150/16) = 10 all-to-all rounds on
    // every rank.
    std::vector<Table::Update> updates;
    if (comm.rank() == 0) {
      for (std::int64_t key = 0; key < static_cast<std::int64_t>(kKeys); ++key) {
        updates.push_back(Table::Update{key, Value{key + 1000}});
      }
    }
    table.update(updates, /*block_limit=*/16);
    std::vector<std::int64_t> keys;
    for (std::int64_t key = 0; key < static_cast<std::int64_t>(kKeys); ++key) {
      keys.push_back(key);
    }
    const auto got = table.enquire(keys);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      EXPECT_EQ(got[i].payload, static_cast<std::int64_t>(i) + 1000);
    }
    (void)p;
  });
}

TEST_P(Dht, BlockedUpdateBoundsStagedBufferMemory) {
  const int p = GetParam();
  if (p < 2) GTEST_SKIP() << "needs >= 2 ranks for staging to matter";
  constexpr std::uint64_t kKeys = 4096;
  const auto run = [&](std::int64_t block_limit) {
    return mp::run_ranks(p, kZero, [&](mp::Comm& comm) {
      Table table(comm, kKeys, Value{});
      std::vector<Table::Update> updates;
      if (comm.rank() == 0) {
        for (std::int64_t key = 0; key < static_cast<std::int64_t>(kKeys); ++key) {
          updates.push_back(Table::Update{key, Value{key}});
        }
      }
      table.update(updates, block_limit);
    });
  };
  const auto unblocked = run(0);
  const auto blocked = run(64);
  // Peak comm-buffer memory must be strictly smaller with blocking.
  std::size_t peak_unblocked = 0;
  std::size_t peak_blocked = 0;
  for (const auto& r : unblocked.ranks) {
    peak_unblocked = std::max(
        peak_unblocked, r.meter.peak_bytes(util::MemCategory::kCommBuffers));
  }
  for (const auto& r : blocked.ranks) {
    peak_blocked = std::max(peak_blocked,
                            r.meter.peak_bytes(util::MemCategory::kCommBuffers));
  }
  EXPECT_LT(peak_blocked, peak_unblocked);
}

TEST_P(Dht, EnquireUnwrittenKeyReturnsInitial) {
  const int p = GetParam();
  mp::run_ranks(p, kZero, [](mp::Comm& comm) {
    Table table(comm, 5, Value{-7});
    table.update({});
    const auto got = table.enquire(std::vector<std::int64_t>{0, 4});
    EXPECT_EQ(got[0].payload, -7);
    EXPECT_EQ(got[1].payload, -7);
  });
}

TEST(Dht, KeyOutOfRangeThrows) {
  EXPECT_THROW(mp::run_ranks(2, kZero,
                             [](mp::Comm& comm) {
                               Table table(comm, 10, Value{});
                               (void)table.owner_of(10);
                             }),
               std::out_of_range);
  EXPECT_THROW(mp::run_ranks(2, kZero,
                             [](mp::Comm& comm) {
                               Table table(comm, 10, Value{});
                               (void)table.owner_of(-1);
                             }),
               std::out_of_range);
}

TEST(Dht, LocalSizeTilesKeySpace) {
  // 10 keys over 4 ranks: block = 3, local sizes 3,3,3,1.
  mp::run_ranks(4, kZero, [](mp::Comm& comm) {
    Table table(comm, 10, Value{});
    const std::uint64_t expected[] = {3, 3, 3, 1};
    EXPECT_EQ(table.local_size(), expected[comm.rank()]);
  });
}

TEST(Dht, MoreRanksThanKeys) {
  mp::run_ranks(6, kZero, [](mp::Comm& comm) {
    Table table(comm, 3, Value{-1});
    std::vector<Table::Update> updates;
    if (comm.rank() == 5) {
      updates.push_back(Table::Update{2, Value{42}});
    }
    table.update(updates);
    const auto got = table.enquire(std::vector<std::int64_t>{2});
    EXPECT_EQ(got[0].payload, 42);
  });
}

// ---------------------------------------------------------------------------
// NodeTable (epoch semantics)
// ---------------------------------------------------------------------------

class NodeTableTest : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(RankSweep, NodeTableTest, ::testing::Values(1, 2, 3, 5));

TEST_P(NodeTableTest, UpdateAndEnquireRoundTrip) {
  const int p = GetParam();
  constexpr std::uint64_t kRecords = 64;
  mp::run_ranks(p, kZero, [p](mp::Comm& comm) {
    core::NodeTable table(comm, kRecords);
    table.begin_level();
    std::vector<std::int64_t> rids;
    std::vector<std::int32_t> children;
    for (std::int64_t rid = comm.rank(); rid < static_cast<std::int64_t>(kRecords);
         rid += p) {
      rids.push_back(rid);
      children.push_back(static_cast<std::int32_t>(rid % 3));
    }
    table.update(rids, children, /*block_limit=*/0);
    std::vector<std::int64_t> all;
    for (std::int64_t rid = 0; rid < static_cast<std::int64_t>(kRecords); ++rid) {
      all.push_back(rid);
    }
    const auto got = table.enquire(all);
    for (std::size_t i = 0; i < all.size(); ++i) {
      EXPECT_EQ(got[i], static_cast<std::int32_t>(all[i] % 3));
    }
  });
}

TEST_P(NodeTableTest, StaleEnquiryThrows) {
  const int p = GetParam();
  EXPECT_THROW(
      mp::run_ranks(p, kZero,
                    [](mp::Comm& comm) {
                      core::NodeTable table(comm, 8);
                      table.begin_level();
                      std::vector<std::int64_t> rids;
                      std::vector<std::int32_t> children;
                      if (comm.rank() == 0) {
                        rids = {0, 1, 2, 3};
                        children = {0, 0, 1, 1};
                      }
                      table.update(rids, children, 0);
                      table.begin_level();  // new level, no updates yet
                      std::vector<std::int64_t> query{2};
                      (void)table.enquire(query);
                    }),
      std::logic_error);
}

TEST_P(NodeTableTest, EpochsSeparateLevels) {
  const int p = GetParam();
  mp::run_ranks(p, kZero, [](mp::Comm& comm) {
    core::NodeTable table(comm, 4);
    for (std::uint32_t level = 1; level <= 3; ++level) {
      table.begin_level();
      std::vector<std::int64_t> rids;
      std::vector<std::int32_t> children;
      if (comm.is_root()) {
        rids = {0, 1, 2, 3};
        children.assign(4, static_cast<std::int32_t>(level));
      }
      table.update(rids, children, 0);
      std::vector<std::int64_t> query{0, 3};
      const auto got = table.enquire(query);
      EXPECT_EQ(got[0], static_cast<std::int32_t>(level));
      EXPECT_EQ(got[1], static_cast<std::int32_t>(level));
    }
  });
}

TEST(NodeTableTest2, MismatchedSpansThrow) {
  EXPECT_THROW(mp::run_ranks(1, kZero,
                             [](mp::Comm& comm) {
                               core::NodeTable table(comm, 4);
                               table.begin_level();
                               std::vector<std::int64_t> rids{0, 1};
                               std::vector<std::int32_t> children{0};
                               table.update(rids, children, 0);
                             }),
               std::invalid_argument);
}

TEST(NodeTableTest2, MemoryIsBlockSizedPerRank) {
  constexpr std::uint64_t kRecords = 1024;
  const auto result = mp::run_ranks(4, kZero, [](mp::Comm& comm) {
    core::NodeTable table(comm, kRecords);
    mp::barrier(comm);
  });
  for (const auto& rank : result.ranks) {
    const std::size_t table_bytes =
        rank.meter.peak_bytes(util::MemCategory::kNodeTable);
    // 1024/4 = 256 entries of 8 bytes each.
    EXPECT_EQ(table_bytes, 256 * sizeof(core::NodeTableEntry));
  }
}

}  // namespace
}  // namespace scalparc
