// Compiled flat-tree inference engine.
//
// The fit path produces a `DecisionTree` of heap-allocated `TreeNode`s —
// fine for induction, where every node is visited once per level, but wrong
// for serving: a per-row recursive walk chases a pointer (plus two
// bounds-checked `std::vector` indirections) per depth step, so the memory
// system sees a dependent random access chain per record.
//
// `CompiledTree` lowers a trained tree into fixed-width SoA node arrays laid
// out breadth-first (siblings adjacent, children of one node contiguous), so
// a batch of records descends through a cache-linear table:
//
//   attr_[n]        column slot whose value this node tests
//   threshold_[n]   continuous split point (+inf for leaves)
//   child_base_[n]  flat id of the first child (leaves: self)
//   label_[n]       majority class (the prediction if evaluation stops here)
//
// Categorical `value_to_child` tables live in a side arena of *absolute*
// flat node ids (`cat_arena_`), one extra slot per table for the
// unseen-value fallback, which points at a synthesized fallback leaf
// carrying the node's majority class. Leaves are *absorbing*: their
// threshold is +inf and they test a dedicated all-zeros scratch lane, so
// `0 < +inf` self-loops them without any per-row "done?" branch.
//
// Evaluation is batched: all in-flight rows advance one depth step per
// sweep with the branchless update
//
//   next = child_base[n] + (value < threshold[n] ? 0 : 1)
//
// (categorical nodes index their arena table instead). After `depth()`
// sweeps every row sits on a leaf and the labels are gathered in one pass —
// the same linear-scan / no-pointer-chase techniques as `core/flat_hash`
// and the gini scan kernel. Results are row-for-row identical to
// `DecisionTree::predict`, including the unseen-categorical fallback;
// tests/test_predict.cpp keeps the recursive walk as the differential
// oracle.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/tree.hpp"
#include "data/dataset.hpp"
#include "data/schema.hpp"

namespace scalparc::core {

class CompiledTree {
 public:
  // Rows in flight per sweep: bounds the working set (cursor array + zero
  // lane) so a batch of any size streams through the cache.
  static constexpr std::size_t kChunk = 1024;

  CompiledTree() = default;

  // Lowers `tree` (which must be non-empty) into the flat form. The source
  // tree is not retained.
  static CompiledTree compile(const DecisionTree& tree);

  const data::Schema& schema() const { return schema_; }
  bool empty() const { return attr_.empty(); }
  // Flat node count: source nodes plus one synthesized fallback leaf per
  // categorical split.
  int num_nodes() const { return static_cast<int>(attr_.size()); }
  int source_nodes() const { return source_nodes_; }
  // Depth sweeps a batch executes (max leaf depth in the flat layout).
  int depth() const { return depth_; }
  // True when no internal node splits on a categorical attribute: the batch
  // evaluator runs its fully branchless continuous kernel.
  bool all_continuous() const { return all_continuous_; }
  std::size_t payload_bytes() const;

  // Predicts rows [begin, end) of `dataset` (same schema as the model) into
  // `out` (size end - begin). Record batch telemetry goes to the calling
  // thread's metrics sink when one is bound: predict.batches /
  // predict.records counters and the predict.depth histogram.
  void predict_batch(const data::Dataset& dataset, std::size_t begin,
                     std::size_t end, std::span<std::int32_t> out) const;

  // Convenience: all rows of `dataset`.
  std::vector<std::int32_t> predict_all(const data::Dataset& dataset) const;

  // Single-row evaluation over the flat arrays (no batch state); identical
  // to DecisionTree::predict on the source tree.
  std::int32_t predict(const data::Dataset& dataset, std::size_t row) const;

 private:
  void advance_continuous(std::span<std::int32_t> cur,
                          std::span<const double* const> cont,
                          std::size_t rows) const;
  void advance_mixed(std::span<std::int32_t> cur,
                     std::span<const double* const> cont,
                     std::span<const std::int32_t* const> cat,
                     std::size_t rows) const;

  data::Schema schema_;
  int depth_ = 0;
  int source_nodes_ = 0;
  bool all_continuous_ = true;

  // Fixed-width SoA node records (breadth-first ids).
  std::vector<std::int32_t> attr_;        // eval-table column slot
  std::vector<double> threshold_;         // +inf for leaves / categorical
  std::vector<std::int32_t> child_base_;  // first child id; self for leaves
  std::vector<std::int32_t> label_;       // majority class
  std::vector<std::int8_t> is_cat_;       // 1: categorical split
  std::vector<std::int32_t> cat_offset_;  // arena offset (-1 otherwise)
  std::vector<std::int32_t> cat_card_;    // table width (sans fallback slot)

  // Side arena: per categorical node, cardinality+1 absolute flat node ids;
  // slot [cardinality] (and every value unseen during training) routes to
  // the node's fallback leaf.
  std::vector<std::int32_t> cat_arena_;
};

// Hot-swappable handle to the model a scoring loop serves. Readers take a
// shared_ptr snapshot per batch (`get`), so an atomic `swap` to a newly
// trained snapshot never invalidates an in-flight batch: rows being scored
// finish on the old model, the next batch picks up the new one, and the old
// compiled tree is freed when its last in-flight batch drops the reference.
class ModelHandle {
 public:
  ModelHandle() = default;
  explicit ModelHandle(std::shared_ptr<const CompiledTree> model)
      : model_(std::move(model)) {}

  std::shared_ptr<const CompiledTree> get() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return model_;
  }

  // Atomically publishes `next`; bumps the swap counter and, when a metrics
  // sink is bound, the predict.swaps counter.
  void swap(std::shared_ptr<const CompiledTree> next);

  std::uint64_t swaps() const {
    return swaps_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mutex_;
  std::shared_ptr<const CompiledTree> model_;
  std::atomic<std::uint64_t> swaps_{0};
};

}  // namespace scalparc::core
