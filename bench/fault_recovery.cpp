// Robustness bench: what does level checkpointing cost, and how much faster
// is checkpoint recovery than retraining from scratch?
//
//   ./fault_recovery [--records N] [--ranks P] [--depth D] [--csv DIR]
//
// Phase 1 measures the checkpoint write overhead: a fault-free fit with no
// checkpoint directory vs the same fit persisting every level boundary.
// Phase 2 kills one rank at each level in turn (deterministic injection),
// then times resume-from-checkpoint against a full retrain; both must yield
// a tree byte-identical to the fault-free baseline (verified via tree_io).
// Phase 3 compares the two recovery policies end to end: after a mid-tree
// rank death, restart the full world from the checkpoint vs shrink to the
// p-1 survivors and repartition (elastic restore) — both byte-identical.
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <sstream>
#include <string>

#include "bench_common.hpp"
#include "core/checkpoint.hpp"
#include "core/tree_io.hpp"
#include "mp/fault.hpp"

namespace {

double wall_seconds(const std::function<void()>& body) {
  const auto start = std::chrono::steady_clock::now();
  body();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

std::string tree_bytes(const scalparc::core::DecisionTree& tree) {
  std::ostringstream out;
  scalparc::core::save_tree(tree, out);
  return out.str();
}

std::uint64_t dir_bytes(const std::string& root) {
  namespace fs = std::filesystem;
  std::uint64_t total = 0;
  std::error_code ec;
  for (const fs::directory_entry& entry :
       fs::recursive_directory_iterator(root, ec)) {
    if (entry.is_regular_file(ec)) total += entry.file_size(ec);
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scalparc;
  const util::CliArgs args(argc, argv);
  const auto records = static_cast<std::uint64_t>(args.get_int("records", 50000));
  const int ranks = static_cast<int>(args.get_int("ranks", 4));
  const int depth = static_cast<int>(args.get_int("depth", 8));

  const data::Dataset training = bench::paper_generator().generate(0, records);
  core::InductionControls controls;
  controls.options.max_depth = depth;

  const std::string ckpt_root =
      (std::filesystem::temp_directory_path() /
       ("scalparc_fault_bench_" + std::to_string(::getpid())))
          .string();

  // Phase 1: checkpoint write overhead.
  core::FitReport baseline;
  const double baseline_s = wall_seconds(
      [&] { baseline = core::ScalParC::fit(training, ranks, controls); });
  const std::string expected = tree_bytes(baseline.tree);

  core::InductionControls ckpt_controls = controls;
  ckpt_controls.checkpoint.directory = ckpt_root;
  core::FitReport checkpointed;
  const double checkpointed_s = wall_seconds([&] {
    checkpointed = core::ScalParC::fit(training, ranks, ckpt_controls);
  });
  const double ckpt_mb = static_cast<double>(dir_bytes(ckpt_root)) / 1e6;
  const int levels = checkpointed.stats.levels;
  if (tree_bytes(checkpointed.tree) != expected) {
    std::printf("ERROR: checkpointed run produced a different tree\n");
    return 1;
  }

  std::printf("fault recovery: %llu records, %d ranks, %d levels\n\n",
              static_cast<unsigned long long>(records), ranks, levels);
  std::printf("fault-free fit:        %8.3f s\n", baseline_s);
  std::printf("with level checkpoints:%8.3f s  (%.2fx, %.2f MB on disk)\n\n",
              checkpointed_s, checkpointed_s / baseline_s, ckpt_mb);

  bench::CsvWriter csv(args, "fault_recovery.csv",
                       "kill_level,recovery_s,retrain_s,speedup");

  // Phase 2: kill one rank at each level, then recover.
  std::printf("%10s | %12s %12s | %8s\n", "kill level", "recovery(s)",
              "retrain(s)", "speedup");
  for (int level = 0; level < levels; ++level) {
    std::filesystem::remove_all(ckpt_root);
    mp::FaultPlan plan;
    plan.parse("kill:r=" + std::to_string(ranks - 1) +
               ",level=" + std::to_string(level));
    mp::RunOptions faulty;
    faulty.fault_plan = &plan;
    bool failed = false;
    try {
      (void)core::ScalParC::fit(training, ranks, ckpt_controls,
                                mp::CostModel::zero(), faulty);
    } catch (const mp::InjectedFault&) {
      failed = true;
    }
    if (!failed) {
      std::printf("ERROR: injected kill at level %d did not fire\n", level);
      return 1;
    }

    core::FitReport recovered;
    const double recovery_s = wall_seconds([&] {
      recovered = core::ScalParC::resume_from_checkpoint(training, ranks,
                                                         ckpt_controls);
    });
    if (tree_bytes(recovered.tree) != expected) {
      std::printf("ERROR: recovery at level %d diverged from baseline\n",
                  level);
      return 1;
    }
    const double retrain_s = wall_seconds(
        [&] { (void)core::ScalParC::fit(training, ranks, controls); });
    std::printf("%10d | %12.3f %12.3f | %7.2fx\n", level, recovery_s,
                retrain_s, retrain_s / recovery_s);
    csv.row("%d,%.6f,%.6f,%.6f", level, recovery_s, retrain_s,
            retrain_s / recovery_s);
  }

  // Phase 3: restart vs shrink-to-survivors after a mid-tree rank death.
  // Each timed run covers the whole recovery: the failed attempt, the
  // checkpoint reload (full-world restart vs elastic repartition across the
  // survivors) and the completion of the tree.
  bench::CsvWriter policy_csv(
      args, "fault_recovery_policy.csv",
      "kill_level,restart_s,shrink_s,shrink_ranks,ratio");
  std::printf("\nrecovery policy after a rank death (full recovery time)\n");
  std::printf("%10s | %12s %12s | %8s\n", "kill level", "restart(s)",
              "shrink(s)", "ratio");
  for (int level = 1; level < levels; level += 2) {
    double policy_seconds[2] = {0.0, 0.0};
    int shrink_ranks = ranks;
    for (const core::RecoveryPolicy policy :
         {core::RecoveryPolicy::kRestart, core::RecoveryPolicy::kShrink}) {
      std::filesystem::remove_all(ckpt_root);
      mp::FaultPlan plan;
      plan.parse("kill:r=" + std::to_string(ranks - 1) +
                 ",level=" + std::to_string(level));
      mp::RunOptions faulty;
      faulty.fault_plan = &plan;
      core::RecoveryReport report;
      const double recovery_s = wall_seconds([&] {
        report = core::ScalParC::fit_with_recovery(
            training, ranks, ckpt_controls, mp::CostModel::zero(), faulty, 3,
            policy);
      });
      if (tree_bytes(report.fit.tree) != expected) {
        std::printf("ERROR: %s recovery at level %d diverged from baseline\n",
                    policy == core::RecoveryPolicy::kShrink ? "shrink"
                                                            : "restart",
                    level);
        return 1;
      }
      if (policy == core::RecoveryPolicy::kShrink) {
        policy_seconds[1] = recovery_s;
        shrink_ranks = report.events.empty() ? ranks
                                             : report.events[0].ranks_after;
      } else {
        policy_seconds[0] = recovery_s;
      }
    }
    std::printf("%10d | %12.3f %12.3f | %7.2fx  (%d survivors)\n", level,
                policy_seconds[0], policy_seconds[1],
                policy_seconds[0] / policy_seconds[1], shrink_ranks);
    policy_csv.row("%d,%.6f,%.6f,%d,%.6f", level, policy_seconds[0],
                   policy_seconds[1], shrink_ranks,
                   policy_seconds[0] / policy_seconds[1]);
  }

  std::filesystem::remove_all(ckpt_root);
  std::printf("\nall recovered trees byte-identical to the fault-free run\n");
  std::printf("csv: %s, %s\n", csv.path().c_str(), policy_csv.path().c_str());
  return 0;
}
