// Simulated-cluster scaling demo: fixes the training-set size and sweeps the
// processor count, printing the modeled (Cray-T3D-calibrated) runtime,
// relative speedup, per-rank communication volume and per-rank memory — a
// miniature of the paper's Figure 3 for interactive exploration.
//
//   ./examples/cluster_scaling [--records N] [--procs 1,2,4,8,16] [--function F2]
#include <cstdio>
#include <vector>

#include "core/scalparc.hpp"
#include "data/synthetic.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace scalparc;
  const util::CliArgs args(argc, argv);
  const std::uint64_t records =
      static_cast<std::uint64_t>(args.get_int("records", 50000));
  const std::vector<std::int64_t> procs =
      args.get_int_list("procs", {1, 2, 4, 8, 16});

  data::GeneratorConfig config;
  config.seed = 7;
  config.function = data::parse_label_function(args.get_string("function", "F2"));
  const data::QuestGenerator generator(config);

  std::printf("ScalParC scaling on a simulated cluster (%llu records)\n\n",
              static_cast<unsigned long long>(records));
  std::printf(
      "  procs  modeled-time(s)  speedup  efficiency  MB-sent/rank  MB-mem/rank"
      "  | presort  findsplit  performsplit\n");

  double t1 = 0.0;
  for (const std::int64_t p : procs) {
    const core::FitReport report = core::ScalParC::fit_generated(
        generator, records, static_cast<int>(p), core::InductionControls{},
        mp::CostModel::cray_t3d());
    const double t = report.run.modeled_seconds;
    if (p == procs.front()) t1 = t * static_cast<double>(p);
    const double speedup = t1 / t;
    std::printf(
        "  %5lld %16.3f %8.2f %11.2f %13.3f %12.3f  | %7.3f %10.3f %13.3f\n",
        static_cast<long long>(p), t, speedup,
        speedup / static_cast<double>(p),
        static_cast<double>(report.run.max_bytes_sent_per_rank()) / 1e6,
        static_cast<double>(report.run.max_peak_bytes_per_rank()) / 1e6,
        report.stats.presort_seconds, report.stats.findsplit_seconds,
        report.stats.performsplit_seconds);
  }

  std::printf(
      "\nThe modeled time combines each rank's metered computation with the\n"
      "communication cost model (latency + bytes/bandwidth per message);\n"
      "see src/mp/costmodel.hpp for the calibration.\n");
  return 0;
}
