# Empty dependencies file for hash_paradigm.
# This may be replaced when dependencies are built.
