// Decision-tree model persistence.
//
// A line-oriented text format that round-trips the full model (schema,
// structure, splits, class histograms) so trained classifiers can be stored
// and served without retraining:
//
//   scalparc-tree v1
//   classes <C>
//   attr <name> cont | attr <name> cat <K>
//   nodes <count>
//   node <id> leaf  <depth> <records> <majority> <count...>
//   node <id> cont  <depth> <records> <majority> <count...>
//        <attribute> <threshold-hex> <child0> <child1>          (one line)
//   node <id> cat   <depth> <records> <majority> <count...>
//        <attribute> <num_children> <value_to_child...> <children...>
//
// Thresholds are serialized as hex doubles so the round trip is exact.
//
// `load_tree` is the serving layer's snapshot-ingestion point, so it is
// strict about structure, not just syntax: child ids must be in range and
// strictly exceed their parent's id (making self-references and cycles
// unrepresentable), every non-root node must be claimed by exactly one
// parent (no shared subtrees, no orphans), split kinds must match the
// declared attribute kinds, and the declared node count must be exact —
// extra node lines are rejected as trailing content. Every error names the
// offending line.
#pragma once

#include <iosfwd>
#include <string>

#include "core/tree.hpp"

namespace scalparc::core {

void save_tree(const DecisionTree& tree, std::ostream& out);
void save_tree_file(const DecisionTree& tree, const std::string& path);

// Throws std::runtime_error on malformed input.
DecisionTree load_tree(std::istream& in);
DecisionTree load_tree_file(const std::string& path);

}  // namespace scalparc::core
