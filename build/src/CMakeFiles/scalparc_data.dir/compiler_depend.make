# Empty compiler generated dependencies file for scalparc_data.
# This may be replaced when dependencies are built.
