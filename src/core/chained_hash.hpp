// Distributed hash table with open chaining (§3.3.1, closing remark).
//
// The node table's hash is collision-free because record ids densely cover
// [0, N). The paper notes the paradigm "can also support collisions by
// implementing open chaining at the indices l of the local hash tables" —
// which is what makes it reusable for algorithms whose keys are arbitrary.
// DistributedChainedHashTable implements exactly that: arbitrary 64-bit
// keys, a fixed number of buckets block-distributed over the ranks,
// per-bucket chains at the owners, and the same buffered all-to-all
// update/enquiry protocol as the collision-free table.
//
// Update semantics: insert-or-assign (last writer in arrival order wins for
// duplicate keys in the same round). Enquiry returns a found flag per key.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "mp/collectives.hpp"
#include "mp/comm.hpp"
#include "util/memory_meter.hpp"

namespace scalparc::core {

// 64-bit finalizer (SplitMix64's mixer): scatters arbitrary keys uniformly
// over the bucket space.
constexpr std::uint64_t mix_key(std::uint64_t key) {
  key ^= key >> 30;
  key *= 0xBF58476D1CE4E5B9ULL;
  key ^= key >> 27;
  key *= 0x94D049BB133111EBULL;
  key ^= key >> 31;
  return key;
}

template <mp::WireType V>
class DistributedChainedHashTable {
 public:
  struct Update {
    std::int64_t key = 0;
    V value{};
  };
  struct Lookup {
    V value{};
    bool found = false;
  };

  // Collective; all ranks must pass identical arguments. `num_buckets`
  // trades chain length against memory, as in any chained table.
  DistributedChainedHashTable(mp::Comm& comm, std::uint64_t num_buckets)
      : comm_(comm), num_buckets_(num_buckets) {
    if (num_buckets == 0) {
      throw std::invalid_argument(
          "DistributedChainedHashTable: need at least one bucket");
    }
    block_ = (num_buckets + static_cast<std::uint64_t>(comm.size()) - 1) /
             static_cast<std::uint64_t>(comm.size());
    buckets_.resize(local_size());
    mem_ = util::ScopedAllocation(comm.meter(), util::MemCategory::kNodeTable,
                                  local_size() * sizeof(Bucket));
  }

  std::uint64_t num_buckets() const { return num_buckets_; }

  int owner_of(std::int64_t key) const {
    return static_cast<int>(bucket_of(key) / block_);
  }
  std::uint64_t bucket_of(std::int64_t key) const {
    return mix_key(static_cast<std::uint64_t>(key)) % num_buckets_;
  }

  std::uint64_t local_size() const {
    const auto rank = static_cast<std::uint64_t>(comm_.rank());
    const std::uint64_t begin = rank * block_;
    if (begin >= num_buckets_) return 0;
    return std::min(block_, num_buckets_ - begin);
  }

  // Number of entries chained on this rank (for load diagnostics).
  std::size_t local_entries() const {
    std::size_t total = 0;
    for (const Bucket& bucket : buckets_) total += bucket.size();
    return total;
  }

  // Collective bulk insert-or-assign, blocked like the node table's update.
  void update(std::span<const Update> updates, std::int64_t block_limit = 0) {
    if (block_limit < 0) {
      throw std::invalid_argument("ChainedHashTable::update: bad block limit");
    }
    if (block_limit == 0) {
      apply_round(updates);
      return;
    }
    const auto limit = static_cast<std::uint64_t>(block_limit);
    const std::uint64_t my_rounds = (updates.size() + limit - 1) / limit;
    const std::uint64_t rounds = mp::allreduce_value(comm_, my_rounds, mp::MaxOp{});
    for (std::uint64_t r = 0; r < rounds; ++r) {
      const std::uint64_t begin = std::min<std::uint64_t>(r * limit, updates.size());
      const std::uint64_t end = std::min<std::uint64_t>(begin + limit, updates.size());
      apply_round(updates.subspan(begin, end - begin));
    }
  }

  // Collective bulk lookup; results ordered like `keys`.
  std::vector<Lookup> enquire(std::span<const std::int64_t> keys) {
    const int p = comm_.size();
    std::vector<std::vector<std::int64_t>> enquiry(static_cast<std::size_t>(p));
    std::vector<int> destination(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
      const int dst = owner_of(keys[i]);
      destination[i] = dst;
      // With chaining the owner needs the full key, not just the bucket
      // index, to walk the chain.
      enquiry[static_cast<std::size_t>(dst)].push_back(keys[i]);
    }
    comm_.add_work(static_cast<double>(keys.size()));

    std::vector<std::vector<std::int64_t>> key_buffers =
        mp::alltoallv(comm_, enquiry);
    std::vector<std::vector<Lookup>> value_buffers(static_cast<std::size_t>(p));
    for (std::size_t src = 0; src < key_buffers.size(); ++src) {
      value_buffers[src].reserve(key_buffers[src].size());
      for (const std::int64_t key : key_buffers[src]) {
        value_buffers[src].push_back(lookup_local(key));
      }
      comm_.add_work(static_cast<double>(key_buffers[src].size()));
    }
    std::vector<std::vector<Lookup>> result_buffers =
        mp::alltoallv(comm_, value_buffers);

    std::vector<std::size_t> cursor(static_cast<std::size_t>(p), 0);
    std::vector<Lookup> out;
    out.reserve(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
      const auto dst = static_cast<std::size_t>(destination[i]);
      out.push_back(result_buffers[dst][cursor[dst]++]);
    }
    return out;
  }

 private:
  struct Entry {
    std::int64_t key;
    V value;
  };
  using Bucket = std::vector<Entry>;

  struct WireUpdate {
    std::int64_t key = 0;
    V value{};
  };

  Lookup lookup_local(std::int64_t key) const {
    const std::uint64_t slot = bucket_of(key) - static_cast<std::uint64_t>(comm_.rank()) * block_;
    for (const Entry& entry : buckets_[slot]) {
      if (entry.key == key) return Lookup{entry.value, true};
    }
    return Lookup{};
  }

  void apply_round(std::span<const Update> round) {
    const int p = comm_.size();
    std::vector<std::vector<WireUpdate>> sendbufs(static_cast<std::size_t>(p));
    for (const Update& u : round) {
      sendbufs[static_cast<std::size_t>(owner_of(u.key))].push_back(
          WireUpdate{u.key, u.value});
    }
    comm_.add_work(static_cast<double>(round.size()));
    std::vector<std::vector<WireUpdate>> received = mp::alltoallv(comm_, sendbufs);
    std::size_t chained_before = chain_bytes_;
    for (const auto& buf : received) {
      for (const WireUpdate& w : buf) {
        const std::uint64_t slot =
            bucket_of(w.key) - static_cast<std::uint64_t>(comm_.rank()) * block_;
        Bucket& bucket = buckets_[slot];
        bool assigned = false;
        for (Entry& entry : bucket) {
          if (entry.key == w.key) {
            entry.value = w.value;
            assigned = true;
            break;
          }
        }
        if (!assigned) {
          bucket.push_back(Entry{w.key, w.value});
          chain_bytes_ += sizeof(Entry);
        }
      }
      comm_.add_work(static_cast<double>(buf.size()));
    }
    if (chain_bytes_ != chained_before) {
      mem_.resize(local_size() * sizeof(Bucket) + chain_bytes_);
    }
  }

  mp::Comm& comm_;
  std::uint64_t num_buckets_;
  std::uint64_t block_ = 0;
  std::vector<Bucket> buckets_;
  std::size_t chain_bytes_ = 0;
  util::ScopedAllocation mem_;
};

}  // namespace scalparc::core
