file(REMOVE_RECURSE
  "libscalparc_core.a"
)
