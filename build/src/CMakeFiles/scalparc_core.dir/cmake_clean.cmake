file(REMOVE_RECURSE
  "CMakeFiles/scalparc_core.dir/core/gini.cpp.o"
  "CMakeFiles/scalparc_core.dir/core/gini.cpp.o.d"
  "CMakeFiles/scalparc_core.dir/core/induction.cpp.o"
  "CMakeFiles/scalparc_core.dir/core/induction.cpp.o.d"
  "CMakeFiles/scalparc_core.dir/core/node_table.cpp.o"
  "CMakeFiles/scalparc_core.dir/core/node_table.cpp.o.d"
  "CMakeFiles/scalparc_core.dir/core/predict.cpp.o"
  "CMakeFiles/scalparc_core.dir/core/predict.cpp.o.d"
  "CMakeFiles/scalparc_core.dir/core/pruning.cpp.o"
  "CMakeFiles/scalparc_core.dir/core/pruning.cpp.o.d"
  "CMakeFiles/scalparc_core.dir/core/scalparc.cpp.o"
  "CMakeFiles/scalparc_core.dir/core/scalparc.cpp.o.d"
  "CMakeFiles/scalparc_core.dir/core/split_finder.cpp.o"
  "CMakeFiles/scalparc_core.dir/core/split_finder.cpp.o.d"
  "CMakeFiles/scalparc_core.dir/core/splitter.cpp.o"
  "CMakeFiles/scalparc_core.dir/core/splitter.cpp.o.d"
  "CMakeFiles/scalparc_core.dir/core/tree.cpp.o"
  "CMakeFiles/scalparc_core.dir/core/tree.cpp.o.d"
  "CMakeFiles/scalparc_core.dir/core/tree_io.cpp.o"
  "CMakeFiles/scalparc_core.dir/core/tree_io.cpp.o.d"
  "libscalparc_core.a"
  "libscalparc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalparc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
