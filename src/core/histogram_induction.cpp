#include "core/histogram_induction.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/count_matrix.hpp"
#include "core/gini.hpp"
#include "core/histogram.hpp"
#include "core/induction_internal.hpp"
#include "core/split_finder.hpp"
#include "core/splitter.hpp"
#include "data/attribute_list.hpp"
#include "mp/collective_batch.hpp"
#include "mp/collectives.hpp"
#include "mp/metrics.hpp"
#include "mp/runtime.hpp"
#include "mp/telemetry.hpp"
#include "sort/partition_util.hpp"
#include "sort/sample_sort.hpp"
#include "util/trace.hpp"

namespace scalparc::core {

namespace {

using data::AttributeKind;
using data::CategoricalEntry;
using data::ContinuousEntry;
using internal::ActiveNode;
using internal::PhaseSpan;
using internal::is_pure;
using internal::majority_class;

// Orders continuous checkpoint entries by (node, value, rid) — the node slot
// rides in the otherwise-unused pad field during the write — reproducing the
// exact engine's on-disk layout: node segments in slot order, each globally
// sorted by (value, rid).
struct ContCkptLess {
  bool operator()(const ContinuousEntry& a, const ContinuousEntry& b) const {
    if (a.pad != b.pad) return a.pad < b.pad;
    if (a.value != b.value) return a.value < b.value;
    return a.rid < b.rid;
  }
};

// Categorical checkpoint entry widened with its node slot for the sort; the
// exact engine keeps categorical segments in ascending-rid order, so sort by
// (node, rid) and strip the key before writing.
struct CatKeyedEntry {
  std::int64_t rid = 0;
  std::int32_t value = 0;
  std::int32_t cls = 0;
  std::int32_t node = 0;
  std::int32_t pad = 0;
};

struct CatKeyedLess {
  bool operator()(const CatKeyedEntry& a, const CatKeyedEntry& b) const {
    if (a.node != b.node) return a.node < b.node;
    return a.rid < b.rid;
  }
};

// One attribute value of one record in flight during a checkpoint restore:
// sections are read round-robin by whoever is present and every value is
// routed to the rank owning the record's row in the equal block partition.
struct RowWire {
  double value = 0.0;       // continuous value (slot < num continuous)
  std::int64_t rid = 0;
  std::int32_t slot = 0;    // list index: continuous lists first, then cat
  std::int32_t ivalue = 0;  // categorical code
  std::int32_t cls = 0;
  std::int32_t node = 0;    // active-node index
};

int owner_of_rid(std::int64_t rid, std::uint64_t total, int p) {
  const auto t = static_cast<std::int64_t>(total);
  const std::int64_t base = t / p;
  const std::int64_t extra = t % p;
  const std::int64_t boundary = (base + 1) * extra;
  if (rid < boundary) return static_cast<int>(rid / (base + 1));
  return static_cast<int>(extra + (rid - boundary) / base);
}

}  // namespace

InductionResult induce_tree_quantized(mp::Comm& comm,
                                      const data::Dataset& local_block,
                                      std::int64_t first_rid,
                                      std::uint64_t total_records,
                                      const InductionControls& controls) {
  const InductionOptions& options = controls.options;
  const data::Schema& schema = local_block.schema();
  const int p = comm.size();
  const int c = schema.num_classes();
  const int bins = options.hist_bins;
  const bool voting = options.split_mode == SplitMode::kVoting;

  if (total_records == 0) {
    throw std::invalid_argument("induce_tree_quantized: empty training set");
  }
  if (options.max_depth < 0 || options.min_split_records < 2) {
    throw std::invalid_argument("induce_tree_quantized: bad options");
  }
  if (bins < 2) {
    throw std::invalid_argument("induce_tree_quantized: hist_bins must be >= 2");
  }
  if (voting && options.top_k < 1) {
    throw std::invalid_argument("induce_tree_quantized: top_k must be >= 1");
  }

  const bool resuming = controls.checkpoint.resume;
  const std::string& ckpt_root = controls.checkpoint.directory;
  const bool checkpointing = !ckpt_root.empty();
  if (resuming && !checkpointing) {
    throw std::invalid_argument(
        "induce_tree_quantized: resume requires a checkpoint directory");
  }
  if (controls.checkpoint.weighted()) {
    // The quantized engine's record ownership is structural (owner_of_rid
    // tiles [0, total) uniformly), so a weighted restore cannot steer work
    // away from a slow rank here. Reject loudly instead of silently
    // ignoring the rebalance request.
    throw std::invalid_argument(
        "induce_tree_quantized: non-uniform rank_weights are not supported "
        "by the histogram engine (row ownership is structural); use the "
        "exact engine for straggler rebalance");
  }

  std::optional<PhaseSpan> setup_span(
      std::in_place, comm, resuming ? "checkpoint_restore" : "presort");
  const std::uint64_t fp = internal::induction_fingerprint(
      schema, total_records, options, controls.strategy);
  internal::verify_spmd_fingerprint(comm, fp);

  InductionResult result;
  result.tree = DecisionTree(schema);
  InductionStats& stats = result.stats;
  stats.split_mode = options.split_mode;

  // Attribute bookkeeping: continuous and categorical list slots in schema
  // order (matching the exact engine's cont<li>/cat<li> checkpoint tags).
  std::vector<int> cont_attr, cat_attr;
  std::vector<std::int32_t> cat_card;
  const int num_attrs = schema.num_attributes();
  std::vector<int> slot_of_attr(static_cast<std::size_t>(num_attrs), -1);
  std::vector<bool> attr_is_cont(static_cast<std::size_t>(num_attrs), false);
  for (int a = 0; a < num_attrs; ++a) {
    if (schema.attribute(a).kind == AttributeKind::kContinuous) {
      slot_of_attr[static_cast<std::size_t>(a)] =
          static_cast<int>(cont_attr.size());
      attr_is_cont[static_cast<std::size_t>(a)] = true;
      cont_attr.push_back(a);
    } else {
      slot_of_attr[static_cast<std::size_t>(a)] =
          static_cast<int>(cat_attr.size());
      cat_attr.push_back(a);
      cat_card.push_back(schema.attribute(a).cardinality);
    }
  }
  const std::size_t num_cont = cont_attr.size();
  const std::size_t num_cat = cat_attr.size();
  const auto ubins = static_cast<std::size_t>(bins);
  const auto uc = static_cast<std::size_t>(c);

  // The horizontal record block: one column per attribute plus the label
  // stream, and node_of mapping each local row to its current active-node
  // index (-1 once the row lands in a leaf).
  std::vector<std::vector<double>> cont_col(num_cont);
  std::vector<std::vector<std::int32_t>> cat_col(num_cat);
  std::vector<std::int32_t> row_cls;
  std::vector<std::int32_t> node_of;
  std::int64_t my_first = first_rid;
  util::ScopedAllocation rows_mem;

  const auto meter_rows = [&] {
    const std::size_t n = row_cls.size();
    rows_mem = util::ScopedAllocation(
        comm.meter(), util::MemCategory::kAttributeLists,
        n * (num_cont * sizeof(double) + num_cat * sizeof(std::int32_t) +
             2 * sizeof(std::int32_t)));
  };

  std::vector<ActiveNode> active;
  int level_index = 0;

  if (!resuming) {
    const std::size_t local_n = local_block.num_records();
    for (std::size_t li = 0; li < num_cont; ++li) {
      const std::span<const double> col =
          local_block.continuous_column(cont_attr[li]);
      cont_col[li].assign(col.begin(), col.end());
    }
    for (std::size_t li = 0; li < num_cat; ++li) {
      const std::span<const std::int32_t> col =
          local_block.categorical_column(cat_attr[li]);
      cat_col[li].assign(col.begin(), col.end());
    }
    row_cls.assign(local_block.labels().begin(), local_block.labels().end());
    meter_rows();

    std::vector<std::int64_t> local_histogram(uc, 0);
    for (const std::int32_t label : row_cls) {
      if (label < 0 || label >= c) {
        throw std::invalid_argument("induce_tree_quantized: label out of range");
      }
      ++local_histogram[static_cast<std::size_t>(label)];
    }
    const std::vector<std::int64_t> root_totals =
        mp::allreduce_vec(comm, std::span<const std::int64_t>(local_histogram),
                          mp::SumOp{});
    comm.add_work(static_cast<double>(local_n));

    TreeNode root;
    root.is_leaf = true;
    root.class_counts = root_totals;
    root.num_records = static_cast<std::int64_t>(total_records);
    root.majority_class = majority_class(root_totals);
    root.depth = 0;
    result.tree.add_node(std::move(root));

    if (!is_pure(root_totals) &&
        static_cast<std::int64_t>(total_records) >= options.min_split_records &&
        options.max_depth > 0) {
      ActiveNode node;
      node.tree_id = 0;
      node.depth = 0;
      node.total = static_cast<std::int64_t>(total_records);
      node.class_totals = root_totals;
      active.push_back(std::move(node));
      node_of.assign(local_n, 0);
    } else {
      node_of.assign(local_n, -1);
    }
  } else {
    // -----------------------------------------------------------------------
    // Resume. Checkpoints are written as sorted vertical attribute-list
    // sections (the shared on-disk format); reconstruct the horizontal rows
    // by reading the writer ranks' sections round-robin and routing every
    // value to the rank owning its record in the equal block partition.
    // This one path serves same-world, shrink and grow resumes alike, and
    // accepts checkpoints written by either engine.
    // -----------------------------------------------------------------------
    int latest = -1;
    if (comm.rank() == 0) {
      const std::optional<int> found = checkpoint_latest_level(ckpt_root);
      if (found) latest = *found;
    }
    latest = mp::bcast_value(comm, latest, 0);
    if (latest < 0) {
      throw CheckpointError("no complete level checkpoint under '" +
                            ckpt_root + "'");
    }
    const std::string level_dir = checkpoint_level_dir(ckpt_root, latest);
    const CheckpointManifest manifest = checkpoint_read_manifest(level_dir);
    if (manifest.level != latest) {
      throw CheckpointError("manifest level disagrees with its directory name");
    }
    if (manifest.ranks != p && !controls.checkpoint.allow_repartition) {
      throw CheckpointError("checkpoint was written by " +
                            std::to_string(manifest.ranks) +
                            " ranks; resuming with " + std::to_string(p));
    }
    if (manifest.total_records != total_records ||
        manifest.num_classes != c || manifest.fingerprint != fp) {
      throw CheckpointError(
          "checkpoint parameters do not match this run "
          "(schema/options/total changed since the checkpoint was written)");
    }

    mp::JoinCapability capability;
    capability.fingerprint = fp;
    capability.total_records = static_cast<std::int64_t>(total_records);
    capability.num_attributes = static_cast<std::int32_t>(num_cont + num_cat);
    capability.layout = options.layout == DataLayout::kSoA ? 1 : 0;
    (void)mp::join_handshake(comm, capability);

    result.tree = checkpoint_read_tree(level_dir, manifest);

    const std::vector<std::int64_t> flat =
        checkpoint_read_active(level_dir, manifest);
    const std::size_t stride = 3 + uc;
    if (flat.size() % stride != 0) {
      throw CheckpointError("active.bin has a bad record stride");
    }
    active.reserve(flat.size() / stride);
    for (std::size_t i = 0; i < flat.size() / stride; ++i) {
      const std::int64_t* rec = flat.data() + i * stride;
      ActiveNode node;
      node.tree_id = static_cast<int>(rec[0]);
      node.depth = static_cast<int>(rec[1]);
      node.total = rec[2];
      node.class_totals.assign(rec + 3, rec + 3 + c);
      if (node.tree_id < 0 || node.tree_id >= result.tree.num_nodes()) {
        throw CheckpointError("active node references a missing tree node");
      }
      active.push_back(std::move(node));
    }

    // Equal block partition of [0, total) across the current world.
    const std::vector<std::size_t> sizes =
        sort::equal_partition_sizes(total_records, p);
    const std::vector<std::size_t> block_offsets =
        sort::offsets_from_sizes(sizes);
    my_first = static_cast<std::int64_t>(
        block_offsets[static_cast<std::size_t>(comm.rank())]);
    const std::size_t local_n = sizes[static_cast<std::size_t>(comm.rank())];
    for (std::size_t li = 0; li < num_cont; ++li) {
      cont_col[li].assign(local_n, 0.0);
    }
    for (std::size_t li = 0; li < num_cat; ++li) cat_col[li].assign(local_n, 0);
    row_cls.assign(local_n, 0);
    node_of.assign(local_n, -1);
    std::vector<std::uint16_t> seen(local_n, 0);
    meter_rows();

    std::vector<std::vector<RowWire>> sendbufs(static_cast<std::size_t>(p));
    const auto route_sections = [&](int writer_rank) {
      CheckpointRankReader reader(level_dir, writer_rank);
      const auto check_offsets = [&](const std::vector<std::uint64_t>& offs,
                                     std::size_t num_entries) {
        if (offs.size() != active.size() + 1 || offs.front() != 0 ||
            offs.back() != num_entries ||
            !std::is_sorted(offs.begin(), offs.end())) {
          throw CheckpointCorruptError(
              "restored segment offsets are inconsistent");
        }
      };
      for (std::size_t li = 0; li < num_cont; ++li) {
        const std::string tag = "cont" + std::to_string(li);
        const std::vector<ContinuousEntry> entries =
            reader.read_section<ContinuousEntry>(tag);
        const std::vector<std::uint64_t> offs =
            reader.read_section<std::uint64_t>(tag + "_off");
        check_offsets(offs, entries.size());
        for (std::size_t i = 0; i < active.size(); ++i) {
          for (std::uint64_t idx = offs[i]; idx < offs[i + 1]; ++idx) {
            const ContinuousEntry& e = entries[static_cast<std::size_t>(idx)];
            RowWire w;
            w.value = e.value;
            w.rid = e.rid;
            w.slot = static_cast<std::int32_t>(li);
            w.cls = e.cls;
            w.node = static_cast<std::int32_t>(i);
            sendbufs[static_cast<std::size_t>(
                         owner_of_rid(e.rid, total_records, p))]
                .push_back(w);
          }
        }
      }
      for (std::size_t li = 0; li < num_cat; ++li) {
        const std::string tag = "cat" + std::to_string(li);
        const std::vector<CategoricalEntry> entries =
            reader.read_section<CategoricalEntry>(tag);
        const std::vector<std::uint64_t> offs =
            reader.read_section<std::uint64_t>(tag + "_off");
        check_offsets(offs, entries.size());
        for (std::size_t i = 0; i < active.size(); ++i) {
          for (std::uint64_t idx = offs[i]; idx < offs[i + 1]; ++idx) {
            const CategoricalEntry& e = entries[static_cast<std::size_t>(idx)];
            RowWire w;
            w.rid = e.rid;
            w.slot = static_cast<std::int32_t>(num_cont + li);
            w.ivalue = e.value;
            w.cls = e.cls;
            w.node = static_cast<std::int32_t>(i);
            sendbufs[static_cast<std::size_t>(
                         owner_of_rid(e.rid, total_records, p))]
                .push_back(w);
          }
        }
      }
    };
    for (int writer = comm.rank(); writer < manifest.ranks; writer += p) {
      route_sections(writer);
    }

    const std::vector<std::vector<RowWire>> received =
        mp::alltoallv(comm, sendbufs);
    sendbufs.clear();
    std::size_t arrived = 0;
    for (const std::vector<RowWire>& from : received) {
      for (const RowWire& w : from) {
        const std::int64_t row64 = w.rid - my_first;
        if (row64 < 0 || row64 >= static_cast<std::int64_t>(local_n)) {
          throw CheckpointCorruptError("restored rid outside this rank's block");
        }
        const auto row = static_cast<std::size_t>(row64);
        const auto slot = static_cast<std::size_t>(w.slot);
        if (slot < num_cont) {
          cont_col[slot][row] = w.value;
        } else if (slot < num_cont + num_cat) {
          cat_col[slot - num_cont][row] = w.ivalue;
        } else {
          throw CheckpointCorruptError("restored value names a bad list slot");
        }
        row_cls[row] = w.cls;
        if (node_of[row] < 0) {
          node_of[row] = w.node;
        } else if (node_of[row] != w.node) {
          throw CheckpointCorruptError(
              "restored record is assigned to two active nodes");
        }
        ++seen[row];
        ++arrived;
      }
    }
    comm.add_work(static_cast<double>(arrived));
    for (std::size_t row = 0; row < local_n; ++row) {
      const std::size_t expect = node_of[row] >= 0 ? num_cont + num_cat : 0;
      if (seen[row] != expect) {
        throw CheckpointCorruptError(
            "restored record is missing attribute values");
      }
    }
    level_index = latest;
    stats.levels = latest;
  }
  stats.presort_seconds = comm.vtime();

  // Per-level scratch, hoisted so capacity is reused across levels.
  mp::CollectiveBatch batch(comm);
  std::vector<ValueRange> ranges_scratch;
  std::vector<ValueRange> ranges;
  std::vector<std::int64_t> cont_counts;   // [li][node][bin][class]
  std::vector<double> cont_bin_min;        // [li][node][bin]
  std::vector<std::int64_t> cat_counts;    // per list: [node][value][class]
  std::vector<std::size_t> cat_counts_begin(num_cat + 1);
  std::vector<std::int64_t> local_totals;  // [node][class], voting only
  std::vector<std::int32_t> votes;         // [node][attribute], voting only
  std::vector<std::uint8_t> elected_mask;  // [node][attribute]
  std::vector<std::vector<std::size_t>> elected_nodes(num_cont + num_cat);
  std::vector<std::int64_t> merge_counts_scratch;
  std::vector<double> merge_min_scratch;
  std::vector<std::size_t> seg_counts(num_cont), seg_min(num_cont);
  std::vector<std::size_t> seg_cat(num_cat);
  std::vector<std::int64_t> local_kid_counts;
  std::vector<std::int32_t> child_of_row(node_of.size(), -1);
  std::vector<std::int64_t> ckpt_active_scratch;
  std::uint64_t histogram_bytes_total = 0;
  std::uint64_t vote_bytes_total = 0;

  setup_span.reset();

  // -------------------------------------------------------------------------
  // Level loop.
  // -------------------------------------------------------------------------
  while (!active.empty()) {
    const std::size_t m = active.size();
    std::int64_t level_records = 0;
    for (const ActiveNode& node : active) level_records += node.total;
    const auto mm = static_cast<std::int64_t>(m);
    const auto local_n = row_cls.size();

    if (checkpointing) {
      // Same collective write protocol and on-disk format as the exact
      // engine: this engine's rows are widened back into per-attribute
      // sorted AoS sections (one parallel sort per list), so any engine /
      // world size can restore the result.
      PhaseSpan ckpt_span(comm, "checkpoint_write", level_index, mm,
                          level_records);
      if (comm.rank() == 0) checkpoint_prepare_staging(ckpt_root, level_index);
      mp::barrier(comm);
      const std::string staging = checkpoint_staging_dir(ckpt_root, level_index);
      CheckpointRankWriter writer(staging, comm.rank());
      std::vector<std::uint64_t> offs;
      const auto offsets_of = [&](auto node_of_entry, std::size_t count) {
        offs.assign(m + 1, 0);
        for (std::size_t k = 0; k < count; ++k) {
          ++offs[static_cast<std::size_t>(node_of_entry(k)) + 1];
        }
        for (std::size_t i = 0; i < m; ++i) offs[i + 1] += offs[i];
      };
      for (std::size_t li = 0; li < num_cont; ++li) {
        std::vector<ContinuousEntry> ent;
        ent.reserve(local_n);
        for (std::size_t row = 0; row < local_n; ++row) {
          if (node_of[row] < 0) continue;
          ContinuousEntry e;
          e.value = cont_col[li][row];
          e.rid = my_first + static_cast<std::int64_t>(row);
          e.cls = row_cls[row];
          e.pad = node_of[row];
          ent.push_back(e);
        }
        ent = sort::sample_sort(comm, std::move(ent), ContCkptLess{});
        offsets_of([&](std::size_t k) { return ent[k].pad; }, ent.size());
        for (ContinuousEntry& e : ent) e.pad = 0;
        const std::string tag = "cont" + std::to_string(li);
        writer.write_section<ContinuousEntry>(tag, ent);
        writer.write_section<std::uint64_t>(tag + "_off", offs);
      }
      for (std::size_t li = 0; li < num_cat; ++li) {
        std::vector<CatKeyedEntry> keyed;
        keyed.reserve(local_n);
        for (std::size_t row = 0; row < local_n; ++row) {
          if (node_of[row] < 0) continue;
          CatKeyedEntry e;
          e.rid = my_first + static_cast<std::int64_t>(row);
          e.value = cat_col[li][row];
          e.cls = row_cls[row];
          e.node = node_of[row];
          keyed.push_back(e);
        }
        keyed = sort::sample_sort(comm, std::move(keyed), CatKeyedLess{});
        offsets_of([&](std::size_t k) { return keyed[k].node; }, keyed.size());
        std::vector<CategoricalEntry> ent(keyed.size());
        for (std::size_t k = 0; k < keyed.size(); ++k) {
          ent[k] = CategoricalEntry{keyed[k].rid, keyed[k].value, keyed[k].cls};
        }
        const std::string tag = "cat" + std::to_string(li);
        writer.write_section<CategoricalEntry>(tag, ent);
        writer.write_section<std::uint64_t>(tag + "_off", offs);
      }
      writer.finalize();
      if (comm.rank() == 0) {
        std::vector<std::int64_t>& flat = ckpt_active_scratch;
        flat.clear();
        flat.reserve(active.size() * (3 + uc));
        for (const ActiveNode& node : active) {
          flat.push_back(node.tree_id);
          flat.push_back(node.depth);
          flat.push_back(node.total);
          flat.insert(flat.end(), node.class_totals.begin(),
                      node.class_totals.end());
        }
        CheckpointManifest manifest;
        manifest.level = level_index;
        manifest.ranks = p;
        manifest.num_classes = c;
        manifest.total_records = total_records;
        manifest.fingerprint = fp;
        checkpoint_write_globals(staging, result.tree, flat, manifest);
      }
      mp::barrier(comm);
      if (comm.rank() == 0) checkpoint_commit(ckpt_root, level_index);
      mp::barrier(comm);
    }
    comm.fault_level_boundary(level_index);

    const std::uint64_t level_start_bytes = comm.stats().bytes_sent;
    const auto level_start_calls = comm.stats().calls_by_op;
    const double level_start_vtime = comm.vtime();
    std::uint64_t level_histogram_bytes = 0;
    std::uint64_t level_vote_bytes = 0;

    // ---------------- FindSplitI: ranges, histograms, election -------------
    std::optional<PhaseSpan> phase(std::in_place, comm, "findsplit_i",
                                   level_index, mm, level_records);

    // Round 1: global [lo, hi] per (continuous attribute, node) so every
    // rank bins with the identical edges.
    ranges_scratch.assign(num_cont * m, ValueRange{});
    for (std::size_t li = 0; li < num_cont; ++li) {
      const double* const col = cont_col[li].data();
      ValueRange* const out = ranges_scratch.data() + li * m;
      for (std::size_t row = 0; row < local_n; ++row) {
        const std::int32_t i = node_of[row];
        if (i < 0) continue;
        ValueRange& r = out[static_cast<std::size_t>(i)];
        const double v = col[row];
        if (v < r.lo) r.lo = v;
        if (v > r.hi) r.hi = v;
      }
      comm.add_work(static_cast<double>(local_n));
    }
    batch.reset();
    const std::size_t seg_ranges = batch.add<ValueRange>(
        std::span<const ValueRange>(ranges_scratch), RangeOp{}, ValueRange{});
    level_histogram_bytes += batch.packed_bytes();
    batch.allreduce();
    ranges = batch.take<ValueRange>(seg_ranges);

    // Local histograms: per continuous list [node][bin][class] counts plus
    // the per-bin minimum value; per categorical list the usual
    // [node][value][class] count matrix.
    cont_counts.assign(num_cont * m * ubins * uc, 0);
    cont_bin_min.assign(num_cont * m * ubins,
                        std::numeric_limits<double>::infinity());
    for (std::size_t li = 0; li < num_cont; ++li) {
      const double* const col = cont_col[li].data();
      const ValueRange* const rng = ranges.data() + li * m;
      std::int64_t* const counts = cont_counts.data() + li * m * ubins * uc;
      double* const mins = cont_bin_min.data() + li * m * ubins;
      for (std::size_t row = 0; row < local_n; ++row) {
        const std::int32_t i = node_of[row];
        if (i < 0) continue;
        const auto ui = static_cast<std::size_t>(i);
        const double v = col[row];
        const auto b =
            static_cast<std::size_t>(histogram_bin_of(v, rng[ui], bins));
        ++counts[(ui * ubins + b) * uc +
                 static_cast<std::size_t>(row_cls[row])];
        if (v < mins[ui * ubins + b]) mins[ui * ubins + b] = v;
      }
      comm.add_work(static_cast<double>(local_n));
    }
    cat_counts_begin[0] = 0;
    for (std::size_t li = 0; li < num_cat; ++li) {
      cat_counts_begin[li + 1] =
          cat_counts_begin[li] + m * static_cast<std::size_t>(cat_card[li]) * uc;
    }
    cat_counts.assign(cat_counts_begin[num_cat], 0);
    for (std::size_t li = 0; li < num_cat; ++li) {
      const std::int32_t* const col = cat_col[li].data();
      const auto card = static_cast<std::size_t>(cat_card[li]);
      std::int64_t* const counts = cat_counts.data() + cat_counts_begin[li];
      for (std::size_t row = 0; row < local_n; ++row) {
        const std::int32_t i = node_of[row];
        if (i < 0) continue;
        ++counts[(static_cast<std::size_t>(i) * card +
                  static_cast<std::size_t>(col[row])) *
                     uc +
                 static_cast<std::size_t>(row_cls[row])];
      }
      comm.add_work(static_cast<double>(local_n));
    }

    // Election: which (node, attribute) histograms get merged. Histogram
    // mode merges everything; voting mode lets each rank vote its local
    // top-k attributes per node, sums the votes in one packed allreduce and
    // keeps the global top-2k (all attributes when nobody could vote, e.g.
    // every rank's local fragment of the node is single-valued).
    elected_mask.assign(m * static_cast<std::size_t>(num_attrs), 1);
    if (voting) {
      local_totals.assign(m * uc, 0);
      for (std::size_t row = 0; row < local_n; ++row) {
        const std::int32_t i = node_of[row];
        if (i < 0) continue;
        ++local_totals[static_cast<std::size_t>(i) * uc +
                       static_cast<std::size_t>(row_cls[row])];
      }
      comm.add_work(static_cast<double>(local_n));
      votes.assign(m * static_cast<std::size_t>(num_attrs), 0);
      std::vector<std::pair<double, int>> scored;
      for (std::size_t i = 0; i < m; ++i) {
        scored.clear();
        const std::span<const std::int64_t> totals(
            local_totals.data() + i * uc, uc);
        for (std::size_t li = 0; li < num_cont; ++li) {
          SplitCandidate cand;
          best_histogram_split(
              std::span<const std::int64_t>(
                  cont_counts.data() + (li * m + i) * ubins * uc, ubins * uc),
              std::span<const double>(
                  cont_bin_min.data() + (li * m + i) * ubins, ubins),
              totals, bins, options.criterion,
              static_cast<std::int32_t>(cont_attr[li]), cand);
          if (cand.valid()) scored.emplace_back(cand.gini, cont_attr[li]);
        }
        for (std::size_t li = 0; li < num_cat; ++li) {
          const auto card = static_cast<std::size_t>(cat_card[li]);
          const CountMatrix matrix = CountMatrix::from_flat(
              cat_card[li], c,
              std::span<const std::int64_t>(
                  cat_counts.data() + cat_counts_begin[li] + i * card * uc,
                  card * uc));
          const SplitCandidate cand = best_categorical_split(
              matrix, static_cast<std::int32_t>(cat_attr[li]),
              options.categorical_split, options.criterion);
          if (cand.valid()) scored.emplace_back(cand.gini, cat_attr[li]);
        }
        std::sort(scored.begin(), scored.end());
        const std::size_t k =
            std::min(scored.size(), static_cast<std::size_t>(options.top_k));
        for (std::size_t s = 0; s < k; ++s) {
          votes[i * static_cast<std::size_t>(num_attrs) +
                static_cast<std::size_t>(scored[s].second)] = 1;
        }
        comm.add_work(static_cast<double>(num_attrs));
      }
      batch.reset();
      const std::size_t vote_seg = batch.add<std::int32_t>(
          std::span<const std::int32_t>(votes), mp::SumOp{}, std::int32_t{0});
      level_vote_bytes += batch.packed_bytes();
      batch.allreduce();
      const std::span<const std::int32_t> vote_totals =
          batch.view<std::int32_t>(vote_seg);

      elected_mask.assign(m * static_cast<std::size_t>(num_attrs), 0);
      std::vector<std::pair<std::int32_t, int>> ranked;
      for (std::size_t i = 0; i < m; ++i) {
        ranked.clear();
        for (int a = 0; a < num_attrs; ++a) {
          const std::int32_t v =
              vote_totals[i * static_cast<std::size_t>(num_attrs) +
                          static_cast<std::size_t>(a)];
          ranked.emplace_back(-v, a);  // by votes desc, ties by attr asc
        }
        std::sort(ranked.begin(), ranked.end());
        // Always elect exactly min(2k, A) attributes: zero-vote attributes
        // (valid globally but never scoreable locally — e.g. every rank's
        // fragment is single-valued) rank after the voted ones in ascending
        // id order, so the merge set stays deterministic and with
        // 2k >= A voting degenerates to histogram mode exactly.
        const std::size_t keep = std::min(
            ranked.size(), static_cast<std::size_t>(2) *
                               static_cast<std::size_t>(options.top_k));
        for (std::size_t s = 0; s < keep; ++s) {
          elected_mask[i * static_cast<std::size_t>(num_attrs) +
                       static_cast<std::size_t>(ranked[s].second)] = 1;
        }
      }
    }

    // Round 2: merge the elected histograms / count matrices, packed into
    // one allreduce. The elected sets derive from global data, so every
    // rank builds the identical segment directory.
    batch.reset();
    for (std::size_t li = 0; li < num_cont + num_cat; ++li) {
      const int attr = li < num_cont ? cont_attr[li] : cat_attr[li - num_cont];
      std::vector<std::size_t>& nodes = elected_nodes[li];
      nodes.clear();
      for (std::size_t i = 0; i < m; ++i) {
        if (elected_mask[i * static_cast<std::size_t>(num_attrs) +
                         static_cast<std::size_t>(attr)]) {
          nodes.push_back(i);
        }
      }
    }
    for (std::size_t li = 0; li < num_cont; ++li) {
      const std::vector<std::size_t>& nodes = elected_nodes[li];
      merge_counts_scratch.assign(nodes.size() * ubins * uc, 0);
      merge_min_scratch.assign(nodes.size() * ubins,
                               std::numeric_limits<double>::infinity());
      for (std::size_t k = 0; k < nodes.size(); ++k) {
        const std::size_t i = nodes[k];
        std::copy_n(cont_counts.data() + (li * m + i) * ubins * uc, ubins * uc,
                    merge_counts_scratch.data() + k * ubins * uc);
        std::copy_n(cont_bin_min.data() + (li * m + i) * ubins, ubins,
                    merge_min_scratch.data() + k * ubins);
      }
      seg_counts[li] = batch.add<std::int64_t>(
          std::span<const std::int64_t>(merge_counts_scratch), mp::SumOp{},
          std::int64_t{0});
      seg_min[li] = batch.add<double>(
          std::span<const double>(merge_min_scratch), mp::MinOp{},
          std::numeric_limits<double>::infinity());
    }
    for (std::size_t li = 0; li < num_cat; ++li) {
      const std::vector<std::size_t>& nodes = elected_nodes[num_cont + li];
      const auto card = static_cast<std::size_t>(cat_card[li]);
      merge_counts_scratch.assign(nodes.size() * card * uc, 0);
      for (std::size_t k = 0; k < nodes.size(); ++k) {
        const std::size_t i = nodes[k];
        std::copy_n(cat_counts.data() + cat_counts_begin[li] + i * card * uc,
                    card * uc, merge_counts_scratch.data() + k * card * uc);
      }
      seg_cat[li] = batch.add<std::int64_t>(
          std::span<const std::int64_t>(merge_counts_scratch), mp::SumOp{},
          std::int64_t{0});
    }
    phase->set_bytes(static_cast<std::int64_t>(batch.packed_bytes()));
    level_histogram_bytes += batch.packed_bytes();
    batch.allreduce();

    // ---------------- FindSplitII: evaluate the merged histograms ----------
    phase.emplace(comm, "findsplit_ii", level_index, mm, level_records);
    std::vector<SplitCandidate> best(m);
    for (std::size_t li = 0; li < num_cont; ++li) {
      const std::vector<std::size_t>& nodes = elected_nodes[li];
      const std::span<const std::int64_t> counts =
          batch.view<std::int64_t>(seg_counts[li]);
      const std::span<const double> mins = batch.view<double>(seg_min[li]);
      for (std::size_t k = 0; k < nodes.size(); ++k) {
        const std::size_t i = nodes[k];
        best_histogram_split(counts.subspan(k * ubins * uc, ubins * uc),
                             mins.subspan(k * ubins, ubins),
                             active[i].class_totals, bins, options.criterion,
                             static_cast<std::int32_t>(cont_attr[li]), best[i]);
        comm.add_work(static_cast<double>(ubins));
      }
    }
    for (std::size_t li = 0; li < num_cat; ++li) {
      const std::vector<std::size_t>& nodes = elected_nodes[num_cont + li];
      const auto card = static_cast<std::size_t>(cat_card[li]);
      const std::span<const std::int64_t> counts =
          batch.view<std::int64_t>(seg_cat[li]);
      for (std::size_t k = 0; k < nodes.size(); ++k) {
        const std::size_t i = nodes[k];
        const CountMatrix matrix = CountMatrix::from_flat(
            cat_card[li], c, counts.subspan(k * card * uc, card * uc));
        const SplitCandidate cand = best_categorical_split(
            matrix, static_cast<std::int32_t>(cat_attr[li]),
            options.categorical_split, options.criterion);
        if (candidate_less(cand, best[i])) best[i] = cand;
        comm.add_work(static_cast<double>(card));
      }
    }
    {
      // All ranks evaluated identical global inputs, so this min-allreduce
      // is a pure SPMD-divergence guard (and keeps the exact engine's
      // closing collective structure).
      best = mp::allreduce_vec(comm, std::span<const SplitCandidate>(best),
                               CandidateMinOp{});
    }

    std::vector<bool> will_split(m, false);
    for (std::size_t i = 0; i < m; ++i) {
      if (!best[i].valid()) continue;
      const double node_impurity =
          impurity_of_counts(active[i].class_totals, options.criterion);
      will_split[i] =
          best[i].gini < node_impurity - options.min_gini_improvement;
    }

    // Categorical winners: every rank holds the merged matrix, so the
    // value -> child mappings are built redundantly everywhere — no
    // broadcast round. Copy them out before the batch is reused.
    std::vector<std::vector<std::int32_t>> value_to_child(m);
    for (std::size_t li = 0; li < num_cat; ++li) {
      const std::vector<std::size_t>& nodes = elected_nodes[num_cont + li];
      const auto card = static_cast<std::size_t>(cat_card[li]);
      const std::span<const std::int64_t> counts =
          batch.view<std::int64_t>(seg_cat[li]);
      for (std::size_t k = 0; k < nodes.size(); ++k) {
        const std::size_t i = nodes[k];
        if (!will_split[i] || best[i].attribute != cat_attr[li]) continue;
        const CountMatrix matrix = CountMatrix::from_flat(
            cat_card[li], c, counts.subspan(k * card * uc, card * uc));
        value_to_child[i] = best[i].kind == SplitKind::kCategoricalMultiWay
                                ? value_to_child_multiway(matrix)
                                : value_to_child_subset(matrix, best[i].subset);
      }
    }

    std::vector<int> num_children(m, 0);
    for (std::size_t i = 0; i < m; ++i) {
      if (!will_split[i]) continue;
      if (best[i].kind == SplitKind::kContinuous) {
        num_children[i] = 2;
      } else {
        num_children[i] = num_children_of(value_to_child[i]);
        if (num_children[i] < 2) {
          throw std::logic_error(
              "induction: categorical split with <2 children");
        }
      }
    }
    stats.findsplit_seconds += comm.vtime() - level_start_vtime;
    const double split_phase_start_vtime = comm.vtime();
    std::optional<PhaseSpan> split_span(std::in_place, comm, "performsplit_i",
                                        level_index, mm, level_records);

    // ---------------- PerformSplitI: apply splits locally ------------------
    // Every attribute of a record lives on this rank, so child assignment
    // is one local pass — no node table, no scatter, no enquiries. The only
    // communication is the child class-count allreduce that makes the new
    // tree nodes global.
    std::vector<std::size_t> kid_offset(m + 1, 0);
    for (std::size_t i = 0; i < m; ++i) {
      kid_offset[i + 1] =
          kid_offset[i] + static_cast<std::size_t>(num_children[i]) * uc;
    }
    local_kid_counts.assign(kid_offset[m], 0);
    child_of_row.assign(local_n, -1);
    for (std::size_t row = 0; row < local_n; ++row) {
      const std::int32_t i = node_of[row];
      if (i < 0) continue;
      const auto ui = static_cast<std::size_t>(i);
      if (!will_split[ui]) continue;
      const SplitCandidate& win = best[ui];
      const auto slot =
          static_cast<std::size_t>(slot_of_attr[static_cast<std::size_t>(
              win.attribute)]);
      std::int32_t child;
      if (win.kind == SplitKind::kContinuous) {
        child = cont_col[slot][row] < win.threshold ? 0 : 1;
      } else {
        child = value_to_child[ui][static_cast<std::size_t>(
            cat_col[slot][row])];
        if (child < 0) {
          throw std::logic_error(
              "induction: training record with an unmapped categorical value");
        }
      }
      child_of_row[row] = child;
      ++local_kid_counts[kid_offset[ui] +
                         static_cast<std::size_t>(child) * uc +
                         static_cast<std::size_t>(row_cls[row])];
    }
    comm.add_work(static_cast<double>(local_n));

    std::vector<std::int64_t> global_kid_counts;
    if (!local_kid_counts.empty()) {
      batch.reset();
      const std::size_t seg = batch.add<std::int64_t>(
          std::span<const std::int64_t>(local_kid_counts), mp::SumOp{});
      batch.allreduce();
      global_kid_counts = batch.take<std::int64_t>(seg);
    }

    internal::LevelGrowth growth = internal::grow_tree_level(
        result.tree, active, best, will_split, num_children, value_to_child,
        kid_offset, global_kid_counts, c, options);

    split_span.emplace(comm, "performsplit_ii", level_index, mm,
                       level_records);

    // ---------------- PerformSplitII: renumber rows to next level ----------
    for (std::size_t row = 0; row < local_n; ++row) {
      const std::int32_t i = node_of[row];
      if (i < 0) continue;
      const std::int32_t child = child_of_row[row];
      node_of[row] =
          child >= 0
              ? growth.child_slot_target[static_cast<std::size_t>(i)]
                                        [static_cast<std::size_t>(child)]
              : -1;
    }
    comm.add_work(static_cast<double>(local_n));

    // ---------------- Level bookkeeping ------------------------------------
    split_span.reset();
    stats.performsplit_seconds += comm.vtime() - split_phase_start_vtime;
    ++stats.levels;
    histogram_bytes_total += level_histogram_bytes;
    vote_bytes_total += level_vote_bytes;
    if (controls.collect_level_stats) {
      PhaseSpan level_span(comm, "level_stats", level_index, mm,
                           level_records);
      LevelStats level;
      level.level = stats.levels;
      level.active_nodes = mm;
      level.active_records = level_records;
      std::uint64_t calls = 0;
      for (int op = 0; op < mp::kNumCommOps; ++op) {
        if (op == static_cast<int>(mp::CommOp::kPointToPoint)) continue;
        calls += comm.stats().calls_by_op[static_cast<std::size_t>(op)] -
                 level_start_calls[static_cast<std::size_t>(op)];
      }
      level.collective_calls = static_cast<std::int64_t>(calls);
      const std::uint64_t sent = comm.stats().bytes_sent - level_start_bytes;
      level.max_bytes_sent_per_rank =
          mp::allreduce_value(comm, sent, mp::MaxOp{});
      level.vtime_end = comm.vtime();
      stats.per_level.push_back(level);
    }

    // Live telemetry: same per-level publish as the exact path (see
    // induction.cpp) so `train --telemetry-out` covers every split mode.
    if (telemetry::live_metrics_enabled()) {
      if (mp::MetricsSnapshot* sink = mp::metrics_sink()) {
        mp::MetricsSnapshot live = *sink;
        absorb_induction_stats(live, stats);
        mp::absorb_comm_stats(live, comm.stats());
        telemetry::publish_metrics("rank" + std::to_string(comm.rank()), live);
      }
    }

    ++level_index;
    active = std::move(growth.next_active);
  }

  stats.total_seconds = comm.vtime();
  if (mp::MetricsSnapshot* sink = mp::metrics_sink()) {
    absorb_induction_stats(*sink, stats);
    sink->add("comm.histogram_bytes",
              static_cast<double>(histogram_bytes_total));
    if (voting) {
      sink->add("comm.vote_bytes", static_cast<double>(vote_bytes_total));
    }
  }
  return result;
}

}  // namespace scalparc::core
