# Empty dependencies file for level_vs_node.
# This may be replaced when dependencies are built.
