// Attribute lists: the vertical fragmentation of the training set (§2).
//
// Each attribute's values are stored as a separate list of
// (value, record id, class label) triples. Continuous lists are sorted by
// (value, rid) once during Presort and stay sorted forever; categorical
// lists remain in record-id order. In a parallel run each rank holds a
// horizontal fragment of every list.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "data/dataset.hpp"

namespace scalparc::data {

struct ContinuousEntry {
  double value = 0.0;
  std::int64_t rid = 0;
  std::int32_t cls = 0;
  std::int32_t pad = 0;  // keeps the struct trivially hashable/copyable at 24B
};

struct CategoricalEntry {
  std::int64_t rid = 0;
  std::int32_t value = 0;
  std::int32_t cls = 0;
};

// Total order used for the presort: by value, ties broken by rid so that
// parallel and serial sorts agree exactly.
struct ContinuousEntryLess {
  bool operator()(const ContinuousEntry& a, const ContinuousEntry& b) const {
    if (a.value != b.value) return a.value < b.value;
    return a.rid < b.rid;
  }
};

// Builds the local fragment of attribute `attribute`'s list from a dataset
// block whose first record has global id `first_rid`.
std::vector<ContinuousEntry> build_continuous_list(const Dataset& block,
                                                   int attribute,
                                                   std::int64_t first_rid);
std::vector<CategoricalEntry> build_categorical_list(const Dataset& block,
                                                     int attribute,
                                                     std::int64_t first_rid);

// ---------------------------------------------------------------------------
// Structure-of-arrays layout (the induction fast path).
//
// The AoS entries above pay 24 bytes per continuous record (4 of them pure
// padding) and interleave the value, rid and class streams, so the gini
// scan — which only needs values and classes — drags the rid stream through
// cache, and the class-count loop drags everything. The column layout
// stores each stream contiguously: 20 bytes per record, and each phase of
// the level loop touches only the streams it reads. Entry converters are
// provided because the checkpoint format deliberately stays AoS entries
// (byte-identical files across layouts, so either layout resumes the
// other's checkpoints).
// ---------------------------------------------------------------------------

struct ContinuousColumns {
  std::vector<double> values;
  std::vector<std::int64_t> rids;
  std::vector<std::int32_t> cls;

  std::size_t size() const { return values.size(); }
  bool empty() const { return values.empty(); }
  static constexpr std::size_t bytes_per_record =
      sizeof(double) + sizeof(std::int64_t) + sizeof(std::int32_t);
  std::size_t size_bytes() const { return size() * bytes_per_record; }

  void clear() {
    values.clear();
    rids.clear();
    cls.clear();
  }
  void reserve(std::size_t n) {
    values.reserve(n);
    rids.reserve(n);
    cls.reserve(n);
  }
  void resize(std::size_t n) {
    values.resize(n);
    rids.resize(n);
    cls.resize(n);
  }
  void push_back(double value, std::int64_t rid, std::int32_t c) {
    values.push_back(value);
    rids.push_back(rid);
    cls.push_back(c);
  }
  ContinuousEntry entry(std::size_t i) const {
    return ContinuousEntry{values[i], rids[i], cls[i], 0};
  }
  void set(std::size_t i, double value, std::int64_t rid, std::int32_t c) {
    values[i] = value;
    rids[i] = rid;
    cls[i] = c;
  }
  void set(std::size_t i, const ContinuousColumns& from, std::size_t j) {
    values[i] = from.values[j];
    rids[i] = from.rids[j];
    cls[i] = from.cls[j];
  }
};

struct CategoricalColumns {
  std::vector<std::int64_t> rids;
  std::vector<std::int32_t> values;
  std::vector<std::int32_t> cls;

  std::size_t size() const { return rids.size(); }
  bool empty() const { return rids.empty(); }
  static constexpr std::size_t bytes_per_record =
      sizeof(std::int64_t) + 2 * sizeof(std::int32_t);
  std::size_t size_bytes() const { return size() * bytes_per_record; }

  void clear() {
    rids.clear();
    values.clear();
    cls.clear();
  }
  void reserve(std::size_t n) {
    rids.reserve(n);
    values.reserve(n);
    cls.reserve(n);
  }
  void resize(std::size_t n) {
    rids.resize(n);
    values.resize(n);
    cls.resize(n);
  }
  void push_back(std::int64_t rid, std::int32_t value, std::int32_t c) {
    rids.push_back(rid);
    values.push_back(value);
    cls.push_back(c);
  }
  CategoricalEntry entry(std::size_t i) const {
    return CategoricalEntry{rids[i], values[i], cls[i]};
  }
  void set(std::size_t i, const CategoricalColumns& from, std::size_t j) {
    rids[i] = from.rids[j];
    values[i] = from.values[j];
    cls[i] = from.cls[j];
  }
};

// Direct columnar builders (no AoS detour).
ContinuousColumns build_continuous_columns(const Dataset& block, int attribute,
                                           std::int64_t first_rid);
CategoricalColumns build_categorical_columns(const Dataset& block,
                                             int attribute,
                                             std::int64_t first_rid);

// Layout converters; the entry forms are the checkpoint/wire format.
ContinuousColumns columns_from_entries(std::span<const ContinuousEntry> entries);
CategoricalColumns columns_from_entries(std::span<const CategoricalEntry> entries);
void entries_from_columns(const ContinuousColumns& cols,
                          std::vector<ContinuousEntry>& out);
void entries_from_columns(const CategoricalColumns& cols,
                          std::vector<CategoricalEntry>& out);

}  // namespace scalparc::data
