# Empty compiler generated dependencies file for scalparc.
# This may be replaced when dependencies are built.
