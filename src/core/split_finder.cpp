#include "core/split_finder.hpp"

#include <stdexcept>
#include <vector>

namespace scalparc::core {

bool candidate_less(const SplitCandidate& a, const SplitCandidate& b) {
  if (a.gini != b.gini) return a.gini < b.gini;
  if (a.attribute != b.attribute) return a.attribute < b.attribute;
  if (a.kind != b.kind) return static_cast<int>(a.kind) < static_cast<int>(b.kind);
  if (a.threshold != b.threshold) return a.threshold < b.threshold;
  return a.subset < b.subset;
}

std::size_t scan_continuous_segment(std::span<const data::ContinuousEntry> segment,
                                    BinaryImpurityScanner& scanner, bool has_prev,
                                    double prev_value, std::int32_t attribute,
                                    SplitCandidate& best) {
  double prev = prev_value;
  bool has = has_prev;
  for (const data::ContinuousEntry& entry : segment) {
    if (has && entry.value != prev) {
      // Candidate "A < entry.value": the left partition is exactly the
      // records advanced so far (all have value <= prev < entry.value).
      const double g = scanner.current_impurity();
      SplitCandidate candidate;
      candidate.gini = g;
      candidate.attribute = attribute;
      candidate.kind = SplitKind::kContinuous;
      candidate.threshold = entry.value;
      if (candidate_less(candidate, best)) best = candidate;
    }
    scanner.advance(entry.cls);
    prev = entry.value;
    has = true;
  }
  return segment.size();
}

namespace {

// Gini of the binary split defined by `subset` (bit v set -> value v on the
// left), or +inf if either side is empty.
double subset_impurity(const CountMatrix& matrix, std::uint64_t subset,
                       SplitCriterion criterion) {
  const int c = matrix.cols();
  std::vector<std::int64_t> left(static_cast<std::size_t>(c), 0);
  std::vector<std::int64_t> right(static_cast<std::size_t>(c), 0);
  for (int v = 0; v < matrix.rows(); ++v) {
    auto& side = (subset >> v) & 1u ? left : right;
    for (int j = 0; j < c; ++j) side[static_cast<std::size_t>(j)] += matrix.at(v, j);
  }
  std::int64_t nl = 0;
  std::int64_t nr = 0;
  for (int j = 0; j < c; ++j) {
    nl += left[static_cast<std::size_t>(j)];
    nr += right[static_cast<std::size_t>(j)];
  }
  if (nl == 0 || nr == 0) return std::numeric_limits<double>::infinity();
  const double n = static_cast<double>(nl + nr);
  return (static_cast<double>(nl) / n) * impurity_of_counts(left, criterion) +
         (static_cast<double>(nr) / n) * impurity_of_counts(right, criterion);
}

SplitCandidate multiway_candidate(const CountMatrix& matrix,
                                  std::int32_t attribute,
                                  SplitCriterion criterion) {
  SplitCandidate candidate;
  int non_empty = 0;
  for (int v = 0; v < matrix.rows(); ++v) non_empty += matrix.row_total(v) > 0;
  if (non_empty < 2) return candidate;  // a 1-way "split" is no split
  candidate.gini = impurity_of_split(matrix, criterion);
  candidate.attribute = attribute;
  candidate.kind = SplitKind::kCategoricalMultiWay;
  return candidate;
}

SplitCandidate subset_candidate(const CountMatrix& matrix,
                                std::int32_t attribute,
                                SplitCriterion criterion) {
  SplitCandidate candidate;
  if (matrix.rows() > 64) {
    throw std::invalid_argument(
        "best_categorical_split: subset mode limited to cardinality <= 64");
  }
  // Greedy forward selection (SLIQ-style): repeatedly move the value that
  // most improves the split into the left subset; keep the best seen.
  std::uint64_t subset = 0;
  double best_gini = std::numeric_limits<double>::infinity();
  std::uint64_t best_subset = 0;
  for (;;) {
    double round_best = std::numeric_limits<double>::infinity();
    int round_value = -1;
    for (int v = 0; v < matrix.rows(); ++v) {
      if ((subset >> v) & 1u) continue;
      if (matrix.row_total(v) == 0) continue;
      const double g = subset_impurity(matrix, subset | (std::uint64_t{1} << v), criterion);
      if (g < round_best) {
        round_best = g;
        round_value = v;
      }
    }
    if (round_value < 0) break;  // no move keeps both sides non-empty
    subset |= std::uint64_t{1} << round_value;
    if (round_best < best_gini) {
      best_gini = round_best;
      best_subset = subset;
    }
  }
  if (best_gini == std::numeric_limits<double>::infinity()) return candidate;
  candidate.gini = best_gini;
  candidate.attribute = attribute;
  candidate.kind = SplitKind::kCategoricalSubset;
  candidate.subset = best_subset;
  return candidate;
}

}  // namespace

SplitCandidate best_categorical_split(const CountMatrix& matrix,
                                      std::int32_t attribute,
                                      CategoricalSplit mode,
                                      SplitCriterion criterion) {
  if (mode == CategoricalSplit::kMultiWay) {
    return multiway_candidate(matrix, attribute, criterion);
  }
  return subset_candidate(matrix, attribute, criterion);
}

}  // namespace scalparc::core
