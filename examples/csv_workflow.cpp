// Bring-your-own-data workflow: train from a CSV file and evaluate on a
// second CSV (or a held-out slice), printing the confusion matrix and the
// learned tree.
//
// With no arguments the example writes a demo CSV first so it is runnable
// out of the box:
//   ./examples/csv_workflow
//   ./examples/csv_workflow train.csv test.csv [--ranks P] [--prune]
//                           [--save-model model.tree]
//
// CSV format (see src/data/csv.hpp): header "name:cont" / "name:cat:K"
// columns followed by a final "class:C" column.
#include <cstdio>
#include <string>

#include "core/predict.hpp"
#include "core/pruning.hpp"
#include "core/scalparc.hpp"
#include "core/tree_io.hpp"
#include "data/csv.hpp"
#include "data/synthetic.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace scalparc;
  const util::CliArgs args(argc, argv);
  const int ranks = static_cast<int>(args.get_int("ranks", 4));

  std::string train_path;
  std::string test_path;
  if (args.positional().size() >= 2) {
    train_path = args.positional()[0];
    test_path = args.positional()[1];
  } else {
    // Self-contained demo: materialize generator data as CSV files.
    std::printf("No input files given; writing demo CSVs to /tmp ...\n");
    data::GeneratorConfig config;
    config.seed = 2026;
    config.function = data::LabelFunction::kF2;
    config.label_noise = 0.02;
    const data::QuestGenerator generator(config);
    train_path = "/tmp/scalparc_demo_train.csv";
    test_path = "/tmp/scalparc_demo_test.csv";
    data::write_csv_file(generator.generate(0, 3000), train_path);
    data::write_csv_file(generator.generate(1000000, 1000), test_path);
  }

  std::printf("training on %s (%d simulated ranks)\n", train_path.c_str(), ranks);
  const data::Dataset training = data::read_csv_file(train_path);
  const data::Dataset testing = data::read_csv_file(test_path);

  core::FitReport report = core::ScalParC::fit(training, ranks);
  if (args.get_bool("prune", false)) {
    const core::PruneReport pruned = core::mdl_prune(report.tree);
    std::printf("MDL pruning: %d -> %d nodes\n", pruned.nodes_before,
                pruned.nodes_after);
  }

  const core::ConfusionMatrix train_cm = core::evaluate(report.tree, training);
  const core::ConfusionMatrix test_cm = core::evaluate(report.tree, testing);
  std::printf("tree: %d nodes, depth %d\n", report.tree.num_nodes(),
              report.tree.depth());
  std::printf("training accuracy: %.4f over %lld records\n", train_cm.accuracy(),
              static_cast<long long>(train_cm.total()));
  std::printf("test accuracy:     %.4f over %lld records\n", test_cm.accuracy(),
              static_cast<long long>(test_cm.total()));
  std::printf("\ntest confusion matrix:\n%s", test_cm.to_string().c_str());

  const std::string model_path = args.get_string("save-model", "");
  if (!model_path.empty()) {
    core::save_tree_file(report.tree, model_path);
    std::printf("model saved to %s (reload with core::load_tree_file or\n"
                "`scalparc predict --model %s --data ...`)\n",
                model_path.c_str(), model_path.c_str());
  }

  if (report.tree.num_nodes() <= 40) {
    std::printf("\n%s", report.tree.to_string().c_str());
  }
  return 0;
}
