# Empty dependencies file for scalparc_util.
# This may be replaced when dependencies are built.
