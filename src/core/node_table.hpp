// The parallel hashing paradigm (§3.3.1) and the distributed node table
// built on it (§3.3.2).
//
// DistributedHashTable<V> is the reusable paradigm: a table of `num_keys`
// values block-distributed over the ranks with the collision-free hash
//   h(key) = (key div B, key mod B),  B = ceil(num_keys / p),
// supporting bulk *update* (scatter (key, value) pairs to owners with one
// all-to-all personalized exchange per block round) and bulk *enquiry*
// (scatter keys, owners look up, a second all-to-all returns the values in
// the caller's original key order). Updates can be blocked into rounds of at
// most `block` entries per rank so that staging buffers never exceed O(N/p)
// memory — the mechanism that keeps ScalParC memory-scalable even when one
// rank must send far more than N/p updates.
//
// NodeTable specializes the table for ScalParC: the value is the child slot
// a record moves to in the current level, plus an epoch stamp so that an
// enquiry for a record that was not updated this level is detected as a
// protocol violation instead of silently returning stale data.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "mp/collectives.hpp"
#include "mp/comm.hpp"
#include "util/memory_meter.hpp"

namespace scalparc::core {

template <mp::WireType V>
class DistributedHashTable {
 public:
  struct Update {
    std::int64_t key = 0;
    V value{};
  };

  // Collective: all ranks construct with identical arguments.
  DistributedHashTable(mp::Comm& comm, std::uint64_t num_keys, V initial)
      : comm_(comm),
        num_keys_(num_keys),
        block_((num_keys + static_cast<std::uint64_t>(comm.size()) - 1) /
               static_cast<std::uint64_t>(comm.size())) {
    // Last rank may own fewer (or zero) live slots; allocate the full block
    // everywhere for the collision-free index arithmetic.
    const std::uint64_t local = local_size();
    local_values_.assign(local, initial);
    mem_ = util::ScopedAllocation(comm.meter(), util::MemCategory::kNodeTable,
                                  local * sizeof(V));
  }

  std::uint64_t num_keys() const { return num_keys_; }
  std::uint64_t block() const { return block_; }

  int owner_of(std::int64_t key) const {
    check_key(key);
    return block_ == 0 ? 0
                       : static_cast<int>(static_cast<std::uint64_t>(key) / block_);
  }
  std::uint64_t slot_of(std::int64_t key) const {
    check_key(key);
    return block_ == 0 ? 0 : static_cast<std::uint64_t>(key) % block_;
  }

  std::uint64_t local_size() const {
    const auto rank = static_cast<std::uint64_t>(comm_.rank());
    const std::uint64_t begin = rank * block_;
    if (begin >= num_keys_) return 0;
    return std::min(block_, num_keys_ - begin);
  }

  // Direct access to this rank's slots (tests, and the owner-side of custom
  // protocols).
  std::span<const V> local_values() const { return local_values_; }
  std::span<V> local_values_mutable() { return local_values_; }

  // Collective bulk update. `updates` may be empty on some ranks. When
  // `block_limit` > 0, each rank sends at most that many updates per
  // all-to-all round; every rank participates in the globally maximal number
  // of rounds. block_limit == 0 sends everything in one round.
  void update(std::span<const Update> updates, std::int64_t block_limit = 0);

  // Collective bulk enquiry: returns values ordered like `keys`.
  std::vector<V> enquire(std::span<const std::int64_t> keys);

 private:
  struct WireUpdate {
    std::uint64_t slot = 0;
    V value{};
  };

  void check_key(std::int64_t key) const {
    if (key < 0 || static_cast<std::uint64_t>(key) >= num_keys_) {
      throw std::out_of_range("DistributedHashTable: key out of range");
    }
  }

  // Owner-side loops touch local slots in the senders' arrival order —
  // effectively random — so each access is a likely cache miss. Both loops
  // below process requests in groups of kPrefetchGroup, issuing software
  // prefetches for the next group's slots while the current group executes.
  static constexpr std::size_t kPrefetchGroup = 8;
  void prefetch_slot(std::uint64_t slot) const {
#if defined(__GNUC__) || defined(__clang__)
    if (slot < local_values_.size()) {
      __builtin_prefetch(local_values_.data() + slot, 0, 1);
    }
#else
    (void)slot;
#endif
  }

  void apply_round(std::span<const Update> round);

  mp::Comm& comm_;
  std::uint64_t num_keys_;
  std::uint64_t block_;
  std::vector<V> local_values_;
  util::ScopedAllocation mem_;
};

// ---------------------------------------------------------------------------

struct NodeTableEntry {
  std::int32_t child = -1;
  std::uint32_t epoch = 0;
};

class NodeTable {
 public:
  NodeTable(mp::Comm& comm, std::uint64_t num_records)
      : table_(comm, num_records, NodeTableEntry{}) {}

  // Starts a new induction level; collective only by convention (no
  // communication happens here).
  void begin_level() { ++epoch_; }
  std::uint32_t epoch() const { return epoch_; }

  // Collective: scatter this level's (rid -> child slot) assignments.
  void update(std::span<const std::int64_t> rids,
              std::span<const std::int32_t> children,
              std::int64_t block_limit);

  // Collective: child slots for `rids`, in order. Throws std::logic_error if
  // any rid was not updated in the current epoch (stale enquiry).
  std::vector<std::int32_t> enquire(std::span<const std::int64_t> rids);

  std::uint64_t block() const { return table_.block(); }
  const DistributedHashTable<NodeTableEntry>& table() const { return table_; }

 private:
  DistributedHashTable<NodeTableEntry> table_;
  std::uint32_t epoch_ = 0;
};

// ---------------------------------------------------------------------------
// Template implementation.
// ---------------------------------------------------------------------------

template <mp::WireType V>
void DistributedHashTable<V>::apply_round(std::span<const Update> round) {
  const int p = comm_.size();
  std::vector<std::vector<WireUpdate>> sendbufs(static_cast<std::size_t>(p));
  for (const Update& u : round) {
    const int dst = owner_of(u.key);
    sendbufs[static_cast<std::size_t>(dst)].push_back(
        WireUpdate{slot_of(u.key), u.value});
  }
  comm_.add_work(static_cast<double>(round.size()));
  std::vector<std::vector<WireUpdate>> received = mp::alltoallv(comm_, sendbufs);
  for (const auto& buf : received) {
    for (std::size_t base = 0; base < buf.size(); base += kPrefetchGroup) {
      const std::size_t end = std::min(base + kPrefetchGroup, buf.size());
      const std::size_t next_end = std::min(end + kPrefetchGroup, buf.size());
      for (std::size_t i = end; i < next_end; ++i) prefetch_slot(buf[i].slot);
      for (std::size_t i = base; i < end; ++i) {
        const WireUpdate& w = buf[i];
        if (w.slot >= local_values_.size()) {
          throw std::logic_error("DistributedHashTable: slot out of range");
        }
        local_values_[w.slot] = w.value;
      }
    }
    comm_.add_work(static_cast<double>(buf.size()));
  }
}

template <mp::WireType V>
void DistributedHashTable<V>::update(std::span<const Update> updates,
                                     std::int64_t block_limit) {
  if (block_limit < 0) {
    throw std::invalid_argument("DistributedHashTable::update: bad block limit");
  }
  if (block_limit == 0) {
    // One round; all ranks agree because block_limit is collective-uniform.
    apply_round(updates);
    return;
  }
  const std::uint64_t limit = static_cast<std::uint64_t>(block_limit);
  const std::uint64_t my_rounds =
      (updates.size() + limit - 1) / limit;  // 0 if updates empty
  const std::uint64_t rounds =
      mp::allreduce_value(comm_, my_rounds, mp::MaxOp{});
  for (std::uint64_t r = 0; r < rounds; ++r) {
    const std::uint64_t begin = std::min<std::uint64_t>(r * limit, updates.size());
    const std::uint64_t end = std::min<std::uint64_t>(begin + limit, updates.size());
    apply_round(updates.subspan(begin, end - begin));
  }
}

template <mp::WireType V>
std::vector<V> DistributedHashTable<V>::enquire(
    std::span<const std::int64_t> keys) {
  const int p = comm_.size();
  // Enquiry buffers: the slot indices each owner should look up, in the
  // order we encounter them; `destination[i]` remembers where key i went so
  // the returned values can be read back in order.
  std::vector<std::vector<std::uint64_t>> enquiry(static_cast<std::size_t>(p));
  std::vector<int> destination(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const int dst = owner_of(keys[i]);
    destination[i] = dst;
    enquiry[static_cast<std::size_t>(dst)].push_back(slot_of(keys[i]));
  }
  comm_.add_work(static_cast<double>(keys.size()));

  std::vector<std::vector<std::uint64_t>> index_buffers =
      mp::alltoallv(comm_, enquiry);

  // Owner-side lookup fills the intermediate value buffers.
  std::vector<std::vector<V>> value_buffers(static_cast<std::size_t>(p));
  for (std::size_t src = 0; src < index_buffers.size(); ++src) {
    const std::vector<std::uint64_t>& slots = index_buffers[src];
    value_buffers[src].resize(slots.size());
    for (std::size_t base = 0; base < slots.size(); base += kPrefetchGroup) {
      const std::size_t end = std::min(base + kPrefetchGroup, slots.size());
      const std::size_t next_end = std::min(end + kPrefetchGroup, slots.size());
      for (std::size_t i = end; i < next_end; ++i) prefetch_slot(slots[i]);
      for (std::size_t i = base; i < end; ++i) {
        if (slots[i] >= local_values_.size()) {
          throw std::logic_error("DistributedHashTable: enquiry slot out of range");
        }
        value_buffers[src][i] = local_values_[slots[i]];
      }
    }
    comm_.add_work(static_cast<double>(slots.size()));
  }

  std::vector<std::vector<V>> result_buffers = mp::alltoallv(comm_, value_buffers);

  // Read back in the original key order.
  std::vector<std::size_t> cursor(static_cast<std::size_t>(p), 0);
  std::vector<V> out;
  out.reserve(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const auto dst = static_cast<std::size_t>(destination[i]);
    out.push_back(result_buffers[dst][cursor[dst]++]);
  }
  return out;
}

}  // namespace scalparc::core
