file(REMOVE_RECURSE
  "libscalparc_sort.a"
)
