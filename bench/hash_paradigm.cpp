// Ablation A1: the parallel hashing paradigm in isolation (§3.3.1).
//
// The paper proposes the distributed-hash-table update/enquiry protocol as a
// reusable primitive ("can be used to parallelize other algorithms that
// require many concurrent updates to a large hash table"). This bench
// exercises it directly, outside tree induction:
//
//   part 1 — scaling: hash M keys into a table of M entries across p ranks,
//            then enquire all of them; report modeled time and per-rank
//            bytes. The paradigm is scalable as long as enough keys are
//            hashed at once (the paper's Theta(p^2) condition).
//   part 2 — blocked updates: the §3.3.2 memory-scalability device. One rank
//            sends ALL updates (worst-case skew); blocking bounds the
//            staging buffers at the cost of extra all-to-all rounds.
//
//   ./hash_paradigm [--keys N] [--procs 2,4,...] [--csv DIR]
#include <cstdio>

#include "bench_common.hpp"
#include "core/node_table.hpp"

int main(int argc, char** argv) {
  using namespace scalparc;
  const util::CliArgs args(argc, argv);
  const std::uint64_t keys = static_cast<std::uint64_t>(args.get_int("keys", 200000));
  const auto procs = args.get_int_list("procs", {2, 4, 8, 16, 32, 64});
  const auto model = mp::CostModel::cray_t3d();

  struct Value {
    std::int64_t payload = 0;
  };
  using Table = core::DistributedHashTable<Value>;

  bench::CsvWriter csv(args, "hash_paradigm.csv",
                       "phase,procs,block,modeled_seconds,max_mb_sent_per_rank,"
                       "peak_staging_mb_per_rank");

  std::printf("A1 part 1: update + enquire %llu keys across p ranks\n\n",
              static_cast<unsigned long long>(keys));
  std::printf("%6s %16s %16s\n", "procs", "modeled-time(s)", "MB sent/rank");
  for (const std::int64_t p : procs) {
    const auto result = mp::run_ranks(
        static_cast<int>(p), model, [&](mp::Comm& comm) {
          Table table(comm, keys, Value{});
          // Every rank updates its block-strided share of the keys with a
          // scrambled destination pattern (keys owned by everyone).
          std::vector<Table::Update> updates;
          for (std::uint64_t k = static_cast<std::uint64_t>(comm.rank());
               k < keys; k += static_cast<std::uint64_t>(comm.size())) {
            const std::int64_t key =
                static_cast<std::int64_t>((k * 2654435761ULL) % keys);
            updates.push_back(Table::Update{key, Value{static_cast<std::int64_t>(k)}});
          }
          table.update(updates);
          std::vector<std::int64_t> enquiry;
          for (std::uint64_t k = static_cast<std::uint64_t>(comm.rank());
               k < keys; k += static_cast<std::uint64_t>(comm.size())) {
            enquiry.push_back(static_cast<std::int64_t>(k));
          }
          (void)table.enquire(enquiry);
        });
    const double mb =
        static_cast<double>(result.max_bytes_sent_per_rank()) / 1e6;
    std::printf("%6lld %16.4f %16.3f\n", static_cast<long long>(p),
                result.modeled_seconds, mb);
    csv.row("scaling,%lld,0,%.6f,%.6f,0", static_cast<long long>(p),
            result.modeled_seconds, mb);
  }

  std::printf("\nA1 part 2: blocked updates under worst-case skew (rank 0 sends all)\n\n");
  std::printf("%6s %10s %16s %22s\n", "procs", "block", "modeled-time(s)",
              "peak staging MB/rank");
  const std::uint64_t skew_keys = keys / 4;
  for (const std::int64_t p : {8LL, 32LL}) {
    for (const std::int64_t block :
         {std::int64_t{0}, static_cast<std::int64_t>(skew_keys / p),
          static_cast<std::int64_t>(skew_keys / (8 * p))}) {
      const auto result = mp::run_ranks(
          static_cast<int>(p), model, [&](mp::Comm& comm) {
            Table table(comm, skew_keys, Value{});
            std::vector<Table::Update> updates;
            if (comm.rank() == 0) {
              for (std::uint64_t k = 0; k < skew_keys; ++k) {
                updates.push_back(
                    Table::Update{static_cast<std::int64_t>(k),
                                  Value{static_cast<std::int64_t>(k)}});
              }
            }
            table.update(updates, block);
          });
      std::size_t staging = 0;
      for (const auto& r : result.ranks) {
        staging = std::max(staging,
                           r.meter.peak_bytes(util::MemCategory::kCommBuffers));
      }
      std::printf("%6lld %10lld %16.4f %22.3f\n", static_cast<long long>(p),
                  static_cast<long long>(block), result.modeled_seconds,
                  static_cast<double>(staging) / 1e6);
      csv.row("blocked,%lld,%lld,%.6f,0,%.6f", static_cast<long long>(p),
              static_cast<long long>(block), result.modeled_seconds,
              static_cast<double>(staging) / 1e6);
    }
  }
  std::printf(
      "\nblock 0 = unblocked (one round, largest staging buffers); smaller\n"
      "blocks bound memory at the cost of extra all-to-all rounds — the\n"
      "memory/latency trade-off of §3.3.2.\n");
  std::printf("\nCSV written to %s\n", csv.path().c_str());
  return 0;
}
