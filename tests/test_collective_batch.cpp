// Property tests for the fused collective layer: a CollectiveBatch round
// over randomized packed directories (random segment counts, sizes, element
// types and roots, including empty segments) must be element-identical to
// running the unfused reference collective segment by segment.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "mp/collective_batch.hpp"
#include "mp/collectives.hpp"
#include "mp/comm.hpp"
#include "mp/costmodel.hpp"
#include "mp/fault.hpp"
#include "mp/runtime.hpp"
#include "util/random.hpp"

namespace scalparc {
namespace {

const mp::CostModel kZero = mp::CostModel::zero();

// A non-commutative combine rides along so argument-order bugs cannot hide:
// mirrors the induction loop's boundary propagation ("rightmost non-empty
// value wins").
struct Marker {
  double value = 0.0;
  std::uint8_t has = 0;
  std::uint8_t pad[7] = {};
};

struct RightmostOp {
  Marker operator()(const Marker& left, const Marker& right) const {
    return right.has != 0 ? right : left;
  }
};

// One randomized directory: interleaved int64-sum, Marker-rightmost and
// double-min segments. Sizes (possibly zero) and roots depend only on
// (seed, segment) so every rank builds the identical directory; values
// depend on the rank as well.
struct SegmentSpec {
  int type = 0;  // 0: int64 sum, 1: Marker rightmost, 2: double min
  std::size_t size = 0;
  int root = 0;
};

std::vector<SegmentSpec> make_directory(std::uint64_t seed, int p) {
  util::Rng rng(seed);
  const std::size_t count = 1 + rng.next_below(9);
  std::vector<SegmentSpec> specs(count);
  for (SegmentSpec& spec : specs) {
    spec.type = static_cast<int>(rng.next_below(3));
    // ~1 in 4 segments is empty.
    spec.size = rng.next_bool(0.25) ? 0 : 1 + rng.next_below(17);
    spec.root = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(p)));
  }
  return specs;
}

std::vector<std::int64_t> int_values(std::uint64_t seed, int rank,
                                     std::size_t n) {
  util::Rng rng(seed ^ (0x9E37ULL * static_cast<std::uint64_t>(rank + 1)));
  std::vector<std::int64_t> out(n);
  for (auto& v : out) v = rng.next_int(-1000, 1000);
  return out;
}

std::vector<Marker> marker_values(std::uint64_t seed, int rank, std::size_t n) {
  util::Rng rng(seed ^ (0xB0B1ULL * static_cast<std::uint64_t>(rank + 1)));
  std::vector<Marker> out(n);
  for (auto& m : out) {
    m.has = rng.next_bool(0.6) ? 1 : 0;
    m.value = m.has ? rng.next_double(-5.0, 5.0) : 0.0;
  }
  return out;
}

std::vector<double> double_values(std::uint64_t seed, int rank, std::size_t n) {
  util::Rng rng(seed ^ (0xCAFEULL * static_cast<std::uint64_t>(rank + 1)));
  std::vector<double> out(n);
  for (auto& v : out) v = rng.next_double(-100.0, 100.0);
  return out;
}

class BatchSweep : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(RankSweep, BatchSweep, ::testing::Values(1, 2, 3, 4, 8));

// Packed exscan == per-segment exscan_vec, element for element.
TEST_P(BatchSweep, ExscanMatchesUnfusedReference) {
  const int p = GetParam();
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const std::vector<SegmentSpec> specs = make_directory(seed, p);
    mp::run_ranks(p, kZero, [&](mp::Comm& comm) {
      const int r = comm.rank();
      mp::CollectiveBatch batch(comm);
      std::vector<std::size_t> ids;
      for (std::size_t s = 0; s < specs.size(); ++s) {
        const std::uint64_t sseed = seed * 1000 + s;
        switch (specs[s].type) {
          case 0:
            ids.push_back(batch.add<std::int64_t>(
                int_values(sseed, r, specs[s].size), mp::SumOp{},
                std::int64_t{0}));
            break;
          case 1:
            ids.push_back(batch.add<Marker>(marker_values(sseed, r, specs[s].size),
                                            RightmostOp{}, Marker{}));
            break;
          default:
            ids.push_back(batch.add<double>(double_values(sseed, r, specs[s].size),
                                            mp::MinOp{},
                                            std::numeric_limits<double>::max()));
        }
      }
      batch.exscan();
      for (std::size_t s = 0; s < specs.size(); ++s) {
        const std::uint64_t sseed = seed * 1000 + s;
        if (specs[s].type == 0) {
          const std::vector<std::int64_t> local = int_values(sseed, r, specs[s].size);
          const std::vector<std::int64_t> expected = mp::exscan_vec(
              comm, std::span<const std::int64_t>(local), mp::SumOp{},
              std::int64_t{0});
          const auto got = batch.view<std::int64_t>(ids[s]);
          ASSERT_EQ(got.size(), expected.size());
          for (std::size_t i = 0; i < expected.size(); ++i) {
            EXPECT_EQ(got[i], expected[i]) << "seed " << seed << " seg " << s;
          }
        } else if (specs[s].type == 1) {
          const std::vector<Marker> local = marker_values(sseed, r, specs[s].size);
          const std::vector<Marker> expected = mp::exscan_vec(
              comm, std::span<const Marker>(local), RightmostOp{}, Marker{});
          const auto got = batch.view<Marker>(ids[s]);
          ASSERT_EQ(got.size(), expected.size());
          for (std::size_t i = 0; i < expected.size(); ++i) {
            EXPECT_EQ(got[i].has, expected[i].has);
            EXPECT_DOUBLE_EQ(got[i].value, expected[i].value);
          }
        } else {
          const std::vector<double> local = double_values(sseed, r, specs[s].size);
          const std::vector<double> expected = mp::exscan_vec(
              comm, std::span<const double>(local), mp::MinOp{},
              std::numeric_limits<double>::max());
          const auto got = batch.view<double>(ids[s]);
          ASSERT_EQ(got.size(), expected.size());
          for (std::size_t i = 0; i < expected.size(); ++i) {
            EXPECT_DOUBLE_EQ(got[i], expected[i]);
          }
        }
      }
    });
  }
}

// Packed allreduce == per-segment allreduce_vec.
TEST_P(BatchSweep, AllreduceMatchesUnfusedReference) {
  const int p = GetParam();
  for (std::uint64_t seed = 20; seed <= 28; ++seed) {
    const std::vector<SegmentSpec> specs = make_directory(seed, p);
    mp::run_ranks(p, kZero, [&](mp::Comm& comm) {
      const int r = comm.rank();
      mp::CollectiveBatch batch(comm);
      std::vector<std::size_t> ids;
      for (std::size_t s = 0; s < specs.size(); ++s) {
        const std::uint64_t sseed = seed * 1000 + s;
        if (specs[s].type == 2) {
          ids.push_back(batch.add<double>(double_values(sseed, r, specs[s].size),
                                          mp::MinOp{}));
        } else {
          ids.push_back(batch.add<std::int64_t>(
              int_values(sseed, r, specs[s].size), mp::SumOp{}));
        }
      }
      batch.allreduce();
      for (std::size_t s = 0; s < specs.size(); ++s) {
        const std::uint64_t sseed = seed * 1000 + s;
        if (specs[s].type == 2) {
          const std::vector<double> local = double_values(sseed, r, specs[s].size);
          const std::vector<double> expected = mp::allreduce_vec(
              comm, std::span<const double>(local), mp::MinOp{});
          const auto got = batch.view<double>(ids[s]);
          ASSERT_EQ(got.size(), expected.size());
          for (std::size_t i = 0; i < expected.size(); ++i) {
            EXPECT_DOUBLE_EQ(got[i], expected[i]);
          }
        } else {
          const std::vector<std::int64_t> local = int_values(sseed, r, specs[s].size);
          const std::vector<std::int64_t> expected = mp::allreduce_vec(
              comm, std::span<const std::int64_t>(local), mp::SumOp{});
          const auto got = batch.view<std::int64_t>(ids[s]);
          ASSERT_EQ(got.size(), expected.size());
          for (std::size_t i = 0; i < expected.size(); ++i) {
            EXPECT_EQ(got[i], expected[i]);
          }
        }
      }
    });
  }
}

// Packed rooted reduce == reduce_vec to each segment's own root.
TEST_P(BatchSweep, ReduceRootedMatchesUnfusedReference) {
  const int p = GetParam();
  for (std::uint64_t seed = 40; seed <= 48; ++seed) {
    const std::vector<SegmentSpec> specs = make_directory(seed, p);
    mp::run_ranks(p, kZero, [&](mp::Comm& comm) {
      const int r = comm.rank();
      mp::CollectiveBatch batch(comm);
      std::vector<std::size_t> ids;
      for (std::size_t s = 0; s < specs.size(); ++s) {
        ids.push_back(batch.add<std::int64_t>(
            int_values(seed * 1000 + s, r, specs[s].size), mp::SumOp{},
            std::int64_t{0}, specs[s].root));
      }
      batch.reduce_rooted();
      for (std::size_t s = 0; s < specs.size(); ++s) {
        const std::vector<std::int64_t> local =
            int_values(seed * 1000 + s, r, specs[s].size);
        const std::vector<std::int64_t> expected = mp::reduce_vec(
            comm, std::span<const std::int64_t>(local), mp::SumOp{},
            specs[s].root);
        if (r != specs[s].root) continue;  // only the root's view is defined
        const auto got = batch.view<std::int64_t>(ids[s]);
        ASSERT_EQ(got.size(), expected.size());
        for (std::size_t i = 0; i < expected.size(); ++i) {
          EXPECT_EQ(got[i], expected[i]) << "seed " << seed << " seg " << s;
        }
      }
    });
  }
}

// Packed rooted broadcast == bcast from each segment's own root.
TEST_P(BatchSweep, BcastRootedMatchesUnfusedReference) {
  const int p = GetParam();
  for (std::uint64_t seed = 60; seed <= 68; ++seed) {
    const std::vector<SegmentSpec> specs = make_directory(seed, p);
    mp::run_ranks(p, kZero, [&](mp::Comm& comm) {
      const int r = comm.rank();
      mp::CollectiveBatch batch(comm);
      std::vector<std::size_t> ids;
      for (std::size_t s = 0; s < specs.size(); ++s) {
        // Only the root's contribution matters; other ranks contribute a
        // correctly-sized placeholder, as the induction loop does.
        const std::vector<std::int64_t> contribution =
            r == specs[s].root
                ? int_values(seed * 1000 + s, specs[s].root, specs[s].size)
                : std::vector<std::int64_t>(specs[s].size, 0);
        ids.push_back(batch.add<std::int64_t>(
            std::span<const std::int64_t>(contribution), mp::SumOp{},
            std::int64_t{0}, specs[s].root));
      }
      batch.bcast_rooted();
      for (std::size_t s = 0; s < specs.size(); ++s) {
        const std::vector<std::int64_t> expected =
            int_values(seed * 1000 + s, specs[s].root, specs[s].size);
        const auto got = batch.view<std::int64_t>(ids[s]);
        ASSERT_EQ(got.size(), expected.size());
        for (std::size_t i = 0; i < expected.size(); ++i) {
          EXPECT_EQ(got[i], expected[i]) << "seed " << seed << " seg " << s;
        }
      }
    });
  }
}

// reset() keeps the batch reusable: run two different rounds back to back.
TEST_P(BatchSweep, ResetAllowsReuseAcrossRounds) {
  const int p = GetParam();
  mp::run_ranks(p, kZero, [&](mp::Comm& comm) {
    mp::CollectiveBatch batch(comm);
    const std::vector<std::int64_t> ones(5, 1);
    const std::size_t a =
        batch.add<std::int64_t>(std::span<const std::int64_t>(ones),
                                mp::SumOp{}, std::int64_t{0});
    batch.exscan();
    for (const std::int64_t v : batch.view<std::int64_t>(a)) {
      EXPECT_EQ(v, comm.rank());
    }
    batch.reset();
    EXPECT_EQ(batch.num_segments(), 0u);
    const std::size_t b = batch.add<std::int64_t>(
        std::span<const std::int64_t>(ones), mp::SumOp{});
    batch.allreduce();
    for (const std::int64_t v : batch.view<std::int64_t>(b)) {
      EXPECT_EQ(v, comm.size());
    }
  });
}

// Fused rounds cost O(1) collective calls regardless of segment count.
TEST(CollectiveBatch, OneCallPerRoundInStats) {
  const auto result = mp::run_ranks(4, kZero, [](mp::Comm& comm) {
    mp::CollectiveBatch batch(comm);
    const std::vector<std::int64_t> data(8, 1);
    for (int s = 0; s < 10; ++s) {
      batch.add<std::int64_t>(std::span<const std::int64_t>(data), mp::SumOp{},
                              std::int64_t{0}, s % comm.size());
    }
    batch.exscan();
  });
  const mp::CommStats& stats = result.ranks[0].stats;
  EXPECT_EQ(stats.calls_by_op[static_cast<int>(mp::CommOp::kScan)], 1u);
}

TEST(CollectiveBatch, EmptyBatchRoundsAreNoOps) {
  mp::run_ranks(3, kZero, [](mp::Comm& comm) {
    mp::CollectiveBatch batch(comm);
    batch.exscan();
    batch.allreduce();
    batch.reduce_rooted();
    batch.bcast_rooted();
    EXPECT_EQ(batch.packed_bytes(), 0u);
  });
}

TEST(CollectiveBatch, ViewRejectsElementSizeMismatch) {
  mp::run_ranks(1, kZero, [](mp::Comm& comm) {
    mp::CollectiveBatch batch(comm);
    const std::vector<std::int64_t> data(3, 1);
    const std::size_t id = batch.add<std::int64_t>(
        std::span<const std::int64_t>(data), mp::SumOp{});
    EXPECT_THROW((void)batch.view<std::int32_t>(id), std::invalid_argument);
  });
}

TEST(CollectiveBatch, AddRejectsBadRoot) {
  mp::run_ranks(2, kZero, [](mp::Comm& comm) {
    mp::CollectiveBatch batch(comm);
    const std::vector<std::int64_t> data(3, 1);
    EXPECT_THROW(batch.add<std::int64_t>(std::span<const std::int64_t>(data),
                                         mp::SumOp{}, std::int64_t{0}, 7),
                 std::invalid_argument);
  });
}

// Packed rounds ride the self-healing transport: drop, corrupt and duplicate
// faults injected into the fused frames heal via ack/retransmit and every
// rank still computes the exact unfused reference result.
TEST(CollectiveBatch, FusedRoundsHealInjectedWireFaults) {
  const int p = 4;
  const std::uint64_t seed = 7;
  const std::vector<SegmentSpec> specs = make_directory(seed, p);

  auto round = [&](mp::Comm& comm) {
    const int r = comm.rank();
    mp::CollectiveBatch batch(comm);
    std::vector<std::size_t> ids;
    for (std::size_t s = 0; s < specs.size(); ++s) {
      ids.push_back(batch.add<std::int64_t>(
          int_values(seed * 1000 + s, r, specs[s].size), mp::SumOp{},
          std::int64_t{0}));
    }
    batch.exscan();
    std::vector<std::int64_t> flat;
    for (std::size_t s = 0; s < specs.size(); ++s) {
      const auto view = batch.view<std::int64_t>(ids[s]);
      flat.insert(flat.end(), view.begin(), view.end());
    }
    batch.reset();
    for (std::size_t s = 0; s < specs.size(); ++s) {
      ids[s] = batch.add<std::int64_t>(
          int_values(seed * 2000 + s, r, specs[s].size), mp::SumOp{},
          std::int64_t{0});
    }
    batch.allreduce();
    for (std::size_t s = 0; s < specs.size(); ++s) {
      const auto view = batch.view<std::int64_t>(ids[s]);
      flat.insert(flat.end(), view.begin(), view.end());
    }
    return flat;
  };

  std::vector<std::vector<std::int64_t>> clean(static_cast<std::size_t>(p));
  mp::run_ranks(p, kZero, [&](mp::Comm& comm) {
    clean[static_cast<std::size_t>(comm.rank())] = round(comm);
  });

  mp::FaultPlan plan;
  plan.parse(
      "drop:r=0,op=1;drop:r=1,op=2;"
      "corrupt:r=2,op=1;corrupt:r=3,op=2;"
      "duplicate:r=0,op=3;duplicate:r=2,op=4");
  mp::RunOptions options;
  options.fault_plan = &plan;
  options.reliability.backoff_ms = 4.0;
  options.reliability.backoff_cap_ms = 40.0;
  std::vector<std::vector<std::int64_t>> healed(static_cast<std::size_t>(p));
  const mp::RunResult run = mp::try_run_ranks(
      p, kZero,
      [&](mp::Comm& comm) {
        healed[static_cast<std::size_t>(comm.rank())] = round(comm);
      },
      options);
  EXPECT_FALSE(run.failed()) << run.failure_message;
  EXPECT_GE(plan.drops_injected(), 1u);
  EXPECT_GE(run.transport.retransmits, 1u);
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(healed[static_cast<std::size_t>(r)],
              clean[static_cast<std::size_t>(r)])
        << "rank " << r;
  }
}

}  // namespace
}  // namespace scalparc
