// Serial CART/C4.5-style baseline: depth-first induction that re-sorts the
// continuous attributes *at every node* (the expensive approach §1 contrasts
// with the sort-once design of SLIQ/SPRINT/ScalParC).
//
// Uses the same gini criterion and candidate enumeration, so on most data it
// finds the same splits; it exists to (a) cross-check accuracy and (b) let
// the benches show the re-sorting cost the paper motivates against.
#pragma once

#include <cstdint>

#include "core/options.hpp"
#include "core/tree.hpp"
#include "data/dataset.hpp"

namespace scalparc::sprint {

struct CartStats {
  // Total elements passed through std::sort across all nodes — the cost
  // SLIQ-style presorting avoids.
  std::uint64_t sorted_elements = 0;
};

core::DecisionTree fit_serial_cart(const data::Dataset& training,
                                   const core::InductionOptions& options = {},
                                   CartStats* stats = nullptr);

}  // namespace scalparc::sprint
