// Scalable parallel sample sort (the paper's Presort phase).
//
// ScalParC sorts every continuous attribute list exactly once, using "the
// scalable parallel sample sort algorithm followed by a parallel shift
// operation" (§4). This header implements sample sort over any trivially
// copyable element type with a strict-weak-order comparator:
//
//   1. sort locally;
//   2. pick p-1 regular samples per rank, gather them, choose p-1 global
//      splitters from the sorted sample set;
//   3. partition local data by the splitters and exchange with one
//      all-to-all personalized communication;
//   4. merge the received sorted runs.
//
// The comparator must induce a total order for the exchange to be
// deterministic under duplicate keys; attribute lists use (value, rid).
#pragma once

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "mp/collectives.hpp"
#include "mp/comm.hpp"
#include "sort/partition_util.hpp"

namespace scalparc::sort {

namespace detail {

// Merges k sorted runs laid out contiguously in `data` with boundaries
// `offsets` (offsets.size() == k + 1) using pairwise std::inplace_merge.
template <typename T, typename Less>
void merge_runs(std::vector<T>& data, std::vector<std::size_t> offsets,
                Less less) {
  while (offsets.size() > 2) {
    std::vector<std::size_t> next;
    next.reserve(offsets.size() / 2 + 1);
    next.push_back(offsets.front());
    for (std::size_t i = 0; i + 2 < offsets.size(); i += 2) {
      std::inplace_merge(data.begin() + static_cast<std::ptrdiff_t>(offsets[i]),
                         data.begin() + static_cast<std::ptrdiff_t>(offsets[i + 1]),
                         data.begin() + static_cast<std::ptrdiff_t>(offsets[i + 2]),
                         less);
      next.push_back(offsets[i + 2]);
    }
    if (offsets.size() % 2 == 0) next.push_back(offsets.back());
    offsets = std::move(next);
  }
}

}  // namespace detail

// Sorts the union of all ranks' `local` data. On return, every rank holds a
// sorted run and runs are globally ordered by rank (rank 0 holds the
// smallest elements). Element counts per rank are data-dependent; use
// rebalance() afterwards to restore an exact block distribution.
template <mp::WireType T, typename Less>
std::vector<T> sample_sort(mp::Comm& comm, std::vector<T> local, Less less) {
  const int p = comm.size();

  std::sort(local.begin(), local.end(), less);
  if (!local.empty()) {
    comm.add_work(static_cast<double>(local.size()) *
                  std::log2(static_cast<double>(local.size()) + 1.0));
  }
  if (p == 1) return local;

  // Regular sampling: p-1 samples per rank.
  std::vector<T> samples;
  samples.reserve(static_cast<std::size_t>(p - 1));
  for (int i = 1; i < p; ++i) {
    if (local.empty()) break;
    const std::size_t idx =
        (static_cast<std::size_t>(i) * local.size()) / static_cast<std::size_t>(p);
    samples.push_back(local[std::min(idx, local.size() - 1)]);
  }
  std::vector<T> all_samples =
      mp::allgatherv_concat(comm, std::span<const T>(samples));
  std::sort(all_samples.begin(), all_samples.end(), less);

  // p-1 splitters chosen regularly from the gathered samples.
  std::vector<T> splitters;
  splitters.reserve(static_cast<std::size_t>(p - 1));
  if (!all_samples.empty()) {
    for (int i = 1; i < p; ++i) {
      const std::size_t idx = (static_cast<std::size_t>(i) * all_samples.size()) /
                              static_cast<std::size_t>(p);
      splitters.push_back(all_samples[std::min(idx, all_samples.size() - 1)]);
    }
  }

  // Partition local data into p destination buckets by splitter.
  std::vector<std::vector<T>> sendbufs(static_cast<std::size_t>(p));
  if (splitters.empty()) {
    sendbufs[0] = std::move(local);
  } else {
    std::size_t begin = 0;
    for (int d = 0; d < p; ++d) {
      std::size_t end;
      if (d == p - 1) {
        end = local.size();
      } else {
        const auto it = std::upper_bound(
            local.begin() + static_cast<std::ptrdiff_t>(begin), local.end(),
            splitters[static_cast<std::size_t>(d)], less);
        end = static_cast<std::size_t>(it - local.begin());
      }
      sendbufs[static_cast<std::size_t>(d)]
          .assign(local.begin() + static_cast<std::ptrdiff_t>(begin),
                  local.begin() + static_cast<std::ptrdiff_t>(end));
      begin = end;
    }
    local.clear();
  }

  std::vector<std::vector<T>> recvbufs = mp::alltoallv(comm, sendbufs);

  // Concatenate the p sorted runs and merge them.
  std::vector<T> merged;
  std::vector<std::size_t> run_offsets;
  run_offsets.reserve(recvbufs.size() + 1);
  run_offsets.push_back(0);
  std::size_t total = 0;
  for (const auto& run : recvbufs) total += run.size();
  merged.reserve(total);
  for (auto& run : recvbufs) {
    merged.insert(merged.end(), run.begin(), run.end());
    run_offsets.push_back(merged.size());
  }
  detail::merge_runs(merged, std::move(run_offsets), less);
  comm.add_work(static_cast<double>(merged.size()) *
                std::log2(static_cast<double>(p) + 1.0));
  return merged;
}

}  // namespace scalparc::sort
