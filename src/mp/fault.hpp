// Deterministic fault injection for the SPMD runtime.
//
// A FaultPlan is a list of actions, each pinned to a rank and a trigger:
// either the Nth communication operation on that rank (sends and receives
// are counted together, 1-based) or a level boundary of the induction loop.
// The Hub holds the plan; every Comm consults it:
//
//   kill     throw InjectedFault (the rank "crashes"; peers unwind via
//            channel poisoning exactly as for any real failure)
//   corrupt  flip bits in an outgoing payload *after* the CRC frame
//            checksum is computed, so the receiver detects CorruptMessage
//   delay    sleep the rank's thread for a fixed wall-clock duration
//   drop     swallow an outgoing message (the classic lost-message fault;
//            healed in-band by the ack/retransmit layer when it is enabled,
//            otherwise the blocked receiver is reaped by the deadlock
//            detector)
//   duplicate  push a second copy of an outgoing message with the same
//            sequence number (retransmit-race fault; the receiver dedupes)
//   slow     throttle a rank for the whole run (gray failure): realized
//            work sleeps `factor` times longer and every comm operation
//            pays a small wall-clock pause. The rank stays correct and
//            keeps progressing — it is just persistently slower, the
//            signature the straggler detector exists to classify.
//
// Everything is deterministic: triggers are exact (rank, op) / (rank, level)
// matches and corruption bit positions derive from a seed hashed with the
// trigger, so a fixed plan replays identically on every run.
//
// A FaultSchedule chains plans across recovery attempts: plan(0) faults the
// initial run, plan(1) the first recovery attempt, and so on — the substrate
// for compound faults (a second kill *during* recovery, a kill right after a
// grow admit) that a single transient plan cannot express.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace scalparc::mp {

// Thrown on the faulty rank itself; run_ranks reports it as the run's
// primary failure (unlike RankAborted, which marks secondary victims).
struct InjectedFault : std::runtime_error {
  explicit InjectedFault(const std::string& what) : std::runtime_error(what) {}
};

enum class FaultKind : int { kKill, kCorrupt, kDelay, kDrop, kDuplicate, kSlow };

struct FaultAction {
  FaultKind kind = FaultKind::kKill;
  int rank = 0;
  // Trigger: exactly one of `op` (Nth comm operation on `rank`, 1-based)
  // or `level` (induction level boundary) is >= 0. Exception: kSlow is a
  // whole-run condition and takes neither trigger.
  std::int64_t op = -1;
  int level = -1;
  // kDelay only: wall-clock sleep in milliseconds.
  double delay_ms = 0.0;
  // kSlow only: wall-clock throttle multiplier (> 1).
  double factor = 1.0;
};

// Immutable after setup; shared (const) by all rank threads of a run. The
// injection counters are atomic so tests can assert a fault actually fired.
class FaultPlan {
 public:
  FaultPlan() = default;
  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  void add(const FaultAction& action) { actions_.push_back(action); }

  // Parses a ';'-separated spec and appends its actions, e.g.
  //   kill:r=2,level=3
  //   kill:r=1,op=50 ; corrupt:r=0,op=10 ; delay:r=1,op=5,ms=20 ; drop:r=0,op=3
  //   duplicate:r=1,op=4
  // Throws std::invalid_argument on malformed input, including an action
  // that repeats an earlier (kind, rank, trigger) — a duplicated entry would
  // otherwise silently double-count. Diagnostics pinpoint the failure: the
  // 1-based entry index, the 1-based column within the spec, and (for field
  // errors) the offending field text.
  void parse(const std::string& spec);

  void set_seed(std::uint64_t seed) { seed_ = seed; }
  std::uint64_t seed() const { return seed_; }

  bool empty() const { return actions_.empty(); }
  const std::vector<FaultAction>& actions() const { return actions_; }

  // --- queries from the runtime (hot path: cheap linear scan of a tiny
  // action list) --------------------------------------------------------
  bool kills_at_op(int rank, std::int64_t op) const;
  bool kills_at_level(int rank, int level) const;
  bool corrupts_at_op(int rank, std::int64_t op) const;
  bool drops_at_op(int rank, std::int64_t op) const;
  bool duplicates_at_op(int rank, std::int64_t op) const;
  double delay_ms_at_op(int rank, std::int64_t op) const;
  // Throttle multiplier for `rank` (1.0 when the plan carries no slow fault
  // for it). Whole-run: no op/level trigger.
  double slow_factor_for(int rank) const;

  // Flips 1..3 payload bits at positions derived from (seed, rank, op).
  // No-op on an empty payload.
  void corrupt_payload(std::span<std::byte> payload, int rank,
                       std::int64_t op) const;

  // Injection counters (for tests and diagnostics).
  std::uint64_t kills_injected() const { return kills_.load(); }
  std::uint64_t corruptions_injected() const { return corruptions_.load(); }
  std::uint64_t delays_injected() const { return delays_.load(); }
  std::uint64_t drops_injected() const { return drops_.load(); }
  std::uint64_t duplicates_injected() const { return duplicates_.load(); }
  void count_kill() const { kills_.fetch_add(1, std::memory_order_relaxed); }
  void count_delay() const { delays_.fetch_add(1, std::memory_order_relaxed); }
  void count_drop() const { drops_.fetch_add(1, std::memory_order_relaxed); }
  void count_duplicate() const {
    duplicates_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  std::vector<FaultAction> actions_;
  std::uint64_t seed_ = 1;
  mutable std::atomic<std::uint64_t> kills_{0};
  mutable std::atomic<std::uint64_t> corruptions_{0};
  mutable std::atomic<std::uint64_t> delays_{0};
  mutable std::atomic<std::uint64_t> drops_{0};
  mutable std::atomic<std::uint64_t> duplicates_{0};
};

// An ordered sequence of FaultPlans, one per recovery attempt: attempt 0 is
// the initial run, attempt i the i-th retry. Plans past the end are clean
// (nullptr), so every schedule eventually lets the run finish. Plans share
// the schedule's seed. Immutable after setup, like FaultPlan.
class FaultSchedule {
 public:
  FaultSchedule() = default;
  FaultSchedule(const FaultSchedule&) = delete;
  FaultSchedule& operator=(const FaultSchedule&) = delete;
  // Movable (unlike FaultPlan): generators build a schedule and hand it to
  // the soak driver; the stored plans stay put on the heap, so FaultPlan
  // pointers handed out by plan() survive the move.
  FaultSchedule(FaultSchedule&&) = default;
  FaultSchedule& operator=(FaultSchedule&&) = default;

  // Appends an empty plan for the next attempt and returns it for setup.
  FaultPlan& add_plan();

  // Parses a '|'-separated sequence of per-attempt plan specs, e.g.
  //   kill:r=2,level=2 | kill:r=1,level=3
  // (kill rank 2 in the initial run, then kill rank 1 during the recovery
  // attempt). An empty segment is a deliberately clean attempt. Diagnostics
  // name the attempt index on top of FaultPlan::parse's entry/column.
  void parse(const std::string& spec);

  void set_seed(std::uint64_t seed);
  std::uint64_t seed() const { return seed_; }

  bool empty() const { return plans_.empty(); }
  int size() const { return static_cast<int>(plans_.size()); }
  // Plan for the given attempt; nullptr when the attempt is past the end or
  // the stored plan is empty (both mean "run clean").
  const FaultPlan* plan(int attempt) const;

 private:
  std::vector<std::unique_ptr<FaultPlan>> plans_;
  std::uint64_t seed_ = 1;
};

}  // namespace scalparc::mp
