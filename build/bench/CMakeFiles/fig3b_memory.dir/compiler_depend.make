# Empty compiler generated dependencies file for fig3b_memory.
# This may be replaced when dependencies are built.
