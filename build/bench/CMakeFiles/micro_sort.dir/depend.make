# Empty dependencies file for micro_sort.
# This may be replaced when dependencies are built.
