# Empty dependencies file for ooc_passes.
# This may be replaced when dependencies are built.
