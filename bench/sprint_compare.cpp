// Comparison C1: ScalParC vs parallel SPRINT on the axis the paper argues
// analytically (§2, §3.2): the splitting phase's per-processor communication
// volume and hash-table memory.
//
//   parallel SPRINT: replicated rid->child table  => O(N)   per processor
//   ScalParC:        distributed node table       => O(N/p) per processor
//
// Both runs use the identical split-determination code and produce the
// identical tree; only the splitting-phase strategy differs, so the gap is
// attributable exactly to the paper's contribution.
//
//   ./sprint_compare [--records N] [--procs 2,4,...] [--csv DIR]
#include <cstdio>

#include "bench_common.hpp"
#include "sprint/parallel_sprint.hpp"

int main(int argc, char** argv) {
  using namespace scalparc;
  const util::CliArgs args(argc, argv);
  const std::uint64_t records =
      static_cast<std::uint64_t>(args.get_int("records", 100000));
  const auto procs = args.get_int_list("procs", {2, 4, 8, 16, 32, 64});
  const auto generator = bench::paper_generator();
  const auto controls = bench::paper_controls();
  const auto model = mp::CostModel::cray_t3d();

  bench::CsvWriter csv(
      args, "sprint_compare.csv",
      "procs,scalparc_mb_sent_per_rank,sprint_mb_sent_per_rank,"
      "scalparc_table_mb_per_rank,sprint_table_mb_per_rank,"
      "scalparc_modeled_s,sprint_modeled_s");

  std::printf("C1: ScalParC vs parallel SPRINT, %llu records\n\n",
              static_cast<unsigned long long>(records));
  std::printf("%6s | %12s %12s | %12s %12s | %11s %11s\n", "procs",
              "ScalParC", "SPRINT", "ScalParC", "SPRINT", "ScalParC", "SPRINT");
  std::printf("%6s | %12s %12s | %12s %12s | %11s %11s\n", "",
              "MB sent/rank", "MB sent/rank", "table MB/rk", "table MB/rk",
              "modeled s", "modeled s");

  for (const std::int64_t p : procs) {
    const auto scalparc = core::ScalParC::fit_generated(
        generator, records, static_cast<int>(p), controls, model);
    auto sprint_controls = controls;
    const auto sprint = sprint::fit_parallel_sprint_generated(
        generator, records, static_cast<int>(p), sprint_controls, model);

    const auto table_mb = [](const core::FitReport& report) {
      std::size_t peak = 0;
      for (const auto& r : report.run.ranks) {
        peak = std::max(peak, r.meter.peak_bytes(util::MemCategory::kNodeTable));
      }
      return static_cast<double>(peak) / 1e6;
    };
    const double a_sent =
        static_cast<double>(scalparc.run.max_bytes_sent_per_rank()) / 1e6;
    const double b_sent =
        static_cast<double>(sprint.run.max_bytes_sent_per_rank()) / 1e6;
    const double a_table = table_mb(scalparc);
    const double b_table = table_mb(sprint);

    std::printf("%6lld | %12.3f %12.3f | %12.3f %12.3f | %11.3f %11.3f\n",
                static_cast<long long>(p), a_sent, b_sent, a_table, b_table,
                scalparc.run.modeled_seconds, sprint.run.modeled_seconds);
    csv.row("%lld,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f", static_cast<long long>(p),
            a_sent, b_sent, a_table, b_table, scalparc.run.modeled_seconds,
            sprint.run.modeled_seconds);

    if (!scalparc.tree.same_structure(sprint.tree)) {
      std::printf("ERROR: trees differ at p=%lld\n", static_cast<long long>(p));
      return 1;
    }
  }

  std::printf(
      "\nExpected shape: ScalParC's table memory and sent bytes per rank fall\n"
      "roughly as 1/p; SPRINT's table memory stays flat at O(N) and its sent\n"
      "bytes per rank do not shrink, so the modeled-time gap widens with p.\n");
  std::printf("\nCSV written to %s\n", csv.path().c_str());
  return 0;
}
