// Histogram-quantized split finding (SplitMode::kHistogram / kVoting):
// binner determinism properties, histogram split evaluation against
// hand-checkable data, processor-count invariance of histogram-mode trees,
// voting-mode determinism and degeneracies, and checkpoint interop — kill +
// resume under histogram mode, cross-mode resume in both directions, and
// shrink recovery.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <numeric>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "core/histogram.hpp"
#include "core/scalparc.hpp"
#include "core/split_finder.hpp"
#include "core/tree_io.hpp"
#include "data/synthetic.hpp"
#include "mp/fault.hpp"
#include "mp/runtime.hpp"

namespace scalparc {
namespace {

namespace fs = std::filesystem;

using core::InductionControls;
using core::ScalParC;
using core::SplitMode;
using core::ValueRange;
using data::GeneratorConfig;
using data::LabelFunction;
using data::QuestGenerator;
using data::Schema;

const mp::CostModel kZero = mp::CostModel::zero();

std::string tree_bytes(const core::DecisionTree& tree) {
  std::ostringstream out;
  core::save_tree(tree, out);
  return out.str();
}

data::Dataset make_training(std::uint64_t records, std::uint64_t seed = 3,
                            LabelFunction function = LabelFunction::kF2) {
  GeneratorConfig config;
  config.seed = seed;
  config.function = function;
  config.num_attributes = 7;
  return QuestGenerator(config).generate(0, records);
}

struct TempDir {
  std::string path;
  explicit TempDir(const std::string& stem)
      : path((fs::temp_directory_path() /
              (stem + "_" + std::to_string(::getpid()) + "_" +
               std::to_string(counter_++)))
                 .string()) {}
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  static inline int counter_ = 0;
};

void check_tree_invariants(const core::DecisionTree& tree) {
  for (int id = 0; id < tree.num_nodes(); ++id) {
    const core::TreeNode& node = tree.node(id);
    const std::int64_t histogram_total = std::accumulate(
        node.class_counts.begin(), node.class_counts.end(), std::int64_t{0});
    EXPECT_EQ(histogram_total, node.num_records) << "node " << id;
    if (node.is_leaf) {
      EXPECT_TRUE(node.children.empty()) << "node " << id;
      continue;
    }
    EXPECT_EQ(static_cast<int>(node.children.size()), node.split.num_children)
        << "node " << id;
    std::int64_t child_records = 0;
    std::vector<std::int64_t> child_histogram(node.class_counts.size(), 0);
    for (const int child_id : node.children) {
      const core::TreeNode& child = tree.node(child_id);
      EXPECT_EQ(child.depth, node.depth + 1) << "node " << id;
      EXPECT_GT(child.num_records, 0) << "child of node " << id;
      child_records += child.num_records;
      for (std::size_t j = 0; j < child_histogram.size(); ++j) {
        child_histogram[j] += child.class_counts[j];
      }
    }
    EXPECT_EQ(child_records, node.num_records) << "node " << id;
    EXPECT_EQ(child_histogram, node.class_counts) << "node " << id;
  }
}

InductionControls histogram_controls(int bins = 64, int depth = 12) {
  InductionControls controls;
  controls.options.max_depth = depth;
  controls.options.split_mode = SplitMode::kHistogram;
  controls.options.hist_bins = bins;
  return controls;
}

// ---------------------------------------------------------------------------
// Binner properties
// ---------------------------------------------------------------------------

TEST(HistogramBinner, DeterministicMonotoneAndClamped) {
  const ValueRange range{.lo = -4.0, .hi = 12.0};
  const int bins = 16;
  EXPECT_EQ(core::histogram_bin_of(range.lo, range, bins), 0);
  EXPECT_EQ(core::histogram_bin_of(range.hi, range, bins), bins - 1);
  int prev = 0;
  std::mt19937_64 rng(7);
  std::vector<double> values;
  for (int i = 0; i < 4000; ++i) {
    values.push_back(std::uniform_real_distribution<double>(range.lo,
                                                            range.hi)(rng));
  }
  std::sort(values.begin(), values.end());
  for (const double v : values) {
    const int b = core::histogram_bin_of(v, range, bins);
    EXPECT_GE(b, prev) << v;  // monotone in v
    EXPECT_GE(b, 0);
    EXPECT_LT(b, bins);
    // Identical doubles must land in identical bins (same expression, no
    // environment dependence) — the cross-rank determinism contract.
    EXPECT_EQ(b, core::histogram_bin_of(v, range, bins));
    prev = b;
  }
}

TEST(HistogramBinner, DegenerateAndExtremeRanges) {
  const int bins = 8;
  // Single-valued node: everything in bin 0.
  const ValueRange flat{.lo = 5.0, .hi = 5.0};
  EXPECT_EQ(core::histogram_bin_of(5.0, flat, bins), 0);
  // Empty range (identity element of RangeOp) never sees values, but the
  // binner must still be total.
  EXPECT_EQ(core::histogram_bin_of(0.0, ValueRange{}, bins), 0);
  // Huge magnitudes do not overflow the bin index.
  const double big = std::numeric_limits<double>::max() / 4;
  const ValueRange wide{.lo = -big, .hi = big};
  EXPECT_EQ(core::histogram_bin_of(-big, wide, bins), 0);
  EXPECT_EQ(core::histogram_bin_of(big, wide, bins), bins - 1);
  EXPECT_EQ(core::histogram_bin_of(0.0, wide, bins), bins / 2);
}

TEST(HistogramBinner, RangeOpMergesLikeMinMax) {
  core::RangeOp op;
  const ValueRange a{.lo = 1.0, .hi = 3.0};
  const ValueRange b{.lo = -2.0, .hi = 2.0};
  const ValueRange merged = op(a, b);
  EXPECT_EQ(merged.lo, -2.0);
  EXPECT_EQ(merged.hi, 3.0);
  // Identity on either side.
  EXPECT_EQ(op(a, ValueRange{}).lo, a.lo);
  EXPECT_EQ(op(ValueRange{}, a).hi, a.hi);
  EXPECT_TRUE(ValueRange{}.empty());
  EXPECT_FALSE(merged.empty());
}

TEST(HistogramAccumulate, CountsSumToRecordsAndMinsAreReal) {
  std::mt19937_64 rng(41);
  const int bins = 32;
  const int classes = 3;
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 1 + static_cast<int>(rng() % 500);
    std::vector<double> values(static_cast<std::size_t>(n));
    std::vector<std::int32_t> cls(static_cast<std::size_t>(n));
    ValueRange range;
    for (int i = 0; i < n; ++i) {
      // Mix duplicates and extremes in.
      const int shape = static_cast<int>(rng() % 4);
      double v = std::uniform_real_distribution<double>(-1e3, 1e3)(rng);
      if (shape == 0) v = 42.0;
      if (shape == 1) v = -1e9;
      values[static_cast<std::size_t>(i)] = v;
      cls[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(rng() % 3);
      range.lo = std::min(range.lo, v);
      range.hi = std::max(range.hi, v);
    }
    std::vector<std::int64_t> counts(
        static_cast<std::size_t>(bins * classes), 0);
    std::vector<double> bin_min(static_cast<std::size_t>(bins),
                                std::numeric_limits<double>::infinity());
    core::histogram_accumulate(values, cls, range, bins, classes, counts,
                               bin_min);
    EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), std::int64_t{0}),
              n);
    for (int b = 0; b < bins; ++b) {
      std::int64_t in_bin = 0;
      for (int j = 0; j < classes; ++j) {
        in_bin += counts[static_cast<std::size_t>(b * classes + j)];
      }
      if (in_bin == 0) {
        EXPECT_TRUE(std::isinf(bin_min[static_cast<std::size_t>(b)]));
        continue;
      }
      // The recorded minimum is an actual data value of that bin.
      const double lo = bin_min[static_cast<std::size_t>(b)];
      EXPECT_EQ(core::histogram_bin_of(lo, range, bins), b);
      EXPECT_NE(std::find(values.begin(), values.end(), lo), values.end());
    }
  }
}

TEST(HistogramSplit, SeparatedClustersSplitAtClusterBoundary) {
  // Class 0 clustered near 0, class 1 near 100: the best histogram split
  // must separate them perfectly, with a threshold that is a real data
  // value of the upper cluster (the bin-min technique).
  const int bins = 16;
  const int classes = 2;
  std::vector<double> values;
  std::vector<std::int32_t> cls;
  for (int i = 0; i < 20; ++i) {
    values.push_back(static_cast<double>(i) * 0.1);
    cls.push_back(0);
    values.push_back(100.0 + static_cast<double>(i) * 0.1);
    cls.push_back(1);
  }
  ValueRange range;
  for (const double v : values) {
    range.lo = std::min(range.lo, v);
    range.hi = std::max(range.hi, v);
  }
  std::vector<std::int64_t> counts(static_cast<std::size_t>(bins * classes),
                                   0);
  std::vector<double> bin_min(static_cast<std::size_t>(bins),
                              std::numeric_limits<double>::infinity());
  core::histogram_accumulate(values, cls, range, bins, classes, counts,
                             bin_min);
  const std::vector<std::int64_t> totals = {20, 20};
  core::SplitCandidate best;
  core::best_histogram_split(counts, bin_min, totals, bins,
                             core::SplitCriterion::kGini, 0, best);
  ASSERT_TRUE(best.valid());
  EXPECT_EQ(best.attribute, 0);
  EXPECT_DOUBLE_EQ(best.gini, 0.0);  // perfect separation
  EXPECT_DOUBLE_EQ(best.threshold, 100.0);  // min of the upper cluster's bin
}

// ---------------------------------------------------------------------------
// Histogram-mode induction
// ---------------------------------------------------------------------------

TEST(HistogramInduction, TreeIdenticalForAllProcessorCounts) {
  const data::Dataset training = make_training(600, 31);
  const InductionControls controls = histogram_controls();
  const core::FitReport reference = ScalParC::fit(training, 1, controls, kZero);
  EXPECT_EQ(reference.stats.split_mode, SplitMode::kHistogram);
  check_tree_invariants(reference.tree);
  const std::string expected = tree_bytes(reference.tree);
  for (const int p : {2, 4, 8}) {
    EXPECT_EQ(tree_bytes(ScalParC::fit(training, p, controls, kZero).tree),
              expected)
        << "p=" << p;
  }
}

TEST(HistogramInduction, DuplicateHeavyDataInvariantAcrossP) {
  // Quantize every continuous value onto a tiny grid so bins and records
  // collide heavily; determinism must survive ties.
  data::Dataset raw = make_training(500, 9);
  data::Dataset training(raw.schema());
  std::vector<double> cont;
  std::vector<std::int32_t> cat;
  for (std::size_t r = 0; r < raw.num_records(); ++r) {
    cont.clear();
    cat.clear();
    for (int a = 0; a < raw.schema().num_attributes(); ++a) {
      if (raw.schema().attribute(a).kind == data::AttributeKind::kContinuous) {
        cont.push_back(std::floor(raw.continuous_column(a)[r] / 5000.0));
      } else {
        cat.push_back(raw.categorical_column(a)[r]);
      }
    }
    training.append(cont, cat, raw.labels()[r]);
  }
  const InductionControls controls = histogram_controls(16, 8);
  const std::string expected =
      tree_bytes(ScalParC::fit(training, 1, controls, kZero).tree);
  for (const int p : {3, 8}) {
    EXPECT_EQ(tree_bytes(ScalParC::fit(training, p, controls, kZero).tree),
              expected)
        << "p=" << p;
  }
}

TEST(HistogramInduction, CategoricalOnlyDataMatchesExactEngine) {
  // With no continuous attributes there is nothing to quantize: count
  // matrices are exact in both engines, so the trees must agree.
  Schema schema({Schema::categorical("a", 5), Schema::categorical("b", 3)}, 2);
  data::Dataset training(schema);
  std::mt19937_64 rng(11);
  for (int i = 0; i < 400; ++i) {
    const std::int32_t a = static_cast<std::int32_t>(rng() % 5);
    const std::int32_t b = static_cast<std::int32_t>(rng() % 3);
    const std::int32_t code[] = {a, b};
    const int cls = (a >= 3) != (b == 1) ? 1 : 0;
    training.append({}, code, cls);
  }
  InductionControls exact;
  exact.options.max_depth = 8;
  InductionControls hist = exact;
  hist.options.split_mode = SplitMode::kHistogram;
  const std::string expected =
      tree_bytes(ScalParC::fit(training, 4, exact, kZero).tree);
  EXPECT_EQ(tree_bytes(ScalParC::fit(training, 4, hist, kZero).tree),
            expected);
}

TEST(HistogramInduction, FineBinsOnGridDataMatchesExactEngine) {
  // Integer-valued continuous data with fewer distinct values than bins:
  // every distinct value gets its own bin, bin minima enumerate exactly the
  // candidate thresholds the exact engine scans, so the trees coincide.
  Schema schema({Schema::continuous("x"), Schema::continuous("y")}, 2);
  data::Dataset training(schema);
  std::mt19937_64 rng(17);
  for (int i = 0; i < 300; ++i) {
    const double x = static_cast<double>(rng() % 12);
    const double y = static_cast<double>(rng() % 12);
    const double row[] = {x, y};
    const int cls = x + 2 * y > 16 ? 1 : 0;
    training.append(row, {}, cls);
  }
  InductionControls exact;
  exact.options.max_depth = 10;
  InductionControls hist = exact;
  hist.options.split_mode = SplitMode::kHistogram;
  hist.options.hist_bins = 256;
  const std::string expected =
      tree_bytes(ScalParC::fit(training, 3, exact, kZero).tree);
  EXPECT_EQ(tree_bytes(ScalParC::fit(training, 3, hist, kZero).tree),
            expected);
}

TEST(HistogramInduction, AccuracyCloseToExact) {
  const data::Dataset training = make_training(1500, 5);
  InductionControls exact;
  exact.options.max_depth = 10;
  const double exact_acc =
      ScalParC::fit(training, 4, exact, kZero).tree.accuracy(training);
  const double hist_acc =
      ScalParC::fit(training, 4, histogram_controls(64, 10), kZero)
          .tree.accuracy(training);
  EXPECT_GE(hist_acc, exact_acc - 0.05);
}

TEST(HistogramInduction, RejectsBadOptions) {
  const data::Dataset training = make_training(100);
  InductionControls controls = histogram_controls();
  controls.options.hist_bins = 1;
  EXPECT_THROW(ScalParC::fit(training, 2, controls, kZero),
               std::invalid_argument);
  InductionControls voting;
  voting.options.split_mode = SplitMode::kVoting;
  voting.options.top_k = 0;
  EXPECT_THROW(ScalParC::fit(training, 2, voting, kZero),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Voting mode
// ---------------------------------------------------------------------------

TEST(VotingInduction, DeterministicAtFixedWorldSize) {
  const data::Dataset training = make_training(800, 21);
  InductionControls controls = histogram_controls(32, 10);
  controls.options.split_mode = SplitMode::kVoting;
  controls.options.top_k = 2;
  const core::FitReport first = ScalParC::fit(training, 4, controls, kZero);
  EXPECT_EQ(first.stats.split_mode, SplitMode::kVoting);
  check_tree_invariants(first.tree);
  const core::FitReport second = ScalParC::fit(training, 4, controls, kZero);
  EXPECT_EQ(tree_bytes(first.tree), tree_bytes(second.tree));
}

TEST(VotingInduction, FullTopKEqualsHistogramMode) {
  // With top_k >= the attribute count every attribute is elected, so
  // voting degenerates to histogram mode exactly.
  const data::Dataset training = make_training(600, 13);
  InductionControls hist = histogram_controls(32, 10);
  InductionControls voting = hist;
  voting.options.split_mode = SplitMode::kVoting;
  voting.options.top_k = training.schema().num_attributes();
  for (const int p : {1, 4}) {
    EXPECT_EQ(tree_bytes(ScalParC::fit(training, p, voting, kZero).tree),
              tree_bytes(ScalParC::fit(training, p, hist, kZero).tree))
        << "p=" << p;
  }
}

TEST(VotingInduction, AccuracyCloseToExact) {
  const data::Dataset training = make_training(1500, 37);
  InductionControls exact;
  exact.options.max_depth = 10;
  const double exact_acc =
      ScalParC::fit(training, 4, exact, kZero).tree.accuracy(training);
  InductionControls voting = histogram_controls(64, 10);
  voting.options.split_mode = SplitMode::kVoting;
  voting.options.top_k = 2;
  const double voting_acc =
      ScalParC::fit(training, 4, voting, kZero).tree.accuracy(training);
  EXPECT_GE(voting_acc, exact_acc - 0.08);
}

// ---------------------------------------------------------------------------
// Checkpoint interop
// ---------------------------------------------------------------------------

TEST(HistogramRecovery, KillAndResumeReproducesCleanTree) {
  const data::Dataset training = make_training(3000, 3);
  InductionControls controls = histogram_controls(64, 6);
  const core::FitReport clean = ScalParC::fit(training, 4, controls, kZero);
  ASSERT_GE(clean.stats.levels, 4);
  const std::string expected = tree_bytes(clean.tree);

  TempDir dir("scalparc_hist_kill");
  mp::FaultPlan plan;
  plan.parse("kill:r=2,level=3");
  mp::RunOptions options;
  options.fault_plan = &plan;
  InductionControls ckpt = controls;
  ckpt.checkpoint.directory = dir.path;
  const core::RecoveryReport report =
      ScalParC::fit_with_recovery(training, 4, ckpt, kZero, options);
  EXPECT_EQ(report.attempts, 2);
  ASSERT_EQ(report.events.size(), 1u);
  EXPECT_EQ(report.events[0].failed_rank, 2);
  EXPECT_EQ(report.events[0].resumed_level, 3);
  EXPECT_EQ(tree_bytes(report.fit.tree), expected);
}

TEST(HistogramRecovery, ShrinkRecoveryReproducesCleanTree) {
  // Histogram-mode trees are world-size invariant, so even continuing with
  // fewer ranks after the shrink must reproduce the clean tree exactly.
  const data::Dataset training = make_training(2500, 3);
  InductionControls controls = histogram_controls(64, 6);
  const std::string expected =
      tree_bytes(ScalParC::fit(training, 4, controls, kZero).tree);

  TempDir dir("scalparc_hist_shrink");
  mp::FaultPlan plan;
  plan.parse("kill:r=1,level=2");
  mp::RunOptions options;
  options.fault_plan = &plan;
  InductionControls ckpt = controls;
  ckpt.checkpoint.directory = dir.path;
  const core::RecoveryReport report = ScalParC::fit_with_recovery(
      training, 4, ckpt, kZero, options, 3, core::RecoveryPolicy::kShrink);
  ASSERT_EQ(report.events.size(), 1u);
  EXPECT_EQ(report.events[0].policy, core::RecoveryPolicy::kShrink);
  EXPECT_EQ(report.events[0].ranks_after, 3);
  EXPECT_EQ(tree_bytes(report.fit.tree), expected);
}

TEST(CrossModeResume, ExactCheckpointResumesUnderHistogram) {
  const data::Dataset training = make_training(2000, 3);
  InductionControls exact;
  exact.options.max_depth = 6;
  TempDir dir("scalparc_cross_eh");
  InductionControls ckpt = exact;
  ckpt.checkpoint.directory = dir.path;
  mp::FaultPlan plan;
  plan.parse("kill:r=1,level=3");
  mp::RunOptions options;
  options.fault_plan = &plan;
  EXPECT_THROW(ScalParC::fit(training, 4, ckpt, kZero, options),
               mp::InjectedFault);

  // Same fingerprint (split mode excluded), different engine: the resume
  // must load the exact engine's checkpoint and finish under histogram
  // quantization.
  InductionControls resume = ckpt;
  resume.options.split_mode = SplitMode::kHistogram;
  resume.options.hist_bins = 64;
  const core::FitReport resumed =
      ScalParC::resume_from_checkpoint(training, 4, resume, kZero);
  EXPECT_EQ(resumed.stats.split_mode, SplitMode::kHistogram);
  EXPECT_GE(resumed.stats.levels, 3);
  check_tree_invariants(resumed.tree);
  EXPECT_GE(resumed.tree.accuracy(training), 0.7);
}

TEST(CrossModeResume, HistogramCheckpointResumesUnderExact) {
  const data::Dataset training = make_training(2000, 3);
  InductionControls hist = histogram_controls(64, 6);
  TempDir dir("scalparc_cross_he");
  InductionControls ckpt = hist;
  ckpt.checkpoint.directory = dir.path;
  mp::FaultPlan plan;
  plan.parse("kill:r=3,level=3");
  mp::RunOptions options;
  options.fault_plan = &plan;
  EXPECT_THROW(ScalParC::fit(training, 4, ckpt, kZero, options),
               mp::InjectedFault);

  InductionControls resume = ckpt;
  resume.options.split_mode = SplitMode::kExact;
  const core::FitReport resumed =
      ScalParC::resume_from_checkpoint(training, 4, resume, kZero);
  EXPECT_EQ(resumed.stats.split_mode, SplitMode::kExact);
  EXPECT_GE(resumed.stats.levels, 3);
  check_tree_invariants(resumed.tree);
  EXPECT_GE(resumed.tree.accuracy(training), 0.7);
}

TEST(CrossModeResume, SameModeExplicitResumeIsByteIdentical) {
  const data::Dataset training = make_training(2000, 3);
  InductionControls controls = histogram_controls(64, 6);
  const std::string expected =
      tree_bytes(ScalParC::fit(training, 4, controls, kZero).tree);

  TempDir dir("scalparc_hist_resume");
  InductionControls ckpt = controls;
  ckpt.checkpoint.directory = dir.path;
  mp::FaultPlan plan;
  plan.parse("kill:r=0,level=2");
  mp::RunOptions options;
  options.fault_plan = &plan;
  EXPECT_THROW(ScalParC::fit(training, 4, ckpt, kZero, options),
               mp::InjectedFault);
  const core::FitReport resumed =
      ScalParC::resume_from_checkpoint(training, 4, ckpt, kZero);
  EXPECT_EQ(tree_bytes(resumed.tree), expected);
}

}  // namespace
}  // namespace scalparc
