#include "mp/fault.hpp"

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <span>
#include <sstream>
#include <string>

namespace scalparc::mp {

namespace {

// splitmix64: cheap stateless mixing for deterministic corruption positions.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t");
  return s.substr(begin, end - begin + 1);
}

[[noreturn]] void bad_spec(const std::string& spec, const std::string& why) {
  throw std::invalid_argument("FaultPlan: bad spec '" + spec + "': " + why);
}

std::int64_t parse_int(const std::string& spec, const std::string& text) {
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    bad_spec(spec, "bad number '" + text + "'");
  }
  return static_cast<std::int64_t>(v);
}

double parse_num(const std::string& spec, const std::string& text) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    bad_spec(spec, "bad number '" + text + "'");
  }
  return v;
}

}  // namespace

void FaultPlan::parse(const std::string& spec) {
  std::stringstream actions_in(spec);
  std::string item;
  while (std::getline(actions_in, item, ';')) {
    item = trim(item);
    if (item.empty()) continue;

    const auto colon = item.find(':');
    if (colon == std::string::npos) bad_spec(item, "missing ':' after kind");
    const std::string kind_text = trim(item.substr(0, colon));

    FaultAction action;
    if (kind_text == "kill") {
      action.kind = FaultKind::kKill;
    } else if (kind_text == "corrupt") {
      action.kind = FaultKind::kCorrupt;
    } else if (kind_text == "delay") {
      action.kind = FaultKind::kDelay;
    } else if (kind_text == "drop") {
      action.kind = FaultKind::kDrop;
    } else if (kind_text == "duplicate") {
      action.kind = FaultKind::kDuplicate;
    } else {
      bad_spec(item, "unknown kind '" + kind_text +
                         "' (kill | corrupt | delay | drop | duplicate)");
    }

    bool have_rank = false;
    std::stringstream fields_in(item.substr(colon + 1));
    std::string field;
    while (std::getline(fields_in, field, ',')) {
      field = trim(field);
      if (field.empty()) continue;
      const auto eq = field.find('=');
      if (eq == std::string::npos) bad_spec(item, "field '" + field + "' needs '='");
      const std::string key = trim(field.substr(0, eq));
      const std::string value = trim(field.substr(eq + 1));
      if (key == "r" || key == "rank") {
        action.rank = static_cast<int>(parse_int(item, value));
        have_rank = true;
      } else if (key == "op") {
        action.op = parse_int(item, value);
      } else if (key == "level") {
        action.level = static_cast<int>(parse_int(item, value));
      } else if (key == "ms") {
        action.delay_ms = parse_num(item, value);
      } else {
        bad_spec(item, "unknown field '" + key + "'");
      }
    }

    if (!have_rank) bad_spec(item, "missing r=<rank>");
    if ((action.op >= 0) == (action.level >= 0)) {
      bad_spec(item, "need exactly one of op=<n> or level=<l>");
    }
    if (action.level >= 0 && action.kind != FaultKind::kKill) {
      bad_spec(item, "only kill supports level triggers");
    }
    if (action.kind == FaultKind::kDelay && action.delay_ms <= 0.0) {
      bad_spec(item, "delay needs ms=<positive>");
    }
    for (const FaultAction& earlier : actions_) {
      if (earlier.kind == action.kind && earlier.rank == action.rank &&
          earlier.op == action.op && earlier.level == action.level) {
        bad_spec(item, "duplicates an earlier action with the same "
                       "(kind, rank, trigger); it would fire twice");
      }
    }
    actions_.push_back(action);
  }
}

bool FaultPlan::kills_at_op(int rank, std::int64_t op) const {
  for (const FaultAction& a : actions_) {
    if (a.kind == FaultKind::kKill && a.rank == rank && a.op == op) return true;
  }
  return false;
}

bool FaultPlan::kills_at_level(int rank, int level) const {
  for (const FaultAction& a : actions_) {
    if (a.kind == FaultKind::kKill && a.rank == rank && a.level == level) {
      return true;
    }
  }
  return false;
}

bool FaultPlan::corrupts_at_op(int rank, std::int64_t op) const {
  for (const FaultAction& a : actions_) {
    if (a.kind == FaultKind::kCorrupt && a.rank == rank && a.op == op) {
      return true;
    }
  }
  return false;
}

bool FaultPlan::drops_at_op(int rank, std::int64_t op) const {
  for (const FaultAction& a : actions_) {
    if (a.kind == FaultKind::kDrop && a.rank == rank && a.op == op) return true;
  }
  return false;
}

bool FaultPlan::duplicates_at_op(int rank, std::int64_t op) const {
  for (const FaultAction& a : actions_) {
    if (a.kind == FaultKind::kDuplicate && a.rank == rank && a.op == op) {
      return true;
    }
  }
  return false;
}

double FaultPlan::delay_ms_at_op(int rank, std::int64_t op) const {
  for (const FaultAction& a : actions_) {
    if (a.kind == FaultKind::kDelay && a.rank == rank && a.op == op) {
      return a.delay_ms;
    }
  }
  return 0.0;
}

void FaultPlan::corrupt_payload(std::span<std::byte> payload, int rank,
                                std::int64_t op) const {
  if (payload.empty()) return;
  std::uint64_t h = mix64(seed_ ^ mix64(static_cast<std::uint64_t>(rank) << 32 ^
                                        static_cast<std::uint64_t>(op)));
  const int flips = 1 + static_cast<int>(h % 3);
  for (int i = 0; i < flips; ++i) {
    h = mix64(h);
    const std::size_t bit = h % (payload.size() * 8);
    payload[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
  }
  corruptions_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace scalparc::mp
