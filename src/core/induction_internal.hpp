// Internals shared by the two induction engines: the exact ScalParC engine
// over sorted attribute lists (induction.cpp) and the histogram-quantized
// PV-Tree engine over a horizontal record partition
// (histogram_induction.cpp). Both produce the same tree/checkpoint
// artifacts, so the frontier bookkeeping, the SPMD/checkpoint fingerprint
// and the per-level tree growth live here and cannot drift apart.
#pragma once

#include <cstdint>
#include <numeric>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/options.hpp"
#include "core/split_finder.hpp"
#include "core/tree.hpp"
#include "data/schema.hpp"
#include "mp/collectives.hpp"
#include "mp/comm.hpp"
#include "util/trace.hpp"

namespace scalparc::core::internal {

struct ActiveNode {
  int tree_id = -1;
  int depth = 0;
  std::int64_t total = 0;
  std::vector<std::int64_t> class_totals;
};

inline std::int32_t majority_class(std::span<const std::int64_t> counts) {
  std::size_t best = 0;
  for (std::size_t j = 1; j < counts.size(); ++j) {
    if (counts[j] > counts[best]) best = j;
  }
  return static_cast<std::int32_t>(best);
}

inline bool is_pure(std::span<const std::int64_t> counts) {
  int non_zero = 0;
  for (const std::int64_t c : counts) non_zero += c > 0;
  return non_zero <= 1;
}

// Phase span carrying both clocks: wall time from the TraceScope itself and
// the modeled virtual clock sampled at construction/destruction. The phase
// spans tile every vtime-advancing statement of the induction, so a trace's
// per-rank vtime deltas sum to InductionStats::total_seconds.
class PhaseSpan {
 public:
  PhaseSpan(mp::Comm& comm, const char* name, int level = -1,
            std::int64_t nodes = -1, std::int64_t records = -1)
      : comm_(comm), scope_(name, level, nodes, records) {
    scope_.set_begin_vtime(comm.vtime());
    // Every phase boundary advances this rank's gray-failure progress
    // watermark (no-op unless health monitoring is on): the spans are SPMD,
    // so the Hub can compare watermarks across ranks to tell slow from
    // stuck.
    comm.publish_watermark(level);
  }
  ~PhaseSpan() { scope_.set_end_vtime(comm_.vtime()); }
  PhaseSpan(const PhaseSpan&) = delete;
  PhaseSpan& operator=(const PhaseSpan&) = delete;

  void set_bytes(std::int64_t bytes) { scope_.set_bytes(bytes); }

 private:
  mp::Comm& comm_;
  util::TraceScope scope_;
};

// SPMD argument-consistency / checkpoint-compatibility fingerprint (FNV-1a
// over total, schema and the tree-shaping options). fuse_collectives,
// layout and the split-mode trio (split_mode/hist_bins/top_k) are
// deliberately excluded: all of them consume and produce the same
// checkpoint format, so a checkpoint written under one setting resumes
// under any other.
inline std::uint64_t induction_fingerprint(const data::Schema& schema,
                                           std::uint64_t total_records,
                                           const InductionOptions& options,
                                           SplittingStrategy strategy) {
  std::uint64_t fp = 0xcbf29ce484222325ULL;
  const auto mix = [&fp](std::uint64_t v) {
    fp = (fp ^ v) * 0x100000001b3ULL;
  };
  mix(total_records);
  mix(static_cast<std::uint64_t>(schema.num_classes()));
  for (int a = 0; a < schema.num_attributes(); ++a) {
    const data::AttributeInfo& info = schema.attribute(a);
    mix(static_cast<std::uint64_t>(info.kind));
    mix(static_cast<std::uint64_t>(info.cardinality));
    for (const char ch : info.name) mix(static_cast<std::uint64_t>(ch));
  }
  mix(static_cast<std::uint64_t>(options.max_depth));
  mix(static_cast<std::uint64_t>(options.min_split_records));
  mix(static_cast<std::uint64_t>(options.criterion));
  mix(static_cast<std::uint64_t>(options.categorical_split));
  mix(static_cast<std::uint64_t>(options.categorical_reduction));
  mix(static_cast<std::uint64_t>(strategy));
  return fp;
}

// A mismatch would otherwise corrupt results silently (e.g. misaligned
// count-matrix reductions), so every engine compares fingerprints up front.
inline void verify_spmd_fingerprint(mp::Comm& comm, std::uint64_t fp) {
  const std::uint64_t lo = mp::allreduce_value(comm, fp, mp::MinOp{});
  const std::uint64_t hi = mp::allreduce_value(comm, fp, mp::MaxOp{});
  if (lo != hi) {
    throw std::invalid_argument(
        "induce_tree_distributed: ranks disagree on schema/options/total");
  }
}

struct LevelGrowth {
  std::vector<ActiveNode> next_active;
  // child_slot_target[i][slot]: index into next_active, or -1 if the child
  // became a leaf.
  std::vector<std::vector<int>> child_slot_target;
};

// Creates the children of every splitting node in the tree (identically on
// every rank — all inputs are global) and builds the next level's active
// set. Shared verbatim by both engines so the splittability rule and child
// ordering cannot diverge.
inline LevelGrowth grow_tree_level(
    DecisionTree& tree, const std::vector<ActiveNode>& active,
    const std::vector<SplitCandidate>& best,
    const std::vector<bool>& will_split, const std::vector<int>& num_children,
    const std::vector<std::vector<std::int32_t>>& value_to_child,
    const std::vector<std::size_t>& kid_offset,
    std::span<const std::int64_t> global_kid_counts, int c,
    const InductionOptions& options) {
  const std::size_t m = active.size();
  LevelGrowth out;
  out.child_slot_target.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    TreeNode& node = tree.node(active[i].tree_id);
    if (!will_split[i]) continue;  // node stays a leaf
    node.is_leaf = false;
    node.split.attribute = best[i].attribute;
    node.split.num_children = num_children[i];
    if (best[i].kind == SplitKind::kContinuous) {
      node.split.kind = data::AttributeKind::kContinuous;
      node.split.threshold = best[i].threshold;
    } else {
      node.split.kind = data::AttributeKind::kCategorical;
      node.split.value_to_child = value_to_child[i];
    }
    out.child_slot_target[i].assign(static_cast<std::size_t>(num_children[i]),
                                    -1);
    for (int slot = 0; slot < num_children[i]; ++slot) {
      const std::span<const std::int64_t> counts =
          global_kid_counts.subspan(
              kid_offset[i] +
                  static_cast<std::size_t>(slot) * static_cast<std::size_t>(c),
              static_cast<std::size_t>(c));
      TreeNode child;
      child.is_leaf = true;
      child.class_counts.assign(counts.begin(), counts.end());
      child.num_records =
          std::accumulate(counts.begin(), counts.end(), std::int64_t{0});
      child.majority_class = majority_class(counts);
      child.depth = active[i].depth + 1;
      const int child_id = tree.add_node(std::move(child));
      tree.node(active[i].tree_id).children.push_back(child_id);
      const TreeNode& stored = tree.node(child_id);
      const bool splittable = !is_pure(stored.class_counts) &&
                              stored.num_records >= options.min_split_records &&
                              stored.depth < options.max_depth;
      if (splittable) {
        ActiveNode next;
        next.tree_id = child_id;
        next.depth = stored.depth;
        next.total = stored.num_records;
        next.class_totals = stored.class_counts;
        out.child_slot_target[i][static_cast<std::size_t>(slot)] =
            static_cast<int>(out.next_active.size());
        out.next_active.push_back(std::move(next));
      }
    }
  }
  return out;
}

}  // namespace scalparc::core::internal
