file(REMOVE_RECURSE
  "CMakeFiles/ablation_categorical.dir/ablation_categorical.cpp.o"
  "CMakeFiles/ablation_categorical.dir/ablation_categorical.cpp.o.d"
  "ablation_categorical"
  "ablation_categorical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_categorical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
