// External merge sort over spill files.
//
// The one-time presort of SLIQ/SPRINT-style classifiers is exactly this
// when the attribute lists do not fit in memory: sort memory-budget-sized
// runs, then k-way merge. Used by the out-of-core serial SPRINT variant
// (ooc_sprint) for its Presort phase.
#pragma once

#include <algorithm>
#include <cstddef>
#include <memory>
#include <queue>
#include <span>
#include <stdexcept>
#include <vector>

#include "ooc/spill_file.hpp"

namespace scalparc::ooc {

// Sorts the records of `input` with at most `memory_budget_records` held in
// memory at once during run generation; returns a new sorted file.
template <typename T, typename Less>
TempFile external_sort(const TempFile& input, std::size_t memory_budget_records,
                       Less less, IoStats* stats = nullptr) {
  if (memory_budget_records == 0) {
    throw std::invalid_argument("external_sort: zero memory budget");
  }

  // Phase 1: sorted runs.
  std::vector<TempFile> runs;
  {
    TypedReader<T> reader(input, stats);
    std::vector<T> chunk(memory_budget_records);
    for (;;) {
      const std::size_t got = reader.read_chunk(std::span<T>(chunk));
      if (got == 0) break;
      std::sort(chunk.begin(), chunk.begin() + static_cast<std::ptrdiff_t>(got),
                less);
      TempFile run(stats);
      TypedWriter<T> writer(run, stats);
      writer.append(std::span<const T>(chunk.data(), got));
      writer.flush();
      runs.push_back(std::move(run));
    }
  }

  TempFile output(stats);
  if (runs.empty()) return output;  // empty input -> empty output

  // Phase 2: k-way merge with a heap of run cursors.
  struct Cursor {
    std::unique_ptr<TypedReader<T>> reader;
    T current;
  };
  std::vector<Cursor> cursors;
  cursors.reserve(runs.size());
  for (const TempFile& run : runs) {
    Cursor cursor{std::make_unique<TypedReader<T>>(run, stats), T{}};
    if (cursor.reader->next(cursor.current)) {
      cursors.push_back(std::move(cursor));
    }
  }
  const auto heap_greater = [&less, &cursors](std::size_t a, std::size_t b) {
    // Min-heap on the cursors' current records.
    return less(cursors[b].current, cursors[a].current);
  };
  std::vector<std::size_t> heap;
  heap.reserve(cursors.size());
  for (std::size_t i = 0; i < cursors.size(); ++i) heap.push_back(i);
  std::make_heap(heap.begin(), heap.end(), heap_greater);

  TypedWriter<T> writer(output, stats);
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), heap_greater);
    const std::size_t idx = heap.back();
    writer.append(cursors[idx].current);
    if (cursors[idx].reader->next(cursors[idx].current)) {
      std::push_heap(heap.begin(), heap.end(), heap_greater);
    } else {
      heap.pop_back();
    }
  }
  writer.flush();
  return output;
}

}  // namespace scalparc::ooc
