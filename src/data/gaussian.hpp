// Multi-class Gaussian-mixture synthetic data.
//
// The Quest generator is two-class; this companion generator produces
// k-class problems over d continuous attributes (one isotropic Gaussian
// blob per class, optionally with a few categorical attributes whose value
// distribution is class-dependent). It exercises every c > 2 code path —
// count matrices, gini/entropy over many classes, multi-way prediction —
// and, like QuestGenerator, is per-record deterministic so parallel ranks
// generate their blocks independently.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "data/dataset.hpp"
#include "data/schema.hpp"
#include "util/random.hpp"

namespace scalparc::data {

struct GaussianConfig {
  std::uint64_t seed = 1;
  std::int32_t num_classes = 3;
  int num_continuous = 4;
  // Categorical attributes: each has this cardinality and is biased toward
  // the code (class % cardinality) with probability `categorical_bias`.
  int num_categorical = 1;
  std::int32_t categorical_cardinality = 4;
  double categorical_bias = 0.6;
  // Distance between adjacent class centers, in standard deviations; larger
  // values make the classes more separable.
  double separation = 3.0;
};

class GaussianGenerator {
 public:
  explicit GaussianGenerator(GaussianConfig config);

  const GaussianConfig& config() const { return config_; }
  const Schema& schema() const { return schema_; }

  // True class of record `rid` (uniform over classes).
  std::int32_t label(std::uint64_t rid) const;

  void fill(Dataset& out, std::uint64_t first_rid, std::size_t count) const;
  Dataset generate(std::uint64_t first_rid, std::size_t count) const;

 private:
  util::Rng record_rng(std::uint64_t rid) const;

  GaussianConfig config_;
  Schema schema_;
  // Per-class center per continuous attribute.
  std::vector<double> centers_;
};

}  // namespace scalparc::data
