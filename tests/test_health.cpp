// Gray-failure health-layer tests: phi-accrual estimator properties,
// weighted partition apportionment, env/CLI knob hardening, the slow-fault
// grammar, clean-run false-positive sweeps, adaptive timeouts under
// oversubscription, the weighted-retile byte-identical differential, and the
// end-to-end straggler-detect -> rebalance -> (kill-during-rebalance ->
// shrink) recovery ladder.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/scalparc.hpp"
#include "core/tree_io.hpp"
#include "data/synthetic.hpp"
#include "mp/fault.hpp"
#include "mp/health.hpp"
#include "mp/runtime.hpp"
#include "sort/partition_util.hpp"

namespace scalparc {
namespace {

namespace fs = std::filesystem;

std::string tree_bytes(const core::DecisionTree& tree) {
  std::ostringstream out;
  core::save_tree(tree, out);
  return out.str();
}

data::Dataset make_training(std::uint64_t records, double noise = 0.0) {
  data::GeneratorConfig config;
  config.seed = 5;
  config.function = data::LabelFunction::kF2;
  config.num_attributes = 7;
  config.label_noise = noise;
  return data::QuestGenerator(config).generate(0, records);
}

struct TempDir {
  std::string path;
  explicit TempDir(const std::string& stem)
      : path((fs::temp_directory_path() /
              (stem + "_" + std::to_string(::getpid())))
                 .string()) {
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

// Restores an env var on scope exit (tests mutate the recv-timeout knob).
struct ScopedEnv {
  std::string name;
  std::string saved;
  bool had = false;
  ScopedEnv(const std::string& n, const char* value) : name(n) {
    if (const char* old = std::getenv(name.c_str())) {
      had = true;
      saved = old;
    }
    if (value) {
      ::setenv(name.c_str(), value, 1);
    } else {
      ::unsetenv(name.c_str());
    }
  }
  ~ScopedEnv() {
    if (had) {
      ::setenv(name.c_str(), saved.c_str(), 1);
    } else {
      ::unsetenv(name.c_str());
    }
  }
};

// ---------------------------------------------------------------------------
// Phi-accrual estimator properties
// ---------------------------------------------------------------------------

TEST(PhiAccrual, UnprimedHasNoOpinion) {
  mp::PhiAccrualEstimator est(16, 8);
  EXPECT_FALSE(est.primed());
  EXPECT_EQ(est.phi(100.0), 0.0);
  for (int i = 0; i < 7; ++i) est.record(0.01);
  EXPECT_FALSE(est.primed());
  est.record(0.01);
  EXPECT_TRUE(est.primed());
  EXPECT_GT(est.phi(100.0), 0.0);
}

TEST(PhiAccrual, MonotoneInSilence) {
  mp::PhiAccrualEstimator est;
  for (int i = 0; i < 32; ++i) est.record(0.01);
  // The stddev floor keeps the distribution a narrow spike around the 10 ms
  // cadence, so suspicion climbs within fractions of an interval.
  const double a = est.phi(0.010);
  const double b = est.phi(0.0105);
  const double c = est.phi(0.011);
  EXPECT_LE(a, b);
  EXPECT_LT(b, c);
  // Far beyond the distribution erfc underflows and phi caps.
  EXPECT_EQ(est.phi(1000.0), mp::PhiAccrualEstimator::kMaxPhi);
}

TEST(PhiAccrual, AdaptsToSlowerCadence) {
  mp::PhiAccrualEstimator est(16, 8);
  for (int i = 0; i < 16; ++i) est.record(0.01);
  const double suspicious = est.phi(0.2);
  EXPECT_GT(suspicious, 8.0);
  // The same silence is ordinary once the observed cadence slows down: the
  // window slides, the estimator re-learns, suspicion decays.
  for (int i = 0; i < 16; ++i) est.record(0.2);
  EXPECT_LT(est.phi(0.2), 2.0);
}

TEST(PhiAccrual, TimeoutForPhiInvertsPhi) {
  mp::PhiAccrualEstimator est;
  for (int i = 0; i < 40; ++i) est.record(0.02 + 0.001 * (i % 5));
  for (const double threshold : {1.0, 4.0, 8.0, 12.0}) {
    const double t = est.timeout_for_phi(threshold);
    EXPECT_GT(t, 0.0);
    EXPECT_NEAR(est.phi(t), threshold, 0.5) << "threshold " << threshold;
  }
  EXPECT_LT(est.timeout_for_phi(2.0), est.timeout_for_phi(10.0));
}

TEST(PhiAccrual, StddevFlooredOnRegularStream) {
  mp::PhiAccrualEstimator est;
  for (int i = 0; i < 64; ++i) est.record(0.1);
  // A metronome-regular stream must not collapse into a zero-width spike
  // (which would make any microsecond of jitter look like a death).
  EXPECT_GE(est.stddev(), 0.0125 * est.mean() - 1e-12);
  EXPECT_GT(est.timeout_for_phi(8.0), est.mean());
}

// ---------------------------------------------------------------------------
// Weighted partition apportionment
// ---------------------------------------------------------------------------

TEST(WeightedPartition, SumsToTotalAndTracksWeights) {
  const std::vector<double> weights = {1.0, 0.125, 2.0, 1.0};
  for (const std::size_t total : {0UL, 1UL, 7UL, 1000UL, 65537UL}) {
    const std::vector<std::size_t> sizes =
        sort::weighted_partition_sizes(total, weights);
    ASSERT_EQ(sizes.size(), weights.size());
    std::size_t sum = 0;
    for (const std::size_t s : sizes) sum += s;
    EXPECT_EQ(sum, total) << "total " << total;
    if (total >= 1000) {
      EXPECT_LT(sizes[1], sizes[0]);  // the 1/8-weight rank gets less
      EXPECT_GT(sizes[2], sizes[0]);  // the 2x-weight rank gets more
    }
  }
}

TEST(WeightedPartition, UniformWeightsReproduceEqualPartition) {
  for (const int parts : {1, 2, 3, 8}) {
    const std::vector<double> uniform(static_cast<std::size_t>(parts), 3.5);
    for (const std::size_t total : {0UL, 1UL, 5UL, 97UL, 4096UL}) {
      EXPECT_EQ(sort::weighted_partition_sizes(total, uniform),
                sort::equal_partition_sizes(total, parts))
          << "total " << total << " parts " << parts;
    }
  }
}

TEST(WeightedPartition, RejectsDegenerateWeights) {
  EXPECT_THROW(sort::weighted_partition_sizes(10, std::vector<double>{}),
               std::invalid_argument);
  EXPECT_THROW(
      sort::weighted_partition_sizes(10, std::vector<double>{1.0, 0.0}),
      std::invalid_argument);
  EXPECT_THROW(
      sort::weighted_partition_sizes(10, std::vector<double>{1.0, -2.0}),
      std::invalid_argument);
  EXPECT_THROW(
      sort::weighted_partition_sizes(
          10, std::vector<double>{1.0, std::nan("")}),
      std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Knob hardening: env + option validation + fault grammar
// ---------------------------------------------------------------------------

TEST(HealthKnobs, ParsePositiveValueRejectsGarbage) {
  EXPECT_DOUBLE_EQ(mp::parse_positive_health_value("--x", "1.5"), 1.5);
  EXPECT_DOUBLE_EQ(mp::parse_positive_health_value("--x", "42"), 42.0);
  for (const char* bad : {"", "banana", "-3", "0", "1.5x", "nan", "inf"}) {
    try {
      mp::parse_positive_health_value("--phi-threshold", bad);
      FAIL() << "accepted '" << bad << "'";
    } catch (const std::invalid_argument& e) {
      // The diagnostic must name the flag and echo the offending value.
      EXPECT_NE(std::string(e.what()).find("--phi-threshold"),
                std::string::npos);
    }
  }
}

TEST(HealthKnobs, RecvTimeoutEnvRejectedAtParseTime) {
  {
    ScopedEnv env("SCALPARC_TEST_RECV_TIMEOUT_S", "banana");
    EXPECT_THROW(mp::default_recv_timeout_s(), std::invalid_argument);
  }
  {
    ScopedEnv env("SCALPARC_TEST_RECV_TIMEOUT_S", "-5");
    EXPECT_THROW(mp::default_recv_timeout_s(), std::invalid_argument);
  }
  {
    ScopedEnv env("SCALPARC_TEST_RECV_TIMEOUT_S", "17.5");
    EXPECT_DOUBLE_EQ(mp::default_recv_timeout_s(), 17.5);
  }
  {
    ScopedEnv env("SCALPARC_TEST_RECV_TIMEOUT_S", nullptr);
    EXPECT_DOUBLE_EQ(mp::default_recv_timeout_s(), 120.0);
  }
}

TEST(HealthKnobs, OptionsValidateNamesTheField) {
  mp::HealthOptions options;
  options.validate();  // defaults are sane
  options.sustain_s = -1.0;
  try {
    options.validate();
    FAIL() << "accepted negative sustain_s";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("sustain_s"), std::string::npos);
  }
}

TEST(SlowFault, GrammarAndFactorLookup) {
  mp::FaultPlan plan;
  plan.parse("slow:r=2,factor=8");
  EXPECT_DOUBLE_EQ(plan.slow_factor_for(2), 8.0);
  EXPECT_DOUBLE_EQ(plan.slow_factor_for(0), 1.0);
  EXPECT_DOUBLE_EQ(plan.slow_factor_for(7), 1.0);
}

TEST(SlowFault, RejectsMalformedSpecs) {
  for (const char* bad :
       {"slow:r=1",                    // factor is mandatory
        "slow:r=1,factor=1",           // a 1x slowdown is not a fault
        "slow:r=1,factor=0.5",         // speedups are not faults either
        "slow:r=1,factor=4,level=2",   // whole-run: no level trigger
        "slow:r=1,factor=4,op=9"}) {   // ... and no op trigger
    mp::FaultPlan plan;
    EXPECT_THROW(plan.parse(bad), std::invalid_argument) << bad;
  }
}

// ---------------------------------------------------------------------------
// Runtime integration
// ---------------------------------------------------------------------------

TEST(HealthRuntime, CleanRunNeverClassifiesAStraggler) {
  const data::Dataset training = make_training(2000);
  const std::string oracle =
      tree_bytes(core::ScalParC::fit(training, 4).tree);

  mp::CostModel model = mp::CostModel::zero();
  model.seconds_per_work_unit = 1e-7;
  model.realize_work = true;
  mp::RunOptions run_options;
  run_options.health.detect_stragglers = true;
  run_options.health.adaptive_timeouts = true;
  const core::FitReport report = core::ScalParC::fit(
      training, 4, core::InductionControls{}, model, run_options);
  EXPECT_EQ(tree_bytes(report.tree), oracle);
  EXPECT_EQ(report.run.metrics.value("health.stragglers_detected", 0.0), 0.0);
  EXPECT_GT(report.run.metrics.value("health.heartbeats_received", 0.0), 0.0);
}

TEST(HealthRuntime, AdaptiveTimeoutsSurviveOversubscription) {
  // 12 rank threads on however few cores CI grants: wait slices stretch far
  // beyond the observed arrival cadence, so adaptive deadlines trip and must
  // stretch (heartbeats flowing) instead of escalating to RecvTimeout.
  const data::Dataset training = make_training(1500);
  const std::string oracle =
      tree_bytes(core::ScalParC::fit(training, 12).tree);
  mp::RunOptions run_options;
  run_options.health.adaptive_timeouts = true;
  run_options.health.timeout_floor_s = 0.01;  // aggressive on purpose
  const core::FitReport report = core::ScalParC::fit(
      training, 12, core::InductionControls{}, mp::CostModel::zero(),
      run_options);
  EXPECT_EQ(tree_bytes(report.tree), oracle);
  EXPECT_EQ(report.run.failure_kind, mp::FailureKind::kNone);
}

TEST(HealthRuntime, WeightedRetileProducesByteIdenticalTrees) {
  const data::Dataset training = make_training(1500, 0.1);
  core::InductionControls controls;
  controls.options.max_depth = 6;
  const std::string oracle =
      tree_bytes(core::ScalParC::fit(training, 4, controls).tree);

  for (const int p : {2, 4, 8}) {
    TempDir ckpt("scalparc_health_retile_p" + std::to_string(p));
    core::InductionControls ckpt_controls = controls;
    ckpt_controls.checkpoint.directory = ckpt.path;
    // Kill mid-tree so checkpoints exist only up to level 1 and the weighted
    // resume actually re-executes levels.
    mp::FaultPlan plan;
    plan.parse("kill:r=0,level=2");
    mp::RunOptions faulty;
    faulty.fault_plan = &plan;
    EXPECT_THROW(core::ScalParC::fit(training, p, ckpt_controls,
                                     mp::CostModel::zero(), faulty),
                 mp::InjectedFault);

    core::InductionControls resume_controls = ckpt_controls;
    resume_controls.checkpoint.resume = true;
    resume_controls.checkpoint.allow_repartition = true;
    resume_controls.checkpoint.rank_weights.assign(
        static_cast<std::size_t>(p), 1.0);
    resume_controls.checkpoint.rank_weights.back() = 0.2;  // one slow rank
    const core::FitReport resumed = core::ScalParC::fit(
        training, p, resume_controls, mp::CostModel::zero(), {});
    EXPECT_EQ(tree_bytes(resumed.tree), oracle) << "p=" << p;
  }
}

TEST(HealthRuntime, WeightedRetileGuardRails) {
  const data::Dataset training = make_training(1200);
  core::InductionControls controls;
  controls.options.max_depth = 5;
  TempDir ckpt("scalparc_health_guard");
  controls.checkpoint.directory = ckpt.path;
  (void)core::ScalParC::fit(training, 3, controls);

  // Non-uniform weights without allow_repartition: loud error.
  core::InductionControls no_permit = controls;
  no_permit.checkpoint.resume = true;
  no_permit.checkpoint.rank_weights = {1.0, 1.0, 0.5};
  EXPECT_THROW((void)core::ScalParC::fit(training, 3, no_permit),
               core::CheckpointError);

  // Weight vector sized for the wrong world: loud error.
  core::InductionControls wrong_size = no_permit;
  wrong_size.checkpoint.allow_repartition = true;
  wrong_size.checkpoint.rank_weights = {1.0, 0.5};
  EXPECT_THROW((void)core::ScalParC::fit(training, 3, wrong_size),
               core::CheckpointError);

  // The histogram engine's row ownership is structural: non-uniform weights
  // must be rejected, not silently ignored.
  core::InductionControls hist = controls;
  hist.checkpoint.directory.clear();
  hist.options.split_mode = core::SplitMode::kHistogram;
  hist.checkpoint.rank_weights = {1.0, 1.0, 0.5};
  hist.checkpoint.allow_repartition = true;
  EXPECT_THROW((void)core::ScalParC::fit(training, 3, hist),
               std::invalid_argument);
}

// Shared setup for the end-to-end straggler runs: realized work makes the
// throttled rank measurably busy; the tight sustain window keeps the test
// fast while still spanning a full induction level.
struct StragglerRig {
  data::Dataset training = make_training(2400, 0.15);
  core::InductionControls controls;
  mp::CostModel model = mp::CostModel::zero();
  mp::RunOptions run_options;

  StragglerRig() {
    controls.options.max_depth = 8;
    model.seconds_per_work_unit = 5e-6;
    model.realize_work = true;
    run_options.health.detect_stragglers = true;
    run_options.health.adaptive_timeouts = true;
    run_options.health.sustain_s = 1.0;
    run_options.health.min_blocked_s = 0.2;
  }
};

TEST(HealthRuntime, StragglerDetectedAndRebalanced) {
  StragglerRig rig;
  const std::string oracle =
      tree_bytes(core::ScalParC::fit(rig.training, 4, rig.controls).tree);

  TempDir ckpt("scalparc_health_rebalance");
  core::InductionControls ckpt_controls = rig.controls;
  ckpt_controls.checkpoint.directory = ckpt.path;

  mp::FaultSchedule schedule;
  for (int i = 0; i < 4; ++i) {
    schedule.add_plan().parse("slow:r=3,factor=8");  // gray failure persists
  }
  core::RecoveryControls recovery;
  recovery.policy = core::RecoveryPolicy::kRebalance;
  recovery.max_retries = 3;
  recovery.fault_schedule = &schedule;

  const core::RecoveryReport report = core::ScalParC::fit_with_recovery(
      rig.training, 4, ckpt_controls, recovery, rig.model, rig.run_options);
  ASSERT_EQ(report.outcome, core::RecoveryOutcome::kCompleted);
  EXPECT_EQ(tree_bytes(report.fit.tree), oracle);
  ASSERT_FALSE(report.events.empty());
  const core::RecoveryEvent& first = report.events.front();
  EXPECT_EQ(first.policy, core::RecoveryPolicy::kRebalance);
  EXPECT_EQ(first.straggler_rank, 3);
  EXPECT_GT(first.straggler_slowdown, 1.5);
  EXPECT_FALSE(first.demoted);
  EXPECT_EQ(first.ranks_after, 4);  // rebalance keeps the world
}

TEST(HealthRuntime, KillDuringRebalanceDegradesToShrink) {
  StragglerRig rig;
  const std::string oracle =
      tree_bytes(core::ScalParC::fit(rig.training, 4, rig.controls).tree);

  TempDir ckpt("scalparc_health_kill_rebalance");
  core::InductionControls ckpt_controls = rig.controls;
  ckpt_controls.checkpoint.directory = ckpt.path;

  // Attempt 0: rank 3 crawls -> straggler -> rebalance. Attempt 1: the
  // rebalanced replay loses rank 1 -> kRebalance degrades to a shrink. The
  // kill is op-triggered so it provably fires before the still-slow rank 3
  // can accrue a second straggler classification (the level-synchronous run
  // is paced by the straggler, so a level trigger would lose that race).
  // Attempt 2+: clean, finishes on the 3 survivors.
  mp::FaultSchedule schedule;
  schedule.add_plan().parse("slow:r=3,factor=8");
  schedule.add_plan().parse("slow:r=3,factor=8;kill:r=1,op=120");
  core::RecoveryControls recovery;
  recovery.policy = core::RecoveryPolicy::kRebalance;
  recovery.max_retries = 4;
  recovery.fault_schedule = &schedule;

  const core::RecoveryReport report = core::ScalParC::fit_with_recovery(
      rig.training, 4, ckpt_controls, recovery, rig.model, rig.run_options);
  ASSERT_EQ(report.outcome, core::RecoveryOutcome::kCompleted);
  EXPECT_EQ(tree_bytes(report.fit.tree), oracle);
  ASSERT_GE(report.events.size(), 2U);
  EXPECT_EQ(report.events[0].policy, core::RecoveryPolicy::kRebalance);
  EXPECT_EQ(report.events[0].straggler_rank, 3);
  bool shrank = false;
  std::string ledger;
  for (const core::RecoveryEvent& event : report.events) {
    ledger += "[policy=" + std::to_string(static_cast<int>(event.policy)) +
              " failed_rank=" + std::to_string(event.failed_rank) +
              " resumed=" + std::to_string(event.resumed_level) +
              " ranks_after=" + std::to_string(event.ranks_after) +
              " demoted=" + std::to_string(event.demoted) + " msg=" +
              event.message + "]";
    if (event.policy == core::RecoveryPolicy::kShrink) {
      shrank = true;
      EXPECT_EQ(event.ranks_after, 3);
    }
  }
  EXPECT_TRUE(shrank) << "rank death under kRebalance must degrade to shrink; "
                      << "events: " << ledger;
}

}  // namespace
}  // namespace scalparc
