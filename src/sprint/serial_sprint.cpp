#include "sprint/serial_sprint.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/count_matrix.hpp"
#include "core/gini.hpp"
#include "core/split_finder.hpp"
#include "core/splitter.hpp"
#include "data/attribute_list.hpp"

namespace scalparc::sprint {

namespace {

using core::CountMatrix;
using core::SplitCandidate;
using core::SplitKind;
using data::AttributeKind;
using data::CategoricalEntry;
using data::ContinuousEntry;

struct ContList {
  int attribute = -1;
  std::vector<ContinuousEntry> entries;
  std::vector<std::size_t> offsets;
  std::vector<std::int32_t> child;
};

struct CatList {
  int attribute = -1;
  std::int32_t cardinality = 0;
  std::vector<CategoricalEntry> entries;
  std::vector<std::size_t> offsets;
  std::vector<std::int32_t> child;
};

struct ActiveNode {
  int tree_id = -1;
  int depth = 0;
  std::int64_t total = 0;
  std::vector<std::int64_t> class_totals;
};

std::int32_t majority_class(std::span<const std::int64_t> counts) {
  std::size_t best = 0;
  for (std::size_t j = 1; j < counts.size(); ++j) {
    if (counts[j] > counts[best]) best = j;
  }
  return static_cast<std::int32_t>(best);
}

bool is_pure(std::span<const std::int64_t> counts) {
  int non_zero = 0;
  for (const std::int64_t c : counts) non_zero += c > 0;
  return non_zero <= 1;
}

std::vector<std::size_t> offsets_from_sizes(const std::vector<std::size_t>& sizes) {
  std::vector<std::size_t> offsets(sizes.size() + 1, 0);
  for (std::size_t i = 0; i < sizes.size(); ++i) offsets[i + 1] = offsets[i] + sizes[i];
  return offsets;
}

}  // namespace

core::DecisionTree fit_serial_sprint(const data::Dataset& training,
                                     const core::InductionOptions& options) {
  const data::Schema& schema = training.schema();
  const std::size_t n = training.num_records();
  const int c = schema.num_classes();
  if (n == 0) {
    throw std::invalid_argument("fit_serial_sprint: empty training set");
  }

  // Build and presort the attribute lists (the one-time sort).
  std::vector<ContList> cont_lists;
  std::vector<CatList> cat_lists;
  for (int a = 0; a < schema.num_attributes(); ++a) {
    if (schema.attribute(a).kind == AttributeKind::kContinuous) {
      ContList list;
      list.attribute = a;
      list.entries = data::build_continuous_list(training, a, /*first_rid=*/0);
      std::sort(list.entries.begin(), list.entries.end(),
                data::ContinuousEntryLess{});
      list.offsets = {0, list.entries.size()};
      cont_lists.push_back(std::move(list));
    } else {
      CatList list;
      list.attribute = a;
      list.cardinality = schema.attribute(a).cardinality;
      list.entries = data::build_categorical_list(training, a, /*first_rid=*/0);
      list.offsets = {0, list.entries.size()};
      cat_lists.push_back(std::move(list));
    }
  }

  std::vector<std::int64_t> root_totals(static_cast<std::size_t>(c), 0);
  for (const std::int32_t label : training.labels()) {
    ++root_totals[static_cast<std::size_t>(label)];
  }

  core::DecisionTree tree(schema);
  core::TreeNode root;
  root.is_leaf = true;
  root.class_counts = root_totals;
  root.num_records = static_cast<std::int64_t>(n);
  root.majority_class = majority_class(root_totals);
  tree.add_node(std::move(root));

  std::vector<ActiveNode> active;
  if (!is_pure(root_totals) &&
      static_cast<std::int64_t>(n) >= options.min_split_records &&
      options.max_depth > 0) {
    active.push_back(ActiveNode{0, 0, static_cast<std::int64_t>(n), root_totals});
  }

  // The per-level rid -> child hash table (dense array: rids are 0..n-1).
  std::vector<std::int32_t> rid_to_child(n, -1);

  while (!active.empty()) {
    const std::size_t m = active.size();
    std::vector<SplitCandidate> best(m);

    // --- split determination -------------------------------------------
    for (ContList& list : cont_lists) {
      for (std::size_t i = 0; i < m; ++i) {
        const std::vector<std::int64_t> zeros(static_cast<std::size_t>(c), 0);
        core::IncrementalImpurityScanner scanner(active[i].class_totals, zeros,
                                                 options.criterion);
        std::span<const ContinuousEntry> segment(
            list.entries.data() + list.offsets[i],
            list.offsets[i + 1] - list.offsets[i]);
        core::scan_continuous_segment(segment, scanner, /*has_prev=*/false,
                                      /*prev_value=*/0.0,
                                      static_cast<std::int32_t>(list.attribute),
                                      best[i]);
      }
    }
    for (CatList& list : cat_lists) {
      for (std::size_t i = 0; i < m; ++i) {
        CountMatrix matrix(list.cardinality, c);
        for (std::size_t idx = list.offsets[i]; idx < list.offsets[i + 1]; ++idx) {
          matrix.increment(list.entries[idx].value, list.entries[idx].cls);
        }
        const SplitCandidate candidate = core::best_categorical_split(
            matrix, static_cast<std::int32_t>(list.attribute),
            options.categorical_split, options.criterion);
        if (core::candidate_less(candidate, best[i])) best[i] = candidate;
      }
    }

    std::vector<bool> will_split(m, false);
    std::vector<std::vector<std::int32_t>> value_to_child(m);
    std::vector<int> num_children(m, 0);
    for (std::size_t i = 0; i < m; ++i) {
      if (!best[i].valid()) continue;
      const double node_impurity =
          core::impurity_of_counts(active[i].class_totals, options.criterion);
      if (!(best[i].gini < node_impurity - options.min_gini_improvement)) continue;
      will_split[i] = true;
      if (best[i].kind == SplitKind::kContinuous) {
        num_children[i] = 2;
      } else {
        // Rebuild the matrix of the winning categorical attribute.
        const CatList* winner = nullptr;
        for (const CatList& list : cat_lists) {
          if (list.attribute == best[i].attribute) winner = &list;
        }
        CountMatrix matrix(winner->cardinality, c);
        for (std::size_t idx = winner->offsets[i]; idx < winner->offsets[i + 1];
             ++idx) {
          matrix.increment(winner->entries[idx].value, winner->entries[idx].cls);
        }
        value_to_child[i] = best[i].kind == SplitKind::kCategoricalMultiWay
                                ? core::value_to_child_multiway(matrix)
                                : core::value_to_child_subset(matrix, best[i].subset);
        num_children[i] = core::num_children_of(value_to_child[i]);
      }
    }

    // --- splitting phase -------------------------------------------------
    // Split the splitting attribute's lists and fill the hash table; count
    // (node, child, class) for the children.
    std::vector<std::size_t> kid_offset(m + 1, 0);
    for (std::size_t i = 0; i < m; ++i) {
      kid_offset[i + 1] = kid_offset[i] + static_cast<std::size_t>(num_children[i]) *
                                              static_cast<std::size_t>(c);
    }
    std::vector<std::int64_t> kid_counts(kid_offset[m], 0);

    const auto split_own = [&](auto& list) {
      list.child.assign(list.entries.size(), -1);
      for (std::size_t i = 0; i < m; ++i) {
        if (!will_split[i] || best[i].attribute != list.attribute) continue;
        for (std::size_t idx = list.offsets[i]; idx < list.offsets[i + 1]; ++idx) {
          const auto& entry = list.entries[idx];
          std::int32_t child;
          if constexpr (std::is_same_v<std::decay_t<decltype(entry)>,
                                       ContinuousEntry>) {
            child = entry.value < best[i].threshold ? 0 : 1;
          } else {
            child = value_to_child[i][static_cast<std::size_t>(entry.value)];
          }
          list.child[idx] = child;
          rid_to_child[static_cast<std::size_t>(entry.rid)] = child;
          ++kid_counts[kid_offset[i] +
                       static_cast<std::size_t>(child) * static_cast<std::size_t>(c) +
                       static_cast<std::size_t>(entry.cls)];
        }
      }
    };
    for (ContList& list : cont_lists) split_own(list);
    for (CatList& list : cat_lists) split_own(list);

    // Create children; build the next active set.
    std::vector<ActiveNode> next_active;
    std::vector<std::vector<int>> child_slot_target(m);
    for (std::size_t i = 0; i < m; ++i) {
      if (!will_split[i]) continue;
      core::TreeNode& node = tree.node(active[i].tree_id);
      node.is_leaf = false;
      node.split.attribute = best[i].attribute;
      node.split.num_children = num_children[i];
      if (best[i].kind == SplitKind::kContinuous) {
        node.split.kind = AttributeKind::kContinuous;
        node.split.threshold = best[i].threshold;
      } else {
        node.split.kind = AttributeKind::kCategorical;
        node.split.value_to_child = value_to_child[i];
      }
      child_slot_target[i].assign(static_cast<std::size_t>(num_children[i]), -1);
      for (int slot = 0; slot < num_children[i]; ++slot) {
        const std::span<const std::int64_t> counts =
            std::span<const std::int64_t>(kid_counts)
                .subspan(kid_offset[i] + static_cast<std::size_t>(slot) *
                                             static_cast<std::size_t>(c),
                         static_cast<std::size_t>(c));
        core::TreeNode child;
        child.is_leaf = true;
        child.class_counts.assign(counts.begin(), counts.end());
        child.num_records =
            std::accumulate(counts.begin(), counts.end(), std::int64_t{0});
        child.majority_class = majority_class(counts);
        child.depth = active[i].depth + 1;
        const int child_id = tree.add_node(std::move(child));
        tree.node(active[i].tree_id).children.push_back(child_id);
        const core::TreeNode& stored = tree.node(child_id);
        if (!is_pure(stored.class_counts) &&
            stored.num_records >= options.min_split_records &&
            stored.depth < options.max_depth) {
          child_slot_target[i][static_cast<std::size_t>(slot)] =
              static_cast<int>(next_active.size());
          next_active.push_back(ActiveNode{child_id, stored.depth,
                                           stored.num_records,
                                           stored.class_counts});
        }
      }
    }

    // Split the non-splitting attributes' lists via the hash table and
    // rebuild every list for the next level.
    const auto rebuild = [&](auto& list) {
      using Entry = std::decay_t<decltype(list.entries[0])>;
      for (std::size_t i = 0; i < m; ++i) {
        if (!will_split[i] || best[i].attribute == list.attribute) continue;
        for (std::size_t idx = list.offsets[i]; idx < list.offsets[i + 1]; ++idx) {
          list.child[idx] =
              rid_to_child[static_cast<std::size_t>(list.entries[idx].rid)];
        }
      }
      std::vector<std::size_t> sizes(next_active.size(), 0);
      for (std::size_t i = 0; i < m; ++i) {
        if (!will_split[i]) continue;
        for (std::size_t idx = list.offsets[i]; idx < list.offsets[i + 1]; ++idx) {
          const int target =
              child_slot_target[i][static_cast<std::size_t>(list.child[idx])];
          if (target >= 0) ++sizes[static_cast<std::size_t>(target)];
        }
      }
      std::vector<std::size_t> new_offsets = offsets_from_sizes(sizes);
      std::vector<Entry> new_entries(new_offsets.back());
      std::vector<std::size_t> cursors(new_offsets.begin(), new_offsets.end() - 1);
      for (std::size_t i = 0; i < m; ++i) {
        if (!will_split[i]) continue;
        for (std::size_t idx = list.offsets[i]; idx < list.offsets[i + 1]; ++idx) {
          const int target =
              child_slot_target[i][static_cast<std::size_t>(list.child[idx])];
          if (target >= 0) {
            new_entries[cursors[static_cast<std::size_t>(target)]++] =
                list.entries[idx];
          }
        }
      }
      list.entries = std::move(new_entries);
      list.offsets = std::move(new_offsets);
      list.child.clear();
    };
    for (ContList& list : cont_lists) rebuild(list);
    for (CatList& list : cat_lists) rebuild(list);

    active = std::move(next_active);
  }

  return tree;
}

}  // namespace scalparc::sprint
