#include "mp/runtime.hpp"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "mp/fault.hpp"
#include "mp/telemetry.hpp"
#include "util/logging.hpp"
#include "util/stopwatch.hpp"

namespace scalparc::mp {

double default_recv_timeout_s() {
  if (const char* text = std::getenv("SCALPARC_TEST_RECV_TIMEOUT_S")) {
    // A set-but-broken override must be loud: a typo silently reverting to
    // the 120 s default turns a seconds-scale fault suite into minutes.
    return parse_positive_health_value("SCALPARC_TEST_RECV_TIMEOUT_S", text);
  }
  return 120.0;
}

Hub::Hub(int nranks, const RunOptions& options)
    : nranks_(nranks), options_(options), health_(nranks, options.health) {
  if (nranks <= 0) throw std::invalid_argument("Hub: nranks must be positive");
  channels_ = std::vector<Channel>(static_cast<std::size_t>(nranks) *
                                   static_cast<std::size_t>(nranks));
  for (Channel& c : channels_) {
    c.set_inflight_cap(options_.reliability.inflight_cap);
  }
  waits_.resize(static_cast<std::size_t>(nranks));
  unfinished_ = nranks;
}

bool Hub::all_channels_empty() const {
  return std::all_of(channels_.begin(), channels_.end(),
                     [](const Channel& c) { return c.empty(); });
}

std::size_t Hub::drain_all_channels() {
  std::size_t total = 0;
  for (Channel& c : channels_) total += c.drain();
  return total;
}

void Hub::poison_all() {
  for (Channel& c : channels_) c.poison();
}

ChannelStats Hub::transport_stats() const {
  ChannelStats total;
  for (const Channel& c : channels_) total += c.stats();
  return total;
}

void Hub::mark_blocked(int rank, int src, std::int64_t tag) {
  {
    std::lock_guard<std::mutex> lock(wait_mutex_);
    WaitState& w = waits_[static_cast<std::size_t>(rank)];
    w.blocked = true;
    w.src = src;
    w.tag = tag;
    w.heal_exhausted = false;  // fresh budget for every logical receive
    ++w.epoch;
  }
  if (health_.enabled()) health_.on_blocked(rank);
}

void Hub::mark_heal_exhausted(int rank) {
  std::lock_guard<std::mutex> lock(wait_mutex_);
  waits_[static_cast<std::size_t>(rank)].heal_exhausted = true;
}

void Hub::mark_unblocked(int rank) {
  {
    std::lock_guard<std::mutex> lock(wait_mutex_);
    WaitState& w = waits_[static_cast<std::size_t>(rank)];
    w.blocked = false;
    ++w.epoch;
  }
  if (health_.enabled()) health_.on_unblocked(rank);
}

void Hub::mark_dead(int rank) {
  std::lock_guard<std::mutex> lock(wait_mutex_);
  waits_[static_cast<std::size_t>(rank)].dead = true;
}

void Hub::admit_joiner(int rank) {
  std::lock_guard<std::mutex> lock(wait_mutex_);
  ++waits_[static_cast<std::size_t>(rank)].epoch;
  ++joiners_admitted_;
}

std::uint64_t Hub::joiners_admitted() const {
  std::lock_guard<std::mutex> lock(wait_mutex_);
  return joiners_admitted_;
}

std::vector<int> Hub::dead_ranks() const {
  std::lock_guard<std::mutex> lock(wait_mutex_);
  std::vector<int> dead;
  for (int r = 0; r < nranks_; ++r) {
    if (waits_[static_cast<std::size_t>(r)].dead) dead.push_back(r);
  }
  return dead;
}

std::uint64_t Hub::total_liveness_epoch_bumps() const {
  std::lock_guard<std::mutex> lock(wait_mutex_);
  std::uint64_t total = 0;
  for (const WaitState& w : waits_) total += w.epoch;
  return total;
}

void Hub::mark_finished(int rank) {
  {
    std::lock_guard<std::mutex> lock(wait_mutex_);
    WaitState& w = waits_[static_cast<std::size_t>(rank)];
    if (!w.finished) {
      w.finished = true;
      w.blocked = false;
      --unfinished_;
    }
  }
  if (health_.enabled()) health_.on_finished(rank);
}

std::string Hub::deadlock_diagnostic() {
  // A rank is briefly still registered as blocked in the instants between
  // popping its frame and leaving the registry, so a single probe can observe
  // a phantom "all blocked, nothing deliverable" state when threads are
  // starved (oversubscribed CPUs). True deadlock is *stable*: confirm by
  // re-probing after a pause and requiring every liveness epoch unchanged —
  // any progress in between bumps an epoch and cancels the verdict.
  std::vector<std::uint64_t> first;
  std::string diag = deadlock_probe(&first);
  if (diag.empty() || first.empty()) return diag;  // clear, or stable death
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::vector<std::uint64_t> second;
  diag = deadlock_probe(&second);
  if (diag.empty()) return "";
  if (second.empty()) return diag;  // escalated to a rank-death diagnostic
  return first == second ? diag : "";
}

std::string Hub::deadlock_probe(std::vector<std::uint64_t>* epochs) {
  std::lock_guard<std::mutex> lock(wait_mutex_);
  if (unfinished_ == 0) return "";
  // Liveness-epoch classification: a registered dead rank means this is not
  // an all-blocked livelock — the blocked survivors are waiting on a rank
  // that will never send again, and recovery must shrink the world to the
  // survivors or restart it.
  bool any_dead = false;
  for (const WaitState& w : waits_) any_dead = any_dead || w.dead;
  if (any_dead) {
    std::ostringstream diag;
    diag << "rank death: survivors are blocked on rank(s) that terminated;";
    for (int r = 0; r < nranks_; ++r) {
      const WaitState& w = waits_[static_cast<std::size_t>(r)];
      if (w.dead) {
        diag << " rank " << r << " dead (liveness epoch " << w.epoch << ");";
      }
    }
    diag << " shrink to survivors or restart";
    return diag.str();
  }
  for (const WaitState& w : waits_) {
    if (!w.finished && !w.blocked) return "";  // someone can still progress
  }
  // All unfinished ranks are blocked; the run is stuck unless one of the
  // awaited messages is already queued, or the reliability layer still holds
  // a retransmittable copy (the blocked receiver will heal the channel
  // itself). Sends complete before the sender can register as blocked, so
  // this probe cannot miss an in-flight push.
  for (int r = 0; r < nranks_; ++r) {
    const WaitState& w = waits_[static_cast<std::size_t>(r)];
    if (w.finished) continue;
    Channel& c = channel(w.src, r);
    if (c.has_message(w.tag)) return "";
    if (options_.reliability.enabled && !w.heal_exhausted &&
        c.can_retransmit(w.tag)) {
      return "";
    }
  }
  std::ostringstream diag;
  diag << "deadlock: every unfinished rank is blocked with no deliverable "
          "message;";
  for (int r = 0; r < nranks_; ++r) {
    const WaitState& w = waits_[static_cast<std::size_t>(r)];
    if (w.finished) continue;
    epochs->push_back(w.epoch);
    diag << " rank " << r << " blocked in recv(src=" << w.src
         << ", tag=" << w.tag << ", liveness epoch " << w.epoch << ");";
  }
  return diag.str();
}

int join_handshake(Comm& comm, const JoinCapability& capability) {
  const int prior = comm.prior_world();
  const int p = comm.size();
  if (prior <= 0 || prior >= p) return 0;  // not a grow resume
  // Two collective-style tags, advanced identically on every rank: one for
  // the joiner -> root capability upload, one for the admitted-count fanout.
  const std::int64_t cap_tag = comm.next_collective_tag();
  const std::int64_t admit_tag = comm.next_collective_tag();
  int admitted = 0;
  if (comm.rank() == 0) {
    for (int joiner = prior; joiner < p; ++joiner) {
      const auto offered = comm.recv_value<JoinCapability>(joiner, cap_tag);
      if (offered.fingerprint != capability.fingerprint ||
          offered.total_records != capability.total_records ||
          offered.num_attributes != capability.num_attributes ||
          offered.layout != capability.layout) {
        std::ostringstream what;
        what << "join_handshake: joiner rank " << joiner
             << " capability mismatch (fingerprint " << offered.fingerprint
             << " vs " << capability.fingerprint << ", records "
             << offered.total_records << " vs " << capability.total_records
             << ", attrs " << offered.num_attributes << " vs "
             << capability.num_attributes << ", layout " << offered.layout
             << " vs " << capability.layout << "); refusing to admit";
        throw std::runtime_error(what.str());
      }
      comm.admit_joiner(joiner);
      ++admitted;
    }
    for (int r = 1; r < p; ++r) comm.send_value<int>(r, admit_tag, admitted);
  } else {
    if (comm.rank() >= prior) {
      comm.send_value<JoinCapability>(0, cap_tag, capability);
    }
    admitted = comm.recv_value<int>(0, admit_tag);
  }
  if (MetricsSnapshot* sink = metrics_sink()) {
    if (comm.rank() == 0) {
      sink->add("recovery.joiners_admitted", static_cast<double>(admitted));
    }
  }
  return admitted;
}

CommStats RunResult::total_stats() const {
  CommStats total;
  for (const RankOutcome& r : ranks) total += r.stats;
  return total;
}

std::size_t RunResult::max_peak_bytes_per_rank() const {
  std::size_t peak = 0;
  for (const RankOutcome& r : ranks) peak = std::max(peak, r.meter.peak_bytes());
  return peak;
}

std::uint64_t RunResult::max_bytes_sent_per_rank() const {
  std::uint64_t peak = 0;
  for (const RankOutcome& r : ranks) peak = std::max(peak, r.stats.bytes_sent);
  return peak;
}

RunResult try_run_ranks(int nranks, const CostModel& model,
                        const std::function<void(Comm&)>& body,
                        const RunOptions& options) {
  if (nranks <= 0) {
    throw std::invalid_argument("run_ranks: nranks must be positive");
  }
  Hub hub(nranks, options);
  RunResult result;
  result.ranks.resize(static_cast<std::size_t>(nranks));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));

  util::Stopwatch wall;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      RankOutcome& outcome = result.ranks[static_cast<std::size_t>(r)];
      // Bind the thread-local rank context (log-line prefix + trace lane)
      // and the rank's metrics sink for the lifetime of the body.
      util::ThreadRankGuard rank_guard(r);
      MetricsSinkGuard sink_guard(&outcome.metrics);
      Comm comm(hub, r, model, &outcome.meter);
      try {
        body(comm);
      } catch (const RankAborted&) {
        // Secondary failure caused by another rank's abort; not reported.
      } catch (const DeadlockDetected&) {
        // The reporting rank is a victim, not a casualty: nobody provably
        // died, so it is not registered in the liveness registry.
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        hub.poison_all();
      } catch (const RecvTimeout&) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        hub.poison_all();
      } catch (const StragglerDetected&) {
        // Like DeadlockDetected, the reporting rank is a victim: the
        // straggler itself is alive and correct, so nobody is marked dead.
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        hub.poison_all();
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        // Poison before registering the death: waiters must wake with
        // RankAborted (secondary) rather than observe the death through the
        // deadlock diagnostic and report a phantom primary failure.
        hub.poison_all();
        hub.mark_dead(r);
      }
      hub.mark_finished(r);
      outcome.stats = comm.stats();
      outcome.vtime_seconds = comm.vtime();
      absorb_comm_stats(outcome.metrics, outcome.stats);
      outcome.metrics.merge_histogram("comm.message_bytes",
                                      comm.message_bytes_histogram());
      if (comm.backoff_waits() > 0) {
        outcome.metrics.add("transport.backoff_waits",
                            static_cast<double>(comm.backoff_waits()));
      }
      if (comm.heals() > 0) {
        outcome.metrics.add("transport.heals",
                            static_cast<double>(comm.heals()));
      }
      if (comm.deadlock_probes() > 0) {
        outcome.metrics.add("runtime.deadlock_probes",
                            static_cast<double>(comm.deadlock_probes()));
      }
      if (comm.heartbeats_sent() > 0) {
        outcome.metrics.add("health.heartbeats_sent",
                            static_cast<double>(comm.heartbeats_sent()));
      }
      outcome.metrics.merge_histogram("health.suspicion_phi_x100",
                                      comm.suspicion_histogram());
      outcome.metrics.merge_histogram("health.watermark_lag",
                                      comm.watermark_lag_histogram());
      if (comm.adaptive_timeout_max_s() > 0.0) {
        outcome.metrics.gauge_max("health.adaptive_timeout_s",
                                  comm.adaptive_timeout_max_s());
      }
      outcome.metrics.gauge_max(
          "memory.peak_bytes_per_rank",
          static_cast<double>(outcome.meter.peak_bytes()));
    });
  }
  for (std::thread& t : threads) t.join();
  result.wall_seconds = wall.elapsed_seconds();

  result.dead_ranks = hub.dead_ranks();
  for (int r = 0; r < nranks; ++r) {
    if (!errors[static_cast<std::size_t>(r)]) continue;
    result.failed_rank = r;
    result.error = errors[static_cast<std::size_t>(r)];
    try {
      std::rethrow_exception(result.error);
    } catch (const DeadlockDetected& e) {
      result.failure_kind = FailureKind::kDeadlock;
      result.failure_message = e.what();
    } catch (const RecvTimeout& e) {
      result.failure_kind = FailureKind::kTimeout;
      result.failure_message = e.what();
    } catch (const StragglerDetected& e) {
      result.failure_kind = FailureKind::kStraggler;
      result.failure_message = e.what();
      result.straggler_rank = hub.health().straggler_rank();
      result.straggler_slowdown = hub.health().straggler_slowdown();
    } catch (const std::exception& e) {
      result.failure_kind = FailureKind::kRankDeath;
      result.failure_message = e.what();
    } catch (...) {
      result.failure_kind = FailureKind::kRankDeath;
      result.failure_message = "non-standard exception";
    }
    break;
  }

  // Teardown hygiene: a poisoned run may leave undelivered messages queued;
  // drain them so they cannot leak into the diagnostics of a later run. A
  // *clean* run with queued messages is a protocol bug and must be loud —
  // except for stale duplicates already absorbed by the reliability layer,
  // which drain() classifies into the duplicate counter instead.
  result.undelivered_messages = hub.drain_all_channels();
  result.transport = hub.transport_stats();
  if (!hub.all_channels_empty()) {
    throw std::logic_error("run_ranks: channels not empty after drain");
  }
  if (!result.failed() && result.undelivered_messages > 0) {
    throw std::logic_error(
        "run_ranks: clean run left " +
        std::to_string(result.undelivered_messages) +
        " undelivered message(s) queued (unmatched send/recv pair)");
  }

  for (const RankOutcome& r : result.ranks) {
    result.modeled_seconds = std::max(result.modeled_seconds, r.vtime_seconds);
  }

  // Fold the per-rank snapshots plus the run-scoped transport/runtime
  // counters into the unified registry.
  for (const RankOutcome& r : result.ranks) result.metrics.merge(r.metrics);
  absorb_channel_stats(result.metrics, result.transport);
  result.metrics.add("runtime.liveness_epoch_bumps",
                     static_cast<double>(hub.total_liveness_epoch_bumps()));
  if (hub.health().heartbeats_received() > 0) {
    result.metrics.add("health.heartbeats_received",
                       static_cast<double>(hub.health().heartbeats_received()));
  }
  if (hub.health().watermark_advances() > 0) {
    result.metrics.add("health.watermark_advances",
                       static_cast<double>(hub.health().watermark_advances()));
  }
  if (result.failure_kind == FailureKind::kStraggler) {
    result.metrics.add("health.stragglers_detected", 1.0);
    telemetry::record_event(
        "straggler", "rank " + std::to_string(result.straggler_rank) +
                         " classified slow (x" +
                         std::to_string(result.straggler_slowdown) + "): " +
                         result.failure_message);
  }
  result.metrics.gauge_max("runtime.ranks", static_cast<double>(nranks));
  result.metrics.gauge_max("runtime.modeled_seconds", result.modeled_seconds);
  result.metrics.gauge_max("runtime.wall_seconds", result.wall_seconds);
  return result;
}

RunResult run_ranks(int nranks, const CostModel& model,
                    const std::function<void(Comm&)>& body,
                    const RunOptions& options) {
  RunResult result = try_run_ranks(nranks, model, body, options);
  if (result.failed()) std::rethrow_exception(result.error);
  return result;
}

}  // namespace scalparc::mp
