// Minimal leveled logger for the ScalParC library.
//
// The library itself is quiet by default (kWarn); examples and benches raise
// the level. Logging is routed through a single sink so that multi-threaded
// rank output is not interleaved mid-line.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace scalparc::util {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

// Global log level. Thread-safe to read/write (atomic underneath).
LogLevel log_level();
void set_log_level(LogLevel level);

// Parses "trace"/"debug"/"info"/"warn"/"error"/"off"; defaults to kWarn.
LogLevel parse_log_level(std::string_view name);

// Emits one complete line to stderr under a global mutex.
void log_line(LogLevel level, std::string_view message);

namespace detail {

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream() { log_line(level_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace scalparc::util

#define SCALPARC_LOG(level)                                      \
  if (static_cast<int>(level) <                                  \
      static_cast<int>(::scalparc::util::log_level())) {         \
  } else                                                         \
    ::scalparc::util::detail::LogStream(level)

#define SCALPARC_LOG_TRACE SCALPARC_LOG(::scalparc::util::LogLevel::kTrace)
#define SCALPARC_LOG_DEBUG SCALPARC_LOG(::scalparc::util::LogLevel::kDebug)
#define SCALPARC_LOG_INFO SCALPARC_LOG(::scalparc::util::LogLevel::kInfo)
#define SCALPARC_LOG_WARN SCALPARC_LOG(::scalparc::util::LogLevel::kWarn)
#define SCALPARC_LOG_ERROR SCALPARC_LOG(::scalparc::util::LogLevel::kError)
