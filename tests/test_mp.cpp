// Unit tests for the message-passing runtime: point-to-point, every
// collective against a serial oracle for a sweep of rank counts, the cost
// model's virtual clock, statistics accounting, and failure handling.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "mp/collectives.hpp"
#include "mp/comm.hpp"
#include "mp/costmodel.hpp"
#include "mp/runtime.hpp"

namespace scalparc {
namespace {

const mp::CostModel kZero = mp::CostModel::zero();

// ---------------------------------------------------------------------------
// Point-to-point
// ---------------------------------------------------------------------------

TEST(MpP2P, RoundTrip) {
  mp::run_ranks(2, kZero, [](mp::Comm& comm) {
    if (comm.rank() == 0) {
      const std::vector<int> payload{1, 2, 3};
      comm.send<int>(1, 7, payload);
      const auto echoed = comm.recv<int>(1, 8);
      EXPECT_EQ(echoed, payload);
    } else {
      const auto got = comm.recv<int>(0, 7);
      comm.send<int>(0, 8, got);
    }
  });
}

TEST(MpP2P, TagMatchingAllowsOutOfOrderArrival) {
  mp::run_ranks(2, kZero, [](mp::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value<int>(1, /*tag=*/100, 10);
      comm.send_value<int>(1, /*tag=*/200, 20);
    } else {
      // Receive the second message first.
      EXPECT_EQ(comm.recv_value<int>(0, 200), 20);
      EXPECT_EQ(comm.recv_value<int>(0, 100), 10);
    }
  });
}

TEST(MpP2P, EmptyPayload) {
  mp::run_ranks(2, kZero, [](mp::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send<int>(1, 1, std::span<const int>{});
    } else {
      EXPECT_TRUE(comm.recv<int>(0, 1).empty());
    }
  });
}

TEST(MpP2P, BadDestinationThrows) {
  EXPECT_THROW(mp::run_ranks(1, kZero,
                             [](mp::Comm& comm) {
                               comm.send_value<int>(5, 0, 1);
                             }),
               std::invalid_argument);
}

TEST(MpRuntime, ExceptionPropagatesAndPeersUnblock) {
  // Rank 1 dies; rank 0 is blocked in recv and must be woken via poisoning.
  EXPECT_THROW(mp::run_ranks(2, kZero,
                             [](mp::Comm& comm) {
                               if (comm.rank() == 0) {
                                 (void)comm.recv<int>(1, 9);
                               } else {
                                 throw std::runtime_error("rank 1 died");
                               }
                             }),
               std::runtime_error);
}

TEST(MpRuntime, RejectsNonPositiveRankCount) {
  EXPECT_THROW(mp::run_ranks(0, kZero, [](mp::Comm&) {}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Collectives vs serial oracles across rank counts
// ---------------------------------------------------------------------------

class Collectives : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(RankSweep, Collectives,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 13));

TEST_P(Collectives, BroadcastFromEveryRoot) {
  const int p = GetParam();
  for (int root = 0; root < p; ++root) {
    mp::run_ranks(p, kZero, [root](mp::Comm& comm) {
      std::vector<std::int64_t> data;
      if (comm.rank() == root) data = {1, 2, 3, 42};
      mp::bcast(comm, data, root);
      ASSERT_EQ(data.size(), 4u);
      EXPECT_EQ(data[3], 42);
    });
  }
}

TEST_P(Collectives, BroadcastValue) {
  const int p = GetParam();
  mp::run_ranks(p, kZero, [](mp::Comm& comm) {
    const double v = mp::bcast_value(comm, comm.rank() == 0 ? 3.25 : -1.0, 0);
    EXPECT_DOUBLE_EQ(v, 3.25);
  });
}

TEST_P(Collectives, ReduceSumToEveryRoot) {
  const int p = GetParam();
  for (int root = 0; root < p; ++root) {
    mp::run_ranks(p, kZero, [root, p](mp::Comm& comm) {
      const std::int64_t value = comm.rank() + 1;
      const std::int64_t sum = mp::reduce_value(comm, value, mp::SumOp{}, root);
      if (comm.rank() == root) {
        EXPECT_EQ(sum, static_cast<std::int64_t>(p) * (p + 1) / 2);
      }
    });
  }
}

TEST_P(Collectives, AllreduceVector) {
  const int p = GetParam();
  mp::run_ranks(p, kZero, [p](mp::Comm& comm) {
    const std::vector<std::int64_t> local{comm.rank(), 1, 2 * comm.rank()};
    const auto total = mp::allreduce_vec(
        comm, std::span<const std::int64_t>(local), mp::SumOp{});
    const std::int64_t ranks_sum = static_cast<std::int64_t>(p) * (p - 1) / 2;
    ASSERT_EQ(total.size(), 3u);
    EXPECT_EQ(total[0], ranks_sum);
    EXPECT_EQ(total[1], p);
    EXPECT_EQ(total[2], 2 * ranks_sum);
  });
}

TEST_P(Collectives, AllreduceMinMax) {
  const int p = GetParam();
  mp::run_ranks(p, kZero, [p](mp::Comm& comm) {
    EXPECT_EQ(mp::allreduce_value(comm, comm.rank(), mp::MinOp{}), 0);
    EXPECT_EQ(mp::allreduce_value(comm, comm.rank(), mp::MaxOp{}), p - 1);
  });
}

TEST_P(Collectives, ExscanSum) {
  const int p = GetParam();
  mp::run_ranks(p, kZero, [](mp::Comm& comm) {
    const std::int64_t r = comm.rank();
    const std::int64_t prefix =
        mp::exscan_value(comm, r + 1, mp::SumOp{}, std::int64_t{0});
    // sum of 1..r
    EXPECT_EQ(prefix, r * (r + 1) / 2);
  });
}

TEST_P(Collectives, ExscanVector) {
  const int p = GetParam();
  mp::run_ranks(p, kZero, [](mp::Comm& comm) {
    const std::int64_t r = comm.rank();
    const std::vector<std::int64_t> local{1, r};
    const auto prefix = mp::exscan_vec(
        comm, std::span<const std::int64_t>(local), mp::SumOp{}, std::int64_t{0});
    ASSERT_EQ(prefix.size(), 2u);
    EXPECT_EQ(prefix[0], r);                 // count of earlier ranks
    EXPECT_EQ(prefix[1], r * (r - 1) / 2);   // sum of earlier ranks
  });
}

TEST_P(Collectives, GatherValues) {
  const int p = GetParam();
  mp::run_ranks(p, kZero, [p](mp::Comm& comm) {
    const auto gathered = mp::gather_values(comm, comm.rank() * 10, 0);
    if (comm.is_root()) {
      ASSERT_EQ(gathered.size(), static_cast<std::size_t>(p));
      for (int r = 0; r < p; ++r) EXPECT_EQ(gathered[r], r * 10);
    } else {
      EXPECT_TRUE(gathered.empty());
    }
  });
}

TEST_P(Collectives, GathervVariableChunks) {
  const int p = GetParam();
  mp::run_ranks(p, kZero, [p](mp::Comm& comm) {
    std::vector<int> local(static_cast<std::size_t>(comm.rank()), comm.rank());
    const auto chunks = mp::gatherv(comm, std::span<const int>(local), p - 1);
    if (comm.rank() == p - 1) {
      ASSERT_EQ(chunks.size(), static_cast<std::size_t>(p));
      for (int r = 0; r < p; ++r) {
        EXPECT_EQ(chunks[r].size(), static_cast<std::size_t>(r));
        for (const int v : chunks[r]) EXPECT_EQ(v, r);
      }
    }
  });
}

TEST_P(Collectives, AllgathervConcat) {
  const int p = GetParam();
  mp::run_ranks(p, kZero, [p](mp::Comm& comm) {
    const std::vector<int> local{comm.rank(), comm.rank()};
    const auto flat = mp::allgatherv_concat(comm, std::span<const int>(local));
    ASSERT_EQ(flat.size(), static_cast<std::size_t>(2 * p));
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(flat[2 * r], r);
      EXPECT_EQ(flat[2 * r + 1], r);
    }
  });
}

TEST_P(Collectives, AlltoallvPersonalizedExchange) {
  const int p = GetParam();
  mp::run_ranks(p, kZero, [p](mp::Comm& comm) {
    // Rank r sends d copies of value r*100+d to destination d.
    std::vector<std::vector<int>> send(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) {
      send[d].assign(static_cast<std::size_t>(d), comm.rank() * 100 + d);
    }
    const auto recv = mp::alltoallv(comm, send);
    ASSERT_EQ(recv.size(), static_cast<std::size_t>(p));
    for (int s = 0; s < p; ++s) {
      EXPECT_EQ(recv[s].size(), static_cast<std::size_t>(comm.rank()));
      for (const int v : recv[s]) EXPECT_EQ(v, s * 100 + comm.rank());
    }
  });
}

TEST_P(Collectives, Barrier) {
  const int p = GetParam();
  mp::run_ranks(p, kZero, [](mp::Comm& comm) { mp::barrier(comm); });
}

TEST(Collectives, AlltoallvRejectsWrongBufferCount) {
  EXPECT_THROW(
      mp::run_ranks(2, kZero,
                    [](mp::Comm& comm) {
                      std::vector<std::vector<int>> bad(1);
                      (void)mp::alltoallv(comm, bad);
                    }),
      std::invalid_argument);
}

TEST(Collectives, CustomCombineStruct) {
  struct ArgMin {
    double value;
    std::int32_t rank;
    std::int32_t pad = 0;
  };
  struct ArgMinOp {
    ArgMin operator()(const ArgMin& a, const ArgMin& b) const {
      return b.value < a.value ? b : a;
    }
  };
  mp::run_ranks(5, kZero, [](mp::Comm& comm) {
    // Rank 3 has the smallest value.
    const double v = comm.rank() == 3 ? -1.0 : static_cast<double>(comm.rank());
    const ArgMin winner =
        mp::allreduce_value(comm, ArgMin{v, comm.rank()}, ArgMinOp{});
    EXPECT_EQ(winner.rank, 3);
    EXPECT_DOUBLE_EQ(winner.value, -1.0);
  });
}

// ---------------------------------------------------------------------------
// Cost model / virtual time
// ---------------------------------------------------------------------------

TEST(MpCostModel, WorkAdvancesClock) {
  mp::CostModel model = mp::CostModel::zero();
  model.seconds_per_work_unit = 1e-6;
  const auto result = mp::run_ranks(2, model, [](mp::Comm& comm) {
    comm.add_work(1000.0);
  });
  EXPECT_DOUBLE_EQ(result.modeled_seconds, 1e-3);
}

TEST(MpCostModel, MessageCostsLatencyAndBandwidth) {
  mp::CostModel model = mp::CostModel::zero();
  model.latency_s = 1e-3;
  model.seconds_per_byte = 1e-6;
  const auto result = mp::run_ranks(2, model, [](mp::Comm& comm) {
    if (comm.rank() == 0) {
      const std::vector<std::byte> payload(1000);
      comm.send_bytes(1, 0, payload);
    } else {
      (void)comm.recv_bytes(0, 0);
    }
  });
  // Receiver clock: 1 ms latency + 1000 B * 1 us/B = 2 ms.
  EXPECT_NEAR(result.modeled_seconds, 2e-3, 1e-12);
}

TEST(MpCostModel, SlowestRankDominatesAfterCollective) {
  mp::CostModel model = mp::CostModel::zero();
  model.seconds_per_work_unit = 1e-6;
  const auto result = mp::run_ranks(4, model, [](mp::Comm& comm) {
    if (comm.rank() == 2) comm.add_work(5000.0);
    mp::barrier(comm);
  });
  // Every rank's clock must have been pulled up to at least rank 2's work.
  for (const auto& rank : result.ranks) {
    EXPECT_GE(rank.vtime_seconds, 5e-3);
  }
}

TEST(MpCostModel, ZeroModelKeepsClockAtZero) {
  const auto result = mp::run_ranks(3, kZero, [](mp::Comm& comm) {
    comm.add_work(100.0);
    mp::barrier(comm);
  });
  EXPECT_DOUBLE_EQ(result.modeled_seconds, 0.0);
}

TEST(MpCostModel, CrayT3DDefaultsAreSane) {
  const mp::CostModel t3d = mp::CostModel::cray_t3d();
  EXPECT_GT(t3d.latency_s, 0.0);
  EXPECT_GT(t3d.seconds_per_byte, 0.0);
  EXPECT_GT(t3d.wire_seconds(1 << 20), t3d.wire_seconds(1));
}

// ---------------------------------------------------------------------------
// Statistics
// ---------------------------------------------------------------------------

TEST(MpStats, CountsBytesAndMessages) {
  const auto result = mp::run_ranks(2, kZero, [](mp::Comm& comm) {
    if (comm.rank() == 0) {
      const std::vector<std::int32_t> payload(25, 1);
      comm.send<std::int32_t>(1, 0, payload);
    } else {
      (void)comm.recv<std::int32_t>(0, 0);
    }
  });
  EXPECT_EQ(result.ranks[0].stats.bytes_sent, 100u);
  EXPECT_EQ(result.ranks[0].stats.messages_sent, 1u);
  EXPECT_EQ(result.ranks[1].stats.bytes_received, 100u);
  EXPECT_EQ(result.ranks[1].stats.messages_received, 1u);
}

TEST(MpStats, AttributesBytesToCollectiveClass) {
  const auto result = mp::run_ranks(4, kZero, [](mp::Comm& comm) {
    std::vector<std::vector<std::int64_t>> send(4);
    for (auto& buf : send) buf.assign(10, comm.rank());
    (void)mp::alltoallv(comm, send);
  });
  const mp::CommStats total = result.total_stats();
  EXPECT_GT(total.bytes_sent_by_op[static_cast<int>(mp::CommOp::kAlltoall)], 0u);
  EXPECT_EQ(total.bytes_sent_by_op[static_cast<int>(mp::CommOp::kBroadcast)], 0u);
  EXPECT_EQ(total.calls_by_op[static_cast<int>(mp::CommOp::kAlltoall)], 4u);
}

TEST(MpStats, WorkUnitsRecorded) {
  const auto result = mp::run_ranks(2, kZero, [](mp::Comm& comm) {
    comm.add_work(12.5);
  });
  EXPECT_DOUBLE_EQ(result.ranks[0].stats.work_units, 12.5);
  EXPECT_DOUBLE_EQ(result.total_stats().work_units, 25.0);
}

TEST(MpStats, OpNames) {
  EXPECT_EQ(mp::comm_op_name(mp::CommOp::kAlltoall), "alltoall");
  EXPECT_EQ(mp::comm_op_name(mp::CommOp::kScan), "scan");
}

TEST(MpStats, MaxBytesPerRank) {
  const auto result = mp::run_ranks(3, kZero, [](mp::Comm& comm) {
    if (comm.rank() == 1) {
      const std::vector<std::byte> big(1000);
      comm.send_bytes(0, 0, big);
    }
    mp::barrier(comm);
    if (comm.rank() == 0) (void)comm.recv_bytes(1, 0);
  });
  EXPECT_GE(result.max_bytes_sent_per_rank(), 1000u);
}

}  // namespace
}  // namespace scalparc
