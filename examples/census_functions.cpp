// Domain scenario: classifying census/credit-style records.
//
// The Quest generator models the demographic/financial records (salary,
// commission, age, education, car, zipcode, house value, ...) that motivate
// the SLIQ/SPRINT/ScalParC line of work. This example sweeps the ten-years-
// of-benchmarks labeling functions F1..F7, trains on noisy data, compares
// the unpruned and MDL-pruned trees on held-out records, and prints a
// per-function report.
//
//   ./examples/census_functions [--records N] [--ranks P] [--noise X]
#include <cstdio>

#include "core/predict.hpp"
#include "core/pruning.hpp"
#include "core/scalparc.hpp"
#include "data/synthetic.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace scalparc;
  const util::CliArgs args(argc, argv);
  const std::uint64_t records =
      static_cast<std::uint64_t>(args.get_int("records", 5000));
  const int ranks = static_cast<int>(args.get_int("ranks", 4));
  const double noise = args.get_double("noise", 0.05);

  std::printf("Census-style workload sweep: %llu records, %d ranks, %.0f%% label noise\n\n",
              static_cast<unsigned long long>(records), ranks, noise * 100.0);
  std::printf("  func   nodes  depth  nodes(pruned)  train-acc  test-acc  test-acc(pruned)\n");

  for (int f = 1; f <= 10; ++f) {
    data::GeneratorConfig config;
    config.seed = 100 + static_cast<std::uint64_t>(f);
    config.function = static_cast<data::LabelFunction>(f);
    config.label_noise = noise;
    config.num_attributes = 9;  // full attribute set: F5/F7-F10 need loan/hvalue
    const data::QuestGenerator generator(config);

    core::FitReport report =
        core::ScalParC::fit_generated(generator, records, ranks);

    const data::Dataset holdout = generator.generate(records + 1000000, 5000);
    const double train_acc =
        core::holdout_accuracy(report.tree, generator, 0, records);
    const core::ConfusionMatrix before = core::evaluate(report.tree, holdout);

    core::DecisionTree pruned = report.tree;
    core::mdl_prune(pruned);
    const core::ConfusionMatrix after = core::evaluate(pruned, holdout);

    std::printf("  F%-4d %6d %6d %14d %10.4f %9.4f %17.4f\n", f,
                report.tree.num_nodes(), report.tree.depth(),
                pruned.num_nodes(), train_acc, before.accuracy(),
                after.accuracy());
  }

  std::printf(
      "\nNote: with label noise, the unpruned tree memorizes noise (train-acc\n"
      "~1-noise) while MDL pruning removes noise-fitting subtrees, keeping\n"
      "held-out accuracy at least as good with a much smaller model.\n");
  return 0;
}
