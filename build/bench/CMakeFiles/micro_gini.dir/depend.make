# Empty dependencies file for micro_gini.
# This may be replaced when dependencies are built.
