// Figure 3(a): ScalParC runtime scalability.
//
// Paper: parallel runtime (log scale) vs processor count for six training
// sizes, 0.2M .. 6.4M records, on up to 128 Cray T3D processors; the quoted
// observations are (i) relative speedups decrease with p for a fixed size
// because overheads grow, and (ii) relative speedups improve for larger
// sizes because the computation-to-communication ratio grows.
//
// We reproduce the same series with the cost-model-backed simulation: each
// (size, p) cell runs the full ScalParC fit on p ranks, with per-rank work
// metered and every message priced by the Cray T3D calibration; the reported
// time is the maximum virtual clock. A serial (p=1) run provides the
// speedup baseline.
//
//   ./fig3a_runtime [--scale X] [--procs 2,4,...] [--csv DIR]
#include <cstdio>
#include <map>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace scalparc;
  const util::CliArgs args(argc, argv);
  const double scale = args.get_double("scale", 1.0 / 16.0);
  const auto sizes = bench::paper_sizes(scale);
  const auto procs = args.get_int_list("procs", bench::paper_procs());
  const auto generator = bench::paper_generator();
  const auto controls = bench::paper_controls();
  const auto model = mp::CostModel::cray_t3d();

  bench::CsvWriter csv(args, "fig3a_runtime.csv",
                       "records,procs,modeled_seconds,speedup_vs_serial");

  std::printf("Figure 3(a): parallel runtime scalability (scale %.4g of paper sizes)\n\n",
              scale);
  std::printf("%10s %6s %16s %10s\n", "records", "procs", "modeled-time(s)",
              "speedup");

  std::map<std::uint64_t, double> serial_time;
  for (const std::uint64_t n : sizes) {
    const auto serial = core::ScalParC::fit_generated(generator, n, 1, controls, model);
    serial_time[n] = serial.run.modeled_seconds;
    for (const std::int64_t p : procs) {
      const auto report = core::ScalParC::fit_generated(
          generator, n, static_cast<int>(p), controls, model);
      const double t = report.run.modeled_seconds;
      const double speedup = serial_time[n] / t;
      std::printf("%10s %6lld %16.3f %10.2f\n", bench::size_label(n).c_str(),
                  static_cast<long long>(p), t, speedup);
      csv.row("%llu,%lld,%.6f,%.4f", static_cast<unsigned long long>(n),
              static_cast<long long>(p), t, speedup);
    }
    std::printf("\n");
  }

  // The paper's quoted relative-speedup observations, recomputed.
  const auto rel = [&](std::uint64_t n, int p_from, int p_to) {
    const auto a = core::ScalParC::fit_generated(generator, n, p_from, controls, model);
    const auto b = core::ScalParC::fit_generated(generator, n, p_to, controls, model);
    return a.run.modeled_seconds / b.run.modeled_seconds;
  };
  if (sizes.size() >= 6) {
    std::printf("relative speedups (paper §5 quotes these for its sizes):\n");
    std::printf("  %s:  8 -> 32 procs: %.2fx (ideal 4x)\n",
                bench::size_label(sizes[3]).c_str(), rel(sizes[3], 8, 32));
    std::printf("  %s: 64 -> 128 procs: %.2fx (ideal 2x)\n",
                bench::size_label(sizes[3]).c_str(), rel(sizes[3], 64, 128));
    std::printf("  %s: 64 -> 128 procs: %.2fx\n",
                bench::size_label(sizes[4]).c_str(), rel(sizes[4], 64, 128));
    std::printf("  %s: 64 -> 128 procs: %.2fx (larger size => closer to ideal)\n",
                bench::size_label(sizes[5]).c_str(), rel(sizes[5], 64, 128));
  }
  std::printf("\nCSV written to %s\n", csv.path().c_str());
  return 0;
}
