// Impurity measures for split selection (§2).
//
// The paper optimizes the gini index:
//   gini_i     = 1 - sum_j (n_ij / n_i)^2          (partition i)
//   gini_split = sum_i (n_i / n) * gini_i
// Entropy (C4.5-style information gain) is provided as an extension: the
// split minimizing the weighted child entropy maximizes information gain,
// so the same minimization machinery serves both criteria.
//
// All inputs are integer counts, so results are deterministic functions of
// the counts alone — independent of how records were distributed over
// processors. That property is what makes ScalParC's split decisions
// processor-count invariant (exercised heavily by the tests).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/count_matrix.hpp"
#include "core/options.hpp"

namespace scalparc::core {

// Gini impurity of one partition given its per-class counts.
double gini_of_counts(std::span<const std::int64_t> class_counts);

// Shannon entropy (bits) of one partition.
double entropy_of_counts(std::span<const std::int64_t> class_counts);

double impurity_of_counts(std::span<const std::int64_t> class_counts,
                          SplitCriterion criterion);

// Weighted impurity of a whole split. Empty partitions contribute nothing.
double impurity_of_split(const CountMatrix& matrix, SplitCriterion criterion);

// Back-compatible alias for the paper's criterion.
inline double gini_of_split(const CountMatrix& matrix) {
  return impurity_of_split(matrix, SplitCriterion::kGini);
}

// Incremental evaluator for the continuous-attribute linear scan: maintains
// the class histogram of records strictly below the moving split point and
// recomputes the two-partition weighted impurity in O(classes) per step.
class BinaryImpurityScanner {
 public:
  // `node_totals` are the node's global per-class counts; `below_start` is
  // the histogram of records that precede this processor's fragment (from
  // the parallel prefix in FindSplitI); both sized num_classes.
  BinaryImpurityScanner(std::span<const std::int64_t> node_totals,
                        std::span<const std::int64_t> below_start,
                        SplitCriterion criterion = SplitCriterion::kGini);

  // Moves one record of class `cls` from the upper to the lower partition.
  void advance(std::int32_t cls);

  // Weighted impurity for the current position (split point after all
  // advanced records). Returns +inf if either side is empty (not a valid
  // split).
  double current_impurity() const;

  std::int64_t below_total() const { return below_total_; }
  std::span<const std::int64_t> below_counts() const { return below_; }
  SplitCriterion criterion() const { return criterion_; }

 private:
  std::vector<std::int64_t> totals_;
  std::vector<std::int64_t> below_;
  std::int64_t node_total_ = 0;
  std::int64_t below_total_ = 0;
  SplitCriterion criterion_ = SplitCriterion::kGini;
};

// The paper-era name, kept for readability where gini is meant.
using BinaryGiniScanner = BinaryImpurityScanner;

}  // namespace scalparc::core
