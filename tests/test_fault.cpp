// Fault-injection and recovery tests: the FaultPlan grammar, kill/corrupt/
// delay/drop injection through the runtime, abort propagation promptness,
// deadlock and timeout reaping of blocked receivers, post-run channel
// hygiene, and the end-to-end guarantee: kill any rank at any level of the
// induction loop, resume from the level checkpoint, and recover a tree
// byte-identical to the fault-free run.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/scalparc.hpp"
#include "core/tree_io.hpp"
#include "data/synthetic.hpp"
#include "mp/collectives.hpp"
#include "mp/comm.hpp"
#include "mp/fault.hpp"
#include "mp/runtime.hpp"
#include "sort/partition_util.hpp"

namespace scalparc {
namespace {

namespace fs = std::filesystem;

const mp::CostModel kZero = mp::CostModel::zero();

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::string tree_bytes(const core::DecisionTree& tree) {
  std::ostringstream out;
  core::save_tree(tree, out);
  return out.str();
}

data::Dataset make_training(std::uint64_t records, std::uint64_t seed = 3) {
  data::GeneratorConfig config;
  config.seed = seed;
  config.function = data::LabelFunction::kF2;
  config.num_attributes = 7;
  return data::QuestGenerator(config).generate(0, records);
}

// RAII temp directory for checkpoint roots.
struct TempDir {
  std::string path;
  explicit TempDir(const std::string& stem)
      : path((fs::temp_directory_path() /
              (stem + "_" + std::to_string(::getpid()) + "_" +
               std::to_string(counter_++)))
                 .string()) {}
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  static inline int counter_ = 0;
};

// ---------------------------------------------------------------------------
// FaultPlan grammar
// ---------------------------------------------------------------------------

TEST(FaultPlan, ParsesEveryKind) {
  mp::FaultPlan plan;
  plan.parse(
      "kill:r=2,level=3 ; kill:r=1,op=50; corrupt:r=0,op=10 ;"
      "delay:r=1,op=5,ms=20;drop:r=0,op=3");
  ASSERT_EQ(plan.actions().size(), 5u);
  EXPECT_EQ(plan.actions()[0].kind, mp::FaultKind::kKill);
  EXPECT_EQ(plan.actions()[0].rank, 2);
  EXPECT_EQ(plan.actions()[0].level, 3);
  EXPECT_EQ(plan.actions()[0].op, -1);
  EXPECT_EQ(plan.actions()[1].op, 50);
  EXPECT_EQ(plan.actions()[2].kind, mp::FaultKind::kCorrupt);
  EXPECT_EQ(plan.actions()[3].kind, mp::FaultKind::kDelay);
  EXPECT_DOUBLE_EQ(plan.actions()[3].delay_ms, 20.0);
  EXPECT_EQ(plan.actions()[4].kind, mp::FaultKind::kDrop);
  EXPECT_TRUE(plan.kills_at_level(2, 3));
  EXPECT_FALSE(plan.kills_at_level(2, 2));
  EXPECT_TRUE(plan.kills_at_op(1, 50));
  EXPECT_TRUE(plan.corrupts_at_op(0, 10));
  EXPECT_TRUE(plan.drops_at_op(0, 3));
  EXPECT_DOUBLE_EQ(plan.delay_ms_at_op(1, 5), 20.0);
  EXPECT_DOUBLE_EQ(plan.delay_ms_at_op(1, 6), 0.0);
}

TEST(FaultPlan, ParsesDuplicateKind) {
  mp::FaultPlan plan;
  plan.parse("duplicate:r=1,op=4");
  ASSERT_EQ(plan.actions().size(), 1u);
  EXPECT_EQ(plan.actions()[0].kind, mp::FaultKind::kDuplicate);
  EXPECT_TRUE(plan.duplicates_at_op(1, 4));
  EXPECT_FALSE(plan.duplicates_at_op(1, 5));
  EXPECT_FALSE(plan.duplicates_at_op(0, 4));
}

// Two actions with the same (kind, rank, trigger) would fire twice at one
// point; the parser rejects the plan and names the offending entry.
TEST(FaultPlan, RejectsDuplicateActions) {
  const struct {
    const char* spec;
    const char* offender;  // entry text the diagnostic must quote
  } bad[] = {
      {"drop:r=0,op=3 ; drop:r=0,op=3", "drop:r=0,op=3"},
      {"kill:r=2,level=3;corrupt:r=1,op=9;kill:r=2,level=3",
       "kill:r=2,level=3"},
      {"duplicate:r=1,op=4 ;duplicate:r=1,op=4", "duplicate:r=1,op=4"},
  };
  for (const auto& c : bad) {
    mp::FaultPlan plan;
    try {
      plan.parse(c.spec);
      FAIL() << "accepted: " << c.spec;
    } catch (const std::invalid_argument& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("duplicates an earlier action"), std::string::npos)
          << c.spec << " -> " << what;
      EXPECT_NE(what.find(c.offender), std::string::npos)
          << c.spec << " -> " << what;
    }
  }
  // Same kind and rank but different triggers is a legitimate plan.
  mp::FaultPlan ok;
  ok.parse("drop:r=0,op=3 ; drop:r=0,op=4");
  EXPECT_EQ(ok.actions().size(), 2u);
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  const char* bad[] = {
      "kill",                      // no trigger
      "kill:level=3",              // no rank
      "kill:r=1",                  // neither op nor level
      "kill:r=1,op=2,level=3",     // both triggers
      "corrupt:r=1,level=2",       // only kill supports level triggers
      "drop:r=0,level=1",          // likewise
      "delay:r=1,op=5",            // delay needs ms
      "delay:r=1,op=5,ms=0",       // ...a positive ms
      "explode:r=1,op=5",          // unknown kind
      "kill:r=x,op=5",             // unparsable number
      "kill:r=1,op=5,bogus=7",     // unknown key
  };
  for (const char* spec : bad) {
    mp::FaultPlan plan;
    EXPECT_THROW(plan.parse(spec), std::invalid_argument) << spec;
  }
}

// ---------------------------------------------------------------------------
// Kill injection and abort propagation
// ---------------------------------------------------------------------------

TEST(FaultInjection, OpKillIsReportedAsPrimaryFailure) {
  mp::FaultPlan plan;
  plan.parse("kill:r=1,op=1");
  mp::RunOptions options;
  options.fault_plan = &plan;
  const mp::RunResult run =
      mp::try_run_ranks(4, kZero,
                        [](mp::Comm& comm) {
                          std::vector<std::int64_t> v{comm.rank()};
                          (void)mp::allreduce_vec(
                              comm, std::span<const std::int64_t>(v),
                              mp::SumOp{});
                        },
                        options);
  EXPECT_TRUE(run.failed());
  EXPECT_EQ(run.failed_rank, 1);
  EXPECT_NE(run.failure_message.find("injected fault"), std::string::npos);
  EXPECT_NE(run.failure_message.find("rank 1"), std::string::npos);
  EXPECT_EQ(plan.kills_injected(), 1u);
}

// A receiver already blocked in recv when the failing rank poisons the
// channels must unwind with RankAborted promptly, not wait for a timeout.
TEST(FaultInjection, BlockedReceiversUnwindPromptlyOnPeerFailure) {
  for (const int p : {2, 4, 8}) {
    mp::FaultPlan plan;
    plan.parse("kill:r=0,op=1");
    mp::RunOptions options;
    options.fault_plan = &plan;
    options.recv_timeout_s = 300.0;  // must not be what wakes the receivers
    const auto start = std::chrono::steady_clock::now();
    const mp::RunResult run = mp::try_run_ranks(
        p, kZero,
        [](mp::Comm& comm) {
          if (comm.rank() == 0) {
            comm.send_value<int>(1, 1, 42);  // killed before the push
          } else {
            // Blocks forever unless poisoned: rank 0 dies on its first op.
            (void)comm.recv_value<int>(0, 1);
          }
        },
        options);
    EXPECT_TRUE(run.failed()) << "p=" << p;
    EXPECT_EQ(run.failed_rank, 0) << "p=" << p;
    // Generous bound: propagation is condition-variable wakeup, not timeout.
    EXPECT_LT(seconds_since(start), 30.0) << "p=" << p;
  }
}

TEST(FaultInjection, RunRanksRethrowsInjectedFault) {
  mp::FaultPlan plan;
  plan.parse("kill:r=0,op=1");
  mp::RunOptions options;
  options.fault_plan = &plan;
  EXPECT_THROW(mp::run_ranks(2, kZero,
                             [](mp::Comm& comm) {
                               (void)mp::bcast_value(comm, comm.rank(), 0);
                             },
                             options),
               mp::InjectedFault);
}

// ---------------------------------------------------------------------------
// Corruption: CRC32 frame checksum
// ---------------------------------------------------------------------------

TEST(FaultInjection, CorruptedPayloadIsDetectedNotMisparsed) {
  mp::FaultPlan plan;
  plan.parse("corrupt:r=0,op=1");
  mp::RunOptions options;
  options.fault_plan = &plan;
  // This test pins the legacy *detection* path; with the ack/retransmit
  // layer on, the same fault heals in-band (see TransportHealing below).
  options.reliability.enabled = false;
  const mp::RunResult run = mp::try_run_ranks(
      2, kZero,
      [](mp::Comm& comm) {
        if (comm.rank() == 0) {
          std::vector<std::int64_t> payload(64);
          for (std::size_t i = 0; i < payload.size(); ++i) {
            payload[i] = static_cast<std::int64_t>(i);
          }
          comm.send<std::int64_t>(1, 9, payload);
        } else {
          (void)comm.recv<std::int64_t>(0, 9);
        }
      },
      options);
  EXPECT_TRUE(run.failed());
  EXPECT_EQ(run.failed_rank, 1);  // detection happens at the receiver
  EXPECT_NE(run.failure_message.find("CRC32"), std::string::npos);
  EXPECT_EQ(plan.corruptions_injected(), 1u);
}

// Fuzz over seeds and payload sizes: whatever bits the plan flips, the
// receiver must always detect the damage — never accept a wrong payload.
TEST(FaultInjection, CorruptionFuzzAlwaysDetected) {
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    mp::FaultPlan plan;
    plan.parse("corrupt:r=0,op=1");
    plan.set_seed(seed);
    mp::RunOptions options;
    options.fault_plan = &plan;
    options.reliability.enabled = false;  // pin the detection path
    const std::size_t payload_bytes = 1 + (seed * 37) % 2048;
    const mp::RunResult run = mp::try_run_ranks(
        2, kZero,
        [payload_bytes](mp::Comm& comm) {
          if (comm.rank() == 0) {
            std::vector<std::uint8_t> payload(payload_bytes, 0xA5);
            comm.send<std::uint8_t>(1, 3, payload);
          } else {
            (void)comm.recv<std::uint8_t>(0, 3);
          }
        },
        options);
    EXPECT_TRUE(run.failed()) << "seed=" << seed;
    EXPECT_NE(run.failure_message.find("CRC32"), std::string::npos)
        << "seed=" << seed;
  }
}

// ---------------------------------------------------------------------------
// Delay and drop
// ---------------------------------------------------------------------------

TEST(FaultInjection, DelayFiresAndRunStillSucceeds) {
  mp::FaultPlan plan;
  plan.parse("delay:r=0,op=1,ms=30");
  mp::RunOptions options;
  options.fault_plan = &plan;
  const auto start = std::chrono::steady_clock::now();
  const mp::RunResult run = mp::try_run_ranks(
      2, kZero,
      [](mp::Comm& comm) {
        if (comm.rank() == 0) {
          comm.send_value<int>(1, 1, 7);
        } else {
          EXPECT_EQ(comm.recv_value<int>(0, 1), 7);
        }
      },
      options);
  EXPECT_FALSE(run.failed());
  EXPECT_EQ(plan.delays_injected(), 1u);
  EXPECT_GE(seconds_since(start), 0.03);
}

// With the reliability layer off, a dropped message leaves the receiver
// blocked forever; the all-blocked deadlock detector must reap it with a
// diagnostic naming the blocked rank, well within the recv timeout.
TEST(FaultInjection, DroppedMessageIsReapedByDeadlockDetector) {
  mp::FaultPlan plan;
  plan.parse("drop:r=0,op=1");
  mp::RunOptions options;
  options.fault_plan = &plan;
  options.reliability.enabled = false;  // pin the detection path
  options.recv_timeout_s = 300.0;  // detection, not timeout, must end this
  const auto start = std::chrono::steady_clock::now();
  const mp::RunResult run = mp::try_run_ranks(
      2, kZero,
      [](mp::Comm& comm) {
        if (comm.rank() == 0) {
          comm.send_value<int>(1, 1, 7);  // eaten by the wire
        } else {
          (void)comm.recv_value<int>(0, 1);
        }
      },
      options);
  EXPECT_TRUE(run.failed());
  EXPECT_EQ(run.failed_rank, 1);
  EXPECT_NE(run.failure_message.find("deadlock"), std::string::npos);
  EXPECT_NE(run.failure_message.find("rank 1 blocked in recv(src=0"),
            std::string::npos);
  EXPECT_LT(seconds_since(start), 30.0);
  EXPECT_EQ(plan.drops_injected(), 1u);
}

// With detection off, the bounded per-receive timeout is the backstop that
// keeps a lost message from hanging the process.
TEST(FaultInjection, RecvTimeoutBackstopWhenDetectionDisabled) {
  mp::FaultPlan plan;
  plan.parse("drop:r=0,op=1");
  mp::RunOptions options;
  options.fault_plan = &plan;
  options.reliability.enabled = false;  // pin the backstop path
  options.detect_deadlock = false;
  options.recv_timeout_s = 0.3;
  const mp::RunResult run = mp::try_run_ranks(
      2, kZero,
      [](mp::Comm& comm) {
        if (comm.rank() == 0) {
          comm.send_value<int>(1, 1, 7);
        } else {
          (void)comm.recv_value<int>(0, 1);
        }
      },
      options);
  EXPECT_TRUE(run.failed());
  EXPECT_EQ(run.failed_rank, 1);
  EXPECT_NE(run.failure_message.find("recv timeout"), std::string::npos);
}

// The detector must not fire on a healthy run where receivers legitimately
// wait for slow senders.
TEST(FaultInjection, DetectorQuietOnSlowButHealthyRun) {
  mp::FaultPlan plan;
  plan.parse("delay:r=0,op=1,ms=120");  // longer than several probe slices
  mp::RunOptions options;
  options.fault_plan = &plan;
  const mp::RunResult run = mp::try_run_ranks(
      2, kZero,
      [](mp::Comm& comm) {
        if (comm.rank() == 0) {
          comm.send_value<int>(1, 1, 11);
        } else {
          EXPECT_EQ(comm.recv_value<int>(0, 1), 11);
        }
      },
      options);
  EXPECT_FALSE(run.failed());
}

// ---------------------------------------------------------------------------
// Post-run channel hygiene
// ---------------------------------------------------------------------------

TEST(RunHygiene, AbortedRunDrainsUndeliveredMessages) {
  const mp::RunResult run = mp::try_run_ranks(2, kZero, [](mp::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value<int>(1, 1, 1);
      comm.send_value<int>(1, 2, 2);
      throw std::runtime_error("boom");
    }
    // Rank 1 exits without receiving; the teardown must drain the queue.
  });
  EXPECT_TRUE(run.failed());
  EXPECT_EQ(run.failed_rank, 0);
  EXPECT_EQ(run.undelivered_messages, 2u);
}

TEST(RunHygiene, CleanRunWithLeakedMessageIsAProtocolError) {
  EXPECT_THROW(mp::run_ranks(2, kZero,
                             [](mp::Comm& comm) {
                               if (comm.rank() == 0) {
                                 comm.send_value<int>(1, 1, 1);
                               }
                               // Nobody receives it and nobody failed.
                             }),
               std::logic_error);
}

// ---------------------------------------------------------------------------
// End-to-end: kill any rank at any level, resume, identical tree
// ---------------------------------------------------------------------------

TEST(FaultRecovery, KillAtEveryLevelResumesToIdenticalTree) {
  const data::Dataset training = make_training(4000);
  core::InductionControls controls;
  controls.options.max_depth = 6;

  const core::FitReport clean = core::ScalParC::fit(training, 2, controls);
  ASSERT_GE(clean.stats.levels, 6) << "workload must produce a 6-level tree";
  const std::string expected = tree_bytes(clean.tree);
  const int levels = clean.stats.levels;

  for (const int p : {2, 4, 8}) {
    for (int level = 0; level < levels; ++level) {
      const int victim = level % p;  // vary the killed rank across levels
      TempDir dir("scalparc_ckpt_matrix");
      mp::FaultPlan plan;
      plan.parse("kill:r=" + std::to_string(victim) +
                 ",level=" + std::to_string(level));
      mp::RunOptions options;
      options.fault_plan = &plan;

      core::InductionControls ckpt = controls;
      ckpt.checkpoint.directory = dir.path;
      const core::RecoveryReport report = core::ScalParC::fit_with_recovery(
          training, p, ckpt, kZero, options);
      EXPECT_EQ(report.attempts, 2) << "p=" << p << " level=" << level;
      ASSERT_EQ(report.events.size(), 1u) << "p=" << p << " level=" << level;
      EXPECT_EQ(report.events[0].failed_rank, victim)
          << "p=" << p << " level=" << level;
      EXPECT_EQ(report.events[0].resumed_level, level)
          << "p=" << p << " level=" << level;
      EXPECT_EQ(tree_bytes(report.fit.tree), expected)
          << "p=" << p << " level=" << level << " victim=" << victim;
    }
  }
}

// An op-triggered kill lands mid-level (inside collectives), not at the
// boundary; recovery must still resume from the last committed level and
// reproduce the tree exactly.
TEST(FaultRecovery, MidLevelKillResumesToIdenticalTree) {
  const data::Dataset training = make_training(4000);
  core::InductionControls controls;
  controls.options.max_depth = 6;
  const std::string expected =
      tree_bytes(core::ScalParC::fit(training, 4, controls).tree);

  // Calibrate the trigger: count rank 3's comm ops in a clean run (the
  // runtime is deterministic), then kill at ~60% of that — guaranteed to
  // land mid-run, inside some level's collectives.
  const std::vector<std::size_t> sizes =
      sort::equal_partition_sizes(training.num_records(), 4);
  const std::vector<std::size_t> offsets = sort::offsets_from_sizes(sizes);
  std::int64_t victim_total_ops = 0;
  mp::run_ranks(4, kZero, [&](mp::Comm& comm) {
    const auto r = static_cast<std::size_t>(comm.rank());
    (void)core::ScalParC::fit_rank(
        comm, training.slice(offsets[r], offsets[r + 1]),
        static_cast<std::int64_t>(offsets[r]), training.num_records(),
        controls);
    if (comm.rank() == 3) victim_total_ops = comm.comm_ops();
  });
  ASSERT_GT(victim_total_ops, 10);

  TempDir dir("scalparc_ckpt_midlevel");
  mp::FaultPlan plan;
  plan.parse("kill:r=3,op=" + std::to_string((victim_total_ops * 6) / 10));
  mp::RunOptions options;
  options.fault_plan = &plan;
  core::InductionControls ckpt = controls;
  ckpt.checkpoint.directory = dir.path;
  const core::RecoveryReport report =
      core::ScalParC::fit_with_recovery(training, 4, ckpt, kZero, options);
  EXPECT_EQ(report.attempts, 2);
  ASSERT_EQ(report.events.size(), 1u);
  EXPECT_EQ(report.events[0].failed_rank, 3);
  EXPECT_EQ(tree_bytes(report.fit.tree), expected);
}

// A failure before any checkpoint committed (no checkpoint dir on the first
// run would be user error, but a kill during presort is not) restarts from
// scratch and still converges.
TEST(FaultRecovery, KillBeforeFirstCheckpointRestartsFromScratch) {
  const data::Dataset training = make_training(2000);
  core::InductionControls controls;
  controls.options.max_depth = 4;
  const std::string expected =
      tree_bytes(core::ScalParC::fit(training, 2, controls).tree);

  TempDir dir("scalparc_ckpt_scratch");
  mp::FaultPlan plan;
  plan.parse("kill:r=1,op=1");  // first comm op: inside presort
  mp::RunOptions options;
  options.fault_plan = &plan;
  core::InductionControls ckpt = controls;
  ckpt.checkpoint.directory = dir.path;
  const core::RecoveryReport report =
      core::ScalParC::fit_with_recovery(training, 2, ckpt, kZero, options);
  EXPECT_EQ(report.attempts, 2);
  ASSERT_EQ(report.events.size(), 1u);
  EXPECT_EQ(report.events[0].resumed_level, -1);  // nothing committed yet
  EXPECT_EQ(tree_bytes(report.fit.tree), expected);
}

TEST(FaultRecovery, ExplicitResumeProducesIdenticalTree) {
  const data::Dataset training = make_training(3000);
  core::InductionControls controls;
  controls.options.max_depth = 5;
  const std::string expected =
      tree_bytes(core::ScalParC::fit(training, 4, controls).tree);

  TempDir dir("scalparc_ckpt_resume");
  core::InductionControls ckpt = controls;
  ckpt.checkpoint.directory = dir.path;
  mp::FaultPlan plan;
  plan.parse("kill:r=2,level=3");
  mp::RunOptions options;
  options.fault_plan = &plan;
  EXPECT_THROW(
      core::ScalParC::fit(training, 4, ckpt, kZero, options),
      mp::InjectedFault);

  const core::FitReport resumed =
      core::ScalParC::resume_from_checkpoint(training, 4, ckpt);
  EXPECT_EQ(tree_bytes(resumed.tree), expected);
  // The resumed run re-executes only levels >= 3.
  EXPECT_GE(resumed.stats.levels, 3);
}

TEST(FaultRecovery, ResumeWithoutCheckpointThrows) {
  const data::Dataset training = make_training(500);
  TempDir dir("scalparc_ckpt_empty");
  core::InductionControls ckpt;
  ckpt.checkpoint.directory = dir.path;
  EXPECT_THROW(core::ScalParC::resume_from_checkpoint(training, 2, ckpt),
               core::CheckpointError);
}

// Differential: a fused run killed mid-tree and resumed must reproduce the
// UNFUSED clean tree — recovery correctness and fused/unfused equivalence
// checked in one pass.
TEST(FaultRecovery, FusedKillAndResumeMatchesUnfusedCleanTree) {
  const data::Dataset training = make_training(3000);
  core::InductionControls unfused;
  unfused.options.max_depth = 5;
  unfused.options.fuse_collectives = false;
  const std::string expected =
      tree_bytes(core::ScalParC::fit(training, 4, unfused).tree);

  TempDir dir("scalparc_ckpt_fused_diff");
  mp::FaultPlan plan;
  plan.parse("kill:r=1,level=2");
  mp::RunOptions options;
  options.fault_plan = &plan;
  core::InductionControls fused = unfused;
  fused.options.fuse_collectives = true;
  fused.checkpoint.directory = dir.path;
  const core::RecoveryReport report = core::ScalParC::fit_with_recovery(
      training, 4, fused, kZero, options);
  EXPECT_EQ(report.attempts, 2);
  EXPECT_EQ(tree_bytes(report.fit.tree), expected);
}

// fuse_collectives is deliberately absent from the checkpoint fingerprint:
// a checkpoint written by an unfused run resumes under the fused path (and
// still reproduces the identical tree).
TEST(FaultRecovery, CheckpointWrittenUnfusedResumesFused) {
  const data::Dataset training = make_training(3000);
  core::InductionControls unfused;
  unfused.options.max_depth = 5;
  unfused.options.fuse_collectives = false;
  const std::string expected =
      tree_bytes(core::ScalParC::fit(training, 4, unfused).tree);

  TempDir dir("scalparc_ckpt_cross_flag");
  core::InductionControls ckpt = unfused;
  ckpt.checkpoint.directory = dir.path;
  mp::FaultPlan plan;
  plan.parse("kill:r=2,level=3");
  mp::RunOptions options;
  options.fault_plan = &plan;
  EXPECT_THROW(core::ScalParC::fit(training, 4, ckpt, kZero, options),
               mp::InjectedFault);

  core::InductionControls fused = ckpt;
  fused.options.fuse_collectives = true;
  const core::FitReport resumed =
      core::ScalParC::resume_from_checkpoint(training, 4, fused);
  EXPECT_EQ(tree_bytes(resumed.tree), expected);
}

TEST(FaultRecovery, RecoveryRequiresCheckpointDirectory) {
  const data::Dataset training = make_training(500);
  EXPECT_THROW(core::ScalParC::fit_with_recovery(training, 2, {}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Self-healing transport: ack/retransmit/dedupe absorbs wire faults in-band
// ---------------------------------------------------------------------------

// Fast heal timers for tests: a dropped frame is re-requested after ~4 ms
// instead of the production 25 ms.
mp::RunOptions fast_heal_options(const mp::FaultPlan* plan) {
  mp::RunOptions options;
  options.fault_plan = plan;
  options.reliability.backoff_ms = 4.0;
  options.reliability.backoff_cap_ms = 40.0;
  return options;
}

TEST(TransportHealing, DroppedMessageIsRetransmittedInBand) {
  mp::FaultPlan plan;
  plan.parse("drop:r=0,op=1");
  const mp::RunOptions options = fast_heal_options(&plan);
  const mp::RunResult run = mp::try_run_ranks(
      2, kZero,
      [](mp::Comm& comm) {
        if (comm.rank() == 0) {
          comm.send_value<int>(1, 1, 7);  // eaten by the wire, then healed
        } else {
          EXPECT_EQ(comm.recv_value<int>(0, 1), 7);
        }
      },
      options);
  EXPECT_FALSE(run.failed()) << run.failure_message;
  EXPECT_EQ(plan.drops_injected(), 1u);
  EXPECT_GE(run.transport.retransmits, 1u);
  EXPECT_EQ(run.transport.nacks, 0u);
}

TEST(TransportHealing, CorruptedMessageIsNackedAndHealed) {
  mp::FaultPlan plan;
  plan.parse("corrupt:r=0,op=1");
  const mp::RunOptions options = fast_heal_options(&plan);
  const mp::RunResult run = mp::try_run_ranks(
      2, kZero,
      [](mp::Comm& comm) {
        if (comm.rank() == 0) {
          std::vector<std::int64_t> payload(64);
          for (std::size_t i = 0; i < payload.size(); ++i) {
            payload[i] = static_cast<std::int64_t>(i);
          }
          comm.send<std::int64_t>(1, 9, payload);
        } else {
          const std::vector<std::int64_t> got = comm.recv<std::int64_t>(0, 9);
          ASSERT_EQ(got.size(), 64u);
          for (std::size_t i = 0; i < got.size(); ++i) {
            EXPECT_EQ(got[i], static_cast<std::int64_t>(i)) << i;
          }
        }
      },
      options);
  EXPECT_FALSE(run.failed()) << run.failure_message;
  EXPECT_EQ(plan.corruptions_injected(), 1u);
  EXPECT_GE(run.transport.nacks, 1u);
  EXPECT_GE(run.transport.retransmits, 1u);
}

TEST(TransportHealing, DuplicatedMessageIsDedupedBySequence) {
  mp::FaultPlan plan;
  plan.parse("duplicate:r=0,op=1");
  const mp::RunOptions options = fast_heal_options(&plan);
  const mp::RunResult run = mp::try_run_ranks(
      2, kZero,
      [](mp::Comm& comm) {
        if (comm.rank() == 0) {
          comm.send_value<int>(1, 5, 11);
          comm.send_value<int>(1, 5, 13);
        } else {
          // The duplicate of the first frame must not shadow the second.
          EXPECT_EQ(comm.recv_value<int>(0, 5), 11);
          EXPECT_EQ(comm.recv_value<int>(0, 5), 13);
        }
      },
      options);
  EXPECT_FALSE(run.failed()) << run.failure_message;
  EXPECT_EQ(plan.duplicates_injected(), 1u);
  EXPECT_GE(run.transport.duplicates, 1u);
  EXPECT_EQ(run.undelivered_messages, 0u);
}

// The acceptance bar of this PR: drop, corrupt and duplicate faults injected
// into a live induction heal inside the transport — zero checkpoint
// restarts, retransmit counters prove the healing happened, and the tree is
// byte-identical to the fault-free run. Exercised under both the fused and
// the unfused collective paths.
TEST(TransportHealing, MixedFaultsHealInsideInductionToIdenticalTree) {
  const data::Dataset training = make_training(2000);
  for (const bool fused : {true, false}) {
    core::InductionControls controls;
    controls.options.max_depth = 4;
    controls.options.fuse_collectives = fused;
    const std::string expected =
        tree_bytes(core::ScalParC::fit(training, 2, controls).tree);

    // Faults only trigger on send ops and the send/recv pattern at any
    // given op index is an induction internal; three consecutive indices
    // per kind guarantee each kind lands on at least one send.
    mp::FaultPlan plan;
    plan.parse(
        "drop:r=0,op=2;drop:r=0,op=3;drop:r=0,op=4;"
        "corrupt:r=1,op=5;corrupt:r=1,op=6;corrupt:r=1,op=7;"
        "duplicate:r=0,op=8;duplicate:r=0,op=9;duplicate:r=0,op=10");
    const mp::RunOptions options = fast_heal_options(&plan);
    const core::FitReport report =
        core::ScalParC::fit(training, 2, controls, kZero, options);
    EXPECT_EQ(tree_bytes(report.tree), expected) << "fused=" << fused;
    EXPECT_FALSE(report.run.failed()) << "fused=" << fused;
    EXPECT_GE(plan.drops_injected(), 1u) << "fused=" << fused;
    EXPECT_GE(plan.corruptions_injected(), 1u) << "fused=" << fused;
    EXPECT_GE(plan.duplicates_injected(), 1u) << "fused=" << fused;
    EXPECT_GE(report.run.transport.retransmits, 1u) << "fused=" << fused;
    EXPECT_GE(report.run.transport.nacks, 1u) << "fused=" << fused;
    EXPECT_GE(report.run.transport.duplicates, 1u) << "fused=" << fused;
  }
}

// Sweep satellite: a single drop at *every* op index of a 2-rank induction.
// Wherever the wire eats a frame, the transport self-heals and the tree is
// byte-identical to the fault-free run — no checkpointing, no restart.
TEST(TransportHealing, SingleDropAtEveryOpHealsToIdenticalTree) {
  const data::Dataset training = make_training(600);
  core::InductionControls controls;
  controls.options.max_depth = 3;
  const std::string expected =
      tree_bytes(core::ScalParC::fit(training, 2, controls).tree);

  // Calibrate: op indices are deterministic, so a clean run tells us how
  // many ops each rank executes.
  const std::vector<std::size_t> sizes =
      sort::equal_partition_sizes(training.num_records(), 2);
  const std::vector<std::size_t> offsets = sort::offsets_from_sizes(sizes);
  std::int64_t total_ops[2] = {0, 0};
  mp::run_ranks(2, kZero, [&](mp::Comm& comm) {
    const auto r = static_cast<std::size_t>(comm.rank());
    (void)core::ScalParC::fit_rank(
        comm, training.slice(offsets[r], offsets[r + 1]),
        static_cast<std::int64_t>(offsets[r]), training.num_records(),
        controls);
    total_ops[r] = comm.comm_ops();
  });
  ASSERT_GT(total_ops[0], 10);

  std::uint64_t healed_runs = 0;
  for (int rank = 0; rank < 2; ++rank) {
    for (std::int64_t op = 1; op <= total_ops[rank]; ++op) {
      mp::FaultPlan plan;
      plan.parse("drop:r=" + std::to_string(rank) +
                 ",op=" + std::to_string(op));
      const mp::RunOptions options = fast_heal_options(&plan);
      const core::FitReport report =
          core::ScalParC::fit(training, 2, controls, kZero, options);
      ASSERT_EQ(tree_bytes(report.tree), expected)
          << "rank=" << rank << " op=" << op;
      // Drop triggers only fire on send ops; when this index was a send,
      // the healed run must show the retransmit that saved it.
      if (plan.drops_injected() > 0) {
        EXPECT_GE(report.run.transport.retransmits, 1u)
            << "rank=" << rank << " op=" << op;
        ++healed_runs;
      }
    }
  }
  EXPECT_GT(healed_runs, 0u);
}

// With the retransmit budget exhausted the detector regains authority:
// a drop under max_retransmits=0 is reaped as a deadlock promptly instead
// of hanging until the recv timeout.
TEST(TransportHealing, ExhaustedBudgetFallsBackToDeadlockDetector) {
  mp::FaultPlan plan;
  plan.parse("drop:r=0,op=1");
  mp::RunOptions options = fast_heal_options(&plan);
  options.reliability.max_retransmits = 0;
  options.recv_timeout_s = 300.0;  // detection, not timeout, must end this
  const auto start = std::chrono::steady_clock::now();
  const mp::RunResult run = mp::try_run_ranks(
      2, kZero,
      [](mp::Comm& comm) {
        if (comm.rank() == 0) {
          comm.send_value<int>(1, 1, 7);
        } else {
          (void)comm.recv_value<int>(0, 1);
        }
      },
      options);
  EXPECT_TRUE(run.failed());
  EXPECT_EQ(run.failure_kind, mp::FailureKind::kDeadlock);
  EXPECT_LT(seconds_since(start), 30.0);
}

// ---------------------------------------------------------------------------
// Liveness-epoch classification: rank death vs all-blocked deadlock
// ---------------------------------------------------------------------------

TEST(Liveness, HubClassifiesRankDeathApartFromDeadlock) {
  mp::Hub hub(2);
  // Both ranks blocked on each other with empty channels: a livelock.
  hub.mark_blocked(0, 1, 3);
  hub.mark_blocked(1, 0, 4);
  const std::string deadlock = hub.deadlock_diagnostic();
  EXPECT_NE(deadlock.find("deadlock: every unfinished rank is blocked"),
            std::string::npos);
  EXPECT_NE(deadlock.find("liveness epoch"), std::string::npos);
  EXPECT_EQ(deadlock.find("rank death"), std::string::npos);

  // Now rank 0 dies: the same blocked survivor must be classified as a
  // rank-death casualty, not a livelock.
  hub.mark_unblocked(0);
  hub.mark_dead(0);
  hub.mark_finished(0);
  const std::string death = hub.deadlock_diagnostic();
  EXPECT_NE(death.find("rank death"), std::string::npos);
  EXPECT_NE(death.find("rank 0 dead"), std::string::npos);
  EXPECT_NE(death.find("shrink to survivors or restart"), std::string::npos);
  ASSERT_EQ(hub.dead_ranks().size(), 1u);
  EXPECT_EQ(hub.dead_ranks()[0], 0);
}

TEST(Liveness, KilledRankIsClassifiedAsRankDeath) {
  mp::FaultPlan plan;
  plan.parse("kill:r=1,op=1");
  mp::RunOptions options;
  options.fault_plan = &plan;
  const mp::RunResult run = mp::try_run_ranks(
      4, kZero,
      [](mp::Comm& comm) {
        std::vector<std::int64_t> v{comm.rank()};
        (void)mp::allreduce_vec(comm, std::span<const std::int64_t>(v),
                                mp::SumOp{});
      },
      options);
  EXPECT_TRUE(run.failed());
  EXPECT_EQ(run.failure_kind, mp::FailureKind::kRankDeath);
  ASSERT_EQ(run.dead_ranks.size(), 1u);
  EXPECT_EQ(run.dead_ranks[0], 1);
}

TEST(Liveness, DeadlockReportsNoDeadRanks) {
  mp::FaultPlan plan;
  plan.parse("drop:r=0,op=1");
  mp::RunOptions options;
  options.fault_plan = &plan;
  options.reliability.enabled = false;  // make the drop fatal
  const mp::RunResult run = mp::try_run_ranks(
      2, kZero,
      [](mp::Comm& comm) {
        if (comm.rank() == 0) {
          comm.send_value<int>(1, 1, 7);
        } else {
          (void)comm.recv_value<int>(0, 1);
        }
      },
      options);
  EXPECT_TRUE(run.failed());
  EXPECT_EQ(run.failure_kind, mp::FailureKind::kDeadlock);
  EXPECT_TRUE(run.dead_ranks.empty());
}

// ---------------------------------------------------------------------------
// SCALPARC_TEST_RECV_TIMEOUT_S environment override
// ---------------------------------------------------------------------------

TEST(RecvTimeoutDefault, EnvironmentVariableOverridesDefault) {
  const char* saved = std::getenv("SCALPARC_TEST_RECV_TIMEOUT_S");
  const std::string saved_value = saved ? saved : "";

  ::setenv("SCALPARC_TEST_RECV_TIMEOUT_S", "7.5", 1);
  EXPECT_DOUBLE_EQ(mp::default_recv_timeout_s(), 7.5);
  EXPECT_DOUBLE_EQ(mp::RunOptions{}.recv_timeout_s, 7.5);

  // A set-but-broken override is rejected loudly at parse time (a typo
  // silently reverting to 120 s would turn a seconds-scale fault suite into
  // minutes), naming the variable and the offending text.
  for (const char* bad : {"0", "-3", "abc", "12x", ""}) {
    ::setenv("SCALPARC_TEST_RECV_TIMEOUT_S", bad, 1);
    try {
      (void)mp::default_recv_timeout_s();
      FAIL() << "accepted '" << bad << "'";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("SCALPARC_TEST_RECV_TIMEOUT_S"),
                std::string::npos)
          << e.what();
    }
  }
  ::unsetenv("SCALPARC_TEST_RECV_TIMEOUT_S");
  EXPECT_DOUBLE_EQ(mp::default_recv_timeout_s(), 120.0);

  if (saved != nullptr) {
    ::setenv("SCALPARC_TEST_RECV_TIMEOUT_S", saved_value.c_str(), 1);
  }
}

// ---------------------------------------------------------------------------
// Shrink-to-survivors recovery
// ---------------------------------------------------------------------------

TEST(ShrinkRecovery, SurvivorsContinueFromCheckpointToIdenticalTree) {
  const data::Dataset training = make_training(4000);
  core::InductionControls controls;
  controls.options.max_depth = 6;
  const std::string expected =
      tree_bytes(core::ScalParC::fit(training, 4, controls).tree);

  TempDir dir("scalparc_shrink");
  mp::FaultPlan plan;
  plan.parse("kill:r=2,level=2");
  mp::RunOptions options;
  options.fault_plan = &plan;
  core::InductionControls ckpt = controls;
  ckpt.checkpoint.directory = dir.path;
  const core::RecoveryReport report = core::ScalParC::fit_with_recovery(
      training, 4, ckpt, kZero, options, 3, core::RecoveryPolicy::kShrink);
  EXPECT_EQ(report.attempts, 2);
  ASSERT_EQ(report.events.size(), 1u);
  EXPECT_EQ(report.events[0].failed_rank, 2);
  EXPECT_EQ(report.events[0].policy, core::RecoveryPolicy::kShrink);
  EXPECT_EQ(report.events[0].ranks_after, 3);
  EXPECT_EQ(report.events[0].resumed_level, 2);
  EXPECT_EQ(tree_bytes(report.fit.tree), expected);
}

// Shrink matrix: every kill level and several world sizes, including the
// degenerate shrink to a single surviving rank.
TEST(ShrinkRecovery, ShrinkMatrixAcrossLevelsAndWorlds) {
  const data::Dataset training = make_training(3000);
  core::InductionControls controls;
  controls.options.max_depth = 5;
  const std::string expected =
      tree_bytes(core::ScalParC::fit(training, 2, controls).tree);

  for (const int p : {2, 4}) {
    for (int level = 1; level <= 3; ++level) {
      const int victim = (level + 1) % p;
      TempDir dir("scalparc_shrink_matrix");
      mp::FaultPlan plan;
      plan.parse("kill:r=" + std::to_string(victim) +
                 ",level=" + std::to_string(level));
      mp::RunOptions options;
      options.fault_plan = &plan;
      core::InductionControls ckpt = controls;
      ckpt.checkpoint.directory = dir.path;
      const core::RecoveryReport report = core::ScalParC::fit_with_recovery(
          training, p, ckpt, kZero, options, 3,
          core::RecoveryPolicy::kShrink);
      EXPECT_EQ(report.attempts, 2) << "p=" << p << " level=" << level;
      ASSERT_EQ(report.events.size(), 1u) << "p=" << p << " level=" << level;
      EXPECT_EQ(report.events[0].policy, core::RecoveryPolicy::kShrink)
          << "p=" << p << " level=" << level;
      EXPECT_EQ(report.events[0].ranks_after, p - 1)
          << "p=" << p << " level=" << level;
      EXPECT_EQ(tree_bytes(report.fit.tree), expected)
          << "p=" << p << " level=" << level << " victim=" << victim;
    }
  }
}

// A death before the first checkpoint commits still shrinks the world; the
// survivors restart from scratch with p-1 ranks.
TEST(ShrinkRecovery, DeathBeforeFirstCheckpointRestartsWithSurvivors) {
  const data::Dataset training = make_training(2000);
  core::InductionControls controls;
  controls.options.max_depth = 4;
  const std::string expected =
      tree_bytes(core::ScalParC::fit(training, 4, controls).tree);

  TempDir dir("scalparc_shrink_scratch");
  mp::FaultPlan plan;
  plan.parse("kill:r=1,op=1");  // inside presort, nothing committed yet
  mp::RunOptions options;
  options.fault_plan = &plan;
  core::InductionControls ckpt = controls;
  ckpt.checkpoint.directory = dir.path;
  const core::RecoveryReport report = core::ScalParC::fit_with_recovery(
      training, 4, ckpt, kZero, options, 3, core::RecoveryPolicy::kShrink);
  EXPECT_EQ(report.attempts, 2);
  ASSERT_EQ(report.events.size(), 1u);
  EXPECT_EQ(report.events[0].policy, core::RecoveryPolicy::kShrink);
  EXPECT_EQ(report.events[0].ranks_after, 3);
  EXPECT_EQ(report.events[0].resumed_level, -1);
  EXPECT_EQ(tree_bytes(report.fit.tree), expected);
}

// A deadlock has no provable casualty, so a shrink request degrades to a
// restart of the full world.
TEST(ShrinkRecovery, DeadlockDegradesShrinkToRestart) {
  const data::Dataset training = make_training(2000);
  core::InductionControls controls;
  controls.options.max_depth = 4;
  const std::string expected =
      tree_bytes(core::ScalParC::fit(training, 2, controls).tree);

  TempDir dir("scalparc_shrink_degrade");
  mp::FaultPlan plan;
  plan.parse("drop:r=0,op=7");
  mp::RunOptions options;
  options.fault_plan = &plan;
  options.reliability.enabled = false;  // make the drop a fatal deadlock
  core::InductionControls ckpt = controls;
  ckpt.checkpoint.directory = dir.path;
  const core::RecoveryReport report = core::ScalParC::fit_with_recovery(
      training, 2, ckpt, kZero, options, 3, core::RecoveryPolicy::kShrink);
  EXPECT_EQ(report.attempts, 2);
  ASSERT_EQ(report.events.size(), 1u);
  EXPECT_EQ(report.events[0].policy, core::RecoveryPolicy::kRestart);
  EXPECT_EQ(report.events[0].ranks_after, 2);
  EXPECT_EQ(tree_bytes(report.fit.tree), expected);
}

// Elastic restore directly: a checkpoint written by 4 ranks resumes under
// 1, 2, 3 and 6 ranks (shrink and grow) once repartition is allowed, always
// to the identical tree; without the opt-in the mismatch stays a loud error.
TEST(ShrinkRecovery, ElasticResumeAcrossWorldSizes) {
  const data::Dataset training = make_training(3000);
  core::InductionControls controls;
  controls.options.max_depth = 5;
  const std::string expected =
      tree_bytes(core::ScalParC::fit(training, 4, controls).tree);

  TempDir dir("scalparc_elastic");
  core::InductionControls ckpt = controls;
  ckpt.checkpoint.directory = dir.path;
  mp::FaultPlan plan;
  plan.parse("kill:r=2,level=3");
  mp::RunOptions options;
  options.fault_plan = &plan;
  EXPECT_THROW(core::ScalParC::fit(training, 4, ckpt, kZero, options),
               mp::InjectedFault);

  EXPECT_THROW(core::ScalParC::resume_from_checkpoint(training, 3, ckpt),
               core::CheckpointError);

  core::InductionControls elastic = ckpt;
  elastic.checkpoint.allow_repartition = true;
  for (const int p : {1, 2, 3, 6}) {
    const core::FitReport resumed =
        core::ScalParC::resume_from_checkpoint(training, p, elastic);
    EXPECT_EQ(tree_bytes(resumed.tree), expected) << "p=" << p;
  }
}

}  // namespace
}  // namespace scalparc
