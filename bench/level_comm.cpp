// Per-level communication structure, fused vs unfused collectives.
//
// ScalParC's split determination issues one collective per attribute list
// per level; the fused CollectiveBatch path packs them into O(1) rounds per
// level (see DESIGN.md, "Collective fusion"). This bench fits the same
// workload both ways under the Cray T3D cost model and reports, per level:
// collective rounds entered, max bytes sent per rank, and modeled virtual
// time — then the fused/unfused end-to-end comparison per processor count.
//
//   ./level_comm [--records N] [--procs 2,4,8,16] [--depth D] [--seed S]
//                [--out BENCH_comm.json] [--validate BENCH_comm.json]
//                [--csv DIR]
//
// --out writes the machine-readable JSON document; --validate re-parses a
// document (the one just written, or any existing one) and checks its
// schema plus the headline claim (fused modeled vtime <= unfused at every
// measured processor count), exiting non-zero on violation. The `perf`
// ctest label runs this at tiny scale as a smoke test.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "mp/metrics.hpp"
#include "util/json.hpp"

namespace {

using scalparc::core::LevelStats;
using scalparc::util::Json;

struct RunRow {
  int procs = 0;
  bool fused = false;
  double total_vtime_s = 0.0;
  double findsplit_vtime_s = 0.0;
  std::uint64_t max_bytes_sent_per_rank = 0;
  std::vector<LevelStats> levels;
  double presort_vtime_s = 0.0;
  // Merged metrics registry of the run (comm.*, induction.*, ...), embedded
  // under "details" so downstream tooling reads one vocabulary across the
  // CLI's --metrics-out and the bench documents.
  Json details;
};

Json to_json(const RunRow& row) {
  Json run = Json::object();
  run["procs"] = row.procs;
  run["fused"] = row.fused;
  run["total_vtime_s"] = row.total_vtime_s;
  run["findsplit_vtime_s"] = row.findsplit_vtime_s;
  run["max_bytes_sent_per_rank"] = row.max_bytes_sent_per_rank;
  Json levels = Json::array();
  double prev_vtime = row.presort_vtime_s;
  for (const LevelStats& level : row.levels) {
    Json entry = Json::object();
    entry["level"] = level.level;
    entry["active_nodes"] = level.active_nodes;
    entry["active_records"] = level.active_records;
    entry["collective_calls"] = level.collective_calls;
    entry["max_bytes_sent_per_rank"] = level.max_bytes_sent_per_rank;
    entry["vtime_s"] = level.vtime_end - prev_vtime;
    prev_vtime = level.vtime_end;
    levels.push_back(std::move(entry));
  }
  run["levels"] = std::move(levels);
  run["details"] = row.details;
  return run;
}

// Schema + claim validation; prints the first violation and returns false.
bool validate(const Json& doc) {
  const auto complain = [](const std::string& why) {
    std::fprintf(stderr, "BENCH_comm.json validation failed: %s\n",
                 why.c_str());
    return false;
  };
  try {
    if (doc.at("bench").as_string() != "level_comm") {
      return complain("bench name is not 'level_comm'");
    }
    if (doc.at("records").as_int() <= 0) return complain("records <= 0");
    const auto& runs = doc.at("runs").as_array();
    if (runs.empty()) return complain("runs is empty");
    std::vector<std::pair<int, double>> fused_vtime, unfused_vtime;
    for (const Json& run : runs) {
      const int procs = static_cast<int>(run.at("procs").as_int());
      if (procs <= 0) return complain("run has procs <= 0");
      const bool fused = run.at("fused").as_bool();
      const double total = run.at("total_vtime_s").as_double();
      if (!(total > 0.0)) return complain("run has total_vtime_s <= 0");
      if (run.at("findsplit_vtime_s").as_double() < 0.0) {
        return complain("run has negative findsplit_vtime_s");
      }
      if (run.at("max_bytes_sent_per_rank").as_int() < 0) {
        return complain("run has negative byte count");
      }
      const auto& levels = run.at("levels").as_array();
      if (levels.empty()) return complain("run has no levels");
      for (const Json& level : levels) {
        if (level.at("active_nodes").as_int() <= 0 ||
            level.at("active_records").as_int() <= 0 ||
            level.at("collective_calls").as_int() <= 0 ||
            level.at("max_bytes_sent_per_rank").as_int() < 0 ||
            level.at("vtime_s").as_double() < 0.0) {
          return complain("level entry out of range");
        }
      }
      // details.metrics must decode as a metrics registry snapshot with the
      // comm.* family present (the vocabulary shared with --metrics-out).
      const Json* details = run.find("details");
      if (details != nullptr) {
        const scalparc::mp::MetricsSnapshot snapshot =
            scalparc::mp::MetricsSnapshot::from_json(details->at("metrics"));
        if (snapshot.value("comm.bytes_sent") <= 0.0) {
          return complain("details.metrics lacks comm.bytes_sent");
        }
      }
      (fused ? fused_vtime : unfused_vtime).emplace_back(procs, total);
    }
    // The headline claim: for every measured p, the fused path's modeled
    // end-to-end time is no worse than the unfused path's.
    for (const auto& [procs, fused_total] : fused_vtime) {
      bool matched = false;
      for (const auto& [up, unfused_total] : unfused_vtime) {
        if (up != procs) continue;
        matched = true;
        if (fused_total > unfused_total) {
          return complain("fused vtime exceeds unfused at p=" +
                          std::to_string(procs));
        }
      }
      if (!matched) {
        return complain("no unfused run to pair with p=" +
                        std::to_string(procs));
      }
    }
    if (fused_vtime.empty()) return complain("no fused runs present");
  } catch (const std::exception& e) {
    return complain(e.what());
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scalparc;
  const util::CliArgs args(argc, argv);

  const std::string out_path = args.get_string("out", "");
  const std::string validate_path = args.get_string("validate", "");

  if (!out_path.empty() || validate_path.empty()) {
    // Normal run (possibly followed by validation of what it wrote).
  } else {
    // Validate-only mode.
    std::ifstream in(validate_path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", validate_path.c_str());
      return 1;
    }
    return validate(util::Json::parse(buffer.str())) ? 0 : 1;
  }

  const auto records =
      static_cast<std::uint64_t>(args.get_int("records", 16000));
  const std::vector<std::int64_t> procs =
      args.get_int_list("procs", {2, 4, 8, 16});
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const int depth = static_cast<int>(args.get_int("depth", 12));
  const auto model = mp::CostModel::cray_t3d();
  const data::QuestGenerator generator = bench::paper_generator(seed);

  bench::CsvWriter csv(
      args, "level_comm.csv",
      "procs,fused,level,active_nodes,active_records,collective_calls,"
      "max_bytes_sent_per_rank,vtime_s");

  std::vector<RunRow> rows;
  for (const std::int64_t p : procs) {
    for (const bool fused : {true, false}) {
      core::InductionControls controls = bench::paper_controls();
      controls.options.max_depth = depth;
      controls.options.fuse_collectives = fused;
      controls.collect_level_stats = true;
      const core::FitReport report = core::ScalParC::fit_generated(
          generator, records, static_cast<int>(p), controls, model);
      RunRow row;
      row.procs = static_cast<int>(p);
      row.fused = fused;
      row.total_vtime_s = report.run.modeled_seconds;
      row.findsplit_vtime_s = report.stats.findsplit_seconds;
      row.presort_vtime_s = report.stats.presort_seconds;
      for (const mp::RankOutcome& rank : report.run.ranks) {
        row.max_bytes_sent_per_rank =
            std::max(row.max_bytes_sent_per_rank, rank.stats.bytes_sent);
      }
      row.levels = report.stats.per_level;
      mp::MetricsSnapshot merged = report.run.metrics;
      core::absorb_induction_stats(merged, report.stats);
      row.details = Json::object();
      row.details["metrics"] = merged.to_json();
      rows.push_back(std::move(row));
    }
  }

  // ---------------- stdout tables ------------------------------------------
  std::printf("per-level communication (records=%llu, depth cap %d):\n",
              static_cast<unsigned long long>(records), depth);
  std::printf("%6s %7s %6s %7s %9s %11s %13s %11s\n", "procs", "fused",
              "level", "nodes", "records", "coll calls", "max bytes/rk",
              "vtime(ms)");
  for (const RunRow& row : rows) {
    double prev_vtime = row.presort_vtime_s;
    for (const LevelStats& level : row.levels) {
      const double vtime_s = level.vtime_end - prev_vtime;
      prev_vtime = level.vtime_end;
      std::printf("%6d %7s %6d %7lld %9lld %11lld %13llu %11.3f\n", row.procs,
                  row.fused ? "yes" : "no", level.level,
                  static_cast<long long>(level.active_nodes),
                  static_cast<long long>(level.active_records),
                  static_cast<long long>(level.collective_calls),
                  static_cast<unsigned long long>(level.max_bytes_sent_per_rank),
                  vtime_s * 1e3);
      csv.row("%d,%d,%d,%lld,%lld,%lld,%llu,%.6f", row.procs,
              row.fused ? 1 : 0, level.level,
              static_cast<long long>(level.active_nodes),
              static_cast<long long>(level.active_records),
              static_cast<long long>(level.collective_calls),
              static_cast<unsigned long long>(level.max_bytes_sent_per_rank),
              vtime_s);
    }
  }

  std::printf("\nfused vs unfused, modeled end-to-end:\n");
  std::printf("%6s %14s %14s %9s\n", "procs", "fused(ms)", "unfused(ms)",
              "speedup");
  for (const std::int64_t p : procs) {
    double fused_total = 0.0, unfused_total = 0.0;
    for (const RunRow& row : rows) {
      if (row.procs != p) continue;
      (row.fused ? fused_total : unfused_total) = row.total_vtime_s;
    }
    std::printf("%6lld %14.3f %14.3f %8.2fx", static_cast<long long>(p),
                fused_total * 1e3, unfused_total * 1e3,
                unfused_total / fused_total);
    std::printf("\n");
  }

  // ---------------- JSON document ------------------------------------------
  Json doc = Json::object();
  doc["bench"] = "level_comm";
  doc["records"] = records;
  doc["seed"] = seed;
  doc["depth"] = depth;
  doc["cost_model"] = "cray_t3d";
  Json procs_json = Json::array();
  for (const std::int64_t p : procs) procs_json.push_back(p);
  doc["procs"] = std::move(procs_json);
  Json runs = Json::array();
  for (const RunRow& row : rows) runs.push_back(to_json(row));
  doc["runs"] = std::move(runs);

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << doc.dump(2) << '\n';
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("\nJSON written to %s\n", out_path.c_str());
  }
  if (!validate_path.empty()) {
    std::ifstream in(validate_path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", validate_path.c_str());
      return 1;
    }
    if (!validate(util::Json::parse(buffer.str()))) return 1;
    std::printf("validation OK: %s\n", validate_path.c_str());
  }
  return 0;
}
