// The decision-tree model produced by tree induction.
//
// Internal nodes carry a splitting decision; every node also carries the
// class histogram of the training records that reached it (used for leaf
// labels, unseen-categorical fallbacks and MDL pruning).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "data/schema.hpp"

namespace scalparc::core {

struct SplitDecision {
  int attribute = -1;
  data::AttributeKind kind = data::AttributeKind::kContinuous;
  // Continuous: records with value < threshold go to child slot 0, others to
  // slot 1. Thresholds are midpoints between adjacent distinct values.
  double threshold = 0.0;
  // Categorical: child slot per value code; -1 for values absent at the node
  // during training (prediction falls back to the node's majority label).
  // For kBinarySubset splits, entries are 0 (in subset) or 1.
  std::vector<std::int32_t> value_to_child;
  int num_children = 0;

  bool operator==(const SplitDecision& other) const;
};

struct TreeNode {
  bool is_leaf = true;
  // Majority class of the training records at this node (the prediction if
  // evaluation stops here).
  std::int32_t majority_class = 0;
  std::vector<std::int64_t> class_counts;
  std::int64_t num_records = 0;
  int depth = 0;
  SplitDecision split;          // valid iff !is_leaf
  std::vector<int> children;    // node ids, indexed by child slot
};

class DecisionTree {
 public:
  DecisionTree() = default;
  explicit DecisionTree(data::Schema schema) : schema_(std::move(schema)) {}

  const data::Schema& schema() const { return schema_; }

  int add_node(TreeNode node);
  TreeNode& node(int id) { return nodes_.at(static_cast<std::size_t>(id)); }
  const TreeNode& node(int id) const { return nodes_.at(static_cast<std::size_t>(id)); }
  int root() const { return 0; }
  bool empty() const { return nodes_.empty(); }

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_leaves() const;
  int depth() const;

  // Class predicted for row `row` of `dataset` (same schema).
  std::int32_t predict(const data::Dataset& dataset, std::size_t row) const;

  // Fraction of rows whose prediction equals the stored label.
  double accuracy(const data::Dataset& dataset) const;

  // Structural equality: same shape, same decisions, same leaf labels.
  // Thresholds are compared exactly — ScalParC's decisions are functions of
  // integer counts and attribute values only, so any processor count must
  // produce bit-identical trees.
  bool same_structure(const DecisionTree& other) const;

  // Multi-line ASCII rendering (for the examples and debugging).
  std::string to_string() const;
  void print(std::ostream& out) const;

  // Approximate model size for memory accounting.
  std::size_t payload_bytes() const;

 private:
  std::int32_t predict_from(int node_id, const data::Dataset& dataset,
                            std::size_t row) const;
  void print_node(std::ostream& out, int node_id, int indent) const;

  data::Schema schema_;
  std::vector<TreeNode> nodes_;
};

}  // namespace scalparc::core
