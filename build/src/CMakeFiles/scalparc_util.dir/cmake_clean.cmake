file(REMOVE_RECURSE
  "CMakeFiles/scalparc_util.dir/util/cli.cpp.o"
  "CMakeFiles/scalparc_util.dir/util/cli.cpp.o.d"
  "CMakeFiles/scalparc_util.dir/util/logging.cpp.o"
  "CMakeFiles/scalparc_util.dir/util/logging.cpp.o.d"
  "CMakeFiles/scalparc_util.dir/util/memory_meter.cpp.o"
  "CMakeFiles/scalparc_util.dir/util/memory_meter.cpp.o.d"
  "CMakeFiles/scalparc_util.dir/util/stopwatch.cpp.o"
  "CMakeFiles/scalparc_util.dir/util/stopwatch.cpp.o.d"
  "libscalparc_util.a"
  "libscalparc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalparc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
