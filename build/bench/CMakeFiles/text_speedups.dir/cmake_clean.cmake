file(REMOVE_RECURSE
  "CMakeFiles/text_speedups.dir/text_speedups.cpp.o"
  "CMakeFiles/text_speedups.dir/text_speedups.cpp.o.d"
  "text_speedups"
  "text_speedups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_speedups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
