// Impurity measures for split selection (§2).
//
// The paper optimizes the gini index:
//   gini_i     = 1 - sum_j (n_ij / n_i)^2          (partition i)
//   gini_split = sum_i (n_i / n) * gini_i
// Entropy (C4.5-style information gain) is provided as an extension: the
// split minimizing the weighted child entropy maximizes information gain,
// so the same minimization machinery serves both criteria.
//
// All inputs are integer counts, so results are deterministic functions of
// the counts alone — independent of how records were distributed over
// processors. That property is what makes ScalParC's split decisions
// processor-count invariant (exercised heavily by the tests).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/count_matrix.hpp"
#include "core/options.hpp"

namespace scalparc::core {

// Gini impurity of one partition given its per-class counts.
double gini_of_counts(std::span<const std::int64_t> class_counts);

// Shannon entropy (bits) of one partition.
double entropy_of_counts(std::span<const std::int64_t> class_counts);

double impurity_of_counts(std::span<const std::int64_t> class_counts,
                          SplitCriterion criterion);

// Weighted impurity of a whole split. Empty partitions contribute nothing.
double impurity_of_split(const CountMatrix& matrix, SplitCriterion criterion);

// Back-compatible alias for the paper's criterion.
inline double gini_of_split(const CountMatrix& matrix) {
  return impurity_of_split(matrix, SplitCriterion::kGini);
}

// Weighted two-partition gini from integer sums of squares. Both the
// recompute scanner and the incremental scanner evaluate this exact
// expression, with `below_sq` = sum_j below_j^2 and `above_sq` =
// sum_j (total_j - below_j)^2 held as exact integers — which is what makes
// the two paths bit-identical: identical integers in, identical double
// arithmetic out.
inline double weighted_gini_from_sumsq(std::int64_t node_total,
                                       std::int64_t below_total,
                                       std::int64_t above_total,
                                       std::int64_t below_sq,
                                       std::int64_t above_sq) {
  const double n = static_cast<double>(node_total);
  const double bt = static_cast<double>(below_total);
  const double at = static_cast<double>(above_total);
  const double below_gini = 1.0 - static_cast<double>(below_sq) / (bt * bt);
  const double above_gini = 1.0 - static_cast<double>(above_sq) / (at * at);
  return (bt / n) * below_gini + (at / n) * above_gini;
}

// Recompute evaluator for the continuous-attribute linear scan: maintains
// the class histogram of records strictly below the moving split point and
// recomputes the two-partition weighted impurity in O(classes) per call.
// Kept as the differential oracle for IncrementalImpurityScanner (and the
// AoS data layout); both produce bit-identical impurities.
class BinaryImpurityScanner {
 public:
  // `node_totals` are the node's global per-class counts; `below_start` is
  // the histogram of records that precede this processor's fragment (from
  // the parallel prefix in FindSplitI); both sized num_classes.
  BinaryImpurityScanner(std::span<const std::int64_t> node_totals,
                        std::span<const std::int64_t> below_start,
                        SplitCriterion criterion = SplitCriterion::kGini);

  // Moves one record of class `cls` from the upper to the lower partition.
  void advance(std::int32_t cls);

  // Weighted impurity for the current position (split point after all
  // advanced records). Returns +inf if either side is empty (not a valid
  // split).
  double current_impurity() const;

  std::int64_t below_total() const { return below_total_; }
  std::span<const std::int64_t> below_counts() const { return below_; }
  SplitCriterion criterion() const { return criterion_; }

 private:
  std::vector<std::int64_t> totals_;
  std::vector<std::int64_t> below_;
  std::int64_t node_total_ = 0;
  std::int64_t below_total_ = 0;
  SplitCriterion criterion_ = SplitCriterion::kGini;
};

// The paper-era name, kept for readability where gini is meant.
using BinaryGiniScanner = BinaryImpurityScanner;

// Incremental-update kernel for the continuous scan (the SoA fast path):
// alongside the below histogram it maintains the integer sums of squares of
// both partitions, so advancing one record — or a run-length block of
// `count` equal-valued records of one class — is O(1), and the gini
// evaluation at a candidate point is O(1) instead of O(classes).
//
//   below_sq' = below_sq + k * (2 * below_j + k)      (k records of class j)
//   above_sq' = above_sq - k * (2 * above_j - k)
//
// All updates are exact integer arithmetic, so the sums equal what a fresh
// O(classes) recompute would produce and current_impurity() is bit-identical
// to BinaryImpurityScanner (they share weighted_gini_from_sumsq). The
// entropy criterion has no O(1) sufficient statistic; it falls back to the
// same O(classes) loop as the recompute scanner.
class IncrementalImpurityScanner {
 public:
  IncrementalImpurityScanner(std::span<const std::int64_t> node_totals,
                             std::span<const std::int64_t> below_start,
                             SplitCriterion criterion = SplitCriterion::kGini);

  // Moves one record of class `cls` from the upper to the lower partition.
  void advance(std::int32_t cls) { advance_run(cls, 1); }

  // Moves `count` records of class `cls` at once (a run of equal values).
  void advance_run(std::int32_t cls, std::int64_t count) {
    const auto j = static_cast<std::size_t>(cls);
    const std::int64_t below = below_[j];
    const std::int64_t above = totals_[j] - below;
    below_sq_ += count * (2 * below + count);
    above_sq_ -= count * (2 * above - count);
    below_[j] = below + count;
    below_total_ += count;
  }

  // Weighted impurity for the current position; +inf if either side is
  // empty. O(1) for gini, O(classes) for entropy.
  double current_impurity() const;

  std::int64_t below_total() const { return below_total_; }
  std::span<const std::int64_t> below_counts() const { return below_; }
  SplitCriterion criterion() const { return criterion_; }
  int num_classes() const { return static_cast<int>(totals_.size()); }

 private:
  std::vector<std::int64_t> totals_;
  std::vector<std::int64_t> below_;
  std::int64_t node_total_ = 0;
  std::int64_t below_total_ = 0;
  std::int64_t below_sq_ = 0;  // sum_j below_j^2
  std::int64_t above_sq_ = 0;  // sum_j (totals_j - below_j)^2
  SplitCriterion criterion_ = SplitCriterion::kGini;
};

}  // namespace scalparc::core
