// Wire packing for SoA continuous columns.
//
// The Presort exchanges (sample sort's all-to-all and the rebalance shift)
// move column slices between ranks. Rather than widening each record back
// into a padded 24-byte AoS entry for the wire, a slice travels as one
// packed byte segment [values | rids | cls] — 20 bytes per record, the same
// density the in-memory layout has. The record count is implied by the byte
// count, which unpack() validates.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "data/attribute_list.hpp"

namespace scalparc::sort {

// Packs records [begin, end) of `cols` into one byte buffer.
inline std::vector<std::byte> pack_columns(const data::ContinuousColumns& cols,
                                           std::size_t begin, std::size_t end) {
  const std::size_t n = end - begin;
  std::vector<std::byte> out(n * data::ContinuousColumns::bytes_per_record);
  std::byte* cursor = out.data();
  std::memcpy(cursor, cols.values.data() + begin, n * sizeof(double));
  cursor += n * sizeof(double);
  std::memcpy(cursor, cols.rids.data() + begin, n * sizeof(std::int64_t));
  cursor += n * sizeof(std::int64_t);
  std::memcpy(cursor, cols.cls.data() + begin, n * sizeof(std::int32_t));
  return out;
}

// Appends the records packed in `bytes` to `cols`; returns how many arrived.
inline std::size_t unpack_columns(const std::vector<std::byte>& bytes,
                                  data::ContinuousColumns& cols) {
  if (bytes.size() % data::ContinuousColumns::bytes_per_record != 0) {
    throw std::logic_error("unpack_columns: byte count is not a whole record");
  }
  const std::size_t n = bytes.size() / data::ContinuousColumns::bytes_per_record;
  const std::size_t base = cols.size();
  cols.resize(base + n);
  const std::byte* cursor = bytes.data();
  std::memcpy(cols.values.data() + base, cursor, n * sizeof(double));
  cursor += n * sizeof(double);
  std::memcpy(cols.rids.data() + base, cursor, n * sizeof(std::int64_t));
  cursor += n * sizeof(std::int64_t);
  std::memcpy(cols.cls.data() + base, cursor, n * sizeof(std::int32_t));
  return n;
}

}  // namespace scalparc::sort
