// The `scalparc` command-line tool, as a testable library.
//
// Subcommands:
//   generate   synthesize a Quest CSV          (--records --function --out ...)
//   train      fit a tree from a CSV           (--data --model --ranks ...)
//   predict    evaluate / label a CSV          (--model --data [--out])
//   inspect    describe a saved model          (--model [--render])
//   bench      scaling table on synthetic data (--records --procs)
//   help       usage
//
// run_cli parses argv, executes one subcommand, writes human output to `out`
// and diagnostics to `err`, and returns the process exit code. The thin
// binary in tools/scalparc_main.cpp forwards to this function.
#pragma once

#include <iosfwd>

namespace scalparc::tools {

int run_cli(int argc, const char* const* argv, std::ostream& out,
            std::ostream& err);

}  // namespace scalparc::tools
