// Public entry points of the ScalParC library.
//
// Two usage styles:
//  * `fit_rank` — call from inside your own mp::run_ranks body: each rank
//    passes its block of the training set (SPMD, collective).
//  * `fit` / `fit_generated` — convenience drivers that stand up a simulated
//    cluster of `nranks` ranks, partition (or generate) the data per rank,
//    induce the tree, and return it together with the per-rank communication
//    statistics, memory peaks and modeled Cray-T3D-calibrated runtime.
#pragma once

#include <cstdint>

#include "core/induction.hpp"
#include "core/tree.hpp"
#include "data/dataset.hpp"
#include "data/synthetic.hpp"
#include "mp/costmodel.hpp"
#include "mp/runtime.hpp"

namespace scalparc::core {

struct FitReport {
  DecisionTree tree;         // identical on every rank; rank 0's copy
  InductionStats stats;      // rank 0's induction statistics
  mp::RunResult run;         // per-rank comm stats, memory peaks, timings
};

class ScalParC {
 public:
  // Collective per-rank fit; see induce_tree_distributed for the contract.
  static InductionResult fit_rank(mp::Comm& comm,
                                  const data::Dataset& local_block,
                                  std::int64_t first_rid,
                                  std::uint64_t total_records,
                                  const InductionControls& controls = {});

  // Partitions `training` into contiguous equal blocks over `nranks`
  // simulated ranks and fits. With nranks == 1 this is the serial algorithm.
  static FitReport fit(const data::Dataset& training, int nranks,
                       const InductionControls& controls = {},
                       const mp::CostModel& model = mp::CostModel::zero());

  // Like fit(), but every rank generates its own block of
  // `total_records` Quest records — no global materialization, so training
  // sets of hundreds of millions of records fit in simulation.
  static FitReport fit_generated(const data::QuestGenerator& generator,
                                 std::uint64_t total_records, int nranks,
                                 const InductionControls& controls = {},
                                 const mp::CostModel& model = mp::CostModel::zero());
};

}  // namespace scalparc::core
