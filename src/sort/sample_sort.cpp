#include "sort/partition_util.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

namespace scalparc::sort {

std::vector<std::size_t> equal_partition_sizes(std::size_t total, int parts) {
  if (parts <= 0) {
    throw std::invalid_argument("equal_partition_sizes: parts must be positive");
  }
  const std::size_t base = total / static_cast<std::size_t>(parts);
  const std::size_t extra = total % static_cast<std::size_t>(parts);
  std::vector<std::size_t> sizes(static_cast<std::size_t>(parts), base);
  for (std::size_t i = 0; i < extra; ++i) ++sizes[i];
  return sizes;
}

std::vector<std::size_t> weighted_partition_sizes(std::size_t total,
                                                  std::span<const double> weights) {
  if (weights.empty()) {
    throw std::invalid_argument(
        "weighted_partition_sizes: weights must be non-empty");
  }
  double sum = 0.0;
  for (const double w : weights) {
    if (!(w > 0.0) || !std::isfinite(w)) {
      throw std::invalid_argument(
          "weighted_partition_sizes: weights must be positive and finite");
    }
    sum += w;
  }
  const std::size_t parts = weights.size();
  std::vector<std::size_t> sizes(parts, 0);
  std::vector<double> remainder(parts, 0.0);
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < parts; ++i) {
    const double quota = static_cast<double>(total) * (weights[i] / sum);
    const double floored = std::floor(quota);
    sizes[i] = static_cast<std::size_t>(floored);
    remainder[i] = quota - floored;
    assigned += sizes[i];
  }
  // Largest-remainder apportionment for the leftover elements; ties break
  // toward the lower index so uniform weights reproduce the canonical
  // first-extra layout of equal_partition_sizes.
  std::vector<std::size_t> order(parts);
  for (std::size_t i = 0; i < parts; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return remainder[a] > remainder[b];
                   });
  for (std::size_t k = 0; assigned < total; ++k) {
    ++sizes[order[k % parts]];
    ++assigned;
  }
  return sizes;
}

std::vector<std::size_t> offsets_from_sizes(const std::vector<std::size_t>& sizes) {
  std::vector<std::size_t> offsets(sizes.size() + 1, 0);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    offsets[i + 1] = offsets[i] + sizes[i];
  }
  return offsets;
}

}  // namespace scalparc::sort
