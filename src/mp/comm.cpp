#include "mp/comm.hpp"

#include <stdexcept>

#include "mp/runtime.hpp"

namespace scalparc::mp {

Comm::Comm(Hub& hub, int rank, const CostModel& model,
           util::MemoryMeter* meter)
    : hub_(hub), rank_(rank), model_(model), meter_(meter) {
  if (rank < 0 || rank >= hub.size()) {
    throw std::invalid_argument("Comm: rank out of range");
  }
}

int Comm::size() const { return hub_.size(); }

void Comm::send_bytes(int dst, std::int64_t tag,
                      std::span<const std::byte> bytes) {
  if (dst < 0 || dst >= size()) {
    throw std::invalid_argument("Comm::send_bytes: destination out of range");
  }
  // Sender pays per-message CPU overhead; the message lands at the receiver
  // no earlier than now + wire time.
  vtime_ += model_.send_overhead_s;
  Message message;
  message.tag = tag;
  message.arrival_vtime = vtime_ + model_.wire_seconds(bytes.size());
  message.payload.assign(bytes.begin(), bytes.end());
  stats_.record_send(current_op_, bytes.size());
  hub_.channel(rank_, dst).push(std::move(message));
}

std::vector<std::byte> Comm::recv_bytes(int src, std::int64_t tag) {
  if (src < 0 || src >= size()) {
    throw std::invalid_argument("Comm::recv_bytes: source out of range");
  }
  Message message = hub_.channel(src, rank_).pop(tag);
  if (message.arrival_vtime > vtime_) vtime_ = message.arrival_vtime;
  stats_.record_receive(message.payload.size());
  return std::move(message.payload);
}

}  // namespace scalparc::mp
