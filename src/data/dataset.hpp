// Columnar in-memory training set.
//
// Records are addressed by a dense row index; the *global* record id used by
// the distributed algorithms is row index + block offset of the owning rank.
// Continuous values are doubles, categorical values are integer codes in
// [0, cardinality).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "data/schema.hpp"

namespace scalparc::data {

class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(Schema schema);

  const Schema& schema() const { return schema_; }
  std::size_t num_records() const { return labels_.size(); }
  bool empty() const { return labels_.empty(); }

  // Appends one record. `continuous` / `categorical` must hold the values of
  // this record's continuous / categorical attributes in schema order
  // (i.e. the k-th continuous attribute's value is continuous[k]).
  void append(std::span<const double> continuous,
              std::span<const std::int32_t> categorical, std::int32_t label);

  double continuous_value(int attribute, std::size_t row) const;
  std::int32_t categorical_value(int attribute, std::size_t row) const;
  std::int32_t label(std::size_t row) const { return labels_[row]; }

  std::span<const std::int32_t> labels() const { return labels_; }
  // Whole column access (attribute must be of the matching kind).
  std::span<const double> continuous_column(int attribute) const;
  std::span<const std::int32_t> categorical_column(int attribute) const;

  // Copies rows [begin, end) into a new dataset with the same schema.
  Dataset slice(std::size_t begin, std::size_t end) const;

  // Total payload bytes (for memory accounting).
  std::size_t payload_bytes() const;

  // Throws std::out_of_range / std::invalid_argument if any categorical code
  // or label is outside its declared domain.
  void validate() const;

 private:
  // Maps attribute index -> index within its kind-specific column pool.
  int column_slot(int attribute, AttributeKind expected) const;

  Schema schema_;
  std::vector<int> slot_of_attribute_;
  std::vector<std::vector<double>> continuous_columns_;
  std::vector<std::vector<std::int32_t>> categorical_columns_;
  std::vector<std::int32_t> labels_;
};

}  // namespace scalparc::data
