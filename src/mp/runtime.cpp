#include "mp/runtime.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <thread>

#include "util/stopwatch.hpp"

namespace scalparc::mp {

Hub::Hub(int nranks) : nranks_(nranks) {
  if (nranks <= 0) throw std::invalid_argument("Hub: nranks must be positive");
  channels_ = std::vector<Channel>(static_cast<std::size_t>(nranks) *
                                   static_cast<std::size_t>(nranks));
}

bool Hub::all_channels_empty() const {
  return std::all_of(channels_.begin(), channels_.end(),
                     [](const Channel& c) { return c.empty(); });
}

void Hub::poison_all() {
  for (Channel& c : channels_) c.poison();
}

CommStats RunResult::total_stats() const {
  CommStats total;
  for (const RankOutcome& r : ranks) total += r.stats;
  return total;
}

std::size_t RunResult::max_peak_bytes_per_rank() const {
  std::size_t peak = 0;
  for (const RankOutcome& r : ranks) peak = std::max(peak, r.meter.peak_bytes());
  return peak;
}

std::uint64_t RunResult::max_bytes_sent_per_rank() const {
  std::uint64_t peak = 0;
  for (const RankOutcome& r : ranks) peak = std::max(peak, r.stats.bytes_sent);
  return peak;
}

RunResult run_ranks(int nranks, const CostModel& model,
                    const std::function<void(Comm&)>& body) {
  if (nranks <= 0) {
    throw std::invalid_argument("run_ranks: nranks must be positive");
  }
  Hub hub(nranks);
  RunResult result;
  result.ranks.resize(static_cast<std::size_t>(nranks));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));

  util::Stopwatch wall;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      RankOutcome& outcome = result.ranks[static_cast<std::size_t>(r)];
      Comm comm(hub, r, model, &outcome.meter);
      try {
        body(comm);
      } catch (const RankAborted&) {
        // Secondary failure caused by another rank's abort; not reported.
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        hub.poison_all();
      }
      outcome.stats = comm.stats();
      outcome.vtime_seconds = comm.vtime();
    });
  }
  for (std::thread& t : threads) t.join();
  result.wall_seconds = wall.elapsed_seconds();

  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }

  for (const RankOutcome& r : result.ranks) {
    result.modeled_seconds = std::max(result.modeled_seconds, r.vtime_seconds);
  }
  return result;
}

}  // namespace scalparc::mp
