// Fixed-width class histograms for quantized split finding (PV-Tree mode,
// arXiv 1611.01276; DESIGN.md §10).
//
// For each (frontier node, continuous attribute) pair the ranks build a
// histogram of `bins` equal-width bins over the node's global value range
// [lo, hi] (obtained from one packed min/max allreduce, so the bin function
// is byte-identical on every rank). Each bin carries per-class record
// counts plus the minimum actual value that landed in it. Candidates are
// evaluated at bin boundaries through the same incremental sums-of-squares
// kernel (weighted_gini_from_sumsq) as the exact scan, and the winning
// threshold is the candidate bin's recorded minimum value — a real data
// value, so the realized partition "A < threshold" is exactly the histogram
// partition (binning is monotone in the value) and the predicted child
// counts are exact.
#pragma once

#include <cstdint>
#include <limits>
#include <span>

#include "core/options.hpp"
#include "core/split_finder.hpp"

namespace scalparc::core {

// Global value range of one (node, attribute) pair. Merged with RangeOp; an
// empty range (no records) stays at the identity and produces bin 0 for
// every value, which never yields a candidate.
struct ValueRange {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  bool empty() const { return !(hi >= lo); }
};

struct RangeOp {
  ValueRange operator()(const ValueRange& a, const ValueRange& b) const {
    ValueRange out;
    out.lo = a.lo < b.lo ? a.lo : b.lo;
    out.hi = a.hi > b.hi ? a.hi : b.hi;
    return out;
  }
};

// Deterministic bin of `v` within `range`: floor of the affine map onto
// [0, bins), clamped to the ends. Monotone in v; identical doubles in,
// identical bin out on every rank. A degenerate range (hi <= lo) maps
// everything to bin 0.
inline int histogram_bin_of(double v, const ValueRange& range, int bins) {
  if (!(range.hi > range.lo)) return 0;
  const double scaled =
      (v - range.lo) / (range.hi - range.lo) * static_cast<double>(bins);
  if (!(scaled > 0.0)) return 0;
  const int b = static_cast<int>(scaled);
  return b >= bins ? bins - 1 : b;
}

// Accumulates one node's rows into `counts` ([bin][class], bins*classes
// int64, caller-zeroed) and `bin_min` ([bin], caller-initialized to +inf).
void histogram_accumulate(std::span<const double> values,
                          std::span<const std::int32_t> cls,
                          const ValueRange& range, int bins, int classes,
                          std::span<std::int64_t> counts,
                          std::span<double> bin_min);

// Improves `best` in place with the best bin-boundary candidate of one
// (node, attribute) histogram. `counts`/`bin_min` as produced by
// histogram_accumulate (locally or merged); `node_totals` must be the
// per-class totals of the same population the histogram was built from
// (local totals for local scoring, the node's global class totals after a
// merge). Evaluation walks bins left to right with an
// IncrementalImpurityScanner; the candidate at bin b is "A < bin_min[b]".
void best_histogram_split(std::span<const std::int64_t> counts,
                          std::span<const double> bin_min,
                          std::span<const std::int64_t> node_totals, int bins,
                          SplitCriterion criterion, std::int32_t attribute,
                          SplitCandidate& best);

}  // namespace scalparc::core
