// Minimal JSON document model: a writer and a strict recursive-descent
// parser, enough for machine-readable bench outputs (BENCH_comm.json) and
// their schema validation. Numbers are stored as doubles — every value we
// emit (byte counts, call counts, modeled seconds) fits in the 2^53 exact
// integer range. No external dependencies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace scalparc::util {

class Json;

class Json {
 public:
  using Array = std::vector<Json>;
  // std::map keeps dumps deterministic (sorted keys), which lets tests
  // compare serialized documents byte for byte.
  using Object = std::map<std::string, Json>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(std::int64_t i) : value_(static_cast<double>(i)) {}
  Json(int i) : value_(static_cast<double>(i)) {}
  Json(std::uint64_t u) : value_(static_cast<double>(u)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(Array a) : value_(std::move(a)) {}
  Json(Object o) : value_(std::move(o)) {}

  static Json object() { return Json(Object{}); }
  static Json array() { return Json(Array{}); }

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }
  bool is_object() const { return std::holds_alternative<Object>(value_); }

  bool as_bool() const { return get<bool>("bool"); }
  double as_double() const { return get<double>("number"); }
  std::int64_t as_int() const {
    return static_cast<std::int64_t>(get<double>("number"));
  }
  const std::string& as_string() const { return get<std::string>("string"); }
  const Array& as_array() const { return get<Array>("array"); }
  const Object& as_object() const { return get<Object>("object"); }
  Array& as_array() { return getm<Array>("array"); }
  Object& as_object() { return getm<Object>("object"); }

  // Object member access; throws std::out_of_range when absent.
  const Json& at(const std::string& key) const;
  // Object member lookup; nullptr when absent (or not an object).
  const Json* find(const std::string& key) const;
  // Array element access.
  const Json& at(std::size_t index) const { return as_array().at(index); }
  std::size_t size() const;

  // Insertion sugar: doc["key"] = value; creates the member.
  Json& operator[](const std::string& key) { return getm<Object>("object")[key]; }
  void push_back(Json value) { getm<Array>("array").push_back(std::move(value)); }

  // Serialization. indent > 0 pretty-prints; 0 emits a compact single line.
  std::string dump(int indent = 2) const;

  // Strict parser: one JSON value followed only by whitespace. Throws
  // std::invalid_argument with an offset-annotated message on bad input.
  static Json parse(std::string_view text);

 private:
  template <typename T>
  const T& get(const char* what) const {
    const T* v = std::get_if<T>(&value_);
    if (!v) throw std::invalid_argument(std::string("Json: not a ") + what);
    return *v;
  }
  template <typename T>
  T& getm(const char* what) {
    T* v = std::get_if<T>(&value_);
    if (!v) throw std::invalid_argument(std::string("Json: not a ") + what);
    return *v;
  }

  void dump_to(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> value_;
};

}  // namespace scalparc::util
