// Model evaluation helpers: confusion matrix, accuracy, held-out accuracy
// against the synthetic generator's ground truth.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/compiled_tree.hpp"
#include "core/tree.hpp"
#include "data/dataset.hpp"
#include "data/synthetic.hpp"
#include "mp/comm.hpp"

namespace scalparc::core {

class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::int32_t num_classes);

  void record(std::int32_t actual, std::int32_t predicted);

  std::int64_t at(std::int32_t actual, std::int32_t predicted) const;
  std::int64_t total() const { return total_; }
  std::int64_t correct() const;
  double accuracy() const;
  // Recall of one class (0 if the class never occurs).
  double recall(std::int32_t cls) const;
  // Precision of one class (0 if the class is never predicted).
  double precision(std::int32_t cls) const;
  // Harmonic mean of precision and recall (0 when both are 0).
  double f1(std::int32_t cls) const;

  std::string to_string() const;

  // Wire access for distributed aggregation.
  std::span<const std::int64_t> cells() const { return cells_; }
  static ConfusionMatrix from_cells(std::int32_t num_classes,
                                    std::span<const std::int64_t> cells);

 private:
  std::int32_t num_classes_;
  std::vector<std::int64_t> cells_;
  std::int64_t total_ = 0;
};

// Applies `tree` to every row of `dataset` and tallies the outcome, one
// recursive walk per row. This is the differential oracle for the compiled
// evaluator below — keep it per-row.
ConfusionMatrix evaluate(const DecisionTree& tree, const data::Dataset& dataset);

// Batched evaluation through the compiled flat-tree engine (identical
// tallies, serving-path speed).
ConfusionMatrix evaluate(const CompiledTree& model, const data::Dataset& dataset);

// Collective distributed evaluation: each rank compiles the tree once and
// scores its block in record batches; every rank returns the *global*
// confusion matrix (one small allreduce). Blocks may be empty on some ranks.
ConfusionMatrix evaluate_distributed(mp::Comm& comm, const DecisionTree& tree,
                                     const data::Dataset& local_block);

// Accuracy of `tree` on `count` freshly generated held-out records starting
// at `first_rid` (use an id range disjoint from training). Labels are the
// generator's noisy labels, matching what a real held-out set would contain.
// Scored in batches through the compiled engine.
double holdout_accuracy(const DecisionTree& tree,
                        const data::QuestGenerator& generator,
                        std::uint64_t first_rid, std::size_t count);

}  // namespace scalparc::core
