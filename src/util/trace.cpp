#include "util/trace.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>
#include <utility>

#include "util/json.hpp"
#include "util/logging.hpp"

namespace scalparc::util {

namespace {

#if SCALPARC_TRACE_ENABLED

// One rank's retained spans. Each lane is written by exactly one thread at a
// time (run_ranks spawns one thread per rank), but start/stop and defensive
// callers go through the global mutex anyway — span volume is a handful per
// level, so contention is irrelevant.
struct Lane {
  std::vector<TraceSpan> ring;
  std::uint64_t written = 0;      // spans kept (ring writes)
  std::uint64_t sampled_out = 0;  // spans discarded by sampling
  std::uint64_t counter = 0;      // sampling position
  std::uint64_t next_seq = 0;
};

std::mutex g_mutex;
std::atomic<bool> g_active{false};
std::atomic<std::uint64_t> g_generation{0};
TraceConfig g_config;
std::map<int, Lane> g_lanes;

thread_local int t_depth = 0;

void append_oldest_first(const Lane& lane, std::vector<TraceSpan>& out) {
  const std::size_t kept = lane.ring.size();
  const std::size_t start =
      kept < g_config.ring_capacity
          ? 0
          : static_cast<std::size_t>(lane.written % g_config.ring_capacity);
  for (std::size_t i = 0; i < kept; ++i) {
    out.push_back(lane.ring[(start + i) % kept]);
  }
}

#endif  // SCALPARC_TRACE_ENABLED

}  // namespace

TraceCollector& TraceCollector::instance() {
  static TraceCollector collector;
  return collector;
}

#if SCALPARC_TRACE_ENABLED

bool TraceCollector::start(const TraceConfig& config) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_config = config;
  if (g_config.ring_capacity == 0) g_config.ring_capacity = 1;
  if (g_config.sample_every < 1) g_config.sample_every = 1;
  g_lanes.clear();
  g_generation.fetch_add(1, std::memory_order_relaxed);
  g_active.store(true, std::memory_order_release);
  return true;
}

bool TraceCollector::active() const {
  return g_active.load(std::memory_order_relaxed);
}

TraceDump TraceCollector::stop() {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_active.store(false, std::memory_order_release);
  g_generation.fetch_add(1, std::memory_order_relaxed);
  TraceDump dump;
  dump.sample_every = g_config.sample_every;
  for (const auto& [rank, lane] : g_lanes) {
    append_oldest_first(lane, dump.spans);
    dump.dropped += lane.written - lane.ring.size();
    dump.sampled_out += lane.sampled_out;
  }
  g_lanes.clear();
  return dump;
}

TraceScope::TraceScope(const char* name, int level, std::int64_t nodes,
                       std::int64_t records) {
  if (!g_active.load(std::memory_order_relaxed)) return;
  armed_ = true;
  generation_ = g_generation.load(std::memory_order_relaxed);
  span_.name = name;
  span_.rank = thread_rank();
  span_.level = level;
  span_.nodes = nodes;
  span_.records = records;
  span_.depth = t_depth++;
  span_.ts_s = monotonic_seconds();
}

TraceScope::~TraceScope() {
  if (!armed_) return;
  --t_depth;
  span_.dur_s = monotonic_seconds() - span_.ts_s;
  std::lock_guard<std::mutex> lock(g_mutex);
  // A stop() (or stop+start) between this scope's begin and end invalidates
  // the span: it would mix runs, so it is discarded.
  if (!g_active.load(std::memory_order_relaxed) ||
      generation_ != g_generation.load(std::memory_order_relaxed)) {
    return;
  }
  Lane& lane = g_lanes[span_.rank];
  if (static_cast<std::uint64_t>(lane.counter++) %
          static_cast<std::uint64_t>(g_config.sample_every) !=
      0) {
    ++lane.sampled_out;
    return;
  }
  span_.seq = lane.next_seq++;
  if (lane.ring.size() < g_config.ring_capacity) {
    lane.ring.push_back(span_);
  } else {
    lane.ring[static_cast<std::size_t>(lane.written % g_config.ring_capacity)] =
        span_;
  }
  ++lane.written;
}

void TraceScope::set_bytes(std::int64_t bytes) {
  if (armed_) span_.bytes = bytes;
}

void TraceScope::set_begin_vtime(double vtime) {
  if (armed_) {
    span_.vtime_begin = vtime;
    span_.vtime_end = vtime;
  }
}

void TraceScope::set_end_vtime(double vtime) {
  if (armed_) span_.vtime_end = vtime;
}

#else  // !SCALPARC_TRACE_ENABLED

bool TraceCollector::start(const TraceConfig&) { return false; }
bool TraceCollector::active() const { return false; }
TraceDump TraceCollector::stop() { return {}; }
TraceScope::TraceScope(const char*, int, std::int64_t, std::int64_t) {}
TraceScope::~TraceScope() = default;
void TraceScope::set_bytes(std::int64_t) {}
void TraceScope::set_begin_vtime(double) {}
void TraceScope::set_end_vtime(double) {}

#endif  // SCALPARC_TRACE_ENABLED

namespace {

// Lane order: the five phases of §4 first, auxiliary spans after.
constexpr std::string_view kLaneNames[] = {
    "",               // lane 0 unused (keeps pid row label clean)
    "presort",        // 1
    "findsplit_i",    // 2
    "findsplit_ii",   // 3
    "performsplit_i", // 4
    "performsplit_ii",// 5
    "checkpoint_write",   // 6
    "checkpoint_restore", // 7
    "elastic_restore",    // 8
    "level_stats",        // 9
    "other",              // 10
};
constexpr int kNumLanes = static_cast<int>(std::size(kLaneNames));

}  // namespace

int trace_lane_of(std::string_view name) {
  for (int lane = 1; lane < kNumLanes - 1; ++lane) {
    if (kLaneNames[lane] == name) return lane;
  }
  return kNumLanes - 1;  // "other"
}

std::string_view trace_lane_name(int lane) {
  if (lane < 0 || lane >= kNumLanes) return "other";
  return kLaneNames[lane];
}

int trace_num_lanes() { return kNumLanes; }

Json chrome_trace_json(const TraceDump& dump, const Json& metadata) {
  Json events = Json::array();
  // Process/thread naming metadata so Perfetto shows "rank N" rows with one
  // named lane per phase.
  std::map<int, std::vector<bool>> lanes_used;
  for (const TraceSpan& span : dump.spans) {
    const int pid = span.rank < 0 ? 0 : span.rank;
    auto& used = lanes_used[pid];
    if (used.empty()) used.resize(static_cast<std::size_t>(kNumLanes), false);
    used[static_cast<std::size_t>(trace_lane_of(span.name))] = true;
  }
  for (const auto& [pid, used] : lanes_used) {
    Json name_event = Json::object();
    name_event["ph"] = "M";
    name_event["pid"] = pid;
    name_event["name"] = "process_name";
    name_event["args"] = Json::object();
    name_event["args"]["name"] = "rank " + std::to_string(pid);
    events.push_back(std::move(name_event));
    Json sort_event = Json::object();
    sort_event["ph"] = "M";
    sort_event["pid"] = pid;
    sort_event["name"] = "process_sort_index";
    sort_event["args"] = Json::object();
    sort_event["args"]["sort_index"] = pid;
    events.push_back(std::move(sort_event));
    for (int lane = 0; lane < kNumLanes; ++lane) {
      if (!used[static_cast<std::size_t>(lane)]) continue;
      Json thread_event = Json::object();
      thread_event["ph"] = "M";
      thread_event["pid"] = pid;
      thread_event["tid"] = lane;
      thread_event["name"] = "thread_name";
      thread_event["args"] = Json::object();
      thread_event["args"]["name"] = std::string(trace_lane_name(lane));
      events.push_back(std::move(thread_event));
    }
  }
  for (const TraceSpan& span : dump.spans) {
    Json event = Json::object();
    event["ph"] = "X";
    event["name"] = std::string(span.name);
    event["pid"] = span.rank < 0 ? 0 : span.rank;
    event["tid"] = trace_lane_of(span.name);
    event["ts"] = span.ts_s * 1e6;   // trace_event timestamps are µs
    event["dur"] = span.dur_s * 1e6;
    Json args = Json::object();
    if (span.level >= 0) args["level"] = span.level;
    if (span.nodes >= 0) args["nodes"] = span.nodes;
    if (span.records >= 0) args["records"] = span.records;
    if (span.bytes >= 0) args["bytes"] = span.bytes;
    args["vtime_begin_s"] = span.vtime_begin;
    args["vtime_end_s"] = span.vtime_end;
    args["depth"] = span.depth;
    args["seq"] = span.seq;
    event["args"] = std::move(args);
    events.push_back(std::move(event));
  }
  Json doc = Json::object();
  doc["traceEvents"] = std::move(events);
  doc["displayTimeUnit"] = "ms";
  doc["otherData"] = metadata;
  return doc;
}

}  // namespace scalparc::util
