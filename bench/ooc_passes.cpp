// Motivation M0 (§1-§2): the disk-I/O cost of serial classification when the
// splitting phase's hash table does not fit in memory — the regime that
// motivates ScalParC.
//
// We train the out-of-core serial SPRINT on a fixed dataset while shrinking
// the hash-table memory budget, and report the pass count and total disk
// traffic; then we contrast with ScalParC, which removes the ceiling
// entirely by distributing the table (its per-rank memory is shown for the
// same data at several processor counts).
//
//   ./ooc_passes [--records N] [--csv DIR]
#include <cstdio>

#include "bench_common.hpp"
#include "ooc/ooc_sprint.hpp"

int main(int argc, char** argv) {
  using namespace scalparc;
  const util::CliArgs args(argc, argv);
  const std::uint64_t records =
      static_cast<std::uint64_t>(args.get_int("records", 50000));
  const auto generator = bench::paper_generator();
  const data::Dataset training = generator.generate(0, records);
  const std::uint64_t table_bytes = records * sizeof(std::int32_t);

  bench::CsvWriter csv(args, "ooc_passes.csv",
                       "budget_fraction,passes_per_level,mb_read,mb_written,"
                       "extra_passes");

  std::printf("M0: out-of-core serial SPRINT, %llu records (full table = %.2f MB)\n\n",
              static_cast<unsigned long long>(records),
              static_cast<double>(table_bytes) / 1e6);
  std::printf("%16s %16s %10s %12s %13s\n", "hash budget", "passes/level",
              "MB read", "MB written", "extra passes");

  core::DecisionTree reference;
  for (const double fraction : {1.0, 0.5, 0.25, 0.125, 0.0625}) {
    ooc::OocOptions options;
    options.induction = bench::paper_controls().options;
    options.hash_memory_budget_bytes = static_cast<std::size_t>(
        static_cast<double>(table_bytes) * fraction);
    const ooc::OocReport report = ooc::fit_ooc_sprint(training, options);
    if (fraction == 1.0) {
      reference = report.tree;
    } else if (!reference.same_structure(report.tree)) {
      std::printf("ERROR: tree changed under budget fraction %.4f\n", fraction);
      return 1;
    }
    char label[32];
    std::snprintf(label, sizeof(label), "%.0f%% of table", fraction * 100.0);
    std::printf("%16s %16llu %10.1f %12.1f %13llu\n", label,
                static_cast<unsigned long long>(report.max_passes_per_level),
                static_cast<double>(report.io.bytes_read) / 1e6,
                static_cast<double>(report.io.bytes_written) / 1e6,
                static_cast<unsigned long long>(report.io.extra_passes));
    csv.row("%.4f,%llu,%.3f,%.3f,%llu", fraction,
            static_cast<unsigned long long>(report.max_passes_per_level),
            static_cast<double>(report.io.bytes_read) / 1e6,
            static_cast<double>(report.io.bytes_written) / 1e6,
            static_cast<unsigned long long>(report.io.extra_passes));
  }

  std::printf("\nScalParC removes the ceiling: its node table is distributed,\n"
              "so per-rank table memory for the same data is\n");
  for (const int p : {4, 16, 64}) {
    const auto report = core::ScalParC::fit(training, p);
    std::size_t peak = 0;
    for (const auto& r : report.run.ranks) {
      peak = std::max(peak, r.meter.peak_bytes(util::MemCategory::kNodeTable));
    }
    std::printf("  p=%3d: %.3f MB/rank (full table %.2f MB)\n", p,
                static_cast<double>(peak) / 1e6,
                static_cast<double>(table_bytes) / 1e6);
  }
  std::printf("\nCSV written to %s\n", csv.path().c_str());
  return 0;
}
