// Microbenchmark M1: the Presort primitives — parallel sample sort and the
// rebalancing shift — measured with google-benchmark (wall time of the
// threaded simulation; the communication pattern is the object of interest,
// not distributed-memory speedup, since all ranks share this machine).
#include <benchmark/benchmark.h>

#include <algorithm>

#include "data/attribute_list.hpp"
#include "mp/runtime.hpp"
#include "sort/rebalance.hpp"
#include "sort/sample_sort.hpp"
#include "util/random.hpp"

namespace {

using namespace scalparc;

std::vector<data::ContinuousEntry> random_entries(std::uint64_t seed,
                                                  std::size_t count,
                                                  std::int64_t first_rid) {
  util::Rng rng(seed);
  std::vector<data::ContinuousEntry> entries(count);
  for (std::size_t i = 0; i < count; ++i) {
    entries[i].value = rng.next_double(0.0, 1e6);
    entries[i].rid = first_rid + static_cast<std::int64_t>(i);
  }
  return entries;
}

void BM_SerialSortBaseline(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto entries = random_entries(1, n, 0);
    state.ResumeTiming();
    std::sort(entries.begin(), entries.end(), data::ContinuousEntryLess{});
    benchmark::DoNotOptimize(entries.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_SerialSortBaseline)->Arg(1 << 14)->Arg(1 << 16)->Arg(1 << 18);

void BM_SampleSort(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const auto n_total = static_cast<std::size_t>(state.range(1));
  const std::size_t per_rank = n_total / static_cast<std::size_t>(p);
  for (auto _ : state) {
    mp::run_ranks(p, mp::CostModel::zero(), [&](mp::Comm& comm) {
      auto local = random_entries(100 + static_cast<std::uint64_t>(comm.rank()),
                                  per_rank,
                                  comm.rank() * static_cast<std::int64_t>(per_rank));
      auto sorted =
          sort::sample_sort(comm, std::move(local), data::ContinuousEntryLess{});
      benchmark::DoNotOptimize(sorted.data());
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n_total) * state.iterations());
}
BENCHMARK(BM_SampleSort)
    ->Args({2, 1 << 16})
    ->Args({4, 1 << 16})
    ->Args({8, 1 << 16})
    ->Args({4, 1 << 18})
    ->UseRealTime();

void BM_SampleSortPlusRebalance(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const auto n_total = static_cast<std::size_t>(state.range(1));
  const std::size_t per_rank = n_total / static_cast<std::size_t>(p);
  for (auto _ : state) {
    mp::run_ranks(p, mp::CostModel::zero(), [&](mp::Comm& comm) {
      auto local = random_entries(7 + static_cast<std::uint64_t>(comm.rank()),
                                  per_rank,
                                  comm.rank() * static_cast<std::int64_t>(per_rank));
      auto sorted =
          sort::sample_sort(comm, std::move(local), data::ContinuousEntryLess{});
      auto balanced = sort::rebalance_equal(comm, std::move(sorted));
      benchmark::DoNotOptimize(balanced.data());
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n_total) * state.iterations());
}
BENCHMARK(BM_SampleSortPlusRebalance)->Args({4, 1 << 16})->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
