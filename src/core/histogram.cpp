#include "core/histogram.hpp"

#include <stdexcept>
#include <vector>

#include "core/gini.hpp"

namespace scalparc::core {

void histogram_accumulate(std::span<const double> values,
                          std::span<const std::int32_t> cls,
                          const ValueRange& range, int bins, int classes,
                          std::span<std::int64_t> counts,
                          std::span<double> bin_min) {
  if (values.size() != cls.size() ||
      counts.size() != static_cast<std::size_t>(bins) *
                           static_cast<std::size_t>(classes) ||
      bin_min.size() != static_cast<std::size_t>(bins)) {
    throw std::invalid_argument("histogram_accumulate: size mismatch");
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double v = values[i];
    const auto b = static_cast<std::size_t>(histogram_bin_of(v, range, bins));
    ++counts[b * static_cast<std::size_t>(classes) +
             static_cast<std::size_t>(cls[i])];
    if (v < bin_min[b]) bin_min[b] = v;
  }
}

void best_histogram_split(std::span<const std::int64_t> counts,
                          std::span<const double> bin_min,
                          std::span<const std::int64_t> node_totals, int bins,
                          SplitCriterion criterion, std::int32_t attribute,
                          SplitCandidate& best) {
  const auto c = node_totals.size();
  if (counts.size() != static_cast<std::size_t>(bins) * c ||
      bin_min.size() != static_cast<std::size_t>(bins)) {
    throw std::invalid_argument("best_histogram_split: size mismatch");
  }
  // The scanner starts with an empty left partition; rows enter it bin by
  // bin, so current_impurity() before absorbing bin b is the weighted
  // impurity of the cut "A < bin_min[b]" (bins < b left, bins >= b right).
  std::vector<std::int64_t> zeros(c, 0);
  IncrementalImpurityScanner scanner(node_totals, zeros, criterion);
  for (int b = 0; b < bins; ++b) {
    const std::span<const std::int64_t> row =
        counts.subspan(static_cast<std::size_t>(b) * c, c);
    bool nonempty = false;
    for (const std::int64_t n : row) nonempty |= n > 0;
    if (!nonempty) continue;
    if (scanner.below_total() > 0) {
      SplitCandidate candidate;
      candidate.gini = scanner.current_impurity();
      candidate.attribute = attribute;
      candidate.kind = SplitKind::kContinuous;
      candidate.threshold = bin_min[static_cast<std::size_t>(b)];
      if (candidate_less(candidate, best)) best = candidate;
    }
    for (std::size_t j = 0; j < c; ++j) {
      if (row[j] > 0) scanner.advance_run(static_cast<std::int32_t>(j), row[j]);
    }
  }
}

}  // namespace scalparc::core
