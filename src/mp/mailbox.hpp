// Point-to-point channels between ranks.
//
// Each (source, destination) pair has a dedicated FIFO channel. Sends are
// buffered (never block); receives block until a message with the requested
// tag is available. Because sends are buffered, higher-level exchange
// patterns (pairwise all-to-all, trees) cannot deadlock.
//
// If a rank dies with an exception, the runtime poisons every channel so
// that peers blocked in pop() wake up and unwind (RankAborted) instead of
// deadlocking the whole run.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <stdexcept>

#include "mp/message.hpp"

namespace scalparc::mp {

// Thrown out of Channel::pop when the run has been aborted by another rank.
struct RankAborted : std::runtime_error {
  RankAborted() : std::runtime_error("message-passing run aborted by a peer rank") {}
};

class Channel {
 public:
  void push(Message message);

  // Blocks until a message whose tag equals `tag` is present, removes it and
  // returns it. Messages with other tags are left queued (a fast sender may
  // have already pushed messages for a later operation). Throws RankAborted
  // if the channel is poisoned while waiting.
  Message pop(std::int64_t tag);

  // Wakes all waiters with RankAborted; subsequent pops also throw.
  void poison();

  // True if any message is queued (used by shutdown sanity checks).
  bool empty() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<Message> queue_;
  bool poisoned_ = false;
};

}  // namespace scalparc::mp
