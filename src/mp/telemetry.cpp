#include "mp/telemetry.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <deque>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "util/json.hpp"
#include "util/logging.hpp"

namespace scalparc::telemetry {

namespace {

// ---------------------------------------------------------------------------
// Live registry state.
// ---------------------------------------------------------------------------

std::atomic<bool> g_live_enabled{false};
std::mutex g_live_mutex;
std::map<std::string, mp::MetricsSnapshot, std::less<>>& live_sources() {
  static auto* sources =
      new std::map<std::string, mp::MetricsSnapshot, std::less<>>();
  return *sources;
}

// ---------------------------------------------------------------------------
// Flight-recorder state.
// ---------------------------------------------------------------------------

std::atomic<bool> g_flight_enabled{false};
std::mutex g_flight_mutex;
struct FlightState {
  std::size_t capacity = 0;
  std::deque<FlightEvent> ring;
  std::uint64_t dropped = 0;
  std::string armed_path;
};
FlightState& flight_state() {
  static auto* state = new FlightState();
  return *state;
}

extern "C" void flight_signal_handler(int sig) {
  // Best-effort postmortem: the dump allocates and locks, which is not
  // async-signal-safe, but on SIGINT/SIGTERM the alternative is losing the
  // ring entirely. Restore the default disposition first so a second
  // signal (or the re-raise below) terminates unconditionally.
  std::signal(sig, SIG_DFL);
  dump_armed_flight();
  std::raise(sig);
}

}  // namespace

// ---------------------------------------------------------------------------
// Live registry.
// ---------------------------------------------------------------------------

bool live_metrics_enabled() {
  return g_live_enabled.load(std::memory_order_relaxed);
}

void set_live_metrics_enabled(bool enabled) {
  g_live_enabled.store(enabled, std::memory_order_relaxed);
}

void publish_metrics(std::string_view source,
                     const mp::MetricsSnapshot& snapshot) {
  if (!live_metrics_enabled()) return;
  std::lock_guard<std::mutex> lock(g_live_mutex);
  auto& sources = live_sources();
  auto it = sources.find(source);
  if (it == sources.end()) {
    sources.emplace(std::string(source), snapshot);
  } else {
    it->second = snapshot;
  }
}

mp::MetricsSnapshot merged_live_metrics() {
  std::lock_guard<std::mutex> lock(g_live_mutex);
  mp::MetricsSnapshot merged;
  for (const auto& [source, snapshot] : live_sources()) {
    merged.merge(snapshot);
  }
  return merged;
}

void reset_live_metrics() {
  std::lock_guard<std::mutex> lock(g_live_mutex);
  live_sources().clear();
}

// ---------------------------------------------------------------------------
// RollingQuantiles.
// ---------------------------------------------------------------------------

struct RollingImpl {
  mutable std::mutex mutex;
  std::vector<mp::Histogram> ring;  // ring[head] is the current epoch
  std::size_t head = 0;
};

RollingQuantiles::RollingQuantiles(std::size_t window_epochs)
    : impl_(new RollingImpl()) {
  impl_->ring.resize(window_epochs == 0 ? 1 : window_epochs);
}

RollingQuantiles::~RollingQuantiles() { delete impl_; }

std::size_t RollingQuantiles::window_epochs() const {
  return impl_->ring.size();
}

void RollingQuantiles::observe(std::uint64_t value) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->ring[impl_->head].observe(value);
}

void RollingQuantiles::advance_epoch() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->head = (impl_->head + 1) % impl_->ring.size();
  impl_->ring[impl_->head] = mp::Histogram{};  // evict the oldest epoch
}

mp::Histogram RollingQuantiles::windowed() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  mp::Histogram merged;
  for (const mp::Histogram& epoch : impl_->ring) merged += epoch;
  return merged;
}

double RollingQuantiles::quantile(double q) const {
  return mp::histogram_quantile(windowed(), q);
}

// ---------------------------------------------------------------------------
// SloTracker.
// ---------------------------------------------------------------------------

struct SloImpl {
  SloImpl(double target, std::size_t window_epochs)
      : target_p99_us(target), window(window_epochs) {}

  double target_p99_us;
  RollingQuantiles window;

  mutable std::mutex mutex;
  double latest_p99_us = 0.0;
  std::uint64_t breaches = 0;
  double burn_seconds = 0.0;
  double violation_streak_s = 0.0;
  bool in_violation = false;
};

SloTracker::SloTracker(double target_p99_us, std::size_t window_epochs)
    : impl_(new SloImpl(target_p99_us, window_epochs)) {}

SloTracker::~SloTracker() { delete impl_; }

void SloTracker::observe_latency_us(std::uint64_t us) {
  impl_->window.observe(us);
}

bool SloTracker::epoch_tick(double epoch_seconds) {
  const double p99 = impl_->window.quantile(0.99);
  impl_->window.advance_epoch();
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->latest_p99_us = p99;
  const bool violating = p99 > impl_->target_p99_us;
  if (violating) {
    ++impl_->breaches;
    impl_->burn_seconds += epoch_seconds;
    impl_->violation_streak_s += epoch_seconds;
    if (!impl_->in_violation) {
      std::ostringstream detail;
      detail << "windowed p99 " << p99 << "us > target "
             << impl_->target_p99_us << "us";
      record_event("slo_breach", detail.str());
    }
  } else {
    impl_->violation_streak_s = 0.0;
  }
  impl_->in_violation = violating;
  return violating;
}

double SloTracker::windowed_p99_us() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->latest_p99_us;
}

mp::MetricsSnapshot SloTracker::metrics() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  mp::MetricsSnapshot out;
  out.gauge_max("slo.target_p99_us", impl_->target_p99_us);
  out.gauge_max("slo.p99_us", impl_->latest_p99_us);
  out.add("slo.breaches", static_cast<double>(impl_->breaches));
  out.add("slo.burn_seconds", impl_->burn_seconds);
  out.gauge_max("slo.time_in_violation_s", impl_->violation_streak_s);
  return out;
}

// ---------------------------------------------------------------------------
// Flight recorder.
// ---------------------------------------------------------------------------

void set_flight_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(g_flight_mutex);
  FlightState& state = flight_state();
  state.capacity = capacity;
  state.ring.clear();
  state.dropped = 0;
  g_flight_enabled.store(capacity > 0, std::memory_order_relaxed);
}

std::size_t flight_capacity() {
  std::lock_guard<std::mutex> lock(g_flight_mutex);
  return flight_state().capacity;
}

void record_event(std::string_view kind, std::string_view detail) {
  if (!g_flight_enabled.load(std::memory_order_relaxed)) return;
  FlightEvent event;
  event.t_s = util::monotonic_seconds();
  event.rank = util::thread_rank();
  event.kind = std::string(kind);
  event.detail = std::string(detail);
  std::lock_guard<std::mutex> lock(g_flight_mutex);
  FlightState& state = flight_state();
  if (state.capacity == 0) return;
  if (state.ring.size() >= state.capacity) {
    state.ring.pop_front();
    ++state.dropped;
  }
  state.ring.push_back(std::move(event));
}

std::vector<FlightEvent> flight_events() {
  std::lock_guard<std::mutex> lock(g_flight_mutex);
  const FlightState& state = flight_state();
  return std::vector<FlightEvent>(state.ring.begin(), state.ring.end());
}

std::uint64_t flight_dropped() {
  std::lock_guard<std::mutex> lock(g_flight_mutex);
  return flight_state().dropped;
}

void clear_flight() {
  std::lock_guard<std::mutex> lock(g_flight_mutex);
  FlightState& state = flight_state();
  state.ring.clear();
  state.dropped = 0;
}

bool dump_flight(const std::string& path) {
  std::size_t capacity = 0;
  std::uint64_t dropped = 0;
  std::vector<FlightEvent> events;
  {
    std::lock_guard<std::mutex> lock(g_flight_mutex);
    const FlightState& state = flight_state();
    if (state.capacity == 0) return false;
    capacity = state.capacity;
    dropped = state.dropped;
    events.assign(state.ring.begin(), state.ring.end());
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    SCALPARC_LOG_ERROR << "flight recorder: cannot open '" << path
                       << "' for writing";
    return false;
  }
  util::Json header = util::Json::object();
  header["format"] = "scalparc-flight-v1";
  header["capacity"] = static_cast<std::uint64_t>(capacity);
  header["dropped"] = dropped;
  header["events"] = static_cast<std::uint64_t>(events.size());
  out << header.dump(0) << "\n";
  for (const FlightEvent& event : events) {
    util::Json line = util::Json::object();
    line["t_s"] = event.t_s;
    line["rank"] = event.rank;
    line["kind"] = event.kind;
    line["detail"] = event.detail;
    out << line.dump(0) << "\n";
  }
  out.flush();
  return static_cast<bool>(out);
}

void arm_flight_dump(std::string path) {
  const bool armed = !path.empty();
  {
    std::lock_guard<std::mutex> lock(g_flight_mutex);
    flight_state().armed_path = std::move(path);
  }
  if (armed) {
    std::signal(SIGINT, flight_signal_handler);
    std::signal(SIGTERM, flight_signal_handler);
  }
}

void dump_armed_flight() {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(g_flight_mutex);
    path = flight_state().armed_path;
  }
  if (!path.empty()) dump_flight(path);
}

// ---------------------------------------------------------------------------
// Exposition rendering.
// ---------------------------------------------------------------------------

std::string exposition_name(std::string_view metric_name) {
  std::string out = "scalparc_";
  out.reserve(out.size() + metric_name.size());
  for (const char c : metric_name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

namespace {

void append_sample(std::string& out, const std::string& name,
                   const std::string& labels, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += name;
  out += labels;
  out += ' ';
  out += buf;
  out += '\n';
}

}  // namespace

std::string render_exposition(const mp::MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, metric] : snapshot.metrics()) {
    const std::string sample = exposition_name(name);
    switch (metric.kind) {
      case mp::MetricKind::kCounter:
        out += "# TYPE " + sample + " counter\n";
        append_sample(out, sample, "", metric.value);
        break;
      case mp::MetricKind::kGauge:
        out += "# TYPE " + sample + " gauge\n";
        append_sample(out, sample, "", metric.value);
        break;
      case mp::MetricKind::kHistogram: {
        const mp::Histogram& h = metric.histogram;
        out += "# TYPE " + sample + " summary\n";
        append_sample(out, sample, "{quantile=\"0.5\"}",
                      mp::histogram_quantile(h, 0.50));
        append_sample(out, sample, "{quantile=\"0.95\"}",
                      mp::histogram_quantile(h, 0.95));
        append_sample(out, sample, "{quantile=\"0.99\"}",
                      mp::histogram_quantile(h, 0.99));
        append_sample(out, sample + "_sum", "", static_cast<double>(h.sum));
        append_sample(out, sample + "_count", "",
                      static_cast<double>(h.count));
        break;
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// TelemetryExporter.
// ---------------------------------------------------------------------------

struct ExporterImpl {
  TelemetryOptions options;
  std::ofstream timeseries;
  std::thread worker;
  std::mutex mutex;
  std::condition_variable cv;
  bool stopping = false;
  bool stopped = false;
  std::atomic<int> epochs{0};
  // Per-counter totals and per-histogram counts from the previous epoch,
  // for delta computation.
  std::map<std::string, double> prev_counters;
  std::map<std::string, std::uint64_t> prev_hist_counts;
  std::chrono::steady_clock::time_point last_epoch_at;
  double t0_s = 0.0;
};

namespace {

void export_epoch(ExporterImpl& impl) {
  const auto now = std::chrono::steady_clock::now();
  const double epoch_seconds =
      std::chrono::duration<double>(now - impl.last_epoch_at).count();
  impl.last_epoch_at = now;

  mp::MetricsSnapshot merged = merged_live_metrics();
  if (impl.options.epoch_hook) {
    impl.options.epoch_hook(merged, epoch_seconds);
  }
  const int epoch = impl.epochs.fetch_add(1);

  if (impl.timeseries.is_open()) {
    util::Json record = util::Json::object();
    record["format"] = "scalparc-timeseries-v1";
    record["epoch"] = static_cast<std::int64_t>(epoch);
    record["t_s"] = util::monotonic_seconds() - impl.t0_s;
    record["interval_ms"] =
        static_cast<std::int64_t>(impl.options.interval_ms);
    util::Json counters = util::Json::object();
    util::Json gauges = util::Json::object();
    util::Json histograms = util::Json::object();
    for (const auto& [name, metric] : merged.metrics()) {
      switch (metric.kind) {
        case mp::MetricKind::kCounter: {
          util::Json entry = util::Json::object();
          entry["total"] = metric.value;
          auto [it, inserted] = impl.prev_counters.emplace(name, 0.0);
          entry["delta"] = metric.value - it->second;
          it->second = metric.value;
          counters[name] = std::move(entry);
          break;
        }
        case mp::MetricKind::kGauge:
          gauges[name] = metric.value;
          break;
        case mp::MetricKind::kHistogram: {
          const mp::Histogram& h = metric.histogram;
          util::Json entry = util::Json::object();
          entry["count"] = h.count;
          auto [it, inserted] = impl.prev_hist_counts.emplace(name, 0);
          entry["delta_count"] =
              static_cast<std::uint64_t>(h.count - it->second);
          it->second = h.count;
          entry["sum"] = h.sum;
          entry["max"] = h.max;
          entry["p50"] = mp::histogram_quantile(h, 0.50);
          entry["p95"] = mp::histogram_quantile(h, 0.95);
          entry["p99"] = mp::histogram_quantile(h, 0.99);
          histograms[name] = std::move(entry);
          break;
        }
      }
    }
    record["counters"] = std::move(counters);
    record["gauges"] = std::move(gauges);
    record["histograms"] = std::move(histograms);
    impl.timeseries << record.dump(0) << "\n";
    impl.timeseries.flush();
  }

  if (!impl.options.expose_path.empty()) {
    // Atomic rewrite: scrapers never observe a half-written snapshot.
    const std::string tmp = impl.options.expose_path + ".tmp";
    std::ofstream out(tmp, std::ios::trunc);
    if (out) {
      out << render_exposition(merged);
      out.flush();
      out.close();
      if (std::rename(tmp.c_str(), impl.options.expose_path.c_str()) != 0) {
        SCALPARC_LOG_ERROR << "telemetry: rename '" << tmp << "' -> '"
                           << impl.options.expose_path << "' failed";
      }
    } else {
      SCALPARC_LOG_ERROR << "telemetry: cannot open '" << tmp
                         << "' for writing";
    }
  }
}

}  // namespace

TelemetryExporter::TelemetryExporter(TelemetryOptions options)
    : impl_(new ExporterImpl()) {
  impl_->options = std::move(options);
  if (impl_->options.interval_ms < 1) impl_->options.interval_ms = 1;
  impl_->t0_s = util::monotonic_seconds();
  impl_->last_epoch_at = std::chrono::steady_clock::now();
  if (!impl_->options.timeseries_path.empty()) {
    impl_->timeseries.open(impl_->options.timeseries_path, std::ios::trunc);
    if (!impl_->timeseries) {
      SCALPARC_LOG_ERROR << "telemetry: cannot open '"
                         << impl_->options.timeseries_path << "' for writing";
    }
  }
  set_live_metrics_enabled(true);
  impl_->worker = std::thread([impl = impl_] {
    std::unique_lock<std::mutex> lock(impl->mutex);
    for (;;) {
      impl->cv.wait_for(
          lock, std::chrono::milliseconds(impl->options.interval_ms),
          [impl] { return impl->stopping; });
      if (impl->stopping) return;
      export_epoch(*impl);
    }
  });
}

void TelemetryExporter::stop() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    if (impl_->stopped) return;
    impl_->stopped = true;
    impl_->stopping = true;
  }
  impl_->cv.notify_all();
  if (impl_->worker.joinable()) impl_->worker.join();
  // Final epoch so short runs still produce at least one record and the
  // exposition file reflects the end state.
  export_epoch(*impl_);
  set_live_metrics_enabled(false);
}

TelemetryExporter::~TelemetryExporter() {
  stop();
  delete impl_;
}

int TelemetryExporter::epochs() const { return impl_->epochs.load(); }

}  // namespace scalparc::telemetry
