#include "sort/partition_util.hpp"

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace scalparc::sort {

std::vector<std::size_t> equal_partition_sizes(std::size_t total, int parts) {
  if (parts <= 0) {
    throw std::invalid_argument("equal_partition_sizes: parts must be positive");
  }
  const std::size_t base = total / static_cast<std::size_t>(parts);
  const std::size_t extra = total % static_cast<std::size_t>(parts);
  std::vector<std::size_t> sizes(static_cast<std::size_t>(parts), base);
  for (std::size_t i = 0; i < extra; ++i) ++sizes[i];
  return sizes;
}

std::vector<std::size_t> offsets_from_sizes(const std::vector<std::size_t>& sizes) {
  std::vector<std::size_t> offsets(sizes.size() + 1, 0);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    offsets[i + 1] = offsets[i] + sizes[i];
  }
  return offsets;
}

}  // namespace scalparc::sort
