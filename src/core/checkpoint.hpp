// Level-granular checkpointing of the induction loop.
//
// The breadth-first induction of ScalParC is level-synchronous: at every
// level boundary all ranks hold a consistent global state (tree-so-far,
// active node set, per-rank attribute-list partitions). That boundary is
// the unit of fault containment: the loop writes a checkpoint there, and
// after any rank failure the run restarts from the last *complete* level
// and deterministically re-derives the identical tree.
//
// On-disk layout under a checkpoint root directory:
//
//   level_<L>/                 committed checkpoint of level L
//     MANIFEST                 global header (+ CRCs of the shared files)
//     tree.txt                 tree-so-far, tree_io text format
//     active.bin               active node set, flattened int64 records
//     rank<r>.manifest         per-rank section index (count, bytes, CRC32)
//     rank<r>_<section>.bin    per-rank binary sections (attribute lists)
//   staging_level_<L>/         in-progress write; atomically renamed to
//                              level_<L> once every rank has finished
//
// A checkpoint is valid only if the committed directory exists and every
// file matches the byte counts and CRC32 checksums recorded in the
// manifests. Truncated or corrupted files are rejected with
// CheckpointCorruptError — never silently mis-parsed.
//
// Durability and error classification: every write retries transient I/O
// failures with a capped backoff and fsyncs the file; commit fsyncs the
// staging directory before the atomic rename and the root directory after
// it, so a committed level_<L> name implies its contents are on disk.
// Failures split into two classes the recovery layer treats differently:
// CheckpointIoError (write side: disk full, permission, a transient error
// that outlived the retry budget — the checkpoint data is *not* at fault,
// retrying the job cannot help, abort) and CheckpointCorruptError (read
// side: bytes provably disagree with the recorded integrity metadata — the
// checkpoint is unusable, fall back to an earlier level or restart from
// scratch).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/tree.hpp"
#include "mp/metrics.hpp"
#include "ooc/spill_file.hpp"

namespace scalparc::core {

struct CheckpointError : std::runtime_error {
  explicit CheckpointError(const std::string& what)
      : std::runtime_error("checkpoint: " + what) {}
};

// Write-side failure the checkpoint data is not responsible for: disk full,
// permission denied, or a transient error that survived the retry budget.
// The on-disk state may be incomplete but nothing valid was destroyed;
// retrying the run cannot help, so recovery treats this as unrecoverable.
struct CheckpointIoError : CheckpointError {
  explicit CheckpointIoError(const std::string& what)
      : CheckpointError("io: " + what) {}
};

// Read-side failure: bytes on disk provably disagree with the recorded
// integrity metadata (missing, truncated, CRC mismatch, unparseable). The
// checkpoint is unusable; recovery restarts from an earlier level or from
// scratch instead of aborting the job.
struct CheckpointCorruptError : CheckpointError {
  explicit CheckpointCorruptError(const std::string& what)
      : CheckpointError("corrupt: " + what) {}
};

// Global (rank-independent) header of one level checkpoint.
struct CheckpointManifest {
  int level = 0;
  int ranks = 0;
  int num_classes = 0;
  std::uint64_t total_records = 0;
  // FNV fingerprint of schema/options/strategy/total from the induction
  // argument-consistency check; a resume under different parameters (which
  // could not reproduce the tree) is rejected up front.
  std::uint64_t fingerprint = 0;
  std::uint64_t active_count = 0;  // int64 values in active.bin
  std::uint32_t active_crc = 0;
  std::uint64_t tree_bytes = 0;
  std::uint32_t tree_crc = 0;
};

std::string checkpoint_level_dir(const std::string& root, int level);
std::string checkpoint_staging_dir(const std::string& root, int level);

// Rank-0 side of a checkpoint write. prepare wipes and recreates the
// staging directory; write_globals stores tree.txt/active.bin/MANIFEST
// (filling the manifest's byte counts and CRCs); commit atomically renames
// staging to the committed name (replacing any stale one).
void checkpoint_prepare_staging(const std::string& root, int level);
void checkpoint_write_globals(const std::string& staging,
                              const DecisionTree& tree,
                              std::span<const std::int64_t> active_flat,
                              CheckpointManifest manifest);
void checkpoint_commit(const std::string& root, int level);

// Readers; all throw CheckpointError on missing/truncated/corrupt data.
CheckpointManifest checkpoint_read_manifest(const std::string& level_dir);
DecisionTree checkpoint_read_tree(const std::string& level_dir,
                                  const CheckpointManifest& manifest);
std::vector<std::int64_t> checkpoint_read_active(
    const std::string& level_dir, const CheckpointManifest& manifest);

// Highest level with a committed directory and parseable MANIFEST, or
// nullopt when the root holds no complete checkpoint.
std::optional<int> checkpoint_latest_level(const std::string& root);

namespace detail {
struct SectionInfo {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t bytes = 0;
  std::uint32_t crc = 0;
};
std::string rank_manifest_path(const std::string& dir, int rank);
std::string section_path(const std::string& dir, int rank,
                         const std::string& name);
void write_rank_manifest(const std::string& dir, int rank,
                         const std::vector<SectionInfo>& sections);
std::vector<SectionInfo> read_rank_manifest(const std::string& dir, int rank);
std::uint64_t file_size_or_throw(const std::string& path);

// Runs `attempt`, retrying transient failures with a capped backoff
// (checkpoint.write_retries counts the retries). Once the budget is spent
// the last error is rethrown as CheckpointIoError. All hardened write
// paths funnel through here, which is also where the test-only write-fault
// hook below injects its failures.
void retry_transient_io(const std::string& what,
                        const std::function<void()>& attempt);

// fsyncs a file or directory (checkpoint.fsyncs counts the calls); throws
// CheckpointIoError on failure.
void fsync_path(const std::string& path);

// Test-only write-fault injection: the next `failures` hardened write
// attempts (process-wide) fail as if the filesystem returned a transient
// error. `failures` within the retry budget heals silently; beyond it the
// write classifies as CheckpointIoError. Cleared automatically as attempts
// consume the count, or explicitly.
void arm_checkpoint_write_fault(int failures);
void clear_checkpoint_write_fault();
}  // namespace detail

// Writes one rank's binary sections into a staging directory and records
// their integrity metadata in rank<r>.manifest on finalize().
class CheckpointRankWriter {
 public:
  CheckpointRankWriter(std::string staging_dir, int rank)
      : dir_(std::move(staging_dir)), rank_(rank) {}

  template <typename T>
  void write_section(const std::string& name, std::span<const T> records) {
    const std::string path = detail::section_path(dir_, rank_, name);
    detail::SectionInfo info;
    detail::retry_transient_io("section '" + name + "'", [&] {
      ooc::TypedWriter<T> writer(path);
      writer.append(records);
      writer.flush();
      info = detail::SectionInfo{name, writer.count(),
                                 writer.count() * sizeof(T), writer.crc()};
      detail::fsync_path(path);
    });
    sections_.push_back(info);
    if (mp::MetricsSnapshot* sink = mp::metrics_sink()) {
      sink->add("checkpoint.sections_written", 1);
      sink->add("checkpoint.bytes_written",
                static_cast<double>(sections_.back().bytes));
    }
  }

  void finalize() { detail::write_rank_manifest(dir_, rank_, sections_); }

 private:
  std::string dir_;
  int rank_;
  std::vector<detail::SectionInfo> sections_;
};

// Reads one rank's sections back, verifying byte counts and CRCs.
class CheckpointRankReader {
 public:
  CheckpointRankReader(std::string level_dir, int rank)
      : dir_(std::move(level_dir)),
        rank_(rank),
        sections_(detail::read_rank_manifest(dir_, rank_)) {}

  template <typename T>
  std::vector<T> read_section(const std::string& name) {
    const detail::SectionInfo* info = nullptr;
    for (const detail::SectionInfo& s : sections_) {
      if (s.name == name) info = &s;
    }
    if (info == nullptr) {
      throw CheckpointCorruptError("rank " + std::to_string(rank_) +
                                   " has no section '" + name + "'");
    }
    if (info->bytes != info->count * sizeof(T)) {
      throw CheckpointCorruptError("section '" + name +
                                   "' has inconsistent size");
    }
    const std::string path = detail::section_path(dir_, rank_, name);
    if (detail::file_size_or_throw(path) != info->bytes) {
      throw CheckpointCorruptError("section file '" + path +
                                   "' does not match its manifest size");
    }
    ooc::TypedReader<T> reader(path, nullptr, 4096, 0, info->count);
    std::vector<T> out(static_cast<std::size_t>(info->count));
    const std::size_t got = reader.read_chunk(std::span<T>(out));
    if (got != out.size()) {
      throw CheckpointCorruptError("section file '" + path + "' is truncated");
    }
    if (reader.crc() != info->crc) {
      throw CheckpointCorruptError("section file '" + path +
                                   "' failed its CRC32 check");
    }
    if (mp::MetricsSnapshot* sink = mp::metrics_sink()) {
      sink->add("checkpoint.sections_read", 1);
      sink->add("checkpoint.bytes_read", static_cast<double>(info->bytes));
    }
    return out;
  }

 private:
  std::string dir_;
  int rank_;
  std::vector<detail::SectionInfo> sections_;
};

}  // namespace scalparc::core
