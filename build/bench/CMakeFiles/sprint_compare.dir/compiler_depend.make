# Empty compiler generated dependencies file for sprint_compare.
# This may be replaced when dependencies are built.
