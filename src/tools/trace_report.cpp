// scalparc-trace-report: summarize (and validate) a Chrome trace_event JSON
// written by `scalparc train --trace-out`.
//
// The report mirrors the paper's presentation: a per-phase total table and a
// per-level breakdown of the five §4 phases in modeled seconds (max over
// ranks, the quantity the scalability argument is about), followed by the
// top-k slowest spans by wall time — where the simulation itself spent real
// time. --validate turns the tool into a schema checker for CI: it verifies
// the trace parses, every rank emitted a process, phase coverage is
// SPMD-symmetric, and (for complete traces) that the per-rank span vtimes
// tile InductionStats::total_seconds within 1%. Traces from recovered runs
// get cross-checked too: elastic_restore spans must pair with the
// checkpoint.elastic_restores / recovery.retile_bytes counters, and any
// recovery.* family must carry the recovery.outcome gauge (a recovery that
// escaped classification is exactly what the chaos soak hunts). Health-
// monitored runs get a heartbeat cross-check: the Hub's received counter
// must agree with the summed per-rank health.heartbeats_sent, and a
// straggler classification without received heartbeats is an error.
//
// usage: scalparc-trace-report TRACE.json [flags]
//   --top K          slowest spans to list (default 5)
//   --metrics FILE   also check/print a --metrics-out file
//   --validate       run the CI checks; non-zero exit on any failure

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "mp/metrics.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/trace.hpp"

namespace {

using scalparc::util::Json;

struct SpanRow {
  std::string name;
  int rank = 0;
  int level = -1;
  std::int64_t nodes = -1;
  std::int64_t records = -1;
  std::int64_t bytes = -1;
  double wall_s = 0.0;
  double ts_s = 0.0;
  double vtime_begin = 0.0;
  double vtime_end = 0.0;
  int depth = 0;
};

struct Trace {
  std::vector<SpanRow> spans;
  Json metadata;  // otherData object (null when absent)
};

constexpr const char* kLevelPhases[] = {"findsplit_i", "findsplit_ii",
                                        "performsplit_i", "performsplit_ii"};

double arg_number(const Json& args, const std::string& key, double fallback) {
  const Json* v = args.find(key);
  return (v != nullptr && v->is_number()) ? v->as_double() : fallback;
}

Trace load_trace(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("cannot open '" + path + "'");
  std::stringstream buffer;
  buffer << file.rdbuf();
  const Json doc = Json::parse(buffer.str());

  Trace trace;
  if (const Json* other = doc.find("otherData")) trace.metadata = *other;
  const Json& events = doc.at("traceEvents");
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Json& event = events.at(i);
    if (event.at("ph").as_string() != "X") continue;  // skip metadata events
    SpanRow row;
    row.name = event.at("name").as_string();
    row.rank = static_cast<int>(event.at("pid").as_int());
    row.ts_s = event.at("ts").as_double() / 1e6;
    row.wall_s = event.at("dur").as_double() / 1e6;
    const Json& args = event.at("args");
    row.level = static_cast<int>(arg_number(args, "level", -1.0));
    row.nodes = static_cast<std::int64_t>(arg_number(args, "nodes", -1.0));
    row.records = static_cast<std::int64_t>(arg_number(args, "records", -1.0));
    row.bytes = static_cast<std::int64_t>(arg_number(args, "bytes", -1.0));
    row.vtime_begin = arg_number(args, "vtime_begin_s", 0.0);
    row.vtime_end = arg_number(args, "vtime_end_s", 0.0);
    row.depth = static_cast<int>(arg_number(args, "depth", 0.0));
    trace.spans.push_back(std::move(row));
  }
  return trace;
}

double vtime_of(const SpanRow& row) {
  return std::max(0.0, row.vtime_end - row.vtime_begin);
}

void print_report(const Trace& trace, int top_k, std::ostream& out) {
  std::set<int> ranks;
  for (const SpanRow& row : trace.spans) ranks.insert(row.rank);

  out << "spans: " << trace.spans.size() << "   ranks: " << ranks.size();
  if (const Json* complete = trace.metadata.find("complete")) {
    out << "   complete: " << (complete->as_bool() ? "yes" : "no");
  }
  out << "\n\n";

  // Per-phase totals. vtime is summed within a rank then maxed over ranks
  // (the run's critical path); wall time and bytes are summed over all
  // ranks (the simulation's total work).
  std::map<std::string, std::map<int, double>> phase_rank_vtime;
  std::map<std::string, double> phase_wall;
  std::map<std::string, std::int64_t> phase_bytes;
  std::map<std::string, std::int64_t> phase_count;
  for (const SpanRow& row : trace.spans) {
    phase_rank_vtime[row.name][row.rank] += vtime_of(row);
    phase_wall[row.name] += row.wall_s;
    if (row.bytes > 0) phase_bytes[row.name] += row.bytes;
    ++phase_count[row.name];
  }
  out << "per-phase totals:\n";
  char line[256];
  std::snprintf(line, sizeof(line), "  %-20s %8s %12s %12s %12s\n", "phase",
                "spans", "vtime-s", "wall-s", "MB");
  out << line;
  // Phases in lane order so the table reads in §4 order.
  std::vector<std::string> ordered;
  for (int lane = 1; lane < scalparc::util::trace_num_lanes(); ++lane) {
    const std::string name(scalparc::util::trace_lane_name(lane));
    if (phase_count.count(name)) ordered.push_back(name);
  }
  for (const auto& [name, count] : phase_count) {
    if (std::find(ordered.begin(), ordered.end(), name) == ordered.end()) {
      ordered.push_back(name);
    }
  }
  for (const std::string& name : ordered) {
    double vtime = 0.0;
    for (const auto& [rank, v] : phase_rank_vtime[name]) {
      vtime = std::max(vtime, v);
    }
    std::snprintf(line, sizeof(line), "  %-20s %8lld %12.6f %12.6f %12.3f\n",
                  name.c_str(), static_cast<long long>(phase_count[name]),
                  vtime, phase_wall[name],
                  static_cast<double>(phase_bytes[name]) / 1e6);
    out << line;
  }

  // Per-level table of the four level phases (presort has no level).
  std::map<int, std::map<std::string, std::map<int, double>>> level_table;
  std::map<int, std::int64_t> level_nodes;
  std::map<int, std::int64_t> level_records;
  for (const SpanRow& row : trace.spans) {
    if (row.level < 0) continue;
    level_table[row.level][row.name][row.rank] += vtime_of(row);
    if (row.nodes >= 0) {
      level_nodes[row.level] = std::max(level_nodes[row.level], row.nodes);
    }
    if (row.records >= 0) {
      level_records[row.level] =
          std::max(level_records[row.level], row.records);
    }
  }
  if (!level_table.empty()) {
    out << "\nper-level modeled seconds (max over ranks):\n";
    std::snprintf(line, sizeof(line),
                  "  %5s %8s %10s %12s %12s %14s %15s\n", "level", "nodes",
                  "records", "findsplit_i", "findsplit_ii", "performsplit_i",
                  "performsplit_ii");
    out << line;
    for (const auto& [level, phases] : level_table) {
      double cells[4] = {0.0, 0.0, 0.0, 0.0};
      for (int k = 0; k < 4; ++k) {
        const auto it = phases.find(kLevelPhases[k]);
        if (it == phases.end()) continue;
        for (const auto& [rank, v] : it->second) {
          cells[k] = std::max(cells[k], v);
        }
      }
      std::snprintf(line, sizeof(line),
                    "  %5d %8lld %10lld %12.6f %12.6f %14.6f %15.6f\n", level,
                    static_cast<long long>(level_nodes[level]),
                    static_cast<long long>(level_records[level]), cells[0],
                    cells[1], cells[2], cells[3]);
      out << line;
    }
  }

  // Top-k slowest spans by wall time: where the run actually burned CPU.
  std::vector<const SpanRow*> by_wall;
  by_wall.reserve(trace.spans.size());
  for (const SpanRow& row : trace.spans) by_wall.push_back(&row);
  std::sort(by_wall.begin(), by_wall.end(),
            [](const SpanRow* a, const SpanRow* b) {
              return a->wall_s > b->wall_s;
            });
  const int n = std::min<int>(top_k, static_cast<int>(by_wall.size()));
  if (n > 0) {
    out << "\ntop " << n << " slowest spans (wall time):\n";
    for (int i = 0; i < n; ++i) {
      const SpanRow& row = *by_wall[static_cast<std::size_t>(i)];
      std::snprintf(line, sizeof(line),
                    "  %9.6fs  rank %d  %-18s level %d\n", row.wall_s,
                    row.rank, row.name.c_str(), row.level);
      out << line;
    }
  }
}

// CI checks; prints one line per failure and returns the failure count.
int validate(const Trace& trace, const std::string& metrics_path,
             std::ostream& out) {
  int failures = 0;
  const auto fail = [&](const std::string& what) {
    out << "FAIL: " << what << "\n";
    ++failures;
  };

  if (trace.spans.empty()) fail("trace contains no spans");

  // Metrics embedded in the trace metadata drive the recovery-aware
  // relaxations below: a recovered run's trace legitimately mixes spans
  // from attempts with different world sizes (a grow retry adds joiner
  // ranks beyond the launch world; the failed attempt's ranks show presort
  // while the resumed attempt's show checkpoint_restore).
  scalparc::mp::MetricsSnapshot meta_metrics;
  const Json* metrics_meta = trace.metadata.find("metrics");
  if (metrics_meta != nullptr) {
    meta_metrics = scalparc::mp::MetricsSnapshot::from_json(*metrics_meta);
  }
  const bool recovered = meta_metrics.value("recovery.recoveries", 0.0) > 0.0;
  const bool grew = meta_metrics.value("recovery.grows", 0.0) > 0.0;

  // Every rank announced in the metadata must have emitted spans, and no
  // span may come from an unknown rank (joiners from a grow recovery are
  // allowed past the launch world).
  std::set<int> ranks;
  for (const SpanRow& row : trace.spans) ranks.insert(row.rank);
  if (const Json* meta_ranks = trace.metadata.find("ranks")) {
    const int expected = static_cast<int>(meta_ranks->as_int());
    for (int r = 0; r < expected; ++r) {
      if (!ranks.count(r)) {
        fail("rank " + std::to_string(r) + " emitted no spans");
      }
    }
    for (const int r : ranks) {
      if (r < 0 || (r >= expected && !grew)) {
        fail("span from out-of-range rank " + std::to_string(r));
      }
    }
  }

  // Phase coverage must be SPMD-symmetric: a phase present on any rank must
  // be present on every rank (a fresh run shows presort; a resumed run
  // shows checkpoint_restore instead — symmetry covers both shapes). Mixed
  // multi-attempt traces from recovered runs are exempt.
  std::map<std::string, std::set<int>> phase_ranks;
  for (const SpanRow& row : trace.spans) {
    phase_ranks[row.name].insert(row.rank);
  }
  if (!recovered) {
    for (const auto& [name, present] : phase_ranks) {
      if (present.size() != ranks.size()) {
        fail("phase '" + name + "' appears on " +
             std::to_string(present.size()) + " of " +
             std::to_string(ranks.size()) + " ranks");
      }
    }
  }
  const bool has_levels = !trace.spans.empty() &&
                          std::any_of(trace.spans.begin(), trace.spans.end(),
                                      [](const SpanRow& r) {
                                        return r.level >= 0;
                                      });
  if (has_levels) {
    for (const char* phase : kLevelPhases) {
      if (!phase_ranks.count(phase)) {
        fail(std::string("level phase '") + phase + "' has no spans");
      }
    }
  }
  if (!phase_ranks.count("presort") && !phase_ranks.count("checkpoint_restore")) {
    fail("neither presort nor checkpoint_restore spans present");
  }

  // Recovery cross-checks: a trace that shows recovery activity (an
  // elastic_restore re-tile span) must carry the matching recovery metrics,
  // and vice versa — a recovery.* family without an outcome gauge means the
  // run escaped classification.
  if (metrics_meta != nullptr) {
    const scalparc::mp::MetricsSnapshot& metrics = meta_metrics;
    const bool has_elastic_spans = phase_ranks.count("elastic_restore") > 0;
    const double elastic_restores =
        metrics.value("checkpoint.elastic_restores", 0.0);
    if (has_elastic_spans && elastic_restores < 1.0) {
      fail("elastic_restore spans present but checkpoint.elastic_restores "
           "counter is missing or zero");
    }
    if (has_elastic_spans && metrics.find("recovery.retile_bytes") == nullptr) {
      fail("elastic_restore spans present but recovery.retile_bytes counter "
           "is missing");
    }
    bool has_recovery_metrics = false;
    for (const auto& [name, metric] : metrics.metrics()) {
      (void)metric;
      if (name.rfind("recovery.", 0) == 0) {
        has_recovery_metrics = true;
        break;
      }
    }
    if (has_recovery_metrics &&
        metrics.find("recovery.outcome") == nullptr) {
      fail("recovery.* metrics present but the recovery.outcome gauge is "
           "missing (run escaped classification)");
    }
    if (metrics.value("recovery.recoveries", 0.0) >
        metrics.value("recovery.attempts", 0.0)) {
      fail("recovery.recoveries exceeds recovery.attempts");
    }
    if (metrics.value("recovery.grows", 0.0) > 0.0 &&
        metrics.find("recovery.joiners_admitted") == nullptr &&
        has_elastic_spans) {
      fail("grow recoveries recorded but recovery.joiners_admitted is "
           "missing");
    }

    // Heartbeat cross-check: every per-rank heartbeat lands in the Hub's
    // registry, so the run-level received counter must cover the summed
    // per-rank sent counters. A shortfall means heartbeats were dropped on
    // the lane — exactly the kind of gray failure the health layer exists
    // to catch. Recovered runs merge counters across attempts, so the exact
    // equality only binds single-attempt traces.
    const double hb_sent = metrics.value("health.heartbeats_sent", 0.0);
    const double hb_received = metrics.value("health.heartbeats_received", 0.0);
    if (hb_sent > 0.0 && hb_received <= 0.0) {
      fail("health.heartbeats_sent recorded but health.heartbeats_received "
           "is missing or zero (heartbeat lane lost every beat)");
    }
    if (!recovered && hb_sent > 0.0 && hb_received != hb_sent) {
      char msg[160];
      std::snprintf(msg, sizeof(msg),
                    "health.heartbeats_received (%.0f) disagrees with "
                    "health.heartbeats_sent (%.0f)",
                    hb_received, hb_sent);
      fail(msg);
    }
    if (metrics.value("health.stragglers_detected", 0.0) > 0.0 &&
        hb_received <= 0.0) {
      fail("a straggler was detected but no heartbeats were received — "
           "classification without evidence");
    }
  }

  // For complete traces the top-level spans tile each rank's virtual clock,
  // so their vtime deltas must sum to induction.total_seconds within 1%.
  // Recovered traces carry the failed attempts' spans too, so the tiling
  // argument only holds for single-attempt runs.
  const Json* complete = trace.metadata.find("complete");
  if (complete != nullptr && complete->as_bool() && metrics_meta != nullptr &&
      !recovered) {
    const scalparc::mp::MetricsSnapshot& snapshot = meta_metrics;
    const double total = snapshot.value("induction.total_seconds", -1.0);
    if (total >= 0.0) {
      std::map<int, double> rank_vtime;
      for (const SpanRow& row : trace.spans) {
        if (row.depth == 0) rank_vtime[row.rank] += vtime_of(row);
      }
      const double tolerance = std::max(0.01 * total, 1e-9);
      for (const auto& [rank, sum] : rank_vtime) {
        if (std::fabs(sum - total) > tolerance) {
          char msg[160];
          std::snprintf(msg, sizeof(msg),
                        "rank %d span vtimes sum to %.9f, metrics say "
                        "induction.total_seconds = %.9f",
                        rank, sum, total);
          fail(msg);
        }
      }
    }
  }

  if (!metrics_path.empty()) {
    std::ifstream file(metrics_path);
    if (!file) {
      fail("cannot open metrics file '" + metrics_path + "'");
    } else {
      std::stringstream buffer;
      buffer << file.rdbuf();
      try {
        const Json doc = Json::parse(buffer.str());
        if (doc.at("format").as_string() != "scalparc-metrics-v1") {
          fail("metrics file has unexpected format tag");
        }
        const scalparc::mp::MetricsSnapshot snapshot =
            scalparc::mp::MetricsSnapshot::from_json(doc.at("metrics"));
        if (snapshot.empty()) fail("metrics file holds no metrics");
      } catch (const std::exception& e) {
        fail(std::string("metrics file: ") + e.what());
      }
    }
  }

  return failures;
}

void print_metrics(const std::string& path, std::ostream& out) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("cannot open '" + path + "'");
  std::stringstream buffer;
  buffer << file.rdbuf();
  const Json doc = Json::parse(buffer.str());
  const scalparc::mp::MetricsSnapshot snapshot =
      scalparc::mp::MetricsSnapshot::from_json(doc.at("metrics"));
  out << "\nmetrics (" << snapshot.size() << "):\n";
  char line[256];
  for (const auto& [name, metric] : snapshot.metrics()) {
    if (metric.kind == scalparc::mp::MetricKind::kHistogram) {
      std::snprintf(line, sizeof(line),
                    "  %-40s histogram  count=%llu sum=%llu max=%llu\n",
                    name.c_str(),
                    static_cast<unsigned long long>(metric.histogram.count),
                    static_cast<unsigned long long>(metric.histogram.sum),
                    static_cast<unsigned long long>(metric.histogram.max));
    } else {
      std::snprintf(
          line, sizeof(line), "  %-40s %-9s %.6g\n", name.c_str(),
          std::string(scalparc::mp::metric_kind_name(metric.kind)).c_str(),
          metric.value);
    }
    out << line;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const scalparc::util::CliArgs args(argc, const_cast<const char* const*>(argv));
  if (args.positional().empty()) {
    std::cerr << "usage: scalparc-trace-report TRACE.json [--top K] "
                 "[--metrics FILE] [--validate]\n";
    return 2;
  }
  const std::string trace_path = args.positional().front();
  const std::string metrics_path = args.get_string("metrics", "");
  const int top_k = static_cast<int>(args.get_int("top", 5));

  try {
    const Trace trace = load_trace(trace_path);
    std::cout << "trace: " << trace_path << "\n";
    print_report(trace, top_k, std::cout);
    if (!metrics_path.empty()) print_metrics(metrics_path, std::cout);
    if (args.get_bool("validate", false)) {
      const int failures = validate(trace, metrics_path, std::cout);
      if (failures > 0) {
        std::cout << "validation: " << failures << " failure(s)\n";
        return 1;
      }
      std::cout << "validation: OK\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
