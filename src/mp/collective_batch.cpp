#include "mp/collective_batch.hpp"

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <utility>
#include <vector>

namespace scalparc::mp {

void CollectiveBatch::combine_all(std::byte* dst,
                                  std::span<const std::byte> incoming,
                                  bool incoming_left) const {
  if (incoming.size() != buffer_.size()) {
    throw std::logic_error(
        "CollectiveBatch: peer sent a differently-sized packed buffer "
        "(directories disagree across ranks)");
  }
  for (const Segment& seg : segments_) {
    seg.combine(dst + seg.offset, incoming.data() + seg.offset, seg.bytes,
                incoming_left);
  }
}

void CollectiveBatch::pack_rooted(int root) {
  pack_.clear();
  for (const Segment& seg : segments_) {
    if (seg.root != root) continue;
    pack_.insert(pack_.end(), buffer_.data() + seg.offset,
                 buffer_.data() + seg.offset + seg.bytes);
  }
}

bool CollectiveBatch::owns_any(int root) const {
  for (const Segment& seg : segments_) {
    if (seg.root == root) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Exclusive scan: distance doubling over the whole packed buffer. One
// message per rank per round, log2(p) rounds — independent of how many
// segments ride in the batch.
// ---------------------------------------------------------------------------

void CollectiveBatch::exscan() {
  if (segments_.empty()) return;
  Comm::OpScope scope(comm_, CommOp::kScan);
  const int p = comm_.size();
  const int r = comm_.rank();

  // The exclusive result starts as each segment's identity, replicated.
  exclusive_.assign(buffer_.size(), std::byte{0});
  for (const Segment& seg : segments_) {
    for (std::size_t off = 0; off < seg.bytes; off += seg.elem_size) {
      std::memcpy(exclusive_.data() + seg.offset + off, seg.identity,
                  seg.elem_size);
    }
  }

  for (int d = 1; d < p; d <<= 1) {
    const std::int64_t tag = comm_.next_collective_tag();
    if (r + d < p) {
      comm_.send<std::byte>(r + d, tag, std::span<const std::byte>(buffer_));
    }
    if (r - d >= 0) {
      const std::vector<std::byte> incoming = comm_.recv<std::byte>(r - d, tag);
      // The incoming buffer covers ranks strictly left of this rank's
      // running segment: fold it in from the left.
      combine_all(exclusive_.data(), incoming, /*incoming_left=*/true);
      combine_all(buffer_.data(), incoming, /*incoming_left=*/true);
    }
  }
  buffer_.swap(exclusive_);
}

// ---------------------------------------------------------------------------
// Allreduce: binomial reduce of the packed buffer to rank 0, then binomial
// broadcast back out. Matches the algorithm shape of allreduce_vec so the
// modeled cost is comparable — but runs once for all segments.
// ---------------------------------------------------------------------------

void CollectiveBatch::allreduce() {
  if (segments_.empty()) return;
  Comm::OpScope scope(comm_, CommOp::kAllreduce);
  const int p = comm_.size();
  const int r = comm_.rank();
  if (p == 1) return;

  {  // reduce to rank 0 (vrank == rank because root is 0)
    const std::int64_t tag = comm_.next_collective_tag();
    int mask = 1;
    while (mask < p) {
      if ((r & mask) == 0) {
        const int src = r | mask;
        if (src < p) {
          const std::vector<std::byte> incoming = comm_.recv<std::byte>(src, tag);
          combine_all(buffer_.data(), incoming, /*incoming_left=*/false);
        }
      } else {
        const int dst = r & ~mask;
        comm_.send<std::byte>(dst, tag, std::span<const std::byte>(buffer_));
        break;
      }
      mask <<= 1;
    }
  }
  {  // broadcast from rank 0
    const std::int64_t tag = comm_.next_collective_tag();
    int mask = 1;
    while (mask < p) {
      if (r & mask) {
        std::vector<std::byte> incoming = comm_.recv<std::byte>(r - mask, tag);
        if (incoming.size() != buffer_.size()) {
          throw std::logic_error("CollectiveBatch: bad broadcast size");
        }
        buffer_ = std::move(incoming);
        break;
      }
      mask <<= 1;
    }
    mask >>= 1;
    while (mask > 0) {
      if ((r & (mask - 1)) == 0 && (r | mask) != r && r + mask < p) {
        comm_.send<std::byte>(r + mask, tag, std::span<const std::byte>(buffer_));
      }
      mask >>= 1;
    }
  }
}

// ---------------------------------------------------------------------------
// Rooted reduce: the paper's coordinator scheme as one round. Every rank
// packs, per distinct root, its contributions to that root's segments and
// sends them directly; each root folds the p-1 incoming packs into its own
// segments. Replaces one binomial reduce per categorical attribute with a
// single direct exchange carrying all matrices at once.
// ---------------------------------------------------------------------------

void CollectiveBatch::reduce_rooted() {
  if (segments_.empty()) return;
  Comm::OpScope scope(comm_, CommOp::kReduce);
  const int p = comm_.size();
  const int r = comm_.rank();
  if (p == 1) return;
  const std::int64_t tag = comm_.next_collective_tag();

  for (int dst = 0; dst < p; ++dst) {
    if (dst == r || !owns_any(dst)) continue;
    pack_rooted(dst);
    // The pack is dead after the send: hand the buffer to the mailbox.
    comm_.send<std::byte>(dst, tag, std::move(pack_));
  }
  if (!owns_any(r)) return;
  for (int src = 0; src < p; ++src) {
    if (src == r) continue;
    const std::vector<std::byte> incoming = comm_.recv<std::byte>(src, tag);
    std::size_t cursor = 0;
    for (const Segment& seg : segments_) {
      if (seg.root != r) continue;
      if (cursor + seg.bytes > incoming.size()) {
        throw std::logic_error(
            "CollectiveBatch: rooted pack shorter than the directory");
      }
      seg.combine(buffer_.data() + seg.offset, incoming.data() + cursor,
                  seg.bytes, /*incoming_left=*/false);
      cursor += seg.bytes;
    }
    if (cursor != incoming.size()) {
      throw std::logic_error(
          "CollectiveBatch: rooted pack longer than the directory");
    }
  }
}

// ---------------------------------------------------------------------------
// Rooted broadcast: each root publishes its segments to every rank in one
// round (direct sends). Replaces one binomial bcast per winning categorical
// attribute with a single round carrying all value->child mappings.
// ---------------------------------------------------------------------------

void CollectiveBatch::bcast_rooted() {
  if (segments_.empty()) return;
  Comm::OpScope scope(comm_, CommOp::kBroadcast);
  const int p = comm_.size();
  const int r = comm_.rank();
  if (p == 1) return;
  const std::int64_t tag = comm_.next_collective_tag();

  if (owns_any(r)) {
    pack_rooted(r);
    for (int dst = 0; dst < p; ++dst) {
      if (dst == r) continue;
      comm_.send<std::byte>(dst, tag, std::span<const std::byte>(pack_));
    }
  }
  for (int src = 0; src < p; ++src) {
    if (src == r || !owns_any(src)) continue;
    const std::vector<std::byte> incoming = comm_.recv<std::byte>(src, tag);
    std::size_t cursor = 0;
    for (const Segment& seg : segments_) {
      if (seg.root != src) continue;
      if (cursor + seg.bytes > incoming.size()) {
        throw std::logic_error(
            "CollectiveBatch: rooted pack shorter than the directory");
      }
      if (seg.bytes > 0) {
        std::memcpy(buffer_.data() + seg.offset, incoming.data() + cursor,
                    seg.bytes);
      }
      cursor += seg.bytes;
    }
    if (cursor != incoming.size()) {
      throw std::logic_error(
          "CollectiveBatch: rooted pack longer than the directory");
    }
  }
}

}  // namespace scalparc::mp
