file(REMOVE_RECURSE
  "CMakeFiles/scalparc_ooc.dir/ooc/ooc_sprint.cpp.o"
  "CMakeFiles/scalparc_ooc.dir/ooc/ooc_sprint.cpp.o.d"
  "CMakeFiles/scalparc_ooc.dir/ooc/spill_file.cpp.o"
  "CMakeFiles/scalparc_ooc.dir/ooc/spill_file.cpp.o.d"
  "libscalparc_ooc.a"
  "libscalparc_ooc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalparc_ooc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
