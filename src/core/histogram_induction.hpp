// Histogram-quantized induction engine (SplitMode::kHistogram / kVoting).
//
// The exact ScalParC engine keeps every attribute list globally sorted and
// pays O(N/p) communication per level for the node-table scatter/enquiry
// traffic of the splitting phase. This engine instead follows PV-Tree
// (arXiv 1611.01276): each rank keeps its *horizontal* block of records
// (all attributes of its rows), so applying a split is purely local, and
// split determination moves only fixed-width histograms — O(attributes *
// bins) bytes per level, independent of N. Voting mode shrinks that
// further: ranks vote their local top-k attributes and only the globally
// elected attributes' histograms are merged.
//
// The engine produces the same artifacts as the exact one — identical tree
// representation, identical checkpoint format (sorted AoS attribute-list
// sections) — so checkpoints interoperate across split modes and the
// elastic shrink/grow recovery paths work unchanged.
#pragma once

#include <cstdint>

#include "core/induction.hpp"

namespace scalparc::core {

// Dispatched to by induce_tree_distributed when
// controls.options.split_mode != SplitMode::kExact. Same contract.
InductionResult induce_tree_quantized(mp::Comm& comm,
                                      const data::Dataset& local_block,
                                      std::int64_t first_rid,
                                      std::uint64_t total_records,
                                      const InductionControls& controls);

}  // namespace scalparc::core
