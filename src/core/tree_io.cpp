#include "core/tree_io.hpp"

#include <cinttypes>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace scalparc::core {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("tree_io: " + what);
}

// Every parse error names the 1-based line it found the problem on, so a
// rejected snapshot (the serve ingestion path) is diagnosable without a hex
// dump of the file.
[[noreturn]] void fail_at(int line, const std::string& what) {
  fail(what + " (line " + std::to_string(line) + ")");
}

std::string double_to_hex(double value) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%a", value);
  return buffer;
}

double hex_to_double(const std::string& text, int line) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    fail_at(line, "bad threshold '" + text + "'");
  }
  return value;
}

// Line-at-a-time reader tracking the current line number. The format is
// line-oriented (one node per line), so structural errors always have a
// well-defined location.
class LineReader {
 public:
  explicit LineReader(std::istream& in) : in_(in) {}

  bool next(std::string& out) {
    if (!std::getline(in_, out)) return false;
    if (!out.empty() && out.back() == '\r') out.pop_back();
    ++line_;
    return true;
  }

  int line() const { return line_; }

 private:
  std::istream& in_;
  int line_ = 0;
};

// True when `text` contains nothing but whitespace.
bool blank(const std::string& text) {
  return text.find_first_not_of(" \t") == std::string::npos;
}

}  // namespace

void save_tree(const DecisionTree& tree, std::ostream& out) {
  const data::Schema& schema = tree.schema();
  out << "scalparc-tree v1\n";
  out << "classes " << schema.num_classes() << '\n';
  for (int a = 0; a < schema.num_attributes(); ++a) {
    const data::AttributeInfo& info = schema.attribute(a);
    if (info.kind == data::AttributeKind::kContinuous) {
      out << "attr " << info.name << " cont\n";
    } else {
      out << "attr " << info.name << " cat " << info.cardinality << '\n';
    }
  }
  out << "nodes " << tree.num_nodes() << '\n';
  for (int id = 0; id < tree.num_nodes(); ++id) {
    const TreeNode& node = tree.node(id);
    out << "node " << id << ' ';
    if (node.is_leaf) {
      out << "leaf";
    } else {
      out << (node.split.kind == data::AttributeKind::kContinuous ? "cont"
                                                                  : "cat");
    }
    out << ' ' << node.depth << ' ' << node.num_records << ' '
        << node.majority_class;
    for (const std::int64_t count : node.class_counts) out << ' ' << count;
    if (!node.is_leaf) {
      out << ' ' << node.split.attribute;
      if (node.split.kind == data::AttributeKind::kContinuous) {
        out << ' ' << double_to_hex(node.split.threshold);
      } else {
        out << ' ' << node.split.num_children;
        for (const std::int32_t slot : node.split.value_to_child) {
          out << ' ' << slot;
        }
      }
      for (const int child : node.children) out << ' ' << child;
    }
    out << '\n';
  }
}

void save_tree_file(const DecisionTree& tree, const std::string& path) {
  std::ofstream out(path);
  if (!out) fail("cannot open '" + path + "' for writing");
  save_tree(tree, out);
}

DecisionTree load_tree(std::istream& in) {
  LineReader reader(in);
  std::string line;
  if (!reader.next(line) || line != "scalparc-tree v1") {
    fail_at(1, "missing 'scalparc-tree v1' header");
  }

  std::int32_t num_classes = 0;
  {
    if (!reader.next(line)) fail_at(reader.line() + 1, "missing classes line");
    std::istringstream fields(line);
    std::string token;
    if (!(fields >> token >> num_classes) || token != "classes" ||
        num_classes < 2) {
      fail_at(reader.line(), "bad classes line");
    }
  }

  // Attribute lines until the 'nodes <count>' line.
  std::vector<data::AttributeInfo> attributes;
  int num_nodes = -1;
  for (;;) {
    if (!reader.next(line)) {
      fail_at(reader.line() + 1, "unexpected end of input (no nodes line)");
    }
    std::istringstream fields(line);
    std::string token;
    if (!(fields >> token)) fail_at(reader.line(), "blank line in header");
    if (token == "nodes") {
      if (!(fields >> num_nodes) || num_nodes < 0) {
        fail_at(reader.line(), "bad node count");
      }
      std::string extra;
      if (fields >> extra) fail_at(reader.line(), "trailing field on nodes line");
      break;
    }
    if (token != "attr") {
      fail_at(reader.line(), "expected 'attr' or 'nodes', got '" + token + "'");
    }
    std::string name;
    std::string kind;
    if (!(fields >> name >> kind)) fail_at(reader.line(), "bad attr line");
    if (kind == "cont") {
      attributes.push_back(data::Schema::continuous(name));
    } else if (kind == "cat") {
      std::int32_t cardinality = 0;
      if (!(fields >> cardinality) || cardinality < 1) {
        fail_at(reader.line(), "bad categorical cardinality");
      }
      attributes.push_back(data::Schema::categorical(name, cardinality));
    } else {
      fail_at(reader.line(), "bad attribute kind '" + kind + "'");
    }
    std::string extra;
    if (fields >> extra) fail_at(reader.line(), "trailing field on attr line");
  }

  DecisionTree tree(data::Schema(std::move(attributes), num_classes));
  const data::Schema& schema = tree.schema();

  // Structural audit state: the writer emits nodes in an order where every
  // child id exceeds its parent's (level-order induction, pre-order
  // compaction after pruning), and every non-root node is referenced by
  // exactly one parent. Enforcing both makes self-references, back-edge
  // cycles and shared subtrees unrepresentable, so a hostile snapshot can
  // never smuggle a non-tree graph past the loader.
  std::vector<char> has_parent(static_cast<std::size_t>(num_nodes), 0);

  for (int expected = 0; expected < num_nodes; ++expected) {
    if (!reader.next(line)) {
      fail_at(reader.line() + 1,
              "unexpected end of input: node count says " +
                  std::to_string(num_nodes) + " node(s), got " +
                  std::to_string(expected));
    }
    std::istringstream fields(line);
    std::string token;
    int id = 0;
    std::string kind;
    if (!(fields >> token >> id >> kind) || token != "node" || id != expected) {
      fail_at(reader.line(),
              "bad node line (expected node " + std::to_string(expected) + ")");
    }
    TreeNode node;
    if (!(fields >> node.depth >> node.num_records >> node.majority_class)) {
      fail_at(reader.line(), "bad node header");
    }
    if (node.majority_class < 0 || node.majority_class >= num_classes) {
      fail_at(reader.line(), "majority class out of range");
    }
    node.class_counts.resize(static_cast<std::size_t>(num_classes));
    for (auto& count : node.class_counts) {
      if (!(fields >> count)) fail_at(reader.line(), "bad class counts");
    }
    if (kind == "leaf") {
      node.is_leaf = true;
    } else if (kind == "cont" || kind == "cat") {
      node.is_leaf = false;
      if (!(fields >> node.split.attribute)) {
        fail_at(reader.line(), "bad split attribute");
      }
      if (node.split.attribute < 0 ||
          node.split.attribute >= schema.num_attributes()) {
        fail_at(reader.line(), "split attribute out of range");
      }
      const data::AttributeInfo& info = schema.attribute(node.split.attribute);
      if (kind == "cont") {
        if (info.kind != data::AttributeKind::kContinuous) {
          fail_at(reader.line(),
                  "continuous split on categorical attribute '" + info.name +
                      "'");
        }
        node.split.kind = data::AttributeKind::kContinuous;
        node.split.num_children = 2;
        if (!(fields >> token)) fail_at(reader.line(), "bad threshold");
        node.split.threshold = hex_to_double(token, reader.line());
      } else {
        if (info.kind != data::AttributeKind::kCategorical) {
          fail_at(reader.line(), "categorical split on continuous attribute '" +
                                     info.name + "'");
        }
        node.split.kind = data::AttributeKind::kCategorical;
        if (!(fields >> node.split.num_children) ||
            node.split.num_children < 2) {
          fail_at(reader.line(), "bad child count");
        }
        node.split.value_to_child.resize(
            static_cast<std::size_t>(info.cardinality));
        for (auto& slot : node.split.value_to_child) {
          if (!(fields >> slot)) fail_at(reader.line(), "bad value_to_child");
          if (slot < -1 || slot >= node.split.num_children) {
            fail_at(reader.line(), "value_to_child slot " +
                                       std::to_string(slot) + " out of range");
          }
        }
      }
      node.children.resize(static_cast<std::size_t>(node.split.num_children));
      for (auto& child : node.children) {
        if (!(fields >> child)) fail_at(reader.line(), "bad child id");
        if (child < 0 || child >= num_nodes) {
          fail_at(reader.line(), "child id " + std::to_string(child) +
                                     " out of range [0, " +
                                     std::to_string(num_nodes) + ")");
        }
        if (child <= id) {
          fail_at(reader.line(),
                  "child id " + std::to_string(child) +
                      " does not exceed its parent id " + std::to_string(id) +
                      " (self-reference or cycle)");
        }
        if (has_parent[static_cast<std::size_t>(child)] != 0) {
          fail_at(reader.line(), "node " + std::to_string(child) +
                                     " is claimed by more than one parent");
        }
        has_parent[static_cast<std::size_t>(child)] = 1;
      }
    } else {
      fail_at(reader.line(), "bad node kind '" + kind + "'");
    }
    std::string extra;
    if (fields >> extra) {
      fail_at(reader.line(), "trailing field '" + extra + "' on node line");
    }
    tree.add_node(std::move(node));
  }

  // Node-count audit: the declared count must be exact — extra node lines
  // (or any other trailing content) mean the file and its count disagree.
  while (reader.next(line)) {
    if (!blank(line)) {
      fail_at(reader.line(), "trailing content after the declared " +
                                 std::to_string(num_nodes) + " node(s)");
    }
  }
  // Reachability audit: every non-root node must have been claimed as
  // someone's child; an orphan is a severed subtree the writer never emits.
  for (int id = 1; id < num_nodes; ++id) {
    if (has_parent[static_cast<std::size_t>(id)] == 0) {
      fail("node " + std::to_string(id) + " is unreachable (no parent)");
    }
  }
  return tree;
}

DecisionTree load_tree_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("cannot open '" + path + "' for reading");
  return load_tree(in);
}

}  // namespace scalparc::core
