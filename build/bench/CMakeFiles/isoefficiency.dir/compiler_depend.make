# Empty compiler generated dependencies file for isoefficiency.
# This may be replaced when dependencies are built.
