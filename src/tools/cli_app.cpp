#include "tools/cli_app.hpp"

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <fstream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "core/predict.hpp"
#include "core/pruning.hpp"
#include "core/scalparc.hpp"
#include "core/tree_io.hpp"
#include "data/csv.hpp"
#include "data/synthetic.hpp"
#include "mp/fault.hpp"
#include "mp/telemetry.hpp"
#include "sprint/parallel_sprint.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"
#include "util/trace.hpp"

namespace scalparc::tools {

namespace {

constexpr const char* kUsage = R"(scalparc — scalable parallel decision-tree classification

usage: scalparc <command> [flags]

commands:
  generate   synthesize Quest benchmark data as CSV
               --records N          number of records (default 10000)
               --function F1..F7    labeling function (default F2)
               --noise X            label-flip probability (default 0)
               --attributes K       leading attributes, 1..9 (default 7)
               --seed S             generator seed (default 1)
               --out FILE           output CSV (required)
  train      fit a decision tree from a CSV
               --data FILE          training CSV (required)
               --model FILE         where to save the tree (required)
               --ranks P            simulated processors (default 4)
               --criterion C        gini | entropy (default gini)
               --categorical M      multiway | subset (default multiway)
               --strategy S         scalparc | sprint (default scalparc)
               --max-depth D        depth cap (default 64)
               --min-split M        min records to split a node (default 2)
               --no-fuse            per-attribute collectives instead of the
                                    fused per-level rounds (same tree; the
                                    differential-testing oracle)
               --split-mode M       exact | histogram | voting: split
                                    determination engine (default exact).
                                    histogram merges fixed-width class
                                    histograms instead of exact lists —
                                    per-level bytes independent of N;
                                    voting additionally elects only the
                                    top-voted attributes for merging
               --hist-bins N        histogram/voting: bins per attribute,
                                    >= 2 (default 64)
               --top-k K            voting only: attributes each rank votes
                                    per node; top 2K are elected (default 2)
               --prune              apply MDL pruning after training
               --checkpoint-dir D   write a level checkpoint into D each level;
                                    failed runs auto-resume from the last one
               --resume             restore the latest checkpoint in
                                    --checkpoint-dir instead of starting fresh
               --fault-plan SPEC    inject deterministic faults, e.g.
                                    kill:r=2,level=3 | kill:r=1,op=50 |
                                    corrupt:r=0,op=10 | delay:r=1,op=5,ms=20 |
                                    drop:r=0,op=3 | duplicate:r=1,op=4
                                    (';'-separated list)
               --fault-schedule S   '|'-separated per-attempt fault plans:
                                    segment 0 faults the initial run, segment
                                    i the i-th recovery attempt (compound
                                    faults; empty segment = clean attempt);
                                    needs --checkpoint-dir, excludes
                                    --fault-plan
               --fault-seed S       seed for corruption bit choice (default 1)
               --recv-timeout SECS  per-receive timeout, <=0 disables
                                    (default 120, or
                                    SCALPARC_TEST_RECV_TIMEOUT_S)
               --recovery-policy P  restart | shrink | grow | rebalance: what
                                    a failed run does after a rank death —
                                    restart the full world, continue with the
                                    survivors, or admit fresh joiner ranks.
                                    rebalance handles *straggler* classifica-
                                    tions: same world, attribute lists
                                    re-tiled away from the slow rank, with
                                    escalation to a demotion if the same rank
                                    re-classifies (default restart; needs
                                    --checkpoint-dir)
               --detect-stragglers  classify a sustained slow-but-alive rank
                                    as a straggler (phi-accrual heartbeats +
                                    progress watermarks) instead of letting
                                    it drag the whole run
               --adaptive-timeouts  derive per-receive timeouts from each
                                    channel's observed arrival cadence
                                    (never exceeds --recv-timeout; escalates
                                    only when the peer's heartbeat lane is
                                    silent too)
               --phi-threshold X    suspicion level treated as dead for
                                    health purposes (default 8)
               --straggler-sustain-s S
                                    seconds the straggler evidence must hold
                                    before classifying (default 1.5)
               --slow-ratio R       minimum busy-time ratio vs the median
                                    peer to call a rank slow (default 3)
               --join-ranks K       grow only: joiners admitted per recovery,
                                    new world = survivors + K (default 1)
               --max-recoveries N   recovery budget: total failures the run
                                    may survive before failing fast as
                                    budget-exhausted; 0 = unlimited
               --max-heal-seconds S recovery budget: cumulative wall-clock
                                    seconds of failed attempts; 0 = unlimited
               --max-retransmits N  per-receive heal budget of the ack/
                                    retransmit transport; 0 disables healing
                                    (default 8)
               --backoff-ms MS      first retransmit-request delay; doubles
                                    per attempt, capped (default 25)
               --trace-out FILE     write a Chrome trace_event JSON of the
                                    run's per-rank phase spans (load it in
                                    Perfetto, or summarize it with
                                    scalparc-trace-report)
               --trace-sample N     record every Nth span per rank
                                    (default 1 = all)
               --metrics-out FILE   write the run's merged metrics registry
                                    as JSON (scalparc-metrics-v1)
               --telemetry-out FILE append live scalparc-timeseries-v1 JSONL
                                    epochs sampled from the running ranks
               --telemetry-interval-ms N
                                    telemetry sampling epoch (default 1000)
               --expose-out FILE    Prometheus text exposition, atomically
                                    rewritten every telemetry epoch
               --flight-out FILE    dump the flight-recorder event ring as
                                    scalparc-flight-v1 JSONL at exit
  predict    evaluate a saved model on a CSV
               --model FILE         saved tree (required)
               --data FILE          CSV with labels (required)
               --out FILE           optionally write per-row predictions
  inspect    describe a saved model
               --model FILE         saved tree (required)
               --render             print the full tree
  bench      scaling table on synthetic data (Cray T3D cost model)
               --records N          training size (default 50000)
               --procs a,b,c        processor counts (default 1,2,4,8,16)
               --function F1..F7    labeling function (default F2)
  help       print this message
)";

core::InductionControls controls_from(const util::CliArgs& args,
                                      std::ostream& err, bool& ok) {
  core::InductionControls controls;
  controls.options.max_depth = static_cast<int>(args.get_int("max-depth", 64));
  controls.options.min_split_records = args.get_int("min-split", 2);
  controls.options.fuse_collectives = !args.get_bool("no-fuse", false);
  const std::string criterion = args.get_string("criterion", "gini");
  if (criterion == "gini") {
    controls.options.criterion = core::SplitCriterion::kGini;
  } else if (criterion == "entropy") {
    controls.options.criterion = core::SplitCriterion::kEntropy;
  } else {
    err << "unknown --criterion '" << criterion << "' (gini | entropy)\n";
    ok = false;
  }
  const std::string categorical = args.get_string("categorical", "multiway");
  if (categorical == "multiway") {
    controls.options.categorical_split = core::CategoricalSplit::kMultiWay;
  } else if (categorical == "subset") {
    controls.options.categorical_split = core::CategoricalSplit::kBinarySubset;
  } else {
    err << "unknown --categorical '" << categorical << "' (multiway | subset)\n";
    ok = false;
  }
  const std::string strategy = args.get_string("strategy", "scalparc");
  if (strategy == "scalparc") {
    controls.strategy = core::SplittingStrategy::kDistributedHash;
  } else if (strategy == "sprint") {
    controls.strategy = core::SplittingStrategy::kReplicatedHash;
  } else {
    err << "unknown --strategy '" << strategy << "' (scalparc | sprint)\n";
    ok = false;
  }
  const std::string split_mode = args.get_string("split-mode", "exact");
  if (split_mode == "exact") {
    controls.options.split_mode = core::SplitMode::kExact;
  } else if (split_mode == "histogram") {
    controls.options.split_mode = core::SplitMode::kHistogram;
  } else if (split_mode == "voting") {
    controls.options.split_mode = core::SplitMode::kVoting;
  } else {
    err << "unknown --split-mode '" << split_mode
        << "' (exact | histogram | voting)\n";
    ok = false;
  }
  const std::int64_t hist_bins = args.get_int("hist-bins", 64);
  if (args.has("hist-bins") &&
      controls.options.split_mode == core::SplitMode::kExact) {
    err << "--hist-bins only applies with --split-mode histogram or voting\n";
    ok = false;
  }
  if (hist_bins < 2) {
    err << "--hist-bins must be >= 2\n";
    ok = false;
  }
  controls.options.hist_bins = static_cast<int>(hist_bins);
  const std::int64_t top_k = args.get_int("top-k", 2);
  if (args.has("top-k") &&
      controls.options.split_mode != core::SplitMode::kVoting) {
    err << "--top-k only applies with --split-mode voting\n";
    ok = false;
  }
  if (top_k < 1) {
    err << "--top-k must be >= 1\n";
    ok = false;
  }
  controls.options.top_k = static_cast<int>(top_k);
  return controls;
}

int cmd_generate(const util::CliArgs& args, std::ostream& out,
                 std::ostream& err) {
  const std::string path = args.get_string("out", "");
  if (path.empty()) {
    err << "generate: --out FILE is required\n";
    return 2;
  }
  data::GeneratorConfig config;
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  config.function = data::parse_label_function(args.get_string("function", "F2"));
  config.label_noise = args.get_double("noise", 0.0);
  config.num_attributes = static_cast<int>(args.get_int("attributes", 7));
  const auto records = static_cast<std::uint64_t>(args.get_int("records", 10000));
  const data::QuestGenerator generator(config);
  data::write_csv_file(generator.generate(0, records), path);
  out << "wrote " << records << " records to " << path << "\n";
  return 0;
}

int cmd_train(const util::CliArgs& args, std::ostream& out, std::ostream& err) {
  const std::string data_path = args.get_string("data", "");
  const std::string model_path = args.get_string("model", "");
  if (data_path.empty() || model_path.empty()) {
    err << "train: --data FILE and --model FILE are required\n";
    return 2;
  }
  bool ok = true;
  core::InductionControls controls = controls_from(args, err, ok);
  if (!ok) return 2;
  const int ranks = static_cast<int>(args.get_int("ranks", 4));

  controls.checkpoint.directory = args.get_string("checkpoint-dir", "");
  controls.checkpoint.resume = args.get_bool("resume", false);
  if (controls.checkpoint.resume && controls.checkpoint.directory.empty()) {
    err << "train: --resume requires --checkpoint-dir\n";
    return 2;
  }
  core::RecoveryPolicy policy = core::RecoveryPolicy::kRestart;
  const std::string policy_name = args.get_string("recovery-policy", "restart");
  if (policy_name == "shrink") {
    policy = core::RecoveryPolicy::kShrink;
  } else if (policy_name == "grow") {
    policy = core::RecoveryPolicy::kGrow;
  } else if (policy_name == "rebalance") {
    policy = core::RecoveryPolicy::kRebalance;
  } else if (policy_name != "restart") {
    err << "unknown --recovery-policy '" << policy_name
        << "' (restart | shrink | grow | rebalance)\n";
    return 2;
  }
  if (policy != core::RecoveryPolicy::kRestart &&
      controls.checkpoint.directory.empty()) {
    err << "train: --recovery-policy " << policy_name
        << " requires --checkpoint-dir\n";
    return 2;
  }
  const std::int64_t join_ranks = args.get_int("join-ranks", 1);
  if (args.has("join-ranks") && policy != core::RecoveryPolicy::kGrow) {
    err << "train: --join-ranks only applies with --recovery-policy grow\n";
    return 2;
  }
  if (join_ranks < 1) {
    err << "train: --join-ranks must be >= 1\n";
    return 2;
  }
  const std::int64_t max_recoveries = args.get_int("max-recoveries", 0);
  if (max_recoveries < 0) {
    err << "train: --max-recoveries must be >= 0 (0 = unlimited)\n";
    return 2;
  }
  const double max_heal_seconds = args.get_double("max-heal-seconds", 0.0);
  if (max_heal_seconds < 0.0) {
    err << "train: --max-heal-seconds must be >= 0 (0 = unlimited)\n";
    return 2;
  }
  mp::RunOptions run_options;
  run_options.recv_timeout_s =
      args.get_double("recv-timeout", mp::default_recv_timeout_s());
  run_options.health.detect_stragglers =
      args.get_bool("detect-stragglers", false);
  run_options.health.adaptive_timeouts =
      args.get_bool("adaptive-timeouts", false);
  // Health tuning knobs are rejected at parse time: a malformed value must
  // name the flag and the value instead of silently falling back.
  if (!run_options.health.monitoring() &&
      (args.has("phi-threshold") || args.has("straggler-sustain-s") ||
       args.has("slow-ratio"))) {
    err << "train: --phi-threshold / --straggler-sustain-s / --slow-ratio "
           "only apply with --detect-stragglers or --adaptive-timeouts\n";
    return 2;
  }
  try {
    if (args.has("phi-threshold")) {
      run_options.health.phi_threshold = mp::parse_positive_health_value(
          "--phi-threshold", args.get_string("phi-threshold", ""));
    }
    if (args.has("straggler-sustain-s")) {
      run_options.health.sustain_s = mp::parse_positive_health_value(
          "--straggler-sustain-s", args.get_string("straggler-sustain-s", ""));
    }
    if (args.has("slow-ratio")) {
      run_options.health.slow_ratio = mp::parse_positive_health_value(
          "--slow-ratio", args.get_string("slow-ratio", ""));
    }
    run_options.health.validate();
  } catch (const std::exception& e) {
    err << "train: " << e.what() << "\n";
    return 2;
  }
  const std::int64_t max_retransmits = args.get_int("max-retransmits", 8);
  if (max_retransmits < 0) {
    err << "train: --max-retransmits must be >= 0\n";
    return 2;
  }
  run_options.reliability.max_retransmits =
      static_cast<int>(max_retransmits);
  run_options.reliability.enabled = max_retransmits > 0;
  const double backoff_ms = args.get_double("backoff-ms", 25.0);
  if (backoff_ms <= 0.0) {
    err << "train: --backoff-ms must be positive\n";
    return 2;
  }
  run_options.reliability.backoff_ms = backoff_ms;
  mp::FaultPlan plan;
  const std::string fault_spec = args.get_string("fault-plan", "");
  const std::string schedule_spec = args.get_string("fault-schedule", "");
  if (!fault_spec.empty() && !schedule_spec.empty()) {
    err << "train: --fault-plan and --fault-schedule are mutually exclusive "
           "(a schedule's first segment is the initial run's plan)\n";
    return 2;
  }
  if (!fault_spec.empty()) {
    plan.parse(fault_spec);
    plan.set_seed(static_cast<std::uint64_t>(args.get_int("fault-seed", 1)));
    run_options.fault_plan = &plan;
  }
  mp::FaultSchedule schedule;
  if (!schedule_spec.empty()) {
    if (controls.checkpoint.directory.empty()) {
      err << "train: --fault-schedule targets recovery attempts and needs "
             "--checkpoint-dir\n";
      return 2;
    }
    schedule.parse(schedule_spec);
    schedule.set_seed(static_cast<std::uint64_t>(args.get_int("fault-seed", 1)));
  }

  const std::string trace_path = args.get_string("trace-out", "");
  const std::string metrics_path = args.get_string("metrics-out", "");
  const std::int64_t trace_sample = args.get_int("trace-sample", 1);
  if (trace_sample < 1) {
    err << "train: --trace-sample must be >= 1\n";
    return 2;
  }
  if (!trace_path.empty()) {
    util::TraceConfig trace_config;
    trace_config.sample_every = static_cast<int>(trace_sample);
    if (!util::TraceCollector::instance().start(trace_config)) {
      err << "train: --trace-out needs a build with -DSCALPARC_TRACE=ON\n";
      return 2;
    }
  }

  // Continuous telemetry (off by default; docs/observability.md). The rank
  // threads publish per-level snapshot copies; the exporter samples them on
  // the interval.
  const std::string telemetry_path = args.get_string("telemetry-out", "");
  const std::string expose_path = args.get_string("expose-out", "");
  const std::string flight_path = args.get_string("flight-out", "");
  const std::int64_t telemetry_interval_ms =
      args.get_int("telemetry-interval-ms", 1000);
  if (telemetry_interval_ms < 1) {
    err << "train: --telemetry-interval-ms must be >= 1\n";
    return 2;
  }
  if (!flight_path.empty()) {
    telemetry::set_flight_capacity(256);
    telemetry::arm_flight_dump(flight_path);
  }
  std::unique_ptr<telemetry::TelemetryExporter> exporter;
  if (!telemetry_path.empty() || !expose_path.empty()) {
    telemetry::TelemetryOptions topts;
    topts.timeseries_path = telemetry_path;
    topts.expose_path = expose_path;
    topts.interval_ms = static_cast<int>(telemetry_interval_ms);
    exporter = std::make_unique<telemetry::TelemetryExporter>(std::move(topts));
  }

  const data::Dataset training = data::read_csv_file(data_path);
  core::FitReport report;
  if (controls.checkpoint.resume) {
    report = core::ScalParC::resume_from_checkpoint(
        training, ranks, controls, mp::CostModel::zero(), run_options);
    out << "resumed from checkpoint in " << controls.checkpoint.directory
        << "\n";
  } else if (!controls.checkpoint.directory.empty()) {
    core::RecoveryControls recovery;
    recovery.policy = policy;
    recovery.join_ranks = static_cast<int>(join_ranks);
    recovery.budget.max_recoveries = static_cast<int>(max_recoveries);
    recovery.budget.max_heal_seconds = max_heal_seconds;
    if (!schedule.empty()) recovery.fault_schedule = &schedule;
    core::RecoveryReport recovered = core::ScalParC::fit_with_recovery(
        training, ranks, controls, recovery, mp::CostModel::zero(),
        run_options);
    for (const core::RecoveryEvent& event : recovered.events) {
      std::string world_change;
      switch (event.policy) {
        case core::RecoveryPolicy::kShrink:
          world_change = "shrunk to " + std::to_string(event.ranks_after) +
                         " survivor rank(s)";
          break;
        case core::RecoveryPolicy::kGrow:
          world_change = "grew to " + std::to_string(event.ranks_after) +
                         " rank(s), " + std::to_string(event.joiners) +
                         " joiner(s) admitted";
          break;
        case core::RecoveryPolicy::kRestart:
          world_change =
              "restarted " + std::to_string(event.ranks_after) + " rank(s)";
          break;
        case core::RecoveryPolicy::kRebalance:
          if (event.demoted) {
            world_change = "demoted straggler rank " +
                           std::to_string(event.straggler_rank) +
                           ", shrunk to " +
                           std::to_string(event.ranks_after) + " rank(s)";
          } else {
            char buf[96];
            std::snprintf(buf, sizeof(buf),
                          "rebalanced away from slow rank %d (slowdown x%.1f)",
                          event.straggler_rank, event.straggler_slowdown);
            world_change = buf;
          }
          break;
      }
      out << "recovered from rank " << event.failed_rank << " failure ("
          << (event.resumed_level >= 0
                  ? "resumed at level " + std::to_string(event.resumed_level)
                  : std::string("restarted from scratch"))
          << ", " << world_change << "): " << event.message << "\n";
    }
    if (recovered.outcome != core::RecoveryOutcome::kCompleted) {
      err << "train: fit did not complete: classified as "
          << core::to_string(recovered.outcome) << " after "
          << recovered.attempts << " attempt(s)";
      if (recovered.last_error) {
        try {
          std::rethrow_exception(recovered.last_error);
        } catch (const std::exception& e) {
          err << ": " << e.what();
        }
      }
      err << "\n";
      if (exporter != nullptr) exporter->stop();
      telemetry::dump_armed_flight();
      return 1;
    }
    report = std::move(recovered.fit);
  } else {
    report = core::ScalParC::fit(training, ranks, controls,
                                 mp::CostModel::zero(), run_options);
  }
  // Final epoch captures the end-of-run registry state.
  if (exporter != nullptr) {
    exporter->stop();
    out << "telemetry: " << exporter->epochs() << " epoch(s) every "
        << telemetry_interval_ms << " ms";
    if (!telemetry_path.empty()) out << " -> " << telemetry_path;
    if (!expose_path.empty()) out << ", expose " << expose_path;
    out << "\n";
  }
  if (!flight_path.empty()) {
    if (telemetry::dump_flight(flight_path)) {
      out << "flight recorder written to " << flight_path << "\n";
    }
  }
  if (!trace_path.empty()) {
    const util::TraceDump dump = util::TraceCollector::instance().stop();
    util::Json metadata = util::Json::object();
    metadata["tool"] = util::Json("scalparc train");
    metadata["ranks"] = util::Json(static_cast<double>(ranks));
    metadata["sample_every"] = util::Json(static_cast<double>(dump.sample_every));
    metadata["dropped"] = util::Json(static_cast<double>(dump.dropped));
    metadata["complete"] = util::Json(dump.complete());
    metadata["metrics"] = report.run.metrics.to_json();
    std::ofstream trace_file(trace_path);
    if (!trace_file) {
      err << "train: cannot open '" << trace_path << "' for writing\n";
      return 2;
    }
    trace_file << util::chrome_trace_json(dump, metadata).dump(1) << "\n";
    out << "trace written to " << trace_path << " (" << dump.spans.size()
        << " span(s))\n";
  }
  if (!metrics_path.empty()) {
    util::Json doc = util::Json::object();
    doc["format"] = util::Json("scalparc-metrics-v1");
    doc["ranks"] = util::Json(static_cast<double>(ranks));
    doc["metrics"] = report.run.metrics.to_json();
    std::ofstream metrics_file(metrics_path);
    if (!metrics_file) {
      err << "train: cannot open '" << metrics_path << "' for writing\n";
      return 2;
    }
    metrics_file << doc.dump(1) << "\n";
    out << "metrics written to " << metrics_path << " ("
        << report.run.metrics.size() << " metric(s))\n";
  }
  out << "trained on " << training.num_records() << " records with " << ranks
      << " simulated ranks\n";
  if (report.run.transport.heal_events() > 0) {
    out << "transport healed in-band: " << report.run.transport.retransmits
        << " retransmit(s), " << report.run.transport.nacks << " nack(s), "
        << report.run.transport.duplicates << " duplicate(s) absorbed\n";
  }
  out << "tree: " << report.tree.num_nodes() << " nodes, "
      << report.tree.num_leaves() << " leaves, depth " << report.tree.depth()
      << "\n";
  if (args.get_bool("prune", false)) {
    const core::PruneReport pruned = core::mdl_prune(report.tree);
    out << "pruned: " << pruned.nodes_before << " -> " << pruned.nodes_after
        << " nodes\n";
  }
  out << "training accuracy: " << report.tree.accuracy(training) << "\n";
  core::save_tree_file(report.tree, model_path);
  out << "model saved to " << model_path << "\n";
  return 0;
}

int cmd_predict(const util::CliArgs& args, std::ostream& out,
                std::ostream& err) {
  const std::string model_path = args.get_string("model", "");
  const std::string data_path = args.get_string("data", "");
  if (model_path.empty() || data_path.empty()) {
    err << "predict: --model FILE and --data FILE are required\n";
    return 2;
  }
  const core::DecisionTree tree = core::load_tree_file(model_path);
  const data::Dataset dataset = data::read_csv_file(data_path);
  if (!(dataset.schema() == tree.schema())) {
    err << "predict: data schema does not match the model's schema\n";
    return 2;
  }
  // Score through the compiled flat-tree engine (the serving path); the
  // recursive walk stays available as the differential oracle in tests.
  const core::CompiledTree compiled = core::CompiledTree::compile(tree);
  const std::vector<std::int32_t> predicted = compiled.predict_all(dataset);
  core::ConfusionMatrix matrix(tree.schema().num_classes());
  for (std::size_t row = 0; row < dataset.num_records(); ++row) {
    matrix.record(dataset.label(row), predicted[row]);
  }
  out << "evaluated " << matrix.total() << " records\n";
  out << "accuracy: " << matrix.accuracy() << "\n";
  out << "confusion matrix:\n" << matrix.to_string();
  out << "class  precision  recall  f1\n";
  for (std::int32_t cls = 0; cls < tree.schema().num_classes(); ++cls) {
    char line[96];
    std::snprintf(line, sizeof(line), "%5d  %9.4f  %6.4f  %6.4f\n", cls,
                  matrix.precision(cls), matrix.recall(cls), matrix.f1(cls));
    out << line;
  }
  const std::string out_path = args.get_string("out", "");
  if (!out_path.empty()) {
    std::ofstream predictions(out_path);
    if (!predictions) {
      err << "predict: cannot open '" << out_path << "' for writing\n";
      return 2;
    }
    predictions << "row,actual,predicted\n";
    for (std::size_t row = 0; row < dataset.num_records(); ++row) {
      predictions << row << ',' << dataset.label(row) << ','
                  << predicted[row] << '\n';
    }
    out << "predictions written to " << out_path << "\n";
  }
  return 0;
}

int cmd_inspect(const util::CliArgs& args, std::ostream& out,
                std::ostream& err) {
  const std::string model_path = args.get_string("model", "");
  if (model_path.empty()) {
    err << "inspect: --model FILE is required\n";
    return 2;
  }
  const core::DecisionTree tree = core::load_tree_file(model_path);
  const data::Schema& schema = tree.schema();
  out << "model: " << model_path << "\n";
  out << "classes: " << schema.num_classes() << "\n";
  out << "attributes: " << schema.num_attributes() << " ("
      << schema.num_continuous() << " continuous, " << schema.num_categorical()
      << " categorical)\n";
  out << "nodes: " << tree.num_nodes() << " (" << tree.num_leaves()
      << " leaves), depth " << tree.depth() << "\n";
  out << "training records seen: " << tree.node(tree.root()).num_records << "\n";
  if (args.get_bool("render", false)) {
    out << "\n" << tree.to_string();
  }
  return 0;
}

int cmd_bench(const util::CliArgs& args, std::ostream& out, std::ostream&) {
  const auto records = static_cast<std::uint64_t>(args.get_int("records", 50000));
  const auto procs = args.get_int_list("procs", {1, 2, 4, 8, 16});
  data::GeneratorConfig config;
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  config.function = data::parse_label_function(args.get_string("function", "F2"));
  const data::QuestGenerator generator(config);
  out << "records: " << records << "\n";
  out << "procs\tmodeled-s\tspeedup\tMB-sent/rank\tMB-mem/rank\n";
  double t_first = 0.0;
  for (const std::int64_t p : procs) {
    const core::FitReport report = core::ScalParC::fit_generated(
        generator, records, static_cast<int>(p), core::InductionControls{},
        mp::CostModel::cray_t3d());
    if (p == procs.front()) t_first = report.run.modeled_seconds * static_cast<double>(p);
    char line[160];
    std::snprintf(line, sizeof(line), "%lld\t%.4f\t%.2f\t%.3f\t%.3f",
                  static_cast<long long>(p), report.run.modeled_seconds,
                  t_first / report.run.modeled_seconds,
                  static_cast<double>(report.run.max_bytes_sent_per_rank()) / 1e6,
                  static_cast<double>(report.run.max_peak_bytes_per_rank()) / 1e6);
    out << line << "\n";
  }
  return 0;
}

}  // namespace

int run_cli(int argc, const char* const* argv, std::ostream& out,
            std::ostream& err) {
  if (argc < 2) {
    err << kUsage;
    return 2;
  }
  const std::string command = argv[1];
  const util::CliArgs args(argc - 1, argv + 1);
  try {
    // Force the SCALPARC_LOG_FORMAT env parse up front: a garbage value must
    // fail the run loudly, not lie dormant until the first log line.
    util::log_format();
    if (command == "generate") return cmd_generate(args, out, err);
    if (command == "train") return cmd_train(args, out, err);
    if (command == "predict") return cmd_predict(args, out, err);
    if (command == "inspect") return cmd_inspect(args, out, err);
    if (command == "bench") return cmd_bench(args, out, err);
    if (command == "help" || command == "--help" || command == "-h") {
      out << kUsage;
      return 0;
    }
    err << "unknown command '" << command << "'\n\n" << kUsage;
    return 2;
  } catch (const std::exception& e) {
    // Error exit: flush the flight-recorder ring for the postmortem.
    telemetry::dump_armed_flight();
    err << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace scalparc::tools
