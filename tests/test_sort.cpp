// Tests for the parallel sample sort and the order-preserving rebalance.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "data/attribute_list.hpp"
#include "mp/runtime.hpp"
#include "sort/partition_util.hpp"
#include "sort/rebalance.hpp"
#include "sort/sample_sort.hpp"
#include "util/random.hpp"

namespace scalparc {
namespace {

const mp::CostModel kZero = mp::CostModel::zero();

// ---------------------------------------------------------------------------
// partition_util
// ---------------------------------------------------------------------------

TEST(PartitionUtil, EqualSizesExactTiling) {
  const auto sizes = sort::equal_partition_sizes(10, 3);
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], 4u);
  EXPECT_EQ(sizes[1], 3u);
  EXPECT_EQ(sizes[2], 3u);
}

TEST(PartitionUtil, EqualSizesZeroTotal) {
  const auto sizes = sort::equal_partition_sizes(0, 4);
  for (const auto s : sizes) EXPECT_EQ(s, 0u);
}

TEST(PartitionUtil, EqualSizesMorePartsThanItems) {
  const auto sizes = sort::equal_partition_sizes(2, 5);
  EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), std::size_t{0}), 2u);
}

TEST(PartitionUtil, EqualSizesRejectsBadParts) {
  EXPECT_THROW(sort::equal_partition_sizes(10, 0), std::invalid_argument);
}

TEST(PartitionUtil, OffsetsFromSizes) {
  const auto offsets = sort::offsets_from_sizes({2, 0, 3});
  ASSERT_EQ(offsets.size(), 4u);
  EXPECT_EQ(offsets[0], 0u);
  EXPECT_EQ(offsets[1], 2u);
  EXPECT_EQ(offsets[2], 2u);
  EXPECT_EQ(offsets[3], 5u);
}

TEST(PartitionUtil, OwnerOfGlobalIndexSkipsEmptyChunks) {
  const std::vector<std::size_t> offsets{0, 2, 2, 5};
  EXPECT_EQ(sort::owner_of_global_index(0, offsets), 0);
  EXPECT_EQ(sort::owner_of_global_index(1, offsets), 0);
  EXPECT_EQ(sort::owner_of_global_index(2, offsets), 2);
  EXPECT_EQ(sort::owner_of_global_index(4, offsets), 2);
  EXPECT_THROW(sort::owner_of_global_index(5, offsets), std::out_of_range);
}

// ---------------------------------------------------------------------------
// sample_sort — parameterized over rank count
// ---------------------------------------------------------------------------

class SampleSort : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(RankSweep, SampleSort,
                         ::testing::Values(1, 2, 3, 4, 7, 8));

// Gathers all ranks' chunks in rank order into one vector.
template <typename T>
std::vector<T> concatenate(const std::vector<std::vector<T>>& chunks) {
  std::vector<T> flat;
  for (const auto& c : chunks) flat.insert(flat.end(), c.begin(), c.end());
  return flat;
}

TEST_P(SampleSort, SortsUniformRandomData) {
  const int p = GetParam();
  constexpr int kPerRank = 500;
  std::vector<std::vector<std::int64_t>> outputs(static_cast<std::size_t>(p));
  mp::run_ranks(p, kZero, [&](mp::Comm& comm) {
    util::Rng rng(1000 + static_cast<std::uint64_t>(comm.rank()));
    std::vector<std::int64_t> local(kPerRank);
    for (auto& v : local) v = rng.next_int(-1000000, 1000000);
    outputs[static_cast<std::size_t>(comm.rank())] =
        sort::sample_sort(comm, std::move(local), std::less<>{});
  });
  // Locally sorted, globally ordered across ranks, and a permutation of the
  // input (checked via multiset equality by re-generating inputs).
  std::vector<std::int64_t> expected;
  for (int r = 0; r < p; ++r) {
    util::Rng rng(1000 + static_cast<std::uint64_t>(r));
    for (int i = 0; i < kPerRank; ++i) expected.push_back(rng.next_int(-1000000, 1000000));
  }
  std::sort(expected.begin(), expected.end());
  const std::vector<std::int64_t> got = concatenate(outputs);
  ASSERT_EQ(got.size(), expected.size());
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
  EXPECT_EQ(got, expected);
}

TEST_P(SampleSort, HandlesDuplicateHeavyData) {
  const int p = GetParam();
  std::vector<std::vector<int>> outputs(static_cast<std::size_t>(p));
  mp::run_ranks(p, kZero, [&](mp::Comm& comm) {
    util::Rng rng(7 + static_cast<std::uint64_t>(comm.rank()));
    std::vector<int> local(300);
    for (auto& v : local) v = static_cast<int>(rng.next_below(3));  // only 3 keys
    outputs[static_cast<std::size_t>(comm.rank())] =
        sort::sample_sort(comm, std::move(local), std::less<>{});
  });
  const auto flat = concatenate(outputs);
  EXPECT_EQ(flat.size(), static_cast<std::size_t>(300 * p));
  EXPECT_TRUE(std::is_sorted(flat.begin(), flat.end()));
}

TEST_P(SampleSort, HandlesEmptyAndSkewedInputs) {
  const int p = GetParam();
  std::vector<std::vector<int>> outputs(static_cast<std::size_t>(p));
  mp::run_ranks(p, kZero, [&](mp::Comm& comm) {
    // Only rank 0 has data.
    std::vector<int> local;
    if (comm.rank() == 0) {
      local.resize(100);
      for (int i = 0; i < 100; ++i) local[static_cast<std::size_t>(i)] = 99 - i;
    }
    outputs[static_cast<std::size_t>(comm.rank())] =
        sort::sample_sort(comm, std::move(local), std::less<>{});
  });
  const auto flat = concatenate(outputs);
  ASSERT_EQ(flat.size(), 100u);
  EXPECT_TRUE(std::is_sorted(flat.begin(), flat.end()));
  EXPECT_EQ(flat.front(), 0);
  EXPECT_EQ(flat.back(), 99);
}

TEST_P(SampleSort, AttributeEntriesTotalOrderWithTies) {
  const int p = GetParam();
  std::vector<std::vector<data::ContinuousEntry>> outputs(
      static_cast<std::size_t>(p));
  mp::run_ranks(p, kZero, [&](mp::Comm& comm) {
    util::Rng rng(55 + static_cast<std::uint64_t>(comm.rank()));
    std::vector<data::ContinuousEntry> local(200);
    for (std::size_t i = 0; i < local.size(); ++i) {
      local[i].value = static_cast<double>(rng.next_below(5));  // heavy ties
      local[i].rid = comm.rank() * 200 + static_cast<std::int64_t>(i);
      local[i].cls = 0;
    }
    outputs[static_cast<std::size_t>(comm.rank())] =
        sort::sample_sort(comm, std::move(local), data::ContinuousEntryLess{});
  });
  const auto flat = concatenate(outputs);
  EXPECT_TRUE(std::is_sorted(flat.begin(), flat.end(), data::ContinuousEntryLess{}));
  // All rids distinct -> strict total order -> exactly one valid arrangement.
  for (std::size_t i = 1; i < flat.size(); ++i) {
    EXPECT_TRUE(data::ContinuousEntryLess{}(flat[i - 1], flat[i]));
  }
}

// ---------------------------------------------------------------------------
// rebalance
// ---------------------------------------------------------------------------

class Rebalance : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(RankSweep, Rebalance, ::testing::Values(1, 2, 3, 5, 8));

TEST_P(Rebalance, RestoresEqualBlocksPreservingOrder) {
  const int p = GetParam();
  std::vector<std::vector<int>> outputs(static_cast<std::size_t>(p));
  mp::run_ranks(p, kZero, [&](mp::Comm& comm) {
    // Rank r holds a run of (r+1)*10 consecutive values; runs are globally
    // ordered by rank.
    int start = 0;
    for (int r = 0; r < comm.rank(); ++r) start += (r + 1) * 10;
    std::vector<int> local(static_cast<std::size_t>((comm.rank() + 1) * 10));
    std::iota(local.begin(), local.end(), start);
    outputs[static_cast<std::size_t>(comm.rank())] =
        sort::rebalance_equal(comm, std::move(local));
  });
  std::size_t total = 0;
  for (int r = 0; r < p; ++r) total += static_cast<std::size_t>((r + 1) * 10);
  const auto sizes = sort::equal_partition_sizes(total, p);
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(outputs[static_cast<std::size_t>(r)].size(), sizes[static_cast<std::size_t>(r)]);
  }
  const auto flat = concatenate(outputs);
  ASSERT_EQ(flat.size(), total);
  for (std::size_t i = 0; i < flat.size(); ++i) {
    EXPECT_EQ(flat[i], static_cast<int>(i));
  }
}

TEST_P(Rebalance, CustomTargets) {
  const int p = GetParam();
  if (p < 2) GTEST_SKIP() << "needs at least 2 ranks";
  std::vector<std::vector<int>> outputs(static_cast<std::size_t>(p));
  // Everything should end up on the last rank.
  std::vector<std::size_t> targets(static_cast<std::size_t>(p), 0);
  targets.back() = static_cast<std::size_t>(p) * 5;
  mp::run_ranks(p, kZero, [&](mp::Comm& comm) {
    std::vector<int> local(5, comm.rank());
    outputs[static_cast<std::size_t>(comm.rank())] =
        sort::rebalance(comm, std::move(local), targets);
  });
  for (int r = 0; r + 1 < p; ++r) {
    EXPECT_TRUE(outputs[static_cast<std::size_t>(r)].empty());
  }
  EXPECT_EQ(outputs.back().size(), static_cast<std::size_t>(p) * 5);
  EXPECT_TRUE(std::is_sorted(outputs.back().begin(), outputs.back().end()));
}

TEST(SampleSortIntegration, SortThenRebalanceGivesBlockDistribution) {
  constexpr int kRanks = 4;
  std::vector<std::vector<double>> outputs(kRanks);
  mp::run_ranks(kRanks, kZero, [&](mp::Comm& comm) {
    util::Rng rng(99 + static_cast<std::uint64_t>(comm.rank()));
    std::vector<double> local(257);  // deliberately not divisible
    for (auto& v : local) v = rng.next_double();
    auto sorted = sort::sample_sort(comm, std::move(local), std::less<>{});
    outputs[static_cast<std::size_t>(comm.rank())] =
        sort::rebalance_equal(comm, std::move(sorted));
  });
  const auto sizes = sort::equal_partition_sizes(257 * kRanks, kRanks);
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_EQ(outputs[static_cast<std::size_t>(r)].size(), sizes[static_cast<std::size_t>(r)]);
  }
  const auto flat = concatenate(outputs);
  EXPECT_TRUE(std::is_sorted(flat.begin(), flat.end()));
}

}  // namespace
}  // namespace scalparc
