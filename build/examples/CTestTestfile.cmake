# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "--records" "400" "--ranks" "2")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_census_functions "/root/repo/build/examples/census_functions" "--records" "600" "--ranks" "2")
set_tests_properties(example_census_functions PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cluster_scaling "/root/repo/build/examples/cluster_scaling" "--records" "3000" "--procs" "1,2,4")
set_tests_properties(example_cluster_scaling PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_csv_workflow "/root/repo/build/examples/csv_workflow")
set_tests_properties(example_csv_workflow PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_out_of_core "/root/repo/build/examples/out_of_core" "--records" "2000" "--ranks" "2")
set_tests_properties(example_out_of_core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
