// Deterministic, seedable pseudo-random number generation.
//
// All synthetic data in this repository flows through Xoshiro256** seeded via
// SplitMix64, so every experiment is exactly reproducible from a 64-bit seed
// regardless of platform or standard-library implementation (std::mt19937
// distributions are not portable across implementations).
#pragma once

#include <cstdint>
#include <limits>

namespace scalparc::util {

// SplitMix64: used to expand a single seed into generator state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// Xoshiro256** by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x5CA1AB1EDEADBEEFULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  constexpr std::uint64_t operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). Unbiased via rejection (Lemire-style threshold
  // omitted for simplicity; modulo bias is < 2^-53 for the bounds we use,
  // but we still reject to keep properties exact).
  constexpr std::uint64_t next_below(std::uint64_t bound) {
    if (bound == 0) return 0;
    const std::uint64_t limit = max() - max() % bound;
    std::uint64_t value = (*this)();
    while (value >= limit) value = (*this)();
    return value % bound;
  }

  // Uniform integer in [lo, hi] inclusive.
  constexpr std::int64_t next_int(std::int64_t lo, std::int64_t hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  // Uniform double in [0, 1).
  constexpr double next_double() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  constexpr double next_double(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  // Bernoulli trial.
  constexpr bool next_bool(double probability_true) {
    return next_double() < probability_true;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace scalparc::util
