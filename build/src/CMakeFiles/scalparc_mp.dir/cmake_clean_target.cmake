file(REMOVE_RECURSE
  "libscalparc_mp.a"
)
