// Per-rank memory accounting.
//
// The paper's Figure 3(b) plots bytes of memory required per processor as a
// function of the processor count. Rather than inferring this from RSS (which
// is meaningless for threads sharing one address space), every major data
// structure in the library — attribute lists, the distributed node table,
// count matrices and all communication buffers — reports its allocations to
// the MemoryMeter of the rank that owns it. The meter tracks current and
// high-water usage, per category and total.
//
// A MemoryMeter instance is confined to one rank's thread; no locking.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace scalparc::util {

enum class MemCategory : int {
  kAttributeLists = 0,
  kNodeTable = 1,
  kCommBuffers = 2,
  kCountMatrices = 3,
  kTreeAndMisc = 4,
};
inline constexpr int kNumMemCategories = 5;

std::string_view mem_category_name(MemCategory category);

class MemoryMeter {
 public:
  void allocate(MemCategory category, std::size_t bytes);
  void release(MemCategory category, std::size_t bytes);

  std::size_t current_bytes() const { return current_total_; }
  std::size_t peak_bytes() const { return peak_total_; }
  std::size_t current_bytes(MemCategory category) const {
    return current_[static_cast<int>(category)];
  }
  std::size_t peak_bytes(MemCategory category) const {
    return peak_[static_cast<int>(category)];
  }

  void reset();

  // Merges another meter's peak into this one (used when aggregating the
  // per-rank maximum across a run). Peaks combine as max; currents add.
  void merge_peaks(const MemoryMeter& other);

 private:
  std::array<std::size_t, kNumMemCategories> current_{};
  std::array<std::size_t, kNumMemCategories> peak_{};
  std::size_t current_total_ = 0;
  std::size_t peak_total_ = 0;
};

// RAII registration of a fixed-size allocation with a meter. The meter must
// outlive the guard. A null meter disables accounting (serial baselines).
class ScopedAllocation {
 public:
  ScopedAllocation() = default;
  ScopedAllocation(MemoryMeter* meter, MemCategory category, std::size_t bytes)
      : meter_(meter), category_(category), bytes_(bytes) {
    if (meter_ != nullptr) meter_->allocate(category_, bytes_);
  }
  ScopedAllocation(const ScopedAllocation&) = delete;
  ScopedAllocation& operator=(const ScopedAllocation&) = delete;
  ScopedAllocation(ScopedAllocation&& other) noexcept { swap(other); }
  ScopedAllocation& operator=(ScopedAllocation&& other) noexcept {
    if (this != &other) {
      release();
      swap(other);
    }
    return *this;
  }
  ~ScopedAllocation() { release(); }

  void release() {
    if (meter_ != nullptr) meter_->release(category_, bytes_);
    meter_ = nullptr;
    bytes_ = 0;
  }

  // Adjusts the recorded size (e.g. a buffer grew).
  void resize(std::size_t new_bytes) {
    if (meter_ == nullptr) {
      bytes_ = new_bytes;
      return;
    }
    if (new_bytes > bytes_) {
      meter_->allocate(category_, new_bytes - bytes_);
    } else {
      meter_->release(category_, bytes_ - new_bytes);
    }
    bytes_ = new_bytes;
  }

  std::size_t bytes() const { return bytes_; }

 private:
  void swap(ScopedAllocation& other) {
    std::swap(meter_, other.meter_);
    std::swap(category_, other.category_);
    std::swap(bytes_, other.bytes_);
  }

  MemoryMeter* meter_ = nullptr;
  MemCategory category_ = MemCategory::kTreeAndMisc;
  std::size_t bytes_ = 0;
};

}  // namespace scalparc::util
