// Integration and property tests for distributed tree induction: processor-
// count invariance (the central correctness claim), agreement with the
// serial SPRINT oracle, option handling, degenerate inputs, and the tree
// invariants that per-level splitting must preserve.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <sstream>

#include "core/predict.hpp"
#include "core/scalparc.hpp"
#include "core/tree_io.hpp"
#include "data/synthetic.hpp"
#include "sprint/parallel_sprint.hpp"
#include "sprint/serial_cart.hpp"
#include "sprint/serial_sprint.hpp"

namespace scalparc {
namespace {

using core::DecisionTree;
using core::InductionControls;
using core::ScalParC;
using data::GeneratorConfig;
using data::LabelFunction;
using data::QuestGenerator;
using data::Schema;

const mp::CostModel kZero = mp::CostModel::zero();

// Walks the tree checking structural invariants: children partition the
// parent's records and class histograms exactly; depths increase by one;
// class counts are non-negative and sum to num_records.
void check_tree_invariants(const DecisionTree& tree) {
  for (int id = 0; id < tree.num_nodes(); ++id) {
    const core::TreeNode& node = tree.node(id);
    const std::int64_t histogram_total = std::accumulate(
        node.class_counts.begin(), node.class_counts.end(), std::int64_t{0});
    EXPECT_EQ(histogram_total, node.num_records) << "node " << id;
    for (const std::int64_t count : node.class_counts) {
      EXPECT_GE(count, 0) << "node " << id;
    }
    if (node.is_leaf) {
      EXPECT_TRUE(node.children.empty()) << "node " << id;
      continue;
    }
    EXPECT_EQ(static_cast<int>(node.children.size()), node.split.num_children)
        << "node " << id;
    EXPECT_GE(node.split.num_children, 2) << "node " << id;
    std::int64_t child_records = 0;
    std::vector<std::int64_t> child_histogram(node.class_counts.size(), 0);
    for (const int child_id : node.children) {
      const core::TreeNode& child = tree.node(child_id);
      EXPECT_EQ(child.depth, node.depth + 1) << "node " << id;
      EXPECT_GT(child.num_records, 0) << "child of node " << id;
      child_records += child.num_records;
      for (std::size_t j = 0; j < child_histogram.size(); ++j) {
        child_histogram[j] += child.class_counts[j];
      }
    }
    EXPECT_EQ(child_records, node.num_records) << "node " << id;
    EXPECT_EQ(child_histogram, node.class_counts) << "node " << id;
  }
}

// ---------------------------------------------------------------------------
// A hand-checkable case.
// ---------------------------------------------------------------------------

TEST(Induction, HandCheckableContinuousSplit) {
  // One attribute that perfectly separates the classes at x < 10.
  Schema schema({Schema::continuous("x")}, 2);
  data::Dataset d(schema);
  for (int i = 0; i < 6; ++i) {
    const double x[] = {static_cast<double>(i)};
    d.append(x, {}, 0);
  }
  for (int i = 0; i < 4; ++i) {
    const double x[] = {10.0 + i};
    d.append(x, {}, 1);
  }
  const auto report = ScalParC::fit(d, 1);
  EXPECT_EQ(report.tree.num_nodes(), 3);
  const core::TreeNode& root = report.tree.node(0);
  ASSERT_FALSE(root.is_leaf);
  EXPECT_EQ(root.split.attribute, 0);
  EXPECT_DOUBLE_EQ(root.split.threshold, 10.0);
  EXPECT_EQ(report.tree.node(root.children[0]).majority_class, 0);
  EXPECT_EQ(report.tree.node(root.children[1]).majority_class, 1);
  EXPECT_DOUBLE_EQ(report.tree.accuracy(d), 1.0);
}

TEST(Induction, HandCheckableCategoricalMultiWay) {
  Schema schema({Schema::categorical("color", 4)}, 2);
  data::Dataset d(schema);
  // Values 0 and 2 are class 0; value 3 is class 1; value 1 unused.
  for (const auto& [v, cls] : std::initializer_list<std::pair<int, int>>{
           {0, 0}, {0, 0}, {2, 0}, {2, 0}, {3, 1}, {3, 1}}) {
    const std::int32_t code[] = {v};
    d.append({}, code, cls);
  }
  const auto report = ScalParC::fit(d, 1);
  const core::TreeNode& root = report.tree.node(0);
  ASSERT_FALSE(root.is_leaf);
  EXPECT_EQ(root.split.num_children, 3);  // one child per present value
  EXPECT_EQ(root.split.value_to_child,
            (std::vector<std::int32_t>{0, -1, 1, 2}));
  EXPECT_DOUBLE_EQ(report.tree.accuracy(d), 1.0);
  check_tree_invariants(report.tree);
}

// ---------------------------------------------------------------------------
// Processor-count invariance — the core claim.
// ---------------------------------------------------------------------------

struct PInvarianceCase {
  LabelFunction function;
  int num_attributes;
  double noise;
  const char* name;
};

class PInvariance : public ::testing::TestWithParam<PInvarianceCase> {};

INSTANTIATE_TEST_SUITE_P(
    Functions, PInvariance,
    ::testing::Values(PInvarianceCase{LabelFunction::kF1, 7, 0.0, "F1"},
                      PInvarianceCase{LabelFunction::kF2, 7, 0.0, "F2"},
                      PInvarianceCase{LabelFunction::kF3, 7, 0.0, "F3"},
                      PInvarianceCase{LabelFunction::kF5, 9, 0.0, "F5"},
                      PInvarianceCase{LabelFunction::kF6, 9, 0.05, "F6noise"},
                      PInvarianceCase{LabelFunction::kF7, 9, 0.05, "F7noise"}),
    [](const ::testing::TestParamInfo<PInvarianceCase>& info) {
      return info.param.name;
    });

TEST_P(PInvariance, TreeIdenticalForAllProcessorCounts) {
  const PInvarianceCase& params = GetParam();
  QuestGenerator generator(GeneratorConfig{.seed = 31,
                                           .function = params.function,
                                           .label_noise = params.noise,
                                           .num_attributes = params.num_attributes});
  const data::Dataset training = generator.generate(0, 600);
  InductionControls controls;
  controls.options.max_depth = 12;

  const DecisionTree reference =
      ScalParC::fit(training, 1, controls, kZero).tree;
  check_tree_invariants(reference);
  for (const int p : {2, 3, 4, 7, 8}) {
    const DecisionTree tree = ScalParC::fit(training, p, controls, kZero).tree;
    EXPECT_TRUE(reference.same_structure(tree)) << "p=" << p;
  }
}

TEST_P(PInvariance, MatchesSerialSprintOracle) {
  const PInvarianceCase& params = GetParam();
  QuestGenerator generator(GeneratorConfig{.seed = 77,
                                           .function = params.function,
                                           .label_noise = params.noise,
                                           .num_attributes = params.num_attributes});
  const data::Dataset training = generator.generate(0, 400);
  InductionControls controls;
  controls.options.max_depth = 12;
  const DecisionTree oracle =
      sprint::fit_serial_sprint(training, controls.options);
  for (const int p : {1, 3, 4}) {
    const DecisionTree tree = ScalParC::fit(training, p, controls, kZero).tree;
    EXPECT_TRUE(oracle.same_structure(tree)) << "p=" << p;
  }
}

TEST_P(PInvariance, ReplicatedHashStrategyGivesSameTree) {
  const PInvarianceCase& params = GetParam();
  QuestGenerator generator(GeneratorConfig{.seed = 99,
                                           .function = params.function,
                                           .label_noise = params.noise,
                                           .num_attributes = params.num_attributes});
  const data::Dataset training = generator.generate(0, 300);
  InductionControls controls;
  controls.options.max_depth = 10;
  const DecisionTree scalparc = ScalParC::fit(training, 4, controls, kZero).tree;
  const DecisionTree sprint_tree =
      sprint::fit_parallel_sprint(training, 4, controls, kZero).tree;
  EXPECT_TRUE(scalparc.same_structure(sprint_tree));
}

TEST(Induction, BinarySubsetModeInvariantAcrossP) {
  QuestGenerator generator(GeneratorConfig{.seed = 13,
                                           .function = LabelFunction::kF3,
                                           .num_attributes = 7});
  const data::Dataset training = generator.generate(0, 500);
  InductionControls controls;
  controls.options.max_depth = 10;
  controls.options.categorical_split = core::CategoricalSplit::kBinarySubset;
  const DecisionTree reference = ScalParC::fit(training, 1, controls, kZero).tree;
  check_tree_invariants(reference);
  for (const int p : {2, 5, 8}) {
    const DecisionTree tree = ScalParC::fit(training, p, controls, kZero).tree;
    EXPECT_TRUE(reference.same_structure(tree)) << "p=" << p;
  }
  // Every categorical split in subset mode must be binary.
  for (int id = 0; id < reference.num_nodes(); ++id) {
    const core::TreeNode& node = reference.node(id);
    if (!node.is_leaf && node.split.kind == data::AttributeKind::kCategorical) {
      EXPECT_EQ(node.split.num_children, 2);
    }
  }
}

TEST(Induction, EntropyCriterionInvariantAcrossPAndMatchesOracle) {
  QuestGenerator generator(GeneratorConfig{.seed = 23,
                                           .function = LabelFunction::kF2,
                                           .num_attributes = 7});
  const data::Dataset training = generator.generate(0, 400);
  InductionControls controls;
  controls.options.max_depth = 10;
  controls.options.criterion = core::SplitCriterion::kEntropy;
  const DecisionTree oracle =
      sprint::fit_serial_sprint(training, controls.options);
  for (const int p : {1, 4, 7}) {
    const DecisionTree tree = ScalParC::fit(training, p, controls, kZero).tree;
    EXPECT_TRUE(oracle.same_structure(tree)) << "p=" << p;
  }
  EXPECT_DOUBLE_EQ(oracle.accuracy(training), 1.0);
}

TEST(Induction, EntropyAndGiniCanDisagreeButBothLearn) {
  QuestGenerator generator(GeneratorConfig{.seed = 29,
                                           .function = LabelFunction::kF6,
                                           .num_attributes = 9});
  const data::Dataset training = generator.generate(0, 600);
  InductionControls gini;
  InductionControls entropy;
  entropy.options.criterion = core::SplitCriterion::kEntropy;
  const DecisionTree a = ScalParC::fit(training, 2, gini).tree;
  const DecisionTree b = ScalParC::fit(training, 2, entropy).tree;
  EXPECT_DOUBLE_EQ(a.accuracy(training), 1.0);
  EXPECT_DOUBLE_EQ(b.accuracy(training), 1.0);
}

TEST(Induction, CategoricalReductionModesAgree) {
  QuestGenerator generator(GeneratorConfig{.seed = 19,
                                           .function = LabelFunction::kF3,
                                           .num_attributes = 9});
  const data::Dataset training = generator.generate(0, 400);
  InductionControls coordinator;
  coordinator.options.categorical_reduction = core::CategoricalReduction::kCoordinator;
  InductionControls allranks;
  allranks.options.categorical_reduction = core::CategoricalReduction::kAllRanks;
  for (const int p : {1, 3, 6}) {
    const DecisionTree a = ScalParC::fit(training, p, coordinator, kZero).tree;
    const DecisionTree b = ScalParC::fit(training, p, allranks, kZero).tree;
    EXPECT_TRUE(a.same_structure(b)) << "p=" << p;
  }
}

// ---------------------------------------------------------------------------
// Learning quality.
// ---------------------------------------------------------------------------

TEST(Induction, NoiseFreeTrainingIsMemorizedPerfectly) {
  QuestGenerator generator(GeneratorConfig{.seed = 5, .function = LabelFunction::kF2});
  const data::Dataset training = generator.generate(0, 800);
  const auto report = ScalParC::fit(training, 3);
  EXPECT_DOUBLE_EQ(report.tree.accuracy(training), 1.0);
  check_tree_invariants(report.tree);
}

TEST(Induction, HoldoutAccuracyIsHighOnLearnableFunctions) {
  for (const LabelFunction f : {LabelFunction::kF1, LabelFunction::kF2}) {
    QuestGenerator generator(GeneratorConfig{.seed = 8, .function = f});
    const auto report = ScalParC::fit_generated(generator, 4000, 4);
    const double acc =
        core::holdout_accuracy(report.tree, generator, 1000000, 2000);
    EXPECT_GT(acc, 0.95) << "function " << static_cast<int>(f);
  }
}

TEST(Induction, FitGeneratedMatchesFitOnMaterializedData) {
  QuestGenerator generator(GeneratorConfig{.seed = 42, .function = LabelFunction::kF2});
  const data::Dataset training = generator.generate(0, 500);
  const DecisionTree a = ScalParC::fit(training, 3).tree;
  const DecisionTree b = ScalParC::fit_generated(generator, 500, 3).tree;
  EXPECT_TRUE(a.same_structure(b));
}

TEST(Induction, CartBaselineAgreesOnAccuracy) {
  QuestGenerator generator(GeneratorConfig{.seed = 3, .function = LabelFunction::kF2});
  const data::Dataset training = generator.generate(0, 400);
  sprint::CartStats cart_stats;
  const DecisionTree cart =
      sprint::fit_serial_cart(training, core::InductionOptions{}, &cart_stats);
  const DecisionTree scalparc = ScalParC::fit(training, 2).tree;
  EXPECT_DOUBLE_EQ(cart.accuracy(training), 1.0);
  EXPECT_DOUBLE_EQ(scalparc.accuracy(training), 1.0);
  EXPECT_GT(cart_stats.sorted_elements, training.num_records());
}

// ---------------------------------------------------------------------------
// Degenerate inputs and options.
// ---------------------------------------------------------------------------

TEST(Induction, EmptyTrainingSetThrows) {
  Schema schema({Schema::continuous("x")}, 2);
  const data::Dataset empty(schema);
  EXPECT_THROW((void)ScalParC::fit(empty, 2), std::invalid_argument);
}

TEST(Induction, SingleRecordIsALeaf) {
  Schema schema({Schema::continuous("x")}, 2);
  data::Dataset d(schema);
  const double x[] = {1.0};
  d.append(x, {}, 1);
  const auto report = ScalParC::fit(d, 2);
  EXPECT_EQ(report.tree.num_nodes(), 1);
  EXPECT_TRUE(report.tree.node(0).is_leaf);
  EXPECT_EQ(report.tree.node(0).majority_class, 1);
}

TEST(Induction, PureDataIsASingleLeaf) {
  QuestGenerator generator(GeneratorConfig{.seed = 1, .function = LabelFunction::kF1});
  data::Dataset d(generator.schema());
  // Copy records but force one label.
  const data::Dataset raw = generator.generate(0, 50);
  for (std::size_t row = 0; row < raw.num_records(); ++row) {
    std::vector<double> cont;
    std::vector<std::int32_t> cat;
    for (int a = 0; a < raw.schema().num_attributes(); ++a) {
      if (raw.schema().attribute(a).kind == data::AttributeKind::kContinuous) {
        cont.push_back(raw.continuous_value(a, row));
      } else {
        cat.push_back(raw.categorical_value(a, row));
      }
    }
    d.append(cont, cat, 1);
  }
  const auto report = ScalParC::fit(d, 3);
  EXPECT_EQ(report.tree.num_nodes(), 1);
  EXPECT_TRUE(report.tree.node(0).is_leaf);
}

TEST(Induction, IdenticalAttributeValuesWithMixedLabelsIsALeaf) {
  Schema schema({Schema::continuous("x"), Schema::categorical("c", 3)}, 2);
  data::Dataset d(schema);
  for (int i = 0; i < 10; ++i) {
    const double x[] = {7.5};
    const std::int32_t v[] = {1};
    d.append(x, v, i % 2);
  }
  const auto report = ScalParC::fit(d, 2);
  EXPECT_EQ(report.tree.num_nodes(), 1);
  EXPECT_TRUE(report.tree.node(0).is_leaf);
  EXPECT_EQ(report.tree.node(0).majority_class, 0);  // tie -> smallest class
}

TEST(Induction, MaxDepthZeroForcesRootLeaf) {
  QuestGenerator generator(GeneratorConfig{.seed = 2});
  const data::Dataset training = generator.generate(0, 100);
  InductionControls controls;
  controls.options.max_depth = 0;
  const auto report = ScalParC::fit(training, 2, controls);
  EXPECT_EQ(report.tree.num_nodes(), 1);
}

TEST(Induction, MaxDepthBindsExactly) {
  QuestGenerator generator(GeneratorConfig{.seed = 2, .function = LabelFunction::kF2});
  const data::Dataset training = generator.generate(0, 500);
  InductionControls controls;
  controls.options.max_depth = 3;
  const auto report = ScalParC::fit(training, 3, controls);
  EXPECT_LE(report.tree.depth(), 3);
  check_tree_invariants(report.tree);
}

TEST(Induction, MinSplitRecordsStopsSmallNodes) {
  QuestGenerator generator(GeneratorConfig{.seed = 2, .function = LabelFunction::kF2});
  const data::Dataset training = generator.generate(0, 500);
  InductionControls controls;
  controls.options.min_split_records = 100;
  const auto report = ScalParC::fit(training, 2, controls);
  for (int id = 0; id < report.tree.num_nodes(); ++id) {
    const core::TreeNode& node = report.tree.node(id);
    if (!node.is_leaf) {
      EXPECT_GE(node.num_records, 100);
    }
  }
}

TEST(Induction, BadOptionsThrow) {
  QuestGenerator generator(GeneratorConfig{.seed = 2});
  const data::Dataset training = generator.generate(0, 10);
  InductionControls controls;
  controls.options.min_split_records = 1;
  EXPECT_THROW((void)ScalParC::fit(training, 1, controls), std::invalid_argument);
  controls = {};
  controls.options.max_depth = -1;
  EXPECT_THROW((void)ScalParC::fit(training, 1, controls), std::invalid_argument);
}

TEST(Induction, MoreRanksThanRecords) {
  Schema schema({Schema::continuous("x")}, 2);
  data::Dataset d(schema);
  for (int i = 0; i < 3; ++i) {
    const double x[] = {static_cast<double>(i)};
    d.append(x, {}, i == 0 ? 0 : 1);
  }
  const auto report = ScalParC::fit(d, 6);  // 6 ranks, 3 records
  EXPECT_DOUBLE_EQ(report.tree.accuracy(d), 1.0);
  const DecisionTree serial = ScalParC::fit(d, 1).tree;
  EXPECT_TRUE(serial.same_structure(report.tree));
}

TEST(Induction, SmallUpdateBlockStillCorrect) {
  QuestGenerator generator(GeneratorConfig{.seed = 4, .function = LabelFunction::kF2});
  const data::Dataset training = generator.generate(0, 300);
  InductionControls controls;
  controls.options.node_table_update_block = 7;  // force many rounds
  const DecisionTree blocked = ScalParC::fit(training, 4, controls, kZero).tree;
  const DecisionTree reference = ScalParC::fit(training, 1).tree;
  EXPECT_TRUE(reference.same_structure(blocked));
}

TEST(Induction, MinGiniImprovementPrunesMarginalSplits) {
  QuestGenerator generator(GeneratorConfig{.seed = 6,
                                           .function = LabelFunction::kF2,
                                           .label_noise = 0.1});
  const data::Dataset training = generator.generate(0, 400);
  InductionControls strict;
  strict.options.min_gini_improvement = 0.05;
  const auto lax_report = ScalParC::fit(training, 2);
  const auto strict_report = ScalParC::fit(training, 2, strict);
  EXPECT_LT(strict_report.tree.num_nodes(), lax_report.tree.num_nodes());
}

// ---------------------------------------------------------------------------
// Statistics and scalability properties.
// ---------------------------------------------------------------------------

TEST(Induction, LevelStatsAreCollectedOnDemand) {
  QuestGenerator generator(GeneratorConfig{.seed = 3, .function = LabelFunction::kF2});
  const data::Dataset training = generator.generate(0, 400);
  InductionControls controls;
  controls.collect_level_stats = true;
  const auto report = ScalParC::fit(training, 2, controls);
  EXPECT_GT(report.stats.levels, 0);
  ASSERT_EQ(report.stats.per_level.size(),
            static_cast<std::size_t>(report.stats.levels));
  EXPECT_EQ(report.stats.per_level.front().active_nodes, 1);
  EXPECT_EQ(report.stats.per_level.front().active_records, 400);
  for (const auto& level : report.stats.per_level) {
    EXPECT_GT(level.max_bytes_sent_per_rank, 0u);
  }
}

TEST(Induction, ScalParCUsesLessNodeTableMemoryThanReplicated) {
  QuestGenerator generator(GeneratorConfig{.seed = 10, .function = LabelFunction::kF2});
  const data::Dataset training = generator.generate(0, 1024);
  constexpr int kRanks = 4;
  const auto scalparc = ScalParC::fit(training, kRanks);
  const auto replicated = sprint::fit_parallel_sprint(training, kRanks);
  std::size_t scalparc_table = 0;
  std::size_t replicated_table = 0;
  for (const auto& r : scalparc.run.ranks) {
    scalparc_table = std::max(
        scalparc_table, r.meter.peak_bytes(util::MemCategory::kNodeTable));
  }
  for (const auto& r : replicated.run.ranks) {
    replicated_table = std::max(
        replicated_table, r.meter.peak_bytes(util::MemCategory::kNodeTable));
  }
  // O(N/p) vs O(N): with p=4 the replicated table must be ~4x larger.
  EXPECT_LT(scalparc_table * 2, replicated_table);
}

TEST(Induction, ReplicatedStrategySendsMoreBytesPerRank) {
  QuestGenerator generator(GeneratorConfig{.seed = 10, .function = LabelFunction::kF2});
  const data::Dataset training = generator.generate(0, 2048);
  constexpr int kRanks = 8;
  const auto scalparc = ScalParC::fit(training, kRanks);
  const auto replicated = sprint::fit_parallel_sprint(training, kRanks);
  EXPECT_LT(scalparc.run.max_bytes_sent_per_rank() * 2,
            replicated.run.max_bytes_sent_per_rank() * 3);
}

TEST(Induction, MismatchedRankArgumentsAreRejected) {
  QuestGenerator generator(GeneratorConfig{.seed = 2});
  EXPECT_THROW(
      mp::run_ranks(3, kZero,
                    [&](mp::Comm& comm) {
                      const data::Dataset block = generator.generate(
                          static_cast<std::uint64_t>(comm.rank()) * 10, 10);
                      // Rank 2 disagrees on the global total.
                      const std::uint64_t total = comm.rank() == 2 ? 31 : 30;
                      (void)core::induce_tree_distributed(
                          comm, block, comm.rank() * 10, total, {});
                    }),
      std::invalid_argument);
}

TEST(Induction, MismatchedOptionsAreRejected) {
  QuestGenerator generator(GeneratorConfig{.seed = 2});
  EXPECT_THROW(
      mp::run_ranks(2, kZero,
                    [&](mp::Comm& comm) {
                      const data::Dataset block = generator.generate(
                          static_cast<std::uint64_t>(comm.rank()) * 10, 10);
                      core::InductionControls controls;
                      controls.options.max_depth = comm.rank() == 0 ? 8 : 9;
                      (void)core::induce_tree_distributed(
                          comm, block, comm.rank() * 10, 20, controls);
                    }),
      std::invalid_argument);
}

TEST(Induction, PhaseTimingsAccountedUnderRealCostModel) {
  QuestGenerator generator(GeneratorConfig{.seed = 3, .function = LabelFunction::kF2});
  const auto report = core::ScalParC::fit_generated(
      generator, 2000, 4, core::InductionControls{}, mp::CostModel::cray_t3d());
  EXPECT_GT(report.stats.findsplit_seconds, 0.0);
  EXPECT_GT(report.stats.performsplit_seconds, 0.0);
  // presort + findsplit + performsplit should cover (almost) the whole fit.
  const double accounted = report.stats.presort_seconds +
                           report.stats.findsplit_seconds +
                           report.stats.performsplit_seconds;
  EXPECT_LE(accounted, report.stats.total_seconds * 1.001);
  EXPECT_GT(accounted, report.stats.total_seconds * 0.9);
}

// ---------------------------------------------------------------------------
// Collective fusion: the fused per-level rounds are a drop-in replacement
// for the per-attribute collectives, differentially tested against them.
// ---------------------------------------------------------------------------

std::string tree_bytes(const DecisionTree& tree) {
  std::ostringstream out;
  core::save_tree(tree, out);
  return out.str();
}

TEST(CollectiveFusion, FusedTreeByteIdenticalToUnfused) {
  // Mixed data: 9 Quest attributes = 6 continuous + 3 categorical.
  GeneratorConfig config;
  config.seed = 11;
  config.function = LabelFunction::kF6;
  config.num_attributes = 9;
  config.label_noise = 0.05;
  const data::Dataset training = QuestGenerator(config).generate(0, 1200);

  for (const auto reduction : {core::CategoricalReduction::kCoordinator,
                               core::CategoricalReduction::kAllRanks}) {
    for (const int p : {1, 2, 3, 4, 8}) {
      InductionControls fused;
      fused.options.categorical_reduction = reduction;
      fused.options.fuse_collectives = true;
      InductionControls unfused = fused;
      unfused.options.fuse_collectives = false;
      const std::string a = tree_bytes(ScalParC::fit(training, p, fused).tree);
      const std::string b =
          tree_bytes(ScalParC::fit(training, p, unfused).tree);
      EXPECT_EQ(a, b) << "p=" << p << " reduction="
                      << static_cast<int>(reduction);
    }
  }
}

TEST(CollectiveFusion, FusedTreeByteIdenticalWithBinarySubsetSplits) {
  GeneratorConfig config;
  config.seed = 4;
  config.function = LabelFunction::kF7;
  config.num_attributes = 9;
  const data::Dataset training = QuestGenerator(config).generate(0, 900);
  InductionControls fused;
  fused.options.categorical_split = core::CategoricalSplit::kBinarySubset;
  InductionControls unfused = fused;
  unfused.options.fuse_collectives = false;
  EXPECT_EQ(tree_bytes(ScalParC::fit(training, 4, fused).tree),
            tree_bytes(ScalParC::fit(training, 4, unfused).tree));
}

// The point of the fusion: per-level collective rounds are O(1) in the
// number of attribute lists, where the unfused path issues O(attributes)
// collectives per level.
TEST(CollectiveFusion, FusedCollectiveCallsConstantInAttributeCount) {
  const auto max_calls_per_level = [](int attributes, bool fuse) {
    GeneratorConfig config;
    config.seed = 7;
    config.function = LabelFunction::kF1;  // depends on age only
    config.num_attributes = attributes;
    InductionControls controls;
    controls.options.fuse_collectives = fuse;
    controls.options.max_depth = 4;
    controls.collect_level_stats = true;
    const auto report =
        ScalParC::fit(QuestGenerator(config).generate(0, 800), 4, controls);
    std::int64_t max_calls = 0;
    for (const core::LevelStats& level : report.stats.per_level) {
      max_calls = std::max(max_calls, level.collective_calls);
    }
    return max_calls;
  };

  // 3 attributes = 3 continuous lists; 9 = 6 continuous + 3 categorical.
  const std::int64_t fused_small = max_calls_per_level(3, true);
  const std::int64_t fused_large = max_calls_per_level(9, true);
  const std::int64_t unfused_small = max_calls_per_level(3, false);
  const std::int64_t unfused_large = max_calls_per_level(9, false);

  // Fused: adding six lists adds at most the categorical round and the
  // winner-mapping broadcast, never one collective per list.
  EXPECT_LE(fused_large, fused_small + 2);
  EXPECT_LE(fused_large, 16);
  // Unfused: each extra continuous list costs two exscans per level.
  EXPECT_GE(unfused_large, unfused_small + 6);
  EXPECT_GT(unfused_large, fused_large);
}

TEST(Induction, PresortTimePrecordedUnderRealCostModel) {
  QuestGenerator generator(GeneratorConfig{.seed = 3, .function = LabelFunction::kF2});
  const auto report = ScalParC::fit_generated(generator, 1000, 4,
                                              InductionControls{},
                                              mp::CostModel::cray_t3d());
  EXPECT_GT(report.stats.presort_seconds, 0.0);
  EXPECT_GT(report.stats.total_seconds, report.stats.presort_seconds);
  EXPECT_GT(report.run.modeled_seconds, 0.0);
}

}  // namespace
}  // namespace scalparc
