#include "core/gini.hpp"

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>

namespace scalparc::core {

double gini_of_counts(std::span<const std::int64_t> class_counts) {
  std::int64_t total = 0;
  for (const std::int64_t c : class_counts) total += c;
  if (total == 0) return 0.0;
  double sum_sq = 0.0;
  for (const std::int64_t c : class_counts) {
    const double f = static_cast<double>(c) / static_cast<double>(total);
    sum_sq += f * f;
  }
  return 1.0 - sum_sq;
}

double entropy_of_counts(std::span<const std::int64_t> class_counts) {
  std::int64_t total = 0;
  for (const std::int64_t c : class_counts) total += c;
  if (total == 0) return 0.0;
  double entropy = 0.0;
  for (const std::int64_t c : class_counts) {
    if (c == 0) continue;
    const double f = static_cast<double>(c) / static_cast<double>(total);
    entropy -= f * std::log2(f);
  }
  return entropy;
}

double impurity_of_counts(std::span<const std::int64_t> class_counts,
                          SplitCriterion criterion) {
  return criterion == SplitCriterion::kGini ? gini_of_counts(class_counts)
                                            : entropy_of_counts(class_counts);
}

double impurity_of_split(const CountMatrix& matrix, SplitCriterion criterion) {
  const std::int64_t n = matrix.total();
  if (n == 0) return 0.0;
  double impurity = 0.0;
  for (int i = 0; i < matrix.rows(); ++i) {
    const std::int64_t ni = matrix.row_total(i);
    if (ni == 0) continue;
    const auto row = matrix.flat().subspan(
        static_cast<std::size_t>(i) * static_cast<std::size_t>(matrix.cols()),
        static_cast<std::size_t>(matrix.cols()));
    impurity += (static_cast<double>(ni) / static_cast<double>(n)) *
                impurity_of_counts(row, criterion);
  }
  return impurity;
}

BinaryImpurityScanner::BinaryImpurityScanner(
    std::span<const std::int64_t> node_totals,
    std::span<const std::int64_t> below_start, SplitCriterion criterion)
    : totals_(node_totals.begin(), node_totals.end()),
      below_(below_start.begin(), below_start.end()),
      criterion_(criterion) {
  if (totals_.size() != below_.size() || totals_.empty()) {
    throw std::invalid_argument("BinaryImpurityScanner: histogram size mismatch");
  }
  for (std::size_t j = 0; j < totals_.size(); ++j) {
    node_total_ += totals_[j];
    below_total_ += below_[j];
    if (below_[j] > totals_[j]) {
      throw std::invalid_argument("BinaryImpurityScanner: below exceeds totals");
    }
  }
}

void BinaryImpurityScanner::advance(std::int32_t cls) {
  ++below_[static_cast<std::size_t>(cls)];
  ++below_total_;
}

double BinaryImpurityScanner::current_impurity() const {
  const std::int64_t above_total = node_total_ - below_total_;
  if (below_total_ == 0 || above_total == 0) {
    return std::numeric_limits<double>::infinity();
  }
  const double n = static_cast<double>(node_total_);
  if (criterion_ == SplitCriterion::kGini) {
    // Exact integer sums of squares, then the shared final expression — the
    // same arithmetic IncrementalImpurityScanner evaluates, so the two
    // scanners agree bitwise.
    std::int64_t below_sq = 0;
    std::int64_t above_sq = 0;
    for (std::size_t j = 0; j < totals_.size(); ++j) {
      const std::int64_t below = below_[j];
      const std::int64_t above = totals_[j] - below;
      below_sq += below * below;
      above_sq += above * above;
    }
    return weighted_gini_from_sumsq(node_total_, below_total_, above_total,
                                    below_sq, above_sq);
  }
  double below_h = 0.0;
  double above_h = 0.0;
  for (std::size_t j = 0; j < totals_.size(); ++j) {
    if (below_[j] > 0) {
      const double fb =
          static_cast<double>(below_[j]) / static_cast<double>(below_total_);
      below_h -= fb * std::log2(fb);
    }
    const std::int64_t above = totals_[j] - below_[j];
    if (above > 0) {
      const double fa =
          static_cast<double>(above) / static_cast<double>(above_total);
      above_h -= fa * std::log2(fa);
    }
  }
  return (static_cast<double>(below_total_) / n) * below_h +
         (static_cast<double>(above_total) / n) * above_h;
}

IncrementalImpurityScanner::IncrementalImpurityScanner(
    std::span<const std::int64_t> node_totals,
    std::span<const std::int64_t> below_start, SplitCriterion criterion)
    : totals_(node_totals.begin(), node_totals.end()),
      below_(below_start.begin(), below_start.end()),
      criterion_(criterion) {
  if (totals_.size() != below_.size() || totals_.empty()) {
    throw std::invalid_argument(
        "IncrementalImpurityScanner: histogram size mismatch");
  }
  for (std::size_t j = 0; j < totals_.size(); ++j) {
    node_total_ += totals_[j];
    below_total_ += below_[j];
    if (below_[j] > totals_[j]) {
      throw std::invalid_argument(
          "IncrementalImpurityScanner: below exceeds totals");
    }
    const std::int64_t above = totals_[j] - below_[j];
    below_sq_ += below_[j] * below_[j];
    above_sq_ += above * above;
  }
}

double IncrementalImpurityScanner::current_impurity() const {
  const std::int64_t above_total = node_total_ - below_total_;
  if (below_total_ == 0 || above_total == 0) {
    return std::numeric_limits<double>::infinity();
  }
  if (criterion_ == SplitCriterion::kGini) {
    return weighted_gini_from_sumsq(node_total_, below_total_, above_total,
                                    below_sq_, above_sq_);
  }
  // Entropy: no O(1) sufficient statistic; identical loop to the recompute
  // scanner so the two criteria paths stay bit-compatible.
  const double n = static_cast<double>(node_total_);
  double below_h = 0.0;
  double above_h = 0.0;
  for (std::size_t j = 0; j < totals_.size(); ++j) {
    if (below_[j] > 0) {
      const double fb =
          static_cast<double>(below_[j]) / static_cast<double>(below_total_);
      below_h -= fb * std::log2(fb);
    }
    const std::int64_t above = totals_[j] - below_[j];
    if (above > 0) {
      const double fa =
          static_cast<double>(above) / static_cast<double>(above_total);
      above_h -= fa * std::log2(fa);
    }
  }
  return (static_cast<double>(below_total_) / n) * below_h +
         (static_cast<double>(above_total) / n) * above_h;
}

}  // namespace scalparc::core
