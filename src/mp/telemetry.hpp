// Continuous telemetry on top of the metrics registry.
//
// Everything PR 5 built exports once, at end of run — useless for the
// long-running serve path. This layer answers "what is the system doing
// right now" and "what was it doing just before it misbehaved":
//
//   LiveRegistry        rank threads publish copies of their own snapshot
//                       at natural boundaries (per induction level, per
//                       serve batch rate-limited); a sampler merges the
//                       latest copy per source. Counters are cumulative,
//                       so latest-wins per source is exact modulo lag.
//   TelemetryExporter   background thread samples the live registry on an
//                       interval, computes counter deltas per epoch, and
//                       appends scalparc-timeseries-v1 JSONL records plus
//                       an atomically rewritten Prometheus-style text
//                       exposition snapshot.
//   RollingQuantiles    ring of per-epoch log2 histograms merged over a
//                       window — p50/p95/p99 of the last W epochs, not of
//                       the whole run.
//   SloTracker          rolling p99 vs. a target, maintaining the slo.*
//                       family (breaches, burn seconds, time in violation).
//   flight recorder     bounded per-process ring of structured events
//                       (hot-swaps, stragglers, recovery transitions,
//                       checkpoint I/O errors, SLO breaches) stamped via
//                       record_event and dumped to scalparc-flight-v1
//                       JSONL for postmortems.
//
// Discipline matches the tracing layer: everything is off by default, the
// publish fast path is a single relaxed atomic load when disabled, and
// nothing here ever alters induction results (byte-identical trees).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "mp/metrics.hpp"

namespace scalparc::telemetry {

// ---------------------------------------------------------------------------
// Live registry: latest-per-source snapshot copies, merged on demand.
// ---------------------------------------------------------------------------

// Cheap gate for publishers: a relaxed atomic load. False by default.
bool live_metrics_enabled();
void set_live_metrics_enabled(bool enabled);

// Stores a copy of `snapshot` under `source` (latest wins). Publishers call
// this with their own full cumulative snapshot at natural boundaries; cost
// when disabled is the enabled() check only.
void publish_metrics(std::string_view source, const mp::MetricsSnapshot& snapshot);

// Merge of the latest snapshot from every source (counters sum, gauges max,
// histograms fold) — the same algebra run_ranks applies at end of run.
mp::MetricsSnapshot merged_live_metrics();

// Drops all published snapshots (keeps the enabled flag). For tests and for
// process reuse between runs.
void reset_live_metrics();

// ---------------------------------------------------------------------------
// Rolling-window quantiles.
// ---------------------------------------------------------------------------

// Ring of per-epoch log2 histograms. observe() lands in the current epoch;
// advance_epoch() rotates (evicting the oldest epoch from the window);
// quantile() merges the whole ring first. Thread-safe.
class RollingQuantiles {
 public:
  explicit RollingQuantiles(std::size_t window_epochs);
  ~RollingQuantiles();
  RollingQuantiles(const RollingQuantiles&) = delete;
  RollingQuantiles& operator=(const RollingQuantiles&) = delete;

  void observe(std::uint64_t value);
  void advance_epoch();
  mp::Histogram windowed() const;
  double quantile(double q) const;
  std::size_t window_epochs() const;

 private:
  struct RollingImpl* impl_;
};

// ---------------------------------------------------------------------------
// SLO tracking for serving latency.
// ---------------------------------------------------------------------------

// Rolling-window p99 against a target, updated once per telemetry epoch.
// Maintains the slo.* family:
//   slo.target_p99_us        gauge    configured target
//   slo.p99_us               gauge    latest windowed p99
//   slo.breaches             counter  epochs whose windowed p99 > target
//   slo.burn_seconds         counter  cumulative seconds spent in violation
//   slo.time_in_violation_s  gauge    length of the current violation streak
// Thread-safe: scorers observe latencies concurrently with the exporter
// thread calling epoch_tick.
class SloTracker {
 public:
  SloTracker(double target_p99_us, std::size_t window_epochs = 8);
  ~SloTracker();
  SloTracker(const SloTracker&) = delete;
  SloTracker& operator=(const SloTracker&) = delete;

  void observe_latency_us(std::uint64_t us);
  // Advances the rolling window by one epoch of length `epoch_seconds`,
  // updates the slo.* family, records a flight event on breach entry, and
  // returns true when the windowed p99 currently violates the target.
  bool epoch_tick(double epoch_seconds);
  double windowed_p99_us() const;
  // Copy of the slo.* family for merging into reports / epoch records.
  mp::MetricsSnapshot metrics() const;

 private:
  struct SloImpl* impl_;
};

// ---------------------------------------------------------------------------
// Flight recorder.
// ---------------------------------------------------------------------------

struct FlightEvent {
  double t_s = 0.0;   // util::monotonic_seconds() at record time
  int rank = -1;      // util::thread_rank(); -1 outside rank threads
  std::string kind;   // "model_swap", "straggler", "recovery", ...
  std::string detail; // free-form, human-first
};

// Capacity 0 (the default) disables recording entirely; setting a capacity
// clears the ring. record_event is a relaxed atomic check when disabled and
// a short critical section when enabled — every call site is a rare event
// (swap, straggler, recovery transition, I/O error, SLO breach).
void set_flight_capacity(std::size_t capacity);
std::size_t flight_capacity();
void record_event(std::string_view kind, std::string_view detail);

// Oldest-to-newest copy of the ring, and how many events were evicted.
std::vector<FlightEvent> flight_events();
std::uint64_t flight_dropped();
void clear_flight();

// Writes the ring as scalparc-flight-v1 JSONL: a header object
// {"format","capacity","dropped","events"} followed by one event object per
// line. Returns false (and logs) on I/O failure. No-op when disabled.
bool dump_flight(const std::string& path);

// Registers `path` for dumping on error exits: installs SIGINT/SIGTERM
// handlers that dump then re-raise, and lets callers' catch blocks call
// dump_armed_flight() before exiting. Pass "" to disarm.
void arm_flight_dump(std::string path);
// Dumps to the armed path, if any. Safe to call when nothing is armed.
void dump_armed_flight();

// ---------------------------------------------------------------------------
// Telemetry exporter.
// ---------------------------------------------------------------------------

struct TelemetryOptions {
  // Appends one scalparc-timeseries-v1 JSON object per epoch. Empty = off.
  std::string timeseries_path;
  // Prometheus-style text exposition, atomically rewritten (tmp + rename)
  // each epoch. Empty = off.
  std::string expose_path;
  int interval_ms = 1000;
  // Called on the exporter thread each epoch with the merged snapshot
  // before export — serve injects the slo.* family here.
  std::function<void(mp::MetricsSnapshot&, double epoch_seconds)> epoch_hook;
};

// Background sampler. Construction enables the live registry and starts the
// thread; stop() (idempotent, also run by the destructor) exports one final
// epoch so short runs still produce at least one record.
class TelemetryExporter {
 public:
  explicit TelemetryExporter(TelemetryOptions options);
  ~TelemetryExporter();
  TelemetryExporter(const TelemetryExporter&) = delete;
  TelemetryExporter& operator=(const TelemetryExporter&) = delete;

  void stop();
  int epochs() const;

 private:
  struct ExporterImpl* impl_;
};

// Prometheus-compatible sample name: dots and other non-[a-zA-Z0-9_:]
// characters become underscores, with a "scalparc_" prefix.
std::string exposition_name(std::string_view metric_name);

// Renders the merged snapshot in Prometheus text-exposition format
// (counters/gauges as single samples, histograms as summaries with
// quantile labels). Exposed for trace-report validation and tests.
std::string render_exposition(const mp::MetricsSnapshot& snapshot);

}  // namespace scalparc::telemetry
