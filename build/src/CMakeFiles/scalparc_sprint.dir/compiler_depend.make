# Empty compiler generated dependencies file for scalparc_sprint.
# This may be replaced when dependencies are built.
