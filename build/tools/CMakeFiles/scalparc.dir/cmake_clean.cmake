file(REMOVE_RECURSE
  "CMakeFiles/scalparc.dir/scalparc_main.cpp.o"
  "CMakeFiles/scalparc.dir/scalparc_main.cpp.o.d"
  "scalparc"
  "scalparc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalparc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
