// Robustness and fuzzing: malformed persisted artifacts must throw (never
// crash or silently mis-parse), non-finite inputs are rejected, adversarial
// data shapes train correctly, and the full option matrix preserves
// processor-count invariance.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "core/checkpoint.hpp"
#include "core/scalparc.hpp"
#include "core/tree_io.hpp"
#include "data/csv.hpp"
#include "data/synthetic.hpp"
#include "sprint/serial_sprint.hpp"
#include "util/random.hpp"

namespace scalparc {
namespace {

using data::Schema;

const mp::CostModel kZero = mp::CostModel::zero();

// ---------------------------------------------------------------------------
// Non-finite values
// ---------------------------------------------------------------------------

TEST(NonFinite, ValidateRejectsNaN) {
  data::Dataset d(Schema({Schema::continuous("x")}, 2));
  const double nan_value[] = {std::numeric_limits<double>::quiet_NaN()};
  d.append(nan_value, {}, 0);
  EXPECT_THROW(d.validate(), std::invalid_argument);
}

TEST(NonFinite, ValidateRejectsInfinity) {
  data::Dataset d(Schema({Schema::continuous("x")}, 2));
  const double inf_value[] = {std::numeric_limits<double>::infinity()};
  d.append(inf_value, {}, 0);
  EXPECT_THROW(d.validate(), std::invalid_argument);
}

TEST(NonFinite, CsvReaderRejectsNaN) {
  std::stringstream in("x:cont,class:2\nnan,0\n1.0,1\n");
  EXPECT_THROW((void)data::read_csv(in), std::runtime_error);
}

// ---------------------------------------------------------------------------
// CSV fuzzing: random mutations of a valid file must either parse or throw.
// ---------------------------------------------------------------------------

TEST(CsvFuzz, MutatedFilesNeverCrash) {
  data::GeneratorConfig config;
  config.seed = 99;
  const data::QuestGenerator generator(config);
  std::stringstream original;
  data::write_csv(generator.generate(0, 30), original);
  const std::string base = original.str();

  util::Rng rng(4242);
  int parsed = 0;
  int rejected = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = base;
    const int edits = 1 + static_cast<int>(rng.next_below(4));
    for (int e = 0; e < edits; ++e) {
      const std::size_t pos = rng.next_below(mutated.size());
      switch (rng.next_below(3)) {
        case 0:
          mutated[pos] = static_cast<char>(32 + rng.next_below(95));
          break;
        case 1:
          mutated.erase(pos, 1 + rng.next_below(5));
          break;
        default:
          mutated.insert(pos, 1, static_cast<char>(32 + rng.next_below(95)));
          break;
      }
    }
    std::stringstream in(mutated);
    try {
      const data::Dataset d = data::read_csv(in);
      d.validate();
      ++parsed;
    } catch (const std::exception&) {
      ++rejected;
    }
  }
  // Both outcomes must occur (some mutations are benign, e.g. in a value),
  // and none may escape as a crash or non-std exception.
  EXPECT_GT(parsed + rejected, 0);
  EXPECT_GT(rejected, 0);
}

// ---------------------------------------------------------------------------
// Tree-file fuzzing.
// ---------------------------------------------------------------------------

TEST(TreeIoFuzz, MutatedModelsNeverCrash) {
  data::GeneratorConfig config;
  config.seed = 7;
  const data::QuestGenerator generator(config);
  const core::DecisionTree tree =
      core::ScalParC::fit(generator.generate(0, 200), 2).tree;
  std::stringstream original;
  core::save_tree(tree, original);
  const std::string base = original.str();

  util::Rng rng(777);
  int rejected = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = base;
    const std::size_t pos = rng.next_below(mutated.size());
    mutated[pos] = static_cast<char>(32 + rng.next_below(95));
    std::stringstream in(mutated);
    try {
      const core::DecisionTree loaded = core::load_tree(in);
      // If it parsed, it must still be a usable predictor.
      const data::Dataset probe = generator.generate(5000, 5);
      for (std::size_t row = 0; row < probe.num_records(); ++row) {
        const std::int32_t y = loaded.predict(probe, row);
        ASSERT_GE(y, 0);
        ASSERT_LT(y, 2);
      }
    } catch (const std::exception&) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);
}

// ---------------------------------------------------------------------------
// Adversarial data shapes.
// ---------------------------------------------------------------------------

TEST(Adversarial, AlternatingClassesOnSortedValues) {
  // Worst case for the split scan: every adjacent pair flips class, so every
  // position is a candidate and gains are tiny but the tree must still
  // separate all records.
  Schema schema({Schema::continuous("x")}, 2);
  data::Dataset d(schema);
  for (int i = 0; i < 64; ++i) {
    const double x[] = {static_cast<double>(i)};
    d.append(x, {}, i % 2);
  }
  const auto report = core::ScalParC::fit(d, 4);
  EXPECT_DOUBLE_EQ(report.tree.accuracy(d), 1.0);
  const core::DecisionTree serial = core::ScalParC::fit(d, 1).tree;
  EXPECT_TRUE(serial.same_structure(report.tree));
}

TEST(Adversarial, MassiveDuplicateRuns) {
  // 90% of records share one attribute value; candidates exist only at the
  // two run boundaries.
  Schema schema({Schema::continuous("x")}, 2);
  data::Dataset d(schema);
  for (int i = 0; i < 200; ++i) {
    const double x[] = {i < 180 ? 5.0 : static_cast<double>(i)};
    d.append(x, {}, i < 180 ? 0 : 1);
  }
  const auto report = core::ScalParC::fit(d, 5);
  EXPECT_DOUBLE_EQ(report.tree.accuracy(d), 1.0);
  EXPECT_EQ(report.tree.num_nodes(), 3);  // one split suffices
}

TEST(Adversarial, ExtremeMagnitudes) {
  Schema schema({Schema::continuous("x")}, 2);
  data::Dataset d(schema);
  const double values[] = {-1e300, -1e-300, 0.0, 1e-300, 1e300, 1e299};
  for (int i = 0; i < 6; ++i) {
    const double x[] = {values[i]};
    d.append(x, {}, i < 3 ? 0 : 1);
  }
  const auto report = core::ScalParC::fit(d, 3);
  EXPECT_DOUBLE_EQ(report.tree.accuracy(d), 1.0);
}

TEST(Adversarial, SingleClassAmongMany) {
  // 5 declared classes but only class 3 occurs: root must be a pure leaf.
  Schema schema({Schema::continuous("x")}, 5);
  data::Dataset d(schema);
  for (int i = 0; i < 20; ++i) {
    const double x[] = {static_cast<double>(i)};
    d.append(x, {}, 3);
  }
  const auto report = core::ScalParC::fit(d, 2);
  EXPECT_EQ(report.tree.num_nodes(), 1);
  EXPECT_EQ(report.tree.node(0).majority_class, 3);
}

TEST(Adversarial, SkewedBlockSizesAcrossRanks) {
  // fit() gives contiguous equal blocks; emulate extreme skew by calling
  // fit_rank directly with all data on one rank.
  data::GeneratorConfig config;
  config.seed = 15;
  const data::QuestGenerator generator(config);
  const data::Dataset all = generator.generate(0, 200);
  std::vector<core::InductionResult> results(3);
  mp::run_ranks(3, kZero, [&](mp::Comm& comm) {
    const data::Dataset block =
        comm.rank() == 1 ? all : data::Dataset(generator.schema());
    const std::int64_t first_rid = comm.rank() <= 1 ? 0 : 200;
    results[static_cast<std::size_t>(comm.rank())] =
        core::ScalParC::fit_rank(comm, block, first_rid, 200, {});
  });
  const core::DecisionTree reference = core::ScalParC::fit(all, 1).tree;
  for (const auto& result : results) {
    EXPECT_TRUE(reference.same_structure(result.tree));
  }
}

// ---------------------------------------------------------------------------
// Full option-matrix invariance sweep.
// ---------------------------------------------------------------------------

struct OptionCase {
  core::SplitCriterion criterion;
  core::CategoricalSplit categorical;
  core::SplittingStrategy strategy;
  core::CategoricalReduction reduction;
  const char* name;
};

class OptionMatrix : public ::testing::TestWithParam<OptionCase> {};

INSTANTIATE_TEST_SUITE_P(
    AllCombos, OptionMatrix,
    ::testing::Values(
        OptionCase{core::SplitCriterion::kGini, core::CategoricalSplit::kMultiWay,
                   core::SplittingStrategy::kDistributedHash,
                   core::CategoricalReduction::kCoordinator, "gini_multi_dist_coord"},
        OptionCase{core::SplitCriterion::kGini, core::CategoricalSplit::kMultiWay,
                   core::SplittingStrategy::kReplicatedHash,
                   core::CategoricalReduction::kAllRanks, "gini_multi_repl_all"},
        OptionCase{core::SplitCriterion::kGini, core::CategoricalSplit::kBinarySubset,
                   core::SplittingStrategy::kDistributedHash,
                   core::CategoricalReduction::kAllRanks, "gini_subset_dist_all"},
        OptionCase{core::SplitCriterion::kEntropy, core::CategoricalSplit::kMultiWay,
                   core::SplittingStrategy::kDistributedHash,
                   core::CategoricalReduction::kCoordinator, "entropy_multi_dist_coord"},
        OptionCase{core::SplitCriterion::kEntropy, core::CategoricalSplit::kBinarySubset,
                   core::SplittingStrategy::kReplicatedHash,
                   core::CategoricalReduction::kCoordinator, "entropy_subset_repl_coord"},
        OptionCase{core::SplitCriterion::kEntropy, core::CategoricalSplit::kBinarySubset,
                   core::SplittingStrategy::kDistributedHash,
                   core::CategoricalReduction::kAllRanks, "entropy_subset_dist_all"}),
    [](const ::testing::TestParamInfo<OptionCase>& info) {
      return info.param.name;
    });

TEST_P(OptionMatrix, PInvarianceAndOracleAgreement) {
  const OptionCase& params = GetParam();
  data::GeneratorConfig config;
  config.seed = 67;
  config.function = data::LabelFunction::kF3;  // splits on a categorical
  config.num_attributes = 9;
  config.label_noise = 0.03;
  const data::QuestGenerator generator(config);
  const data::Dataset training = generator.generate(0, 350);

  core::InductionControls controls;
  controls.options.max_depth = 8;
  controls.options.criterion = params.criterion;
  controls.options.categorical_split = params.categorical;
  controls.options.categorical_reduction = params.reduction;
  controls.strategy = params.strategy;

  const core::DecisionTree serial =
      sprint::fit_serial_sprint(training, controls.options);
  for (const int p : {1, 3, 6}) {
    const core::DecisionTree tree =
        core::ScalParC::fit(training, p, controls, kZero).tree;
    EXPECT_TRUE(serial.same_structure(tree)) << "p=" << p;
  }
}

// ---------------------------------------------------------------------------
// Damaged checkpoints: truncation, bit flips and parameter mismatches must
// all surface as CheckpointError — never a crash or a silently wrong tree.
// ---------------------------------------------------------------------------

namespace fs = std::filesystem;

std::string slurp_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void dump_file(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string tree_text(const core::DecisionTree& tree) {
  std::ostringstream out;
  core::save_tree(tree, out);
  return out.str();
}

// Shared fixture state: one checkpointed training run, damaged per-test.
class CheckpointDamage : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (fs::temp_directory_path() /
             ("scalparc_ckpt_damage_" + std::to_string(::getpid()) + "_" +
              std::to_string(next_id_++)))
                .string();
    data::GeneratorConfig config;
    config.seed = 11;
    training_ = data::QuestGenerator(config).generate(0, 800);
    controls_.options.max_depth = 4;
    controls_.checkpoint.directory = root_;
    expected_ =
        tree_text(core::ScalParC::fit(training_, 2, controls_).tree);
    latest_ = core::checkpoint_level_dir(
        root_, *core::checkpoint_latest_level(root_));
  }

  void TearDown() override {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  core::FitReport resume() {
    return core::ScalParC::resume_from_checkpoint(training_, 2, controls_);
  }

  std::string root_;
  std::string latest_;
  data::Dataset training_{data::Schema({data::Schema::continuous("x")}, 2)};
  core::InductionControls controls_;
  std::string expected_;
  static inline int next_id_ = 0;
};

TEST_F(CheckpointDamage, IntactCheckpointResumesToIdenticalTree) {
  EXPECT_EQ(tree_text(resume().tree), expected_);
}

TEST_F(CheckpointDamage, TruncatedManifestRejected) {
  // A manifest missing its 'end' marker is truncated: the reader must throw
  // and the level scan must stop treating that level as complete. Truncating
  // every level's manifest leaves nothing to resume from.
  const int old_latest = *core::checkpoint_latest_level(root_);
  for (int level = 0; level <= old_latest; ++level) {
    const fs::path manifest =
        fs::path(core::checkpoint_level_dir(root_, level)) / "MANIFEST";
    std::string bytes = slurp_file(manifest);
    ASSERT_NE(bytes.find("end\n"), std::string::npos);
    dump_file(manifest, bytes.substr(0, bytes.rfind("end")));
  }
  EXPECT_THROW(core::checkpoint_read_manifest(latest_), core::CheckpointError);
  EXPECT_FALSE(core::checkpoint_latest_level(root_).has_value());
  EXPECT_THROW(resume(), core::CheckpointError);
}

TEST_F(CheckpointDamage, TruncatedSectionFileRejected) {
  const fs::path section = fs::path(latest_) / "rank0_cont0.bin";
  const std::string bytes = slurp_file(section);
  ASSERT_GT(bytes.size(), 16u);
  dump_file(section, bytes.substr(0, bytes.size() / 2));
  EXPECT_THROW(resume(), core::CheckpointError);
}

TEST_F(CheckpointDamage, BitFlippedSectionFileRejected) {
  const fs::path section = fs::path(latest_) / "rank1_cont0.bin";
  std::string bytes = slurp_file(section);
  ASSERT_FALSE(bytes.empty());
  bytes[bytes.size() / 3] ^= 0x10;  // same size, different content
  dump_file(section, bytes);
  EXPECT_THROW(resume(), core::CheckpointError);
}

TEST_F(CheckpointDamage, BitFlippedTreeFileRejected) {
  const fs::path tree_file = fs::path(latest_) / "tree.txt";
  std::string bytes = slurp_file(tree_file);
  ASSERT_FALSE(bytes.empty());
  bytes[bytes.size() / 2] ^= 0x04;
  dump_file(tree_file, bytes);
  EXPECT_THROW(resume(), core::CheckpointError);
}

TEST_F(CheckpointDamage, BitFlippedActiveSetRejected) {
  const fs::path active = fs::path(latest_) / "active.bin";
  std::string bytes = slurp_file(active);
  ASSERT_FALSE(bytes.empty());
  bytes[0] ^= 0x01;
  dump_file(active, bytes);
  EXPECT_THROW(resume(), core::CheckpointError);
}

TEST_F(CheckpointDamage, MismatchedOptionsRejected) {
  controls_.options.max_depth = 9;  // changes the fingerprint
  EXPECT_THROW(resume(), core::CheckpointError);
}

TEST_F(CheckpointDamage, MismatchedRankCountRejected) {
  EXPECT_THROW(
      core::ScalParC::resume_from_checkpoint(training_, 4, controls_),
      core::CheckpointError);
}

TEST_F(CheckpointDamage, DamagedLatestLevelFallsBackToEarlierOne) {
  // Destroy the newest level's manifest; the resume scan must skip it and
  // restore the next-newest complete checkpoint, still reproducing the tree.
  const int damaged = *core::checkpoint_latest_level(root_);
  ASSERT_GT(damaged, 0);
  dump_file(fs::path(latest_) / "MANIFEST", "scalparc-ckpt v1\nlevel ");
  ASSERT_EQ(*core::checkpoint_latest_level(root_), damaged - 1);
  EXPECT_EQ(tree_text(resume().tree), expected_);
}

// Fuzz: flip one random byte anywhere in the newest checkpoint; a resume
// must either reject the damage with CheckpointError or — when the flip
// lands in a file the restore path does not read — still produce the exact
// fault-free tree. A wrong tree or any other escape fails the test.
TEST_F(CheckpointDamage, ByteFlipFuzzNeverSilentlyWrong) {
  std::vector<fs::path> files;
  for (const fs::directory_entry& entry : fs::directory_iterator(latest_)) {
    if (entry.is_regular_file() && entry.file_size() > 0) {
      files.push_back(entry.path());
    }
  }
  ASSERT_FALSE(files.empty());
  util::Rng rng(20240806);
  int rejected = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const fs::path& target = files[rng.next_below(files.size())];
    const std::string original = slurp_file(target);
    std::string mutated = original;
    mutated[rng.next_below(mutated.size())] ^=
        static_cast<char>(1 << rng.next_below(8));
    dump_file(target, mutated);
    try {
      EXPECT_EQ(tree_text(resume().tree), expected_) << target;
    } catch (const core::CheckpointError&) {
      ++rejected;
    }
    dump_file(target, original);
  }
  EXPECT_GT(rejected, 0);
}

}  // namespace
}  // namespace scalparc
