// Rank-local handle to the in-process message-passing runtime.
//
// A Comm is what MPI_COMM_WORLD is to an MPI program: it knows this rank's
// id, the world size, and provides point-to-point send/recv. Collective
// operations are free-function templates in mp/collectives.hpp built on top
// of these primitives.
//
// Tag discipline: user-level point-to-point uses non-negative tags chosen by
// the caller; collectives draw from a private, strictly decreasing negative
// tag sequence advanced identically on every rank (SPMD), so messages from
// distinct operations can never be confused even if one rank runs far ahead
// of another (sends are buffered and never block).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "mp/costmodel.hpp"
#include "mp/message.hpp"
#include "mp/metrics.hpp"
#include "mp/stats.hpp"
#include "util/memory_meter.hpp"

namespace scalparc::mp {

class Hub;  // defined in runtime.hpp

template <typename T>
concept WireType = std::is_trivially_copyable_v<T>;

class Comm {
 public:
  Comm(Hub& hub, int rank, const CostModel& model,
       util::MemoryMeter* meter = nullptr);

  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;

  int rank() const { return rank_; }
  int size() const;
  bool is_root() const { return rank_ == 0; }
  const CostModel& model() const { return model_; }

  // --- point to point ------------------------------------------------------
  // The transport is zero-copy: a Payload moves through the mailbox intact,
  // so a moved-in send plus a same-typed recv never duplicates the bytes.
  void send_payload(int dst, std::int64_t tag, Payload payload);
  Payload recv_payload(int src, std::int64_t tag);

  void send_bytes(int dst, std::int64_t tag, std::span<const std::byte> bytes) {
    send_payload(dst, tag, Payload::copy_of(bytes));
  }
  std::vector<std::byte> recv_bytes(int src, std::int64_t tag) {
    return recv_payload(src, tag).take<std::byte>();
  }

  // Fault-injection checkpoint at a level boundary of the induction loop:
  // throws InjectedFault if the run's FaultPlan kills this rank there.
  void fault_level_boundary(int level);

  // Progress watermark for the gray-failure subsystem: the induction
  // engines call this at phase/level boundaries so the health registry can
  // tell slow-but-progressing from stuck. No-op when health monitoring is
  // off.
  void publish_watermark(int level);

  // Communication operations (sends + receives) performed by this rank so
  // far; the unit in which op-triggered faults are addressed (1-based).
  std::int64_t comm_ops() const { return comm_ops_; }

  // Elastic grow (see join_handshake in mp/runtime.hpp): the previous
  // attempt's world size from RunOptions (0 on a normal run), and the
  // hub-level record that a joiner passed the capability exchange.
  int prior_world() const;
  void admit_joiner(int rank);

  template <WireType T>
  void send(int dst, std::int64_t tag, std::span<const T> values) {
    send_bytes(dst, tag, std::as_bytes(values));
  }
  // Move-send: the vector's buffer travels through the mailbox unchanged and
  // a matching recv<T> reclaims it without copying.
  template <WireType T>
  void send(int dst, std::int64_t tag, std::vector<T>&& values) {
    send_payload(dst, tag, Payload::adopt(std::move(values)));
  }
  template <WireType T>
  void send_value(int dst, std::int64_t tag, const T& value) {
    send(dst, tag, std::span<const T>(&value, 1));
  }
  template <WireType T>
  std::vector<T> recv(int src, std::int64_t tag) {
    return recv_payload(src, tag).take<T>();
  }
  template <WireType T>
  T recv_value(int src, std::int64_t tag) {
    return recv<T>(src, tag).at(0);
  }

  // --- modeled time and accounting -----------------------------------------
  // Advances this rank's virtual clock by `units` work units (one unit = one
  // record-field visit; see CostModel). With CostModel::realize_work the
  // modeled duration is also slept for real (accumulated and settled in
  // bounded chunks so per-record calls stay cheap); an injected `slow` fault
  // multiplies the realized — never the virtual — duration.
  void add_work(double units) {
    vtime_ += units * model_.seconds_per_work_unit;
    stats_.work_units += units;
    if (model_.realize_work) {
      realize_debt_s_ += units * model_.seconds_per_work_unit * slow_factor_;
      if (realize_debt_s_ >= 1e-3) settle_realized_work();
    }
  }
  double vtime() const { return vtime_; }
  void set_vtime(double t) { vtime_ = t; }

  CommStats& stats() { return stats_; }
  const CommStats& stats() const { return stats_; }
  util::MemoryMeter* meter() const { return meter_; }

  // --- transport health telemetry ------------------------------------------
  // Cheap member counters updated on the send/recv hot paths; run_ranks
  // absorbs them into the rank's MetricsSnapshot when the rank finishes
  // (comm.message_bytes, transport.backoff_waits/heals,
  // runtime.deadlock_probes families).
  const Histogram& message_bytes_histogram() const {
    return message_bytes_hist_;
  }
  std::uint64_t backoff_waits() const { return backoff_waits_; }
  std::uint64_t heals() const { return heals_; }
  std::uint64_t deadlock_probes() const { return deadlock_probes_; }

  // Gray-failure telemetry (health.* metric family; zero/empty when health
  // monitoring is off).
  std::uint64_t heartbeats_sent() const { return heartbeats_sent_; }
  const Histogram& suspicion_histogram() const { return suspicion_hist_; }
  const Histogram& watermark_lag_histogram() const {
    return watermark_lag_hist_;
  }
  double adaptive_timeout_max_s() const { return adaptive_timeout_max_s_; }

  // Tag source for collectives; advanced identically on all ranks.
  std::int64_t next_collective_tag() { return --collective_tag_; }

  // RAII attribution of point-to-point traffic to a collective class.
  class OpScope {
   public:
    OpScope(Comm& comm, CommOp op) : comm_(comm), saved_(comm.current_op_) {
      comm_.current_op_ = op;
      comm_.stats_.record_call(op);
    }
    ~OpScope() { comm_.current_op_ = saved_; }
    OpScope(const OpScope&) = delete;
    OpScope& operator=(const OpScope&) = delete;

   private:
    Comm& comm_;
    CommOp saved_;
  };

 private:
  // Advances the op counter and applies any op-triggered faults (kill,
  // delay) for this rank, stamps this rank's heartbeat lane, and pays the
  // per-op wall pause of an injected slow fault. Returns the 1-based index
  // of the operation.
  std::int64_t begin_op(const char* what);
  // Sleeps off the accumulated realized-work debt in bounded chunks,
  // heartbeating between chunks so a throttled rank stays visibly alive.
  void settle_realized_work();
  // Stamp this rank's heartbeat lane (no-op when monitoring is off).
  void heartbeat();
  // One straggler-evidence probe, called from an expired receive slice.
  // Throws StragglerDetected once the evidence has been sustained.
  void straggler_probe(int src, std::int64_t tag);

  Hub& hub_;
  int rank_;
  CostModel model_;
  util::MemoryMeter* meter_;
  CommStats stats_;
  Histogram message_bytes_hist_;
  std::uint64_t backoff_waits_ = 0;     // retransmit-timer expiries in recv
  std::uint64_t heals_ = 0;             // retransmits/nacks this rank drove
  std::uint64_t deadlock_probes_ = 0;   // deadlock_diagnostic consultations
  double vtime_ = 0.0;
  std::int64_t collective_tag_ = 0;
  std::int64_t comm_ops_ = 0;
  CommOp current_op_ = CommOp::kPointToPoint;

  // --- gray-failure state (all accessed only by this rank's thread) ----
  bool health_monitoring_ = false;   // cached RunOptions::health.monitoring()
  bool detect_stragglers_ = false;
  bool adaptive_timeouts_ = false;
  double slow_factor_ = 1.0;         // injected slow fault; 1 = healthy
  double realize_debt_s_ = 0.0;      // realized work not yet slept off
  std::uint64_t heartbeats_sent_ = 0;
  Histogram suspicion_hist_;         // phi x100 per straggler probe
  Histogram watermark_lag_hist_;     // watermark spread per straggler probe
  double adaptive_timeout_max_s_ = 0.0;
  // Straggler evidence, persisted across receives: the suspect under
  // sustained observation and when the evidence window opened.
  int straggler_suspect_ = -1;
  std::chrono::steady_clock::time_point straggler_since_{};
};

}  // namespace scalparc::mp
