file(REMOVE_RECURSE
  "libscalparc_ooc.a"
)
