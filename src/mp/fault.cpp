#include "mp/fault.hpp"

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <span>
#include <sstream>
#include <string>

namespace scalparc::mp {

namespace {

// splitmix64: cheap stateless mixing for deterministic corruption positions.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t");
  return s.substr(begin, end - begin + 1);
}

// Where a parse failure happened: the 1-based entry index within the
// ';'-separated spec and the 1-based column of the entry (or offending
// field) within the full spec string. A field name pins the complaint to
// the exact token, not just the entry.
struct SpecCursor {
  int entry = 0;
  std::size_t column = 0;
  std::string entry_text;
  std::string field;
};

[[noreturn]] void bad_spec(const SpecCursor& at, const std::string& why) {
  std::ostringstream msg;
  msg << "FaultPlan: entry " << at.entry << " (col " << at.column << ")";
  if (!at.field.empty()) msg << ", field '" << at.field << "'";
  msg << ": " << why << " in '" << at.entry_text << "'";
  throw std::invalid_argument(msg.str());
}

std::int64_t parse_int(const SpecCursor& at, const std::string& text) {
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    bad_spec(at, "bad number '" + text + "'");
  }
  return static_cast<std::int64_t>(v);
}

double parse_num(const SpecCursor& at, const std::string& text) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    bad_spec(at, "bad number '" + text + "'");
  }
  return v;
}

}  // namespace

void FaultPlan::parse(const std::string& spec) {
  std::size_t pos = 0;
  int entry_index = 0;
  while (pos <= spec.size()) {
    const std::size_t semi = std::min(spec.find(';', pos), spec.size());
    const std::string raw = spec.substr(pos, semi - pos);
    const std::size_t entry_begin = pos + raw.find_first_not_of(" \t");
    const std::string item = trim(raw);
    pos = semi + 1;
    if (item.empty()) {
      if (semi == spec.size()) break;
      continue;
    }
    ++entry_index;
    SpecCursor at;
    at.entry = entry_index;
    at.column = entry_begin + 1;  // 1-based within the full spec
    at.entry_text = item;

    const auto colon = item.find(':');
    if (colon == std::string::npos) bad_spec(at, "missing ':' after kind");
    const std::string kind_text = trim(item.substr(0, colon));

    FaultAction action;
    if (kind_text == "kill") {
      action.kind = FaultKind::kKill;
    } else if (kind_text == "corrupt") {
      action.kind = FaultKind::kCorrupt;
    } else if (kind_text == "delay") {
      action.kind = FaultKind::kDelay;
    } else if (kind_text == "drop") {
      action.kind = FaultKind::kDrop;
    } else if (kind_text == "duplicate") {
      action.kind = FaultKind::kDuplicate;
    } else if (kind_text == "slow") {
      action.kind = FaultKind::kSlow;
    } else {
      bad_spec(at, "unknown kind '" + kind_text +
                       "' (kill | corrupt | delay | drop | duplicate | slow)");
    }

    bool have_rank = false;
    std::size_t field_pos = colon + 1;
    while (field_pos <= item.size()) {
      const std::size_t comma = std::min(item.find(',', field_pos), item.size());
      const std::string field_raw = item.substr(field_pos, comma - field_pos);
      const std::size_t field_begin =
          field_pos + std::min(field_raw.find_first_not_of(" \t"),
                               field_raw.size());
      const std::string field = trim(field_raw);
      field_pos = comma + 1;
      if (field.empty()) {
        if (comma == item.size()) break;
        continue;
      }
      SpecCursor field_at = at;
      field_at.column = entry_begin + field_begin + 1;
      field_at.field = field;
      const auto eq = field.find('=');
      if (eq == std::string::npos) bad_spec(field_at, "needs '='");
      const std::string key = trim(field.substr(0, eq));
      const std::string value = trim(field.substr(eq + 1));
      if (key == "r" || key == "rank") {
        action.rank = static_cast<int>(parse_int(field_at, value));
        have_rank = true;
      } else if (key == "op") {
        action.op = parse_int(field_at, value);
      } else if (key == "level") {
        action.level = static_cast<int>(parse_int(field_at, value));
      } else if (key == "ms") {
        action.delay_ms = parse_num(field_at, value);
      } else if (key == "factor") {
        action.factor = parse_num(field_at, value);
      } else {
        bad_spec(field_at, "unknown field '" + key + "'");
      }
    }

    if (!have_rank) bad_spec(at, "missing r=<rank>");
    if (action.kind == FaultKind::kSlow) {
      // A slow fault is a whole-run condition, not a point event.
      if (action.op >= 0 || action.level >= 0) {
        bad_spec(at, "slow takes no op/level trigger (whole-run fault)");
      }
      if (!(action.factor > 1.0)) {
        bad_spec(at, "slow needs factor=<greater than 1>");
      }
    } else if ((action.op >= 0) == (action.level >= 0)) {
      bad_spec(at, "need exactly one of op=<n> or level=<l>");
    }
    if (action.level >= 0 && action.kind != FaultKind::kKill) {
      bad_spec(at, "only kill supports level triggers");
    }
    if (action.kind == FaultKind::kDelay && action.delay_ms <= 0.0) {
      bad_spec(at, "delay needs ms=<positive>");
    }
    for (const FaultAction& earlier : actions_) {
      if (earlier.kind == action.kind && earlier.rank == action.rank &&
          earlier.op == action.op && earlier.level == action.level) {
        bad_spec(at, "duplicates an earlier action with the same "
                     "(kind, rank, trigger); it would fire twice");
      }
    }
    actions_.push_back(action);
  }
}

FaultPlan& FaultSchedule::add_plan() {
  plans_.push_back(std::make_unique<FaultPlan>());
  plans_.back()->set_seed(seed_);
  return *plans_.back();
}

void FaultSchedule::parse(const std::string& spec) {
  std::size_t pos = 0;
  int attempt = 0;
  while (pos <= spec.size()) {
    const std::size_t bar = std::min(spec.find('|', pos), spec.size());
    const std::string segment = spec.substr(pos, bar - pos);
    const bool last = bar == spec.size();
    pos = bar + 1;
    FaultPlan& plan = add_plan();
    try {
      plan.parse(segment);
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument("FaultSchedule: attempt " +
                                  std::to_string(attempt) + ": " + e.what());
    }
    ++attempt;
    if (last) break;
  }
  // A trailing all-empty schedule (e.g. an empty spec) carries no plans.
  while (!plans_.empty() && plans_.back()->empty()) plans_.pop_back();
}

void FaultSchedule::set_seed(std::uint64_t seed) {
  seed_ = seed;
  for (const std::unique_ptr<FaultPlan>& plan : plans_) plan->set_seed(seed);
}

const FaultPlan* FaultSchedule::plan(int attempt) const {
  if (attempt < 0 || attempt >= static_cast<int>(plans_.size())) return nullptr;
  const FaultPlan* p = plans_[static_cast<std::size_t>(attempt)].get();
  return (p != nullptr && !p->empty()) ? p : nullptr;
}

bool FaultPlan::kills_at_op(int rank, std::int64_t op) const {
  for (const FaultAction& a : actions_) {
    if (a.kind == FaultKind::kKill && a.rank == rank && a.op == op) return true;
  }
  return false;
}

bool FaultPlan::kills_at_level(int rank, int level) const {
  for (const FaultAction& a : actions_) {
    if (a.kind == FaultKind::kKill && a.rank == rank && a.level == level) {
      return true;
    }
  }
  return false;
}

bool FaultPlan::corrupts_at_op(int rank, std::int64_t op) const {
  for (const FaultAction& a : actions_) {
    if (a.kind == FaultKind::kCorrupt && a.rank == rank && a.op == op) {
      return true;
    }
  }
  return false;
}

bool FaultPlan::drops_at_op(int rank, std::int64_t op) const {
  for (const FaultAction& a : actions_) {
    if (a.kind == FaultKind::kDrop && a.rank == rank && a.op == op) return true;
  }
  return false;
}

bool FaultPlan::duplicates_at_op(int rank, std::int64_t op) const {
  for (const FaultAction& a : actions_) {
    if (a.kind == FaultKind::kDuplicate && a.rank == rank && a.op == op) {
      return true;
    }
  }
  return false;
}

double FaultPlan::slow_factor_for(int rank) const {
  for (const FaultAction& a : actions_) {
    if (a.kind == FaultKind::kSlow && a.rank == rank) return a.factor;
  }
  return 1.0;
}

double FaultPlan::delay_ms_at_op(int rank, std::int64_t op) const {
  for (const FaultAction& a : actions_) {
    if (a.kind == FaultKind::kDelay && a.rank == rank && a.op == op) {
      return a.delay_ms;
    }
  }
  return 0.0;
}

void FaultPlan::corrupt_payload(std::span<std::byte> payload, int rank,
                                std::int64_t op) const {
  if (payload.empty()) return;
  std::uint64_t h = mix64(seed_ ^ mix64(static_cast<std::uint64_t>(rank) << 32 ^
                                        static_cast<std::uint64_t>(op)));
  const int flips = 1 + static_cast<int>(h % 3);
  for (int i = 0; i < flips; ++i) {
    h = mix64(h);
    const std::size_t bit = h % (payload.size() * 8);
    payload[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
  }
  corruptions_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace scalparc::mp
