// Breadth-first distributed tree induction: the ScalParC algorithm (§4).
//
//   Presort                sample sort + shift of every continuous list
//   per level l:
//     FindSplitI           parallel prefix of continuous class counts;
//                          reduction of categorical count matrices to a
//                          designated coordinator per attribute
//     FindSplitII          local gini scans; global min-allreduce of the
//                          best candidate per node
//     PerformSplitI        split the splitting attributes' lists, scatter
//                          rid -> child into the distributed node table
//                          (blocked to O(N/p) buffer memory)
//     PerformSplitII       enquire the node table for every non-splitting
//                          list and split it consistently
//
// Every rank runs this collectively and returns an identical tree.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/options.hpp"
#include "core/tree.hpp"
#include "data/dataset.hpp"
#include "mp/comm.hpp"

namespace scalparc::core {

struct LevelStats {
  int level = 0;
  std::int64_t active_nodes = 0;
  // Global count of records still attached to a splittable node.
  std::int64_t active_records = 0;
  // Max over ranks of bytes sent during this level (collected only when
  // options.collect_level_stats is set in InductionControls).
  std::uint64_t max_bytes_sent_per_rank = 0;
  // Collective operations entered during this level (every CommOp except
  // point-to-point, counted before the level-stats collectives themselves).
  // With fuse_collectives this is O(1) in the number of attribute lists.
  std::int64_t collective_calls = 0;
  double vtime_end = 0.0;
};

struct InductionStats {
  double presort_seconds = 0.0;     // modeled virtual time of Presort
  double total_seconds = 0.0;       // modeled virtual time of the whole fit
  // Modeled time spent in split determination (FindSplitI+II) and in the
  // splitting phase (PerformSplitI+II), summed over levels.
  double findsplit_seconds = 0.0;
  double performsplit_seconds = 0.0;
  int levels = 0;
  // Which split-determination engine produced this tree (surfaced as the
  // induction.split_mode gauge).
  SplitMode split_mode = SplitMode::kExact;
  std::vector<LevelStats> per_level;
};

struct InductionResult {
  DecisionTree tree;
  InductionStats stats;
};

// How the rid -> child mapping of the splitting phase is realized. The two
// strategies produce identical trees; they differ exactly on the axis the
// paper's scalability argument is about.
enum class SplittingStrategy : int {
  // ScalParC: distributed node table, O(N/p) memory and communication per
  // processor per level (§3.3).
  kDistributedHash = 0,
  // Parallel SPRINT: the full mapping is replicated on every processor via
  // an allgather, O(N) memory and communication per processor per level
  // (the formulation §3.2 shows to be unscalable).
  kReplicatedHash = 1,
};

// Level-granular checkpoint/restart (see core/checkpoint.hpp). With a
// non-empty directory the induction loop persists its consistent global
// state at every level boundary; with `resume` set it restores the latest
// complete checkpoint instead of starting from the training data and
// continues from that level, reproducing the identical tree.
struct CheckpointControls {
  std::string directory;  // empty disables checkpointing
  bool resume = false;
  // Allow resuming under a different rank count than the checkpoint was
  // written with: the restore repartitions every attribute list across the
  // current world (see core/elastic_restore.hpp). Off by default so an
  // accidental world-size mismatch stays a loud error; the shrink-to-
  // survivors recovery policy switches it on.
  bool allow_repartition = false;
  // Non-uniform restore tiling for the straggler-rebalance recovery policy:
  // rank r's share of every attribute list is proportional to
  // rank_weights[r] (see sort::weighted_partition_sizes). Empty means the
  // canonical uniform tiling. When non-empty the size must equal the world
  // size, every weight must be positive and finite, and allow_repartition
  // must be set (a weighted re-tile is a repartition even at the same rank
  // count). Exact engine only: the histogram engine's row ownership is
  // structural, so it rejects non-uniform weights loudly.
  std::vector<double> rank_weights;

  // True when rank_weights requests a genuinely non-uniform tiling.
  bool weighted() const {
    for (const double w : rank_weights) {
      if (w != rank_weights.front()) return true;
    }
    return false;
  }
};

struct InductionControls {
  InductionOptions options;
  SplittingStrategy strategy = SplittingStrategy::kDistributedHash;
  // Collect per-level statistics (adds two small collectives per level).
  bool collect_level_stats = false;
  CheckpointControls checkpoint;
};

// Collective: every rank passes its block of records (record `row` of
// `local_block` has global id `first_rid + row`) and the global total.
// Blocks must tile [0, total_records) exactly; every rank must pass the same
// schema, controls and total. Throws std::invalid_argument for an empty
// global training set.
InductionResult induce_tree_distributed(mp::Comm& comm,
                                        const data::Dataset& local_block,
                                        std::int64_t first_rid,
                                        std::uint64_t total_records,
                                        const InductionControls& controls);

// Translates the legacy per-phase stats into induction.* metric families
// (gauges: the values are SPMD-identical, so max-merging across ranks yields
// per-run values). induce_tree_distributed calls this on the bound
// metrics_sink automatically; callers holding only an InductionStats (e.g.
// the CLI after fit) can apply it to a merged snapshot.
void absorb_induction_stats(mp::MetricsSnapshot& snapshot,
                            const InductionStats& stats);

}  // namespace scalparc::core
