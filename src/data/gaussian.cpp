#include "data/gaussian.hpp"

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace scalparc::data {

GaussianGenerator::GaussianGenerator(GaussianConfig config)
    : config_(config) {
  if (config_.num_classes < 2) {
    throw std::invalid_argument("GaussianGenerator: need at least two classes");
  }
  if (config_.num_continuous < 1) {
    throw std::invalid_argument("GaussianGenerator: need continuous attributes");
  }
  if (config_.num_categorical < 0 ||
      (config_.num_categorical > 0 && config_.categorical_cardinality < 2)) {
    throw std::invalid_argument("GaussianGenerator: bad categorical setup");
  }
  std::vector<AttributeInfo> attributes;
  for (int d = 0; d < config_.num_continuous; ++d) {
    std::string name = "x";
    name += std::to_string(d);
    attributes.push_back(Schema::continuous(std::move(name)));
  }
  for (int g = 0; g < config_.num_categorical; ++g) {
    std::string name = "g";
    name += std::to_string(g);
    attributes.push_back(
        Schema::categorical(std::move(name), config_.categorical_cardinality));
  }
  schema_ = Schema(std::move(attributes), config_.num_classes);

  // Class centers on a deterministic random walk so no axis separates all
  // classes trivially.
  util::Rng rng(config_.seed ^ 0xABCDEF0123456789ULL);
  centers_.resize(static_cast<std::size_t>(config_.num_classes) *
                  static_cast<std::size_t>(config_.num_continuous));
  for (std::int32_t k = 0; k < config_.num_classes; ++k) {
    for (int d = 0; d < config_.num_continuous; ++d) {
      centers_[static_cast<std::size_t>(k) *
                   static_cast<std::size_t>(config_.num_continuous) +
               static_cast<std::size_t>(d)] =
          static_cast<double>(k) * config_.separation *
              (rng.next_bool(0.5) ? 1.0 : -1.0) +
          rng.next_double(-1.0, 1.0);
    }
  }
}

util::Rng GaussianGenerator::record_rng(std::uint64_t rid) const {
  std::uint64_t s = config_.seed + 0x51ED2701B4E2A37FULL;
  (void)util::splitmix64(s);
  s ^= 0x9E3779B97F4A7C15ULL * (rid + 7);
  return util::Rng(util::splitmix64(s));
}

std::int32_t GaussianGenerator::label(std::uint64_t rid) const {
  util::Rng rng = record_rng(rid);
  return static_cast<std::int32_t>(
      rng.next_below(static_cast<std::uint64_t>(config_.num_classes)));
}

void GaussianGenerator::fill(Dataset& out, std::uint64_t first_rid,
                             std::size_t count) const {
  if (!(out.schema() == schema_)) {
    throw std::invalid_argument("GaussianGenerator::fill: schema mismatch");
  }
  std::vector<double> cont(static_cast<std::size_t>(config_.num_continuous));
  std::vector<std::int32_t> cat(static_cast<std::size_t>(config_.num_categorical));
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t rid = first_rid + i;
    util::Rng rng = record_rng(rid);
    const auto cls = static_cast<std::int32_t>(
        rng.next_below(static_cast<std::uint64_t>(config_.num_classes)));
    for (int d = 0; d < config_.num_continuous; ++d) {
      // Box-Muller from two uniforms.
      const double u1 = rng.next_double();
      const double u2 = rng.next_double();
      const double normal =
          std::sqrt(-2.0 * std::log(u1 + 1e-300)) * std::cos(6.283185307179586 * u2);
      cont[static_cast<std::size_t>(d)] =
          centers_[static_cast<std::size_t>(cls) *
                       static_cast<std::size_t>(config_.num_continuous) +
                   static_cast<std::size_t>(d)] +
          normal;
    }
    for (int g = 0; g < config_.num_categorical; ++g) {
      if (rng.next_bool(config_.categorical_bias)) {
        cat[static_cast<std::size_t>(g)] =
            cls % config_.categorical_cardinality;
      } else {
        cat[static_cast<std::size_t>(g)] = static_cast<std::int32_t>(
            rng.next_below(static_cast<std::uint64_t>(config_.categorical_cardinality)));
      }
    }
    out.append(cont, cat, cls);
  }
}

Dataset GaussianGenerator::generate(std::uint64_t first_rid,
                                    std::size_t count) const {
  Dataset out(schema_);
  fill(out, first_rid, count);
  return out;
}

}  // namespace scalparc::data
