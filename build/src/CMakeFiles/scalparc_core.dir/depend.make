# Empty dependencies file for scalparc_core.
# This may be replaced when dependencies are built.
