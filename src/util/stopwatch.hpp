// Wall-clock stopwatch for measured (as opposed to modeled) timings.
#pragma once

#include <chrono>

namespace scalparc::util {

class Stopwatch {
 public:
  Stopwatch() { reset(); }

  void reset() { start_ = Clock::now(); }

  // Seconds elapsed since construction or the last reset().
  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Formats a duration in seconds as a short human-readable string ("1.23 s",
// "45.6 ms", "789 us"). Defined in stopwatch.cpp.
struct Duration {
  double seconds = 0.0;
};
const char* format_duration(Duration d, char* buffer, int size);

}  // namespace scalparc::util
