file(REMOVE_RECURSE
  "CMakeFiles/scalparc_mp.dir/mp/comm.cpp.o"
  "CMakeFiles/scalparc_mp.dir/mp/comm.cpp.o.d"
  "CMakeFiles/scalparc_mp.dir/mp/mailbox.cpp.o"
  "CMakeFiles/scalparc_mp.dir/mp/mailbox.cpp.o.d"
  "CMakeFiles/scalparc_mp.dir/mp/runtime.cpp.o"
  "CMakeFiles/scalparc_mp.dir/mp/runtime.cpp.o.d"
  "CMakeFiles/scalparc_mp.dir/mp/stats.cpp.o"
  "CMakeFiles/scalparc_mp.dir/mp/stats.cpp.o.d"
  "libscalparc_mp.a"
  "libscalparc_mp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalparc_mp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
