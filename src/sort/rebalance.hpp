// Order-preserving parallel shift: redistributes rank-ordered data into an
// exact block distribution (the paper's "parallel shift operation" that
// follows sample sort, §4).
//
// Given that rank i holds a chunk whose elements globally precede rank
// i+1's, rebalance() moves elements so that rank i ends up with exactly
// `target_sizes[i]` elements while preserving global order. With the default
// targets this restores the equal-fragments layout the induction phases
// assume.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "mp/collectives.hpp"
#include "mp/comm.hpp"
#include "sort/partition_util.hpp"

namespace scalparc::sort {

// Destination rank layout for a global index, given target chunk offsets
// (targets_offsets.size() == p + 1).
int owner_of_global_index(std::size_t global_index,
                          const std::vector<std::size_t>& target_offsets);

template <mp::WireType T>
std::vector<T> rebalance(mp::Comm& comm, std::vector<T> local,
                         const std::vector<std::size_t>& target_sizes) {
  const int p = comm.size();
  if (p == 1) return local;

  const std::uint64_t local_size = local.size();
  const std::uint64_t my_start =
      mp::exscan_value(comm, local_size, mp::SumOp{}, std::uint64_t{0});
  const std::vector<std::size_t> target_offsets = offsets_from_sizes(target_sizes);

  std::vector<std::vector<T>> sendbufs(static_cast<std::size_t>(p));
  std::size_t cursor = 0;
  while (cursor < local.size()) {
    const std::size_t global = static_cast<std::size_t>(my_start) + cursor;
    const int dst = owner_of_global_index(global, target_offsets);
    // Send the whole contiguous range destined for `dst` in one piece.
    const std::size_t dst_end = target_offsets[static_cast<std::size_t>(dst) + 1];
    const std::size_t take =
        std::min(local.size() - cursor, dst_end - global);
    auto first = local.begin() + static_cast<std::ptrdiff_t>(cursor);
    sendbufs[static_cast<std::size_t>(dst)]
        .insert(sendbufs[static_cast<std::size_t>(dst)].end(), first,
                first + static_cast<std::ptrdiff_t>(take));
    cursor += take;
  }
  local.clear();

  std::vector<std::vector<T>> recvbufs = mp::alltoallv(comm, sendbufs);
  std::vector<T> out;
  out.reserve(target_sizes[static_cast<std::size_t>(comm.rank())]);
  // Sources arrive in rank order, which is global order.
  for (auto& chunk : recvbufs) {
    out.insert(out.end(), chunk.begin(), chunk.end());
  }
  return out;
}

// Convenience: rebalance to the canonical equal block distribution of the
// global total.
template <mp::WireType T>
std::vector<T> rebalance_equal(mp::Comm& comm, std::vector<T> local) {
  const std::uint64_t total = mp::allreduce_value(
      comm, static_cast<std::uint64_t>(local.size()), mp::SumOp{});
  return rebalance(comm, std::move(local),
                   equal_partition_sizes(total, comm.size()));
}

}  // namespace scalparc::sort
