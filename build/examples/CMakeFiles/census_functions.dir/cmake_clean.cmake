file(REMOVE_RECURSE
  "CMakeFiles/census_functions.dir/census_functions.cpp.o"
  "CMakeFiles/census_functions.dir/census_functions.cpp.o.d"
  "census_functions"
  "census_functions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/census_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
