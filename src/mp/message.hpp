// Wire-level message for the in-process message-passing runtime.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <typeinfo>
#include <vector>

namespace scalparc::mp {

// Type-erased, move-only payload buffer. The transport is zero-copy: a
// sender that owns a typed vector moves it into the Payload (adopt), the
// Message carrying it is moved through the channel, and a receiver asking
// for the same element type reclaims the very same vector (take) — the
// bytes are never duplicated. A receiver asking for a different type (or a
// sender that only holds a borrowed span) pays exactly one copy.
class Payload {
 public:
  Payload() = default;
  Payload(Payload&&) = default;
  Payload& operator=(Payload&&) = default;
  Payload(const Payload&) = delete;
  Payload& operator=(const Payload&) = delete;

  // Takes ownership of `values`; no bytes are copied.
  template <typename T>
  static Payload adopt(std::vector<T>&& values) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "Payload elements must be trivially copyable");
    Payload p;
    auto* held = new std::vector<T>(std::move(values));
    p.owner_ = Owner(held, [](void* v) { delete static_cast<std::vector<T>*>(v); });
    p.data_ = reinterpret_cast<std::byte*>(held->data());
    p.size_ = held->size() * sizeof(T);
    p.type_ = &typeid(T);
    return p;
  }

  // Single allocation + copy of a borrowed byte span.
  static Payload copy_of(std::span<const std::byte> bytes) {
    return adopt(std::vector<std::byte>(bytes.begin(), bytes.end()));
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::span<const std::byte> bytes() const { return {data_, size_}; }
  // Mutable view for in-flight fault injection (payload corruption).
  std::span<std::byte> mutable_bytes() { return {data_, size_}; }

  // Surrenders the payload as a vector<T>. If the payload was adopted from a
  // vector of exactly T this moves it back out (zero-copy); otherwise it
  // deserializes with one copy. Trailing bytes that do not fill a whole T
  // are discarded, matching the historical recv<T> contract.
  template <typename T>
  std::vector<T> take() {
    std::vector<T> out;
    if (owner_ && type_ != nullptr && *type_ == typeid(T)) {
      out = std::move(*static_cast<std::vector<T>*>(owner_.get()));
    } else {
      out.resize(size_ / sizeof(T));
      if (!out.empty()) std::memcpy(out.data(), data_, out.size() * sizeof(T));
    }
    owner_.reset();
    data_ = nullptr;
    size_ = 0;
    type_ = nullptr;
    return out;
  }

 private:
  using Owner = std::unique_ptr<void, void (*)(void*)>;
  Owner owner_{nullptr, [](void*) {}};
  std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  const std::type_info* type_ = nullptr;
};

struct Message {
  // Matching key. Collectives tag messages with a per-communicator sequence
  // number so that a rank running ahead can never confuse two operations.
  std::int64_t tag = 0;
  // Per-channel monotone sequence number assigned by the reliability layer
  // (1-based; 0 means "unsequenced", i.e. reliability disabled). Receivers
  // dedupe on it and address nack/retransmit requests with it.
  std::uint64_t seq = 0;
  // Modeled arrival time at the receiver (seconds on the virtual clock):
  // sender_vtime + latency + bytes * seconds_per_byte.
  double arrival_vtime = 0.0;
  // CRC32 frame checksum of `payload`, computed by the sender before the
  // message enters the wire; the receiver re-computes and throws
  // CorruptMessage on mismatch.
  std::uint32_t crc = 0;
  Payload payload;
};

}  // namespace scalparc::mp
