#include "core/induction.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <numeric>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/count_matrix.hpp"
#include "core/elastic_restore.hpp"
#include "core/gini.hpp"
#include "core/histogram_induction.hpp"
#include "core/induction_internal.hpp"
#include "core/node_table.hpp"
#include "core/split_finder.hpp"
#include "core/splitter.hpp"
#include "data/attribute_list.hpp"
#include "mp/collective_batch.hpp"
#include "mp/collectives.hpp"
#include "mp/metrics.hpp"
#include "mp/runtime.hpp"
#include "mp/telemetry.hpp"
#include "sort/rebalance.hpp"
#include "sort/sample_sort.hpp"
#include "util/arena.hpp"
#include "util/trace.hpp"

namespace scalparc::core {

namespace {

using data::AttributeKind;
using data::CategoricalColumns;
using data::CategoricalEntry;
using data::ContinuousColumns;
using data::ContinuousEntry;
using internal::ActiveNode;
using internal::PhaseSpan;
using internal::is_pure;
using internal::majority_class;

// Element for the boundary exscan in FindSplitII: the last attribute value
// of a node's segment on each rank; combine keeps the rightmost non-empty.
struct Boundary {
  double value = 0.0;
  std::uint8_t has = 0;
};

struct RightmostOp {
  Boundary operator()(const Boundary& left, const Boundary& right) const {
    return right.has != 0 ? right : left;
  }
};

// Exactly one of `entries` (DataLayout::kAoS) or `cols` (kSoA) holds the
// list; the layout flag chosen at induction start selects which, and every
// consumer branches on it. `cols_next` is the SoA regroup double-buffer:
// PerformSplitII writes the next level's layout into it and swaps, so its
// vectors' capacity is reused and steady-state levels allocate nothing.
struct ContList {
  int attribute = -1;
  std::vector<ContinuousEntry> entries;
  ContinuousColumns cols;
  ContinuousColumns cols_next;
  std::vector<std::size_t> offsets;  // per-active-node segment bounds
  std::vector<std::int32_t> child;   // per-entry child slot (split phases)
  util::ScopedAllocation mem;
  std::size_t size(bool soa) const {
    return soa ? cols.size() : entries.size();
  }
};

struct CatList {
  int attribute = -1;
  std::int32_t cardinality = 0;
  int coordinator = 0;  // rank that reduces/owns this attribute's matrices
  std::vector<CategoricalEntry> entries;
  CategoricalColumns cols;
  CategoricalColumns cols_next;
  std::vector<std::size_t> offsets;
  std::vector<std::int32_t> child;
  util::ScopedAllocation mem;
  // Coordinator-only: this level's global count matrices, laid out
  // [active node][value][class].
  std::vector<std::int64_t> global_counts;
  std::size_t size(bool soa) const {
    return soa ? cols.size() : entries.size();
  }
};

template <typename Entry>
std::span<const Entry> segment_of(const std::vector<Entry>& entries,
                                  const std::vector<std::size_t>& offsets,
                                  std::size_t node) {
  return std::span<const Entry>(entries.data() + offsets[node],
                                offsets[node + 1] - offsets[node]);
}

}  // namespace

InductionResult induce_tree_distributed(mp::Comm& comm,
                                        const data::Dataset& local_block,
                                        std::int64_t first_rid,
                                        std::uint64_t total_records,
                                        const InductionControls& controls) {
  const InductionOptions& options = controls.options;
  const data::Schema& schema = local_block.schema();
  const int p = comm.size();
  const int c = schema.num_classes();

  if (total_records == 0) {
    throw std::invalid_argument("induce_tree_distributed: empty training set");
  }
  // Histogram/voting modes run on a horizontal record partition with their
  // own level loop (same tree/checkpoint artifacts, O(bins) instead of
  // O(N/p) per-level communication).
  if (options.split_mode != SplitMode::kExact) {
    return induce_tree_quantized(comm, local_block, first_rid, total_records,
                                 controls);
  }
  if (options.max_depth < 0 || options.min_split_records < 2 ||
      options.node_table_update_block < 0) {
    throw std::invalid_argument("induce_tree_distributed: bad options");
  }

  const bool resuming = controls.checkpoint.resume;
  const std::string& ckpt_root = controls.checkpoint.directory;
  const bool checkpointing = !ckpt_root.empty();
  if (resuming && !checkpointing) {
    throw std::invalid_argument(
        "induce_tree_distributed: resume requires a checkpoint directory");
  }

  // SPMD argument consistency: every rank must pass the same total, schema
  // and options. A mismatch would otherwise corrupt results silently (e.g.
  // misaligned count-matrix reductions), so fingerprint and compare. The
  // fingerprint doubles as the checkpoint compatibility stamp: a resume
  // under different parameters could not reproduce the tree, so manifests
  // record it and the restore path rejects a mismatch.
  // Setup phase span: Presort (sort + root histogram) on a fresh run, the
  // checkpoint restore on a resume. Ends where the level loop begins.
  std::optional<PhaseSpan> setup_span(
      std::in_place, comm, resuming ? "checkpoint_restore" : "presort");
  const std::uint64_t fp = internal::induction_fingerprint(
      schema, total_records, options, controls.strategy);
  internal::verify_spmd_fingerprint(comm, fp);

  InductionResult result;
  result.tree = DecisionTree(schema);
  InductionStats& stats = result.stats;

  // -------------------------------------------------------------------------
  // Build the local fragments of all attribute lists.
  // -------------------------------------------------------------------------
  const bool soa = options.layout == DataLayout::kSoA;
  std::vector<ContList> cont_lists;
  std::vector<CatList> cat_lists;
  for (int a = 0; a < schema.num_attributes(); ++a) {
    if (schema.attribute(a).kind == AttributeKind::kContinuous) {
      ContList list;
      list.attribute = a;
      if (!resuming) {
        if (soa) {
          list.cols = data::build_continuous_columns(local_block, a, first_rid);
        } else {
          list.entries = data::build_continuous_list(local_block, a, first_rid);
        }
      }
      cont_lists.push_back(std::move(list));
    } else {
      CatList list;
      list.attribute = a;
      list.cardinality = schema.attribute(a).cardinality;
      list.coordinator = a % p;
      if (!resuming) {
        if (soa) {
          list.cols = data::build_categorical_columns(local_block, a, first_rid);
        } else {
          list.entries = data::build_categorical_list(local_block, a, first_rid);
        }
      }
      cat_lists.push_back(std::move(list));
    }
  }

  std::vector<ActiveNode> active;
  int level_index = 0;

  if (!resuming) {
    // Presort: sample sort every continuous list, then shift back to equal
    // fragments so per-rank load stays balanced.
    const std::vector<std::size_t> equal_sizes =
        sort::equal_partition_sizes(total_records, p);
    for (ContList& list : cont_lists) {
      if (soa) {
        list.cols = sort::sample_sort_columns(comm, std::move(list.cols));
        list.cols = sort::rebalance_columns(comm, std::move(list.cols),
                                            equal_sizes);
        list.mem = util::ScopedAllocation(comm.meter(),
                                          util::MemCategory::kAttributeLists,
                                          list.cols.size_bytes());
      } else {
        list.entries = sort::sample_sort(comm, std::move(list.entries),
                                         data::ContinuousEntryLess{});
        list.entries = sort::rebalance(comm, std::move(list.entries), equal_sizes);
        list.mem = util::ScopedAllocation(comm.meter(),
                                          util::MemCategory::kAttributeLists,
                                          list.entries.size() * sizeof(ContinuousEntry));
      }
    }
    for (CatList& list : cat_lists) {
      list.mem = util::ScopedAllocation(
          comm.meter(), util::MemCategory::kAttributeLists,
          soa ? list.cols.size_bytes()
              : list.entries.size() * sizeof(CategoricalEntry));
    }
    stats.presort_seconds = comm.vtime();

    // -----------------------------------------------------------------------
    // Root node.
    // -----------------------------------------------------------------------
    std::vector<std::int64_t> local_histogram(static_cast<std::size_t>(c), 0);
    for (const std::int32_t label : local_block.labels()) {
      if (label < 0 || label >= c) {
        throw std::invalid_argument("induce_tree_distributed: label out of range");
      }
      ++local_histogram[static_cast<std::size_t>(label)];
    }
    const std::vector<std::int64_t> root_totals =
        mp::allreduce_vec(comm, std::span<const std::int64_t>(local_histogram),
                          mp::SumOp{});

    TreeNode root;
    root.is_leaf = true;
    root.class_counts = root_totals;
    root.num_records = static_cast<std::int64_t>(total_records);
    root.majority_class = majority_class(root_totals);
    root.depth = 0;
    result.tree.add_node(std::move(root));

    if (!is_pure(root_totals) &&
        static_cast<std::int64_t>(total_records) >= options.min_split_records &&
        options.max_depth > 0) {
      ActiveNode node;
      node.tree_id = 0;
      node.depth = 0;
      node.total = static_cast<std::int64_t>(total_records);
      node.class_totals = root_totals;
      active.push_back(std::move(node));
    }

    for (ContList& list : cont_lists) list.offsets = {0, list.size(soa)};
    for (CatList& list : cat_lists) list.offsets = {0, list.size(soa)};
  } else {
    // -----------------------------------------------------------------------
    // Resume: restore the last complete level checkpoint instead of deriving
    // the state from the training data. Rank 0 picks the level and
    // broadcasts it so every rank restores the same directory even if the
    // root changes underneath the scan.
    // -----------------------------------------------------------------------
    int latest = -1;
    if (comm.rank() == 0) {
      const std::optional<int> found = checkpoint_latest_level(ckpt_root);
      if (found) latest = *found;
    }
    latest = mp::bcast_value(comm, latest, 0);
    if (latest < 0) {
      throw CheckpointError("no complete level checkpoint under '" +
                            ckpt_root + "'");
    }
    const std::string level_dir = checkpoint_level_dir(ckpt_root, latest);
    const CheckpointManifest manifest = checkpoint_read_manifest(level_dir);
    if (manifest.level != latest) {
      throw CheckpointError("manifest level disagrees with its directory name");
    }
    if (!controls.checkpoint.rank_weights.empty() &&
        controls.checkpoint.rank_weights.size() !=
            static_cast<std::size_t>(p)) {
      throw CheckpointError(
          "rank_weights has " +
          std::to_string(controls.checkpoint.rank_weights.size()) +
          " entries but the world has " + std::to_string(p) + " ranks");
    }
    // A weighted re-tile is a repartition even at the checkpoint's own rank
    // count: the per-rank fast path below would reload the uniform layout.
    const bool weighted = controls.checkpoint.weighted();
    const bool repartition = manifest.ranks != p || weighted;
    if (repartition && !controls.checkpoint.allow_repartition) {
      throw CheckpointError(
          weighted ? "rank_weights require allow_repartition"
                   : "checkpoint was written by " +
                         std::to_string(manifest.ranks) +
                         " ranks; resuming with " + std::to_string(p));
    }
    if (manifest.total_records != total_records ||
        manifest.num_classes != c || manifest.fingerprint != fp) {
      throw CheckpointError(
          "checkpoint parameters do not match this run "
          "(schema/options/total changed since the checkpoint was written)");
    }

    // On a grow resume the fresh joiners first pass the capability
    // handshake: each must present the same checkpoint fingerprint and
    // dataset geometry rank 0 is restoring against, or the run aborts
    // before any partition is handed to a bad joiner. This runs whether or
    // not the world size changed — survivors + joiners can land back on the
    // checkpoint's world, which resumes without repartitioning but still
    // admits fresh ranks.
    mp::JoinCapability capability;
    capability.fingerprint = fp;
    capability.total_records = static_cast<std::int64_t>(total_records);
    capability.num_attributes =
        static_cast<std::int32_t>(cont_lists.size() + cat_lists.size());
    capability.layout = soa ? 1 : 0;
    (void)mp::join_handshake(comm, capability);

    result.tree = checkpoint_read_tree(level_dir, manifest);

    const std::vector<std::int64_t> flat =
        checkpoint_read_active(level_dir, manifest);
    const std::size_t stride = 3 + static_cast<std::size_t>(c);
    if (flat.size() % stride != 0) {
      throw CheckpointError("active.bin has a bad record stride");
    }
    active.reserve(flat.size() / stride);
    for (std::size_t i = 0; i < flat.size() / stride; ++i) {
      const std::int64_t* rec = flat.data() + i * stride;
      ActiveNode node;
      node.tree_id = static_cast<int>(rec[0]);
      node.depth = static_cast<int>(rec[1]);
      node.total = rec[2];
      node.class_totals.assign(rec + 3, rec + 3 + c);
      if (node.tree_id < 0 || node.tree_id >= result.tree.num_nodes()) {
        throw CheckpointError("active node references a missing tree node");
      }
      active.push_back(std::move(node));
    }

    if (!repartition) {
      CheckpointRankReader reader(level_dir, comm.rank());
      const auto restore_offsets = [&](std::vector<std::uint64_t> raw,
                                       std::size_t num_entries) {
        std::vector<std::size_t> offsets(raw.begin(), raw.end());
        if (offsets.size() != active.size() + 1 || offsets.front() != 0 ||
            offsets.back() != num_entries ||
            !std::is_sorted(offsets.begin(), offsets.end())) {
          throw CheckpointError("restored segment offsets are inconsistent");
        }
        return offsets;
      };
      for (std::size_t li = 0; li < cont_lists.size(); ++li) {
        ContList& list = cont_lists[li];
        const std::string tag = "cont" + std::to_string(li);
        // Checkpoint sections are always AoS entries (the layouts share one
        // on-disk format); under SoA convert on the way in.
        list.entries = reader.read_section<ContinuousEntry>(tag);
        list.offsets = restore_offsets(
            reader.read_section<std::uint64_t>(tag + "_off"), list.entries.size());
        if (soa) {
          list.cols = data::columns_from_entries(
              std::span<const ContinuousEntry>(list.entries));
          list.entries.clear();
          list.entries.shrink_to_fit();
        }
        list.mem = util::ScopedAllocation(
            comm.meter(), util::MemCategory::kAttributeLists,
            soa ? list.cols.size_bytes()
                : list.entries.size() * sizeof(ContinuousEntry));
      }
      for (std::size_t li = 0; li < cat_lists.size(); ++li) {
        CatList& list = cat_lists[li];
        const std::string tag = "cat" + std::to_string(li);
        list.entries = reader.read_section<CategoricalEntry>(tag);
        list.offsets = restore_offsets(
            reader.read_section<std::uint64_t>(tag + "_off"), list.entries.size());
        if (soa) {
          list.cols = data::columns_from_entries(
              std::span<const CategoricalEntry>(list.entries));
          list.entries.clear();
          list.entries.shrink_to_fit();
        }
        list.mem = util::ScopedAllocation(
            comm.meter(), util::MemCategory::kAttributeLists,
            soa ? list.cols.size_bytes()
                : list.entries.size() * sizeof(CategoricalEntry));
      }
    } else {
      // Shrink/grow restore: repartition every list written by
      // manifest.ranks ranks across the current p ranks, preserving each
      // node's globally sorted segment (see core/elastic_restore.hpp). The
      // node table below is rebuilt for the current world every run, so its
      // shard moves implicitly.
      for (std::size_t li = 0; li < cont_lists.size(); ++li) {
        ContList& list = cont_lists[li];
        RestoredList<ContinuousEntry> restored =
            elastic_restore_list<ContinuousEntry>(
                comm, level_dir, manifest.ranks,
                "cont" + std::to_string(li), active.size(),
                weighted ? std::span<const double>(
                               controls.checkpoint.rank_weights)
                         : std::span<const double>{});
        list.offsets = std::move(restored.offsets);
        if (soa) {
          list.cols = data::columns_from_entries(
              std::span<const ContinuousEntry>(restored.entries));
        } else {
          list.entries = std::move(restored.entries);
        }
        list.mem = util::ScopedAllocation(
            comm.meter(), util::MemCategory::kAttributeLists,
            soa ? list.cols.size_bytes()
                : list.entries.size() * sizeof(ContinuousEntry));
      }
      for (std::size_t li = 0; li < cat_lists.size(); ++li) {
        CatList& list = cat_lists[li];
        RestoredList<CategoricalEntry> restored =
            elastic_restore_list<CategoricalEntry>(
                comm, level_dir, manifest.ranks,
                "cat" + std::to_string(li), active.size(),
                weighted ? std::span<const double>(
                               controls.checkpoint.rank_weights)
                         : std::span<const double>{});
        list.offsets = std::move(restored.offsets);
        if (soa) {
          list.cols = data::columns_from_entries(
              std::span<const CategoricalEntry>(restored.entries));
        } else {
          list.entries = std::move(restored.entries);
        }
        list.mem = util::ScopedAllocation(
            comm.meter(), util::MemCategory::kAttributeLists,
            soa ? list.cols.size_bytes()
                : list.entries.size() * sizeof(CategoricalEntry));
      }
    }
    level_index = latest;
    stats.levels = latest;
  }

  // Splitting-phase state. ScalParC keeps the rid -> child mapping in a
  // distributed node table (O(N/p) per rank); the SPRINT baseline replicates
  // the full mapping on every rank (O(N) per rank).
  const bool replicated =
      controls.strategy == SplittingStrategy::kReplicatedHash;
  std::optional<NodeTable> node_table;
  std::vector<std::int32_t> replicated_child;
  std::vector<std::uint32_t> replicated_epoch_of;
  std::uint32_t replicated_epoch = 0;
  util::ScopedAllocation replicated_mem;
  if (replicated) {
    replicated_child.assign(total_records, -1);
    replicated_epoch_of.assign(total_records, 0);
    replicated_mem = util::ScopedAllocation(
        comm.meter(), util::MemCategory::kNodeTable,
        total_records * (sizeof(std::int32_t) + sizeof(std::uint32_t)));
  } else {
    node_table.emplace(comm, total_records);
  }
  const std::int64_t default_block = static_cast<std::int64_t>(
      (total_records + static_cast<std::uint64_t>(p) - 1) /
      static_cast<std::uint64_t>(p));
  const std::int64_t update_block = options.node_table_update_block == 0
                                        ? default_block
                                        : options.node_table_update_block;

  struct ReplicatedUpdate {
    std::int64_t rid = 0;
    std::int32_t child = 0;
    std::int32_t pad = 0;
  };
  const auto publish_assignments = [&](std::span<const std::int64_t> rids,
                                       std::span<const std::int32_t> children) {
    if (!replicated) {
      node_table->begin_level();
      node_table->update(rids, children, update_block);
      return;
    }
    ++replicated_epoch;
    std::vector<ReplicatedUpdate> local(rids.size());
    for (std::size_t i = 0; i < rids.size(); ++i) {
      local[i] = ReplicatedUpdate{rids[i], children[i], 0};
    }
    const std::vector<ReplicatedUpdate> all = mp::allgatherv_concat(
        comm, std::span<const ReplicatedUpdate>(local));
    for (const ReplicatedUpdate& u : all) {
      replicated_child[static_cast<std::size_t>(u.rid)] = u.child;
      replicated_epoch_of[static_cast<std::size_t>(u.rid)] = replicated_epoch;
    }
    comm.add_work(static_cast<double>(local.size() + all.size()));
  };
  const auto lookup_assignments =
      [&](std::span<const std::int64_t> rids) -> std::vector<std::int32_t> {
    if (!replicated) return node_table->enquire(rids);
    std::vector<std::int32_t> out(rids.size());
    for (std::size_t i = 0; i < rids.size(); ++i) {
      const auto rid = static_cast<std::size_t>(rids[i]);
      if (replicated_epoch_of[rid] != replicated_epoch) {
        throw std::logic_error(
            "induction: record was not assigned a child this level");
      }
      out[i] = replicated_child[rid];
    }
    comm.add_work(static_cast<double>(rids.size()));
    return out;
  };

  // Per-level working storage, hoisted out of the level loop so capacity is
  // reused across levels instead of reallocated (the sizes shrink with the
  // active record count, so the first level's allocation usually suffices).
  const bool fused = options.fuse_collectives;
  mp::CollectiveBatch batch(comm);
  std::vector<std::int64_t> counts_scratch;
  std::vector<Boundary> boundary_scratch;
  std::vector<std::int64_t> local_kid_counts;
  std::vector<std::int64_t> update_rids;
  std::vector<std::int32_t> update_children;
  std::vector<std::int32_t> mapping_scratch;
  std::vector<std::int64_t> enquiry_scratch;
  std::vector<std::size_t> enquiry_begin(cont_lists.size() + cat_lists.size() +
                                         1);
  std::vector<std::uint64_t> ckpt_offsets_scratch;
  std::vector<std::int64_t> ckpt_active_scratch;
  // Checkpoint sections stay AoS entries in both layouts; under SoA the
  // columns are widened into these scratch buffers at write time.
  std::vector<ContinuousEntry> ckpt_cont_scratch;
  std::vector<CategoricalEntry> ckpt_cat_scratch;
  // Per-level arena for the variable-size regroup scratch (segment size /
  // offset / cursor arrays in PerformSplitII). reset() at each level start
  // rewinds without freeing, so after the first level these allocations are
  // pure pointer bumps — together with the hoisted vectors above and the
  // cols_next double-buffers, steady-state levels do no heap allocation.
  util::Arena level_arena;
  // Fused-round segment directories (sized by list count, fixed per run).
  std::vector<std::size_t> cont_count_segs(cont_lists.size());
  std::vector<std::size_t> cont_boundary_segs(cont_lists.size());
  std::vector<std::size_t> cat_segs(cat_lists.size());
  std::vector<std::size_t> map_segs(cat_lists.size());

  setup_span.reset();

  // -------------------------------------------------------------------------
  // Level loop.
  // -------------------------------------------------------------------------
  while (!active.empty()) {
    const std::size_t m = active.size();
    std::int64_t level_records = 0;
    for (const ActiveNode& node : active) level_records += node.total;
    const auto mm = static_cast<std::int64_t>(m);
    // Persist this level's consistent state before processing it. The write
    // is collective: rank 0 prepares the staging directory and later commits
    // it; every rank contributes its attribute-list partitions in between.
    // Barriers order the three steps so a committed level_<L> directory
    // always holds a complete, mutually consistent file set.
    if (checkpointing) {
      PhaseSpan ckpt_span(comm, "checkpoint_write", level_index, mm,
                          level_records);
      if (comm.rank() == 0) checkpoint_prepare_staging(ckpt_root, level_index);
      mp::barrier(comm);
      const std::string staging = checkpoint_staging_dir(ckpt_root, level_index);
      CheckpointRankWriter writer(staging, comm.rank());
      const auto offsets_u64 =
          [&](const std::vector<std::size_t>& offsets)
          -> const std::vector<std::uint64_t>& {
        ckpt_offsets_scratch.assign(offsets.begin(), offsets.end());
        return ckpt_offsets_scratch;
      };
      for (std::size_t li = 0; li < cont_lists.size(); ++li) {
        const std::string tag = "cont" + std::to_string(li);
        if (soa) {
          // The on-disk format is AoS entries under either layout, so
          // checkpoint files are byte-identical across layouts and a
          // checkpoint written under one resumes under the other.
          data::entries_from_columns(cont_lists[li].cols, ckpt_cont_scratch);
          writer.write_section<ContinuousEntry>(tag, ckpt_cont_scratch);
        } else {
          writer.write_section<ContinuousEntry>(tag, cont_lists[li].entries);
        }
        writer.write_section<std::uint64_t>(tag + "_off",
                                            offsets_u64(cont_lists[li].offsets));
      }
      for (std::size_t li = 0; li < cat_lists.size(); ++li) {
        const std::string tag = "cat" + std::to_string(li);
        if (soa) {
          data::entries_from_columns(cat_lists[li].cols, ckpt_cat_scratch);
          writer.write_section<CategoricalEntry>(tag, ckpt_cat_scratch);
        } else {
          writer.write_section<CategoricalEntry>(tag, cat_lists[li].entries);
        }
        writer.write_section<std::uint64_t>(tag + "_off",
                                            offsets_u64(cat_lists[li].offsets));
      }
      writer.finalize();
      if (comm.rank() == 0) {
        std::vector<std::int64_t>& flat = ckpt_active_scratch;
        flat.clear();
        flat.reserve(active.size() * (3 + static_cast<std::size_t>(c)));
        for (const ActiveNode& node : active) {
          flat.push_back(node.tree_id);
          flat.push_back(node.depth);
          flat.push_back(node.total);
          flat.insert(flat.end(), node.class_totals.begin(),
                      node.class_totals.end());
        }
        CheckpointManifest manifest;
        manifest.level = level_index;
        manifest.ranks = p;
        manifest.num_classes = c;
        manifest.total_records = total_records;
        manifest.fingerprint = fp;
        checkpoint_write_globals(staging, result.tree, flat, manifest);
      }
      mp::barrier(comm);
      if (comm.rank() == 0) checkpoint_commit(ckpt_root, level_index);
      mp::barrier(comm);
    }
    // Injected level-kills fire here — after this level's checkpoint is
    // committed — so recovery restarts exactly at the level that failed.
    comm.fault_level_boundary(level_index);

    level_arena.reset();
    const std::uint64_t level_start_bytes = comm.stats().bytes_sent;
    const auto level_start_calls = comm.stats().calls_by_op;
    const double level_start_vtime = comm.vtime();

    // ---------------- FindSplitI + FindSplitII -----------------------------
    std::vector<SplitCandidate> best(m);

    // Local class counts per (node, class) for one continuous list. Under
    // SoA the loop touches only the class stream (4B/record instead of the
    // whole 24B entry).
    const auto count_continuous = [&](const ContList& list,
                                      std::vector<std::int64_t>& local_counts) {
      local_counts.assign(m * static_cast<std::size_t>(c), 0);
      if (soa) {
        const std::int32_t* const cls = list.cols.cls.data();
        for (std::size_t i = 0; i < m; ++i) {
          std::int64_t* const row = local_counts.data() +
                                    i * static_cast<std::size_t>(c);
          for (std::size_t idx = list.offsets[i]; idx < list.offsets[i + 1];
               ++idx) {
            ++row[static_cast<std::size_t>(cls[idx])];
          }
        }
      } else {
        for (std::size_t i = 0; i < m; ++i) {
          for (const ContinuousEntry& e : segment_of(list.entries, list.offsets, i)) {
            ++local_counts[i * static_cast<std::size_t>(c) +
                           static_cast<std::size_t>(e.cls)];
          }
        }
      }
      comm.add_work(static_cast<double>(list.size(soa)));
    };
    // Boundary values: the last attribute value of each node's segment on
    // any earlier rank.
    const auto boundaries_of = [&](const ContList& list,
                                   std::vector<Boundary>& boundary) {
      boundary.assign(m, Boundary{});
      for (std::size_t i = 0; i < m; ++i) {
        if (list.offsets[i + 1] == list.offsets[i]) continue;
        const double last = soa ? list.cols.values[list.offsets[i + 1] - 1]
                                : list.entries[list.offsets[i + 1] - 1].value;
        boundary[i] = Boundary{last, 1};
      }
    };
    const auto scan_cont_list = [&](const ContList& list,
                                    std::span<const std::int64_t> below_start,
                                    std::span<const Boundary> prev) {
      for (std::size_t i = 0; i < m; ++i) {
        const auto below = below_start.subspan(i * static_cast<std::size_t>(c),
                                               static_cast<std::size_t>(c));
        std::size_t work;
        if (soa) {
          IncrementalImpurityScanner scanner(active[i].class_totals, below,
                                             options.criterion);
          work = scan_continuous_columns(
              list.cols, list.offsets[i], list.offsets[i + 1], scanner,
              prev[i].has != 0, prev[i].value,
              static_cast<std::int32_t>(list.attribute), best[i]);
        } else {
          BinaryImpurityScanner scanner(active[i].class_totals, below,
                                        options.criterion);
          work = scan_continuous_segment(
              segment_of(list.entries, list.offsets, i), scanner,
              prev[i].has != 0, prev[i].value,
              static_cast<std::int32_t>(list.attribute), best[i]);
        }
        comm.add_work(static_cast<double>(work));
      }
    };

    if (fused) {
      // One packed exscan carries every continuous list's count matrices AND
      // boundary elements: 2A collectives fuse into 1.
      std::optional<PhaseSpan> phase(std::in_place, comm, "findsplit_i",
                                     level_index, mm, level_records);
      batch.reset();
      for (std::size_t li = 0; li < cont_lists.size(); ++li) {
        count_continuous(cont_lists[li], counts_scratch);
        cont_count_segs[li] = batch.add<std::int64_t>(
            std::span<const std::int64_t>(counts_scratch), mp::SumOp{},
            std::int64_t{0});
        boundaries_of(cont_lists[li], boundary_scratch);
        cont_boundary_segs[li] = batch.add<Boundary>(
            std::span<const Boundary>(boundary_scratch), RightmostOp{},
            Boundary{});
      }
      phase->set_bytes(static_cast<std::int64_t>(batch.packed_bytes()));
      util::ScopedAllocation counts_mem(comm.meter(),
                                        util::MemCategory::kCountMatrices,
                                        2 * batch.packed_bytes());
      batch.exscan();
      phase.emplace(comm, "findsplit_ii", level_index, mm, level_records);
      for (std::size_t li = 0; li < cont_lists.size(); ++li) {
        scan_cont_list(cont_lists[li],
                       batch.view<std::int64_t>(cont_count_segs[li]),
                       batch.view<Boundary>(cont_boundary_segs[li]));
      }
    } else {
      for (ContList& list : cont_lists) {
        std::optional<PhaseSpan> phase(std::in_place, comm, "findsplit_i",
                                       level_index, mm, level_records);
        count_continuous(list, counts_scratch);
        util::ScopedAllocation counts_mem(
            comm.meter(), util::MemCategory::kCountMatrices,
            2 * counts_scratch.size() * sizeof(std::int64_t));
        const std::vector<std::int64_t> below_start = mp::exscan_vec(
            comm, std::span<const std::int64_t>(counts_scratch), mp::SumOp{},
            std::int64_t{0});
        boundaries_of(list, boundary_scratch);
        const std::vector<Boundary> prev = mp::exscan_vec(
            comm, std::span<const Boundary>(boundary_scratch), RightmostOp{},
            Boundary{});
        phase.emplace(comm, "findsplit_ii", level_index, mm, level_records);
        scan_cont_list(list, below_start, prev);
      }
    }

    const bool all_ranks =
        options.categorical_reduction == CategoricalReduction::kAllRanks;
    const auto count_categorical = [&](const CatList& list,
                                       std::vector<std::int64_t>& local_counts) {
      const std::size_t card = static_cast<std::size_t>(list.cardinality);
      local_counts.assign(m * card * static_cast<std::size_t>(c), 0);
      if (soa) {
        const std::int32_t* const values = list.cols.values.data();
        const std::int32_t* const cls = list.cols.cls.data();
        for (std::size_t i = 0; i < m; ++i) {
          std::int64_t* const block =
              local_counts.data() + i * card * static_cast<std::size_t>(c);
          for (std::size_t idx = list.offsets[i]; idx < list.offsets[i + 1];
               ++idx) {
            ++block[static_cast<std::size_t>(values[idx]) *
                        static_cast<std::size_t>(c) +
                    static_cast<std::size_t>(cls[idx])];
          }
        }
      } else {
        for (std::size_t i = 0; i < m; ++i) {
          for (const CategoricalEntry& e : segment_of(list.entries, list.offsets, i)) {
            ++local_counts[(i * card + static_cast<std::size_t>(e.value)) *
                               static_cast<std::size_t>(c) +
                           static_cast<std::size_t>(e.cls)];
          }
        }
      }
      comm.add_work(static_cast<double>(list.size(soa)));
    };
    // Evaluates one categorical list's candidates from list.global_counts
    // (callable only where the global matrices live: coordinator or, with
    // kAllRanks, everywhere).
    const auto eval_categorical = [&](CatList& list) {
      const std::size_t card = static_cast<std::size_t>(list.cardinality);
      for (std::size_t i = 0; i < m; ++i) {
        const CountMatrix matrix = CountMatrix::from_flat(
            list.cardinality, c,
            std::span<const std::int64_t>(list.global_counts)
                .subspan(i * card * static_cast<std::size_t>(c),
                         card * static_cast<std::size_t>(c)));
        const SplitCandidate candidate = best_categorical_split(
            matrix, static_cast<std::int32_t>(list.attribute),
            options.categorical_split, options.criterion);
        if (candidate_less(candidate, best[i])) best[i] = candidate;
      }
    };

    if (fused) {
      // One packed round makes every categorical list's count matrices
      // global: A collectives fuse into 1 (reduce_rooted carries each
      // matrix to its own coordinator; allreduce replicates them all).
      std::optional<PhaseSpan> phase(std::in_place, comm, "findsplit_i",
                                     level_index, mm, level_records);
      batch.reset();
      for (std::size_t li = 0; li < cat_lists.size(); ++li) {
        count_categorical(cat_lists[li], counts_scratch);
        cat_segs[li] = batch.add<std::int64_t>(
            std::span<const std::int64_t>(counts_scratch), mp::SumOp{},
            std::int64_t{0}, all_ranks ? 0 : cat_lists[li].coordinator);
      }
      phase->set_bytes(static_cast<std::int64_t>(batch.packed_bytes()));
      util::ScopedAllocation counts_mem(comm.meter(),
                                        util::MemCategory::kCountMatrices,
                                        batch.packed_bytes());
      if (all_ranks) {
        batch.allreduce();
      } else {
        batch.reduce_rooted();
      }
      phase.emplace(comm, "findsplit_ii", level_index, mm, level_records);
      for (std::size_t li = 0; li < cat_lists.size(); ++li) {
        CatList& list = cat_lists[li];
        if (all_ranks || comm.rank() == list.coordinator) {
          list.global_counts = batch.take<std::int64_t>(cat_segs[li]);
          eval_categorical(list);
        } else {
          list.global_counts.clear();
        }
      }
    } else {
      for (CatList& list : cat_lists) {
        std::optional<PhaseSpan> phase(std::in_place, comm, "findsplit_i",
                                       level_index, mm, level_records);
        count_categorical(list, counts_scratch);
        util::ScopedAllocation counts_mem(
            comm.meter(), util::MemCategory::kCountMatrices,
            counts_scratch.size() * sizeof(std::int64_t));
        std::vector<std::int64_t> global =
            all_ranks
                ? mp::allreduce_vec(comm,
                                    std::span<const std::int64_t>(counts_scratch),
                                    mp::SumOp{})
                : mp::reduce_vec(comm,
                                 std::span<const std::int64_t>(counts_scratch),
                                 mp::SumOp{}, list.coordinator);
        phase.emplace(comm, "findsplit_ii", level_index, mm, level_records);
        if (all_ranks || comm.rank() == list.coordinator) {
          list.global_counts = std::move(global);
          eval_categorical(list);
        } else {
          list.global_counts.clear();
        }
      }
    }

    {
      // The min-allreduce that makes every rank agree on the winning
      // candidate per node — the closing collective of FindSplitII.
      PhaseSpan phase(comm, "findsplit_ii", level_index, mm, level_records);
      best = mp::allreduce_vec(comm, std::span<const SplitCandidate>(best),
                               CandidateMinOp{});
    }
    stats.findsplit_seconds += comm.vtime() - level_start_vtime;
    const double split_phase_start_vtime = comm.vtime();
    std::optional<PhaseSpan> split_span(std::in_place, comm, "performsplit_i",
                                        level_index, mm, level_records);

    // ---------------- Decide which nodes split -----------------------------
    std::vector<bool> will_split(m, false);
    for (std::size_t i = 0; i < m; ++i) {
      if (!best[i].valid()) continue;
      const double node_impurity =
          impurity_of_counts(active[i].class_totals, options.criterion);
      will_split[i] = best[i].gini < node_impurity - options.min_gini_improvement;
    }

    // Categorical winners need the value -> child mapping, which only the
    // attribute's coordinator can build (it holds the global matrix).
    std::vector<std::vector<std::int32_t>> value_to_child(m);
    const auto winners_of = [&](const CatList& list) {
      std::vector<std::size_t> winner_nodes;
      for (std::size_t i = 0; i < m; ++i) {
        if (will_split[i] && best[i].attribute == list.attribute) {
          winner_nodes.push_back(i);
        }
      }
      return winner_nodes;
    };
    const auto build_mappings = [&](const CatList& list,
                                    const std::vector<std::size_t>& winner_nodes,
                                    std::vector<std::int32_t>& flat) {
      const std::size_t card = static_cast<std::size_t>(list.cardinality);
      flat.clear();
      flat.reserve(winner_nodes.size() * card);
      for (const std::size_t i : winner_nodes) {
        const CountMatrix matrix = CountMatrix::from_flat(
            list.cardinality, c,
            std::span<const std::int64_t>(list.global_counts)
                .subspan(i * card * static_cast<std::size_t>(c),
                         card * static_cast<std::size_t>(c)));
        const std::vector<std::int32_t> mapping =
            best[i].kind == SplitKind::kCategoricalMultiWay
                ? value_to_child_multiway(matrix)
                : value_to_child_subset(matrix, best[i].subset);
        flat.insert(flat.end(), mapping.begin(), mapping.end());
      }
    };

    if (fused && !all_ranks) {
      // All winning mappings travel in one rooted broadcast round. The
      // winner sets and cardinalities are globally known, so every rank can
      // contribute a correctly-sized placeholder for segments it doesn't own.
      batch.reset();
      std::vector<std::vector<std::size_t>> winners(cat_lists.size());
      for (std::size_t li = 0; li < cat_lists.size(); ++li) {
        const CatList& list = cat_lists[li];
        winners[li] = winners_of(list);
        if (winners[li].empty()) continue;
        const std::size_t card = static_cast<std::size_t>(list.cardinality);
        if (comm.rank() == list.coordinator) {
          build_mappings(list, winners[li], mapping_scratch);
        } else {
          mapping_scratch.assign(winners[li].size() * card, 0);
        }
        map_segs[li] = batch.add<std::int32_t>(
            std::span<const std::int32_t>(mapping_scratch), mp::SumOp{},
            std::int32_t{0}, list.coordinator);
      }
      batch.bcast_rooted();  // no-op when no node split on a categorical
      for (std::size_t li = 0; li < cat_lists.size(); ++li) {
        if (winners[li].empty()) continue;
        const std::size_t card =
            static_cast<std::size_t>(cat_lists[li].cardinality);
        const std::span<const std::int32_t> flat =
            batch.view<std::int32_t>(map_segs[li]);
        for (std::size_t k = 0; k < winners[li].size(); ++k) {
          value_to_child[winners[li][k]].assign(
              flat.begin() + static_cast<std::ptrdiff_t>(k * card),
              flat.begin() + static_cast<std::ptrdiff_t>((k + 1) * card));
        }
      }
    } else {
      for (CatList& list : cat_lists) {
        const std::vector<std::size_t> winner_nodes = winners_of(list);
        if (winner_nodes.empty()) continue;
        const std::size_t card = static_cast<std::size_t>(list.cardinality);
        std::vector<std::int32_t> flat;
        if (all_ranks || comm.rank() == list.coordinator) {
          build_mappings(list, winner_nodes, flat);
        }
        // With the allreduce everybody already holds the mapping; otherwise
        // the coordinator distributes it.
        if (!all_ranks) mp::bcast(comm, flat, list.coordinator);
        if (flat.size() != winner_nodes.size() * card) {
          throw std::logic_error("induction: bad value_to_child broadcast");
        }
        for (std::size_t k = 0; k < winner_nodes.size(); ++k) {
          value_to_child[winner_nodes[k]].assign(
              flat.begin() + static_cast<std::ptrdiff_t>(k * card),
              flat.begin() + static_cast<std::ptrdiff_t>((k + 1) * card));
        }
      }
    }

    std::vector<int> num_children(m, 0);
    for (std::size_t i = 0; i < m; ++i) {
      if (!will_split[i]) continue;
      if (best[i].kind == SplitKind::kContinuous) {
        num_children[i] = 2;
      } else {
        num_children[i] = num_children_of(value_to_child[i]);
        if (num_children[i] < 2) {
          throw std::logic_error("induction: categorical split with <2 children");
        }
      }
    }

    // ---------------- PerformSplitI ----------------------------------------
    // Assign child slots on the splitting attributes' own lists, collect the
    // node-table updates, and count (node, child, class) locally.
    std::vector<std::size_t> kid_offset(m + 1, 0);
    for (std::size_t i = 0; i < m; ++i) {
      kid_offset[i + 1] = kid_offset[i] +
                          static_cast<std::size_t>(num_children[i]) *
                              static_cast<std::size_t>(c);
    }
    local_kid_counts.assign(kid_offset[m], 0);
    update_rids.clear();
    update_children.clear();

    for (ContList& list : cont_lists) {
      list.child.assign(list.size(soa), -1);
      for (std::size_t i = 0; i < m; ++i) {
        if (!will_split[i] || best[i].attribute != list.attribute) continue;
        const std::size_t off = list.offsets[i];
        const std::size_t len = list.offsets[i + 1] - off;
        std::span<std::int32_t> out(list.child.data() + off, len);
        if (soa) {
          assign_children_continuous(
              std::span<const double>(list.cols.values.data() + off, len),
              best[i].threshold, out);
          for (std::size_t k = 0; k < len; ++k) {
            update_rids.push_back(list.cols.rids[off + k]);
            update_children.push_back(out[k]);
            ++local_kid_counts[kid_offset[i] +
                               static_cast<std::size_t>(out[k]) *
                                   static_cast<std::size_t>(c) +
                               static_cast<std::size_t>(list.cols.cls[off + k])];
          }
        } else {
          const auto seg = segment_of(list.entries, list.offsets, i);
          assign_children_continuous(seg, best[i].threshold, out);
          for (std::size_t k = 0; k < seg.size(); ++k) {
            update_rids.push_back(seg[k].rid);
            update_children.push_back(out[k]);
            ++local_kid_counts[kid_offset[i] +
                               static_cast<std::size_t>(out[k]) *
                                   static_cast<std::size_t>(c) +
                               static_cast<std::size_t>(seg[k].cls)];
          }
        }
        comm.add_work(static_cast<double>(len));
      }
    }
    for (CatList& list : cat_lists) {
      list.child.assign(list.size(soa), -1);
      for (std::size_t i = 0; i < m; ++i) {
        if (!will_split[i] || best[i].attribute != list.attribute) continue;
        const std::size_t off = list.offsets[i];
        const std::size_t len = list.offsets[i + 1] - off;
        std::span<std::int32_t> out(list.child.data() + off, len);
        if (soa) {
          assign_children_categorical(
              std::span<const std::int32_t>(list.cols.values.data() + off, len),
              value_to_child[i], out);
          for (std::size_t k = 0; k < len; ++k) {
            update_rids.push_back(list.cols.rids[off + k]);
            update_children.push_back(out[k]);
            ++local_kid_counts[kid_offset[i] +
                               static_cast<std::size_t>(out[k]) *
                                   static_cast<std::size_t>(c) +
                               static_cast<std::size_t>(list.cols.cls[off + k])];
          }
        } else {
          const auto seg = segment_of(list.entries, list.offsets, i);
          assign_children_categorical(seg, value_to_child[i], out);
          for (std::size_t k = 0; k < seg.size(); ++k) {
            update_rids.push_back(seg[k].rid);
            update_children.push_back(out[k]);
            ++local_kid_counts[kid_offset[i] +
                               static_cast<std::size_t>(out[k]) *
                                   static_cast<std::size_t>(c) +
                               static_cast<std::size_t>(seg[k].cls)];
          }
        }
        comm.add_work(static_cast<double>(len));
      }
    }

    std::vector<std::int64_t> global_kid_counts;
    if (!local_kid_counts.empty()) {
      if (fused) {
        batch.reset();
        const std::size_t seg = batch.add<std::int64_t>(
            std::span<const std::int64_t>(local_kid_counts), mp::SumOp{});
        batch.allreduce();
        global_kid_counts = batch.take<std::int64_t>(seg);
      } else {
        global_kid_counts = mp::allreduce_vec(
            comm, std::span<const std::int64_t>(local_kid_counts), mp::SumOp{});
      }
    }

    // Create the children in the tree (identically on every rank) and build
    // the next level's active set (shared with the quantized engine).
    internal::LevelGrowth growth = internal::grow_tree_level(
        result.tree, active, best, will_split, num_children, value_to_child,
        kid_offset, global_kid_counts, c, options);
    std::vector<ActiveNode>& next_active = growth.next_active;
    std::vector<std::vector<int>>& child_slot_target =
        growth.child_slot_target;

    // Scatter this level's rid -> child assignments.
    split_span->set_bytes(static_cast<std::int64_t>(
        update_rids.size() * (sizeof(std::int64_t) + sizeof(std::int32_t))));
    publish_assignments(update_rids, update_children);
    split_span.emplace(comm, "performsplit_ii", level_index, mm,
                       level_records);

    // ---------------- PerformSplitII ---------------------------------------
    // For every list: enquire children for segments whose node split on a
    // different attribute, then rebuild the list grouped by the next level's
    // active nodes (dropping records that landed in leaves). On the fused
    // path every list's enquiry travels in ONE node-table lookup per level;
    // unfused issues one lookup (two all-to-all rounds) per list.
    const auto collect_enquiry = [&](const auto& list,
                                     std::vector<std::int64_t>& rids) {
      using Entry = std::decay_t<decltype(list.entries[0])>;
      for (std::size_t i = 0; i < m; ++i) {
        // The splitting attribute's own list was assigned in PerformSplitI.
        if (!will_split[i] || best[i].attribute == list.attribute) continue;
        if (soa) {
          for (std::size_t idx = list.offsets[i]; idx < list.offsets[i + 1];
               ++idx) {
            rids.push_back(list.cols.rids[idx]);
          }
        } else {
          for (const Entry& e : segment_of(list.entries, list.offsets, i)) {
            rids.push_back(e.rid);
          }
        }
      }
    };
    const auto apply_and_regroup = [&](auto& list,
                                       std::span<const std::int32_t> answers) {
      using Entry = std::decay_t<decltype(list.entries[0])>;
      std::size_t cursor = 0;
      for (std::size_t i = 0; i < m; ++i) {
        if (!will_split[i] || best[i].attribute == list.attribute) continue;
        for (std::size_t idx = list.offsets[i]; idx < list.offsets[i + 1]; ++idx) {
          list.child[idx] = answers[cursor++];
        }
      }
      if (cursor != answers.size()) {
        throw std::logic_error("induction: enquiry answer count mismatch");
      }

      const std::size_t old_size = list.size(soa);

      // Stable grouped placement into the next level's layout. Under SoA
      // the size/offset/cursor scratch comes from the level arena and the
      // records land in the cols_next double-buffer — no heap traffic once
      // capacities have warmed up.
      if (soa) {
        std::span<std::size_t> new_sizes =
            level_arena.alloc_zeroed<std::size_t>(next_active.size());
        for (std::size_t i = 0; i < m; ++i) {
          if (!will_split[i]) continue;
          for (std::size_t idx = list.offsets[i]; idx < list.offsets[i + 1];
               ++idx) {
            const int target =
                child_slot_target[i][static_cast<std::size_t>(list.child[idx])];
            if (target >= 0) ++new_sizes[static_cast<std::size_t>(target)];
          }
        }
        std::span<std::size_t> new_offsets =
            level_arena.alloc<std::size_t>(next_active.size() + 1);
        std::span<std::size_t> cursors =
            level_arena.alloc<std::size_t>(next_active.size());
        new_offsets[0] = 0;
        for (std::size_t t = 0; t < next_active.size(); ++t) {
          new_offsets[t + 1] = new_offsets[t] + new_sizes[t];
          cursors[t] = new_offsets[t];
        }
        list.cols_next.resize(new_offsets.empty() ? 0 : new_offsets.back());
        for (std::size_t i = 0; i < m; ++i) {
          if (!will_split[i]) continue;
          for (std::size_t idx = list.offsets[i]; idx < list.offsets[i + 1];
               ++idx) {
            const int target =
                child_slot_target[i][static_cast<std::size_t>(list.child[idx])];
            if (target >= 0) {
              list.cols_next.set(cursors[static_cast<std::size_t>(target)]++,
                                 list.cols, idx);
            }
          }
        }
        std::swap(list.cols, list.cols_next);
        list.offsets.assign(new_offsets.begin(), new_offsets.end());
        list.mem.resize(list.cols.size_bytes());
      } else {
        std::vector<std::size_t> new_sizes(next_active.size(), 0);
        for (std::size_t i = 0; i < m; ++i) {
          if (!will_split[i]) continue;
          for (std::size_t idx = list.offsets[i]; idx < list.offsets[i + 1]; ++idx) {
            const int target =
                child_slot_target[i][static_cast<std::size_t>(list.child[idx])];
            if (target >= 0) ++new_sizes[static_cast<std::size_t>(target)];
          }
        }
        std::vector<std::size_t> new_offsets = sort::offsets_from_sizes(new_sizes);
        std::vector<Entry> new_entries(new_offsets.back());
        std::vector<std::size_t> cursors(new_offsets.begin(), new_offsets.end() - 1);
        for (std::size_t i = 0; i < m; ++i) {
          if (!will_split[i]) continue;
          for (std::size_t idx = list.offsets[i]; idx < list.offsets[i + 1]; ++idx) {
            const int target =
                child_slot_target[i][static_cast<std::size_t>(list.child[idx])];
            if (target >= 0) {
              new_entries[cursors[static_cast<std::size_t>(target)]++] =
                  list.entries[idx];
            }
          }
        }
        list.entries = std::move(new_entries);
        list.offsets = std::move(new_offsets);
        list.mem.resize(list.entries.size() * sizeof(Entry));
      }
      comm.add_work(static_cast<double>(old_size));
      list.child.clear();
      list.child.shrink_to_fit();
    };

    if (fused) {
      enquiry_scratch.clear();
      std::size_t li = 0;
      for (const ContList& list : cont_lists) {
        enquiry_begin[li++] = enquiry_scratch.size();
        collect_enquiry(list, enquiry_scratch);
      }
      for (const CatList& list : cat_lists) {
        enquiry_begin[li++] = enquiry_scratch.size();
        collect_enquiry(list, enquiry_scratch);
      }
      enquiry_begin[li] = enquiry_scratch.size();
      split_span->set_bytes(static_cast<std::int64_t>(enquiry_scratch.size() *
                                                      sizeof(std::int64_t)));
      const std::vector<std::int32_t> answers =
          lookup_assignments(enquiry_scratch);
      const std::span<const std::int32_t> all(answers);
      li = 0;
      for (ContList& list : cont_lists) {
        apply_and_regroup(list, all.subspan(enquiry_begin[li],
                                            enquiry_begin[li + 1] -
                                                enquiry_begin[li]));
        ++li;
      }
      for (CatList& list : cat_lists) {
        apply_and_regroup(list, all.subspan(enquiry_begin[li],
                                            enquiry_begin[li + 1] -
                                                enquiry_begin[li]));
        ++li;
      }
    } else {
      const auto rebuild = [&](auto& list) {
        enquiry_scratch.clear();
        collect_enquiry(list, enquiry_scratch);
        const std::vector<std::int32_t> answers =
            lookup_assignments(enquiry_scratch);
        apply_and_regroup(list, answers);
      };
      for (ContList& list : cont_lists) rebuild(list);
      for (CatList& list : cat_lists) rebuild(list);
    }

    // ---------------- Level bookkeeping ------------------------------------
    split_span.reset();
    stats.performsplit_seconds += comm.vtime() - split_phase_start_vtime;
    ++stats.levels;
    if (controls.collect_level_stats) {
      PhaseSpan level_span(comm, "level_stats", level_index, mm,
                           level_records);
      LevelStats level;
      level.level = stats.levels;
      level.active_nodes = mm;
      level.active_records = level_records;
      // Count collective entries before the level-stats collectives below
      // add their own.
      std::uint64_t calls = 0;
      for (int op = 0; op < mp::kNumCommOps; ++op) {
        if (op == static_cast<int>(mp::CommOp::kPointToPoint)) continue;
        calls += comm.stats().calls_by_op[static_cast<std::size_t>(op)] -
                 level_start_calls[static_cast<std::size_t>(op)];
      }
      level.collective_calls = static_cast<std::int64_t>(calls);
      const std::uint64_t sent = comm.stats().bytes_sent - level_start_bytes;
      level.max_bytes_sent_per_rank =
          mp::allreduce_value(comm, sent, mp::MaxOp{});
      level.vtime_end = comm.vtime();
      stats.per_level.push_back(level);
    }

    // Live telemetry: publish a copy of this rank's cumulative counters so
    // the exporter can sample mid-run. The real sink is untouched; cost when
    // telemetry is off is one relaxed atomic load.
    if (telemetry::live_metrics_enabled()) {
      if (mp::MetricsSnapshot* sink = mp::metrics_sink()) {
        mp::MetricsSnapshot live = *sink;
        absorb_induction_stats(live, stats);
        mp::absorb_comm_stats(live, comm.stats());
        telemetry::publish_metrics("rank" + std::to_string(comm.rank()), live);
      }
    }

    ++level_index;
    active = std::move(next_active);
  }

  stats.total_seconds = comm.vtime();
  // Surface the phase breakdown through the unified registry when this rank
  // runs under run_ranks (the thread-local sink is bound there).
  if (mp::MetricsSnapshot* sink = mp::metrics_sink()) {
    absorb_induction_stats(*sink, stats);
  }
  return result;
}

void absorb_induction_stats(mp::MetricsSnapshot& snapshot,
                            const InductionStats& stats) {
  // The stats are SPMD-identical (or near-identical) across ranks, so every
  // family is a max-merged gauge: folding p copies yields the per-run value,
  // not p times it.
  snapshot.gauge_max("induction.presort_seconds", stats.presort_seconds);
  snapshot.gauge_max("induction.findsplit_seconds", stats.findsplit_seconds);
  snapshot.gauge_max("induction.performsplit_seconds",
                     stats.performsplit_seconds);
  snapshot.gauge_max("induction.total_seconds", stats.total_seconds);
  snapshot.gauge_max("induction.levels", static_cast<double>(stats.levels));
  snapshot.gauge_max("induction.split_mode",
                     static_cast<double>(stats.split_mode));
  std::int64_t collective_calls = 0;
  std::uint64_t max_bytes = 0;
  std::int64_t max_nodes = 0;
  std::int64_t max_records = 0;
  for (const LevelStats& level : stats.per_level) {
    collective_calls += level.collective_calls;
    max_bytes = std::max(max_bytes, level.max_bytes_sent_per_rank);
    max_nodes = std::max(max_nodes, level.active_nodes);
    max_records = std::max(max_records, level.active_records);
  }
  if (!stats.per_level.empty()) {
    snapshot.gauge_max("induction.collective_calls",
                       static_cast<double>(collective_calls));
    snapshot.gauge_max("induction.max_bytes_sent_per_rank_level",
                       static_cast<double>(max_bytes));
    snapshot.gauge_max("induction.max_active_nodes",
                       static_cast<double>(max_nodes));
    snapshot.gauge_max("induction.max_active_records",
                       static_cast<double>(max_records));
  }
}

}  // namespace scalparc::core
