// Tests for the documented extensions: the open-chaining distributed hash
// table (arbitrary keys, §3.3.1's closing remark) and decision-tree model
// persistence.
#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "core/chained_hash.hpp"
#include "core/scalparc.hpp"
#include "core/tree_io.hpp"
#include "data/synthetic.hpp"
#include "mp/runtime.hpp"
#include "util/random.hpp"

namespace scalparc {
namespace {

const mp::CostModel kZero = mp::CostModel::zero();

// ---------------------------------------------------------------------------
// DistributedChainedHashTable
// ---------------------------------------------------------------------------

struct Payload {
  std::int64_t value = 0;
};

using Chained = core::DistributedChainedHashTable<Payload>;

class ChainedHash : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(RankSweep, ChainedHash, ::testing::Values(1, 2, 3, 5, 8));

TEST_P(ChainedHash, SparseArbitraryKeysRoundTrip) {
  const int p = GetParam();
  mp::run_ranks(p, kZero, [p](mp::Comm& comm) {
    // Few buckets, many colliding sparse keys: chains must absorb them.
    Chained table(comm, /*num_buckets=*/17);
    std::vector<Chained::Update> updates;
    for (int i = comm.rank(); i < 120; i += p) {
      const std::int64_t key = static_cast<std::int64_t>(i) * 1000003 - 500;
      updates.push_back(Chained::Update{key, Payload{key * 2}});
    }
    table.update(updates);
    std::vector<std::int64_t> keys;
    for (int i = 0; i < 120; ++i) {
      keys.push_back(static_cast<std::int64_t>(i) * 1000003 - 500);
    }
    const auto lookups = table.enquire(keys);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      ASSERT_TRUE(lookups[i].found) << "key index " << i;
      EXPECT_EQ(lookups[i].value.value, keys[i] * 2);
    }
  });
}

TEST_P(ChainedHash, MissingKeysReportNotFound) {
  const int p = GetParam();
  mp::run_ranks(p, kZero, [](mp::Comm& comm) {
    Chained table(comm, 8);
    std::vector<Chained::Update> updates;
    if (comm.is_root()) updates.push_back(Chained::Update{42, Payload{7}});
    table.update(updates);
    const auto lookups =
        table.enquire(std::vector<std::int64_t>{42, 43, -42});
    EXPECT_TRUE(lookups[0].found);
    EXPECT_EQ(lookups[0].value.value, 7);
    EXPECT_FALSE(lookups[1].found);
    EXPECT_FALSE(lookups[2].found);
  });
}

TEST_P(ChainedHash, InsertOrAssignOverwrites) {
  const int p = GetParam();
  mp::run_ranks(p, kZero, [](mp::Comm& comm) {
    Chained table(comm, 4);
    std::vector<Chained::Update> first;
    std::vector<Chained::Update> second;
    if (comm.is_root()) {
      first.push_back(Chained::Update{99, Payload{1}});
      second.push_back(Chained::Update{99, Payload{2}});
    }
    table.update(first);
    table.update(second);
    const auto lookups = table.enquire(std::vector<std::int64_t>{99});
    EXPECT_EQ(lookups[0].value.value, 2);
    // No duplicate chain entries.
    const std::uint64_t entries = mp::allreduce_value(
        comm, static_cast<std::uint64_t>(table.local_entries()), mp::SumOp{});
    EXPECT_EQ(entries, 1u);
  });
}

TEST_P(ChainedHash, BlockedUpdatesEquivalent) {
  const int p = GetParam();
  mp::run_ranks(p, kZero, [](mp::Comm& comm) {
    Chained table(comm, 32);
    std::vector<Chained::Update> updates;
    if (comm.rank() == 0) {
      for (std::int64_t i = 0; i < 100; ++i) {
        updates.push_back(Chained::Update{i * 7919, Payload{i}});
      }
    }
    table.update(updates, /*block_limit=*/9);
    std::vector<std::int64_t> keys;
    for (std::int64_t i = 0; i < 100; ++i) keys.push_back(i * 7919);
    const auto lookups = table.enquire(keys);
    for (std::int64_t i = 0; i < 100; ++i) {
      ASSERT_TRUE(lookups[static_cast<std::size_t>(i)].found);
      EXPECT_EQ(lookups[static_cast<std::size_t>(i)].value.value, i);
    }
  });
}

TEST_P(ChainedHash, MatchesSerialMapUnderRandomWorkload) {
  const int p = GetParam();
  // Serial oracle computed identically on all ranks.
  std::map<std::int64_t, std::int64_t> oracle;
  util::Rng rng(404);
  std::vector<Chained::Update> all_updates;
  for (int i = 0; i < 500; ++i) {
    const auto key = static_cast<std::int64_t>(rng.next_int(-1000, 1000));
    const auto value = static_cast<std::int64_t>(rng.next_int(0, 1 << 20));
    all_updates.push_back(Chained::Update{key, Payload{value}});
    oracle[key] = value;
  }
  mp::run_ranks(p, kZero, [&](mp::Comm& comm) {
    Chained table(comm, 64);
    // Round-robin the update stream over ranks but preserve relative order
    // per key by splitting into sequential batches (later batches win).
    for (std::size_t begin = 0; begin < all_updates.size(); begin += 100) {
      std::vector<Chained::Update> mine;
      for (std::size_t i = begin; i < std::min(begin + 100, all_updates.size());
           ++i) {
        if (static_cast<int>(i) % comm.size() == comm.rank()) {
          mine.push_back(all_updates[i]);
        }
      }
      // One batch per round; within a batch each key appears at most once
      // per rank, and across rounds later rounds overwrite earlier ones.
      table.update(mine);
    }
    std::vector<std::int64_t> keys;
    for (const auto& [key, value] : oracle) keys.push_back(key);
    const auto lookups = table.enquire(keys);
    std::size_t i = 0;
    std::size_t matches = 0;
    for (const auto& [key, value] : oracle) {
      ASSERT_TRUE(lookups[i].found) << "key " << key;
      matches += lookups[i].value.value == value;
      ++i;
    }
    // Keys written exactly once must match the oracle; rewritten keys may
    // legitimately hold any of their written values when two ranks write the
    // same key in the same round, so only require a large majority here.
    EXPECT_GT(matches, oracle.size() * 3 / 4);
  });
}

TEST(ChainedHash, RejectsZeroBuckets) {
  EXPECT_THROW(mp::run_ranks(2, kZero,
                             [](mp::Comm& comm) { Chained table(comm, 0); }),
               std::invalid_argument);
}

TEST(ChainedHash, MixKeyScattersDenseKeys) {
  // Dense keys must spread across buckets (unlike identity hashing).
  std::vector<int> histogram(16, 0);
  for (std::int64_t key = 0; key < 1600; ++key) {
    ++histogram[core::mix_key(static_cast<std::uint64_t>(key)) % 16];
  }
  for (const int count : histogram) {
    EXPECT_GT(count, 50);
    EXPECT_LT(count, 150);
  }
}

// ---------------------------------------------------------------------------
// Tree persistence
// ---------------------------------------------------------------------------

core::DecisionTree trained_tree(data::LabelFunction function, int attrs) {
  data::GeneratorConfig config;
  config.seed = 11;
  config.function = function;
  config.num_attributes = attrs;
  const data::QuestGenerator generator(config);
  return core::ScalParC::fit(generator.generate(0, 400), 2).tree;
}

TEST(TreeIo, RoundTripContinuousAndCategoricalSplits) {
  const core::DecisionTree original = trained_tree(data::LabelFunction::kF3, 7);
  std::stringstream buffer;
  core::save_tree(original, buffer);
  const core::DecisionTree loaded = core::load_tree(buffer);
  EXPECT_TRUE(original.same_structure(loaded));
  EXPECT_TRUE(original.schema() == loaded.schema());
}

TEST(TreeIo, LoadedTreePredictsIdentically) {
  data::GeneratorConfig config;
  config.seed = 11;
  config.function = data::LabelFunction::kF2;
  const data::QuestGenerator generator(config);
  const data::Dataset training = generator.generate(0, 300);
  const core::DecisionTree original = core::ScalParC::fit(training, 3).tree;
  std::stringstream buffer;
  core::save_tree(original, buffer);
  const core::DecisionTree loaded = core::load_tree(buffer);
  const data::Dataset holdout = generator.generate(100000, 500);
  for (std::size_t row = 0; row < holdout.num_records(); ++row) {
    ASSERT_EQ(original.predict(holdout, row), loaded.predict(holdout, row));
  }
}

TEST(TreeIo, ThresholdsAreExact) {
  // Hex serialization must round-trip awkward doubles exactly.
  data::Schema schema({data::Schema::continuous("x")}, 2);
  core::DecisionTree tree(schema);
  core::TreeNode root;
  root.is_leaf = false;
  root.num_records = 2;
  root.class_counts = {1, 1};
  root.split.attribute = 0;
  root.split.kind = data::AttributeKind::kContinuous;
  root.split.threshold = 0.1 + 0.2;  // 0.30000000000000004
  root.split.num_children = 2;
  tree.add_node(root);
  core::TreeNode leaf;
  leaf.num_records = 1;
  leaf.class_counts = {1, 0};
  leaf.depth = 1;
  tree.node(0).children = {tree.add_node(leaf), tree.add_node(leaf)};

  std::stringstream buffer;
  core::save_tree(tree, buffer);
  const core::DecisionTree loaded = core::load_tree(buffer);
  EXPECT_EQ(loaded.node(0).split.threshold, 0.1 + 0.2);
}

TEST(TreeIo, SingleLeafTree) {
  data::Schema schema({data::Schema::continuous("x")}, 2);
  core::DecisionTree tree(schema);
  core::TreeNode root;
  root.is_leaf = true;
  root.majority_class = 1;
  root.num_records = 5;
  root.class_counts = {0, 5};
  tree.add_node(root);
  std::stringstream buffer;
  core::save_tree(tree, buffer);
  const core::DecisionTree loaded = core::load_tree(buffer);
  EXPECT_TRUE(tree.same_structure(loaded));
}

TEST(TreeIo, RejectsBadHeader) {
  std::stringstream bad("not-a-tree\n");
  EXPECT_THROW((void)core::load_tree(bad), std::runtime_error);
}

TEST(TreeIo, RejectsTruncatedInput) {
  const core::DecisionTree original = trained_tree(data::LabelFunction::kF1, 7);
  std::stringstream buffer;
  core::save_tree(original, buffer);
  std::string text = buffer.str();
  text.resize(text.size() / 2);
  std::stringstream truncated(text);
  EXPECT_THROW((void)core::load_tree(truncated), std::runtime_error);
}

TEST(TreeIo, RejectsChildIdOutOfRange) {
  std::stringstream bad(
      "scalparc-tree v1\n"
      "classes 2\n"
      "attr x cont\n"
      "nodes 1\n"
      "node 0 cont 0 2 0 1 1 0 0x1p+0 5 6\n");  // children 5,6 out of range
  EXPECT_THROW((void)core::load_tree(bad), std::runtime_error);
}

TEST(TreeIo, RejectsSelfReference) {
  std::stringstream bad(
      "scalparc-tree v1\n"
      "classes 2\n"
      "attr x cont\n"
      "nodes 3\n"
      "node 0 cont 0 2 0 1 1 0 0x1p+0 0 2\n"  // child 0 == parent 0
      "node 1 leaf 1 1 0 1 0\n"
      "node 2 leaf 1 1 1 0 1\n");
  EXPECT_THROW((void)core::load_tree(bad), std::runtime_error);
}

TEST(TreeIo, RejectsBackEdgeCycle) {
  std::stringstream bad(
      "scalparc-tree v1\n"
      "classes 2\n"
      "attr x cont\n"
      "nodes 3\n"
      "node 0 cont 0 2 0 1 1 0 0x1p+0 1 2\n"
      "node 1 cont 1 1 0 1 0 0 0x1p+1 0 2\n"  // back-edge to the root
      "node 2 leaf 1 1 1 0 1\n");
  EXPECT_THROW((void)core::load_tree(bad), std::runtime_error);
}

TEST(TreeIo, RejectsSharedSubtree) {
  std::stringstream bad(
      "scalparc-tree v1\n"
      "classes 2\n"
      "attr x cont\n"
      "nodes 4\n"
      "node 0 cont 0 4 0 2 2 0 0x1p+0 1 2\n"
      "node 1 cont 1 2 0 1 1 0 0x1p+1 3 3\n"  // node 3 claimed twice
      "node 2 leaf 1 1 1 0 1\n"
      "node 3 leaf 2 1 0 1 0\n");
  EXPECT_THROW((void)core::load_tree(bad), std::runtime_error);
}

TEST(TreeIo, RejectsOrphanNode) {
  std::stringstream bad(
      "scalparc-tree v1\n"
      "classes 2\n"
      "attr x cont\n"
      "nodes 2\n"
      "node 0 leaf 0 1 0 1 0\n"
      "node 1 leaf 1 1 1 0 1\n");  // nothing references node 1
  EXPECT_THROW((void)core::load_tree(bad), std::runtime_error);
}

TEST(TreeIo, RejectsNodeCountShortfall) {
  std::stringstream bad(
      "scalparc-tree v1\n"
      "classes 2\n"
      "attr x cont\n"
      "nodes 3\n"
      "node 0 cont 0 2 0 1 1 0 0x1p+0 1 2\n"
      "node 1 leaf 1 1 0 1 0\n");  // count says 3, file ends at 2
  EXPECT_THROW((void)core::load_tree(bad), std::runtime_error);
}

TEST(TreeIo, RejectsTrailingNodesBeyondDeclaredCount) {
  const core::DecisionTree original = trained_tree(data::LabelFunction::kF1, 7);
  std::stringstream buffer;
  core::save_tree(original, buffer);
  std::string text = buffer.str();
  text += "node 9999 leaf 1 1 0 1 0\n";  // one more node than declared
  std::stringstream padded(text);
  EXPECT_THROW((void)core::load_tree(padded), std::runtime_error);
}

TEST(TreeIo, RejectsSplitKindMismatchingAttributeKind) {
  std::stringstream bad(
      "scalparc-tree v1\n"
      "classes 2\n"
      "attr color cat 3\n"
      "nodes 3\n"
      "node 0 cont 0 2 0 1 1 0 0x1p+0 1 2\n"  // cont split on cat attr
      "node 1 leaf 1 1 0 1 0\n"
      "node 2 leaf 1 1 1 0 1\n");
  EXPECT_THROW((void)core::load_tree(bad), std::runtime_error);
}

TEST(TreeIo, RejectsValueToChildSlotOutOfRange) {
  std::stringstream bad(
      "scalparc-tree v1\n"
      "classes 2\n"
      "attr color cat 3\n"
      "nodes 3\n"
      "node 0 cat 0 2 0 1 1 0 2 0 1 5 1 2\n"  // slot 5 >= num_children 2
      "node 1 leaf 1 1 0 1 0\n"
      "node 2 leaf 1 1 1 0 1\n");
  EXPECT_THROW((void)core::load_tree(bad), std::runtime_error);
}

TEST(TreeIo, ErrorsNameTheOffendingLine) {
  std::stringstream bad(
      "scalparc-tree v1\n"
      "classes 2\n"
      "attr x cont\n"
      "nodes 3\n"
      "node 0 cont 0 2 0 1 1 0 0x1p+0 1 2\n"
      "node 1 leaf 1 1 0 1 0\n"
      "node 2 leaf 1 1 1 0 1 junk\n");  // trailing field on line 7
  try {
    (void)core::load_tree(bad);
    FAIL() << "load_tree accepted a malformed snapshot";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("(line 7)"), std::string::npos)
        << e.what();
  }
}

TEST(TreeIo, ChildIdFuzzNeverCrashes) {
  // Sweep one child id of a real saved model through every interesting
  // value: each variant must either load as a structurally valid tree or
  // throw — never hang, crash, or load a graph with a cycle.
  const core::DecisionTree original = trained_tree(data::LabelFunction::kF3, 7);
  std::stringstream buffer;
  core::save_tree(original, buffer);
  const std::string text = buffer.str();
  // The first internal node's final field is a child id.
  const std::size_t line_start = text.find("\nnode 0 ");
  ASSERT_NE(line_start, std::string::npos);
  const std::size_t line_end = text.find('\n', line_start + 1);
  const std::size_t field_start = text.rfind(' ', line_end) + 1;
  int loaded_ok = 0;
  for (int child = -2; child <= original.num_nodes() + 2; ++child) {
    std::string mutated = text;
    mutated.replace(field_start, line_end - field_start,
                    std::to_string(child));
    std::stringstream in(mutated);
    try {
      const core::DecisionTree tree = core::load_tree(in);
      EXPECT_EQ(tree.num_nodes(), original.num_nodes());
      ++loaded_ok;
    } catch (const std::runtime_error&) {
      // Rejected is fine; silent acceptance of a bad id is not.
    }
  }
  // Exactly one value (the original child id) can satisfy the single-parent
  // audit; everything else must have thrown.
  EXPECT_EQ(loaded_ok, 1);
}

TEST(TreeIo, FileRoundTrip) {
  const core::DecisionTree original = trained_tree(data::LabelFunction::kF2, 7);
  const std::string path = ::testing::TempDir() + "/scalparc_tree_test.txt";
  core::save_tree_file(original, path);
  const core::DecisionTree loaded = core::load_tree_file(path);
  EXPECT_TRUE(original.same_structure(loaded));
  std::remove(path.c_str());
}

TEST(TreeIo, MissingFileThrows) {
  EXPECT_THROW((void)core::load_tree_file("/nonexistent/model.tree"),
               std::runtime_error);
}

}  // namespace
}  // namespace scalparc
