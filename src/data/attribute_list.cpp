#include "data/attribute_list.hpp"

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace scalparc::data {

std::vector<ContinuousEntry> build_continuous_list(const Dataset& block,
                                                   int attribute,
                                                   std::int64_t first_rid) {
  const auto column = block.continuous_column(attribute);
  std::vector<ContinuousEntry> list(block.num_records());
  for (std::size_t row = 0; row < block.num_records(); ++row) {
    list[row].value = column[row];
    list[row].rid = first_rid + static_cast<std::int64_t>(row);
    list[row].cls = block.label(row);
  }
  return list;
}

std::vector<CategoricalEntry> build_categorical_list(const Dataset& block,
                                                     int attribute,
                                                     std::int64_t first_rid) {
  const auto column = block.categorical_column(attribute);
  std::vector<CategoricalEntry> list(block.num_records());
  for (std::size_t row = 0; row < block.num_records(); ++row) {
    list[row].rid = first_rid + static_cast<std::int64_t>(row);
    list[row].value = column[row];
    list[row].cls = block.label(row);
  }
  return list;
}

ContinuousColumns build_continuous_columns(const Dataset& block, int attribute,
                                           std::int64_t first_rid) {
  const auto column = block.continuous_column(attribute);
  const std::size_t n = block.num_records();
  ContinuousColumns cols;
  cols.resize(n);
  for (std::size_t row = 0; row < n; ++row) {
    cols.values[row] = column[row];
    cols.rids[row] = first_rid + static_cast<std::int64_t>(row);
    cols.cls[row] = block.label(row);
  }
  return cols;
}

CategoricalColumns build_categorical_columns(const Dataset& block,
                                             int attribute,
                                             std::int64_t first_rid) {
  const auto column = block.categorical_column(attribute);
  const std::size_t n = block.num_records();
  CategoricalColumns cols;
  cols.resize(n);
  for (std::size_t row = 0; row < n; ++row) {
    cols.rids[row] = first_rid + static_cast<std::int64_t>(row);
    cols.values[row] = column[row];
    cols.cls[row] = block.label(row);
  }
  return cols;
}

ContinuousColumns columns_from_entries(
    std::span<const ContinuousEntry> entries) {
  ContinuousColumns cols;
  cols.resize(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    cols.values[i] = entries[i].value;
    cols.rids[i] = entries[i].rid;
    cols.cls[i] = entries[i].cls;
  }
  return cols;
}

CategoricalColumns columns_from_entries(
    std::span<const CategoricalEntry> entries) {
  CategoricalColumns cols;
  cols.resize(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    cols.rids[i] = entries[i].rid;
    cols.values[i] = entries[i].value;
    cols.cls[i] = entries[i].cls;
  }
  return cols;
}

void entries_from_columns(const ContinuousColumns& cols,
                          std::vector<ContinuousEntry>& out) {
  out.resize(cols.size());
  for (std::size_t i = 0; i < cols.size(); ++i) {
    out[i] = ContinuousEntry{cols.values[i], cols.rids[i], cols.cls[i], 0};
  }
}

void entries_from_columns(const CategoricalColumns& cols,
                          std::vector<CategoricalEntry>& out) {
  out.resize(cols.size());
  for (std::size_t i = 0; i < cols.size(); ++i) {
    out[i] = CategoricalEntry{cols.rids[i], cols.values[i], cols.cls[i]};
  }
}

}  // namespace scalparc::data
