// Gray-failure health monitoring: phi-accrual suspicion, adaptive timeouts
// and straggler evidence for the thread-backed SPMD runtime.
//
// The resilience stack below this header is *binary*: a rank is healthy
// until a fixed recv timeout or the deadlock detector declares it gone.
// Production clusters mostly fail in the gray zone in between — a rank that
// is alive and progressing, just persistently slower than its peers (an
// oversubscribed core, a degraded disk). Because the induction loop is
// level-synchronous, one such rank paces the entire fit.
//
// Three cooperating signals, all side-band (registry writes, never channel
// messages, so the tag discipline and the all-channels-empty invariants are
// untouched):
//
//   heartbeats   every rank stamps a per-rank lane from Comm::begin_op, from
//                each bounded wait slice of a blocking receive, and between
//                realized-work sleep chunks. A PhiAccrualEstimator over the
//                inter-heartbeat history turns silence into a continuous
//                suspicion score phi(t) = -log10 P(interval > t): phi 1 means
//                a 10% chance the rank is still fine, phi 8 a 1e-8 chance.
//
//   watermarks   the induction engines advance a per-rank progress counter
//                at phase and level boundaries, so the Hub can tell
//                slow-but-progressing (watermark moves, heartbeats flow)
//                from stuck (neither moves) — only the former is a
//                straggler; the latter stays with the deadlock/timeout/
//                rank-death classification of PR 6.
//
//   busy time    wall-clock time a rank spent *not* blocked in a receive
//                (fed by the Hub wait registry). Level-synchronous barriers
//                equalize wall time per level across ranks, so slowdown is
//                only visible in the busy-time ratio: while peers idle at a
//                collective the straggler keeps accumulating busy seconds.
//
// Per-channel inter-arrival estimators (fed by Channel::push) additionally
// derive adaptive per-channel receive timeouts from the observed latency
// distribution; the fixed RunOptions::recv_timeout_s stays as the ceiling
// (and, with adaptive timeouts off, the differential oracle).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace scalparc::mp {

// A blocking receive classified its awaited peer as a persistent straggler:
// the peer is alive (heartbeats flowing) and progressing (watermark moving)
// but sustained evidence shows it pacing the run. The run aborts so the
// recovery layer can rebalance work away from the slow rank and resume from
// the last checkpoint (RecoveryPolicy::kRebalance).
struct StragglerDetected : std::runtime_error {
  explicit StragglerDetected(const std::string& what)
      : std::runtime_error(what) {}
};

// Knobs of the gray-failure subsystem. Everything defaults to off so a
// run without explicit opt-in behaves exactly like the PR 6 runtime (the
// differential oracle for the adaptive paths).
struct HealthOptions {
  // Classify a persistently slow rank as FailureKind::kStraggler instead of
  // letting it silently pace the whole fit.
  bool detect_stragglers = false;
  // Derive per-channel receive deadlines from the observed inter-arrival
  // distribution. A tripped adaptive deadline only escalates to RecvTimeout
  // when the sender's heartbeat lane is silent too; otherwise it stretches
  // (doubling, capped by the fixed recv_timeout_s ceiling), so a clean run
  // can never fail earlier than with the fixed timeout alone.
  bool adaptive_timeouts = false;
  // Suspicion level treated as "silent": phi 8 ~ a 1e-8 chance the observed
  // gap is ordinary latency.
  double phi_threshold = 8.0;
  // Lower clamp for adaptive deadlines so a noisy estimator can never spin
  // a receive in sub-slice timeouts.
  double timeout_floor_s = 0.25;
  // Straggler evidence must hold continuously this long before classifying.
  // Must span at least one induction level of the target workload, so the
  // blocked peers' own per-level busy time lands inside the window.
  double sustain_s = 1.5;
  // A receive must have been blocked at least this long before straggler
  // evidence is acted on.
  double min_blocked_s = 0.5;
  // Busy-time ratio (suspect vs median of the other ranks, over the
  // evidence window) above which the suspect is a straggler.
  double slow_ratio = 3.0;
  // Inter-arrival history ring per estimator and the sample count below
  // which an estimator is not yet primed (no adaptive decisions).
  int window = 64;
  int min_samples = 8;

  bool monitoring() const { return detect_stragglers || adaptive_timeouts; }
  // Throws std::invalid_argument naming the offending field on any
  // non-positive / non-finite knob (parse-time hardening for CLI and env).
  void validate() const;
};

// Sliding-window phi-accrual failure estimator (Hayashibara et al.): keeps
// the last `window` inter-arrival samples, models them as a normal
// distribution and scores a silence of t seconds as
//   phi(t) = -log10( 0.5 * erfc((t - mean) / (stddev * sqrt(2))) )
// phi is continuous and monotone in t, so callers pick a threshold instead
// of a binary timeout. Not internally synchronized — guard externally (the
// mailbox feeds its estimator under the channel mutex, the registry under a
// per-rank mutex).
class PhiAccrualEstimator {
 public:
  explicit PhiAccrualEstimator(int window = 64, int min_samples = 8);

  void record(double interval_s);
  int samples() const { return count_; }
  bool primed() const { return count_ >= min_samples_; }
  double mean() const;
  // Floored at a fraction of the mean: a perfectly regular arrival stream
  // must not collapse the distribution into a zero-width spike.
  double stddev() const;
  // Suspicion after `silence_s` of silence; 0 while unprimed (no history,
  // no opinion). Capped at kMaxPhi where erfc underflows.
  double phi(double silence_s) const;
  // Smallest silence whose suspicion reaches `phi_threshold` (the adaptive
  // timeout): inverts phi by bisection. Requires primed().
  double timeout_for_phi(double phi_threshold) const;

  static constexpr double kMaxPhi = 40.0;

 private:
  int window_;
  int min_samples_;
  std::vector<double> ring_;
  int count_ = 0;
  int next_ = 0;
  double sum_ = 0.0;
  double sumsq_ = 0.0;
};

// Per-rank health state shared by all ranks of one run; owned by the Hub.
// Heartbeat stamps are atomics (hot path), the estimator and the busy-time
// ledger sit behind per-rank mutexes so rank lanes never contend with each
// other and the whole structure is ThreadSanitizer-clean.
class HealthRegistry {
 public:
  HealthRegistry(int nranks, const HealthOptions& options);

  const HealthOptions& options() const { return options_; }
  bool enabled() const { return options_.monitoring(); }

  // Full heartbeat: stamps the lane and feeds the inter-heartbeat
  // estimator. Called from comm-op boundaries and wait slices.
  void heartbeat(int rank);
  // Stamp-only heartbeat for hot compute loops (no estimator feed).
  void heartbeat_cheap(int rank);

  // Progress watermark: advanced by the induction engines at phase/level
  // boundaries. `level` is recorded for diagnostics.
  void advance_watermark(int rank, int level);

  // Busy-time ledger, driven by the Hub wait registry: busy = wall since
  // run start minus time spent blocked in receives.
  void on_blocked(int rank);
  void on_unblocked(int rank);
  void on_finished(int rank);

  // Heartbeat suspicion of `rank` right now; 0 while the estimator is
  // unprimed.
  double suspicion(int rank) const;
  // A rank is alive when its heartbeat silence scores below the phi
  // threshold (unprimed lanes fall back to a 1 s grace window).
  bool alive(int rank, double* phi_out = nullptr) const;

  struct Snapshot {
    // Wall-clock seconds since the registry (i.e. the run) started.
    double elapsed_s = 0.0;
    std::vector<std::uint64_t> watermarks;
    std::vector<double> busy_seconds;
    std::vector<char> finished;
  };
  Snapshot snapshot() const;

  std::uint64_t heartbeats_received() const {
    return heartbeats_.load(std::memory_order_relaxed);
  }
  std::uint64_t watermark_advances() const {
    return watermark_advances_.load(std::memory_order_relaxed);
  }

  // Classification result, recorded by the receive that threw
  // StragglerDetected and surfaced through RunResult.
  void note_straggler(int rank, double slowdown);
  int straggler_rank() const;
  double straggler_slowdown() const;

 private:
  struct RankLane {
    mutable std::mutex mu;
    PhiAccrualEstimator beats;
    std::atomic<std::int64_t> last_beat_ns{-1};
    std::uint64_t watermark = 0;
    int level = -1;
    double blocked_accum_s = 0.0;
    std::chrono::steady_clock::time_point blocked_since{};
    bool blocked = false;
    bool finished = false;

    explicit RankLane(const HealthOptions& options)
        : beats(options.window, options.min_samples) {}
  };

  RankLane& lane(int rank) { return *lanes_[static_cast<std::size_t>(rank)]; }
  const RankLane& lane(int rank) const {
    return *lanes_[static_cast<std::size_t>(rank)];
  }

  HealthOptions options_;
  std::chrono::steady_clock::time_point start_;
  std::vector<std::unique_ptr<RankLane>> lanes_;
  std::atomic<std::uint64_t> heartbeats_{0};
  std::atomic<std::uint64_t> watermark_advances_{0};
  mutable std::mutex straggler_mu_;
  int straggler_rank_ = -1;
  double straggler_slowdown_ = 0.0;
};

// Parse-time hardening shared by the CLI and env knobs: parses `text` as a
// strictly positive finite double, throwing std::invalid_argument that
// names `flag` and the offending value instead of silently defaulting.
double parse_positive_health_value(const std::string& flag,
                                   const std::string& text);

}  // namespace scalparc::mp
