#include "mp/comm.hpp"

#include <chrono>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "mp/fault.hpp"
#include "mp/runtime.hpp"
#include "util/crc32.hpp"

namespace scalparc::mp {

namespace {

// How long a receiver waits between deadlock-detector probes. Small enough
// that an injected deadlock resolves promptly, large enough that the probe
// never shows up in profiles of healthy runs.
constexpr std::chrono::milliseconds kRecvSlice{25};

}  // namespace

Comm::Comm(Hub& hub, int rank, const CostModel& model,
           util::MemoryMeter* meter)
    : hub_(hub), rank_(rank), model_(model), meter_(meter) {
  if (rank < 0 || rank >= hub.size()) {
    throw std::invalid_argument("Comm: rank out of range");
  }
}

int Comm::size() const { return hub_.size(); }

std::int64_t Comm::begin_op(const char* what) {
  const std::int64_t op = ++comm_ops_;
  const FaultPlan* plan = hub_.options().fault_plan;
  if (plan != nullptr) {
    const double delay = plan->delay_ms_at_op(rank_, op);
    if (delay > 0.0) {
      plan->count_delay();
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(delay));
    }
    if (plan->kills_at_op(rank_, op)) {
      plan->count_kill();
      std::ostringstream what_out;
      what_out << "injected fault: rank " << rank_ << " killed at " << what
               << " (op " << op << ")";
      throw InjectedFault(what_out.str());
    }
  }
  return op;
}

void Comm::fault_level_boundary(int level) {
  const FaultPlan* plan = hub_.options().fault_plan;
  if (plan != nullptr && plan->kills_at_level(rank_, level)) {
    plan->count_kill();
    std::ostringstream what_out;
    what_out << "injected fault: rank " << rank_ << " killed at level "
             << level << " boundary";
    throw InjectedFault(what_out.str());
  }
}

void Comm::send_payload(int dst, std::int64_t tag, Payload payload) {
  if (dst < 0 || dst >= size()) {
    throw std::invalid_argument("Comm::send_payload: destination out of range");
  }
  const std::int64_t op = begin_op("send");
  // Sender pays per-message CPU overhead; the message lands at the receiver
  // no earlier than now + wire time.
  vtime_ += model_.send_overhead_s;
  Message message;
  message.tag = tag;
  message.arrival_vtime = vtime_ + model_.wire_seconds(payload.size());
  message.payload = std::move(payload);
  // Frame checksum first, wire faults second: a corrupted payload must be
  // *detected* at the receiver, never silently mis-parsed.
  message.crc = util::crc32(message.payload.bytes());
  stats_.record_send(current_op_, message.payload.size());
  const FaultPlan* plan = hub_.options().fault_plan;
  if (plan != nullptr) {
    if (plan->drops_at_op(rank_, op)) {
      plan->count_drop();
      return;  // the wire ate it
    }
    if (plan->corrupts_at_op(rank_, op)) {
      plan->corrupt_payload(message.payload.mutable_bytes(), rank_, op);
    }
  }
  hub_.channel(rank_, dst).push(std::move(message));
}

Payload Comm::recv_payload(int src, std::int64_t tag) {
  if (src < 0 || src >= size()) {
    throw std::invalid_argument("Comm::recv_payload: source out of range");
  }
  begin_op("recv");
  Channel& channel = hub_.channel(src, rank_);
  Message message;
  if (!channel.try_pop(tag, message)) {
    // Slow path: block in bounded slices; after each expired slice consult
    // the deadlock detector and the overall per-receive timeout.
    const RunOptions& options = hub_.options();
    using clock = std::chrono::steady_clock;
    const clock::time_point start = clock::now();
    const bool bounded = options.recv_timeout_s > 0.0;
    const clock::time_point overall_deadline =
        bounded ? start + std::chrono::duration_cast<clock::duration>(
                              std::chrono::duration<double>(options.recv_timeout_s))
                : clock::time_point::max();
    hub_.mark_blocked(rank_, src, tag);
    struct Unmark {
      Hub& hub;
      int rank;
      ~Unmark() { hub.mark_unblocked(rank); }
    } unmark{hub_, rank_};
    for (;;) {
      clock::time_point slice = clock::now() + kRecvSlice;
      if (slice > overall_deadline) slice = overall_deadline;
      if (channel.try_pop_until(tag, message, slice) == Channel::PopStatus::kOk) {
        break;
      }
      if (options.detect_deadlock) {
        const std::string diag = hub_.deadlock_diagnostic();
        if (!diag.empty()) {
          hub_.poison_all();
          throw DeadlockDetected(diag);
        }
      }
      if (bounded && clock::now() >= overall_deadline) {
        std::ostringstream what_out;
        what_out << "recv timeout: rank " << rank_ << " waited "
                 << options.recv_timeout_s << "s for recv(src=" << src
                 << ", tag=" << tag << ")";
        hub_.poison_all();
        throw RecvTimeout(what_out.str());
      }
    }
  }
  if (message.crc != util::crc32(message.payload.bytes())) {
    std::ostringstream what_out;
    what_out << "corrupt message: rank " << rank_ << " recv(src=" << src
             << ", tag=" << tag << ", bytes=" << message.payload.size()
             << ") failed its CRC32 frame checksum";
    throw CorruptMessage(what_out.str());
  }
  if (message.arrival_vtime > vtime_) vtime_ = message.arrival_vtime;
  stats_.record_receive(message.payload.size());
  return std::move(message.payload);
}

}  // namespace scalparc::mp
