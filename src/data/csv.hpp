// Schema-aware CSV serialization for datasets.
//
// Format: one header line describing the columns, then one line per record.
//   header column:  <name>:cont            continuous attribute
//                   <name>:cat:<K>         categorical attribute, K values
//                   class:<C>              label column (must be last)
//   example:        salary:cont,elevel:cat:5,class:2
// Categorical values and labels are written as integer codes.
#pragma once

#include <iosfwd>
#include <string>

#include "data/dataset.hpp"

namespace scalparc::data {

void write_csv(const Dataset& dataset, std::ostream& out);
void write_csv_file(const Dataset& dataset, const std::string& path);

// Throws std::runtime_error on malformed headers or rows.
Dataset read_csv(std::istream& in);
Dataset read_csv_file(const std::string& path);

}  // namespace scalparc::data
