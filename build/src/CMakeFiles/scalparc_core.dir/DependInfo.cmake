
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/gini.cpp" "src/CMakeFiles/scalparc_core.dir/core/gini.cpp.o" "gcc" "src/CMakeFiles/scalparc_core.dir/core/gini.cpp.o.d"
  "/root/repo/src/core/induction.cpp" "src/CMakeFiles/scalparc_core.dir/core/induction.cpp.o" "gcc" "src/CMakeFiles/scalparc_core.dir/core/induction.cpp.o.d"
  "/root/repo/src/core/node_table.cpp" "src/CMakeFiles/scalparc_core.dir/core/node_table.cpp.o" "gcc" "src/CMakeFiles/scalparc_core.dir/core/node_table.cpp.o.d"
  "/root/repo/src/core/predict.cpp" "src/CMakeFiles/scalparc_core.dir/core/predict.cpp.o" "gcc" "src/CMakeFiles/scalparc_core.dir/core/predict.cpp.o.d"
  "/root/repo/src/core/pruning.cpp" "src/CMakeFiles/scalparc_core.dir/core/pruning.cpp.o" "gcc" "src/CMakeFiles/scalparc_core.dir/core/pruning.cpp.o.d"
  "/root/repo/src/core/scalparc.cpp" "src/CMakeFiles/scalparc_core.dir/core/scalparc.cpp.o" "gcc" "src/CMakeFiles/scalparc_core.dir/core/scalparc.cpp.o.d"
  "/root/repo/src/core/split_finder.cpp" "src/CMakeFiles/scalparc_core.dir/core/split_finder.cpp.o" "gcc" "src/CMakeFiles/scalparc_core.dir/core/split_finder.cpp.o.d"
  "/root/repo/src/core/splitter.cpp" "src/CMakeFiles/scalparc_core.dir/core/splitter.cpp.o" "gcc" "src/CMakeFiles/scalparc_core.dir/core/splitter.cpp.o.d"
  "/root/repo/src/core/tree.cpp" "src/CMakeFiles/scalparc_core.dir/core/tree.cpp.o" "gcc" "src/CMakeFiles/scalparc_core.dir/core/tree.cpp.o.d"
  "/root/repo/src/core/tree_io.cpp" "src/CMakeFiles/scalparc_core.dir/core/tree_io.cpp.o" "gcc" "src/CMakeFiles/scalparc_core.dir/core/tree_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/scalparc_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scalparc_sort.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scalparc_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/scalparc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
