// Point-to-point channels between ranks.
//
// Each (source, destination) pair has a dedicated FIFO channel. Sends are
// buffered (never block); receives block until a message with the requested
// tag is available. Because sends are buffered, higher-level exchange
// patterns (pairwise all-to-all, trees) cannot deadlock.
//
// If a rank dies with an exception, the runtime poisons every channel so
// that peers blocked in pop() wake up and unwind (RankAborted) instead of
// deadlocking the whole run.
//
// Receives additionally support a deadline (try_pop_until) so the runtime
// can bound every blocking wait: on expiry the Comm layer consults the Hub's
// deadlock detector and either keeps waiting, aborts the run with a per-rank
// diagnostic (DeadlockDetected), or gives up (RecvTimeout).
//
// Reliability (ack/retransmit): when enabled, every send carries a per-channel
// monotone sequence number and the sender side of the channel retains a clean
// byte copy of each unacknowledged message (bounded in-flight buffer). A
// receiver that pops a frame failing its CRC nacks it by sequence number
// (the clean copy is re-queued); a receiver whose wait times out requests a
// retransmit by tag. Accepted sequence numbers are tracked (compacted
// watermark + out-of-order set) so retransmit races and an injected
// `duplicate` fault are absorbed by dedupe instead of being delivered twice.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "mp/health.hpp"
#include "mp/message.hpp"

namespace scalparc::mp {

// Thrown out of Channel::pop when the run has been aborted by another rank.
struct RankAborted : std::runtime_error {
  RankAborted() : std::runtime_error("message-passing run aborted by a peer rank") {}
};

// A received frame whose CRC32 checksum does not match its payload.
struct CorruptMessage : std::runtime_error {
  explicit CorruptMessage(const std::string& what) : std::runtime_error(what) {}
};

// A blocking receive exceeded the configured per-receive timeout.
struct RecvTimeout : std::runtime_error {
  explicit RecvTimeout(const std::string& what) : std::runtime_error(what) {}
};

// Every unfinished rank is blocked in a receive with no deliverable message:
// the run can never make progress. Carries a per-rank diagnostic.
struct DeadlockDetected : std::runtime_error {
  explicit DeadlockDetected(const std::string& what) : std::runtime_error(what) {}
};

// Reliability counters of one channel (or an aggregate over channels).
struct ChannelStats {
  // Clean copies re-queued from the in-flight buffer (nack- or timer-driven).
  std::uint64_t retransmits = 0;
  // CRC-mismatch nacks raised by the receiver.
  std::uint64_t nacks = 0;
  // Frames discarded because their sequence number was already accepted.
  std::uint64_t duplicates = 0;

  ChannelStats& operator+=(const ChannelStats& other) {
    retransmits += other.retransmits;
    nacks += other.nacks;
    duplicates += other.duplicates;
    return *this;
  }
  std::uint64_t heal_events() const { return retransmits + duplicates; }
};

class Channel {
 public:
  enum class PopStatus { kOk, kTimeout };

  void push(Message message);

  // Blocks until a message whose tag equals `tag` is present, removes it and
  // returns it. Messages with other tags are left queued (a fast sender may
  // have already pushed messages for a later operation). Throws RankAborted
  // if the channel is poisoned while waiting.
  Message pop(std::int64_t tag);

  // Like pop, but gives up at `deadline` and returns kTimeout instead of
  // blocking forever. Still throws RankAborted on poisoning.
  PopStatus try_pop_until(std::int64_t tag, Message& out,
                          std::chrono::steady_clock::time_point deadline);

  // Non-blocking: removes and returns a matching message if one is already
  // queued. Throws RankAborted if poisoned.
  bool try_pop(std::int64_t tag, Message& out);

  // True if a message with this tag is queued (deadlock-detector probe).
  bool has_message(std::int64_t tag) const;

  // Wakes all waiters with RankAborted; subsequent pops also throw.
  void poison();

  // True if any message is queued (used by shutdown sanity checks).
  bool empty() const;

  // Removes all queued messages (post-abort hygiene) and returns how many of
  // them were genuinely undelivered. Frames whose sequence number was already
  // accepted are stale duplicates absorbed by the reliability layer — they
  // are counted into stats().duplicates, not into the return value.
  std::size_t drain();

  // --- reliability (ack/retransmit) protocol --------------------------
  // Sender side. assign_seq hands out the next per-channel sequence number;
  // record_inflight retains a clean byte copy of `message` (call it with the
  // CRC-framed message *before* wire faults are applied) in a bounded buffer
  // — when the buffer is full the oldest copy is evicted and can no longer
  // be retransmitted.
  std::uint64_t assign_seq();
  void record_inflight(const Message& message);
  void set_inflight_cap(std::size_t cap);

  // Receiver side. discard_if_duplicate returns true (and counts a dupe) if
  // `seq` was already accepted. acknowledge marks `seq` accepted and releases
  // its in-flight copy. nack_retransmit re-queues the clean copy of `seq`
  // (CRC-mismatch recovery); request_retransmit re-queues the oldest
  // unacknowledged copy with `tag` that is not currently queued (lost-message
  // recovery). Both return false when no retransmittable copy exists.
  bool discard_if_duplicate(std::uint64_t seq);
  void acknowledge(std::uint64_t seq);
  bool nack_retransmit(std::uint64_t seq);
  bool request_retransmit(std::int64_t tag);

  // Deadlock-detector probe: true if a retransmittable copy with this tag is
  // buffered, i.e. a blocked receiver can still heal the channel itself.
  bool can_retransmit(std::int64_t tag) const;

  ChannelStats stats() const;

  // --- adaptive-timeout telemetry (gray-failure subsystem) ------------
  // Every push feeds a phi-accrual estimator over the channel's message
  // inter-arrival times, so a blocked receiver can derive its deadline from
  // the observed latency distribution instead of a one-size-fits-all
  // constant. Primed means enough samples for an opinion.
  bool arrival_primed() const;
  // Seconds since the last push (0 before the first message arrives).
  double arrival_silence_s() const;
  // Smallest silence whose suspicion reaches `phi_threshold`; call only
  // when arrival_primed().
  double adaptive_timeout_s(double phi_threshold) const;

 private:
  // A clean (pre-fault) byte copy of an unacknowledged message.
  struct Inflight {
    std::uint64_t seq = 0;
    std::int64_t tag = 0;
    double arrival_vtime = 0.0;
    std::uint32_t crc = 0;
    std::vector<std::byte> bytes;
  };

  // Caller must hold mutex_. Returns true and fills `out` on a tag match.
  bool take_locked(std::int64_t tag, Message& out);
  // Caller must hold mutex_. True if `seq` is in the accepted set.
  bool accepted_locked(std::uint64_t seq) const;
  // Caller must hold mutex_. Rebuilds a Message from an in-flight copy and
  // queues it (the caller notifies ready_ after releasing the lock).
  void requeue_locked(const Inflight& copy);

  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<Message> queue_;
  bool poisoned_ = false;

  std::uint64_t next_seq_ = 0;
  std::deque<Inflight> inflight_;
  std::size_t inflight_cap_ = 64;
  // Accepted sequence numbers: everything <= watermark plus a compacted
  // out-of-order set (receives match by tag, so acceptance order can differ
  // from send order).
  std::uint64_t accepted_watermark_ = 0;
  std::set<std::uint64_t> accepted_ahead_;
  ChannelStats stats_;

  // Message inter-arrival history (guarded by mutex_, fed in push).
  PhiAccrualEstimator arrivals_;
  std::chrono::steady_clock::time_point last_arrival_{};
  bool has_arrival_ = false;
};

}  // namespace scalparc::mp
