// Elastic-membership recovery tests: the FaultSchedule grammar for
// compound (per-attempt) fault plans, the joiner capability handshake,
// grow-to-joiners recovery (byte-identical trees across every re-tile
// geometry), compound faults — a second kill during a shrink recovery, a
// kill right after a grow admit, a grow -> shrink -> grow round trip —
// recovery budgets, and the checkpoint I/O decision table (transient write
// faults heal silently, persistent ones classify as unrecoverable,
// corrupt-on-read discards the damaged level and restarts from an earlier
// one).
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/scalparc.hpp"
#include "core/tree_io.hpp"
#include "data/synthetic.hpp"
#include "mp/chaos.hpp"
#include "mp/comm.hpp"
#include "mp/fault.hpp"
#include "mp/runtime.hpp"

namespace scalparc {
namespace {

namespace fs = std::filesystem;

const mp::CostModel kZero = mp::CostModel::zero();

std::string tree_bytes(const core::DecisionTree& tree) {
  std::ostringstream out;
  core::save_tree(tree, out);
  return out.str();
}

data::Dataset make_training(std::uint64_t records, std::uint64_t seed = 3) {
  data::GeneratorConfig config;
  config.seed = seed;
  config.function = data::LabelFunction::kF2;
  config.num_attributes = 7;
  return data::QuestGenerator(config).generate(0, records);
}

struct TempDir {
  std::string path;
  explicit TempDir(const std::string& stem)
      : path((fs::temp_directory_path() /
              (stem + "_" + std::to_string(::getpid()) + "_" +
               std::to_string(counter_++)))
                 .string()) {}
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  static inline int counter_ = 0;
};

std::string what_of(const std::exception_ptr& error) {
  if (!error) return "";
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "<non-std exception>";
  }
}

// ---------------------------------------------------------------------------
// FaultSchedule grammar
// ---------------------------------------------------------------------------

TEST(FaultSchedule, ParsesPerAttemptPlans) {
  mp::FaultSchedule schedule;
  schedule.parse("kill:r=2,level=2 | kill:r=1,level=3");
  ASSERT_EQ(schedule.size(), 2);
  ASSERT_NE(schedule.plan(0), nullptr);
  EXPECT_TRUE(schedule.plan(0)->kills_at_level(2, 2));
  ASSERT_NE(schedule.plan(1), nullptr);
  EXPECT_TRUE(schedule.plan(1)->kills_at_level(1, 3));
  // Past the end the run is clean — every schedule eventually terminates.
  EXPECT_EQ(schedule.plan(2), nullptr);
  EXPECT_EQ(schedule.plan(100), nullptr);
}

TEST(FaultSchedule, EmptySegmentIsACleanAttempt) {
  mp::FaultSchedule schedule;
  schedule.parse("kill:r=0,level=1 || kill:r=1,level=2");
  ASSERT_NE(schedule.plan(0), nullptr);
  EXPECT_EQ(schedule.plan(1), nullptr);  // deliberately clean retry
  ASSERT_NE(schedule.plan(2), nullptr);
  EXPECT_TRUE(schedule.plan(2)->kills_at_level(1, 2));
}

TEST(FaultSchedule, SeedPropagatesToEveryPlan) {
  mp::FaultSchedule schedule;
  schedule.parse("corrupt:r=0,op=5 | corrupt:r=1,op=6");
  schedule.set_seed(77);
  EXPECT_EQ(schedule.plan(0)->seed(), 77u);
  EXPECT_EQ(schedule.plan(1)->seed(), 77u);
}

TEST(FaultSchedule, DiagnosticsNameTheAttempt) {
  mp::FaultSchedule schedule;
  try {
    schedule.parse("kill:r=0,level=1 | kill:r=9,level=");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("attempt 1"), std::string::npos) << what;
    EXPECT_NE(what.find("bad number"), std::string::npos) << what;
    EXPECT_NE(what.find("level="), std::string::npos) << what;
  }
}

TEST(FaultPlan, DiagnosticsPinpointEntryColumnAndField) {
  mp::FaultPlan plan;
  try {
    plan.parse("kill:r=1,op=5 ; corrupt:node=0,op=2");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("entry 2"), std::string::npos) << what;
    EXPECT_NE(what.find("col"), std::string::npos) << what;
    EXPECT_NE(what.find("unknown field 'node'"), std::string::npos) << what;
  }
}

// ---------------------------------------------------------------------------
// Joiner capability handshake
// ---------------------------------------------------------------------------

TEST(JoinHandshake, AdmitsMatchingJoiners) {
  mp::RunOptions options;
  options.prior_world = 2;
  std::atomic<int> admitted_total{0};
  const mp::RunResult run = mp::try_run_ranks(
      4, kZero,
      [&](mp::Comm& comm) {
        mp::JoinCapability capability;
        capability.fingerprint = 42;
        capability.total_records = 1000;
        capability.num_attributes = 7;
        capability.layout = 1;
        admitted_total += mp::join_handshake(comm, capability);
      },
      options);
  EXPECT_FALSE(run.failed());
  // Every rank learns the admitted count: 2 joiners x 4 ranks.
  EXPECT_EQ(admitted_total.load(), 8);
}

TEST(JoinHandshake, RejectsMismatchedCapability) {
  mp::RunOptions options;
  options.prior_world = 2;
  const mp::RunResult run = mp::try_run_ranks(
      3, kZero,
      [](mp::Comm& comm) {
        mp::JoinCapability capability;
        capability.fingerprint =
            comm.rank() >= comm.prior_world() ? 7u : 42u;  // joiner disagrees
        capability.total_records = 1000;
        capability.num_attributes = 7;
        capability.layout = 0;
        (void)mp::join_handshake(comm, capability);
      },
      options);
  EXPECT_TRUE(run.failed());
  EXPECT_EQ(run.failed_rank, 0);  // the root refuses the admit
  EXPECT_NE(run.failure_message.find("capability mismatch"),
            std::string::npos)
      << run.failure_message;
}

TEST(JoinHandshake, NoOpWithoutPriorWorld) {
  const mp::RunResult run = mp::try_run_ranks(2, kZero, [](mp::Comm& comm) {
    mp::JoinCapability capability;
    EXPECT_EQ(mp::join_handshake(comm, capability), 0);
  });
  EXPECT_FALSE(run.failed());
}

// ---------------------------------------------------------------------------
// Grow-to-joiners recovery
// ---------------------------------------------------------------------------

TEST(GrowRecovery, JoinersContinueFromCheckpointToIdenticalTree) {
  const data::Dataset training = make_training(4000);
  core::InductionControls controls;
  controls.options.max_depth = 6;
  const std::string expected =
      tree_bytes(core::ScalParC::fit(training, 4, controls).tree);

  TempDir dir("scalparc_grow");
  mp::FaultSchedule schedule;
  schedule.parse("kill:r=2,level=2");
  core::InductionControls ckpt = controls;
  ckpt.checkpoint.directory = dir.path;
  core::RecoveryControls recovery;
  recovery.policy = core::RecoveryPolicy::kGrow;
  recovery.join_ranks = 2;
  recovery.fault_schedule = &schedule;
  const core::RecoveryReport report =
      core::ScalParC::fit_with_recovery(training, 4, ckpt, recovery);
  EXPECT_EQ(report.outcome, core::RecoveryOutcome::kCompleted);
  EXPECT_EQ(report.attempts, 2);
  ASSERT_EQ(report.events.size(), 1u);
  EXPECT_EQ(report.events[0].failed_rank, 2);
  EXPECT_EQ(report.events[0].policy, core::RecoveryPolicy::kGrow);
  EXPECT_EQ(report.events[0].ranks_after, 5);  // 3 survivors + 2 joiners
  EXPECT_EQ(report.events[0].joiners, 2);
  EXPECT_EQ(report.events[0].resumed_level, 2);
  EXPECT_EQ(tree_bytes(report.fit.tree), expected);
  // The successful attempt's metrics carry the grow evidence: the admitted
  // joiners and the bytes the 4-rank checkpoint moved to re-tile onto 5.
  EXPECT_GE(report.fit.run.metrics.value("recovery.joiners_admitted", 0.0),
            2.0);
  EXPECT_GT(report.fit.run.metrics.value("recovery.retile_bytes", 0.0), 0.0);
}

// Grow matrix: kill levels x world sizes x joiner counts, including a grow
// *past* the original world (2 casualties never happen here, so new worlds
// p-1+k range from p to p+1). The tree must stay byte-identical to the
// fault-free oracle in every geometry.
TEST(GrowRecovery, GrowMatrixAcrossLevelsWorldsAndJoinerCounts) {
  const data::Dataset training = make_training(3000);
  core::InductionControls controls;
  controls.options.max_depth = 5;
  const std::string expected =
      tree_bytes(core::ScalParC::fit(training, 2, controls).tree);

  for (const int p : {2, 3}) {
    for (int level = 1; level <= 2; ++level) {
      for (const int join : {1, 2}) {
        const int victim = (level + 1) % p;
        TempDir dir("scalparc_grow_matrix");
        mp::FaultSchedule schedule;
        schedule.parse("kill:r=" + std::to_string(victim) +
                       ",level=" + std::to_string(level));
        core::InductionControls ckpt = controls;
        ckpt.checkpoint.directory = dir.path;
        core::RecoveryControls recovery;
        recovery.policy = core::RecoveryPolicy::kGrow;
        recovery.join_ranks = join;
        recovery.fault_schedule = &schedule;
        const core::RecoveryReport report =
            core::ScalParC::fit_with_recovery(training, p, ckpt, recovery);
        const std::string cell = "p=" + std::to_string(p) +
                                 " level=" + std::to_string(level) +
                                 " join=" + std::to_string(join);
        EXPECT_EQ(report.outcome, core::RecoveryOutcome::kCompleted) << cell;
        ASSERT_EQ(report.events.size(), 1u) << cell;
        EXPECT_EQ(report.events[0].policy, core::RecoveryPolicy::kGrow)
            << cell;
        EXPECT_EQ(report.events[0].ranks_after, p - 1 + join) << cell;
        EXPECT_EQ(tree_bytes(report.fit.tree), expected) << cell;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Compound faults (FaultSchedule across recovery attempts)
// ---------------------------------------------------------------------------

// A second rank dies *during* the shrink recovery; the world shrinks twice
// and the final two survivors still produce the oracle tree.
TEST(CompoundFaults, SecondKillDuringShrinkRecovery) {
  const data::Dataset training = make_training(3000);
  core::InductionControls controls;
  controls.options.max_depth = 5;
  const std::string expected =
      tree_bytes(core::ScalParC::fit(training, 4, controls).tree);

  TempDir dir("scalparc_double_kill");
  mp::FaultSchedule schedule;
  schedule.parse("kill:r=2,level=2 | kill:r=1,level=3");
  core::InductionControls ckpt = controls;
  ckpt.checkpoint.directory = dir.path;
  core::RecoveryControls recovery;
  recovery.policy = core::RecoveryPolicy::kShrink;
  recovery.fault_schedule = &schedule;
  const core::RecoveryReport report =
      core::ScalParC::fit_with_recovery(training, 4, ckpt, recovery);
  EXPECT_EQ(report.outcome, core::RecoveryOutcome::kCompleted);
  EXPECT_EQ(report.attempts, 3);
  ASSERT_EQ(report.events.size(), 2u);
  EXPECT_EQ(report.events[0].ranks_after, 3);
  EXPECT_EQ(report.events[1].ranks_after, 2);
  EXPECT_EQ(tree_bytes(report.fit.tree), expected);
}

// A joiner is admitted by a grow recovery and a rank is killed at the very
// resume level — the recovery machinery must absorb a failure immediately
// after the admit.
TEST(CompoundFaults, KillRightAfterGrowAdmit) {
  const data::Dataset training = make_training(3000);
  core::InductionControls controls;
  controls.options.max_depth = 5;
  const std::string expected =
      tree_bytes(core::ScalParC::fit(training, 3, controls).tree);

  TempDir dir("scalparc_kill_after_admit");
  mp::FaultSchedule schedule;
  schedule.parse("kill:r=1,level=2 | kill:r=2,level=2");
  core::InductionControls ckpt = controls;
  ckpt.checkpoint.directory = dir.path;
  core::RecoveryControls recovery;
  recovery.policy = core::RecoveryPolicy::kGrow;
  recovery.join_ranks = 1;
  recovery.fault_schedule = &schedule;
  const core::RecoveryReport report =
      core::ScalParC::fit_with_recovery(training, 3, ckpt, recovery);
  EXPECT_EQ(report.outcome, core::RecoveryOutcome::kCompleted);
  EXPECT_EQ(report.attempts, 3);
  ASSERT_EQ(report.events.size(), 2u);
  EXPECT_EQ(report.events[0].policy, core::RecoveryPolicy::kGrow);
  EXPECT_EQ(report.events[1].policy, core::RecoveryPolicy::kGrow);
  EXPECT_EQ(tree_bytes(report.fit.tree), expected);
}

// Per-event policy overrides: grow, then shrink, then grow again. The world
// walks 3 -> 3 -> 2 -> 2 and every membership change re-tiles correctly.
TEST(CompoundFaults, GrowShrinkGrowRoundTrip) {
  const data::Dataset training = make_training(3000);
  core::InductionControls controls;
  controls.options.max_depth = 5;
  const std::string expected =
      tree_bytes(core::ScalParC::fit(training, 3, controls).tree);

  TempDir dir("scalparc_round_trip");
  mp::FaultSchedule schedule;
  schedule.parse(
      "kill:r=0,level=1 | kill:r=1,level=2 | kill:r=0,level=3");
  core::InductionControls ckpt = controls;
  ckpt.checkpoint.directory = dir.path;
  core::RecoveryControls recovery;
  recovery.policy_sequence = {core::RecoveryPolicy::kGrow,
                              core::RecoveryPolicy::kShrink,
                              core::RecoveryPolicy::kGrow};
  recovery.join_ranks = 1;
  recovery.max_retries = 5;
  recovery.fault_schedule = &schedule;
  const core::RecoveryReport report =
      core::ScalParC::fit_with_recovery(training, 3, ckpt, recovery);
  EXPECT_EQ(report.outcome, core::RecoveryOutcome::kCompleted);
  EXPECT_EQ(report.attempts, 4);
  ASSERT_EQ(report.events.size(), 3u);
  EXPECT_EQ(report.events[0].policy, core::RecoveryPolicy::kGrow);
  EXPECT_EQ(report.events[0].ranks_after, 3);  // 2 survivors + 1 joiner
  EXPECT_EQ(report.events[1].policy, core::RecoveryPolicy::kShrink);
  EXPECT_EQ(report.events[1].ranks_after, 2);
  EXPECT_EQ(report.events[2].policy, core::RecoveryPolicy::kGrow);
  EXPECT_EQ(report.events[2].ranks_after, 2);  // 1 survivor + 1 joiner
  EXPECT_EQ(tree_bytes(report.fit.tree), expected);
}

// Corrupt and drop on the *same* channel within one level: the transport
// heals both in-band and the run completes first try, byte-identical.
TEST(CompoundFaults, CorruptAndDropOnOneChannelHealInBand) {
  const data::Dataset training = make_training(3000);
  core::InductionControls controls;
  controls.options.max_depth = 5;
  const std::string expected =
      tree_bytes(core::ScalParC::fit(training, 2, controls).tree);

  mp::FaultPlan plan;
  plan.parse("corrupt:r=0,op=6 ; drop:r=0,op=8");
  mp::RunOptions options;
  options.fault_plan = &plan;
  options.reliability.backoff_ms = 4.0;
  options.reliability.backoff_cap_ms = 40.0;
  const core::FitReport report =
      core::ScalParC::fit(training, 2, controls, kZero, options);
  EXPECT_EQ(tree_bytes(report.tree), expected);
  EXPECT_GT(report.run.transport.heal_events(), 0u);
}

// ---------------------------------------------------------------------------
// Recovery budgets (degraded-mode guardrails)
// ---------------------------------------------------------------------------

TEST(RecoveryBudget, MaxRecoveriesFailsFastWithClassifiedOutcome) {
  const data::Dataset training = make_training(2000);
  core::InductionControls controls;
  controls.options.max_depth = 4;

  TempDir dir("scalparc_budget");
  mp::FaultSchedule schedule;
  schedule.parse("kill:r=0,level=1 | kill:r=1,level=1 | kill:r=0,level=2");
  core::InductionControls ckpt = controls;
  ckpt.checkpoint.directory = dir.path;
  core::RecoveryControls recovery;
  recovery.policy = core::RecoveryPolicy::kRestart;
  recovery.max_retries = 5;
  recovery.budget.max_recoveries = 1;
  recovery.fault_schedule = &schedule;
  const core::RecoveryReport report =
      core::ScalParC::fit_with_recovery(training, 2, ckpt, recovery);
  EXPECT_EQ(report.outcome, core::RecoveryOutcome::kRecoveryBudgetExhausted);
  EXPECT_EQ(report.attempts, 2);  // initial + the one budgeted recovery
  EXPECT_EQ(report.events.size(), 1u);
  ASSERT_TRUE(report.last_error);
  EXPECT_NE(what_of(report.last_error).find("killed"), std::string::npos)
      << what_of(report.last_error);
  EXPECT_GT(report.heal_seconds, 0.0);
}

TEST(RecoveryBudget, HealSecondsCeilingFailsFast) {
  const data::Dataset training = make_training(2000);
  core::InductionControls controls;
  controls.options.max_depth = 4;

  TempDir dir("scalparc_heal_budget");
  mp::FaultSchedule schedule;
  schedule.parse("kill:r=0,level=1 | kill:r=1,level=1");
  core::InductionControls ckpt = controls;
  ckpt.checkpoint.directory = dir.path;
  core::RecoveryControls recovery;
  recovery.max_retries = 5;
  // Any failed attempt burns more than a nanosecond of wall clock, so the
  // first failure already exceeds the ceiling.
  recovery.budget.max_heal_seconds = 1e-9;
  recovery.fault_schedule = &schedule;
  const core::RecoveryReport report =
      core::ScalParC::fit_with_recovery(training, 2, ckpt, recovery);
  EXPECT_EQ(report.outcome, core::RecoveryOutcome::kRecoveryBudgetExhausted);
  EXPECT_EQ(report.attempts, 1);
  EXPECT_TRUE(report.events.empty());
  ASSERT_TRUE(report.last_error);
}

TEST(RecoveryBudget, RetriesExhaustedClassified) {
  const data::Dataset training = make_training(2000);
  core::InductionControls controls;
  controls.options.max_depth = 4;

  TempDir dir("scalparc_retries");
  mp::FaultSchedule schedule;
  schedule.parse(
      "kill:r=0,level=1 | kill:r=1,level=1 | kill:r=0,level=2 |"
      "kill:r=1,level=2");
  core::InductionControls ckpt = controls;
  ckpt.checkpoint.directory = dir.path;
  core::RecoveryControls recovery;
  recovery.max_retries = 2;
  recovery.fault_schedule = &schedule;
  const core::RecoveryReport report =
      core::ScalParC::fit_with_recovery(training, 2, ckpt, recovery);
  EXPECT_EQ(report.outcome, core::RecoveryOutcome::kRetriesExhausted);
  EXPECT_EQ(report.attempts, 3);  // initial + 2 retries, all killed
  EXPECT_EQ(report.events.size(), 2u);
  ASSERT_TRUE(report.last_error);
}

// ---------------------------------------------------------------------------
// Checkpoint I/O decision table
// ---------------------------------------------------------------------------

TEST(CheckpointFaults, TransientWriteFaultsHealSilently) {
  const data::Dataset training = make_training(2000);
  core::InductionControls controls;
  controls.options.max_depth = 4;
  const std::string expected =
      tree_bytes(core::ScalParC::fit(training, 2, controls).tree);

  TempDir dir("scalparc_transient_io");
  core::InductionControls ckpt = controls;
  ckpt.checkpoint.directory = dir.path;
  core::detail::arm_checkpoint_write_fault(2);
  core::FitReport report;
  try {
    report = core::ScalParC::fit(training, 2, ckpt);
  } catch (...) {
    core::detail::clear_checkpoint_write_fault();
    throw;
  }
  core::detail::clear_checkpoint_write_fault();
  EXPECT_EQ(tree_bytes(report.tree), expected);
  EXPECT_GE(report.run.metrics.value("checkpoint.write_retries", 0.0), 1.0);
}

TEST(CheckpointFaults, PersistentWriteFaultClassifiedUnrecoverable) {
  const data::Dataset training = make_training(2000);
  core::InductionControls controls;
  controls.options.max_depth = 4;

  TempDir dir("scalparc_persistent_io");
  core::InductionControls ckpt = controls;
  ckpt.checkpoint.directory = dir.path;
  core::RecoveryControls recovery;
  recovery.max_retries = 3;
  core::detail::arm_checkpoint_write_fault(100000);  // disk is simply broken
  const core::RecoveryReport report =
      core::ScalParC::fit_with_recovery(training, 2, ckpt, recovery);
  core::detail::clear_checkpoint_write_fault();
  EXPECT_EQ(report.outcome, core::RecoveryOutcome::kUnrecoverable);
  EXPECT_EQ(report.attempts, 1);  // retrying cannot help, no retry happened
  ASSERT_TRUE(report.last_error);
  EXPECT_THROW(std::rethrow_exception(report.last_error),
               core::CheckpointIoError);
}

TEST(CheckpointFaults, CorruptOnReadDiscardsLevelAndRecovers) {
  const data::Dataset training = make_training(2000);
  core::InductionControls controls;
  controls.options.max_depth = 4;
  const std::string expected =
      tree_bytes(core::ScalParC::fit(training, 2, controls).tree);

  TempDir dir("scalparc_corrupt_read");
  core::InductionControls ckpt = controls;
  ckpt.checkpoint.directory = dir.path;
  // Seed the directory with a full run's checkpoints, then damage the
  // latest level on disk.
  (void)core::ScalParC::fit(training, 2, ckpt);
  const std::optional<int> latest = core::checkpoint_latest_level(dir.path);
  ASSERT_TRUE(latest.has_value());
  const std::string damaged =
      core::checkpoint_level_dir(dir.path, *latest) + "/rank0_cont0.bin";
  {
    std::ofstream file(damaged,
                       std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(file.is_open());
    file.seekp(0);
    const char garbage[8] = {'X', 'X', 'X', 'X', 'X', 'X', 'X', 'X'};
    file.write(garbage, sizeof(garbage));
  }

  // A plain resume must refuse the damaged checkpoint loudly...
  core::InductionControls resume = ckpt;
  resume.checkpoint.resume = true;
  EXPECT_THROW(core::ScalParC::resume_from_checkpoint(training, 2, resume),
               core::CheckpointCorruptError);

  // ...while fit_with_recovery classifies it, discards the damaged level,
  // and resumes from an earlier one to the identical tree.
  core::RecoveryControls recovery;
  const core::RecoveryReport report =
      core::ScalParC::fit_with_recovery(training, 2, resume, recovery);
  EXPECT_EQ(report.outcome, core::RecoveryOutcome::kCompleted);
  EXPECT_EQ(report.attempts, 2);
  ASSERT_EQ(report.events.size(), 1u);
  EXPECT_LT(report.events[0].resumed_level, *latest);
  EXPECT_EQ(tree_bytes(report.fit.tree), expected);
}

// ---------------------------------------------------------------------------
// Chaos generator determinism
// ---------------------------------------------------------------------------

TEST(ChaosGenerator, SameSeedSameSchedule) {
  mp::ChaosSpec spec;
  spec.world = 4;
  spec.levels = 6;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    const mp::GeneratedChaos a = mp::generate_chaos(seed, spec);
    const mp::GeneratedChaos b = mp::generate_chaos(seed, spec);
    EXPECT_EQ(a.archetype, b.archetype) << "seed " << seed;
    EXPECT_EQ(a.description, b.description) << "seed " << seed;
    EXPECT_EQ(a.checkpoint_write_faults, b.checkpoint_write_faults)
        << "seed " << seed;
    ASSERT_EQ(a.schedule.size(), b.schedule.size()) << "seed " << seed;
    for (int i = 0; i < a.schedule.size(); ++i) {
      const mp::FaultPlan* pa = a.schedule.plan(i);
      const mp::FaultPlan* pb = b.schedule.plan(i);
      ASSERT_EQ(pa == nullptr, pb == nullptr) << "seed " << seed;
      if (pa == nullptr) continue;
      ASSERT_EQ(pa->actions().size(), pb->actions().size()) << "seed " << seed;
      for (std::size_t k = 0; k < pa->actions().size(); ++k) {
        EXPECT_EQ(pa->actions()[k].kind, pb->actions()[k].kind);
        EXPECT_EQ(pa->actions()[k].rank, pb->actions()[k].rank);
        EXPECT_EQ(pa->actions()[k].op, pb->actions()[k].op);
        EXPECT_EQ(pa->actions()[k].level, pb->actions()[k].level);
      }
    }
  }
}

TEST(ChaosGenerator, EveryArchetypeAppearsAcrossSeeds) {
  mp::ChaosSpec spec;
  spec.world = 4;
  spec.levels = 6;
  std::vector<bool> seen(4, false);
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    const mp::GeneratedChaos chaos = mp::generate_chaos(seed, spec);
    seen[static_cast<int>(chaos.archetype)] = true;
  }
  for (int a = 0; a < 4; ++a) {
    EXPECT_TRUE(seen[a]) << "archetype " << a << " never generated";
  }
}

}  // namespace
}  // namespace scalparc
