// Public entry points of the ScalParC library.
//
// Two usage styles:
//  * `fit_rank` — call from inside your own mp::run_ranks body: each rank
//    passes its block of the training set (SPMD, collective).
//  * `fit` / `fit_generated` — convenience drivers that stand up a simulated
//    cluster of `nranks` ranks, partition (or generate) the data per rank,
//    induce the tree, and return it together with the per-rank communication
//    statistics, memory peaks and modeled Cray-T3D-calibrated runtime.
#pragma once

#include <cstdint>
#include <exception>
#include <string>
#include <vector>

#include "core/induction.hpp"
#include "core/tree.hpp"
#include "data/dataset.hpp"
#include "data/synthetic.hpp"
#include "mp/costmodel.hpp"
#include "mp/runtime.hpp"

namespace scalparc::mp {
class FaultSchedule;  // mp/fault.hpp
}  // namespace scalparc::mp

namespace scalparc::core {

struct FitReport {
  DecisionTree tree;         // identical on every rank; rank 0's copy
  InductionStats stats;      // rank 0's induction statistics
  mp::RunResult run;         // per-rank comm stats, memory peaks, timings
};

// What fit_with_recovery does after a failed attempt. kRestart re-runs the
// full original world from the last checkpoint; kShrink drops the dead
// rank(s) and continues with the survivors, repartitioning the checkpointed
// attribute lists across the smaller world (elastic restore); kGrow keeps
// the survivors AND admits `join_ranks` fresh joiners through the
// mp::join_handshake capability exchange, re-tiling the checkpoint across
// the larger world. Shrinking and growing are only sound when a specific
// rank provably died — deadlock and timeout failures fall back to a restart
// even under kShrink / kGrow.
//
// kRebalance is the gray-failure policy: on a kStraggler classification it
// keeps the same world but re-tiles the checkpointed attribute lists
// *non-uniformly* away from the slow rank (weight 1/slowdown vs 1 for its
// peers), producing the byte-identical tree with the straggler carrying
// proportionally less work. If the same rank is classified again after a
// rebalance, the policy escalates to a demotion: the world shrinks by one
// and the weights are dropped. A hard rank death under kRebalance degrades
// to kShrink; a straggler classification under any other policy degrades to
// kRestart.
enum class RecoveryPolicy : int {
  kRestart = 0,
  kShrink = 1,
  kGrow = 2,
  kRebalance = 3,
};

// One failure observed (and survived) by fit_with_recovery.
struct RecoveryEvent {
  int failed_rank = -1;
  // Checkpoint level the retry resumed from; -1 means no complete
  // checkpoint existed yet and the retry restarted from scratch.
  int resumed_level = -1;
  std::string message;  // what the failed rank threw
  // Policy actually applied to this failure (a shrink/grow request degrades
  // to kRestart when no rank provably died).
  RecoveryPolicy policy = RecoveryPolicy::kRestart;
  // World size the retry ran with (smaller than the previous attempt's
  // after a shrink, larger after a grow).
  int ranks_after = -1;
  // kGrow only: joiners admitted into the retry's world.
  int joiners = 0;
  // kRebalance only: the rank classified as a straggler, its estimated
  // slowdown factor, and whether the event escalated to a demotion (the
  // same rank re-classified after a rebalance: world shrunk by one).
  int straggler_rank = -1;
  double straggler_slowdown = 0.0;
  bool demoted = false;
};

// Degraded-mode guardrails: hard ceilings after which a thrashing run fails
// fast with a classified outcome instead of recovering forever. A field
// <= 0 disables that ceiling.
struct RecoveryBudget {
  // Total failures the run may survive (distinct from max_retries, which
  // caps *consecutive* attempts).
  int max_recoveries = 0;
  // Cumulative wall-clock seconds spent on failed attempts.
  double max_heal_seconds = 0.0;
};

// Terminal classification of a fit_with_recovery run. Everything except
// kCompleted means the fit did not finish; RecoveryReport::last_error holds
// the final failure.
enum class RecoveryOutcome : int {
  kCompleted = 0,
  kRetriesExhausted = 1,          // max_retries consecutive attempts failed
  kRecoveryBudgetExhausted = 2,   // a RecoveryBudget ceiling tripped
  kUnrecoverable = 3,             // write-side checkpoint I/O error (disk
                                  // full / permission): retrying cannot help
};
const char* to_string(RecoveryOutcome outcome);

// Full recovery configuration for the struct-based fit_with_recovery
// overload (the legacy positional overload covers restart/shrink only).
struct RecoveryControls {
  RecoveryPolicy policy = RecoveryPolicy::kRestart;
  // Per-event overrides: failure i applies policy_sequence[i] when present,
  // `policy` past the end. This is how a grow -> shrink -> grow round trip
  // is expressed.
  std::vector<RecoveryPolicy> policy_sequence;
  // kGrow: joiners admitted per grow recovery (new world = survivors + k).
  int join_ranks = 1;
  // Consecutive failed attempts tolerated before kRetriesExhausted.
  int max_retries = 3;
  RecoveryBudget budget;
  // Per-attempt fault plans (plan(0) = initial run, plan(i) = i-th retry);
  // overrides run_options.fault_plan. Must outlive the call. This is the
  // compound-fault hook: a single plan is dropped after the first failure,
  // a schedule keeps injecting into recovery attempts.
  const mp::FaultSchedule* fault_schedule = nullptr;
};

struct RecoveryReport {
  FitReport fit;
  std::vector<RecoveryEvent> events;  // one per survived failure
  int attempts = 1;                   // total runs including the final one
  RecoveryOutcome outcome = RecoveryOutcome::kCompleted;
  // Set when outcome != kCompleted: the final attempt's primary error. The
  // struct-based overload classifies instead of throwing; fit.run still
  // carries the failed attempt's metrics and failure report.
  std::exception_ptr last_error;
  // Cumulative wall-clock seconds of failed attempts (the heal budget's
  // meter).
  double heal_seconds = 0.0;
};

class ScalParC {
 public:
  // Collective per-rank fit; see induce_tree_distributed for the contract.
  static InductionResult fit_rank(mp::Comm& comm,
                                  const data::Dataset& local_block,
                                  std::int64_t first_rid,
                                  std::uint64_t total_records,
                                  const InductionControls& controls = {});

  // Partitions `training` into contiguous equal blocks over `nranks`
  // simulated ranks and fits. With nranks == 1 this is the serial algorithm.
  // `run_options` configures fault injection, receive timeouts and deadlock
  // detection for the simulated cluster (see mp::RunOptions).
  static FitReport fit(const data::Dataset& training, int nranks,
                       const InductionControls& controls = {},
                       const mp::CostModel& model = mp::CostModel::zero(),
                       const mp::RunOptions& run_options = {});

  // Like fit(), but every rank generates its own block of
  // `total_records` Quest records — no global materialization, so training
  // sets of hundreds of millions of records fit in simulation.
  static FitReport fit_generated(const data::QuestGenerator& generator,
                                 std::uint64_t total_records, int nranks,
                                 const InductionControls& controls = {},
                                 const mp::CostModel& model = mp::CostModel::zero(),
                                 const mp::RunOptions& run_options = {});

  // Restarts induction from the last complete level checkpoint under
  // controls.checkpoint.directory and produces a tree byte-identical to the
  // fault-free run. Throws CheckpointError when no complete checkpoint
  // exists or its parameters do not match this training configuration.
  static FitReport resume_from_checkpoint(
      const data::Dataset& training, int nranks,
      const InductionControls& controls,
      const mp::CostModel& model = mp::CostModel::zero(),
      const mp::RunOptions& run_options = {});

  // Fit that survives rank failures: on any failed run it resumes from the
  // last complete checkpoint (or restarts from scratch when none committed
  // yet) until the fit succeeds or `max_retries` retries are exhausted, in
  // which case the last failure is rethrown. Faults are treated as
  // transient — an injected fault plan is dropped after the first failure,
  // matching a crashed-and-restarted process. Requires a checkpoint
  // directory in `controls`. Under RecoveryPolicy::kShrink a rank death
  // removes the dead rank(s) from the world and the survivors continue from
  // the checkpoint via elastic repartition, still producing the
  // byte-identical tree.
  static RecoveryReport fit_with_recovery(
      const data::Dataset& training, int nranks,
      const InductionControls& controls,
      const mp::CostModel& model = mp::CostModel::zero(),
      const mp::RunOptions& run_options = {}, int max_retries = 3,
      RecoveryPolicy policy = RecoveryPolicy::kRestart);

  // Struct-based overload with the full recovery surface: per-event policy
  // sequences (grow included), recovery budget, compound fault schedules.
  // Unlike the positional overload it never rethrows a rank failure —
  // the report's `outcome` classifies how the run ended and `last_error`
  // carries the final failure. The final attempt's metrics gain the
  // recovery.* family (attempts, recoveries, shrinks/grows/restarts,
  // heal_seconds, outcome, budget_remaining).
  static RecoveryReport fit_with_recovery(
      const data::Dataset& training, int nranks,
      const InductionControls& controls, const RecoveryControls& recovery,
      const mp::CostModel& model = mp::CostModel::zero(),
      const mp::RunOptions& run_options = {});
};

}  // namespace scalparc::core
