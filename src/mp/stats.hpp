// Per-rank communication and work accounting.
//
// Every byte a rank sends or receives is attributed to the communication
// operation class that caused it, so benches can report e.g. "bytes moved by
// the splitting phase's all-to-all exchanges per processor" — the quantity
// the paper's scalability argument is about.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace scalparc::mp {

enum class CommOp : int {
  kPointToPoint = 0,
  kBarrier = 1,
  kBroadcast = 2,
  kReduce = 3,
  kAllreduce = 4,
  kScan = 5,
  kGather = 6,
  kAllgather = 7,
  kAlltoall = 8,
};
inline constexpr int kNumCommOps = 9;

std::string_view comm_op_name(CommOp op);

struct CommStats {
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  std::array<std::uint64_t, kNumCommOps> bytes_sent_by_op{};
  std::array<std::uint64_t, kNumCommOps> calls_by_op{};
  // Abstract computation units reported via Comm::add_work (one unit is one
  // record-field visit; see CostModel::seconds_per_work_unit).
  double work_units = 0.0;

  void record_send(CommOp op, std::uint64_t bytes) {
    bytes_sent += bytes;
    ++messages_sent;
    bytes_sent_by_op[static_cast<int>(op)] += bytes;
  }
  void record_receive(std::uint64_t bytes) {
    bytes_received += bytes;
    ++messages_received;
  }
  void record_call(CommOp op) { ++calls_by_op[static_cast<int>(op)]; }

  // Element-wise accumulation, used to aggregate ranks into totals.
  CommStats& operator+=(const CommStats& other);
};

}  // namespace scalparc::mp
