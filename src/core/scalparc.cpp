#include "core/scalparc.hpp"

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/checkpoint.hpp"
#include "sort/partition_util.hpp"

namespace scalparc::core {

namespace {

struct Attempt {
  std::vector<InductionResult> results;
  mp::RunResult run;
};

Attempt run_fit(const data::Dataset& training, int nranks,
                const InductionControls& controls, const mp::CostModel& model,
                const mp::RunOptions& options) {
  const std::uint64_t total = training.num_records();
  const std::vector<std::size_t> sizes =
      sort::equal_partition_sizes(total, nranks);
  const std::vector<std::size_t> offsets = sort::offsets_from_sizes(sizes);

  Attempt attempt;
  attempt.results.resize(static_cast<std::size_t>(nranks));
  attempt.run = mp::try_run_ranks(
      nranks, model,
      [&](mp::Comm& comm) {
        const auto r = static_cast<std::size_t>(comm.rank());
        const data::Dataset block = training.slice(offsets[r], offsets[r + 1]);
        attempt.results[r] = ScalParC::fit_rank(
            comm, block, static_cast<std::int64_t>(offsets[r]), total,
            controls);
      },
      options);
  return attempt;
}

FitReport report_from(Attempt&& attempt) {
  FitReport report;
  report.tree = std::move(attempt.results[0].tree);
  report.stats = std::move(attempt.results[0].stats);
  report.run = std::move(attempt.run);
  return report;
}

}  // namespace

InductionResult ScalParC::fit_rank(mp::Comm& comm,
                                   const data::Dataset& local_block,
                                   std::int64_t first_rid,
                                   std::uint64_t total_records,
                                   const InductionControls& controls) {
  return induce_tree_distributed(comm, local_block, first_rid, total_records,
                                 controls);
}

FitReport ScalParC::fit(const data::Dataset& training, int nranks,
                        const InductionControls& controls,
                        const mp::CostModel& model,
                        const mp::RunOptions& run_options) {
  if (nranks <= 0) {
    throw std::invalid_argument("ScalParC::fit: nranks must be positive");
  }
  Attempt attempt = run_fit(training, nranks, controls, model, run_options);
  if (attempt.run.failed()) std::rethrow_exception(attempt.run.error);
  return report_from(std::move(attempt));
}

FitReport ScalParC::fit_generated(const data::QuestGenerator& generator,
                                  std::uint64_t total_records, int nranks,
                                  const InductionControls& controls,
                                  const mp::CostModel& model,
                                  const mp::RunOptions& run_options) {
  if (nranks <= 0) {
    throw std::invalid_argument(
        "ScalParC::fit_generated: nranks must be positive");
  }
  const std::vector<std::size_t> sizes =
      sort::equal_partition_sizes(total_records, nranks);
  const std::vector<std::size_t> offsets = sort::offsets_from_sizes(sizes);

  std::vector<InductionResult> results(static_cast<std::size_t>(nranks));
  mp::RunResult run = mp::run_ranks(
      nranks, model,
      [&](mp::Comm& comm) {
        const auto r = static_cast<std::size_t>(comm.rank());
        const data::Dataset block = generator.generate(offsets[r], sizes[r]);
        results[r] = fit_rank(comm, block,
                              static_cast<std::int64_t>(offsets[r]),
                              total_records, controls);
      },
      run_options);

  FitReport report;
  report.tree = std::move(results[0].tree);
  report.stats = std::move(results[0].stats);
  report.run = std::move(run);
  return report;
}

FitReport ScalParC::resume_from_checkpoint(const data::Dataset& training,
                                           int nranks,
                                           const InductionControls& controls,
                                           const mp::CostModel& model,
                                           const mp::RunOptions& run_options) {
  InductionControls resumed = controls;
  resumed.checkpoint.resume = true;
  return fit(training, nranks, resumed, model, run_options);
}

RecoveryReport ScalParC::fit_with_recovery(const data::Dataset& training,
                                           int nranks,
                                           const InductionControls& controls,
                                           const mp::CostModel& model,
                                           const mp::RunOptions& run_options,
                                           int max_retries,
                                           RecoveryPolicy policy) {
  if (nranks <= 0) {
    throw std::invalid_argument(
        "ScalParC::fit_with_recovery: nranks must be positive");
  }
  if (controls.checkpoint.directory.empty()) {
    throw std::invalid_argument(
        "ScalParC::fit_with_recovery: controls.checkpoint.directory is "
        "required (recovery restarts from level checkpoints)");
  }

  RecoveryReport report;
  InductionControls attempt_controls = controls;
  mp::RunOptions attempt_options = run_options;
  int world = nranks;
  for (int retry = 0;; ++retry) {
    Attempt attempt =
        run_fit(training, world, attempt_controls, model, attempt_options);
    report.attempts = retry + 1;
    if (!attempt.run.failed()) {
      report.fit = report_from(std::move(attempt));
      return report;
    }
    if (retry >= max_retries) std::rethrow_exception(attempt.run.error);

    RecoveryEvent event;
    event.failed_rank = attempt.run.failed_rank;
    event.message = attempt.run.failure_message;
    // Faults are transient: the injected plan does not re-fire on the
    // retry, matching a crashed-and-restarted process. Without this a
    // level-triggered kill would fire again on every resume, forever.
    attempt_options.fault_plan = nullptr;
    // Shrink only on a classified rank death (the liveness registry names
    // the casualties); a deadlock/timeout has no dead rank to remove, so a
    // shrink request degrades to a restart of the same world.
    const auto casualties = static_cast<int>(attempt.run.dead_ranks.size());
    const bool rank_died =
        attempt.run.failure_kind == mp::FailureKind::kRankDeath &&
        casualties > 0;
    if (policy == RecoveryPolicy::kShrink && rank_died && world > casualties) {
      world -= casualties;
      event.policy = RecoveryPolicy::kShrink;
      // The survivors reload a checkpoint written by the larger world.
      attempt_controls.checkpoint.allow_repartition = true;
    } else {
      event.policy = RecoveryPolicy::kRestart;
    }
    event.ranks_after = world;
    const std::optional<int> latest =
        checkpoint_latest_level(controls.checkpoint.directory);
    attempt_controls.checkpoint.resume = latest.has_value();
    event.resumed_level = latest ? *latest : -1;
    report.events.push_back(std::move(event));
  }
}

}  // namespace scalparc::core
