// Randomized property sweeps across generator configurations and seeds.
//
// Each case draws a workload configuration deterministically from its seed
// and checks end-to-end invariants that must hold for ANY input:
//   * processor-count invariance of the induced tree
//   * perfect memorization of noise-free training data
//   * structural invariants (children partition parents exactly)
//   * pruning only shrinks the tree and never invalidates prediction
//   * the non-commutative boundary exscan the induction relies on
#include <gtest/gtest.h>

#include <numeric>

#include "core/predict.hpp"
#include "core/pruning.hpp"
#include "core/scalparc.hpp"
#include "data/synthetic.hpp"
#include "mp/collectives.hpp"
#include "mp/runtime.hpp"
#include "sprint/serial_sprint.hpp"
#include "util/random.hpp"

namespace scalparc {
namespace {

const mp::CostModel kZero = mp::CostModel::zero();

data::GeneratorConfig config_for_seed(std::uint64_t seed) {
  util::Rng rng(seed * 7919 + 13);
  data::GeneratorConfig config;
  config.seed = seed;
  config.function =
      static_cast<data::LabelFunction>(1 + rng.next_below(7));
  config.num_attributes = static_cast<int>(4 + rng.next_below(6));  // 4..9
  config.label_noise = rng.next_bool(0.5) ? 0.0 : 0.08;
  return config;
}

class RandomWorkload : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWorkload,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST_P(RandomWorkload, ProcessorCountInvariance) {
  const data::GeneratorConfig config = config_for_seed(GetParam());
  const data::QuestGenerator generator(config);
  const data::Dataset training = generator.generate(0, 350);
  core::InductionControls controls;
  controls.options.max_depth = 10;
  const core::DecisionTree reference =
      core::ScalParC::fit(training, 1, controls, kZero).tree;
  util::Rng rng(GetParam());
  const int p = static_cast<int>(2 + rng.next_below(7));  // 2..8
  const core::DecisionTree parallel =
      core::ScalParC::fit(training, p, controls, kZero).tree;
  EXPECT_TRUE(reference.same_structure(parallel))
      << "seed " << GetParam() << " p=" << p;
}

TEST_P(RandomWorkload, AgreesWithSerialSprintOracle) {
  const data::GeneratorConfig config = config_for_seed(GetParam() + 100);
  const data::QuestGenerator generator(config);
  const data::Dataset training = generator.generate(0, 250);
  core::InductionControls controls;
  controls.options.max_depth = 10;
  const core::DecisionTree oracle =
      sprint::fit_serial_sprint(training, controls.options);
  const core::DecisionTree tree =
      core::ScalParC::fit(training, 5, controls, kZero).tree;
  EXPECT_TRUE(oracle.same_structure(tree)) << "seed " << GetParam();
}

TEST_P(RandomWorkload, StructuralInvariantsHold) {
  const data::GeneratorConfig config = config_for_seed(GetParam() + 200);
  const data::QuestGenerator generator(config);
  const auto report = core::ScalParC::fit_generated(generator, 400, 3);
  const core::DecisionTree& tree = report.tree;
  for (int id = 0; id < tree.num_nodes(); ++id) {
    const core::TreeNode& node = tree.node(id);
    const std::int64_t total = std::accumulate(
        node.class_counts.begin(), node.class_counts.end(), std::int64_t{0});
    ASSERT_EQ(total, node.num_records) << "node " << id;
    if (node.is_leaf) continue;
    std::int64_t child_total = 0;
    for (const int child : node.children) {
      ASSERT_GT(tree.node(child).num_records, 0);
      ASSERT_EQ(tree.node(child).depth, node.depth + 1);
      child_total += tree.node(child).num_records;
    }
    ASSERT_EQ(child_total, node.num_records) << "node " << id;
  }
}

TEST_P(RandomWorkload, NoiseFreeDataIsMemorized) {
  data::GeneratorConfig config = config_for_seed(GetParam() + 300);
  config.label_noise = 0.0;
  const data::QuestGenerator generator(config);
  const data::Dataset training = generator.generate(0, 300);
  const auto report = core::ScalParC::fit(training, 4);
  EXPECT_DOUBLE_EQ(report.tree.accuracy(training), 1.0) << "seed " << GetParam();
}

TEST_P(RandomWorkload, PruningShrinksAndStaysValid) {
  data::GeneratorConfig config = config_for_seed(GetParam() + 400);
  config.label_noise = 0.1;  // give pruning something to remove
  const data::QuestGenerator generator(config);
  const data::Dataset training = generator.generate(0, 400);
  const data::Dataset holdout = generator.generate(50000, 400);
  auto report = core::ScalParC::fit(training, 2);
  const int nodes_before = report.tree.num_nodes();
  const double holdout_before = report.tree.accuracy(holdout);
  const auto prune_report = core::mdl_prune(report.tree);
  EXPECT_LE(prune_report.nodes_after, nodes_before);
  // The pruned tree must still be a well-formed predictor...
  for (std::size_t row = 0; row < holdout.num_records(); ++row) {
    const std::int32_t y = report.tree.predict(holdout, row);
    ASSERT_GE(y, 0);
    ASSERT_LT(y, 2);
  }
  // ...and on noisy data should not get dramatically worse held out.
  EXPECT_GE(report.tree.accuracy(holdout), holdout_before - 0.05);
}

TEST_P(RandomWorkload, LevelRecordsNeverIncrease) {
  const data::GeneratorConfig config = config_for_seed(GetParam() + 500);
  const data::QuestGenerator generator(config);
  core::InductionControls controls;
  controls.collect_level_stats = true;
  const auto report = core::ScalParC::fit_generated(generator, 300, 3, controls);
  std::int64_t previous = std::numeric_limits<std::int64_t>::max();
  for (const auto& level : report.stats.per_level) {
    EXPECT_LE(level.active_records, previous);
    previous = level.active_records;
    EXPECT_GT(level.active_nodes, 0);
  }
}

// ---------------------------------------------------------------------------
// The non-commutative "rightmost non-empty" exscan used by FindSplitII to
// propagate boundary values across ranks.
// ---------------------------------------------------------------------------

struct LastSeen {
  double value = 0.0;
  std::uint8_t has = 0;
};
struct RightmostOp {
  LastSeen operator()(const LastSeen& left, const LastSeen& right) const {
    return right.has != 0 ? right : left;
  }
};

class BoundaryExscan : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(RankSweep, BoundaryExscan,
                         ::testing::Values(2, 3, 4, 5, 8, 13));

TEST_P(BoundaryExscan, PropagatesRightmostNonEmpty) {
  const int p = GetParam();
  // Ranks 0, 3, 6, ... carry a value; every rank must see the value of the
  // closest carrying rank strictly before it.
  mp::run_ranks(p, kZero, [](mp::Comm& comm) {
    LastSeen mine;
    if (comm.rank() % 3 == 0) {
      mine = LastSeen{static_cast<double>(comm.rank()) + 0.5, 1};
    }
    const LastSeen before =
        mp::exscan_value(comm, mine, RightmostOp{}, LastSeen{});
    int expected_rank = -1;
    for (int r = 0; r < comm.rank(); ++r) {
      if (r % 3 == 0) expected_rank = r;
    }
    if (expected_rank < 0) {
      EXPECT_EQ(before.has, 0) << "rank " << comm.rank();
    } else {
      ASSERT_EQ(before.has, 1) << "rank " << comm.rank();
      EXPECT_DOUBLE_EQ(before.value, expected_rank + 0.5);
    }
  });
}

TEST_P(BoundaryExscan, AllEmptyStaysEmpty) {
  const int p = GetParam();
  mp::run_ranks(p, kZero, [](mp::Comm& comm) {
    const LastSeen before =
        mp::exscan_value(comm, LastSeen{}, RightmostOp{}, LastSeen{});
    EXPECT_EQ(before.has, 0);
  });
}

TEST_P(BoundaryExscan, VectorFormPerNode) {
  const int p = GetParam();
  // Two "nodes": node 0 carried by even ranks, node 1 by rank 1 only.
  mp::run_ranks(p, kZero, [](mp::Comm& comm) {
    std::vector<LastSeen> mine(2);
    if (comm.rank() % 2 == 0) mine[0] = LastSeen{static_cast<double>(comm.rank()), 1};
    if (comm.rank() == 1) mine[1] = LastSeen{42.0, 1};
    const auto before = mp::exscan_vec(comm, std::span<const LastSeen>(mine),
                                       RightmostOp{}, LastSeen{});
    // Node 0: rightmost even rank before me.
    int expected = -1;
    for (int r = 0; r < comm.rank(); ++r) {
      if (r % 2 == 0) expected = r;
    }
    if (expected < 0) {
      EXPECT_EQ(before[0].has, 0);
    } else {
      EXPECT_DOUBLE_EQ(before[0].value, static_cast<double>(expected));
    }
    // Node 1: set only for ranks > 1.
    if (comm.rank() > 1) {
      ASSERT_EQ(before[1].has, 1);
      EXPECT_DOUBLE_EQ(before[1].value, 42.0);
    } else {
      EXPECT_EQ(before[1].has, 0);
    }
  });
}

// ---------------------------------------------------------------------------
// Virtual-time sanity under the real cost model.
// ---------------------------------------------------------------------------

TEST(CostModelProperties, ModeledTimeScalesDownWithRanks) {
  data::GeneratorConfig config;
  config.seed = 17;
  config.function = data::LabelFunction::kF2;
  const data::QuestGenerator generator(config);
  const auto model = mp::CostModel::cray_t3d();
  double previous = std::numeric_limits<double>::infinity();
  for (const int p : {1, 2, 4, 8}) {
    const auto report = core::ScalParC::fit_generated(
        generator, 20000, p, core::InductionControls{}, model);
    EXPECT_LT(report.run.modeled_seconds, previous) << "p=" << p;
    previous = report.run.modeled_seconds;
  }
}

TEST(CostModelProperties, WorkConservation) {
  // Total metered work should be nearly independent of p (the algorithm does
  // the same record visits, just spread over ranks).
  data::GeneratorConfig config;
  config.seed = 23;
  config.function = data::LabelFunction::kF1;
  const data::QuestGenerator generator(config);
  const auto w = [&](int p) {
    const auto report = core::ScalParC::fit_generated(generator, 10000, p);
    return report.run.total_stats().work_units;
  };
  const double serial = w(1);
  const double parallel = w(8);
  EXPECT_NEAR(parallel / serial, 1.0, 0.25);
}

TEST(CostModelProperties, PerRankBytesFallWithP) {
  data::GeneratorConfig config;
  config.seed = 29;
  config.function = data::LabelFunction::kF2;
  const data::QuestGenerator generator(config);
  const auto bytes = [&](int p) {
    return core::ScalParC::fit_generated(generator, 40000, p)
        .run.max_bytes_sent_per_rank();
  };
  EXPECT_GT(bytes(2), bytes(8));
  EXPECT_GT(bytes(8), bytes(32));
}

}  // namespace
}  // namespace scalparc
