// Communication-subsystem calibration table (§5's methodology).
//
// The paper: "We benchmarked the combination of Cray's tuned MPI
// implementation and the underlying communication subsystem assuming a
// linear model of communication. On an average, we obtained a latency of
// _ us and bandwidth of _ MB/sec for point-to-point communications, and a
// latency of _ us per processor and bandwidth of _ MB/sec for the
// all-to-all collective communication operations."
//
// We run the same measurement against our runtime: time (on the virtual
// clock) a small and a large transfer, and solve the linear model
// t = latency + bytes/bandwidth for each operation class. The recovered
// point-to-point numbers must match the CostModel constants; the all-to-all
// numbers are *emergent* (p-1 buffered sends per rank) and show the
// per-processor latency shape the paper reports.
//
// A second table overlays the SplitCommModel analytic predictors (see
// mp/costmodel.hpp) against measured per-level bytes for the three split
// modes: the O(N/p) exact shape, and the N-independent O(attrs x bins) /
// O(2k x bins) shapes of the quantized engines.
//
//   ./comm_model [--csv DIR] [--records N] [--depth D] [--bins B] [--top-k K]
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "mp/collectives.hpp"

int main(int argc, char** argv) {
  using namespace scalparc;
  const util::CliArgs args(argc, argv);
  const auto model = mp::CostModel::cray_t3d();

  bench::CsvWriter csv(args, "comm_model.csv",
                       "op,procs,latency_us,bandwidth_mb_s");

  // --- point-to-point -------------------------------------------------------
  const auto p2p_time = [&](std::size_t bytes) {
    const auto result = mp::run_ranks(2, model, [&](mp::Comm& comm) {
      if (comm.rank() == 0) {
        const std::vector<std::byte> payload(bytes);
        comm.send_bytes(1, 0, payload);
      } else {
        (void)comm.recv_bytes(0, 0);
      }
    });
    return result.modeled_seconds;
  };
  const double t_small = p2p_time(8);
  const double t_large = p2p_time(1 << 20);
  const double p2p_bw = static_cast<double>((1 << 20) - 8) / (t_large - t_small);
  const double p2p_lat = t_small - 8.0 / p2p_bw;
  std::printf("point-to-point: latency %.1f us, bandwidth %.1f MB/s\n",
              p2p_lat * 1e6, p2p_bw / 1e6);
  csv.row("p2p,2,%.3f,%.3f", p2p_lat * 1e6, p2p_bw / 1e6);

  // --- all-to-all personalized ---------------------------------------------
  std::printf("\nall-to-all personalized exchange (per-rank volume V):\n");
  std::printf("%6s %18s %18s %22s\n", "procs", "latency(us)",
              "bandwidth(MB/s)", "latency per proc (us)");
  for (const int p : {4, 8, 16, 32, 64}) {
    const auto a2a_time = [&](std::size_t bytes_per_dest) {
      const auto result = mp::run_ranks(p, model, [&](mp::Comm& comm) {
        std::vector<std::vector<std::byte>> send(
            static_cast<std::size_t>(comm.size()));
        for (auto& buf : send) buf.assign(bytes_per_dest, std::byte{0});
        (void)mp::alltoallv(comm, send);
      });
      return result.modeled_seconds;
    };
    const double small = a2a_time(8);
    const double large = a2a_time(1 << 14);
    const double total_small = 8.0 * (p - 1);
    const double total_large = static_cast<double>(1 << 14) * (p - 1);
    const double bw = (total_large - total_small) / (large - small);
    const double lat = small - total_small / bw;
    std::printf("%6d %18.1f %18.1f %22.2f\n", p, lat * 1e6, bw / 1e6,
                lat * 1e6 / p);
    csv.row("alltoall,%d,%.3f,%.3f", p, lat * 1e6, bw / 1e6);
  }

  std::printf(
      "\nThe all-to-all latency grows ~linearly with p (constant latency per\n"
      "processor) while its effective bandwidth stays flat — the same linear\n"
      "model shape the paper reports for the Cray T3D.\n");

  // --- split-mode per-level byte predictors --------------------------------
  const auto records =
      static_cast<std::uint64_t>(args.get_int("records", 8000));
  const int depth = static_cast<int>(args.get_int("depth", 6));
  const int bins = static_cast<int>(args.get_int("bins", 64));
  const int top_k = static_cast<int>(args.get_int("top-k", 2));
  const data::QuestGenerator generator = bench::paper_generator(1);

  std::printf(
      "\nsplit-mode level-1 bytes/rank, SplitCommModel predicted vs measured\n"
      "(records=%llu):\n",
      static_cast<unsigned long long>(records));
  std::printf("%6s %10s %14s %14s %8s\n", "procs", "mode", "predicted",
              "measured", "ratio");
  for (const int p : {2, 4, 8, 16}) {
    mp::SplitCommModel split_model;
    split_model.procs = p;
    split_model.classes = generator.schema().num_classes();
    split_model.hist_bins = bins;
    split_model.top_k = top_k;
    for (int a = 0; a < generator.schema().num_attributes(); ++a) {
      const data::AttributeInfo& info = generator.schema().attribute(a);
      if (info.kind == data::AttributeKind::kContinuous) {
        ++split_model.cont_attrs;
      } else {
        ++split_model.cat_attrs;
        split_model.cat_cardinality_sum += info.cardinality;
      }
    }
    for (const char* mode : {"exact", "histogram", "voting"}) {
      core::InductionControls controls = bench::paper_controls();
      controls.options.max_depth = depth;
      controls.options.hist_bins = bins;
      controls.options.top_k = top_k;
      const std::string mode_name = mode;
      if (mode_name == "histogram") {
        controls.options.split_mode = core::SplitMode::kHistogram;
      } else if (mode_name == "voting") {
        controls.options.split_mode = core::SplitMode::kVoting;
      }
      controls.collect_level_stats = true;
      const core::FitReport report =
          core::ScalParC::fit_generated(generator, records, p, controls, model);
      const core::LevelStats& level1 = report.stats.per_level.front();
      double predicted = 0.0;
      if (mode_name == "exact") {
        predicted = split_model.exact_level_bytes(level1.active_records);
      } else if (mode_name == "histogram") {
        predicted = split_model.histogram_level_bytes(level1.active_nodes);
      } else {
        predicted = split_model.voting_level_bytes(level1.active_nodes);
      }
      const auto measured =
          static_cast<double>(level1.max_bytes_sent_per_rank);
      std::printf("%6d %10s %14.0f %14.0f %8.2f\n", p, mode, predicted,
                  measured, measured > 0.0 ? predicted / measured : 0.0);
      csv.row("model_%s,%d,%.0f,%.0f", mode, p, predicted, measured);
    }
  }
  std::printf(
      "\nThe exact predictor scales as O(N/p) while the histogram and voting\n"
      "predictors depend only on attrs x bins x classes (x the elected\n"
      "fraction for voting) — matching the flat curves in BENCH_comm.json.\n");
  std::printf("\nCSV written to %s\n", csv.path().c_str());
  return 0;
}
