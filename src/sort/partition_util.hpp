// Small helpers shared by the parallel sort and rebalance primitives.
#pragma once

#include <cstddef>
#include <vector>

namespace scalparc::sort {

// Sizes of the `parts` chunks of a block distribution of `total` elements:
// the first (total % parts) chunks get one extra element. This is the
// canonical "equal fragments" layout the paper assumes for attribute lists.
std::vector<std::size_t> equal_partition_sizes(std::size_t total, int parts);

// Exclusive prefix (start offsets) of a size vector, plus the total as the
// final element; result has sizes.size() + 1 entries.
std::vector<std::size_t> offsets_from_sizes(const std::vector<std::size_t>& sizes);

}  // namespace scalparc::sort
