// Focused tests for the baseline classifiers (serial SPRINT, serial CART,
// parallel SPRINT facade) and for prediction paths not covered elsewhere
// (binary-subset traversal, deep categorical chains).
#include <gtest/gtest.h>

#include "core/predict.hpp"
#include "core/scalparc.hpp"
#include "data/synthetic.hpp"
#include "sprint/parallel_sprint.hpp"
#include "sprint/serial_cart.hpp"
#include "sprint/serial_sprint.hpp"

namespace scalparc {
namespace {

using data::GeneratorConfig;
using data::LabelFunction;
using data::QuestGenerator;
using data::Schema;

data::Dataset quest(std::uint64_t seed, std::size_t n, LabelFunction f,
                    int attrs = 7, double noise = 0.0) {
  GeneratorConfig config;
  config.seed = seed;
  config.function = f;
  config.num_attributes = attrs;
  config.label_noise = noise;
  return QuestGenerator(config).generate(0, n);
}

// ---------------------------------------------------------------------------
// Serial SPRINT
// ---------------------------------------------------------------------------

TEST(SerialSprint, EmptyThrows) {
  const data::Dataset empty(Schema({Schema::continuous("x")}, 2));
  EXPECT_THROW((void)sprint::fit_serial_sprint(empty), std::invalid_argument);
}

TEST(SerialSprint, RespectsMaxDepth) {
  const data::Dataset training = quest(3, 400, LabelFunction::kF2);
  core::InductionOptions options;
  options.max_depth = 2;
  const core::DecisionTree tree = sprint::fit_serial_sprint(training, options);
  EXPECT_LE(tree.depth(), 2);
}

TEST(SerialSprint, RespectsMinSplit) {
  const data::Dataset training = quest(3, 400, LabelFunction::kF2);
  core::InductionOptions options;
  options.min_split_records = 50;
  const core::DecisionTree tree = sprint::fit_serial_sprint(training, options);
  for (int id = 0; id < tree.num_nodes(); ++id) {
    if (!tree.node(id).is_leaf) {
      EXPECT_GE(tree.node(id).num_records, 50);
    }
  }
}

TEST(SerialSprint, PureInputSingleLeaf) {
  data::Dataset d(Schema({Schema::continuous("x")}, 2));
  for (int i = 0; i < 8; ++i) {
    const double x[] = {static_cast<double>(i)};
    d.append(x, {}, 1);
  }
  const core::DecisionTree tree = sprint::fit_serial_sprint(d);
  EXPECT_EQ(tree.num_nodes(), 1);
  EXPECT_EQ(tree.node(0).majority_class, 1);
}

// ---------------------------------------------------------------------------
// Serial CART
// ---------------------------------------------------------------------------

TEST(SerialCart, EmptyThrows) {
  const data::Dataset empty(Schema({Schema::continuous("x")}, 2));
  EXPECT_THROW((void)sprint::fit_serial_cart(empty), std::invalid_argument);
}

TEST(SerialCart, SortsEveryNode) {
  const data::Dataset training = quest(5, 300, LabelFunction::kF2);
  sprint::CartStats stats;
  const core::DecisionTree tree =
      sprint::fit_serial_cart(training, {}, &stats);
  // Root alone re-sorts each continuous attribute's full column; a grown
  // tree must sort strictly more than one pass over the data.
  const std::uint64_t one_pass =
      training.num_records() *
      static_cast<std::uint64_t>(training.schema().num_continuous());
  EXPECT_GT(stats.sorted_elements, one_pass);
  EXPECT_DOUBLE_EQ(tree.accuracy(training), 1.0);
}

TEST(SerialCart, AgreesWithSprintOnSeparableData) {
  // On cleanly separable data the greedy splits coincide, so accuracy and
  // shape should match even though node numbering differs (DFS vs BFS).
  const data::Dataset training = quest(7, 250, LabelFunction::kF1);
  const core::DecisionTree cart = sprint::fit_serial_cart(training);
  const core::DecisionTree sprint_tree = sprint::fit_serial_sprint(training);
  EXPECT_EQ(cart.num_leaves(), sprint_tree.num_leaves());
  EXPECT_EQ(cart.depth(), sprint_tree.depth());
  EXPECT_DOUBLE_EQ(cart.accuracy(training), sprint_tree.accuracy(training));
}

TEST(SerialCart, MaxDepthZeroRootLeaf) {
  const data::Dataset training = quest(9, 50, LabelFunction::kF2);
  core::InductionOptions options;
  options.max_depth = 0;
  const core::DecisionTree tree = sprint::fit_serial_cart(training, options);
  EXPECT_EQ(tree.num_nodes(), 1);
}

// ---------------------------------------------------------------------------
// Parallel SPRINT facade
// ---------------------------------------------------------------------------

TEST(ParallelSprint, GeneratedPathMatchesMaterialized) {
  GeneratorConfig config;
  config.seed = 11;
  config.function = LabelFunction::kF2;
  const QuestGenerator generator(config);
  const data::Dataset training = generator.generate(0, 300);
  const core::DecisionTree a =
      sprint::fit_parallel_sprint(training, 3).tree;
  const core::DecisionTree b =
      sprint::fit_parallel_sprint_generated(generator, 300, 3).tree;
  EXPECT_TRUE(a.same_structure(b));
}

TEST(ParallelSprint, StrategyOverrideIsForced) {
  // Even if the caller passes kDistributedHash, the facade must select the
  // replicated strategy (that is its contract).
  const data::Dataset training = quest(13, 512, LabelFunction::kF2);
  core::InductionControls controls;
  controls.strategy = core::SplittingStrategy::kDistributedHash;
  const auto report = sprint::fit_parallel_sprint(training, 4, controls);
  std::size_t table_peak = 0;
  for (const auto& r : report.run.ranks) {
    table_peak = std::max(table_peak,
                          r.meter.peak_bytes(util::MemCategory::kNodeTable));
  }
  // Replicated table: N * 8 bytes on every rank (child + epoch arrays).
  EXPECT_EQ(table_peak, 512u * 8u);
}

// ---------------------------------------------------------------------------
// Prediction paths
// ---------------------------------------------------------------------------

TEST(Prediction, SubsetSplitTraversal) {
  const data::Dataset training = quest(17, 400, LabelFunction::kF3, 7);
  core::InductionControls controls;
  controls.options.categorical_split = core::CategoricalSplit::kBinarySubset;
  const auto report = core::ScalParC::fit(training, 2, controls);
  EXPECT_DOUBLE_EQ(report.tree.accuracy(training), 1.0);
  // Under subset mode every categorical decision routes through exactly two
  // children, which predict() must follow via value_to_child.
  bool found_categorical = false;
  for (int id = 0; id < report.tree.num_nodes(); ++id) {
    const core::TreeNode& node = report.tree.node(id);
    if (!node.is_leaf && node.split.kind == data::AttributeKind::kCategorical) {
      found_categorical = true;
      EXPECT_EQ(node.children.size(), 2u);
    }
  }
  EXPECT_TRUE(found_categorical);
}

TEST(Prediction, HoldoutAccuracyBatchBoundaries) {
  GeneratorConfig config;
  config.seed = 19;
  config.function = LabelFunction::kF1;
  const QuestGenerator generator(config);
  const auto report = core::ScalParC::fit_generated(generator, 500, 2);
  // Exercise count == 0, count < batch, count == batch, count > batch.
  EXPECT_DOUBLE_EQ(core::holdout_accuracy(report.tree, generator, 9000, 0), 0.0);
  const double a = core::holdout_accuracy(report.tree, generator, 9000, 100);
  const double b = core::holdout_accuracy(report.tree, generator, 9000, 8192);
  const double c = core::holdout_accuracy(report.tree, generator, 9000, 8193);
  EXPECT_GT(a, 0.8);
  EXPECT_GT(b, 0.8);
  EXPECT_GT(c, 0.8);
}

TEST(Prediction, DeterministicAcrossIdenticalFits) {
  const data::Dataset training = quest(23, 300, LabelFunction::kF6, 9, 0.05);
  const core::DecisionTree a = core::ScalParC::fit(training, 3).tree;
  const core::DecisionTree b = core::ScalParC::fit(training, 3).tree;
  EXPECT_TRUE(a.same_structure(b));
}

}  // namespace
}  // namespace scalparc
