// Unit tests for src/util: RNG determinism and distribution sanity, memory
// meter accounting, CLI parsing, duration formatting.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"
#include "util/memory_meter.hpp"
#include "util/random.hpp"
#include "util/stopwatch.hpp"

namespace scalparc {
namespace {

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(Rng, SameSeedSameStream) {
  util::Rng a(42);
  util::Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  util::Rng a(1);
  util::Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a() == b();
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowInRange) {
  util::Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowZeroIsZero) {
  util::Rng rng(7);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, NextIntInclusiveBounds) {
  util::Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.next_int(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all 6 values hit in 5000 draws
}

TEST(Rng, NextDoubleInUnitInterval) {
  util::Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.next_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, NextDoubleRange) {
  util::Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double(5.0, 9.0);
    EXPECT_GE(v, 5.0);
    EXPECT_LT(v, 9.0);
  }
}

TEST(Rng, BernoulliFrequency) {
  util::Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.next_bool(0.25);
  EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

// ---------------------------------------------------------------------------
// MemoryMeter
// ---------------------------------------------------------------------------

TEST(MemoryMeter, TracksCurrentAndPeak) {
  util::MemoryMeter meter;
  meter.allocate(util::MemCategory::kNodeTable, 100);
  meter.allocate(util::MemCategory::kCommBuffers, 50);
  EXPECT_EQ(meter.current_bytes(), 150u);
  EXPECT_EQ(meter.peak_bytes(), 150u);
  meter.release(util::MemCategory::kCommBuffers, 50);
  EXPECT_EQ(meter.current_bytes(), 100u);
  EXPECT_EQ(meter.peak_bytes(), 150u);
  EXPECT_EQ(meter.peak_bytes(util::MemCategory::kCommBuffers), 50u);
}

TEST(MemoryMeter, ScopedAllocationReleasesOnDestruction) {
  util::MemoryMeter meter;
  {
    util::ScopedAllocation guard(&meter, util::MemCategory::kAttributeLists, 64);
    EXPECT_EQ(meter.current_bytes(), 64u);
  }
  EXPECT_EQ(meter.current_bytes(), 0u);
  EXPECT_EQ(meter.peak_bytes(), 64u);
}

TEST(MemoryMeter, ScopedAllocationResize) {
  util::MemoryMeter meter;
  util::ScopedAllocation guard(&meter, util::MemCategory::kNodeTable, 10);
  guard.resize(25);
  EXPECT_EQ(meter.current_bytes(), 25u);
  guard.resize(5);
  EXPECT_EQ(meter.current_bytes(), 5u);
  EXPECT_EQ(meter.peak_bytes(), 25u);
}

TEST(MemoryMeter, ScopedAllocationMove) {
  util::MemoryMeter meter;
  util::ScopedAllocation a(&meter, util::MemCategory::kTreeAndMisc, 8);
  util::ScopedAllocation b = std::move(a);
  EXPECT_EQ(meter.current_bytes(), 8u);
  b.release();
  EXPECT_EQ(meter.current_bytes(), 0u);
}

TEST(MemoryMeter, NullMeterIsNoop) {
  util::ScopedAllocation guard(nullptr, util::MemCategory::kNodeTable, 123);
  guard.resize(77);  // must not crash
}

TEST(MemoryMeter, MergePeaksTakesMax) {
  util::MemoryMeter a;
  util::MemoryMeter b;
  a.allocate(util::MemCategory::kNodeTable, 10);
  b.allocate(util::MemCategory::kNodeTable, 30);
  b.release(util::MemCategory::kNodeTable, 30);
  a.merge_peaks(b);
  EXPECT_EQ(a.peak_bytes(), 30u);
  EXPECT_EQ(a.current_bytes(), 10u);
}

TEST(MemoryMeter, CategoryNames) {
  EXPECT_EQ(util::mem_category_name(util::MemCategory::kNodeTable), "node_table");
  EXPECT_EQ(util::mem_category_name(util::MemCategory::kAttributeLists),
            "attribute_lists");
}

// ---------------------------------------------------------------------------
// CliArgs
// ---------------------------------------------------------------------------

TEST(CliArgs, ParsesFlagValuePairs) {
  const char* argv[] = {"prog", "--records", "1000", "--name=abc", "--verbose"};
  util::CliArgs args(5, argv);
  EXPECT_EQ(args.get_int("records", 0), 1000);
  EXPECT_EQ(args.get_string("name", ""), "abc");
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_EQ(args.get_int("missing", -5), -5);
}

TEST(CliArgs, BooleanBeforeAnotherFlag) {
  const char* argv[] = {"prog", "--fast", "--n", "3"};
  util::CliArgs args(4, argv);
  EXPECT_TRUE(args.get_bool("fast", false));
  EXPECT_EQ(args.get_int("n", 0), 3);
}

TEST(CliArgs, IntList) {
  const char* argv[] = {"prog", "--procs", "2,4,8,16"};
  util::CliArgs args(3, argv);
  const auto list = args.get_int_list("procs", {});
  ASSERT_EQ(list.size(), 4u);
  EXPECT_EQ(list[0], 2);
  EXPECT_EQ(list[3], 16);
}

TEST(CliArgs, IntListDefault) {
  const char* argv[] = {"prog"};
  util::CliArgs args(1, argv);
  const auto list = args.get_int_list("procs", {1, 2});
  ASSERT_EQ(list.size(), 2u);
}

TEST(CliArgs, Positional) {
  const char* argv[] = {"prog", "input.csv", "--k", "2", "out.csv"};
  util::CliArgs args(5, argv);
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.csv");
  EXPECT_EQ(args.positional()[1], "out.csv");
}

TEST(CliArgs, DoubleFlag) {
  const char* argv[] = {"prog", "--noise", "0.25"};
  util::CliArgs args(3, argv);
  EXPECT_DOUBLE_EQ(args.get_double("noise", 0.0), 0.25);
}

// ---------------------------------------------------------------------------
// Logging / Stopwatch
// ---------------------------------------------------------------------------

TEST(Logging, ParseLevels) {
  EXPECT_EQ(util::parse_log_level("debug"), util::LogLevel::kDebug);
  EXPECT_EQ(util::parse_log_level("off"), util::LogLevel::kOff);
  EXPECT_EQ(util::parse_log_level("nonsense"), util::LogLevel::kWarn);
}

TEST(Logging, LevelRoundTrip) {
  const util::LogLevel before = util::log_level();
  util::set_log_level(util::LogLevel::kError);
  EXPECT_EQ(util::log_level(), util::LogLevel::kError);
  util::set_log_level(before);
}

TEST(Stopwatch, MeasuresNonNegative) {
  util::Stopwatch sw;
  EXPECT_GE(sw.elapsed_seconds(), 0.0);
}

TEST(Stopwatch, FormatDuration) {
  char buffer[32];
  EXPECT_STREQ(util::format_duration({1.5}, buffer, sizeof(buffer)), "1.500 s");
  EXPECT_STREQ(util::format_duration({0.0025}, buffer, sizeof(buffer)), "2.500 ms");
  EXPECT_STREQ(util::format_duration({25e-6}, buffer, sizeof(buffer)), "25.0 us");
}

// ---------------------------------------------------------------------------
// Json (the bench output format)
// ---------------------------------------------------------------------------

TEST(Json, BuildDumpParseRoundTrip) {
  util::Json doc = util::Json::object();
  doc["bench"] = "level_comm";
  doc["records"] = std::int64_t{16000};
  doc["ok"] = true;
  doc["ratio"] = 1.25;
  util::Json runs = util::Json::array();
  util::Json run = util::Json::object();
  run["procs"] = 8;
  run["fused"] = false;
  runs.push_back(std::move(run));
  doc["runs"] = std::move(runs);

  const util::Json parsed = util::Json::parse(doc.dump(2));
  EXPECT_EQ(parsed.at("bench").as_string(), "level_comm");
  EXPECT_EQ(parsed.at("records").as_int(), 16000);
  EXPECT_TRUE(parsed.at("ok").as_bool());
  EXPECT_DOUBLE_EQ(parsed.at("ratio").as_double(), 1.25);
  EXPECT_EQ(parsed.at("runs").size(), 1u);
  EXPECT_EQ(parsed.at("runs").at(0).at("procs").as_int(), 8);
  EXPECT_FALSE(parsed.at("runs").at(0).at("fused").as_bool());
  // Deterministic serialization: dump(parse(dump(x))) == dump(x).
  EXPECT_EQ(parsed.dump(2), doc.dump(2));
  // Compact form parses identically.
  EXPECT_EQ(util::Json::parse(doc.dump(0)).dump(2), doc.dump(2));
}

TEST(Json, ParsesEscapesAndNested) {
  const util::Json v = util::Json::parse(
      R"({"s": "a\"b\\c\ndA", "xs": [1, -2.5, 3e2, null, [true]]})");
  EXPECT_EQ(v.at("s").as_string(), "a\"b\\c\ndA");
  EXPECT_EQ(v.at("xs").size(), 5u);
  EXPECT_DOUBLE_EQ(v.at("xs").at(1).as_double(), -2.5);
  EXPECT_DOUBLE_EQ(v.at("xs").at(2).as_double(), 300.0);
  EXPECT_TRUE(v.at("xs").at(3).is_null());
  EXPECT_TRUE(v.at("xs").at(4).at(0).as_bool());
}

TEST(Json, ControlCharactersRoundTrip) {
  // Every C0 control character must survive dump -> parse, escaped as the
  // short form where JSON has one and \u00xx otherwise.
  for (int c = 0x01; c < 0x20; ++c) {
    std::string s = "a";
    s += static_cast<char>(c);
    s += "b";
    util::Json doc = util::Json::object();
    doc["s"] = s;
    const std::string text = doc.dump(0);
    for (const char ch : text) {
      EXPECT_GE(static_cast<unsigned char>(ch), 0x20u)
          << "raw control char 0x" << c << " leaked into the output";
    }
    EXPECT_EQ(util::Json::parse(text).at("s").as_string(), s)
        << "control char 0x" << c;
  }
  // High (0x80+) bytes pass through as-is (UTF-8 payloads).
  util::Json doc = util::Json::object();
  doc["s"] = std::string("caf\xc3\xa9");
  EXPECT_EQ(util::Json::parse(doc.dump(0)).at("s").as_string(),
            "caf\xc3\xa9");
}

TEST(Json, NonFiniteNumbersSerializeAsNull) {
  util::Json doc = util::Json::object();
  doc["nan"] = std::nan("");
  doc["inf"] = std::numeric_limits<double>::infinity();
  doc["ninf"] = -std::numeric_limits<double>::infinity();
  doc["ok"] = 1.5;
  const util::Json parsed = util::Json::parse(doc.dump(2));
  EXPECT_TRUE(parsed.at("nan").is_null());
  EXPECT_TRUE(parsed.at("inf").is_null());
  EXPECT_TRUE(parsed.at("ninf").is_null());
  EXPECT_DOUBLE_EQ(parsed.at("ok").as_double(), 1.5);
}

TEST(Json, RandomStringsRoundTrip) {
  // Deterministic fuzz over the full byte range (sans NUL, which std::string
  // carries but C-string-based call sites never produce).
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  const auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int round = 0; round < 200; ++round) {
    std::string s;
    const std::size_t length = next() % 40;
    for (std::size_t i = 0; i < length; ++i) {
      const char ch = static_cast<char>(1 + next() % 127);  // 0x01..0x7f
      s += ch;
    }
    util::Json doc = util::Json::object();
    doc[s] = s;  // exercise both key and value escaping
    const util::Json parsed = util::Json::parse(doc.dump(0));
    EXPECT_EQ(parsed.at(s).as_string(), s) << "round " << round;
  }
}

TEST(Json, RejectsMalformedDocuments) {
  for (const char* bad : {"", "{", "[1,]", "{\"a\":}", "tru", "1 2",
                          "\"unterminated", "{\"a\" 1}", "nan"}) {
    EXPECT_THROW((void)util::Json::parse(bad), std::invalid_argument)
        << "input: " << bad;
  }
  const util::Json v = util::Json::parse("{\"a\": 1}");
  EXPECT_THROW((void)v.at("missing"), std::out_of_range);
  EXPECT_THROW((void)v.at("a").as_string(), std::invalid_argument);
  EXPECT_EQ(v.find("missing"), nullptr);
}

}  // namespace
}  // namespace scalparc
