// Thread-backed SPMD runtime: spawns one thread per rank, runs the supplied
// body on each, and collects per-rank statistics, memory peaks and modeled
// time. This substitutes for "MPI on the Cray T3D" (see DESIGN.md §2):
// ranks share nothing except messages, so communication volume and pattern
// match a true distributed-memory run.
//
// Failure semantics: a rank that throws poisons every channel, so peers
// blocked in recv unwind with RankAborted. try_run_ranks reports which rank
// failed first (and with what message) instead of rethrowing; run_ranks
// keeps the throwing contract. Every blocking receive is bounded by the
// RunOptions timeout and an all-ranks-blocked deadlock detector, so a lost
// message or an injected deadlock terminates with a diagnostic instead of
// hanging the process. An optional FaultPlan injects deterministic crashes,
// payload corruption, delays and message drops (see mp/fault.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <type_traits>
#include <vector>

#include "mp/comm.hpp"
#include "mp/costmodel.hpp"
#include "mp/health.hpp"
#include "mp/mailbox.hpp"
#include "mp/stats.hpp"
#include "util/memory_meter.hpp"

namespace scalparc::mp {

class FaultPlan;  // mp/fault.hpp

// Default per-receive timeout: 120 s, overridable via the
// SCALPARC_TEST_RECV_TIMEOUT_S environment variable so test binaries can make
// fault-suite failures fail in seconds instead of minutes. Read on every call
// (not cached) so tests can change it between runs. A set-but-malformed (or
// non-positive) value throws std::invalid_argument naming the variable and
// the offending text instead of silently falling back to the default.
double default_recv_timeout_s();

// Ack/retransmit layer configuration (see mp/mailbox.hpp). Enabled by
// default: dropped, corrupted and duplicated messages heal in-band without
// surfacing to the application.
struct ReliabilityOptions {
  bool enabled = true;
  // Per-receive cap on heal attempts (nacks + timer retransmit requests);
  // once exhausted the legacy failure paths (CorruptMessage, deadlock
  // detector, recv timeout) take over.
  int max_retransmits = 8;
  // First timer-driven retransmit request fires after ~backoff_ms; each
  // subsequent one doubles the wait (capped), with deterministic jitter.
  double backoff_ms = 25.0;
  double backoff_cap_ms = 1000.0;
  // Per-channel bound on retained clean copies of unacknowledged sends.
  std::size_t inflight_cap = 64;
};

struct RunOptions {
  // Faults to inject; nullptr runs clean. Must outlive the run.
  const FaultPlan* fault_plan = nullptr;
  // Per-receive wall-clock timeout in seconds; <= 0 disables. Generous by
  // default: it exists so a lost message can never hang ctest forever even
  // if the deadlock detector is switched off.
  double recv_timeout_s = default_recv_timeout_s();
  // Abort with a per-rank diagnostic as soon as every unfinished rank is
  // blocked in a receive with no deliverable message.
  bool detect_deadlock = true;
  // Self-healing transport (ack/retransmit/dedupe).
  ReliabilityOptions reliability;
  // Gray-failure subsystem (phi-accrual heartbeats, adaptive per-channel
  // timeouts, straggler classification). All off by default; see
  // mp/health.hpp.
  HealthOptions health;
  // Elastic grow: world size of the previous (failed) attempt. 0 on a normal
  // run. When positive and smaller than this run's nranks, ranks in
  // [prior_world, nranks) are *joiners* that must pass the join_handshake
  // capability exchange before they can carry restored partitions.
  int prior_world = 0;
};

// Shared state between the ranks of one run: the p x p channel matrix plus
// the per-rank wait registry backing the deadlock detector.
class Hub {
 public:
  explicit Hub(int nranks, const RunOptions& options = {});

  int size() const { return nranks_; }
  const RunOptions& options() const { return options_; }

  // Channel carrying messages from `src` to `dst`.
  Channel& channel(int src, int dst) {
    return channels_[static_cast<std::size_t>(src) *
                         static_cast<std::size_t>(nranks_) +
                     static_cast<std::size_t>(dst)];
  }

  // True when every channel has been drained (sanity check after a run).
  bool all_channels_empty() const;

  // Removes every queued message; returns how many were discarded. Called
  // in run teardown so an aborted run cannot leak undelivered messages.
  std::size_t drain_all_channels();

  // Aborts the run: wakes every blocked receiver with RankAborted.
  void poison_all();

  // Aggregated reliability counters over all channels.
  ChannelStats transport_stats() const;

  // Gray-failure health lanes (heartbeats, watermarks, busy time) shared by
  // all ranks of the run. Always constructed; its hot paths are only driven
  // when options().health.monitoring().
  HealthRegistry& health() { return health_; }
  const HealthRegistry& health() const { return health_; }

  // --- deadlock detection and liveness --------------------------------
  // Ranks register what they are blocked on; a rank whose wait slice
  // expires asks for a diagnostic. Non-empty result means the run is
  // provably stuck: every unfinished rank is blocked and none of their
  // awaited messages is queued or retransmittable (sends are buffered, so
  // no new message can ever appear).
  //
  // Each rank carries a liveness epoch, bumped on every blocked/unblocked
  // transition; the diagnostic reports it, and mark_dead records a rank that
  // terminated with a primary error so the diagnostic (and the recovery
  // layer, via RunResult::dead_ranks) can classify "rank dead — shrink or
  // restart" apart from "all ranks blocked" livelock.
  void mark_blocked(int rank, int src, std::int64_t tag);
  void mark_unblocked(int rank);
  // The blocked receiver exhausted its retransmit budget: the detector must
  // stop assuming it will heal the channel itself and regain authority to
  // declare the run stuck.
  void mark_heal_exhausted(int rank);
  void mark_finished(int rank);
  void mark_dead(int rank);
  // Elastic grow: records that `rank` (a joiner, >= options().prior_world)
  // passed the capability handshake, bumping its liveness epoch so the
  // deadlock detector treats the admit as observed progress.
  void admit_joiner(int rank);
  std::uint64_t joiners_admitted() const;
  std::vector<int> dead_ranks() const;
  std::string deadlock_diagnostic();
  // Sum of all ranks' liveness epochs: total blocked/unblocked transitions
  // the wait registry observed (runtime.liveness_epoch_bumps metric).
  std::uint64_t total_liveness_epoch_bumps() const;

 private:
  // One-shot registry scan. Empty string: someone can still progress. For an
  // all-blocked livelock verdict, the unfinished ranks' liveness epochs are
  // appended to `epochs` (left empty for the rank-death classification) so
  // deadlock_diagnostic can demand a stable re-observation before aborting.
  std::string deadlock_probe(std::vector<std::uint64_t>* epochs);

  struct WaitState {
    bool blocked = false;
    bool finished = false;
    bool dead = false;
    // True once this receive's retransmit budget ran out (reset on every
    // new block): disables the can_retransmit deadlock-probe suppression.
    bool heal_exhausted = false;
    int src = -1;
    std::int64_t tag = 0;
    // Liveness epoch: number of blocked/unblocked transitions observed.
    std::uint64_t epoch = 0;
  };

  int nranks_;
  RunOptions options_;
  HealthRegistry health_;
  std::vector<Channel> channels_;
  mutable std::mutex wait_mutex_;
  std::vector<WaitState> waits_;
  int unfinished_ = 0;
  std::uint64_t joiners_admitted_ = 0;  // guarded by wait_mutex_
};

// What a joiner brings to the table, exchanged during the grow handshake.
// Every field must match rank 0's view of the checkpointed job exactly: a
// joiner restoring against a different checkpoint fingerprint or dataset
// geometry would silently produce a divergent tree.
struct JoinCapability {
  std::uint64_t fingerprint = 0;   // checkpoint schema/options fingerprint
  std::int64_t total_records = 0;  // global record count of the training set
  std::int32_t num_attributes = 0;
  std::int32_t layout = 0;         // attribute-list layout discriminant
};
static_assert(std::is_trivially_copyable_v<JoinCapability>);

// Admission protocol for elastic grow, called by every rank (SPMD) before
// the re-tiling restore. No-op (returns 0) unless the run was configured
// with 0 < RunOptions::prior_world < world size. Otherwise each joiner
// (rank >= prior_world) sends its JoinCapability to rank 0; rank 0 checks
// every field against its own view, admits the joiner at the current
// liveness epoch (Hub::admit_joiner), and distributes the admitted count to
// all ranks. A capability mismatch throws on rank 0 — a primary, classified
// failure — so a bad joiner can never receive partitions. Returns the number
// of joiners admitted and records it as recovery.joiners_admitted.
int join_handshake(Comm& comm, const JoinCapability& capability);

struct RankOutcome {
  CommStats stats;
  util::MemoryMeter meter;
  double vtime_seconds = 0.0;
  // This rank's slice of the unified registry; the thread-local sink
  // (mp::metrics_sink) points here while the rank body runs.
  MetricsSnapshot metrics;
};

// Classification of a failed run, derived from the primary error's type:
// kRankDeath means a specific rank terminated (its partitions are gone and
// the world can shrink to the survivors); kDeadlock / kTimeout mean no rank
// provably died — only a full restart is sound. kStraggler means every rank
// is alive and correct but one is persistently slow (gray failure): the
// recovery layer can rebalance work away from it and resume from the last
// checkpoint.
enum class FailureKind { kNone, kRankDeath, kDeadlock, kTimeout, kStraggler };

struct RunResult {
  // Modeled parallel runtime: max over ranks of the final virtual clock.
  double modeled_seconds = 0.0;
  // Actual wall-clock time of the threaded run (noisy when oversubscribed).
  double wall_seconds = 0.0;
  std::vector<RankOutcome> ranks;

  // Failure report (try_run_ranks): first rank whose body threw a primary
  // error, -1 for a clean run. Ranks that merely unwound with RankAborted
  // after a peer's failure are not reported.
  int failed_rank = -1;
  std::string failure_message;
  std::exception_ptr error;
  FailureKind failure_kind = FailureKind::kNone;
  // kStraggler only: the rank classified as persistently slow and its
  // estimated slowdown factor (busy-time ratio vs the median peer, clamped).
  int straggler_rank = -1;
  double straggler_slowdown = 0.0;
  // Every rank that terminated with its own primary error (liveness
  // registry); the complement are the survivors a shrink recovery keeps.
  std::vector<int> dead_ranks;
  // Messages discarded from the channels during teardown (non-zero only
  // after an aborted run).
  std::size_t undelivered_messages = 0;
  // Aggregated ack/retransmit counters over all channels: how much in-band
  // healing the transport performed during the run.
  ChannelStats transport;
  // Unified registry: every rank's snapshot merged (counters summed, gauges
  // maxed, histograms folded) plus the run-scoped transport/runtime
  // families. See mp/metrics.hpp and docs/observability.md.
  MetricsSnapshot metrics;

  bool failed() const { return failed_rank >= 0; }

  CommStats total_stats() const;
  std::size_t max_peak_bytes_per_rank() const;
  std::uint64_t max_bytes_sent_per_rank() const;
};

// Runs `body(comm)` on `nranks` ranks. Never rethrows a rank's exception:
// inspect RunResult::failed()/failed_rank/error instead. A clean run with
// undelivered messages still throws std::logic_error (protocol bug).
RunResult try_run_ranks(int nranks, const CostModel& model,
                        const std::function<void(Comm&)>& body,
                        const RunOptions& options = {});

// Runs `body(comm)` on `nranks` ranks and returns the aggregated result.
// Any exception thrown by a rank is rethrown on the calling thread after all
// ranks have been joined.
RunResult run_ranks(int nranks, const CostModel& model,
                    const std::function<void(Comm&)>& body,
                    const RunOptions& options = {});

}  // namespace scalparc::mp
