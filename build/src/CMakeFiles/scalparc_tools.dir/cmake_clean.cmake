file(REMOVE_RECURSE
  "CMakeFiles/scalparc_tools.dir/tools/cli_app.cpp.o"
  "CMakeFiles/scalparc_tools.dir/tools/cli_app.cpp.o.d"
  "libscalparc_tools.a"
  "libscalparc_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalparc_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
