#include "core/tree_io.hpp"

#include <cinttypes>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace scalparc::core {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("tree_io: " + what);
}

std::string double_to_hex(double value) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%a", value);
  return buffer;
}

double hex_to_double(const std::string& text) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str()) fail("bad threshold '" + text + "'");
  return value;
}

}  // namespace

void save_tree(const DecisionTree& tree, std::ostream& out) {
  const data::Schema& schema = tree.schema();
  out << "scalparc-tree v1\n";
  out << "classes " << schema.num_classes() << '\n';
  for (int a = 0; a < schema.num_attributes(); ++a) {
    const data::AttributeInfo& info = schema.attribute(a);
    if (info.kind == data::AttributeKind::kContinuous) {
      out << "attr " << info.name << " cont\n";
    } else {
      out << "attr " << info.name << " cat " << info.cardinality << '\n';
    }
  }
  out << "nodes " << tree.num_nodes() << '\n';
  for (int id = 0; id < tree.num_nodes(); ++id) {
    const TreeNode& node = tree.node(id);
    out << "node " << id << ' ';
    if (node.is_leaf) {
      out << "leaf";
    } else {
      out << (node.split.kind == data::AttributeKind::kContinuous ? "cont"
                                                                  : "cat");
    }
    out << ' ' << node.depth << ' ' << node.num_records << ' '
        << node.majority_class;
    for (const std::int64_t count : node.class_counts) out << ' ' << count;
    if (!node.is_leaf) {
      out << ' ' << node.split.attribute;
      if (node.split.kind == data::AttributeKind::kContinuous) {
        out << ' ' << double_to_hex(node.split.threshold);
      } else {
        out << ' ' << node.split.num_children;
        for (const std::int32_t slot : node.split.value_to_child) {
          out << ' ' << slot;
        }
      }
      for (const int child : node.children) out << ' ' << child;
    }
    out << '\n';
  }
}

void save_tree_file(const DecisionTree& tree, const std::string& path) {
  std::ofstream out(path);
  if (!out) fail("cannot open '" + path + "' for writing");
  save_tree(tree, out);
}

DecisionTree load_tree(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != "scalparc-tree v1") {
    fail("missing 'scalparc-tree v1' header");
  }
  std::int32_t num_classes = 0;
  if (!(in >> line >> num_classes) || line != "classes" || num_classes < 2) {
    fail("bad classes line");
  }

  std::vector<data::AttributeInfo> attributes;
  std::string token;
  for (;;) {
    if (!(in >> token)) fail("unexpected end of input");
    if (token == "nodes") break;
    if (token != "attr") fail("expected 'attr' or 'nodes', got '" + token + "'");
    std::string name;
    std::string kind;
    if (!(in >> name >> kind)) fail("bad attr line");
    if (kind == "cont") {
      attributes.push_back(data::Schema::continuous(name));
    } else if (kind == "cat") {
      std::int32_t cardinality = 0;
      if (!(in >> cardinality)) fail("bad categorical cardinality");
      attributes.push_back(data::Schema::categorical(name, cardinality));
    } else {
      fail("bad attribute kind '" + kind + "'");
    }
  }

  int num_nodes = 0;
  if (!(in >> num_nodes) || num_nodes < 0) fail("bad node count");
  DecisionTree tree(data::Schema(std::move(attributes), num_classes));
  const data::Schema& schema = tree.schema();

  for (int expected = 0; expected < num_nodes; ++expected) {
    int id = 0;
    std::string kind;
    if (!(in >> token >> id >> kind) || token != "node" || id != expected) {
      fail("bad node line (expected node " + std::to_string(expected) + ")");
    }
    TreeNode node;
    if (!(in >> node.depth >> node.num_records >> node.majority_class)) {
      fail("bad node header");
    }
    node.class_counts.resize(static_cast<std::size_t>(num_classes));
    for (auto& count : node.class_counts) {
      if (!(in >> count)) fail("bad class counts");
    }
    if (kind == "leaf") {
      node.is_leaf = true;
    } else if (kind == "cont" || kind == "cat") {
      node.is_leaf = false;
      if (!(in >> node.split.attribute)) fail("bad split attribute");
      if (node.split.attribute < 0 ||
          node.split.attribute >= schema.num_attributes()) {
        fail("split attribute out of range");
      }
      if (kind == "cont") {
        node.split.kind = data::AttributeKind::kContinuous;
        node.split.num_children = 2;
        if (!(in >> token)) fail("bad threshold");
        node.split.threshold = hex_to_double(token);
      } else {
        node.split.kind = data::AttributeKind::kCategorical;
        if (!(in >> node.split.num_children) || node.split.num_children < 2) {
          fail("bad child count");
        }
        const std::int32_t cardinality =
            schema.attribute(node.split.attribute).cardinality;
        node.split.value_to_child.resize(static_cast<std::size_t>(cardinality));
        for (auto& slot : node.split.value_to_child) {
          if (!(in >> slot)) fail("bad value_to_child");
        }
      }
      node.children.resize(static_cast<std::size_t>(node.split.num_children));
      for (auto& child : node.children) {
        if (!(in >> child) || child < 0 || child >= num_nodes) {
          fail("bad child id");
        }
      }
    } else {
      fail("bad node kind '" + kind + "'");
    }
    tree.add_node(std::move(node));
  }
  return tree;
}

DecisionTree load_tree_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("cannot open '" + path + "' for reading");
  return load_tree(in);
}

}  // namespace scalparc::core
