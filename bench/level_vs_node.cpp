// Ablation A2: per-level vs per-node communication (§3.1).
//
// ScalParC batches all nodes of a tree level into each collective operation;
// the design discussion argues that synchronizing per *node* instead would
// be dominated by latency at the deep levels where thousands of small nodes
// are active. This bench runs a real induction with per-level statistics
// and, for each level, compares:
//
//   measured: the collective traffic the per-level batching actually used
//   modeled:  the latency floor a per-node formulation would pay — every
//             active node costing one round of the same collectives
//             (latency x ceil(log2 p) each, data volume unchanged)
//
//   ./level_vs_node [--records N] [--ranks P] [--csv DIR]
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace scalparc;
  const util::CliArgs args(argc, argv);
  const std::uint64_t records =
      static_cast<std::uint64_t>(args.get_int("records", 100000));
  const int ranks = static_cast<int>(args.get_int("ranks", 32));
  // Label noise grows the tree deep and bushy — the regime where the
  // per-node formulation's latency explodes.
  data::GeneratorConfig config;
  config.seed = 1;
  config.function = data::LabelFunction::kF2;
  config.num_attributes = 7;
  config.label_noise = args.get_double("noise", 0.05);
  const data::QuestGenerator generator(config);
  auto controls = bench::paper_controls();
  controls.collect_level_stats = true;
  const auto model = mp::CostModel::cray_t3d();

  const auto report = core::ScalParC::fit_generated(generator, records, ranks,
                                                    controls, model);

  // Collectives issued per level by the per-level formulation (independent
  // of the number of nodes): per continuous attribute 2 exscans; per
  // categorical attribute 1 reduce + up to 1 bcast; plus 1 candidate
  // allreduce, 1 child-count allreduce, node-table update & enquiry
  // all-to-alls per attribute. Count ~6 + 3*n_a collective rounds.
  const int n_attrs = generator.schema().num_attributes();
  const double rounds_per_level = 6.0 + 3.0 * n_attrs;
  const double round_latency =
      model.latency_s * std::ceil(std::log2(static_cast<double>(ranks)));

  bench::CsvWriter csv(args, "level_vs_node.csv",
                       "level,active_nodes,active_records,"
                       "per_level_latency_s,per_node_latency_s,ratio");

  std::printf("A2: per-level vs per-node communication (%llu records, %d ranks)\n\n",
              static_cast<unsigned long long>(records), ranks);
  std::printf("%6s %12s %14s | %18s %18s %8s\n", "level", "nodes", "records",
              "per-level lat (s)", "per-node lat (s)", "ratio");

  double total_level = 0.0;
  double total_node = 0.0;
  for (const auto& level : report.stats.per_level) {
    const double per_level = rounds_per_level * round_latency;
    const double per_node =
        rounds_per_level * round_latency * static_cast<double>(level.active_nodes);
    total_level += per_level;
    total_node += per_node;
    std::printf("%6d %12lld %14lld | %18.5f %18.5f %8.1f\n", level.level,
                static_cast<long long>(level.active_nodes),
                static_cast<long long>(level.active_records), per_level,
                per_node, per_node / per_level);
    csv.row("%d,%lld,%lld,%.6f,%.6f,%.2f", level.level,
            static_cast<long long>(level.active_nodes),
            static_cast<long long>(level.active_records), per_level, per_node,
            per_node / per_level);
  }
  std::printf("\ntotal latency floor: per-level %.4f s, per-node %.4f s (%.0fx)\n",
              total_level, total_node, total_node / total_level);
  std::printf("whole-fit modeled time (per-level formulation): %.4f s\n",
              report.run.modeled_seconds);
  std::printf(
      "\nAt the deep levels the active-node count explodes while per-node\n"
      "work shrinks, so a per-node formulation's latency alone can exceed\n"
      "the entire per-level fit — the §3.1 design choice quantified.\n");
  std::printf("\nCSV written to %s\n", csv.path().c_str());
  return 0;
}
