// Tests for the out-of-core substrate (spill files, external sort) and the
// out-of-core serial SPRINT classifier, including the §2 multi-pass
// splitting behavior under shrinking hash-table memory budgets.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>

#include "core/scalparc.hpp"
#include "data/attribute_list.hpp"
#include "data/synthetic.hpp"
#include "ooc/external_sort.hpp"
#include "ooc/ooc_sprint.hpp"
#include "ooc/spill_file.hpp"
#include "sprint/serial_sprint.hpp"
#include "util/random.hpp"

namespace scalparc {
namespace {

// ---------------------------------------------------------------------------
// Spill files
// ---------------------------------------------------------------------------

TEST(SpillFile, WriteReadRoundTrip) {
  ooc::IoStats io;
  std::vector<std::int64_t> data(1000);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::int64_t>(i * 3);
  const ooc::TempFile file = ooc::spill<std::int64_t>(data, &io);
  EXPECT_EQ(file.size_bytes(), data.size() * sizeof(std::int64_t));
  EXPECT_EQ(ooc::slurp<std::int64_t>(file, &io), data);
  EXPECT_EQ(io.bytes_written, data.size() * sizeof(std::int64_t));
  EXPECT_EQ(io.bytes_read, data.size() * sizeof(std::int64_t));
  EXPECT_EQ(io.files_created, 1u);
}

TEST(SpillFile, EmptyFileReadsNothing) {
  ooc::TempFile file;
  std::int32_t record = 0;
  ooc::TypedReader<std::int32_t> reader(file);
  EXPECT_FALSE(reader.next(record));
}

TEST(SpillFile, BufferedAppendAcrossFlushes) {
  ooc::TempFile file;
  {
    ooc::TypedWriter<std::int32_t> writer(file, nullptr, /*buffer=*/3);
    for (std::int32_t i = 0; i < 10; ++i) writer.append(i);
    EXPECT_EQ(writer.count(), 10u);
  }  // destructor flushes the tail
  const auto got = ooc::slurp<std::int32_t>(file);
  ASSERT_EQ(got.size(), 10u);
  for (std::int32_t i = 0; i < 10; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
}

TEST(SpillFile, WindowedReader) {
  ooc::TempFile file;
  {
    ooc::TypedWriter<std::int32_t> writer(file);
    for (std::int32_t i = 0; i < 100; ++i) writer.append(i);
  }
  ooc::TypedReader<std::int32_t> window(file, nullptr, 7, /*start=*/40,
                                        /*max=*/25);
  std::int32_t record = -1;
  for (std::int32_t expect = 40; expect < 65; ++expect) {
    ASSERT_TRUE(window.next(record));
    EXPECT_EQ(record, expect);
  }
  EXPECT_FALSE(window.next(record));
}

TEST(SpillFile, FileRemovedOnDestruction) {
  std::string path;
  {
    ooc::TempFile file;
    path = file.path();
    EXPECT_TRUE(std::filesystem::exists(path));
  }
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(SpillFile, MoveTransfersOwnership) {
  ooc::TempFile a;
  const std::string path = a.path();
  ooc::TempFile b = std::move(a);
  EXPECT_EQ(b.path(), path);
  EXPECT_TRUE(std::filesystem::exists(path));
}

// ---------------------------------------------------------------------------
// External sort
// ---------------------------------------------------------------------------

class ExternalSort : public ::testing::TestWithParam<std::size_t> {};

INSTANTIATE_TEST_SUITE_P(Budgets, ExternalSort,
                         ::testing::Values(16, 100, 1000, 100000));

TEST_P(ExternalSort, SortsRandomData) {
  const std::size_t budget = GetParam();
  util::Rng rng(77);
  std::vector<std::int64_t> data(5000);
  for (auto& v : data) v = rng.next_int(-100000, 100000);
  ooc::IoStats io;
  const ooc::TempFile input = ooc::spill<std::int64_t>(data, &io);
  const ooc::TempFile sorted =
      ooc::external_sort<std::int64_t>(input, budget, std::less<>{}, &io);
  auto got = ooc::slurp<std::int64_t>(sorted);
  std::sort(data.begin(), data.end());
  EXPECT_EQ(got, data);
}

TEST(ExternalSortEdge, EmptyInput) {
  ooc::TempFile input;
  const ooc::TempFile sorted =
      ooc::external_sort<std::int32_t>(input, 10, std::less<>{});
  EXPECT_TRUE(ooc::slurp<std::int32_t>(sorted).empty());
}

TEST(ExternalSortEdge, ZeroBudgetThrows) {
  ooc::TempFile input;
  EXPECT_THROW(
      (void)ooc::external_sort<std::int32_t>(input, 0, std::less<>{}),
      std::invalid_argument);
}

TEST(ExternalSortEdge, SmallBudgetReadsMore) {
  util::Rng rng(3);
  std::vector<std::int64_t> data(4000);
  for (auto& v : data) v = static_cast<std::int64_t>(rng());
  ooc::IoStats generous_io;
  ooc::IoStats tight_io;
  {
    const ooc::TempFile input = ooc::spill<std::int64_t>(data, &generous_io);
    (void)ooc::external_sort<std::int64_t>(input, 100000, std::less<>{},
                                           &generous_io);
  }
  {
    const ooc::TempFile input = ooc::spill<std::int64_t>(data, &tight_io);
    (void)ooc::external_sort<std::int64_t>(input, 64, std::less<>{}, &tight_io);
  }
  // Same asymptotic I/O (one run pass + one merge pass) but many more files.
  EXPECT_GT(tight_io.files_created, generous_io.files_created);
}

TEST(ExternalSortEdge, StableForAttributeEntries) {
  util::Rng rng(5);
  std::vector<data::ContinuousEntry> data(3000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i].value = static_cast<double>(rng.next_below(50));  // heavy ties
    data[i].rid = static_cast<std::int64_t>(i);
  }
  const ooc::TempFile input = ooc::spill<data::ContinuousEntry>(data);
  const ooc::TempFile sorted = ooc::external_sort<data::ContinuousEntry>(
      input, 128, data::ContinuousEntryLess{});
  const auto got = ooc::slurp<data::ContinuousEntry>(sorted);
  ASSERT_EQ(got.size(), data.size());
  for (std::size_t i = 1; i < got.size(); ++i) {
    EXPECT_TRUE(data::ContinuousEntryLess{}(got[i - 1], got[i]));
  }
}

// ---------------------------------------------------------------------------
// Out-of-core SPRINT
// ---------------------------------------------------------------------------

data::Dataset quest_data(std::uint64_t seed, std::size_t n,
                         data::LabelFunction f = data::LabelFunction::kF2) {
  data::GeneratorConfig config;
  config.seed = seed;
  config.function = f;
  return data::QuestGenerator(config).generate(0, n);
}

TEST(OocSprint, MatchesInMemoryOracleWithAmpleMemory) {
  const data::Dataset training = quest_data(11, 500);
  core::InductionOptions options;
  options.max_depth = 10;
  const core::DecisionTree oracle = sprint::fit_serial_sprint(training, options);
  ooc::OocOptions ooc_options;
  ooc_options.induction = options;
  const ooc::OocReport report = ooc::fit_ooc_sprint(training, ooc_options);
  EXPECT_TRUE(oracle.same_structure(report.tree));
  EXPECT_EQ(report.max_passes_per_level, 1u);
  EXPECT_EQ(report.io.extra_passes, 0u);
}

class OocBudget : public ::testing::TestWithParam<std::size_t> {};

// Budgets in bytes: 4 bytes/record, 400 records -> 1600 needed for 1 pass.
INSTANTIATE_TEST_SUITE_P(Budgets, OocBudget,
                         ::testing::Values(1600, 800, 400, 100, 16));

TEST_P(OocBudget, TreeIdenticalForEveryHashBudget) {
  const data::Dataset training = quest_data(13, 400, data::LabelFunction::kF3);
  core::InductionOptions options;
  options.max_depth = 8;
  const core::DecisionTree oracle = sprint::fit_serial_sprint(training, options);
  ooc::OocOptions ooc_options;
  ooc_options.induction = options;
  ooc_options.hash_memory_budget_bytes = GetParam();
  const ooc::OocReport report = ooc::fit_ooc_sprint(training, ooc_options);
  EXPECT_TRUE(oracle.same_structure(report.tree)) << "budget " << GetParam();
  const std::uint64_t expected_passes =
      (400 * 4 + GetParam() - 1) / GetParam();
  EXPECT_EQ(report.max_passes_per_level, expected_passes);
}

TEST(OocSprint, SmallerBudgetCostsMoreIo) {
  const data::Dataset training = quest_data(17, 600);
  ooc::OocOptions generous;
  generous.hash_memory_budget_bytes = 1 << 20;
  ooc::OocOptions tight;
  tight.hash_memory_budget_bytes = 600;  // ~16 passes
  const auto a = ooc::fit_ooc_sprint(training, generous);
  const auto b = ooc::fit_ooc_sprint(training, tight);
  EXPECT_TRUE(a.tree.same_structure(b.tree));
  // Only the splitting phase multiplies with the pass count (presort and
  // split determination are pass-independent), so expect a solid but not
  // pass-proportional inflation.
  EXPECT_GT(b.io.bytes_read, a.io.bytes_read * 3 / 2);
  EXPECT_GT(b.io.extra_passes, 0u);
  EXPECT_EQ(a.io.extra_passes, 0u);
}

TEST(OocSprint, MatchesScalParC) {
  const data::Dataset training = quest_data(19, 350, data::LabelFunction::kF6);
  core::InductionControls controls;
  controls.options.max_depth = 8;
  const core::DecisionTree parallel =
      core::ScalParC::fit(training, 4, controls).tree;
  ooc::OocOptions ooc_options;
  ooc_options.induction = controls.options;
  ooc_options.hash_memory_budget_bytes = 256;
  const auto report = ooc::fit_ooc_sprint(training, ooc_options);
  EXPECT_TRUE(parallel.same_structure(report.tree));
}

TEST(OocSprint, TinySortBudgetStillSorts) {
  const data::Dataset training = quest_data(23, 300);
  ooc::OocOptions options;
  options.sort_memory_budget_records = 8;  // dozens of runs per attribute
  const auto report = ooc::fit_ooc_sprint(training, options);
  const core::DecisionTree oracle = sprint::fit_serial_sprint(training);
  EXPECT_TRUE(oracle.same_structure(report.tree));
}

TEST(OocSprint, RejectsBadInputs) {
  data::GeneratorConfig config;
  const data::Dataset empty(data::QuestGenerator(config).schema());
  EXPECT_THROW((void)ooc::fit_ooc_sprint(empty, {}), std::invalid_argument);
  const data::Dataset small = quest_data(1, 10);
  ooc::OocOptions bad;
  bad.hash_memory_budget_bytes = 2;  // below one entry
  EXPECT_THROW((void)ooc::fit_ooc_sprint(small, bad), std::invalid_argument);
}

TEST(OocSprint, AccuracyMatchesTrainingSet) {
  const data::Dataset training = quest_data(29, 400);
  const auto report = ooc::fit_ooc_sprint(training, {});
  EXPECT_DOUBLE_EQ(report.tree.accuracy(training), 1.0);
  EXPECT_GT(report.levels, 0);
}

}  // namespace
}  // namespace scalparc
