#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace scalparc::util {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_sink_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel parse_log_level(std::string_view name) {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return LogLevel::kWarn;
}

void log_line(LogLevel level, std::string_view message) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::fprintf(stderr, "[scalparc %s] %.*s\n", level_tag(level),
               static_cast<int>(message.size()), message.data());
}

}  // namespace scalparc::util
