file(REMOVE_RECURSE
  "CMakeFiles/scalparc_sort.dir/sort/rebalance.cpp.o"
  "CMakeFiles/scalparc_sort.dir/sort/rebalance.cpp.o.d"
  "CMakeFiles/scalparc_sort.dir/sort/sample_sort.cpp.o"
  "CMakeFiles/scalparc_sort.dir/sort/sample_sort.cpp.o.d"
  "libscalparc_sort.a"
  "libscalparc_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalparc_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
