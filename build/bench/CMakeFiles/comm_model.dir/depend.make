# Empty dependencies file for comm_model.
# This may be replaced when dependencies are built.
