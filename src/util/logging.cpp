#include "util/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <stdexcept>

#include "util/json.hpp"

namespace scalparc::util {

namespace {

// -1 = "take the initial level from the SCALPARC_LOG env var on first read".
constexpr int kLevelUnset = -1;
std::atomic<int> g_level{kLevelUnset};
std::mutex g_sink_mutex;

thread_local int t_rank = -1;

const std::chrono::steady_clock::time_point g_process_start =
    std::chrono::steady_clock::now();

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

int initial_level() {
  const char* env = std::getenv("SCALPARC_LOG");
  const LogLevel level =
      env != nullptr ? parse_log_level(env) : LogLevel::kWarn;
  return static_cast<int>(level);
}

// -1 = "take the initial format from the SCALPARC_LOG_FORMAT env var".
constexpr int kFormatUnset = -1;
std::atomic<int> g_format{kFormatUnset};

int initial_format() {
  const char* env = std::getenv("SCALPARC_LOG_FORMAT");
  if (env == nullptr) return static_cast<int>(LogFormat::kText);
  return static_cast<int>(parse_log_format(env));
}

}  // namespace

LogLevel log_level() {
  int level = g_level.load(std::memory_order_relaxed);
  if (level == kLevelUnset) {
    // Benign race: every thread computes the same env-derived value, and an
    // explicit set_log_level that slips in between wins via the strong CAS.
    int expected = kLevelUnset;
    const int from_env = initial_level();
    g_level.compare_exchange_strong(expected, from_env,
                                    std::memory_order_relaxed);
    level = g_level.load(std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(level);
}

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel parse_log_level(std::string_view name) {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return LogLevel::kWarn;
}

LogFormat log_format() {
  int format = g_format.load(std::memory_order_relaxed);
  if (format == kFormatUnset) {
    // Same benign-race CAS as log_level(): every thread computes the same
    // env-derived value. A garbage env value throws out of initial_format,
    // which is the loud rejection the other knobs get.
    int expected = kFormatUnset;
    const int from_env = initial_format();
    g_format.compare_exchange_strong(expected, from_env,
                                     std::memory_order_relaxed);
    format = g_format.load(std::memory_order_relaxed);
  }
  return static_cast<LogFormat>(format);
}

void set_log_format(LogFormat format) {
  g_format.store(static_cast<int>(format), std::memory_order_relaxed);
}

LogFormat parse_log_format(std::string_view name) {
  if (name == "text") return LogFormat::kText;
  if (name == "json") return LogFormat::kJson;
  throw std::invalid_argument(
      "SCALPARC_LOG_FORMAT: expected 'text' or 'json', got '" +
      std::string(name) + "'");
}

void set_thread_rank(int rank) { t_rank = rank; }

int thread_rank() { return t_rank; }

double monotonic_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       g_process_start)
      .count();
}

void log_line(LogLevel level, std::string_view message) {
  if (log_format() == LogFormat::kJson) {
    // One JSON object per line (the Json writer handles escaping); built
    // outside the sink lock, emitted under it so lines never interleave.
    Json record = Json::object();
    record["ts"] = monotonic_seconds();
    record["rank"] = t_rank;
    record["level"] = std::string(level_tag(level));
    record["msg"] = std::string(message);
    const std::string line = record.dump(0);
    std::lock_guard<std::mutex> lock(g_sink_mutex);
    std::fprintf(stderr, "%s\n", line.c_str());
    return;
  }
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  if (t_rank >= 0) {
    std::fprintf(stderr, "[scalparc r%d +%.6fs %s] %.*s\n", t_rank,
                 monotonic_seconds(), level_tag(level),
                 static_cast<int>(message.size()), message.data());
  } else {
    std::fprintf(stderr, "[scalparc %s] %.*s\n", level_tag(level),
                 static_cast<int>(message.size()), message.data());
  }
}

}  // namespace scalparc::util
