file(REMOVE_RECURSE
  "CMakeFiles/isoefficiency.dir/isoefficiency.cpp.o"
  "CMakeFiles/isoefficiency.dir/isoefficiency.cpp.o.d"
  "isoefficiency"
  "isoefficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isoefficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
