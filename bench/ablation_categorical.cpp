// Ablation A3 (DESIGN.md §6.3): categorical count-matrix reduction strategy.
//
//   coordinator (paper): reduce each categorical attribute's matrices to one
//       designated rank, evaluate candidates there, broadcast the winning
//       value->child mappings.
//   all-ranks: allreduce the matrices so every rank evaluates candidates
//       redundantly; no broadcast round.
//
// Both produce identical trees; this bench compares modeled time and
// per-rank traffic as p and the categorical cardinality pressure grow.
//
//   ./ablation_categorical [--records N] [--procs 2,4,...] [--csv DIR]
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace scalparc;
  const util::CliArgs args(argc, argv);
  const std::uint64_t records =
      static_cast<std::uint64_t>(args.get_int("records", 100000));
  const auto procs = args.get_int_list("procs", {2, 4, 8, 16, 32, 64});
  // All nine attributes so all three categorical attributes participate.
  data::GeneratorConfig config;
  config.seed = 1;
  config.function = data::LabelFunction::kF3;  // splits on elevel
  config.num_attributes = 9;
  const data::QuestGenerator generator(config);
  const auto model = mp::CostModel::cray_t3d();

  bench::CsvWriter csv(args, "ablation_categorical.csv",
                       "procs,coordinator_s,allranks_s,"
                       "coordinator_mb_per_rank,allranks_mb_per_rank");

  std::printf("A3: categorical reduction strategy, %llu records (9 attrs, 3 categorical)\n\n",
              static_cast<unsigned long long>(records));
  std::printf("%6s | %14s %14s | %14s %14s\n", "procs", "coordinator(s)",
              "all-ranks(s)", "coord MB/rank", "all MB/rank");

  for (const std::int64_t p : procs) {
    auto controls = bench::paper_controls();
    controls.options.categorical_reduction = core::CategoricalReduction::kCoordinator;
    const auto coordinator = core::ScalParC::fit_generated(
        generator, records, static_cast<int>(p), controls, model);
    controls.options.categorical_reduction = core::CategoricalReduction::kAllRanks;
    const auto allranks = core::ScalParC::fit_generated(
        generator, records, static_cast<int>(p), controls, model);
    if (!coordinator.tree.same_structure(allranks.tree)) {
      std::printf("ERROR: trees differ at p=%lld\n", static_cast<long long>(p));
      return 1;
    }
    const double c_mb =
        static_cast<double>(coordinator.run.max_bytes_sent_per_rank()) / 1e6;
    const double a_mb =
        static_cast<double>(allranks.run.max_bytes_sent_per_rank()) / 1e6;
    std::printf("%6lld | %14.4f %14.4f | %14.3f %14.3f\n",
                static_cast<long long>(p), coordinator.run.modeled_seconds,
                allranks.run.modeled_seconds, c_mb, a_mb);
    csv.row("%lld,%.6f,%.6f,%.6f,%.6f", static_cast<long long>(p),
            coordinator.run.modeled_seconds, allranks.run.modeled_seconds,
            c_mb, a_mb);
  }
  std::printf(
      "\nThe all-ranks variant pays an extra broadcast inside its allreduce\n"
      "(reduce + bcast of full matrices) but saves the mapping broadcast;\n"
      "the coordinator wins once the matrices outweigh the mappings.\n");
  std::printf("\nCSV written to %s\n", csv.path().c_str());
  return 0;
}
