// Figure 3(b): ScalParC memory scalability.
//
// Paper: memory required per processor vs processor count for the six
// training sizes. Observations: (i) for small p, memory per processor drops
// by almost exactly 2x when p doubles (the O(N/p) data structures dominate);
// (ii) for large p the curves flatten because some collective-communication
// buffers grow with p.
//
// We account every major allocation (attribute lists, node table, count
// matrices, communication staging buffers) against the owning rank's
// MemoryMeter and report the maximum per-rank peak.
//
//   ./fig3b_memory [--scale X] [--procs 2,4,...] [--csv DIR]
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace scalparc;
  const util::CliArgs args(argc, argv);
  const double scale = args.get_double("scale", 1.0 / 16.0);
  const auto sizes = bench::paper_sizes(scale);
  const auto procs = args.get_int_list("procs", bench::paper_procs());
  const auto generator = bench::paper_generator();
  const auto controls = bench::paper_controls();

  bench::CsvWriter csv(args, "fig3b_memory.csv",
                       "records,procs,peak_mb_per_rank,halving_factor");

  std::printf("Figure 3(b): memory requirements per processor (scale %.4g)\n\n",
              scale);
  std::printf("%10s %6s %18s %16s\n", "records", "procs", "peak MB/processor",
              "halving factor");

  for (const std::uint64_t n : sizes) {
    double previous_mb = 0.0;
    for (const std::int64_t p : procs) {
      const auto report = core::ScalParC::fit_generated(
          generator, n, static_cast<int>(p), controls, mp::CostModel::zero());
      const double mb =
          static_cast<double>(report.run.max_peak_bytes_per_rank()) / 1e6;
      const double factor = previous_mb > 0.0 ? previous_mb / mb : 0.0;
      if (previous_mb > 0.0) {
        std::printf("%10s %6lld %18.3f %16.2f\n", bench::size_label(n).c_str(),
                    static_cast<long long>(p), mb, factor);
      } else {
        std::printf("%10s %6lld %18.3f %16s\n", bench::size_label(n).c_str(),
                    static_cast<long long>(p), mb, "-");
      }
      csv.row("%llu,%lld,%.6f,%.4f", static_cast<unsigned long long>(n),
              static_cast<long long>(p), mb, factor);
      previous_mb = mb;
    }
    std::printf("\n");
  }
  std::printf(
      "A halving factor near 2.00 at small p and visibly below 2.00 at the\n"
      "largest p reproduces the paper's observation that collective buffers\n"
      "grow with the processor count.\n");
  std::printf("\nCSV written to %s\n", csv.path().c_str());
  return 0;
}
