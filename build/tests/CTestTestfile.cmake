# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_mp[1]_include.cmake")
include("/root/repo/build/tests/test_sort[1]_include.cmake")
include("/root/repo/build/tests/test_data[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_node_table[1]_include.cmake")
include("/root/repo/build/tests/test_induction[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_multiclass[1]_include.cmake")
include("/root/repo/build/tests/test_ooc[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_cli[1]_include.cmake")
