file(REMOVE_RECURSE
  "CMakeFiles/test_node_table.dir/test_node_table.cpp.o"
  "CMakeFiles/test_node_table.dir/test_node_table.cpp.o.d"
  "test_node_table"
  "test_node_table.pdb"
  "test_node_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_node_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
