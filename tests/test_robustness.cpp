// Robustness and fuzzing: malformed persisted artifacts must throw (never
// crash or silently mis-parse), non-finite inputs are rejected, adversarial
// data shapes train correctly, and the full option matrix preserves
// processor-count invariance.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "core/scalparc.hpp"
#include "core/tree_io.hpp"
#include "data/csv.hpp"
#include "data/synthetic.hpp"
#include "sprint/serial_sprint.hpp"
#include "util/random.hpp"

namespace scalparc {
namespace {

using data::Schema;

const mp::CostModel kZero = mp::CostModel::zero();

// ---------------------------------------------------------------------------
// Non-finite values
// ---------------------------------------------------------------------------

TEST(NonFinite, ValidateRejectsNaN) {
  data::Dataset d(Schema({Schema::continuous("x")}, 2));
  const double nan_value[] = {std::numeric_limits<double>::quiet_NaN()};
  d.append(nan_value, {}, 0);
  EXPECT_THROW(d.validate(), std::invalid_argument);
}

TEST(NonFinite, ValidateRejectsInfinity) {
  data::Dataset d(Schema({Schema::continuous("x")}, 2));
  const double inf_value[] = {std::numeric_limits<double>::infinity()};
  d.append(inf_value, {}, 0);
  EXPECT_THROW(d.validate(), std::invalid_argument);
}

TEST(NonFinite, CsvReaderRejectsNaN) {
  std::stringstream in("x:cont,class:2\nnan,0\n1.0,1\n");
  EXPECT_THROW((void)data::read_csv(in), std::runtime_error);
}

// ---------------------------------------------------------------------------
// CSV fuzzing: random mutations of a valid file must either parse or throw.
// ---------------------------------------------------------------------------

TEST(CsvFuzz, MutatedFilesNeverCrash) {
  data::GeneratorConfig config;
  config.seed = 99;
  const data::QuestGenerator generator(config);
  std::stringstream original;
  data::write_csv(generator.generate(0, 30), original);
  const std::string base = original.str();

  util::Rng rng(4242);
  int parsed = 0;
  int rejected = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = base;
    const int edits = 1 + static_cast<int>(rng.next_below(4));
    for (int e = 0; e < edits; ++e) {
      const std::size_t pos = rng.next_below(mutated.size());
      switch (rng.next_below(3)) {
        case 0:
          mutated[pos] = static_cast<char>(32 + rng.next_below(95));
          break;
        case 1:
          mutated.erase(pos, 1 + rng.next_below(5));
          break;
        default:
          mutated.insert(pos, 1, static_cast<char>(32 + rng.next_below(95)));
          break;
      }
    }
    std::stringstream in(mutated);
    try {
      const data::Dataset d = data::read_csv(in);
      d.validate();
      ++parsed;
    } catch (const std::exception&) {
      ++rejected;
    }
  }
  // Both outcomes must occur (some mutations are benign, e.g. in a value),
  // and none may escape as a crash or non-std exception.
  EXPECT_GT(parsed + rejected, 0);
  EXPECT_GT(rejected, 0);
}

// ---------------------------------------------------------------------------
// Tree-file fuzzing.
// ---------------------------------------------------------------------------

TEST(TreeIoFuzz, MutatedModelsNeverCrash) {
  data::GeneratorConfig config;
  config.seed = 7;
  const data::QuestGenerator generator(config);
  const core::DecisionTree tree =
      core::ScalParC::fit(generator.generate(0, 200), 2).tree;
  std::stringstream original;
  core::save_tree(tree, original);
  const std::string base = original.str();

  util::Rng rng(777);
  int rejected = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = base;
    const std::size_t pos = rng.next_below(mutated.size());
    mutated[pos] = static_cast<char>(32 + rng.next_below(95));
    std::stringstream in(mutated);
    try {
      const core::DecisionTree loaded = core::load_tree(in);
      // If it parsed, it must still be a usable predictor.
      const data::Dataset probe = generator.generate(5000, 5);
      for (std::size_t row = 0; row < probe.num_records(); ++row) {
        const std::int32_t y = loaded.predict(probe, row);
        ASSERT_GE(y, 0);
        ASSERT_LT(y, 2);
      }
    } catch (const std::exception&) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);
}

// ---------------------------------------------------------------------------
// Adversarial data shapes.
// ---------------------------------------------------------------------------

TEST(Adversarial, AlternatingClassesOnSortedValues) {
  // Worst case for the split scan: every adjacent pair flips class, so every
  // position is a candidate and gains are tiny but the tree must still
  // separate all records.
  Schema schema({Schema::continuous("x")}, 2);
  data::Dataset d(schema);
  for (int i = 0; i < 64; ++i) {
    const double x[] = {static_cast<double>(i)};
    d.append(x, {}, i % 2);
  }
  const auto report = core::ScalParC::fit(d, 4);
  EXPECT_DOUBLE_EQ(report.tree.accuracy(d), 1.0);
  const core::DecisionTree serial = core::ScalParC::fit(d, 1).tree;
  EXPECT_TRUE(serial.same_structure(report.tree));
}

TEST(Adversarial, MassiveDuplicateRuns) {
  // 90% of records share one attribute value; candidates exist only at the
  // two run boundaries.
  Schema schema({Schema::continuous("x")}, 2);
  data::Dataset d(schema);
  for (int i = 0; i < 200; ++i) {
    const double x[] = {i < 180 ? 5.0 : static_cast<double>(i)};
    d.append(x, {}, i < 180 ? 0 : 1);
  }
  const auto report = core::ScalParC::fit(d, 5);
  EXPECT_DOUBLE_EQ(report.tree.accuracy(d), 1.0);
  EXPECT_EQ(report.tree.num_nodes(), 3);  // one split suffices
}

TEST(Adversarial, ExtremeMagnitudes) {
  Schema schema({Schema::continuous("x")}, 2);
  data::Dataset d(schema);
  const double values[] = {-1e300, -1e-300, 0.0, 1e-300, 1e300, 1e299};
  for (int i = 0; i < 6; ++i) {
    const double x[] = {values[i]};
    d.append(x, {}, i < 3 ? 0 : 1);
  }
  const auto report = core::ScalParC::fit(d, 3);
  EXPECT_DOUBLE_EQ(report.tree.accuracy(d), 1.0);
}

TEST(Adversarial, SingleClassAmongMany) {
  // 5 declared classes but only class 3 occurs: root must be a pure leaf.
  Schema schema({Schema::continuous("x")}, 5);
  data::Dataset d(schema);
  for (int i = 0; i < 20; ++i) {
    const double x[] = {static_cast<double>(i)};
    d.append(x, {}, 3);
  }
  const auto report = core::ScalParC::fit(d, 2);
  EXPECT_EQ(report.tree.num_nodes(), 1);
  EXPECT_EQ(report.tree.node(0).majority_class, 3);
}

TEST(Adversarial, SkewedBlockSizesAcrossRanks) {
  // fit() gives contiguous equal blocks; emulate extreme skew by calling
  // fit_rank directly with all data on one rank.
  data::GeneratorConfig config;
  config.seed = 15;
  const data::QuestGenerator generator(config);
  const data::Dataset all = generator.generate(0, 200);
  std::vector<core::InductionResult> results(3);
  mp::run_ranks(3, kZero, [&](mp::Comm& comm) {
    const data::Dataset block =
        comm.rank() == 1 ? all : data::Dataset(generator.schema());
    const std::int64_t first_rid = comm.rank() <= 1 ? 0 : 200;
    results[static_cast<std::size_t>(comm.rank())] =
        core::ScalParC::fit_rank(comm, block, first_rid, 200, {});
  });
  const core::DecisionTree reference = core::ScalParC::fit(all, 1).tree;
  for (const auto& result : results) {
    EXPECT_TRUE(reference.same_structure(result.tree));
  }
}

// ---------------------------------------------------------------------------
// Full option-matrix invariance sweep.
// ---------------------------------------------------------------------------

struct OptionCase {
  core::SplitCriterion criterion;
  core::CategoricalSplit categorical;
  core::SplittingStrategy strategy;
  core::CategoricalReduction reduction;
  const char* name;
};

class OptionMatrix : public ::testing::TestWithParam<OptionCase> {};

INSTANTIATE_TEST_SUITE_P(
    AllCombos, OptionMatrix,
    ::testing::Values(
        OptionCase{core::SplitCriterion::kGini, core::CategoricalSplit::kMultiWay,
                   core::SplittingStrategy::kDistributedHash,
                   core::CategoricalReduction::kCoordinator, "gini_multi_dist_coord"},
        OptionCase{core::SplitCriterion::kGini, core::CategoricalSplit::kMultiWay,
                   core::SplittingStrategy::kReplicatedHash,
                   core::CategoricalReduction::kAllRanks, "gini_multi_repl_all"},
        OptionCase{core::SplitCriterion::kGini, core::CategoricalSplit::kBinarySubset,
                   core::SplittingStrategy::kDistributedHash,
                   core::CategoricalReduction::kAllRanks, "gini_subset_dist_all"},
        OptionCase{core::SplitCriterion::kEntropy, core::CategoricalSplit::kMultiWay,
                   core::SplittingStrategy::kDistributedHash,
                   core::CategoricalReduction::kCoordinator, "entropy_multi_dist_coord"},
        OptionCase{core::SplitCriterion::kEntropy, core::CategoricalSplit::kBinarySubset,
                   core::SplittingStrategy::kReplicatedHash,
                   core::CategoricalReduction::kCoordinator, "entropy_subset_repl_coord"},
        OptionCase{core::SplitCriterion::kEntropy, core::CategoricalSplit::kBinarySubset,
                   core::SplittingStrategy::kDistributedHash,
                   core::CategoricalReduction::kAllRanks, "entropy_subset_dist_all"}),
    [](const ::testing::TestParamInfo<OptionCase>& info) {
      return info.param.name;
    });

TEST_P(OptionMatrix, PInvarianceAndOracleAgreement) {
  const OptionCase& params = GetParam();
  data::GeneratorConfig config;
  config.seed = 67;
  config.function = data::LabelFunction::kF3;  // splits on a categorical
  config.num_attributes = 9;
  config.label_noise = 0.03;
  const data::QuestGenerator generator(config);
  const data::Dataset training = generator.generate(0, 350);

  core::InductionControls controls;
  controls.options.max_depth = 8;
  controls.options.criterion = params.criterion;
  controls.options.categorical_split = params.categorical;
  controls.options.categorical_reduction = params.reduction;
  controls.strategy = params.strategy;

  const core::DecisionTree serial =
      sprint::fit_serial_sprint(training, controls.options);
  for (const int p : {1, 3, 6}) {
    const core::DecisionTree tree =
        core::ScalParC::fit(training, p, controls, kZero).tree;
    EXPECT_TRUE(serial.same_structure(tree)) << "p=" << p;
  }
}

}  // namespace
}  // namespace scalparc
