// Scalable parallel sample sort (the paper's Presort phase).
//
// ScalParC sorts every continuous attribute list exactly once, using "the
// scalable parallel sample sort algorithm followed by a parallel shift
// operation" (§4). This header implements sample sort over any trivially
// copyable element type with a strict-weak-order comparator:
//
//   1. sort locally;
//   2. pick p-1 regular samples per rank, gather them, choose p-1 global
//      splitters from the sorted sample set;
//   3. partition local data by the splitters and exchange with one
//      all-to-all personalized communication;
//   4. merge the received sorted runs.
//
// The comparator must induce a total order for the exchange to be
// deterministic under duplicate keys; attribute lists use (value, rid).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "data/attribute_list.hpp"
#include "mp/collectives.hpp"
#include "mp/comm.hpp"
#include "sort/columns_wire.hpp"
#include "sort/partition_util.hpp"
#include "sort/rebalance.hpp"

namespace scalparc::sort {

namespace detail {

// Merges k sorted runs laid out contiguously in `data` with boundaries
// `offsets` (offsets.size() == k + 1) using pairwise std::inplace_merge.
template <typename T, typename Less>
void merge_runs(std::vector<T>& data, std::vector<std::size_t> offsets,
                Less less) {
  while (offsets.size() > 2) {
    std::vector<std::size_t> next;
    next.reserve(offsets.size() / 2 + 1);
    next.push_back(offsets.front());
    for (std::size_t i = 0; i + 2 < offsets.size(); i += 2) {
      std::inplace_merge(data.begin() + static_cast<std::ptrdiff_t>(offsets[i]),
                         data.begin() + static_cast<std::ptrdiff_t>(offsets[i + 1]),
                         data.begin() + static_cast<std::ptrdiff_t>(offsets[i + 2]),
                         less);
      next.push_back(offsets[i + 2]);
    }
    if (offsets.size() % 2 == 0) next.push_back(offsets.back());
    offsets = std::move(next);
  }
}

}  // namespace detail

// Sorts the union of all ranks' `local` data. On return, every rank holds a
// sorted run and runs are globally ordered by rank (rank 0 holds the
// smallest elements). Element counts per rank are data-dependent; use
// rebalance() afterwards to restore an exact block distribution.
template <mp::WireType T, typename Less>
std::vector<T> sample_sort(mp::Comm& comm, std::vector<T> local, Less less) {
  const int p = comm.size();

  std::sort(local.begin(), local.end(), less);
  if (!local.empty()) {
    comm.add_work(static_cast<double>(local.size()) *
                  std::log2(static_cast<double>(local.size()) + 1.0));
  }
  if (p == 1) return local;

  // Regular sampling: p-1 samples per rank.
  std::vector<T> samples;
  samples.reserve(static_cast<std::size_t>(p - 1));
  for (int i = 1; i < p; ++i) {
    if (local.empty()) break;
    const std::size_t idx =
        (static_cast<std::size_t>(i) * local.size()) / static_cast<std::size_t>(p);
    samples.push_back(local[std::min(idx, local.size() - 1)]);
  }
  std::vector<T> all_samples =
      mp::allgatherv_concat(comm, std::span<const T>(samples));
  std::sort(all_samples.begin(), all_samples.end(), less);

  // p-1 splitters chosen regularly from the gathered samples.
  std::vector<T> splitters;
  splitters.reserve(static_cast<std::size_t>(p - 1));
  if (!all_samples.empty()) {
    for (int i = 1; i < p; ++i) {
      const std::size_t idx = (static_cast<std::size_t>(i) * all_samples.size()) /
                              static_cast<std::size_t>(p);
      splitters.push_back(all_samples[std::min(idx, all_samples.size() - 1)]);
    }
  }

  // Partition local data into p destination buckets by splitter.
  std::vector<std::vector<T>> sendbufs(static_cast<std::size_t>(p));
  if (splitters.empty()) {
    sendbufs[0] = std::move(local);
  } else {
    std::size_t begin = 0;
    for (int d = 0; d < p; ++d) {
      std::size_t end;
      if (d == p - 1) {
        end = local.size();
      } else {
        const auto it = std::upper_bound(
            local.begin() + static_cast<std::ptrdiff_t>(begin), local.end(),
            splitters[static_cast<std::size_t>(d)], less);
        end = static_cast<std::size_t>(it - local.begin());
      }
      sendbufs[static_cast<std::size_t>(d)]
          .assign(local.begin() + static_cast<std::ptrdiff_t>(begin),
                  local.begin() + static_cast<std::ptrdiff_t>(end));
      begin = end;
    }
    local.clear();
  }

  std::vector<std::vector<T>> recvbufs = mp::alltoallv(comm, sendbufs);

  // Concatenate the p sorted runs and merge them.
  std::vector<T> merged;
  std::vector<std::size_t> run_offsets;
  run_offsets.reserve(recvbufs.size() + 1);
  run_offsets.push_back(0);
  std::size_t total = 0;
  for (const auto& run : recvbufs) total += run.size();
  merged.reserve(total);
  for (auto& run : recvbufs) {
    merged.insert(merged.end(), run.begin(), run.end());
    run_offsets.push_back(merged.size());
  }
  detail::merge_runs(merged, std::move(run_offsets), less);
  comm.add_work(static_cast<double>(merged.size()) *
                std::log2(static_cast<double>(p) + 1.0));
  return merged;
}

// ---------------------------------------------------------------------------
// SoA variant: sample sort over ContinuousColumns by (value, rid).
//
// Same algorithm, columnar data plane: the local sort runs over an index
// permutation (8-byte moves instead of 24-byte struct moves), splitters
// travel as (value, rid) pairs, and the all-to-all exchanges packed column
// slices at 20 bytes per record. The global result — the unique totally
// ordered sequence re-tiled by rank — is identical to sorting the
// equivalent AoS entries.
// ---------------------------------------------------------------------------

namespace detail {

// Splitter wire form for the columnar sort.
struct ValueRid {
  double value = 0.0;
  std::int64_t rid = 0;
};

struct ValueRidLess {
  bool operator()(const ValueRid& a, const ValueRid& b) const {
    if (a.value != b.value) return a.value < b.value;
    return a.rid < b.rid;
  }
};

// Applies permutation `perm` to all three columns (gather pass).
inline data::ContinuousColumns permute_columns(
    const data::ContinuousColumns& cols, std::span<const std::size_t> perm) {
  data::ContinuousColumns out;
  out.resize(cols.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    out.set(i, cols, perm[i]);
  }
  return out;
}

// First index in sorted columns whose (value, rid) exceeds the splitter.
inline std::size_t upper_bound_columns(const data::ContinuousColumns& cols,
                                       std::size_t begin, const ValueRid& key) {
  std::size_t lo = begin;
  std::size_t hi = cols.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    const bool key_below = key.value < cols.values[mid] ||
                           (key.value == cols.values[mid] &&
                            key.rid < cols.rids[mid]);
    if (key_below) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace detail

inline data::ContinuousColumns sample_sort_columns(mp::Comm& comm,
                                                   data::ContinuousColumns local) {
  const int p = comm.size();
  const std::size_t n = local.size();

  // Local sort by permutation, then one gather pass per column.
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  std::sort(perm.begin(), perm.end(),
            [&local](std::size_t a, std::size_t b) {
              if (local.values[a] != local.values[b]) {
                return local.values[a] < local.values[b];
              }
              return local.rids[a] < local.rids[b];
            });
  local = detail::permute_columns(local, perm);
  if (n > 0) {
    comm.add_work(static_cast<double>(n) *
                  std::log2(static_cast<double>(n) + 1.0));
  }
  if (p == 1) return local;

  // Regular sampling and global splitters, exactly as the AoS path.
  std::vector<detail::ValueRid> samples;
  samples.reserve(static_cast<std::size_t>(p - 1));
  for (int i = 1; i < p; ++i) {
    if (local.empty()) break;
    const std::size_t idx =
        (static_cast<std::size_t>(i) * n) / static_cast<std::size_t>(p);
    const std::size_t at = std::min(idx, n - 1);
    samples.push_back(detail::ValueRid{local.values[at], local.rids[at]});
  }
  std::vector<detail::ValueRid> all_samples =
      mp::allgatherv_concat(comm, std::span<const detail::ValueRid>(samples));
  std::sort(all_samples.begin(), all_samples.end(), detail::ValueRidLess{});

  std::vector<detail::ValueRid> splitters;
  splitters.reserve(static_cast<std::size_t>(p - 1));
  if (!all_samples.empty()) {
    for (int i = 1; i < p; ++i) {
      const std::size_t idx = (static_cast<std::size_t>(i) * all_samples.size()) /
                              static_cast<std::size_t>(p);
      splitters.push_back(all_samples[std::min(idx, all_samples.size() - 1)]);
    }
  }

  // Partition into packed per-destination slices and exchange once.
  std::vector<std::vector<std::byte>> sendbufs(static_cast<std::size_t>(p));
  if (splitters.empty()) {
    sendbufs[0] = pack_columns(local, 0, local.size());
  } else {
    std::size_t begin = 0;
    for (int d = 0; d < p; ++d) {
      const std::size_t end =
          d == p - 1 ? local.size()
                     : detail::upper_bound_columns(
                           local, begin, splitters[static_cast<std::size_t>(d)]);
      sendbufs[static_cast<std::size_t>(d)] = pack_columns(local, begin, end);
      begin = end;
    }
  }
  local.clear();
  std::vector<std::vector<std::byte>> recvbufs = mp::alltoallv(comm, sendbufs);

  // Concatenate the received runs and merge them through an index merge, so
  // each record moves once in the final gather.
  data::ContinuousColumns merged;
  std::vector<std::size_t> run_offsets;
  run_offsets.reserve(recvbufs.size() + 1);
  run_offsets.push_back(0);
  for (const auto& run : recvbufs) {
    unpack_columns(run, merged);
    run_offsets.push_back(merged.size());
  }
  std::vector<std::size_t> order(merged.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  const auto less = [&merged](std::size_t a, std::size_t b) {
    if (merged.values[a] != merged.values[b]) {
      return merged.values[a] < merged.values[b];
    }
    return merged.rids[a] < merged.rids[b];
  };
  while (run_offsets.size() > 2) {
    std::vector<std::size_t> next;
    next.reserve(run_offsets.size() / 2 + 1);
    next.push_back(run_offsets.front());
    for (std::size_t i = 0; i + 2 < run_offsets.size(); i += 2) {
      std::inplace_merge(
          order.begin() + static_cast<std::ptrdiff_t>(run_offsets[i]),
          order.begin() + static_cast<std::ptrdiff_t>(run_offsets[i + 1]),
          order.begin() + static_cast<std::ptrdiff_t>(run_offsets[i + 2]), less);
      next.push_back(run_offsets[i + 2]);
    }
    if (run_offsets.size() % 2 == 0) next.push_back(run_offsets.back());
    run_offsets = std::move(next);
  }
  comm.add_work(static_cast<double>(merged.size()) *
                std::log2(static_cast<double>(p) + 1.0));
  return detail::permute_columns(merged, order);
}

// SoA variant of the order-preserving parallel shift (see sort/rebalance.hpp
// for the contract); exchanges packed column slices.
inline data::ContinuousColumns rebalance_columns(
    mp::Comm& comm, data::ContinuousColumns local,
    const std::vector<std::size_t>& target_sizes) {
  const int p = comm.size();
  if (p == 1) return local;

  const std::uint64_t local_size = local.size();
  const std::uint64_t my_start =
      mp::exscan_value(comm, local_size, mp::SumOp{}, std::uint64_t{0});
  const std::vector<std::size_t> target_offsets =
      offsets_from_sizes(target_sizes);

  std::vector<std::vector<std::byte>> sendbufs(static_cast<std::size_t>(p));
  std::size_t cursor = 0;
  while (cursor < local.size()) {
    const std::size_t global = static_cast<std::size_t>(my_start) + cursor;
    const int dst = owner_of_global_index(global, target_offsets);
    const std::size_t dst_end = target_offsets[static_cast<std::size_t>(dst) + 1];
    const std::size_t take = std::min(local.size() - cursor, dst_end - global);
    sendbufs[static_cast<std::size_t>(dst)] =
        pack_columns(local, cursor, cursor + take);
    cursor += take;
  }
  local.clear();

  std::vector<std::vector<std::byte>> recvbufs = mp::alltoallv(comm, sendbufs);
  data::ContinuousColumns out;
  out.reserve(target_sizes[static_cast<std::size_t>(comm.rank())]);
  // Sources arrive in rank order, which is global order.
  for (const auto& chunk : recvbufs) unpack_columns(chunk, out);
  return out;
}

}  // namespace scalparc::sort
