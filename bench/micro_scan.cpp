// Per-record compute kernels in isolation: scan layout x impurity kernel,
// and the owner-side hash table organisation.
//
// Everything this bench measures is wall-clock (Stopwatch), not modeled
// vtime: the point of the SoA layout, the incremental gini kernel, and the
// flat prefetched table is what the *hardware* does per record, which the
// cost model deliberately abstracts away.
//
//   part 1 — gini scan: the same sorted continuous attribute list is scanned
//            with (a) the AoS entry walk + O(classes) recompute scanner (the
//            differential oracle) and (b) the SoA columnar kernel + O(1)
//            incremental scanner. Both at p = 1..16 simulated ranks, each
//            rank scanning its FindSplitI fragment. Records/second, plus the
//            SoA/AoS speedup the tentpole claims.
//   part 2 — hash probes: update + enquire the same key set through the
//            chained owner-side table and the flat open-addressing table
//            with probe-group prefetching. Probes/second.
//
//   ./micro_scan [--records N] [--run L] [--procs 1,2,4,8,16] [--keys K]
//                [--table-procs 1,4] [--reps R] [--seed S]
//                [--min-speedup X] [--out BENCH_compute.json]
//                [--validate BENCH_compute.json] [--csv DIR]
//
// --out writes the machine-readable JSON document; --validate re-parses a
// document and checks its schema plus the headline claim (SoA+incremental
// scan throughput >= min_speedup x the AoS+recompute throughput at p=1 and,
// when measured, p=8), exiting non-zero on violation. The `perf` ctest label
// runs this at tiny scale as a smoke test.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/chained_hash.hpp"
#include "core/flat_hash.hpp"
#include "core/gini.hpp"
#include "core/split_finder.hpp"
#include "data/attribute_list.hpp"
#include "mp/metrics.hpp"
#include "util/json.hpp"
#include "util/stopwatch.hpp"

namespace {

using scalparc::util::Json;

struct ScanRow {
  int procs = 0;
  double aos_seconds = 0.0;
  double soa_seconds = 0.0;
  double aos_records_per_s = 0.0;
  double soa_records_per_s = 0.0;
  double speedup = 0.0;
};

struct TableRow {
  int procs = 0;
  double chained_seconds = 0.0;
  double flat_seconds = 0.0;
  double chained_probes_per_s = 0.0;
  double flat_probes_per_s = 0.0;
  double flat_speedup = 0.0;
  // Metrics registry of the flat-table run (hash.probe_length histogram,
  // hash.occupancy_pct, comm.*), embedded under "details" in the JSON.
  Json details;
};

// Schema + claim validation; prints the first violation and returns false.
bool validate(const Json& doc) {
  const auto complain = [](const std::string& why) {
    std::fprintf(stderr, "BENCH_compute.json validation failed: %s\n",
                 why.c_str());
    return false;
  };
  try {
    if (doc.at("bench").as_string() != "micro_scan") {
      return complain("bench name is not 'micro_scan'");
    }
    if (doc.at("records").as_int() <= 0) return complain("records <= 0");
    if (doc.at("keys").as_int() <= 0) return complain("keys <= 0");
    const double min_speedup = doc.at("min_speedup").as_double();
    if (!(min_speedup > 0.0)) return complain("min_speedup <= 0");
    const auto& scan_runs = doc.at("scan_runs").as_array();
    if (scan_runs.empty()) return complain("scan_runs is empty");
    bool has_p1 = false;
    for (const Json& run : scan_runs) {
      const int procs = static_cast<int>(run.at("procs").as_int());
      if (procs <= 0) return complain("scan run has procs <= 0");
      const double aos = run.at("aos_records_per_s").as_double();
      const double soa = run.at("soa_records_per_s").as_double();
      const double speedup = run.at("speedup").as_double();
      if (!(run.at("aos_seconds").as_double() > 0.0) ||
          !(run.at("soa_seconds").as_double() > 0.0) || !(aos > 0.0) ||
          !(soa > 0.0) || !(speedup > 0.0)) {
        return complain("scan run has non-positive measurement");
      }
      // The headline claim: the columnar incremental kernel beats the AoS
      // recompute walk by at least min_speedup at p=1 and (when measured)
      // p=8.
      if ((procs == 1 || procs == 8) && speedup < min_speedup) {
        char why[128];
        std::snprintf(why, sizeof(why),
                      "SoA speedup %.3f below required %.2f at p=%d", speedup,
                      min_speedup, procs);
        return complain(why);
      }
      has_p1 = has_p1 || procs == 1;
    }
    if (!has_p1) return complain("no scan run at p=1");
    const auto& table_runs = doc.at("table_runs").as_array();
    if (table_runs.empty()) return complain("table_runs is empty");
    for (const Json& run : table_runs) {
      if (run.at("procs").as_int() <= 0) {
        return complain("table run has procs <= 0");
      }
      if (!(run.at("chained_probes_per_s").as_double() > 0.0) ||
          !(run.at("flat_probes_per_s").as_double() > 0.0)) {
        return complain("table run has non-positive throughput");
      }
      // details.metrics must decode as a registry snapshot with the flat
      // table's probe telemetry present.
      const Json* details = run.find("details");
      if (details != nullptr) {
        const scalparc::mp::MetricsSnapshot snapshot =
            scalparc::mp::MetricsSnapshot::from_json(details->at("metrics"));
        if (snapshot.value("hash.lookups") <= 0.0) {
          return complain("details.metrics lacks hash.lookups");
        }
      }
    }
  } catch (const std::exception& e) {
    return complain(e.what());
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scalparc;
  const util::CliArgs args(argc, argv);

  const std::string out_path = args.get_string("out", "");
  const std::string validate_path = args.get_string("validate", "");
  if (out_path.empty() && !validate_path.empty()) {
    // Validate-only mode.
    std::ifstream in(validate_path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", validate_path.c_str());
      return 1;
    }
    return validate(util::Json::parse(buffer.str())) ? 0 : 1;
  }

  const auto records = static_cast<std::size_t>(args.get_int("records", 2000000));
  const auto run_length = static_cast<std::size_t>(args.get_int("run", 16));
  const std::vector<std::int64_t> procs =
      args.get_int_list("procs", {1, 2, 4, 8, 16});
  const auto keys = static_cast<std::uint64_t>(args.get_int("keys", 1000000));
  const std::vector<std::int64_t> table_procs =
      args.get_int_list("table-procs", {1, 4});
  const int reps = static_cast<int>(args.get_int("reps", 3));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const double min_speedup = args.get_double("min-speedup", 1.5);
  const auto model = mp::CostModel::cray_t3d();
  constexpr int kClasses = 2;

  // ---------------- workload ------------------------------------------------
  // One sorted two-class continuous attribute list with duplicate runs of
  // ~run_length equal values — the shape FindSplitI scans every level.
  const std::size_t distinct = std::max<std::size_t>(1, records / run_length);
  data::ContinuousColumns cols;
  cols.resize(records);
  {
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<std::size_t> value_of(0, distinct - 1);
    std::bernoulli_distribution class_of(0.4);
    std::vector<double> values(records);
    for (std::size_t i = 0; i < records; ++i) {
      values[i] = static_cast<double>(value_of(rng)) * 0.5;
    }
    std::sort(values.begin(), values.end());
    for (std::size_t i = 0; i < records; ++i) {
      cols.values[i] = values[i];
      cols.rids[i] = static_cast<std::int64_t>(i);
      cols.cls[i] = class_of(rng) ? 1 : 0;
    }
  }
  std::vector<data::ContinuousEntry> entries;
  data::entries_from_columns(cols, entries);
  std::vector<std::int64_t> totals(kClasses, 0);
  for (const std::int32_t cls : cols.cls) ++totals[static_cast<std::size_t>(cls)];

  // Enough kernel passes per timed region to dwarf timer and thread-spawn
  // noise even at smoke scale.
  const int scan_iters =
      static_cast<int>(std::max<std::size_t>(1, 16000000 / records));
  const int table_iters = static_cast<int>(
      std::max<std::uint64_t>(1, 2000000 / (2 * std::max<std::uint64_t>(1, keys))));

  // Best-of-reps wall time of one layout at p ranks: each rank scans its
  // contiguous FindSplitI fragment (below-histogram seeded from the prefix,
  // boundary value from the previous rank), scan_iters times.
  double scan_checksum = 0.0;
  const auto time_scan = [&](int p, bool soa) {
    // Fragment boundaries and prefix class histograms, computed outside the
    // timed region (FindSplitI gets these from the packed exscan).
    std::vector<std::size_t> begin(static_cast<std::size_t>(p) + 1, 0);
    for (int r = 0; r <= p; ++r) {
      begin[static_cast<std::size_t>(r)] =
          records * static_cast<std::size_t>(r) / static_cast<std::size_t>(p);
    }
    std::vector<std::vector<std::int64_t>> below(
        static_cast<std::size_t>(p), std::vector<std::int64_t>(kClasses, 0));
    {
      std::vector<std::int64_t> prefix(kClasses, 0);
      for (int r = 0; r < p; ++r) {
        below[static_cast<std::size_t>(r)] = prefix;
        for (std::size_t i = begin[static_cast<std::size_t>(r)];
             i < begin[static_cast<std::size_t>(r) + 1]; ++i) {
          ++prefix[static_cast<std::size_t>(cols.cls[i])];
        }
      }
    }
    double best_seconds = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      std::vector<double> elapsed(static_cast<std::size_t>(p), 0.0);
      std::vector<double> sinks(static_cast<std::size_t>(p), 0.0);
      mp::run_ranks(p, model, [&](mp::Comm& comm) {
        const auto r = static_cast<std::size_t>(comm.rank());
        const std::size_t lo = begin[r];
        const std::size_t hi = begin[r + 1];
        const bool has_prev = lo > 0;
        const double prev_value = has_prev ? cols.values[lo - 1] : 0.0;
        mp::barrier(comm);
        util::Stopwatch timer;
        double sink = 0.0;
        for (int iter = 0; iter < scan_iters; ++iter) {
          core::SplitCandidate best;
          if (soa) {
            core::IncrementalImpurityScanner scanner(totals, below[r]);
            core::scan_continuous_columns(cols, lo, hi, scanner, has_prev,
                                          prev_value, 0, best);
            sink += best.threshold + static_cast<double>(scanner.below_total());
          } else {
            core::BinaryImpurityScanner scanner(totals, below[r]);
            core::scan_continuous_segment(
                std::span<const data::ContinuousEntry>(entries.data() + lo,
                                                       hi - lo),
                scanner, has_prev, prev_value, 0, best);
            sink += best.threshold + static_cast<double>(scanner.below_total());
          }
        }
        elapsed[r] = timer.elapsed_seconds();
        sinks[r] = sink;
      });
      const double rep_seconds = *std::max_element(elapsed.begin(), elapsed.end());
      best_seconds = rep == 0 ? rep_seconds : std::min(best_seconds, rep_seconds);
      for (const double s : sinks) scan_checksum += s;
    }
    return best_seconds;
  };

  // Best-of-reps wall time of one table organisation at p ranks: every rank
  // updates and enquires its strided share of the keys (scrambled so keys
  // land on every owner), table_iters times.
  double table_checksum = 0.0;
  const auto time_table = [&]<typename Table>(int p, Table*,
                                              Json* details = nullptr) {
    double best_seconds = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      std::vector<double> elapsed(static_cast<std::size_t>(p), 0.0);
      std::vector<double> sinks(static_cast<std::size_t>(p), 0.0);
      const mp::RunResult run = mp::run_ranks(p, model, [&](mp::Comm& comm) {
        Table table(comm, keys);
        std::vector<typename Table::Update> updates;
        std::vector<std::int64_t> enquiry;
        for (std::uint64_t k = static_cast<std::uint64_t>(comm.rank());
             k < keys; k += static_cast<std::uint64_t>(comm.size())) {
          const auto key = static_cast<std::int64_t>((k * 2654435761ULL) % keys);
          updates.push_back({key, {static_cast<std::int64_t>(k)}});
          enquiry.push_back(static_cast<std::int64_t>(k));
        }
        mp::barrier(comm);
        util::Stopwatch timer;
        double sink = 0.0;
        for (int iter = 0; iter < table_iters; ++iter) {
          table.update(updates);
          const auto looked = table.enquire(enquiry);
          for (std::size_t i = 0; i < looked.size(); i += 1024) {
            sink += static_cast<double>(looked[i].value.payload);
          }
        }
        const auto r = static_cast<std::size_t>(comm.rank());
        elapsed[r] = timer.elapsed_seconds();
        sinks[r] = sink;
      });
      const double rep_seconds = *std::max_element(elapsed.begin(), elapsed.end());
      best_seconds = rep == 0 ? rep_seconds : std::min(best_seconds, rep_seconds);
      for (const double s : sinks) table_checksum += s;
      if (details != nullptr) {
        *details = Json::object();
        (*details)["metrics"] = run.metrics.to_json();
      }
    }
    return best_seconds;
  };

  // ---------------- part 1: scan kernels ------------------------------------
  bench::CsvWriter csv(args, "micro_scan.csv",
                       "part,procs,impl,seconds,throughput_per_s");
  const double scanned =
      static_cast<double>(records) * static_cast<double>(scan_iters);
  std::printf(
      "part 1: gini scan, %zu records (~%zu-long runs), %d passes/timing\n\n",
      records, run_length, scan_iters);
  std::printf("%6s %14s %14s %16s %16s %9s\n", "procs", "AoS(ms)", "SoA(ms)",
              "AoS rec/s", "SoA rec/s", "speedup");
  std::vector<ScanRow> scan_rows;
  for (const std::int64_t p : procs) {
    ScanRow row;
    row.procs = static_cast<int>(p);
    row.aos_seconds = time_scan(row.procs, /*soa=*/false);
    row.soa_seconds = time_scan(row.procs, /*soa=*/true);
    row.aos_records_per_s = scanned / row.aos_seconds;
    row.soa_records_per_s = scanned / row.soa_seconds;
    row.speedup = row.soa_records_per_s / row.aos_records_per_s;
    std::printf("%6d %14.3f %14.3f %16.3e %16.3e %8.2fx\n", row.procs,
                row.aos_seconds * 1e3, row.soa_seconds * 1e3,
                row.aos_records_per_s, row.soa_records_per_s, row.speedup);
    csv.row("scan,%d,aos,%.6f,%.1f", row.procs, row.aos_seconds,
            row.aos_records_per_s);
    csv.row("scan,%d,soa,%.6f,%.1f", row.procs, row.soa_seconds,
            row.soa_records_per_s);
    scan_rows.push_back(row);
  }

  // ---------------- part 2: hash table probes -------------------------------
  const double probed = 2.0 * static_cast<double>(keys) *
                        static_cast<double>(table_iters);
  std::printf(
      "\npart 2: hash table, %llu keys updated + enquired, %d rounds/timing\n\n",
      static_cast<unsigned long long>(keys), table_iters);
  std::printf("%6s %14s %14s %16s %16s %9s\n", "procs", "chained(ms)",
              "flat(ms)", "chained pr/s", "flat pr/s", "speedup");
  std::vector<TableRow> table_rows;
  struct Payload {
    std::int64_t payload = 0;
  };
  for (const std::int64_t p : table_procs) {
    TableRow row;
    row.procs = static_cast<int>(p);
    row.chained_seconds = time_table(
        row.procs, static_cast<core::DistributedChainedHashTable<Payload>*>(nullptr));
    row.flat_seconds = time_table(
        row.procs, static_cast<core::DistributedFlatHashTable<Payload>*>(nullptr),
        &row.details);
    row.chained_probes_per_s = probed / row.chained_seconds;
    row.flat_probes_per_s = probed / row.flat_seconds;
    row.flat_speedup = row.flat_probes_per_s / row.chained_probes_per_s;
    std::printf("%6d %14.3f %14.3f %16.3e %16.3e %8.2fx\n", row.procs,
                row.chained_seconds * 1e3, row.flat_seconds * 1e3,
                row.chained_probes_per_s, row.flat_probes_per_s,
                row.flat_speedup);
    csv.row("table,%d,chained,%.6f,%.1f", row.procs, row.chained_seconds,
            row.chained_probes_per_s);
    csv.row("table,%d,flat,%.6f,%.1f", row.procs, row.flat_seconds,
            row.flat_probes_per_s);
    table_rows.push_back(row);
  }
  std::printf("\n(checksums %.3g / %.3g keep the kernels honest)\n",
              scan_checksum, table_checksum);

  // ---------------- JSON document ------------------------------------------
  Json doc = Json::object();
  doc["bench"] = "micro_scan";
  doc["records"] = static_cast<std::int64_t>(records);
  doc["run_length"] = static_cast<std::int64_t>(run_length);
  doc["keys"] = static_cast<std::int64_t>(keys);
  doc["reps"] = reps;
  doc["seed"] = seed;
  doc["min_speedup"] = min_speedup;
  Json scan_runs = Json::array();
  for (const ScanRow& row : scan_rows) {
    Json run = Json::object();
    run["procs"] = row.procs;
    run["aos_seconds"] = row.aos_seconds;
    run["soa_seconds"] = row.soa_seconds;
    run["aos_records_per_s"] = row.aos_records_per_s;
    run["soa_records_per_s"] = row.soa_records_per_s;
    run["speedup"] = row.speedup;
    scan_runs.push_back(std::move(run));
  }
  doc["scan_runs"] = std::move(scan_runs);
  Json table_runs = Json::array();
  for (const TableRow& row : table_rows) {
    Json run = Json::object();
    run["procs"] = row.procs;
    run["chained_seconds"] = row.chained_seconds;
    run["flat_seconds"] = row.flat_seconds;
    run["chained_probes_per_s"] = row.chained_probes_per_s;
    run["flat_probes_per_s"] = row.flat_probes_per_s;
    run["flat_speedup"] = row.flat_speedup;
    run["details"] = row.details;
    table_runs.push_back(std::move(run));
  }
  doc["table_runs"] = std::move(table_runs);

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << doc.dump(2) << '\n';
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("\nJSON written to %s\n", out_path.c_str());
  }
  if (!validate_path.empty()) {
    std::ifstream in(validate_path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", validate_path.c_str());
      return 1;
    }
    if (!validate(util::Json::parse(buffer.str()))) return 1;
    std::printf("validation OK: %s\n", validate_path.c_str());
  }
  return 0;
}
