# Empty dependencies file for scalparc_mp.
# This may be replaced when dependencies are built.
