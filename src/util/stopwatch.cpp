#include "util/stopwatch.hpp"

#include <cstddef>
#include <cstdio>

namespace scalparc::util {

const char* format_duration(Duration d, char* buffer, int size) {
  const double s = d.seconds;
  if (s >= 1.0) {
    std::snprintf(buffer, static_cast<std::size_t>(size), "%.3f s", s);
  } else if (s >= 1e-3) {
    std::snprintf(buffer, static_cast<std::size_t>(size), "%.3f ms", s * 1e3);
  } else {
    std::snprintf(buffer, static_cast<std::size_t>(size), "%.1f us", s * 1e6);
  }
  return buffer;
}

}  // namespace scalparc::util
