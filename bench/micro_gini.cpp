// Microbenchmark M2: the split-determination inner loops — the incremental
// gini scan over a sorted continuous list (the dominant O(N) cost of
// FindSplitII) and the categorical split searches.
#include <benchmark/benchmark.h>

#include "core/count_matrix.hpp"
#include "core/gini.hpp"
#include "core/split_finder.hpp"
#include "data/attribute_list.hpp"
#include "util/random.hpp"

namespace {

using namespace scalparc;

std::vector<data::ContinuousEntry> sorted_entries(std::size_t n, int classes) {
  util::Rng rng(9);
  std::vector<data::ContinuousEntry> entries(n);
  for (std::size_t i = 0; i < n; ++i) {
    entries[i].value = static_cast<double>(i) + rng.next_double();
    entries[i].rid = static_cast<std::int64_t>(i);
    entries[i].cls = static_cast<std::int32_t>(rng.next_below(
        static_cast<std::uint64_t>(classes)));
  }
  return entries;
}

void BM_GiniScan(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const int classes = static_cast<int>(state.range(1));
  const auto entries = sorted_entries(n, classes);
  std::vector<std::int64_t> totals(static_cast<std::size_t>(classes), 0);
  for (const auto& e : entries) ++totals[static_cast<std::size_t>(e.cls)];
  const std::vector<std::int64_t> zeros(static_cast<std::size_t>(classes), 0);
  for (auto _ : state) {
    core::BinaryGiniScanner scanner(totals, zeros);
    core::SplitCandidate best;
    core::scan_continuous_segment(entries, scanner, false, 0.0, 0, best);
    benchmark::DoNotOptimize(best);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_GiniScan)->Args({1 << 16, 2})->Args({1 << 18, 2})->Args({1 << 16, 8});

void BM_GiniOfSplit(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  core::CountMatrix matrix(rows, 2);
  util::Rng rng(4);
  for (int v = 0; v < rows; ++v) {
    matrix.at(v, 0) = static_cast<std::int64_t>(rng.next_below(100));
    matrix.at(v, 1) = static_cast<std::int64_t>(rng.next_below(100));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::gini_of_split(matrix));
  }
}
BENCHMARK(BM_GiniOfSplit)->Arg(5)->Arg(20)->Arg(64);

void BM_CategoricalMultiway(benchmark::State& state) {
  const int card = static_cast<int>(state.range(0));
  core::CountMatrix matrix(card, 2);
  util::Rng rng(4);
  for (int v = 0; v < card; ++v) {
    matrix.at(v, 0) = static_cast<std::int64_t>(rng.next_below(100));
    matrix.at(v, 1) = static_cast<std::int64_t>(rng.next_below(100));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::best_categorical_split(
        matrix, 0, core::CategoricalSplit::kMultiWay));
  }
}
BENCHMARK(BM_CategoricalMultiway)->Arg(5)->Arg(20);

void BM_CategoricalGreedySubset(benchmark::State& state) {
  const int card = static_cast<int>(state.range(0));
  core::CountMatrix matrix(card, 2);
  util::Rng rng(4);
  for (int v = 0; v < card; ++v) {
    matrix.at(v, 0) = static_cast<std::int64_t>(rng.next_below(100));
    matrix.at(v, 1) = static_cast<std::int64_t>(rng.next_below(100));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::best_categorical_split(
        matrix, 0, core::CategoricalSplit::kBinarySubset));
  }
}
BENCHMARK(BM_CategoricalGreedySubset)->Arg(5)->Arg(20)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
