// Out-of-core demo: train the disk-resident serial SPRINT under a shrinking
// memory budget and watch the §2 multi-pass I/O cost appear, then train the
// same data with ScalParC to show the distributed node table removing the
// memory ceiling.
//
//   ./examples/out_of_core [--records N] [--ranks P]
#include <cstdio>

#include "core/scalparc.hpp"
#include "data/synthetic.hpp"
#include "ooc/ooc_sprint.hpp"
#include "util/cli.hpp"
#include "util/stopwatch.hpp"

int main(int argc, char** argv) {
  using namespace scalparc;
  const util::CliArgs args(argc, argv);
  const std::uint64_t records =
      static_cast<std::uint64_t>(args.get_int("records", 30000));
  const int ranks = static_cast<int>(args.get_int("ranks", 8));

  data::GeneratorConfig config;
  config.seed = 12;
  config.function = data::LabelFunction::kF2;
  const data::QuestGenerator generator(config);
  const data::Dataset training = generator.generate(0, records);
  const double table_mb =
      static_cast<double>(records * sizeof(std::int32_t)) / 1e6;

  std::printf("Out-of-core serial SPRINT on %llu records (hash table: %.2f MB)\n\n",
              static_cast<unsigned long long>(records), table_mb);
  std::printf("  budget     passes  MB-read  MB-written  wall\n");
  for (const double fraction : {1.0, 0.25, 0.0625}) {
    ooc::OocOptions options;
    options.hash_memory_budget_bytes = static_cast<std::size_t>(
        static_cast<double>(records * sizeof(std::int32_t)) * fraction);
    util::Stopwatch wall;
    const ooc::OocReport report = ooc::fit_ooc_sprint(training, options);
    char duration[32];
    std::printf("  %5.0f%%  %9llu %8.1f %11.1f  %s\n", fraction * 100.0,
                static_cast<unsigned long long>(report.max_passes_per_level),
                static_cast<double>(report.io.bytes_read) / 1e6,
                static_cast<double>(report.io.bytes_written) / 1e6,
                util::format_duration({wall.elapsed_seconds()}, duration,
                                      sizeof(duration)));
  }

  std::printf("\nScalParC on the same data (%d simulated ranks):\n", ranks);
  const core::FitReport report = core::ScalParC::fit(
      training, ranks, core::InductionControls{}, mp::CostModel::cray_t3d());
  std::size_t table_peak = 0;
  for (const auto& r : report.run.ranks) {
    table_peak = std::max(table_peak,
                          r.meter.peak_bytes(util::MemCategory::kNodeTable));
  }
  std::printf("  node table per rank: %.3f MB (vs %.2f MB serial)\n",
              static_cast<double>(table_peak) / 1e6, table_mb);
  std::printf("  modeled runtime:     %.3f s\n", report.run.modeled_seconds);
  std::printf("  tree: %d nodes, training accuracy %.4f\n",
              report.tree.num_nodes(), report.tree.accuracy(training));
  return 0;
}
