// Chaos soak harness: randomized compound-fault schedules against
// fit_with_recovery until a seed/time budget runs out.
//
//   ./chaos_soak [--seeds N] [--seed0 S] [--procs 2,4,8] [--records N]
//                [--depth D] [--time-budget-s T] [--csv DIR]
//
// Every (seed, p) cell generates a deterministic compound schedule
// (mp/chaos.hpp), picks a recovery policy from the seed, and runs the fit
// under it. Pass criteria, checked for every cell:
//
//   * no hang — the run always terminates (recv timeouts + deadlock
//     detection bound every blocking receive)
//   * no silent divergence — a completed run's tree is byte-identical to
//     the fault-free oracle
//   * no unclassified abort — a run that does not complete carries a
//     RecoveryOutcome other than kCompleted and a captured last_error
//
// The per-cell outcome plus the recovery.* counters land in the CSV so a
// failing seed is a one-line repro:
//   ./chaos_soak --seeds 1 --seed0 <failing-seed> --procs <p>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/checkpoint.hpp"
#include "core/tree_io.hpp"
#include "mp/chaos.hpp"
#include "mp/fault.hpp"

namespace {

std::string tree_bytes(const scalparc::core::DecisionTree& tree) {
  std::ostringstream out;
  scalparc::core::save_tree(tree, out);
  return out.str();
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  const std::chrono::duration<double> d =
      std::chrono::steady_clock::now() - start;
  return d.count();
}

const char* policy_name(scalparc::core::RecoveryPolicy policy) {
  switch (policy) {
    case scalparc::core::RecoveryPolicy::kRestart: return "restart";
    case scalparc::core::RecoveryPolicy::kShrink: return "shrink";
    case scalparc::core::RecoveryPolicy::kGrow: return "grow";
    case scalparc::core::RecoveryPolicy::kRebalance: return "rebalance";
  }
  return "unknown";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scalparc;
  const util::CliArgs args(argc, argv);
  const int seeds = static_cast<int>(args.get_int("seeds", 100));
  const auto seed0 = static_cast<std::uint64_t>(args.get_int("seed0", 1));
  const auto records =
      static_cast<std::uint64_t>(args.get_int("records", 4000));
  const int depth = static_cast<int>(args.get_int("depth", 6));
  const double time_budget_s = args.get_double("time-budget-s", 0.0);
  std::vector<std::int64_t> procs = args.get_int_list("procs", {2, 4, 8});

  const data::Dataset training = bench::paper_generator().generate(0, records);
  core::InductionControls controls;
  controls.options.max_depth = depth;
  const std::string oracle =
      tree_bytes(core::ScalParC::fit(training, 2, controls).tree);

  const std::string ckpt_root =
      (std::filesystem::temp_directory_path() /
       ("scalparc_chaos_soak_" +
        std::to_string(static_cast<long long>(::getpid()))))
          .string();
  core::InductionControls ckpt_controls = controls;
  ckpt_controls.checkpoint.directory = ckpt_root;

  bench::CsvWriter csv(
      args, "chaos_soak.csv",
      "seed,procs,archetype,policy,outcome,attempts,recoveries,wall_s");

  std::printf("chaos soak: %d seeds x p in {", seeds);
  for (std::size_t i = 0; i < procs.size(); ++i) {
    std::printf("%s%lld", i ? "," : "", static_cast<long long>(procs[i]));
  }
  std::printf("}, %llu records, depth %d\n\n",
              static_cast<unsigned long long>(records), depth);

  const auto soak_start = std::chrono::steady_clock::now();
  int cells = 0, completed = 0, classified = 0, divergences = 0,
      unclassified = 0;
  bool budget_hit = false;
  for (int s = 0; s < seeds && !budget_hit; ++s) {
    const std::uint64_t seed = seed0 + static_cast<std::uint64_t>(s);
    for (const std::int64_t procs_value : procs) {
      if (time_budget_s > 0.0 && seconds_since(soak_start) > time_budget_s) {
        budget_hit = true;
        break;
      }
      const int p = static_cast<int>(procs_value);
      std::filesystem::remove_all(ckpt_root);

      mp::ChaosSpec spec;
      spec.world = p;
      spec.levels = depth;
      const mp::GeneratedChaos chaos = mp::generate_chaos(seed, spec);

      core::RecoveryControls recovery;
      recovery.policy = static_cast<core::RecoveryPolicy>(
          static_cast<int>(seed % 3));  // rotate restart/shrink/grow
      recovery.join_ranks = 1 + static_cast<int>(seed % 2);
      recovery.max_retries = 4;
      recovery.fault_schedule = &chaos.schedule;
      if (chaos.checkpoint_write_faults > 0) {
        core::detail::arm_checkpoint_write_fault(chaos.checkpoint_write_faults);
      }

      mp::CostModel model = mp::CostModel::zero();
      mp::RunOptions run_options;
      if (chaos.archetype == mp::ChaosArchetype::kStragglerCompound) {
        // Gray failure needs the health layer watching and realized work so
        // the slowed rank is measurably busy; kRebalance is the policy under
        // test (its kill-during-rebalance leg degrades to a shrink).
        recovery.policy = core::RecoveryPolicy::kRebalance;
        recovery.policy_sequence.clear();
        run_options.health.detect_stragglers = true;
        run_options.health.adaptive_timeouts = true;
        run_options.health.sustain_s = 0.5;
        run_options.health.min_blocked_s = 0.2;
        model.seconds_per_work_unit = 4e-6;
        model.realize_work = true;
      }

      core::RecoveryReport report;
      const auto cell_start = std::chrono::steady_clock::now();
      bool threw = false;
      std::string threw_what;
      try {
        report = core::ScalParC::fit_with_recovery(training, p, ckpt_controls,
                                                   recovery, model,
                                                   run_options);
      } catch (const std::exception& e) {
        threw = true;
        threw_what = e.what();
      }
      core::detail::clear_checkpoint_write_fault();
      const double wall_s = seconds_since(cell_start);
      ++cells;

      const char* verdict = "ok";
      if (threw) {
        // The struct-based overload classifies instead of throwing; an
        // escape here is exactly the "unclassified abort" the soak hunts.
        ++unclassified;
        verdict = "UNCLASSIFIED";
        std::printf("seed %llu p=%d %s: UNCLASSIFIED ABORT: %s\n",
                    static_cast<unsigned long long>(seed), p,
                    chaos.description.c_str(), threw_what.c_str());
      } else if (report.outcome == core::RecoveryOutcome::kCompleted) {
        ++completed;
        if (tree_bytes(report.fit.tree) != oracle) {
          ++divergences;
          verdict = "DIVERGED";
          std::printf("seed %llu p=%d %s: SILENT DIVERGENCE\n",
                      static_cast<unsigned long long>(seed), p,
                      chaos.description.c_str());
        }
      } else {
        ++classified;
        if (!report.last_error) {
          ++unclassified;
          verdict = "NO-ERROR-CAPTURED";
          std::printf("seed %llu p=%d %s: outcome %s without last_error\n",
                      static_cast<unsigned long long>(seed), p,
                      chaos.description.c_str(),
                      core::to_string(report.outcome));
        }
      }
      csv.row("%llu,%d,%s,%s,%s,%d,%d,%.4f",
              static_cast<unsigned long long>(seed), p,
              mp::to_string(chaos.archetype), policy_name(recovery.policy),
              threw ? "unclassified-throw" : core::to_string(report.outcome),
              report.attempts, static_cast<int>(report.events.size()), wall_s);
      (void)verdict;
    }
  }
  std::filesystem::remove_all(ckpt_root);

  std::printf("\n%d cells: %d completed, %d classified non-recoverable, "
              "%d divergences, %d unclassified%s\n",
              cells, completed, classified, divergences, unclassified,
              budget_hit ? " (time budget hit)" : "");
  std::printf("csv: %s\n", csv.path().c_str());
  if (divergences > 0 || unclassified > 0) return 1;
  return 0;
}
